// Command obscatalog keeps DESIGN.md's metric catalog honest: it
// greps every non-test Go file under cmd/ and internal/ for literal
// obs metric registrations — obs.NewCounter("..."), the vec and SLO
// variants, and the obs.New* forms on the Default registry — and
// asserts each registered name appears somewhere in DESIGN.md. A
// metric that ships without a catalog entry fails the gate, so the
// catalog can never silently rot.
//
// Run it via `make obs-catalog-gate` (check.sh includes it).
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var registerRE = regexp.MustCompile(
	`obs\.New(?:Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec|SLO)\(\s*"([^"]+)"`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obscatalog: FAIL:", err)
		os.Exit(1)
	}
}

func run() error {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		return err
	}
	catalog := string(design)

	names := map[string][]string{} // metric name → files registering it
	for _, root := range []string{"cmd", "internal"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range registerRE.FindAllStringSubmatch(string(src), -1) {
				names[m[1]] = append(names[m[1]], path)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("found no obs metric registrations under cmd/ and internal/ — the grep pattern has rotted")
	}

	var missing []string
	for name, files := range names {
		if !strings.Contains(catalog, name) {
			sort.Strings(files)
			missing = append(missing, fmt.Sprintf("%s (registered in %s)", name, strings.Join(files, ", ")))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("metrics registered but absent from the DESIGN.md catalog:\n  %s",
			strings.Join(missing, "\n  "))
	}
	fmt.Printf("obscatalog: PASS (%d registered metric names all cataloged in DESIGN.md)\n", len(names))
	return nil
}
