// Command loadgen drives geniex-serve with an open-loop request
// stream and emits a machine-readable summary: per-status and
// per-tier counts, retry/shed totals, overall and per-tenant latency
// percentiles, and the 5xx count the smoke gate asserts on. The
// per-tenant view (OK counts + percentiles over 200s) is the
// client-side mirror of the server's serve.tenant.* metrics;
// scripts/loadsmoke asserts the two agree. Open-loop means requests fire
// on schedule regardless of how many are outstanding — the generator
// does not back off when the server slows, which is exactly the
// arrival pattern admission control exists for.
//
// Example:
//
//	loadgen -url http://127.0.0.1:8080 -qps 120 -duration 3s -tenants 3
//
// The summary JSON goes to stdout; -out additionally writes it to a
// file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type summary struct {
	TargetQPS    float64            `json:"target_qps"`
	DurationS    float64            `json:"duration_s"`
	Requests     int                `json:"requests"`
	StatusCounts map[string]int     `json:"status_counts"`
	TierCounts   map[string]int     `json:"tier_counts"`
	TotalRetries int                `json:"total_retries"`
	TotalShed    int                `json:"total_shed"`
	FiveXX       int                `json:"fivexx"`
	Transport    int                `json:"transport_errors"`
	LatencyMS    map[string]float64 `json:"latency_ms"`
	// Tenants is the client-side per-tenant view: request/OK counts
	// and latency percentiles over served (200) responses only, so it
	// is directly comparable with the server's
	// serve.tenant.latency_seconds{tenant} histograms (loadsmoke
	// asserts the two views agree).
	Tenants map[string]tenantSummary `json:"tenants"`
}

type tenantSummary struct {
	Requests  int                `json:"requests"`
	OK        int                `json:"ok"`
	LatencyMS map[string]float64 `json:"latency_ms"`
}

type result struct {
	tenant  string
	status  int
	tier    string
	retries int
	shed    int
	latency time.Duration
	err     error
}

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		qps      = flag.Float64("qps", 50, "request rate")
		duration = flag.Duration("duration", 3*time.Second, "how long to generate load")
		batch    = flag.Int("batch", 1, "input rows per request")
		tenants  = flag.Int("tenants", 3, "distinct tenant names to round-robin")
		deadline = flag.Int64("deadline-ms", 0, "per-request deadline_ms field (0 = server default)")
		out      = flag.String("out", "", "also write the JSON summary to this file")
	)
	flag.Parse()
	if err := run(*base, *qps, *duration, *batch, *tenants, *deadline, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(base string, qps float64, duration time.Duration, batch, tenants int, deadlineMS int64, out string) error {
	if qps <= 0 {
		return fmt.Errorf("qps must be positive")
	}
	in, err := probeWidth(base)
	if err != nil {
		return fmt.Errorf("probing input width: %w", err)
	}

	body := func(tenant string) []byte {
		rows := make([][]float64, batch)
		for i := range rows {
			row := make([]float64, in)
			for j := range row {
				row[j] = 0.1 * float64((i+j)%7)
			}
			rows[i] = row
		}
		b, _ := json.Marshal(map[string]any{
			"tenant": tenant, "inputs": rows, "deadline_ms": deadlineMS,
		})
		return b
	}

	client := &http.Client{Timeout: 30 * time.Second}
	interval := time.Duration(float64(time.Second) / qps)
	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var results []result

	tick := time.NewTicker(interval)
	defer tick.Stop()
	n := 0
	for now := range tick.C {
		if now.After(stop) {
			break
		}
		tenant := fmt.Sprintf("tenant-%d", n%tenants)
		n++
		wg.Add(1)
		go func(tenant string, payload []byte) {
			defer wg.Done()
			r := fire(client, base, payload)
			r.tenant = tenant
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		}(tenant, body(tenant))
	}
	wg.Wait()

	s := summarize(qps, duration, results)
	enc, _ := json.MarshalIndent(s, "", "  ")
	fmt.Println(string(enc))
	if out != "" {
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fire(client *http.Client, base string, payload []byte) result {
	start := time.Now()
	resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(payload))
	if err != nil {
		return result{err: err, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	r := result{status: resp.StatusCode, latency: time.Since(start)}
	if resp.StatusCode == http.StatusOK {
		var body struct {
			Tier    string `json:"tier"`
			Retries int    `json:"retries"`
			Shed    int    `json:"shed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
			r.tier, r.retries, r.shed = body.Tier, body.Retries, body.Shed
		}
	}
	return r
}

func probeWidth(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		In int `json:"in"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if h.In <= 0 {
		return 0, fmt.Errorf("healthz reports no input width")
	}
	return h.In, nil
}

func summarize(qps float64, duration time.Duration, results []result) summary {
	s := summary{
		TargetQPS:    qps,
		DurationS:    duration.Seconds(),
		Requests:     len(results),
		StatusCounts: map[string]int{},
		TierCounts:   map[string]int{},
		LatencyMS:    map[string]float64{},
		Tenants:      map[string]tenantSummary{},
	}
	var lats []time.Duration
	servedLats := map[string][]time.Duration{}
	for _, r := range results {
		if r.err != nil {
			s.Transport++
			continue
		}
		ts := s.Tenants[r.tenant]
		ts.Requests++
		s.StatusCounts[fmt.Sprintf("%d", r.status)]++
		if r.status >= 500 {
			s.FiveXX++
		}
		if r.status == http.StatusOK {
			s.TierCounts[r.tier]++
			s.TotalRetries += r.retries
			s.TotalShed += r.shed
			ts.OK++
			servedLats[r.tenant] = append(servedLats[r.tenant], r.latency)
		}
		s.Tenants[r.tenant] = ts
		lats = append(lats, r.latency)
	}
	s.LatencyMS = percentiles(lats)
	for tenant, tl := range servedLats {
		ts := s.Tenants[tenant]
		ts.LatencyMS = percentiles(tl)
		s.Tenants[tenant] = ts
	}
	return s
}

// percentiles summarizes a latency sample as ms percentiles; empty
// input yields an empty map.
func percentiles(lats []time.Duration) map[string]float64 {
	out := map[string]float64{}
	if len(lats) == 0 {
		return out
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	out["p50"] = pct(0.50)
	out["p90"] = pct(0.90)
	out["p99"] = pct(0.99)
	out["max"] = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	return out
}
