// Command tracecheck validates a Chrome trace-event JSON file — the
// output of `-trace-out` / obs.WriteTrace. It asserts the file parses,
// holds at least one trace event, every event carries a name, a phase,
// and non-negative timestamps, the envelope surfaces the span ring's
// drop count, and the span tree is well-formed: every nonzero
// parent_id refers to a span_id present in the file (the ring evicts
// oldest-first and parents end after their children, so a retained
// child's ancestors are always retained too). It exits 0 on success
// and 1 with a diagnosis otherwise.
//
// Run it via `make trace-smoke` (check.sh includes it).
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

type trace struct {
	TraceEvents []event `json:"traceEvents"`
	// SpansDropped must be present (a pointer distinguishes a missing
	// field from a zero): the envelope owns the ring's drop count so a
	// truncated trace is visibly truncated.
	SpansDropped *int64 `json:"spansDropped"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(1)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s is not valid trace JSON: %w", path, err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("%s holds no trace events", path)
	}
	if tr.SpansDropped == nil {
		return fmt.Errorf("%s lacks the spansDropped envelope field", path)
	}
	if *tr.SpansDropped < 0 {
		return fmt.Errorf("%s reports negative spansDropped %d", path, *tr.SpansDropped)
	}
	spanIDs := map[int64]bool{}
	for i, e := range tr.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if e.Ph == "" {
			return fmt.Errorf("event %d (%s) has no phase", i, e.Name)
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("event %d (%s) has negative ts=%g dur=%g", i, e.Name, e.Ts, e.Dur)
		}
		if id, ok := argID(e, "span_id"); ok {
			spanIDs[id] = true
		}
	}
	parented := 0
	for i, e := range tr.TraceEvents {
		pid, ok := argID(e, "parent_id")
		if !ok || pid == 0 {
			continue
		}
		if !spanIDs[pid] {
			return fmt.Errorf("event %d (%s) has parent_id %d with no matching span_id", i, e.Name, pid)
		}
		parented++
	}
	fmt.Printf("tracecheck: PASS (%s: %d events, %d parented, %d dropped)\n",
		path, len(tr.TraceEvents), parented, *tr.SpansDropped)
	return nil
}

// argID extracts an int64 span/parent ID from an event's args map
// (JSON numbers decode as float64; the IDs are small counters, safely
// inside float64's exact-integer range).
func argID(e event, key string) (int64, bool) {
	v, ok := e.Args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}
