// Command tracecheck validates a Chrome trace-event JSON file — the
// output of `-trace-out` / obs.WriteTrace. It asserts the file parses,
// holds at least one trace event, and every event carries a name, a
// phase, and non-negative timestamps. It exits 0 on success and 1 with
// a diagnosis otherwise.
//
// Run it via `make trace-smoke` (check.sh includes it).
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

type trace struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(1)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s is not valid trace JSON: %w", path, err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("%s holds no trace events", path)
	}
	for i, e := range tr.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if e.Ph == "" {
			return fmt.Errorf("event %d (%s) has no phase", i, e.Name)
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("event %d (%s) has negative ts=%g dur=%g", i, e.Name, e.Ts, e.Dur)
		}
	}
	fmt.Printf("tracecheck: PASS (%s: %d events)\n", path, len(tr.TraceEvents))
	return nil
}
