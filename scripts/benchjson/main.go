// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark summary. It tees the raw output to
// stdout unchanged (so the human-readable table still shows in CI
// logs) and writes one JSON record per benchmark — op name, ns/op,
// and, when -benchmem is on, B/op and allocs/op — to the -out file.
//
// Run it via `make bench`, which writes BENCH_PR6.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Op          string  `json:"op"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default: stdout only)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	var rep report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if out == "" {
		fmt.Println(string(enc))
		return nil
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8   1234   987654 ns/op   32 B/op   1 allocs/op
//
// Unit tokens trail their values, so the line is scanned pairwise.
func parseBench(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Op: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return record{}, false
			}
			r.NsPerOp = f
			seenNs = true
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &n
			}
		}
	}
	return r, seenNs
}
