// Command servesmoke is the end-to-end overload gate for the serving
// frontend: it launches geniex-serve on an ephemeral port with the
// chaos layer injecting latency and transient errors into the faithful
// tier, drives a loadgen burst at well beyond the chaotic tier's
// sustainable rate, and asserts the overload contract — every response
// is a typed outcome with zero 5xx, and the scraped obs snapshot shows
// the resilience machinery actually engaged (serve.shed > 0 and
// serve.retry > 0, i.e. requests were retried on transient failures
// and shed down the fidelity ladder rather than erroring out).
//
// Run it via `make serve-smoke` (check.sh includes it).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"time"
)

// snapshot mirrors the wire shape of obs.SnapshotData closely enough
// to read the serve.* counters.
type snapshot struct {
	Enabled  bool             `json:"enabled"`
	Counters map[string]int64 `json:"counters"`
}

// loadSummary mirrors the loadgen JSON summary fields the gate
// asserts on.
type loadSummary struct {
	Requests     int            `json:"requests"`
	StatusCounts map[string]int `json:"status_counts"`
	TotalRetries int            `json:"total_retries"`
	TotalShed    int            `json:"total_shed"`
	FiveXX       int            `json:"fivexx"`
	Transport    int            `json:"transport_errors"`
}

func main() {
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()
	if err := run(*timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: PASS")
}

func run(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// A two-rung ladder; the chaos layer makes the faithful tier slow
	// and flaky while sparing the floor, so the burst below must both
	// retry (transient chaos errors) and shed (retry exhaustion and
	// overload) to keep every outcome typed. Deadlines are generous on
	// purpose: the gate is "no untyped failure", not tail latency.
	cmd := exec.Command("go", "run", "./cmd/geniex-serve",
		"-addr", "127.0.0.1:0",
		"-tiers", "analytical,ideal",
		"-train", "64", "-epochs", "1", "-channels", "4", "-size", "8",
		"-max-inflight", "2", "-tenant-queue", "12",
		"-deadline", "8s", "-retry-max", "2", "-shed-at", "1.25",
		"-chaos-latency", "30ms", "-chaos-latency-jitter", "10ms",
		"-chaos-error-rate", "0.6", "-chaos-spare-floor=true",
		"-chaos-seed", "7")
	cmd.Stderr = os.Stderr
	// Run the child in its own process group: `go run` execs the
	// server binary as a grandchild, and killing only the wrapper
	// would orphan a listening server holding our pipes open.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting geniex-serve: %w", err)
	}
	defer func() {
		if cmd.Process != nil {
			syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		}
		cmd.Wait()
	}()

	// The child prints the bound address once it is serving; training
	// output before that is just echoed.
	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`serve: listening on (http://\S+)`)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()

	var url string
	select {
	case url = <-addrCh:
	case <-time.After(3 * time.Minute):
		return fmt.Errorf("geniex-serve never printed its listen address")
	}

	// The chaotic faithful tier sustains roughly max-inflight/latency
	// divided by the expected attempt count — ~30 QPS here — so 120
	// QPS is a ≥2× overload burst by a wide margin.
	sum, err := burst(url)
	if err != nil {
		return err
	}
	if sum.Requests == 0 {
		return fmt.Errorf("loadgen issued no requests")
	}
	if sum.Transport > 0 {
		return fmt.Errorf("%d transport errors (connection-level failures are untyped outcomes)", sum.Transport)
	}
	if sum.FiveXX > 0 {
		return fmt.Errorf("%d 5xx responses under overload, want 0 (statuses: %v)", sum.FiveXX, sum.StatusCounts)
	}
	for status := range sum.StatusCounts {
		switch status {
		case "200", "429":
		default:
			return fmt.Errorf("untyped status %s in %v (want only 200/429 with this deadline budget)", status, sum.StatusCounts)
		}
	}
	fmt.Printf("servesmoke: burst OK: %d requests, statuses %v, retries=%d shed=%d\n",
		sum.Requests, sum.StatusCounts, sum.TotalRetries, sum.TotalShed)

	// The counters are cumulative, so one post-burst scrape suffices;
	// poll briefly in case the last responses are still being written.
	var lastErr error
	for time.Now().Before(deadline) {
		snap, err := scrape(url + "/metrics")
		if err != nil {
			lastErr = err
		} else if err := checkCounters(snap); err != nil {
			lastErr = err
		} else {
			fmt.Printf("servesmoke: metrics OK: shed=%d retry=%d rejected=%d ok=%d\n",
				snap.Counters["serve.shed"], snap.Counters["serve.retry"],
				snap.Counters["serve.rejected"], snap.Counters["serve.ok"])
			return nil
		}
		time.Sleep(time.Second)
	}
	return fmt.Errorf("deadline exceeded; last state: %w", lastErr)
}

// burst shells out to scripts/loadgen so the smoke covers its
// machine-readable summary too, and reads the result from -out.
func burst(url string) (*loadSummary, error) {
	outFile, err := os.CreateTemp("", "servesmoke-load-*.json")
	if err != nil {
		return nil, err
	}
	outPath := outFile.Name()
	outFile.Close()
	defer os.Remove(outPath)

	cmd := exec.Command("go", "run", "./scripts/loadgen",
		"-url", url, "-qps", "120", "-duration", "3s",
		"-tenants", "3", "-out", outPath)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loadgen burst: %w", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		return nil, fmt.Errorf("reading loadgen summary: %w", err)
	}
	var sum loadSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		return nil, fmt.Errorf("loadgen summary is not valid JSON: %w", err)
	}
	return &sum, nil
}

func scrape(url string) (*snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		return nil, fmt.Errorf("metrics endpoint served %q, want application/json", ct)
	}
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("malformed JSON snapshot: %w", err)
	}
	return &snap, nil
}

// checkCounters asserts the resilience machinery engaged during the
// burst: requests flowed, some were retried on transient chaos
// failures, and some were shed down the ladder.
func checkCounters(snap *snapshot) error {
	if !snap.Enabled {
		return fmt.Errorf("obs registry is disabled in the child")
	}
	if snap.Counters["serve.ok"] == 0 {
		return fmt.Errorf("serve.ok is zero: no request succeeded")
	}
	for _, name := range []string{"serve.shed", "serve.retry"} {
		if snap.Counters[name] == 0 {
			return fmt.Errorf("%s is zero: the burst did not exercise it", name)
		}
	}
	return nil
}
