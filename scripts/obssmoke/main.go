// Command obssmoke is the end-to-end gate for the metrics pipeline: it
// launches a tiny funcsim-run with -metrics-addr on an ephemeral port
// plus the fidelity probe and trace export enabled, scrapes the HTTP
// endpoint while the run executes, and asserts the JSON snapshot is
// well-formed and contains the live instrumentation the run must
// produce — nonzero Newton-iteration, per-tile-latency, and
// probe-divergence histograms — and that the emitted Chrome trace file
// parses as JSON with at least one event. It then re-scrapes the same
// endpoint with ?format=prom and asserts the Prometheus text
// exposition is well-formed (versioned content type, TYPE lines,
// cumulative bucket series, parseable sample lines). It exits 0 on
// success and 1 with a diagnosis otherwise.
//
// Run it via `make obs-smoke` (check.sh includes it).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"time"
)

// snapshot mirrors the wire shape of obs.SnapshotData closely enough
// to validate it. Decoding into it (with DisallowUnknownFields off)
// checks the JSON is well-formed and the histogram schema holds.
type snapshot struct {
	Enabled    bool             `json:"enabled"`
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
	Histograms map[string]struct {
		Count  int64     `json:"count"`
		Sum    float64   `json:"sum"`
		Bounds []float64 `json:"bounds"`
		Counts []int64   `json:"counts"`
	} `json:"histograms"`
}

// required are the histograms a geniex-mode run with the fidelity
// probe must populate: the surrogate's training data comes from
// circuit solves (Newton iterations), the evaluation runs the tile
// pipeline, and the probe shadow-solves sampled tiles into the
// divergence histogram.
var required = []string{
	"xbar.solver.newton_iters",
	"funcsim.tile.latency_seconds",
	"funcsim.probe.rrmse",
}

func main() {
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	flag.Parse()
	if err := run(*timeout); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: PASS")
}

func run(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	traceFile, err := os.CreateTemp("", "obssmoke-trace-*.json")
	if err != nil {
		return err
	}
	tracePath := traceFile.Name()
	traceFile.Close()
	os.Remove(tracePath) // the child recreates it; a leftover empty file must not pass
	defer os.Remove(tracePath)
	cmd := exec.Command("go", "run", "./cmd/funcsim-run",
		"-dataset", "cifar", "-mode", "geniex", "-size", "8",
		"-train", "40", "-test", "8", "-epochs", "1", "-channels", "4",
		"-geniex-samples", "16", "-geniex-epochs", "4",
		"-probe-rate", "4", "-trace-out", tracePath,
		"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "45s")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting funcsim-run: %w", err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	}()

	// The child prints the bound address first; everything after is
	// ordinary run output we just echo.
	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`metrics: serving on (http://\S+)`)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()

	var url string
	select {
	case url = <-addrCh:
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("funcsim-run never printed its metrics address")
	}

	var lastErr error
	metricsOK := false
	for time.Now().Before(deadline) {
		if !metricsOK {
			snap, err := scrape(url)
			switch {
			case err != nil:
				lastErr = err
			default:
				if missing := check(snap); len(missing) == 0 {
					metricsOK = true
					fmt.Println("obssmoke: metrics OK, waiting for trace file")
				} else {
					lastErr = fmt.Errorf("waiting for histograms: %s", strings.Join(missing, ", "))
				}
			}
		}
		if metricsOK {
			// The trace file lands after the evaluation finishes (the
			// child writes it just before its metrics endpoint lingers).
			if err := checkTrace(tracePath); err == nil {
				return checkProm(url)
			} else {
				lastErr = err
			}
		}
		time.Sleep(2 * time.Second)
	}
	return fmt.Errorf("deadline exceeded; last state: %w", lastErr)
}

// checkTrace asserts the emitted Chrome trace file parses as JSON and
// holds at least one complete event.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("waiting for trace file: %w", err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace file is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace file holds no events")
	}
	for i, e := range tr.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			return fmt.Errorf("trace event %d lacks name/ph", i)
		}
	}
	fmt.Printf("obssmoke: trace OK (%d events)\n", len(tr.TraceEvents))
	return nil
}

// checkProm scrapes the same endpoint in Prometheus text exposition
// form and asserts the output is well-formed: the versioned content
// type, a TYPE line and cumulative bucket series for each required
// histogram family (names sanitized to Prometheus conventions), and
// no line that is neither a comment nor "name[{labels}] value".
func checkProm(url string) error {
	resp, err := http.Get(url + "?format=prom")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prom endpoint returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return fmt.Errorf("prom endpoint served %q, want the versioned text exposition content type", ct)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		return err
	}
	text := body.String()
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	for i, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			return fmt.Errorf("prom line %d is malformed: %q", i+1, line)
		}
	}
	for _, name := range required {
		fam := promName(name)
		if !strings.Contains(text, "# TYPE "+fam+" histogram") {
			return fmt.Errorf("prom exposition lacks TYPE line for %s", fam)
		}
		if !strings.Contains(text, fam+`_bucket{le="+Inf"}`) && !strings.Contains(text, fam+"_bucket{") {
			return fmt.Errorf("prom exposition lacks bucket series for %s", fam)
		}
	}
	fmt.Println("obssmoke: prom exposition OK")
	return nil
}

// promName mirrors the registry's name sanitization (dots become
// underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

func scrape(url string) (*snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		return nil, fmt.Errorf("endpoint served %q, want application/json", ct)
	}
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("malformed JSON snapshot: %w", err)
	}
	return &snap, nil
}

// check returns the names of required histograms that are still
// missing or empty, plus any schema violations.
func check(snap *snapshot) []string {
	var missing []string
	for _, name := range required {
		h, ok := snap.Histograms[name]
		switch {
		case !ok:
			missing = append(missing, name+" (absent)")
		case h.Count <= 0:
			missing = append(missing, name+" (empty)")
		case len(h.Counts) != len(h.Bounds)+1:
			missing = append(missing, fmt.Sprintf("%s (schema: %d counts for %d bounds)",
				name, len(h.Counts), len(h.Bounds)))
		}
	}
	return missing
}
