// Command sweepsmoke is the end-to-end crash-resume gate for the
// sweep engine: it runs a small scenario grid to completion as the
// reference, starts the same grid again with a per-cell delay, SIGKILLs
// the process mid-grid (a real kill -9, not a polite shutdown), and
// resumes with -resume. It then asserts the crash-resume contract:
//
//   - the killed run checkpointed some but not all cells;
//   - the resumed run skipped exactly the checkpointed cells and
//     executed exactly the remainder — no cell ran twice;
//   - every cell result file (and the summary) is byte-identical to
//     the uninterrupted reference run's.
//
// Run it via `make sweep-smoke` (check.sh includes it).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// spec is the smoke grid: 2 stacks × 2 models × 2 seeds on one array
// size — 8 cells, all on the cheap tiers so the smoke stays fast.
const spec = `{
  "name": "smoke",
  "sizes": [8],
  "stacks": [
    {"name": "clean", "stack": []},
    {"name": "faults", "stack": [
      {"kind": "stuck_at", "params": {"p_on": 0.05, "p_off": 0.05}},
      {"kind": "d2d_variation", "params": {"sigma": 0.2}}
    ]}
  ],
  "models": ["ideal", "analytical"],
  "seeds": [1, 2],
  "jobs": 1
}`

const totalCells = 8

func main() {
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()
	if err := run(*timeout); err != nil {
		fmt.Fprintln(os.Stderr, "sweepsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("sweepsmoke: PASS")
}

func run(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	work, err := os.MkdirTemp("", "sweepsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	specPath := filepath.Join(work, "spec.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		return err
	}
	// Build the real binary: the kill must hit the sweep process
	// itself, which `go run`'s wrapper would shield.
	bin := filepath.Join(work, "geniex-sweep")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/geniex-sweep").CombinedOutput(); err != nil {
		return fmt.Errorf("building geniex-sweep: %v\n%s", err, out)
	}

	// Reference: the same grid, uninterrupted.
	refDir := filepath.Join(work, "ref")
	if out, err := exec.Command(bin, "-spec", specPath, "-out", refDir).CombinedOutput(); err != nil {
		return fmt.Errorf("reference run: %v\n%s", err, out)
	}
	if n := countCells(refDir); n != totalCells {
		return fmt.Errorf("reference run checkpointed %d/%d cells", n, totalCells)
	}

	// Victim: slowed cells, killed as soon as the grid is mid-flight.
	vicDir := filepath.Join(work, "vic")
	victim := exec.Command(bin, "-spec", specPath, "-out", vicDir, "-cell-delay", "250ms")
	var vicOut bytes.Buffer
	victim.Stdout, victim.Stderr = &vicOut, &vicOut
	if err := victim.Start(); err != nil {
		return err
	}
	for countCells(vicDir) < 2 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			return fmt.Errorf("timed out waiting for the victim to checkpoint cells\n%s", vicOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL
		return err
	}
	victim.Wait() // reaps; the kill error state is expected
	done := countCells(vicDir)
	if done == 0 || done >= totalCells {
		return fmt.Errorf("victim checkpointed %d/%d cells — kill landed outside the grid", done, totalCells)
	}
	fmt.Printf("sweepsmoke: killed victim with %d/%d cells checkpointed\n", done, totalCells)

	// Resume and parse its accounting.
	resume := exec.Command(bin, "-spec", specPath, "-out", vicDir, "-resume")
	resOut, err := resume.CombinedOutput()
	if err != nil {
		return fmt.Errorf("resume run: %v\n%s", err, resOut)
	}
	executed, skipped, err := parseCounts(string(resOut))
	if err != nil {
		return fmt.Errorf("%w\n%s", err, resOut)
	}
	// No cell runs twice: the resume executed exactly the cells the
	// victim had not checkpointed. (The victim was SIGKILLed, so
	// nothing could have been checkpointed after our count.)
	if skipped != done || executed != totalCells-done {
		return fmt.Errorf("resume accounting: executed=%d skipped=%d, want %d/%d\n%s",
			executed, skipped, totalCells-done, done, resOut)
	}
	if n := countCells(vicDir); n != totalCells {
		return fmt.Errorf("resumed run left %d/%d cells", n, totalCells)
	}

	// The resumed sweep is indistinguishable from the uninterrupted
	// one: every artifact byte-compares equal.
	names, err := filepath.Glob(filepath.Join(refDir, "cells", "*.json"))
	if err != nil {
		return err
	}
	for _, ref := range names {
		base := filepath.Base(ref)
		a, err := os.ReadFile(ref)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(filepath.Join(vicDir, "cells", base))
		if err != nil {
			return fmt.Errorf("resumed run missing cell %s: %w", base, err)
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("cell %s differs between resumed and reference runs:\n%s\nvs\n%s", base, a, b)
		}
	}
	a, err := os.ReadFile(filepath.Join(refDir, "summary.json"))
	if err != nil {
		return err
	}
	b, err := os.ReadFile(filepath.Join(vicDir, "summary.json"))
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("summary.json differs between resumed and reference runs")
	}
	fmt.Printf("sweepsmoke: resume executed %d, skipped %d; all %d cell files byte-identical\n",
		executed, skipped, totalCells)
	return nil
}

// countCells counts completed checkpoint files (atomic renames only —
// in-flight .tmp-* files don't match).
func countCells(dir string) int {
	names, _ := filepath.Glob(filepath.Join(dir, "cells", "*.json"))
	n := 0
	for _, f := range names {
		if !strings.HasPrefix(filepath.Base(f), ".") {
			n++
		}
	}
	return n
}

var countsRe = regexp.MustCompile(`sweep: executed=(\d+) skipped=(\d+) failed=(\d+)`)

// parseCounts extracts the runner's accounting line.
func parseCounts(out string) (executed, skipped int, err error) {
	m := countsRe.FindStringSubmatch(out)
	if m == nil {
		return 0, 0, fmt.Errorf("no accounting line in sweep output")
	}
	fmt.Sscanf(m[1], "%d", &executed)
	fmt.Sscanf(m[2], "%d", &skipped)
	if m[3] != "0" {
		return executed, skipped, fmt.Errorf("resume reported failed cells")
	}
	return executed, skipped, nil
}
