// Command loadsmoke is the end-to-end gate for per-tenant
// observability: it launches geniex-serve with a circuit-backed
// ladder and an armed latency SLO, drives it with scripts/loadgen
// (several tenants), and then cross-checks three views of the same
// traffic:
//
//   - Metrics: the server's serve.tenant.latency_seconds{tenant}
//     histograms must agree with loadgen's client-side per-tenant
//     view — exactly on served-request counts, and within bucket
//     quantization tolerance on the median latency.
//   - Prometheus exposition: /metrics?format=prom must carry the
//     per-tenant bucket series and the serve.latency SLO burn-rate
//     gauges.
//   - Trace: /trace must export a parented span tree reaching from a
//     circuit solve up through tile, MVM, and forward spans to a
//     serve.request root on a per-tenant track.
//
// It exits 0 on success and 1 with a diagnosis otherwise. Run it via
// `make load-smoke` (check.sh includes it).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("loadsmoke: PASS")
}

func run() error {
	// A circuit-backed ladder so the trace tree includes real solver
	// spans; fastcircuit keeps per-request cost tolerable. The latency
	// SLO is armed with a generous target — the gate checks plumbing,
	// not tail latency.
	cmd := exec.Command("go", "run", "./cmd/geniex-serve",
		"-addr", "127.0.0.1:0",
		"-tiers", "fastcircuit,ideal",
		"-train", "48", "-epochs", "1", "-channels", "4", "-size", "8",
		"-max-inflight", "4", "-tenant-queue", "16",
		"-deadline", "10s", "-max-deadline", "15s",
		"-slo-latency-target", "8s", "-slo-latency-objective", "0.9")
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting geniex-serve: %w", err)
	}
	defer func() {
		if cmd.Process != nil {
			syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		}
		cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`serve: listening on (http://\S+)`)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := re.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()

	var url string
	select {
	case url = <-addrCh:
	case <-time.After(3 * time.Minute):
		return fmt.Errorf("geniex-serve never printed its listen address")
	}

	sumPath, err := os.CreateTemp("", "loadsmoke-summary-*.json")
	if err != nil {
		return err
	}
	sumFile := sumPath.Name()
	sumPath.Close()
	defer os.Remove(sumFile)

	// Modest open-loop load: enough traffic for every tenant's
	// histogram to fill, low enough that the circuit tier serves most
	// of it rather than shedding everything to the floor.
	lg := exec.Command("go", "run", "./scripts/loadgen",
		"-url", url, "-qps", "10", "-duration", "3s", "-tenants", "3",
		"-out", sumFile)
	lg.Stdout = os.Stdout
	lg.Stderr = os.Stderr
	if err := lg.Run(); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}

	client := summaryFromFile(sumFile)
	if client == nil {
		return fmt.Errorf("loadgen summary %s is unreadable", sumFile)
	}
	if len(client.Tenants) < 3 {
		return fmt.Errorf("loadgen reports %d tenants, want 3", len(client.Tenants))
	}

	if err := checkMetrics(url, client); err != nil {
		return err
	}
	if err := checkProm(url, client); err != nil {
		return err
	}
	// Deadline-expired requests answer 504 while their tier execution
	// winds down in the background; scrape the trace only once the
	// server is idle, so every span tree in the ring is complete.
	if err := awaitQuiesce(url, 2*time.Minute); err != nil {
		return err
	}
	return checkTrace(url)
}

// awaitQuiesce polls the inflight/queue-depth gauges until the server
// has no request work outstanding.
func awaitQuiesce(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			return err
		}
		var snap struct {
			Gauges map[string]int64 `json:"gauges"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("malformed metrics snapshot: %w", err)
		}
		if snap.Gauges["serve.inflight"] == 0 && snap.Gauges["serve.queue_depth"] == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not quiesce: inflight %d, queued %d",
				snap.Gauges["serve.inflight"], snap.Gauges["serve.queue_depth"])
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// loadgen's summary shape (only the fields the gate reads).
type clientSummary struct {
	Requests int `json:"requests"`
	Tenants  map[string]struct {
		Requests  int                `json:"requests"`
		OK        int                `json:"ok"`
		LatencyMS map[string]float64 `json:"latency_ms"`
	} `json:"tenants"`
}

func summaryFromFile(path string) *clientSummary {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var s clientSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil
	}
	return &s
}

// snapshot mirrors the slices of obs.SnapshotData the gate reads.
type snapshot struct {
	Histograms map[string]struct {
		Count int64   `json:"count"`
		P50   float64 `json:"p50"`
	} `json:"histograms"`
	SLOs map[string]struct {
		Objective float64 `json:"objective"`
		TotalGood int64   `json:"total_good"`
		TotalBad  int64   `json:"total_bad"`
	} `json:"slos"`
}

// checkMetrics asserts the server-side per-tenant histograms agree
// with the client-side view: the serve.tenant.latency_seconds{tenant}
// count equals the tenant's 200 count exactly (the server observes
// that histogram only on served responses), and the medians agree
// within histogram bucket quantization (LatencyBuckets grow ×4 per
// bucket) plus a constant floor for client-side HTTP overhead.
func checkMetrics(url string, client *clientSummary) error {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("malformed metrics snapshot: %w", err)
	}

	for tenant, ts := range client.Tenants {
		key := fmt.Sprintf("serve.tenant.latency_seconds{tenant=%q}", tenant)
		h, ok := snap.Histograms[key]
		if ts.OK == 0 {
			continue // nothing served; the series may legitimately be absent
		}
		if !ok {
			return fmt.Errorf("metrics snapshot lacks %s (client saw %d OKs)", key, ts.OK)
		}
		if h.Count != int64(ts.OK) {
			return fmt.Errorf("%s count %d != client-side OK count %d", key, h.Count, ts.OK)
		}
		serverP50 := h.P50 * 1000 // seconds → ms
		clientP50 := ts.LatencyMS["p50"]
		if serverP50 > clientP50*4+10 || clientP50 > serverP50*4+10 {
			return fmt.Errorf("%s median disagrees: server %.1fms vs client %.1fms (tolerance ×4+10ms)",
				key, serverP50, clientP50)
		}
		fmt.Printf("loadsmoke: %s OK (count %d, p50 server %.1fms / client %.1fms)\n",
			tenant, h.Count, serverP50, clientP50)
	}

	slo, ok := snap.SLOs["serve.latency"]
	if !ok {
		return fmt.Errorf("metrics snapshot lacks the serve.latency SLO tracker")
	}
	if slo.TotalGood+slo.TotalBad == 0 {
		return fmt.Errorf("serve.latency SLO observed nothing under load")
	}
	fmt.Printf("loadsmoke: serve.latency SLO OK (objective %g, %d good / %d bad)\n",
		slo.Objective, slo.TotalGood, slo.TotalBad)
	return nil
}

// checkProm asserts the Prometheus exposition carries the per-tenant
// bucket series and the SLO burn-rate gauges.
func checkProm(url string, client *clientSummary) error {
	resp, err := http.Get(url + "/metrics?format=prom")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		return fmt.Errorf("prom endpoint served %q, want the versioned text exposition content type", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(data)
	for tenant, ts := range client.Tenants {
		if ts.OK == 0 {
			continue
		}
		series := fmt.Sprintf("serve_tenant_latency_seconds_bucket{tenant=%q", tenant)
		if !strings.Contains(text, series) {
			return fmt.Errorf("prom exposition lacks %s...}", series)
		}
	}
	for _, line := range []string{
		`obs_slo_burn_rate{slo="serve.latency"}`,
		`obs_slo_objective{slo="serve.latency"}`,
		"# TYPE serve_tenant_latency_seconds histogram",
	} {
		if !strings.Contains(text, line) {
			return fmt.Errorf("prom exposition lacks %q", line)
		}
	}
	fmt.Println("loadsmoke: prom exposition OK")
	return nil
}

// checkTrace fetches the span ring as Chrome trace JSON and walks the
// parent chain from the newest circuit solve span up to its
// serve.request root, asserting the expected intermediate spans and a
// per-tenant track name. The ring evicts oldest-first and parents end
// after children, so the newest solve's ancestors are always retained.
func checkTrace(url string) error {
	resp, err := http.Get(url + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("trace endpoint returned invalid JSON: %w", err)
	}

	id := func(args map[string]any, key string) int64 {
		if f, ok := args[key].(float64); ok {
			return int64(f)
		}
		return 0
	}
	spans := map[int64]span{}
	tracks := map[int64]string{} // tid → thread_name (per-tenant tracks)
	type candidate struct {
		id int64
		ts float64
	}
	var solves []candidate
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				tracks[e.Tid] = n
			}
			continue
		}
		sid := id(e.Args, "span_id")
		if sid == 0 {
			continue
		}
		spans[sid] = span{name: e.Name, parent: id(e.Args, "parent_id"), tid: e.Tid}
		if e.Name == "xbar.batch.solve" {
			solves = append(solves, candidate{sid, e.Ts})
		}
	}
	if len(solves) == 0 {
		return fmt.Errorf("trace holds no xbar.batch.solve span (circuit tier never served?)")
	}
	sort.Slice(solves, func(i, j int) bool { return solves[i].ts > solves[j].ts })

	// Walk each solve → ... → root, newest first; accept the first
	// complete chain. A quiesced server's newest chains are always
	// complete (parents end — and so are recorded — after children),
	// so older, partially evicted chains only arise after the ring
	// wrapped mid-run.
	var lastErr error
	for _, c := range solves {
		chain, root, err := walk(spans, c.id)
		if err != nil {
			lastErr = err
			continue
		}
		for _, want := range []string{"xbar.batch.solve", "funcsim.tile", "funcsim.mvm", "funcsim.forward", "serve.request"} {
			found := false
			for _, got := range chain {
				if got == want {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("span chain %v lacks %s", chain, want)
			}
		}
		if root.name != "serve.request" {
			return fmt.Errorf("span chain root is %s, want serve.request (chain %v)", root.name, chain)
		}
		track := tracks[root.tid]
		if !strings.HasPrefix(track, "tenant:") {
			return fmt.Errorf("serve.request root rides track %q, want a tenant:* track", track)
		}
		fmt.Printf("loadsmoke: trace OK (chain %s on %s)\n", strings.Join(chain, " → "), track)
		return nil
	}
	return fmt.Errorf("no solve span has a complete parent chain: %w", lastErr)
}

// span is one exported X event's identity: name, parent link, track.
type span struct {
	name   string
	parent int64
	tid    int64
}

// walk follows parent links from sid to a root, returning the chain
// of span names.
func walk(spans map[int64]span, sid int64) ([]string, span, error) {
	var chain []string
	var root span
	cur := sid
	for i := 0; i < 32; i++ {
		s, ok := spans[cur]
		if !ok {
			return nil, root, fmt.Errorf("span chain broken at id %d (after %s)", cur, strings.Join(chain, " → "))
		}
		chain = append(chain, s.name)
		root = s
		if s.parent == 0 {
			return chain, root, nil
		}
		cur = s.parent
	}
	return nil, root, fmt.Errorf("span chain deeper than 32 (cycle?): %s", strings.Join(chain, " → "))
}
