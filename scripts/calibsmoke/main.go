// Command calibsmoke is the end-to-end gate for online
// self-calibration: it puts two identical GENIEx tiers under live MVM
// traffic — one frozen, one with a background calibrator feeding on
// the fidelity probe and hot-swapping fine-tuned model versions — and
// asserts the closed loop actually pays off:
//
//   - the calibrated tier's probe rRMSE ends at least 2× lower than
//     the frozen tier's (the drift scenario is a deliberately
//     under-trained surrogate, the stand-in for a model whose device
//     has drifted away from its training data);
//   - at least one fine-tuned version was published by hot-swap;
//   - concurrent MVM clients racing the swaps lose zero requests.
//
// Run it via `make calib-smoke` (check.sh includes it).
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/calib"
	"geniex/internal/core"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("calibsmoke: PASS")
}

// harshXbar is the aggressively non-ideal 8×8 design point the repo's
// surrogate-quality tests use: distortion large enough that surrogate
// fidelity is measurable.
func harshXbar() (xbar.Config, error) {
	return xbar.NewConfig(8, 8,
		xbar.WithRon(25e3), xbar.WithOnOffRatio(2),
		xbar.WithParasitics(500, 100, 25), xbar.WithVsupply(0.5))
}

func run() error {
	start := time.Now()
	xcfg, err := harshXbar()
	if err != nil {
		return err
	}

	// The drift scenario: a surrogate trained far too briefly, so its
	// predictions diverge from the circuit the way a production model
	// does after the device drifts from its training data.
	fmt.Println("calibsmoke: training deliberately weak GENIEx surrogate...")
	ds, err := core.Generate(xcfg, core.GenOptions{
		Samples:    120,
		StreamBits: 2, SliceBits: 2,
		Sparsities: []float64{0, 0.5},
		Seed:       5,
	})
	if err != nil {
		return err
	}
	weak, err := core.NewModel(xcfg, 24, 7)
	if err != nil {
		return err
	}
	if err := weak.Train(ds, core.TrainOptions{Epochs: 3, BatchSize: 32, LR: 1e-3, Seed: 9}); err != nil {
		return err
	}

	newEngine := func(swappable bool) (*funcsim.Engine, *funcsim.Matrix, *linalg.Dense, error) {
		opts := []funcsim.Option{
			funcsim.WithStreamBits(2), funcsim.WithSliceBits(2),
			funcsim.WithProbeRate(1),
		}
		if swappable {
			opts = append(opts, funcsim.WithSwappable())
		}
		cfg, err := funcsim.NewConfig(xcfg, opts...)
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := funcsim.NewEngine(cfg, funcsim.GENIEx{Model: weak})
		if err != nil {
			return nil, nil, nil, err
		}
		rng := linalg.NewRNG(31)
		w := linalg.NewDense(20, 12) // 3×2 tile grid
		for i := range w.Data {
			w.Data[i] = 2*rng.Float64() - 1
		}
		x := linalg.NewDense(4, 20)
		for i := range x.Data {
			x.Data[i] = 2*rng.Float64() - 1
		}
		mat, err := eng.Lower(w)
		if err != nil {
			eng.Close()
			return nil, nil, nil, err
		}
		return eng, mat, x, nil
	}

	frozenEng, frozenMat, x, err := newEngine(false)
	if err != nil {
		return err
	}
	defer frozenEng.Close()
	calEng, calMat, _, err := newEngine(true)
	if err != nil {
		return err
	}
	defer calEng.Close()

	cal, err := calib.New(calib.Config{
		Model: weak,
		Probe: calEng.Probe(),
		Swap: func(m *core.Model) (int64, error) {
			return calEng.SwapModel(funcsim.GENIEx{Model: m})
		},
		// Always-triggered (no SLO/drift gates): the smoke's weak
		// surrogate is out of spec by construction, and the gate is
		// about the loop working, not the trigger tuning.
		MinSamples:     48,
		Steps:          400,
		DutyFactor:     1,
		MinImprovement: 0.01,
		Seed:           7,
	})
	if err != nil {
		return err
	}
	defer cal.Close()

	// Concurrent MVM clients on both tiers, racing whatever hot-swaps
	// the calibrator performs. The "zero dropped requests" gate: every
	// MVM must succeed.
	var (
		stop    atomic.Bool
		mvmErrs atomic.Int64
		mvms    atomic.Int64
		wg      sync.WaitGroup
	)
	const clients = 3
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			yf := linalg.NewDense(x.Rows, frozenMat.Out())
			yc := linalg.NewDense(x.Rows, calMat.Out())
			for !stop.Load() {
				if err := frozenMat.MVMInto(yf, x); err != nil {
					mvmErrs.Add(1)
					return
				}
				if err := calMat.MVMInto(yc, x); err != nil {
					mvmErrs.Add(1)
					return
				}
				mvms.Add(2)
			}
		}()
	}

	// Let traffic flow until the calibrator has published at least two
	// versions (one publish is the gate; two proves the loop keeps
	// going), or a generous deadline passes.
	deadline := time.Now().Add(90 * time.Second)
	for cal.Stats().Published < 2 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	st := cal.Stats()
	fmt.Printf("calibsmoke: %d MVMs under swaps, %s\n", mvms.Load(), st)
	if mvmErrs.Load() != 0 {
		return fmt.Errorf("%d MVMs failed while racing hot-swaps", mvmErrs.Load())
	}
	if st.Published < 1 {
		return fmt.Errorf("calibrator published no fine-tuned version (rounds %d, captured %d)",
			st.Rounds, st.Reservoir.Captured)
	}
	if v := calEng.ModelVersion(); v < 2 {
		return fmt.Errorf("calibrated engine still at version %d after %d publishes", v, st.Published)
	}
	if v := frozenEng.ModelVersion(); v != 1 {
		return fmt.Errorf("frozen engine advanced to version %d", v)
	}

	// Refresh both probes' EWMA against the tiers' current models: the
	// frozen tier still runs the weak surrogate, the calibrated tier
	// its latest published version. The EWMA weighs the last ~20
	// probes, so a fresh serial burst makes it reflect current
	// fidelity, not history.
	fmt.Println("calibsmoke: refreshing probe fidelity gauges...")
	for i := 0; i < 120; i++ {
		if _, err := frozenMat.MVM(x); err != nil {
			return err
		}
		if _, err := calMat.MVM(x); err != nil {
			return err
		}
		time.Sleep(10 * time.Millisecond) // let the paced probes sample fresh solves
	}
	frozenEng.Probe().Drain(30 * time.Second)
	calEng.Probe().Drain(30 * time.Second)

	frozen := frozenEng.Probe().Stats()
	calibrated := calEng.Probe().Stats()
	fmt.Printf("calibsmoke: probe rRMSE EWMA: frozen %.4f (%d solves), calibrated %.4f (%d solves)\n",
		frozen.RRMSEEWMA, frozen.Solved, calibrated.RRMSEEWMA, calibrated.Solved)
	if frozen.Solved == 0 || calibrated.Solved == 0 {
		return fmt.Errorf("probes did not solve (frozen %d, calibrated %d)", frozen.Solved, calibrated.Solved)
	}
	if calibrated.RRMSEEWMA <= 0 {
		return fmt.Errorf("calibrated tier reports non-positive rRMSE EWMA %g", calibrated.RRMSEEWMA)
	}
	if frozen.RRMSEEWMA < 2*calibrated.RRMSEEWMA {
		return fmt.Errorf("calibration did not pay off: frozen rRMSE %.4f < 2× calibrated %.4f",
			frozen.RRMSEEWMA, calibrated.RRMSEEWMA)
	}
	fmt.Printf("calibsmoke: done in %.1fs\n", time.Since(start).Seconds())
	return nil
}
