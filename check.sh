#!/bin/sh
# Full repository gate: vet, build, tests, and the race detector on
# the concurrency-bearing solver packages. Mirrors `make check` for
# environments without make.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/xbar ./internal/funcsim ./internal/linalg
