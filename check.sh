#!/bin/sh
# Full repository gate: formatting, vet, build, tests, the race
# detector on the concurrency-bearing solver packages, and the
# end-to-end smokes. Mirrors `make check` for environments without
# make.
set -eux

# The trace smoke leaves trace_smoke.json behind when a later step (or
# the smoke itself) fails; clean it up on every exit path.
trap 'rm -f trace_smoke.json' EXIT

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/xbar ./internal/funcsim ./internal/hwtrain ./internal/linalg ./internal/obs ./internal/serve
go run ./scripts/obssmoke
go run ./cmd/funcsim-run -mode ideal -size 8 -train 24 -test 6 \
	-epochs 1 -channels 4 -probe-rate 8 -trace-out trace_smoke.json
go run ./scripts/tracecheck trace_smoke.json
go run ./scripts/servesmoke
go run ./scripts/sweepsmoke
go run ./scripts/calibsmoke
go run ./scripts/loadsmoke
go run ./scripts/obscatalog
# Tier names resolve only through the funcsim model registry: no Go
# file may switch on tier-name strings.
if grep -rn --include='*.go' -E 'case "(ideal|analytical|geniex|geniex-adaptive|circuit|fastcircuit)"' .; then
	echo "tier-name string switch found; use funcsim.ModelByName"; exit 1
fi
