#!/bin/sh
# Full repository gate: vet, build, tests, and the race detector on
# the concurrency-bearing solver packages. Mirrors `make check` for
# environments without make.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short ./internal/xbar ./internal/funcsim ./internal/hwtrain ./internal/linalg ./internal/obs
go run ./scripts/obssmoke
