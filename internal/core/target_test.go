package core

import (
	"testing"

	"geniex/internal/linalg"
)

func TestTargetString(t *testing.T) {
	if TargetRatio.String() != "ratio" || TargetCurrent.String() != "current" {
		t.Error("target names wrong")
	}
	if Target(9).String() == "" {
		t.Error("unknown target should still render")
	}
}

func TestDirectModelTrainsAndPredicts(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 120, 51)
	train, val := ds.Split(0.2, 53)
	d, err := NewDirectModel(cfg, 48, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(train, TrainOptions{Epochs: 120, BatchSize: 16, LR: 2e-3, Seed: 57}); err != nil {
		t.Fatal(err)
	}
	res := Evaluate(d, val)
	if res.Samples == 0 {
		t.Fatal("no samples evaluated")
	}
	// The direct model must at least be usable: currents non-negative
	// and of plausible magnitude.
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	copy(g.Data, val.G.Row(0))
	curr := d.NonIdealCurrents(val.V.Row(0), g)
	full := float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
	for j, c := range curr {
		if c < 0 || c > full*1.5 {
			t.Fatalf("current[%d] = %v implausible (full scale %v)", j, c, full)
		}
	}
}

// The paper's formulation argument: at matched budget, predicting the
// ratio fR tracks the circuit better than predicting currents
// directly (the MLP struggles with the multiplicative V×G
// interaction).
func TestRatioFormulationBeatsDirect(t *testing.T) {
	cfg := testConfig()
	cfg.Vsupply = 0.5
	ds, err := Generate(cfg, GenOptions{Samples: 240, StreamBits: 4, SliceBits: 4, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	train, val := ds.Split(0.2, 63)

	ratio, err := NewModel(cfg, 48, 65)
	if err != nil {
		t.Fatal(err)
	}
	if err := ratio.Train(train, TrainOptions{Epochs: 150, BatchSize: 16, LR: 2e-3, Seed: 67}); err != nil {
		t.Fatal(err)
	}
	direct, err := NewDirectModel(cfg, 48, 65)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.Train(train, TrainOptions{Epochs: 150, BatchSize: 16, LR: 2e-3, Seed: 67}); err != nil {
		t.Fatal(err)
	}

	rRes := Evaluate(ratio, val)
	dRes := Evaluate(direct, val)
	t.Logf("NF RMSE: ratio=%.4f direct=%.4f", rRes.RMSENF, dRes.RMSENF)
	if rRes.RMSENF >= dRes.RMSENF {
		t.Errorf("ratio formulation (%.4f) did not beat direct (%.4f)", rRes.RMSENF, dRes.RMSENF)
	}
}

func TestDirectModelInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Rows = 0
	if _, err := NewDirectModel(cfg, 16, 1); err == nil {
		t.Error("expected config error")
	}
}
