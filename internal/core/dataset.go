// Package core implements GENIEx — the paper's primary contribution: a
// neural network that learns the transfer characteristics of a
// non-ideal memristive crossbar.
//
// For an N×M crossbar the network maps the concatenation of the input
// voltage vector V (N values) and the flattened conductance matrix G
// (N·M values) to the distortion ratio vector
//
//	fR(V, G) = Iideal / Inon-ideal   (M values),
//
// from which the non-ideal current is recovered as Iideal/fR.
// Predicting the ratio rather than the current avoids asking the MLP
// to model multiplicative V×G interactions (Section 4 of the paper).
//
// Training data comes from the circuit-level solver in package xbar —
// the repository's HSPICE substitute — on sparsity-stratified random
// (V, G) combinations mimicking the distributions produced by
// bit-sliced DNN workloads.
package core

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Dataset is a labelled set of crossbar transfer samples. All tensors
// are stored in physical units (volts, siemens, dimensionless fR);
// normalization happens inside the model.
type Dataset struct {
	Cfg xbar.Config
	V   *linalg.Dense // n × Rows input voltages
	G   *linalg.Dense // n × (Rows·Cols) conductances
	FR  *linalg.Dense // n × Cols distortion ratios (labels)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.V.Rows }

// GenOptions controls dataset synthesis.
type GenOptions struct {
	// Samples is the number of (V, G) combinations to generate.
	Samples int
	// StreamBits/SliceBits align the sampled voltages and conductances
	// to the digit grids produced by bit-sliced operation (the
	// workloads GENIEx will see inside the functional simulator).
	// Zero means continuous sampling.
	StreamBits, SliceBits int
	// Sparsities is the list of zero-probability strata; each sample
	// draws an input and a weight sparsity uniformly from this list.
	// Nil defaults to {0, 0.25, 0.5, 0.75, 0.9}, reflecting the high
	// sparsity the paper observes in bit-sliced DNN tensors.
	Sparsities []float64
	// Seed drives all randomness.
	Seed uint64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Sparsities == nil {
		o.Sparsities = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	return o
}

// Generate synthesizes a labelled dataset by driving the full
// non-linear circuit solver over random stratified (V, G)
// combinations. It is the Go equivalent of the paper's HSPICE data
// collection runs and uses all available CPUs.
func Generate(cfg xbar.Config, opt GenOptions) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if opt.Samples <= 0 {
		return nil, fmt.Errorf("core: Generate with %d samples", opt.Samples)
	}
	rng := linalg.NewRNG(opt.Seed)
	n := opt.Samples
	ds := &Dataset{
		Cfg: cfg,
		V:   linalg.NewDense(n, cfg.Rows),
		G:   linalg.NewDense(n, cfg.Rows*cfg.Cols),
		FR:  linalg.NewDense(n, cfg.Cols),
	}
	for s := 0; s < n; s++ {
		sparsV := opt.Sparsities[rng.Intn(len(opt.Sparsities))]
		sparsG := opt.Sparsities[rng.Intn(len(opt.Sparsities))]
		fillVector(ds.V.Row(s), cfg.Vsupply, opt.StreamBits, sparsV, rng)
		fillConductances(ds.G.Row(s), cfg, opt.SliceBits, sparsG, rng)
	}

	// Label every sample with the circuit solver. Samples are
	// independent, so fan out: each worker programs its own crossbar.
	errs := make([]error, n)
	linalg.ParallelFor(n, func(lo, hi int) {
		xb, err := xbar.New(cfg)
		if err != nil {
			for s := lo; s < hi; s++ {
				errs[s] = err
			}
			return
		}
		g := linalg.NewDense(cfg.Rows, cfg.Cols)
		for s := lo; s < hi; s++ {
			copy(g.Data, ds.G.Row(s))
			if err := xb.Program(g); err != nil {
				errs[s] = err
				return
			}
			sol, err := xb.Solve(ds.V.Row(s))
			if err != nil {
				errs[s] = err
				return
			}
			ideal := xbar.IdealCurrents(ds.V.Row(s), g)
			copy(ds.FR.Row(s), xbar.Ratio(ideal, sol.Currents, cfg))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: labelling dataset: %w", err)
		}
	}
	return ds, nil
}

// fillVector draws one input voltage vector: each entry is zero with
// probability sparsity, otherwise uniform on (0, vmax] — aligned to
// the 2^bits−1 stream grid when bits > 0.
func fillVector(dst []float64, vmax float64, bits int, sparsity float64, rng *linalg.RNG) {
	levels := 0
	if bits > 0 {
		levels = (1 << bits) - 1
	}
	for i := range dst {
		if rng.Float64() < sparsity {
			dst[i] = 0
			continue
		}
		if levels > 0 {
			dst[i] = vmax * float64(1+rng.Intn(levels)) / float64(levels)
		} else {
			dst[i] = vmax * rng.Float64()
		}
	}
}

// fillConductances draws one conductance matrix: "sparse" cells sit at
// Goff (digital zero), others uniformly across the window — aligned to
// the 2^bits−1 slice grid when bits > 0.
func fillConductances(dst []float64, cfg xbar.Config, bits int, sparsity float64, rng *linalg.RNG) {
	levels := 0
	if bits > 0 {
		levels = (1 << bits) - 1
	}
	for i := range dst {
		if rng.Float64() < sparsity {
			dst[i] = cfg.Goff()
			continue
		}
		var level float64
		if levels > 0 {
			level = float64(1+rng.Intn(levels)) / float64(levels)
		} else {
			level = rng.Float64()
		}
		dst[i] = cfg.ConductanceFromLevel(level)
	}
}

// Split partitions the dataset into train and validation subsets with
// a deterministic shuffle.
func (d *Dataset) Split(valFraction float64, seed uint64) (train, val *Dataset) {
	n := d.Len()
	nVal := int(float64(n) * valFraction)
	if nVal < 1 {
		nVal = 1
	}
	if nVal >= n {
		nVal = n - 1
	}
	perm := linalg.NewRNG(seed).Perm(n)
	pick := func(idx []int) *Dataset {
		out := &Dataset{
			Cfg: d.Cfg,
			V:   linalg.NewDense(len(idx), d.V.Cols),
			G:   linalg.NewDense(len(idx), d.G.Cols),
			FR:  linalg.NewDense(len(idx), d.FR.Cols),
		}
		for i, s := range idx {
			copy(out.V.Row(i), d.V.Row(s))
			copy(out.G.Row(i), d.G.Row(s))
			copy(out.FR.Row(i), d.FR.Row(s))
		}
		return out
	}
	return pick(perm[nVal:]), pick(perm[:nVal])
}
