package core

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Target selects what the surrogate MLP predicts. The paper argues
// (Section 4) that predicting the distortion ratio fR avoids asking a
// linear-transformation network to model the multiplicative V×G
// interaction; TargetCurrent exists to test that argument empirically
// (see the "ab1-ratio" ablation experiment).
type Target int

const (
	// TargetRatio predicts fR = Iideal/Inon-ideal (the paper's
	// formulation; required for use inside the functional simulator).
	TargetRatio Target = iota
	// TargetCurrent predicts the non-ideal output currents directly,
	// normalized by the crossbar's full-scale current.
	TargetCurrent
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetRatio:
		return "ratio"
	case TargetCurrent:
		return "current"
	}
	return fmt.Sprintf("Target(%d)", int(t))
}

// DirectModel is the ablation variant of Model: the same MLP topology
// trained to predict non-ideal currents directly instead of the
// distortion ratio.
type DirectModel struct {
	M *Model // reuses the MLP and normalization machinery
}

// NewDirectModel creates an untrained direct-current surrogate.
func NewDirectModel(cfg xbar.Config, hidden int, seed uint64) (*DirectModel, error) {
	m, err := NewModel(cfg, hidden, seed)
	if err != nil {
		return nil, err
	}
	return &DirectModel{M: m}, nil
}

// fullScale returns the normalization constant for currents.
func (d *DirectModel) fullScale() float64 {
	cfg := d.M.Cfg
	return float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
}

// Train fits the model to the dataset's non-ideal currents
// (reconstructed from the stored ratios).
func (d *DirectModel) Train(ds *Dataset, opt TrainOptions) error {
	// Build a shadow dataset whose FR field holds normalized currents;
	// Model.Train then treats them as generic labels. FRMin/FRMax
	// still give the denormalization window.
	shadow := &Dataset{
		Cfg: ds.Cfg,
		V:   ds.V,
		G:   ds.G,
		FR:  linalg.NewDense(ds.Len(), ds.FR.Cols),
	}
	full := d.fullScale()
	g := linalg.NewDense(ds.Cfg.Rows, ds.Cfg.Cols)
	for s := 0; s < ds.Len(); s++ {
		copy(g.Data, ds.G.Row(s))
		ideal := xbar.IdealCurrents(ds.V.Row(s), g)
		non := xbar.ApplyRatio(ideal, ds.FR.Row(s))
		dst := shadow.FR.Row(s)
		for j := range dst {
			dst[j] = non[j] / full
		}
	}
	return d.M.Train(shadow, opt)
}

// NonIdealCurrents implements CurrentModel. It allocates its result
// and delegates to NonIdealCurrentsInto.
func (d *DirectModel) NonIdealCurrents(v []float64, g *linalg.Dense) []float64 {
	out := make([]float64, d.M.Cfg.Cols)
	d.NonIdealCurrentsInto(out, v, g)
	return out
}

// NonIdealCurrentsInto predicts the non-ideal currents into dst
// (length Cols).
func (d *DirectModel) NonIdealCurrentsInto(dst, v []float64, g *linalg.Dense) {
	// The underlying model denormalizes with its label window, which
	// here holds normalized currents.
	d.M.PredictInto(dst, v, g)
	full := d.fullScale()
	for j, x := range dst {
		if x < 0 {
			x = 0 // currents cannot be negative for non-negative drives
		}
		dst[j] = x * full
	}
}
