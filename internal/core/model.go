package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/xbar"
)

// Model is a trained GENIEx crossbar surrogate: a two-layer MLP of
// shape (Rows + Rows·Cols) × Hidden × Cols predicting the normalized
// distortion ratio fR(V, G), exactly the topology of Section 4 of the
// paper (the paper uses Hidden = 500).
//
// Inputs are normalized to [0, 1]: voltages by Vsupply, conductances
// by their position in the [Goff, Gon] window. Labels are min-max
// normalized with statistics frozen at training time.
type Model struct {
	Cfg    xbar.Config
	Hidden int

	// The MLP is stored as its two layers rather than a Sequential so
	// the G-contribution of the first layer can be cached (see
	// GContext).
	L1 *nn.Linear // (Rows+Rows·Cols) × Hidden
	L2 *nn.Linear // Hidden × Cols

	FRMin, FRMax float64
}

// NewModel creates an untrained GENIEx model for a crossbar design
// point.
func NewModel(cfg xbar.Config, hidden int, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hidden <= 0 {
		return nil, fmt.Errorf("core: model with %d hidden units", hidden)
	}
	rng := linalg.NewRNG(seed)
	in := cfg.Rows + cfg.Rows*cfg.Cols
	return &Model{
		Cfg:    cfg,
		Hidden: hidden,
		L1:     nn.NewLinear(in, hidden, true, rng),
		L2:     nn.NewLinear(hidden, cfg.Cols, true, rng),
		FRMin:  0,
		FRMax:  1,
	}, nil
}

// normalizeV scales voltages into [0, 1].
func (m *Model) normalizeV(dst, v []float64) {
	for i, x := range v {
		dst[i] = x / m.Cfg.Vsupply
	}
}

// normalizeG maps conductances onto their window position in [0, 1].
func (m *Model) normalizeG(dst, g []float64) {
	lo, hi := m.Cfg.Goff(), m.Cfg.Gon()
	inv := 1 / (hi - lo)
	for i, x := range g {
		dst[i] = (x - lo) * inv
	}
}

// inputs assembles the normalized [V | G] design matrix of a dataset.
func (m *Model) inputs(ds *Dataset) *linalg.Dense {
	n := ds.Len()
	in := linalg.NewDense(n, m.Cfg.Rows+m.Cfg.Rows*m.Cfg.Cols)
	for s := 0; s < n; s++ {
		row := in.Row(s)
		m.normalizeV(row[:m.Cfg.Rows], ds.V.Row(s))
		m.normalizeG(row[m.Cfg.Rows:], ds.G.Row(s))
	}
	return in
}

// net wraps the two layers as a Sequential with ReLU for training.
func (m *Model) net() *nn.Sequential {
	return nn.NewSequential(m.L1, nn.NewReLU(), m.L2)
}

// TrainOptions controls GENIEx training.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
	// Verbose, when non-nil, receives one line per epoch.
	Verbose io.Writer
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 120
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LR == 0 {
		o.LR = 1e-3
	}
	return o
}

// Train fits the model to a dataset with Adam on the MSE of the
// normalized ratio. It freezes the label normalization statistics from
// the training set.
func (m *Model) Train(ds *Dataset, opt TrainOptions) error {
	if ds.Cfg.Rows != m.Cfg.Rows || ds.Cfg.Cols != m.Cfg.Cols {
		return fmt.Errorf("core: dataset is %dx%d, model is %dx%d",
			ds.Cfg.Rows, ds.Cfg.Cols, m.Cfg.Rows, m.Cfg.Cols)
	}
	opt = opt.withDefaults()

	// Label normalization.
	m.FRMin, m.FRMax = math.Inf(1), math.Inf(-1)
	for _, f := range ds.FR.Data {
		m.FRMin = math.Min(m.FRMin, f)
		m.FRMax = math.Max(m.FRMax, f)
	}
	if m.FRMax-m.FRMin < 1e-12 {
		// Degenerate labels (e.g. an essentially ideal crossbar):
		// widen the window so normalization stays finite.
		m.FRMax = m.FRMin + 1e-6
	}

	in := m.inputs(ds)
	labels := linalg.NewDense(ds.Len(), m.Cfg.Cols)
	inv := 1 / (m.FRMax - m.FRMin)
	for i, f := range ds.FR.Data {
		labels.Data[i] = (f - m.FRMin) * inv
	}

	net := m.net()
	params := net.Params()
	optim := nn.NewAdam(params, opt.LR)
	rng := linalg.NewRNG(opt.Seed)
	n := ds.Len()

	for epoch := 0; epoch < opt.Epochs; epoch++ {
		perm := rng.Perm(n)
		var epochLoss float64
		batches := 0
		for lo := 0; lo < n; lo += opt.BatchSize {
			hi := lo + opt.BatchSize
			if hi > n {
				hi = n
			}
			bx := linalg.NewDense(hi-lo, in.Cols)
			by := linalg.NewDense(hi-lo, labels.Cols)
			for i, s := range perm[lo:hi] {
				copy(bx.Row(i), in.Row(s))
				copy(by.Row(i), labels.Row(s))
			}
			nn.ZeroGrad(params)
			pred := net.Forward(bx, true)
			loss, grad := nn.MSE(pred, by)
			net.Backward(grad)
			optim.Step()
			epochLoss += loss
			batches++
		}
		if opt.Verbose != nil {
			fmt.Fprintf(opt.Verbose, "epoch %3d/%d  mse=%.6f\n", epoch+1, opt.Epochs, epochLoss/float64(batches))
		}
	}
	return nil
}

// Predict returns the distortion ratio vector fR for one (V, G)
// combination in physical units. It follows the repo-wide Into idiom:
// the allocating method delegates to PredictInto with a fresh result
// buffer.
func (m *Model) Predict(v []float64, g *linalg.Dense) []float64 {
	out := make([]float64, m.Cfg.Cols)
	m.PredictInto(out, v, g)
	return out
}

// PredictInto evaluates fR for one (V, G) combination into dst (length
// Cols, physical units). The per-call contexts still allocate; hot
// loops evaluating many voltage batches against fixed conductances
// should build the contexts once and call PredictVGInto.
func (m *Model) PredictInto(dst, v []float64, g *linalg.Dense) {
	if len(dst) != m.Cfg.Cols {
		panic(fmt.Sprintf("core: predict into %d outputs, want %d", len(dst), m.Cfg.Cols))
	}
	ctx := m.NewGContext(g)
	vb := linalg.NewDense(1, len(v))
	copy(vb.Row(0), v)
	m.PredictWithContextInto(linalg.NewDenseFrom(1, m.Cfg.Cols, dst), vb, ctx)
}

// GContext caches the conductance-dependent part of the first layer.
// The hidden pre-activation is h = Vn·W1v + Gn·W1g + b1; for a fixed
// crossbar tile the term Gn·W1g + b1 is constant, so the functional
// simulator computes it once per (tile, slice) and then evaluates
// whole batches of input streams with a single Rows×Hidden matmul.
// This caching is what makes end-to-end DNN evaluation through GENIEx
// tractable on a CPU.
type GContext struct {
	bias []float64 // Hidden values: Gn·W1g + b1
}

// NewGContext precomputes the hidden-layer contribution of a
// conductance matrix (Rows×Cols, physical units).
func (m *Model) NewGContext(g *linalg.Dense) *GContext {
	if g.Rows != m.Cfg.Rows || g.Cols != m.Cfg.Cols {
		panic(fmt.Sprintf("core: GContext with %dx%d matrix for %dx%d model",
			g.Rows, g.Cols, m.Cfg.Rows, m.Cfg.Cols))
	}
	gn := make([]float64, len(g.Data))
	m.normalizeG(gn, g.Data)
	bias := make([]float64, m.Hidden)
	copy(bias, m.L1.Bias.W.Data)
	// W1 rows [Rows, Rows+Rows·Cols) hold the G block.
	w := m.L1.Weight.W
	for i, gv := range gn {
		if gv == 0 {
			continue
		}
		row := w.Row(m.Cfg.Rows + i)
		linalg.Axpy(gv, row, bias)
	}
	return &GContext{bias: bias}
}

// VContext caches the voltage-dependent first-layer product Vn·W1v of
// one batch of drive voltages. The hidden pre-activation is
// h = Vn·W1v + Gn·W1g + b1: for a fixed voltage batch the first term
// is constant across every conductance context, so the functional
// simulator computes it once per input block and reuses it across all
// the tile slices (different GContexts) that see the same voltages.
// A VContext is immutable after creation and safe to share across
// goroutines — it replaces an identity-keyed memo inside Model whose
// shared mutable state both serialized and thrashed under concurrent
// tile evaluation.
type VContext struct {
	rows int
	base *linalg.Dense // batch×Hidden: Vn·W1v
}

// NewVContext precomputes the hidden-layer contribution of a voltage
// batch (batch×Rows, physical units).
func (m *Model) NewVContext(v *linalg.Dense) *VContext {
	if v.Cols != m.Cfg.Rows {
		panic(fmt.Sprintf("core: VContext with %d inputs for %d rows", v.Cols, m.Cfg.Rows))
	}
	n := v.Rows
	vn := linalg.NewDense(n, m.Cfg.Rows)
	for s := 0; s < n; s++ {
		m.normalizeV(vn.Row(s), v.Row(s))
	}
	// W1 rows [0, Rows) hold the V block.
	w1v := linalg.NewDenseFrom(m.Cfg.Rows, m.Hidden, m.L1.Weight.W.Data[:m.Cfg.Rows*m.Hidden])
	base := linalg.NewDense(n, m.Hidden)
	linalg.MatMulSerialInto(base, vn, w1v)
	return &VContext{rows: n, base: base}
}

// PredictWorkspace holds the scratch buffers of one in-flight
// prediction. It is NOT safe for concurrent use — callers give each
// goroutine its own workspace (zero value ready) and PredictVGInto
// then performs no allocations in steady state.
type PredictWorkspace struct {
	hidden *linalg.Dense
}

func (ws *PredictWorkspace) hiddenFor(rows, cols int) *linalg.Dense {
	if ws.hidden == nil || cap(ws.hidden.Data) < rows*cols {
		ws.hidden = linalg.NewDense(rows, cols)
		return ws.hidden
	}
	ws.hidden.Rows, ws.hidden.Cols = rows, cols
	ws.hidden.Data = ws.hidden.Data[:rows*cols]
	return ws.hidden
}

// PredictVGInto evaluates fR for a cached voltage batch against a
// cached conductance context, writing the physical (denormalized)
// ratios into dst (batch×Cols). It touches no shared mutable state:
// concurrent calls on one Model are safe as long as each passes its
// own workspace and dst.
func (m *Model) PredictVGInto(dst *linalg.Dense, vc *VContext, gc *GContext, ws *PredictWorkspace) {
	n := vc.rows
	if dst.Rows != n || dst.Cols != m.Cfg.Cols {
		panic(fmt.Sprintf("core: predict into %dx%d, want %dx%d", dst.Rows, dst.Cols, n, m.Cfg.Cols))
	}
	// Hidden = ReLU(base + gc.bias).
	hidden := ws.hiddenFor(n, m.Hidden)
	for s := 0; s < n; s++ {
		brow := vc.base.Row(s)
		row := hidden.Row(s)
		for j := range row {
			h := brow[j] + gc.bias[j]
			if h > 0 {
				row[j] = h
			} else {
				row[j] = 0
			}
		}
	}
	linalg.MatMulSerialInto(dst, hidden, m.L2.Weight.W)
	span := m.FRMax - m.FRMin
	for s := 0; s < n; s++ {
		row := dst.Row(s)
		for j := range row {
			row[j] = m.FRMin + (row[j]+m.L2.Bias.W.Data[j])*span
		}
	}
}

// PredictWithContext evaluates fR for a batch of voltage vectors
// (batch × Rows, physical units) against a cached conductance context.
// The returned matrix is batch × Cols of physical (denormalized) fR.
// It allocates its result and delegates to PredictWithContextInto.
func (m *Model) PredictWithContext(v *linalg.Dense, ctx *GContext) *linalg.Dense {
	out := linalg.NewDense(v.Rows, m.Cfg.Cols)
	m.PredictWithContextInto(out, v, ctx)
	return out
}

// PredictWithContextInto evaluates fR for a batch of voltage vectors
// into dst (batch × Cols). It is safe for concurrent use; callers
// evaluating the same voltage batch against many conductance contexts
// should build one VContext and call PredictVGInto instead, which also
// skips the per-call voltage-context and workspace allocations.
func (m *Model) PredictWithContextInto(dst, v *linalg.Dense, ctx *GContext) {
	vc := m.NewVContext(v)
	m.PredictVGInto(dst, vc, ctx, &PredictWorkspace{})
}

// NonIdealCurrents predicts the non-ideal output currents for one
// (V, G) combination: the ideal MVM divided by the predicted ratio. It
// allocates its result and delegates to NonIdealCurrentsInto.
func (m *Model) NonIdealCurrents(v []float64, g *linalg.Dense) []float64 {
	out := make([]float64, m.Cfg.Cols)
	m.NonIdealCurrentsInto(out, v, g)
	return out
}

// NonIdealCurrentsInto predicts the non-ideal output currents into dst
// (length Cols). The prediction contexts and the ideal-current scratch
// still allocate; this is a reporting-path convenience, not a hot-loop
// primitive — the funcsim pipeline uses the cached-context paths.
func (m *Model) NonIdealCurrentsInto(dst, v []float64, g *linalg.Dense) {
	m.PredictInto(dst, v, g) // dst temporarily holds fR
	xbar.ApplyRatioInto(dst, xbar.IdealCurrents(v, g), dst)
}

// Save serializes the model with gob.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModel deserializes a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var m *Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	return m, nil
}

// SaveFile writes the model to the named file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save model %s: %w", path, err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model from the named file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model %s: %w", path, err)
	}
	defer f.Close()
	return LoadModel(f)
}
