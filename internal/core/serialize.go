package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save writes the dataset with gob. Circuit-solver labelling is by far
// the most expensive stage of the GENIEx flow, so datasets are worth
// persisting and sharing between training runs.
func (d *Dataset) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("core: save dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset written by Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var d *Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: load dataset: %w", err)
	}
	if err := d.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: loaded dataset has invalid config: %w", err)
	}
	return d, nil
}

// SaveFile writes the dataset to the named file.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save dataset %s: %w", path, err)
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadDatasetFile reads a dataset from the named file.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load dataset %s: %w", path, err)
	}
	defer f.Close()
	return LoadDataset(f)
}
