package core

import (
	"bytes"
	"math"
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// testConfig is a small, fast design point used throughout the tests.
func testConfig() xbar.Config {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	return cfg
}

func testDataset(t *testing.T, cfg xbar.Config, n int, seed uint64) *Dataset {
	t.Helper()
	ds, err := Generate(cfg, GenOptions{Samples: n, StreamBits: 4, SliceBits: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateShapesAndRanges(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 20, 1)
	if ds.Len() != 20 || ds.V.Cols != 8 || ds.G.Cols != 64 || ds.FR.Cols != 8 {
		t.Fatalf("dataset shapes wrong: %d, %d, %d, %d", ds.Len(), ds.V.Cols, ds.G.Cols, ds.FR.Cols)
	}
	for _, v := range ds.V.Data {
		if v < 0 || v > cfg.Vsupply {
			t.Fatalf("voltage %v out of range", v)
		}
	}
	for _, g := range ds.G.Data {
		if g < cfg.Goff()*(1-1e-9) || g > cfg.Gon()*(1+1e-9) {
			t.Fatalf("conductance %v out of window", g)
		}
	}
	for _, f := range ds.FR.Data {
		if math.IsNaN(f) || f <= 0 {
			t.Fatalf("fR label %v invalid", f)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig()
	a := testDataset(t, cfg, 10, 7)
	b := testDataset(t, cfg, 10, 7)
	for i := range a.FR.Data {
		if a.FR.Data[i] != b.FR.Data[i] {
			t.Fatalf("same seed produced different labels at %d", i)
		}
	}
}

func TestGenerateStreamGridAlignment(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 10, 2)
	// With StreamBits=4, voltages must sit on the 15-level grid.
	for _, v := range ds.V.Data {
		lv := v / cfg.Vsupply * 15
		if math.Abs(lv-math.Round(lv)) > 1e-9 {
			t.Fatalf("voltage %v off the 4-bit grid", v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := Generate(cfg, GenOptions{Samples: 0}); err == nil {
		t.Error("expected error for zero samples")
	}
	cfg.Ron = -1
	if _, err := Generate(cfg, GenOptions{Samples: 5}); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestSplit(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 20, 3)
	train, val := ds.Split(0.25, 9)
	if train.Len() != 15 || val.Len() != 5 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
	// The union of rows must be a permutation of the original: check
	// via multiset of first voltages.
	count := map[float64]int{}
	for s := 0; s < ds.Len(); s++ {
		count[ds.V.At(s, 0)]++
	}
	for s := 0; s < train.Len(); s++ {
		count[train.V.At(s, 0)]--
	}
	for s := 0; s < val.Len(); s++ {
		count[val.V.At(s, 0)]--
	}
	for v, c := range count {
		if c != 0 {
			t.Fatalf("value %v appears with residual count %d", v, c)
		}
	}
}

// trainSmallModel trains a compact GENIEx for the shared config and
// caches nothing: tests each train their own for isolation.
func trainSmallModel(t *testing.T, ds *Dataset, hidden, epochs int) *Model {
	t.Helper()
	m, err := NewModel(ds.Cfg, hidden, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ds, TrainOptions{Epochs: epochs, BatchSize: 16, LR: 2e-3, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelTrainingReducesError(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 150, 5)
	train, val := ds.Split(0.2, 17)

	untrained, err := NewModel(cfg, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	untrained.FRMin, untrained.FRMax = 0.5, 2 // sane denormalization for the baseline
	before := Evaluate(untrained, val)

	m := trainSmallModel(t, train, 48, 150)
	after := Evaluate(m, val)
	if after.RMSENF >= before.RMSENF {
		t.Errorf("training did not reduce NF RMSE: %v -> %v", before.RMSENF, after.RMSENF)
	}
}

// The paper's headline (Fig. 5): GENIEx tracks the circuit better than
// the linear analytical model once device non-linearity matters.
func TestGENIExBeatsAnalyticalAtHighVoltage(t *testing.T) {
	cfg := testConfig()
	cfg.Vsupply = 0.5 // strong non-linearity regime
	ds, err := Generate(cfg, GenOptions{Samples: 260, StreamBits: 4, SliceBits: 4, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	train, val := ds.Split(0.2, 23)
	m := trainSmallModel(t, train, 64, 220)

	geniex := Evaluate(m, val)
	analytical := Evaluate(AnalyticalAdapter{Cfg: cfg}, val)
	t.Logf("NF RMSE: GENIEx=%.4f analytical=%.4f", geniex.RMSENF, analytical.RMSENF)
	if geniex.RMSENF >= analytical.RMSENF {
		t.Errorf("GENIEx NF RMSE %v not better than analytical %v", geniex.RMSENF, analytical.RMSENF)
	}
}

func TestPredictWithContextMatchesNetForward(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 40, 29)
	m := trainSmallModel(t, ds, 32, 30)

	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	copy(g.Data, ds.G.Row(0))
	ctx := m.NewGContext(g)

	batch := linalg.NewDense(3, cfg.Rows)
	for b := 0; b < 3; b++ {
		copy(batch.Row(b), ds.V.Row(b))
	}
	fast := m.PredictWithContext(batch, ctx)

	// Reference: full [V|G] forward through the Sequential.
	for b := 0; b < 3; b++ {
		in := linalg.NewDense(1, cfg.Rows+cfg.Rows*cfg.Cols)
		m.normalizeV(in.Row(0)[:cfg.Rows], batch.Row(b))
		m.normalizeG(in.Row(0)[cfg.Rows:], g.Data)
		raw := m.net().Forward(in, false)
		span := m.FRMax - m.FRMin
		for j := 0; j < cfg.Cols; j++ {
			want := m.FRMin + raw.At(0, j)*span
			if math.Abs(fast.At(b, j)-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("context path (%d,%d) = %v, reference %v", b, j, fast.At(b, j), want)
			}
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 30, 31)
	m := trainSmallModel(t, ds, 24, 20)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	copy(g.Data, ds.G.Row(0))
	a := m.Predict(ds.V.Row(0), g)
	b := loaded.Predict(ds.V.Row(0), g)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("loaded model predicts differently at %d: %v vs %v", j, a[j], b[j])
		}
	}
}

func TestNonIdealCurrentsUsesRatio(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 30, 37)
	m := trainSmallModel(t, ds, 24, 20)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	copy(g.Data, ds.G.Row(0))
	v := ds.V.Row(0)
	fr := m.Predict(v, g)
	curr := m.NonIdealCurrents(v, g)
	ideal := xbar.IdealCurrents(v, g)
	for j := range curr {
		r := fr[j]
		if r <= 0 {
			r = 1
		}
		if math.Abs(curr[j]-ideal[j]/r) > 1e-15 {
			t.Fatalf("current[%d] inconsistent with ratio", j)
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewModel(cfg, 0, 1); err == nil {
		t.Error("expected error for zero hidden units")
	}
	cfg.Rows = 0
	if _, err := NewModel(cfg, 10, 1); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestTrainShapeMismatch(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 10, 41)
	other := cfg
	other.Rows = 4
	m, err := NewModel(other, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ds, TrainOptions{Epochs: 1}); err == nil {
		t.Error("expected shape mismatch error")
	}
}

func TestIdealAdapter(t *testing.T) {
	cfg := testConfig()
	r := linalg.NewRNG(43)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	v := make([]float64, cfg.Rows)
	for i := range v {
		v[i] = cfg.Vsupply * r.Float64()
	}
	got := IdealAdapter{}.NonIdealCurrents(v, g)
	want := xbar.IdealCurrents(v, g)
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("ideal adapter mismatch at %d", j)
		}
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	ds := testDataset(t, cfg, 15, 71)
	path := t.TempDir() + "/ds.gob"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() || loaded.Cfg.Rows != cfg.Rows {
		t.Fatalf("loaded dataset metadata wrong: %d samples, %d rows", loaded.Len(), loaded.Cfg.Rows)
	}
	for i := range ds.FR.Data {
		if loaded.FR.Data[i] != ds.FR.Data[i] {
			t.Fatal("loaded labels differ")
		}
	}
}

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := LoadDatasetFile("/nonexistent/ds.gob"); err == nil {
		t.Error("expected error for missing file")
	}
}

// GenerateFrom with the built-in circuit solver as the "measurer" must
// agree exactly with Generate (same seeds produce the same workloads).
func TestGenerateFromMatchesGenerate(t *testing.T) {
	cfg := testConfig()
	opt := GenOptions{Samples: 8, StreamBits: 4, SliceBits: 4, Seed: 81}
	want, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := xbar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measurer := MeasurerFunc(func(v []float64, g *linalg.Dense) ([]float64, error) {
		if err := xb.Program(g); err != nil {
			return nil, err
		}
		sol, err := xb.Solve(v)
		if err != nil {
			return nil, err
		}
		return sol.Currents, nil
	})
	got, err := GenerateFrom(cfg, measurer, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.FR.Data {
		if got.FR.Data[i] != want.FR.Data[i] {
			t.Fatalf("label %d differs: %v vs %v", i, got.FR.Data[i], want.FR.Data[i])
		}
	}
}

// Training on a "measured" noisy array absorbs its variation: the
// measured-array model predicts the noisy array better than a model of
// the clean array does.
func TestGENIExLearnsMeasuredVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("measured-array training needs thousands of circuit solves")
	}
	cfg := testConfig()
	cfg.Vsupply = 0.5
	variation := xbar.Variation{Sigma: 0.6, Seed: 5}
	xb, err := xbar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy := MeasurerFunc(func(v []float64, g *linalg.Dense) ([]float64, error) {
		pert, err := variation.Apply(g, cfg)
		if err != nil {
			return nil, err
		}
		if err := xb.Program(pert); err != nil {
			return nil, err
		}
		sol, err := xb.Solve(v)
		if err != nil {
			return nil, err
		}
		return sol.Currents, nil
	})
	// The measured array's transfer function includes 64 fixed
	// per-cell gain factors, a notably harder function than the clean
	// crossbar's: give the fit a larger budget, and keep the workloads
	// dense — sparse vectors on small arrays leave columns barely lit,
	// where the ratio labels become heavy-tailed and the comparison
	// degenerates into fitting outliers.
	// Learning 64 per-cell gains through 8-dimensional observations is
	// data-hungry: below ~1500 samples the fit memorizes instead of
	// generalizing (verified empirically: val RMSE 1.30 at 600 samples
	// vs 0.22 at 2000).
	opt := GenOptions{Samples: 2000, Sparsities: []float64{0, 0.25, 0.5}, Seed: 83}
	measured, err := GenerateFrom(cfg, noisy, opt)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Generate(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	trainM, valM := measured.Split(0.25, 85)
	trainC, _ := clean.Split(0.25, 85)

	trainBig := func(ds *Dataset) *Model {
		m, err := NewModel(cfg, 128, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Train(ds, TrainOptions{Epochs: 300, BatchSize: 32, LR: 2e-3, Seed: 13}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mMeasured := trainBig(trainM)
	mClean := trainBig(trainC)

	// Evaluate both against the measured (noisy) validation labels.
	errMeasured := Evaluate(mMeasured, valM).RMSENF
	errClean := Evaluate(mClean, valM).RMSENF
	t.Logf("NF RMSE on measured array: trained-on-measured=%.4f trained-on-clean=%.4f",
		errMeasured, errClean)
	if errMeasured >= errClean {
		t.Errorf("measured-array training did not help: %v vs %v", errMeasured, errClean)
	}
}

func TestGenerateFromErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := GenerateFrom(cfg, nil, GenOptions{Samples: 2}); err == nil {
		t.Error("expected nil-measurer error")
	}
	bad := MeasurerFunc(func([]float64, *linalg.Dense) ([]float64, error) {
		return make([]float64, 1), nil // wrong width
	})
	if _, err := GenerateFrom(cfg, bad, GenOptions{Samples: 2}); err == nil {
		t.Error("expected width error")
	}
}
