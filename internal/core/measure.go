package core

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Measurer produces the non-ideal output currents of a physical (or
// simulated) crossbar for one programmed state and drive vector. It is
// the abstraction behind the paper's observation that GENIEx "can be
// used to model crossbars from both simulations as well as
// experimental measurements": implement Measurer with your lab
// instrument readout and GENIEx trains on real silicon.
type Measurer interface {
	// Measure programs the array with g (Rows×Cols siemens) and reads
	// the bit-line currents for drive voltages v.
	Measure(v []float64, g *linalg.Dense) ([]float64, error)
}

// MeasurerFunc adapts a function to the Measurer interface.
type MeasurerFunc func(v []float64, g *linalg.Dense) ([]float64, error)

// Measure implements Measurer.
func (f MeasurerFunc) Measure(v []float64, g *linalg.Dense) ([]float64, error) {
	return f(v, g)
}

// GenerateFrom builds a labelled dataset by driving an external
// measurement source with the same stratified random (V, G)
// combinations Generate would use. Unlike Generate, the labels come
// from the Measurer rather than the built-in circuit solver, so the
// resulting model absorbs whatever the measured array actually does —
// including variation, drift and defects.
func GenerateFrom(cfg xbar.Config, m Measurer, opt GenOptions) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("core: GenerateFrom with nil measurer")
	}
	opt = opt.withDefaults()
	if opt.Samples <= 0 {
		return nil, fmt.Errorf("core: GenerateFrom with %d samples", opt.Samples)
	}
	rng := linalg.NewRNG(opt.Seed)
	n := opt.Samples
	ds := &Dataset{
		Cfg: cfg,
		V:   linalg.NewDense(n, cfg.Rows),
		G:   linalg.NewDense(n, cfg.Rows*cfg.Cols),
		FR:  linalg.NewDense(n, cfg.Cols),
	}
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for s := 0; s < n; s++ {
		sparsV := opt.Sparsities[rng.Intn(len(opt.Sparsities))]
		sparsG := opt.Sparsities[rng.Intn(len(opt.Sparsities))]
		fillVector(ds.V.Row(s), cfg.Vsupply, opt.StreamBits, sparsV, rng)
		fillConductances(ds.G.Row(s), cfg, opt.SliceBits, sparsG, rng)

		copy(g.Data, ds.G.Row(s))
		curr, err := m.Measure(ds.V.Row(s), g)
		if err != nil {
			return nil, fmt.Errorf("core: measuring sample %d: %w", s, err)
		}
		if len(curr) != cfg.Cols {
			return nil, fmt.Errorf("core: measurer returned %d currents for %d columns", len(curr), cfg.Cols)
		}
		ideal := xbar.IdealCurrents(ds.V.Row(s), g)
		copy(ds.FR.Row(s), xbar.Ratio(ideal, curr, cfg))
	}
	return ds, nil
}
