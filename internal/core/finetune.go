package core

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/xbar"
)

// This file is the online-calibration surface of the GENIEx model:
// cloning (fine-tuning always happens on a copy, never on a model
// that live traffic reads), a persistent Tuner wrapping the Adam
// optimizer, and sample assembly that turns a probe shadow-solve
// (V, G, measured currents) into exactly the normalized training pair
// offline dataset generation produces — same xbar.Ratio labelling,
// same frozen FRMin/FRMax window.

// InputDim is the width of the model's input vector: Rows normalized
// voltages followed by Rows·Cols normalized conductances.
func (m *Model) InputDim() int { return m.Cfg.Rows + m.Cfg.Rows*m.Cfg.Cols }

func cloneParam(p *nn.Param) *nn.Param {
	if p == nil {
		return nil
	}
	return &nn.Param{
		Name: p.Name,
		W:    p.W.Clone(),
		Grad: linalg.NewDense(p.Grad.Rows, p.Grad.Cols),
	}
}

func cloneLinear(l *nn.Linear) *nn.Linear {
	return &nn.Linear{
		In: l.In, Out: l.Out, UseBias: l.UseBias,
		Weight: cloneParam(l.Weight),
		Bias:   cloneParam(l.Bias),
	}
}

// Clone deep-copies the model: weights, biases and the frozen label
// window. The copy shares nothing mutable with the original, so a
// calibrator can fine-tune it while the original keeps serving
// traffic.
func (m *Model) Clone() *Model {
	return &Model{
		Cfg:    m.Cfg,
		Hidden: m.Hidden,
		L1:     cloneLinear(m.L1),
		L2:     cloneLinear(m.L2),
		FRMin:  m.FRMin,
		FRMax:  m.FRMax,
	}
}

// Tuner fine-tunes one model incrementally: it holds the model's
// network and a persistent Adam optimizer, so moments accumulate
// across minibatches the way Train's inner loop accumulates them
// across epochs. Not safe for concurrent Step calls.
type Tuner struct {
	m   *Model
	inc *nn.Incremental
}

// NewTuner prepares the model for incremental fine-tuning with Adam
// at the given learning rate. The tuner trains the model in place —
// Clone first if another reader holds it.
func (m *Model) NewTuner(lr float64) *Tuner {
	net := m.net()
	return &Tuner{m: m, inc: nn.NewIncremental(net, nn.NewAdam(net.Params(), lr))}
}

// Model returns the model the tuner trains.
func (t *Tuner) Model() *Model { return t.m }

// Step runs one minibatch update on rows assembled by AssembleInput /
// AssembleLabel and returns the batch's pre-update MSE loss.
func (t *Tuner) Step(x, y *linalg.Dense) float64 { return t.inc.Step(x, y) }

// AssembleInput writes one normalized input row [Vn | Gn] for a
// (V, G) pair into dst (length InputDim), the same normalization
// Train applies to offline datasets.
func (m *Model) AssembleInput(dst, v []float64, g *linalg.Dense) {
	if len(dst) != m.InputDim() {
		panic(fmt.Sprintf("core: assemble input into %d values, want %d", len(dst), m.InputDim()))
	}
	if len(v) != m.Cfg.Rows || g.Rows != m.Cfg.Rows || g.Cols != m.Cfg.Cols {
		panic(fmt.Sprintf("core: assemble input from %d voltages and %dx%d conductances for a %dx%d model",
			len(v), g.Rows, g.Cols, m.Cfg.Rows, m.Cfg.Cols))
	}
	m.normalizeV(dst[:m.Cfg.Rows], v)
	m.normalizeG(dst[m.Cfg.Rows:], g.Data)
}

// AssembleLabel writes one normalized label row for a shadow-solved
// sample into dst (length Cols): the distortion ratio
// fR = I_ideal / I_measured per column (xbar.Ratio — identical to
// offline dataset labelling), min-max normalized with the model's
// FRMin/FRMax frozen at initial training. Keeping the window frozen
// makes fine-tuned weights directly comparable (and hot-swappable)
// with the original: both decode predictions through the same affine
// map. Samples outside the original window simply produce labels
// outside [0, 1], which MSE handles fine.
func (m *Model) AssembleLabel(dst, v []float64, g *linalg.Dense, measured []float64) {
	if len(dst) != m.Cfg.Cols || len(measured) != m.Cfg.Cols {
		panic(fmt.Sprintf("core: assemble label into %d values from %d currents, want %d",
			len(dst), len(measured), m.Cfg.Cols))
	}
	fr := xbar.Ratio(xbar.IdealCurrents(v, g), measured, m.Cfg)
	inv := 1 / (m.FRMax - m.FRMin)
	for j, f := range fr {
		dst[j] = (f - m.FRMin) * inv
	}
}
