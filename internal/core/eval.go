package core

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// EvalResult compares a crossbar model against the circuit-level
// ground truth on a validation set, using the paper's metric: the RMSE
// of the non-ideality factor NF with respect to "SPICE" (Fig. 5).
type EvalResult struct {
	// RMSENF is the root mean square error of the model's NF against
	// the circuit solver's NF, pooled over samples and columns.
	RMSENF float64
	// RMSERatio is the same statistic on fR.
	RMSERatio float64
	// Samples is the number of (sample, column) pairs pooled.
	Samples int
}

// CurrentModel is any predictor of non-ideal crossbar output currents;
// GENIEx, the analytical model and the ideal model all satisfy it.
type CurrentModel interface {
	// NonIdealCurrents predicts output currents for drive voltages v
	// against conductances g.
	NonIdealCurrents(v []float64, g *linalg.Dense) []float64
}

// AnalyticalAdapter exposes the xbar analytical model as a
// CurrentModel. Because the distortion matrix depends on G, the
// adapter rebuilds it per sample — acceptable for evaluation runs,
// while the functional simulator caches per-tile instances instead.
type AnalyticalAdapter struct {
	Cfg xbar.Config
}

// NonIdealCurrents implements CurrentModel.
func (a AnalyticalAdapter) NonIdealCurrents(v []float64, g *linalg.Dense) []float64 {
	m, err := xbar.NewAnalytical(a.Cfg, g)
	if err != nil {
		panic(fmt.Sprintf("core: analytical adapter: %v", err))
	}
	return m.Currents(v)
}

// IdealAdapter is the zero-non-ideality baseline (NF = 0 everywhere).
type IdealAdapter struct{}

// NonIdealCurrents implements CurrentModel.
func (IdealAdapter) NonIdealCurrents(v []float64, g *linalg.Dense) []float64 {
	return xbar.IdealCurrents(v, g)
}

// Evaluate measures a model against the dataset's circuit-solver
// labels. The dataset's FR field holds ground-truth ratios; NF is
// derived from them.
func Evaluate(model CurrentModel, ds *Dataset) EvalResult {
	cfg := ds.Cfg
	var nfTrue, nfPred, frTrue, frPred []float64
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for s := 0; s < ds.Len(); s++ {
		copy(g.Data, ds.G.Row(s))
		v := ds.V.Row(s)
		ideal := xbar.IdealCurrents(v, g)
		trueCurr := xbar.ApplyRatio(ideal, ds.FR.Row(s))
		predCurr := model.NonIdealCurrents(v, g)

		tNF := xbar.NF(ideal, trueCurr, cfg)
		pNF := xbar.NF(ideal, predCurr, cfg)
		tFR := ds.FR.Row(s)
		pFR := xbar.Ratio(ideal, predCurr, cfg)
		nfTrue = append(nfTrue, tNF...)
		nfPred = append(nfPred, pNF...)
		frTrue = append(frTrue, tFR...)
		frPred = append(frPred, pFR...)
	}
	return EvalResult{
		RMSENF:    linalg.RMSE(nfTrue, nfPred),
		RMSERatio: linalg.RMSE(frTrue, frPred),
		Samples:   len(nfTrue),
	}
}
