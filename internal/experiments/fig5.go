package experiments

import (
	"fmt"

	"geniex/internal/core"
	"geniex/internal/funcsim"
)

func init() {
	register(Experiment{
		ID:    "5",
		Title: "Fig 5: NF RMSE of GENIEx and the analytical model vs the circuit solver",
		Run:   fig5,
	})
}

// fig5 reproduces the paper's headline fidelity comparison: the RMSE
// of the non-ideality factor with respect to "SPICE" (here the circuit
// solver) for the linear analytical model and for GENIEx, at low
// (0.25V) and high (0.5V) supply. The paper reports 1.73/8.99
// (analytical) vs 0.25/0.7 (GENIEx), i.e. 7× and 12.8× improvements.
func fig5(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig 5 — NF RMSE wrt circuit solver",
		Columns: []string{"Vsupply (V)", "analytical RMSE", "GENIEx RMSE", "improvement"},
	}
	for _, vs := range []float64{0.25, 0.5} {
		ana, gx, err := Fig5Point(c, vs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", vs), ana, gx, fmt.Sprintf("%.1fx", ana/gx))
		c.logf("  Vsupply=%.2f: analytical=%.4f geniex=%.4f", vs, ana, gx)
	}
	t.Note("paper: analytical 1.73/8.99, GENIEx 0.25/0.7 (7x and 12.8x) on a 64x64 crossbar")
	return t, nil
}

// Fig5Point computes one (analytical RMSE, GENIEx RMSE) pair at the
// given supply voltage on a held-out validation set; exported for
// tests and benchmarks.
func Fig5Point(c *Context, vsupply float64) (analytical, geniex float64, err error) {
	cfg := c.BaseXbar()
	cfg.Vsupply = vsupply
	model, err := c.GENIEx(cfg)
	if err != nil {
		return 0, 0, err
	}
	val, err := core.Generate(cfg, core.GenOptions{
		Samples: c.Scale.GENIExSamples/4 + 20,
		Seed:    c.Scale.Seed + 9999, // disjoint from the training seed
	})
	if err != nil {
		return 0, 0, err
	}
	gx := core.Evaluate(model, val)
	ana := core.Evaluate(core.AnalyticalAdapter{Cfg: cfg}, val)
	// Record the GENIEx-vs-circuit divergence through the same fidelity
	// pipeline the online probe feeds, so an offline Fig. 5 run and a
	// live probed run are read from one funcsim.probe.rrmse catalog
	// entry.
	funcsim.ObserveDivergence(gx.RMSENF)
	return ana.RMSENF, gx.RMSENF, nil
}
