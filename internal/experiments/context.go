// Package experiments regenerates every table and figure of the
// paper's evaluation (Figs. 2, 3, 5, 7, 8, 9 and Table 3). Each
// experiment returns a Table that prints the same rows/series the
// paper plots; cmd/experiments and the repository benchmarks drive
// them.
//
// Because the full paper-scale runs take hours on a CPU, every
// experiment is parameterized by a Scale. TinyScale is used by tests
// and benchmarks, QuickScale reproduces every trend in minutes, and
// FullScale approaches the paper's parameters (64×64 crossbars, 500
// hidden units).
package experiments

import (
	"fmt"
	"io"
	"sort"

	"geniex/internal/core"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
	"geniex/internal/nn"
	"geniex/internal/xbar"
)

// Scale sets the knobs that trade fidelity for runtime.
type Scale struct {
	Name string

	// Circuit-level experiments (Figs. 2, 3).
	XbarSamples int // random (V, G) draws per design point

	// GENIEx training (Fig. 5 and all funcsim modes).
	GENIExSamples int
	GENIExHidden  int
	GENIExEpochs  int

	// Accuracy experiments (Figs. 7, 8, 9).
	TileSize    int // crossbar dimension used by the functional simulator
	TrainImages int
	TestImages  int
	Channels    int // CNN width
	CNNEpochs   int

	Seed uint64
}

// TinyScale is for unit tests and benchmarks: seconds per experiment.
func TinyScale() Scale {
	return Scale{
		Name:          "tiny",
		XbarSamples:   24,
		GENIExSamples: 150, GENIExHidden: 48, GENIExEpochs: 100,
		TileSize:    8,
		TrainImages: 500, TestImages: 60,
		Channels: 8, CNNEpochs: 6,
		Seed: 1,
	}
}

// QuickScale reproduces every qualitative trend in minutes.
func QuickScale() Scale {
	return Scale{
		Name:          "quick",
		XbarSamples:   120,
		GENIExSamples: 500, GENIExHidden: 128, GENIExEpochs: 160,
		TileSize:    16,
		TrainImages: 1500, TestImages: 200,
		Channels: 8, CNNEpochs: 10,
		Seed: 1,
	}
}

// FullScale approaches the paper's parameters. Expect hours on a CPU.
func FullScale() Scale {
	return Scale{
		Name:          "full",
		XbarSamples:   500,
		GENIExSamples: 2000, GENIExHidden: 500, GENIExEpochs: 150,
		TileSize:    64,
		TrainImages: 4000, TestImages: 1000,
		Channels: 16, CNNEpochs: 20,
		Seed: 1,
	}
}

// Context carries the scale plus caches shared between experiments:
// trained CNNs (one per dataset) and trained GENIEx surrogates (one
// per crossbar design point). All experiments are deterministic given
// the scale.
type Context struct {
	Scale Scale
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	sets    map[string]*dataset.Set
	nets    map[string]*nn.Sequential
	geniexs map[string]*core.Model
}

// NewContext creates an experiment context.
func NewContext(scale Scale, log io.Writer) *Context {
	return &Context{
		Scale:   scale,
		Log:     log,
		sets:    map[string]*dataset.Set{},
		nets:    map[string]*nn.Sequential{},
		geniexs: map[string]*core.Model{},
	}
}

func (c *Context) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// BaseXbar returns the nominal crossbar design point at the context's
// tile size.
func (c *Context) BaseXbar() xbar.Config {
	cfg, err := xbar.NewConfig(c.Scale.TileSize, c.Scale.TileSize)
	if err != nil {
		panic("experiments: invalid scale tile size: " + err.Error())
	}
	return cfg
}

// BaseSimConfig returns the nominal functional-simulator architecture
// at the context's tile size.
func (c *Context) BaseSimConfig() funcsim.Config {
	cfg, err := funcsim.NewConfig(c.BaseXbar())
	if err != nil {
		panic("experiments: invalid base sim config: " + err.Error())
	}
	return cfg
}

// Dataset returns (and caches) one of the two synthetic datasets,
// already restricted to the scale's sizes. name is "cifar" or
// "imagenet".
func (c *Context) Dataset(name string) *dataset.Set {
	if s, ok := c.sets[name]; ok {
		return s
	}
	var s *dataset.Set
	switch name {
	case "cifar":
		s = dataset.SynthCIFAR(c.Scale.TrainImages, c.Scale.TestImages, c.Scale.Seed+10)
	case "imagenet":
		// The 32×32 set is 4× the compute: halve the image counts.
		s = dataset.SynthImageNet(c.Scale.TrainImages/2+1, c.Scale.TestImages/2+1, c.Scale.Seed+20)
	default:
		panic("experiments: unknown dataset " + name)
	}
	c.sets[name] = s
	return s
}

// Network returns (and caches) the trained MiniResNet for a dataset.
func (c *Context) Network(name string) *nn.Sequential {
	if n, ok := c.nets[name]; ok {
		return n
	}
	set := c.Dataset(name)
	net := models.MiniResNet(set, c.Scale.Channels, c.Scale.Seed+30)
	c.logf("training MiniResNet on %s (%d train images, %d epochs)...",
		set.Name, set.TrainX.Rows, c.Scale.CNNEpochs)
	if err := models.Train(net, set, models.TrainConfig{
		Epochs:    c.Scale.CNNEpochs,
		BatchSize: 32,
		LR:        0.05,
		Seed:      c.Scale.Seed + 40,
	}); err != nil {
		panic(err) // training cannot fail structurally
	}
	c.logf("  float test accuracy: %.2f%%", 100*models.TestAccuracy(net, set, 64))
	c.nets[name] = net
	return net
}

// xbarKey identifies a crossbar design point for the GENIEx cache.
func xbarKey(cfg xbar.Config) string {
	return fmt.Sprintf("%dx%d|%g|%g|%g|%g|%g|%g", cfg.Rows, cfg.Cols, cfg.Ron,
		cfg.OnOffRatio, cfg.Rsource, cfg.Rsink, cfg.Rwire, cfg.Vsupply)
}

// GENIEx returns (and caches) a trained surrogate for a crossbar
// design point.
func (c *Context) GENIEx(cfg xbar.Config) (*core.Model, error) {
	key := xbarKey(cfg)
	if m, ok := c.geniexs[key]; ok {
		return m, nil
	}
	c.logf("training GENIEx for %s (%d samples, %d hidden)...",
		cfg.String(), c.Scale.GENIExSamples, c.Scale.GENIExHidden)
	// The training distribution mirrors the functional simulator's
	// workloads: 4-bit digit grids with heavy sparsity strata (the
	// paper's stratification argument, Section 4).
	ds, err := core.Generate(cfg, core.GenOptions{
		Samples:    c.Scale.GENIExSamples,
		StreamBits: 4, SliceBits: 4,
		Sparsities: []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97},
		Seed:       c.Scale.Seed + 50,
	})
	if err != nil {
		return nil, err
	}
	m, err := core.NewModel(cfg, c.Scale.GENIExHidden, c.Scale.Seed+60)
	if err != nil {
		return nil, err
	}
	if err := m.Train(ds, core.TrainOptions{
		Epochs:    c.Scale.GENIExEpochs,
		BatchSize: 32,
		LR:        1.5e-3,
		Seed:      c.Scale.Seed + 70,
	}); err != nil {
		return nil, err
	}
	c.geniexs[key] = m
	return m, nil
}

// SimAccuracy lowers the dataset's trained network onto the given
// functional-simulator configuration and analog model, and returns
// top-1 test accuracy.
func (c *Context) SimAccuracy(name string, simCfg funcsim.Config, model funcsim.Model) (float64, error) {
	set := c.Dataset(name)
	net := c.Network(name)
	eng, err := funcsim.NewEngine(simCfg, model)
	if err != nil {
		return 0, err
	}
	sim, err := funcsim.Lower(net, eng)
	if err != nil {
		return 0, err
	}
	return models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
}

// FloatAccuracy is the FP32 baseline accuracy of the dataset's
// network.
func (c *Context) FloatAccuracy(name string) float64 {
	return models.TestAccuracy(c.Network(name), c.Dataset(name), 64)
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string // e.g. "2b", "5", "7a", "table3"
	Title string
	Run   func(*Context) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment by its ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
