package experiments

import (
	"fmt"

	"geniex/internal/funcsim"
	"geniex/internal/xbar"
)

func init() {
	register(Experiment{
		ID:    "7a",
		Title: "Fig 7(a): classification accuracy vs crossbar size",
		Run:   fig7a,
	})
	register(Experiment{
		ID:    "7b",
		Title: "Fig 7(b): classification accuracy vs ON resistance",
		Run: func(c *Context) (*Table, error) {
			return fig7Sweep(c, "Ron (kΩ)", []float64{50, 100, 300}, func(cfg *xbar.Config, v float64) {
				cfg.Ron = v * 1e3
			})
		},
	})
	register(Experiment{
		ID:    "7c",
		Title: "Fig 7(c): classification accuracy vs ON/OFF ratio",
		Run: func(c *Context) (*Table, error) {
			return fig7Sweep(c, "ON/OFF ratio", []float64{2, 6, 10}, func(cfg *xbar.Config, v float64) {
				cfg.OnOffRatio = v
			})
		},
	})
	register(Experiment{
		ID:    "7d",
		Title: "Fig 7(d): analytical model vs GENIEx accuracy prediction",
		Run:   fig7d,
	})
}

// GENIExAccuracy is the common path of the Fig. 7 sweeps: train (or
// fetch) the surrogate for the design point and evaluate the dataset's
// CNN through the functional simulator.
func GENIExAccuracy(c *Context, name string, xcfg xbar.Config) (float64, error) {
	model, err := c.GENIEx(xcfg)
	if err != nil {
		return 0, err
	}
	simCfg := c.BaseSimConfig()
	simCfg.Xbar = xcfg
	return c.SimAccuracy(name, simCfg, funcsim.GENIEx{Model: model})
}

// fig7Sweep evaluates SynthCIFAR accuracy across one crossbar design
// parameter, with the Ideal FxP reference on the first row.
func fig7Sweep(c *Context, param string, values []float64, apply func(*xbar.Config, float64)) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig 7 sweep — accuracy vs %s (SynthCIFAR, GENIEx mode)", param),
		Columns: []string{param, "accuracy %", "degradation vs ideal FxP %"},
	}
	idealAcc, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		return nil, err
	}
	t.AddRow("ideal FxP", 100*idealAcc, 0.0)
	t.Note("float32 accuracy: %.2f%%", 100*c.FloatAccuracy("cifar"))
	for _, v := range values {
		cfg := c.BaseXbar()
		apply(&cfg, v)
		acc, err := GENIExAccuracy(c, "cifar", cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%g", v), 100*acc, 100*(idealAcc-acc))
		c.logf("  %s=%g: acc=%.2f%%", param, v, 100*acc)
	}
	return t, nil
}

// fig7a sweeps the crossbar (tile) size itself, which also changes the
// functional simulator's tiling.
func fig7a(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(a) — accuracy vs crossbar size (SynthCIFAR, GENIEx mode)",
		Columns: []string{"crossbar size", "accuracy %", "degradation vs ideal FxP %"},
	}
	idealAcc, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		return nil, err
	}
	t.AddRow("ideal FxP", 100*idealAcc, 0.0)
	// The paper sweeps {16, 32, 64}; sub-16 tiles show distortion below
	// the accuracy noise floor, so only the tiny scale shrinks them.
	sizes := []int{16, 32, 64}
	if c.Scale.Name == "tiny" {
		sizes = []int{4, 8, 16}
	}
	for _, n := range sizes {
		cfg := c.BaseXbar()
		cfg.Rows, cfg.Cols = n, n
		acc, err := GENIExAccuracy(c, "cifar", cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, 100*acc, 100*(idealAcc-acc))
		c.logf("  size=%d: acc=%.2f%%", n, 100*acc)
	}
	t.Note("larger crossbars accumulate more IR drop; paper sees <=1%% at 16x16, ~12%% at 64x64")
	return t, nil
}

// fig7d compares the accuracy predicted by the analytical model and by
// GENIEx at two supply voltages (the analytical model overestimates
// degradation because it cannot see the compensating device
// non-linearity).
func fig7d(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig 7(d) — analytical vs GENIEx accuracy (SynthCIFAR)",
		Columns: []string{"Vsupply (V)", "analytical acc %", "GENIEx acc %", "analytical overestimates degradation by %"},
	}
	idealAcc, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		return nil, err
	}
	t.Note("ideal FxP accuracy: %.2f%%", 100*idealAcc)
	for _, vs := range []float64{0.25, 0.5} {
		cfg := c.BaseXbar()
		cfg.Vsupply = vs
		simCfg := c.BaseSimConfig()
		simCfg.Xbar = cfg

		anaAcc, err := c.SimAccuracy("cifar", simCfg, funcsim.Analytical{Cfg: cfg})
		if err != nil {
			return nil, err
		}
		gxAcc, err := GENIExAccuracy(c, "cifar", cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", vs), 100*anaAcc, 100*gxAcc, 100*(gxAcc-anaAcc))
		c.logf("  Vsupply=%.2f: analytical=%.2f%% geniex=%.2f%%", vs, 100*anaAcc, 100*gxAcc)
	}
	t.Note("paper: analytical overestimates degradation by 12.34%% (0.25V) and 11.6%% (0.5V)")
	return t, nil
}
