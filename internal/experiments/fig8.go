package experiments

import (
	"geniex/internal/funcsim"
	"geniex/internal/quant"
)

func init() {
	register(Experiment{
		ID:    "8",
		Title: "Fig 8: impact of weight/activation precision under non-idealities",
		Run:   fig8,
	})
}

// PrecisionFormat returns the FxP format used for a precision point:
// bits total with bits−3 fractional (so 16-bit matches the paper's
// 16.13 format and every precision keeps the same ±4 dynamic range).
func PrecisionFormat(bits int) quant.FxP {
	return quant.FxP{Bits: bits, Frac: bits - 3}
}

// fig8 sweeps weight/activation precision (16, 8, 4 bits) for the
// three simulation modes (Ideal FxP, analytical, GENIEx) on both
// datasets, reproducing the layout of Fig. 8.
func fig8(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig 8 — accuracy vs weight/activation precision",
		Columns: []string{"dataset", "bits", "ideal FxP %", "analytical %", "GENIEx %"},
	}
	datasets := []string{"cifar", "imagenet"}
	if c.Scale.Name == "tiny" {
		datasets = []string{"cifar"} // the 32×32 set is too slow for unit tests
	}
	for _, name := range datasets {
		t.Note("%s float32 accuracy: %.2f%%", name, 100*c.FloatAccuracy(name))
		for _, bits := range []int{16, 8, 4} {
			row, err := Fig8Row(c, name, bits)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, bits, 100*row[0], 100*row[1], 100*row[2])
			c.logf("  %s %d-bit: ideal=%.2f%% analytical=%.2f%% geniex=%.2f%%",
				name, bits, 100*row[0], 100*row[1], 100*row[2])
		}
	}
	t.Note("stream/slice widths are capped at the operand width for the 4-bit points")
	t.Note("paper: non-idealities hurt more at lower precision; analytical overestimates the loss")
	return t, nil
}

// Fig8Row computes the (ideal, analytical, GENIEx) accuracies for one
// dataset/precision point; exported for tests and benchmarks.
func Fig8Row(c *Context, name string, bits int) ([3]float64, error) {
	var out [3]float64
	simCfg := c.BaseSimConfig()
	simCfg.Weight = PrecisionFormat(bits)
	simCfg.Act = PrecisionFormat(bits)
	if simCfg.StreamBits > bits {
		simCfg.StreamBits = bits
	}
	if simCfg.SliceBits > bits {
		simCfg.SliceBits = bits
	}

	ideal, err := c.SimAccuracy(name, simCfg, funcsim.Ideal{})
	if err != nil {
		return out, err
	}
	ana, err := c.SimAccuracy(name, simCfg, funcsim.Analytical{Cfg: simCfg.Xbar})
	if err != nil {
		return out, err
	}
	model, err := c.GENIEx(simCfg.Xbar)
	if err != nil {
		return out, err
	}
	gx, err := c.SimAccuracy(name, simCfg, funcsim.GENIEx{Model: model})
	if err != nil {
		return out, err
	}
	out[0], out[1], out[2] = ideal, ana, gx
	return out, nil
}

// fig9 lives here too: it shares all of fig8's machinery.
func init() {
	register(Experiment{
		ID:    "9",
		Title: "Fig 9: impact of stream (input) and slice (weight) bit widths",
		Run:   fig9,
	})
}

// fig9 sweeps the stream/slice width grid {1, 2, 4}² at 16-bit
// operand precision in GENIEx mode.
func fig9(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Fig 9 — accuracy vs bits/stream and bits/slice (SynthCIFAR, GENIEx mode)",
		Columns: []string{"stream bits", "slice bits", "accuracy %", "degradation vs ideal FxP %"},
	}
	idealAcc, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		return nil, err
	}
	t.Note("ideal FxP accuracy: %.2f%%", 100*idealAcc)
	for _, sa := range []int{1, 2, 4} {
		for _, sw := range []int{1, 2, 4} {
			acc, err := Fig9Point(c, sa, sw)
			if err != nil {
				return nil, err
			}
			t.AddRow(sa, sw, 100*acc, 100*(idealAcc-acc))
			c.logf("  stream=%d slice=%d: acc=%.2f%%", sa, sw, 100*acc)
		}
	}
	t.Note("paper: 1-2 bit streams/slices stay near ideal FxP; 4-bit degrades ~12%%")
	return t, nil
}

// Fig9Point evaluates one grid point of Fig. 9 in GENIEx mode (the
// surrogate for the base design point is cached on the context).
func Fig9Point(c *Context, streamBits, sliceBits int) (float64, error) {
	simCfg := c.BaseSimConfig()
	simCfg.StreamBits = streamBits
	simCfg.SliceBits = sliceBits
	gx, err := c.GENIEx(simCfg.Xbar)
	if err != nil {
		return 0, err
	}
	return c.SimAccuracy("cifar", simCfg, funcsim.GENIEx{Model: gx})
}
