package experiments

import (
	"fmt"

	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// solverHealth aggregates per-solve diagnostics across a sweep so the
// tables can report how hard the circuit solver had to work — and
// whether any point needed the recovery ladder.
type solverHealth struct {
	solves, converged, recovered, unconverged, luFallbacks int
	newtonIters                                            int
	worstResid                                             float64
}

func (h *solverHealth) record(sol *xbar.Solution) {
	h.solves++
	h.newtonIters += sol.NewtonIters
	h.luFallbacks += sol.LUFallbacks
	if sol.Converged {
		h.converged++
	} else {
		h.unconverged++
	}
	if sol.Recovery != "" && sol.Recovery != "best-effort" {
		h.recovered++
	}
	if sol.Residual > h.worstResid {
		h.worstResid = sol.Residual
	}
}

func (h *solverHealth) add(other solverHealth) {
	h.solves += other.solves
	h.converged += other.converged
	h.recovered += other.recovered
	h.unconverged += other.unconverged
	h.luFallbacks += other.luFallbacks
	h.newtonIters += other.newtonIters
	if other.worstResid > h.worstResid {
		h.worstResid = other.worstResid
	}
}

func (h *solverHealth) note(t *Table) {
	if h.solves == 0 {
		return
	}
	t.Note("solver health: %d/%d converged, %d recovered, %d unconverged, %d LU fallbacks, %.1f Newton iters/solve, worst KCL residual %.2g",
		h.converged, h.solves, h.recovered, h.unconverged, h.luFallbacks,
		float64(h.newtonIters)/float64(h.solves), h.worstResid)
}

// sampleNF draws random sparse (V, G) workloads for a design point,
// solves the full non-linear circuit, and returns the pooled
// per-column NF values together with paired (ideal, non-ideal)
// currents and aggregate solver-health counters.
func sampleNF(cfg xbar.Config, samples int, seed uint64) (nf, ideal, nonideal []float64, health solverHealth, err error) {
	rng := linalg.NewRNG(seed)
	vs := linalg.NewDense(samples, cfg.Rows)
	gs := make([]*linalg.Dense, samples)
	sparsities := []float64{0, 0.25, 0.5, 0.75}
	for s := 0; s < samples; s++ {
		sv := sparsities[rng.Intn(len(sparsities))]
		sg := sparsities[rng.Intn(len(sparsities))]
		for i := 0; i < cfg.Rows; i++ {
			if rng.Float64() >= sv {
				vs.Set(s, i, cfg.Vsupply*rng.Float64())
			}
		}
		g := linalg.NewDense(cfg.Rows, cfg.Cols)
		for i := range g.Data {
			level := 0.0
			if rng.Float64() >= sg {
				level = rng.Float64()
			}
			g.Data[i] = cfg.ConductanceFromLevel(level)
		}
		gs[s] = g
	}

	errs := make([]error, samples)
	nfAll := make([][]float64, samples)
	idealAll := make([][]float64, samples)
	nonAll := make([][]float64, samples)
	sols := make([]*xbar.Solution, samples)
	linalg.ParallelFor(samples, func(lo, hi int) {
		xb, err := xbar.New(cfg)
		if err != nil {
			for s := lo; s < hi; s++ {
				errs[s] = err
			}
			return
		}
		for s := lo; s < hi; s++ {
			if err := xb.Program(gs[s]); err != nil {
				errs[s] = err
				return
			}
			sol, err := xb.Solve(vs.Row(s))
			if err != nil {
				errs[s] = err
				return
			}
			sols[s] = sol
			id := xbar.IdealCurrents(vs.Row(s), gs[s])
			nfAll[s] = xbar.NF(id, sol.Currents, cfg)
			idealAll[s] = id
			nonAll[s] = sol.Currents
		}
	})
	for _, e := range errs {
		if e != nil {
			return nil, nil, nil, health, e
		}
	}
	for s := 0; s < samples; s++ {
		nf = append(nf, nfAll[s]...)
		ideal = append(ideal, idealAll[s]...)
		nonideal = append(nonideal, nonAll[s]...)
		health.record(sols[s])
	}
	// Publish the circuit-solved NF distribution into the shared
	// fidelity histograms (funcsim.probe.nf_pos/nf_neg), the same ones
	// the online probe fills, so Fig. 2 sweeps show up in a metrics
	// scrape.
	funcsim.ObserveNF(nf)
	return nf, ideal, nonideal, health, nil
}

func summaryRow(t *Table, label string, values []float64) {
	s := linalg.Summarize(values)
	t.AddRow(label, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

func init() {
	register(Experiment{
		ID:    "2a",
		Title: "Fig 2(a): ideal vs non-ideal output currents",
		Run:   fig2a,
	})
	register(Experiment{
		ID:    "2b",
		Title: "Fig 2(b): NF vs crossbar size",
		Run: func(c *Context) (*Table, error) {
			return fig2Sweep(c, "crossbar size", []float64{16, 32, 64}, func(cfg *xbar.Config, v float64) {
				cfg.Rows, cfg.Cols = int(v), int(v)
			})
		},
	})
	register(Experiment{
		ID:    "2c",
		Title: "Fig 2(c): NF vs ON resistance",
		Run: func(c *Context) (*Table, error) {
			return fig2Sweep(c, "Ron (kΩ)", []float64{50, 100, 300}, func(cfg *xbar.Config, v float64) {
				cfg.Ron = v * 1e3
			})
		},
	})
	register(Experiment{
		ID:    "2d",
		Title: "Fig 2(d): NF vs conductance ON/OFF ratio",
		Run: func(c *Context) (*Table, error) {
			return fig2Sweep(c, "ON/OFF ratio", []float64{2, 6, 10}, func(cfg *xbar.Config, v float64) {
				cfg.OnOffRatio = v
			})
		},
	})
}

// fig2a reproduces the scatter of Fig. 2(a) as a binned table: for
// bands of ideal current, the spread of the non-ideal current.
func fig2a(c *Context) (*Table, error) {
	cfg := c.BaseXbar()
	_, ideal, nonideal, health, err := sampleNF(cfg, c.Scale.XbarSamples, c.Scale.Seed)
	if err != nil {
		return nil, err
	}
	full := float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
	t := &Table{
		Title:   fmt.Sprintf("Fig 2(a) — %s", cfg),
		Columns: []string{"ideal current band (µA)", "n", "non-ideal min (µA)", "median", "max", "median deviation %"},
	}
	const nbins = 6
	for b := 0; b < nbins; b++ {
		lo, hi := full*float64(b)/nbins, full*float64(b+1)/nbins
		var non []float64
		var devs []float64
		for i, id := range ideal {
			if id < lo || id >= hi || id <= 0 {
				continue
			}
			non = append(non, nonideal[i])
			devs = append(devs, 100*(id-nonideal[i])/id)
		}
		if len(non) == 0 {
			continue
		}
		s := linalg.Summarize(non)
		d := linalg.Summarize(devs)
		t.AddRow(fmt.Sprintf("%.2f–%.2f", lo*1e6, hi*1e6), len(non),
			s.Min*1e6, s.Median*1e6, s.Max*1e6, d.Median)
	}
	t.Note("similar ideal currents map to a spread of non-ideal currents (data dependence)")
	health.note(t)
	return t, nil
}

// fig2Sweep runs the NF box-plot sweep common to Figs. 2(b,c,d).
func fig2Sweep(c *Context, param string, values []float64, apply func(*xbar.Config, float64)) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig 2 sweep — NF distribution vs %s", param),
		Columns: []string{param, "min", "q1", "median", "q3", "max", "mean"},
	}
	var total solverHealth
	for _, v := range values {
		cfg := c.BaseXbar()
		apply(&cfg, v)
		if cfg.Rows > 32 && c.Scale.Name == "tiny" {
			// Keep tiny-scale runs fast; the trend is visible at ≤32.
			continue
		}
		nf, _, _, health, err := sampleNF(cfg, c.Scale.XbarSamples, c.Scale.Seed)
		if err != nil {
			return nil, err
		}
		total.add(health)
		summaryRow(t, fmt.Sprintf("%g", v), nf)
		c.logf("  %s=%g done", param, v)
	}
	total.note(t)
	return t, nil
}
