package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper
// figure plots, in text form.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV writes the table as RFC-4180 CSV (title and notes become
// comment-style rows prefixed with '#'), for downstream plotting.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
