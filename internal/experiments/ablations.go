package experiments

import (
	"fmt"
	"math"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Ablations of the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify why GENIEx is formulated
// the way it is.

func init() {
	register(Experiment{
		ID:    "ab1-ratio",
		Title: "Ablation: predict fR (paper) vs predict currents directly",
		Run:   ab1Ratio,
	})
	register(Experiment{
		ID:    "ab2-sparsity",
		Title: "Ablation: sparsity-stratified training set vs dense-only",
		Run:   ab2Sparsity,
	})
	register(Experiment{
		ID:    "ab3-hidden",
		Title: "Ablation: GENIEx hidden width vs fidelity",
		Run:   ab3Hidden,
	})
	register(Experiment{
		ID:    "ab4-variation",
		Title: "Extension: device variation and stuck-at faults vs NF",
		Run:   ab4Variation,
	})
}

// trainEval trains a fresh ratio-formulation model with the given
// dataset options and returns its held-out NF RMSE.
func (c *Context) trainEval(cfg xbar.Config, hidden int, genOpt core.GenOptions, valOpt core.GenOptions) (float64, error) {
	ds, err := core.Generate(cfg, genOpt)
	if err != nil {
		return 0, err
	}
	m, err := core.NewModel(cfg, hidden, c.Scale.Seed+200)
	if err != nil {
		return 0, err
	}
	if err := m.Train(ds, core.TrainOptions{
		Epochs: c.Scale.GENIExEpochs, BatchSize: 32, LR: 1.5e-3, Seed: c.Scale.Seed + 201,
	}); err != nil {
		return 0, err
	}
	val, err := core.Generate(cfg, valOpt)
	if err != nil {
		return 0, err
	}
	return core.Evaluate(m, val).RMSENF, nil
}

// ab1Ratio compares the paper's fR formulation against direct current
// prediction at a matched parameter/training budget.
func ab1Ratio(c *Context) (*Table, error) {
	cfg := c.BaseXbar()
	cfg.Vsupply = 0.5 // the regime where the formulation matters most
	genOpt := core.GenOptions{Samples: c.Scale.GENIExSamples, Seed: c.Scale.Seed + 210}
	trainOpt := core.TrainOptions{
		Epochs: c.Scale.GENIExEpochs, BatchSize: 32, LR: 1.5e-3, Seed: c.Scale.Seed + 211,
	}
	ds, err := core.Generate(cfg, genOpt)
	if err != nil {
		return nil, err
	}
	train, val := ds.Split(0.25, c.Scale.Seed+212)

	ratio, err := core.NewModel(cfg, c.Scale.GENIExHidden, c.Scale.Seed+213)
	if err != nil {
		return nil, err
	}
	if err := ratio.Train(train, trainOpt); err != nil {
		return nil, err
	}
	direct, err := core.NewDirectModel(cfg, c.Scale.GENIExHidden, c.Scale.Seed+213)
	if err != nil {
		return nil, err
	}
	if err := direct.Train(train, trainOpt); err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Ablation 1 — prediction target (Vsupply = 0.5V)",
		Columns: []string{"formulation", "NF RMSE", "fR RMSE"},
	}
	r := core.Evaluate(ratio, val)
	d := core.Evaluate(direct, val)
	t.AddRow("fR = Iideal/Inon-ideal (paper)", r.RMSENF, r.RMSERatio)
	t.AddRow("direct current", d.RMSENF, d.RMSERatio)
	t.Note("predicting the ratio avoids modelling the multiplicative VxG interaction (Section 4)")
	return t, nil
}

// ab2Sparsity compares training on sparsity-stratified data (the
// paper's choice, motivated by bit-sliced DNN tensors) with training
// on dense-only data, evaluating both on sparse workloads.
func ab2Sparsity(c *Context) (*Table, error) {
	cfg := c.BaseXbar()
	cfg.Vsupply = 0.5
	valOpt := core.GenOptions{
		Samples:    c.Scale.GENIExSamples / 4,
		Sparsities: []float64{0.5, 0.75, 0.9}, // sparse regime, like real workloads
		Seed:       c.Scale.Seed + 220,
	}
	stratified, err := c.trainEval(cfg, c.Scale.GENIExHidden,
		core.GenOptions{Samples: c.Scale.GENIExSamples, Seed: c.Scale.Seed + 221}, valOpt)
	if err != nil {
		return nil, err
	}
	denseOnly, err := c.trainEval(cfg, c.Scale.GENIExHidden,
		core.GenOptions{Samples: c.Scale.GENIExSamples, Sparsities: []float64{0}, Seed: c.Scale.Seed + 221}, valOpt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation 2 — training-set sparsity stratification (sparse validation set)",
		Columns: []string{"training data", "NF RMSE"},
	}
	t.AddRow("stratified sparsity {0..0.9} (paper)", stratified)
	t.AddRow("dense only", denseOnly)
	t.Note("bit-sliced DNN tensors are highly sparse; the training set must cover that regime")
	return t, nil
}

// ab3Hidden sweeps the hidden width P of the surrogate.
func ab3Hidden(c *Context) (*Table, error) {
	cfg := c.BaseXbar()
	cfg.Vsupply = 0.5
	t := &Table{
		Title:   "Ablation 3 — hidden width vs fidelity (Vsupply = 0.5V)",
		Columns: []string{"hidden units", "NF RMSE"},
	}
	widths := []int{8, 32, 128}
	if c.Scale.Name == "full" {
		widths = []int{32, 128, 500}
	}
	for _, p := range widths {
		rmse, err := c.trainEval(cfg, p,
			core.GenOptions{Samples: c.Scale.GENIExSamples, Seed: c.Scale.Seed + 230},
			core.GenOptions{Samples: c.Scale.GENIExSamples / 4, Seed: c.Scale.Seed + 231})
		if err != nil {
			return nil, err
		}
		t.AddRow(p, rmse)
		c.logf("  hidden=%d: rmse=%.4f", p, rmse)
	}
	t.Note("the paper uses P = 500 on 64x64 crossbars")
	return t, nil
}

// ab4Variation measures circuit-level NF degradation under programming
// variation and stuck-at faults — the extension non-idealities a
// data-based model can absorb by training on measured arrays.
func ab4Variation(c *Context) (*Table, error) {
	cfg := c.BaseXbar()
	t := &Table{
		Title:   "Extension — NF under device variation and stuck-at faults",
		Columns: []string{"sigma", "stuck-on %", "stuck-off %", "mean |NF|", "max |NF|"},
	}
	cases := []xbar.Variation{
		{},
		{Sigma: 0.1},
		{Sigma: 0.3},
		{StuckOn: 0.01, StuckOff: 0.04},
		{Sigma: 0.2, StuckOn: 0.01, StuckOff: 0.04},
	}
	for i, v := range cases {
		v.Seed = c.Scale.Seed + uint64(300+i)
		meanAbs, maxAbs, err := variationNF(c, cfg, v)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.Sigma, 100*v.StuckOn, 100*v.StuckOff, meanAbs, maxAbs)
		c.logf("  sigma=%g on=%g off=%g: mean|NF|=%.4f", v.Sigma, v.StuckOn, v.StuckOff, meanAbs)
	}
	t.Note("NF computed against the intended conductances; variation applied at programming time")
	return t, nil
}

// randomConductances draws a uniform conductance matrix inside the
// programming window.
func randomConductances(cfg xbar.Config, rng *linalg.RNG) *linalg.Dense {
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
	}
	return g
}

func variationNF(c *Context, cfg xbar.Config, v xbar.Variation) (meanAbs, maxAbs float64, err error) {
	rng := linalg.NewRNG(c.Scale.Seed + 400)
	xb, err := xbar.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	var sum float64
	var n int
	for s := 0; s < c.Scale.XbarSamples; s++ {
		g := randomConductances(cfg, rng)
		pert, err := v.Apply(g, cfg)
		if err != nil {
			return 0, 0, err
		}
		drive := make([]float64, cfg.Rows)
		for i := range drive {
			drive[i] = cfg.Vsupply * rng.Float64()
		}
		if err := xb.Program(pert); err != nil {
			return 0, 0, err
		}
		sol, err := xb.Solve(drive)
		if err != nil {
			return 0, 0, err
		}
		for _, f := range xbar.NF(xbar.IdealCurrents(drive, g), sol.Currents, cfg) {
			a := math.Abs(f)
			sum += a
			if a > maxAbs {
				maxAbs = a
			}
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("experiments: no NF samples collected")
	}
	return sum / float64(n), maxAbs, nil
}
