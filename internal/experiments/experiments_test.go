package experiments

import (
	"strings"
	"testing"

	"geniex/internal/funcsim"
)

func tinyCtx() *Context {
	return NewContext(TinyScale(), nil)
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"2a", "2b", "2c", "2d", "3", "5", "7a", "7b", "7c", "7d", "8", "9", "table3",
		"ab1-ratio", "ab2-sparsity", "ab3-hidden", "ab4-variation", "ab5-energy", "ab6-compensation"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== T ==", "a", "bb", "2.5", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig2aRuns(t *testing.T) {
	tb, err := fig2a(tinyCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("fig2a produced no rows")
	}
}

// Fig 2(b): NF grows with crossbar size.
func TestFig2bTrend(t *testing.T) {
	c := tinyCtx()
	var means []float64
	for _, n := range []int{4, 8, 16} {
		cfg := c.BaseXbar()
		cfg.Rows, cfg.Cols = n, n
		nf, _, _, _, err := sampleNF(cfg, c.Scale.XbarSamples, c.Scale.Seed)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range nf {
			sum += v
		}
		means = append(means, sum/float64(len(nf)))
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Errorf("NF means not increasing with size: %v", means)
	}
}

// Fig 3(b): the linear vs non-linear discrepancy grows with supply
// voltage.
func TestFig3Trend(t *testing.T) {
	c := tinyCtx()
	errs, err := Fig3RelErrors(c, []float64{0.1, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !(errs[0] < errs[1] && errs[1] < errs[2]) {
		t.Errorf("relative errors not increasing with voltage: %v", errs)
	}
}

// Fig 5: GENIEx must beat the analytical model at high voltage (the
// paper's headline result).
func TestFig5GENIExWins(t *testing.T) {
	c := tinyCtx()
	ana, gx, err := Fig5Point(c, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig5 @0.5V: analytical=%.4f geniex=%.4f", ana, gx)
	if gx >= ana {
		t.Errorf("GENIEx RMSE %v not below analytical %v", gx, ana)
	}
}

func TestTable3Runs(t *testing.T) {
	tb, err := table3(tinyCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 10 {
		t.Errorf("table3 has only %d rows", len(tb.Rows))
	}
}

func TestPrecisionFormat(t *testing.T) {
	f := PrecisionFormat(16)
	if f.Bits != 16 || f.Frac != 13 {
		t.Errorf("16-bit format = %+v", f)
	}
	for _, bits := range []int{4, 8, 16} {
		if err := PrecisionFormat(bits).Validate(); err != nil {
			t.Errorf("%d-bit format invalid: %v", bits, err)
		}
	}
}

// End-to-end smoke test of the accuracy machinery at tiny scale: the
// ideal FxP accuracy must be far above chance and GENIEx mode must
// produce a valid accuracy.
func TestSimAccuracyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy pipeline is slow")
	}
	c := tinyCtx()
	ideal, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny-scale ideal FxP accuracy: %.2f%%", 100*ideal)
	if ideal < 0.3 {
		t.Errorf("ideal FxP accuracy %.2f too close to chance", ideal)
	}
	gx, err := GENIExAccuracy(c, "cifar", c.BaseXbar())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny-scale GENIEx accuracy: %.2f%%", 100*gx)
	if gx < 0 || gx > 1 {
		t.Errorf("GENIEx accuracy %v out of range", gx)
	}
}

// Ablation 4 runs quickly at tiny scale and must show variation
// increasing NF spread.
func TestAb4VariationRuns(t *testing.T) {
	e, ok := ByID("ab4-variation")
	if !ok {
		t.Fatal("ab4-variation not registered")
	}
	tb, err := e.Run(tinyCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(tb.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow(1, "x,y")
	tb.Note("n")
	var buf strings.Builder
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"# T", "a,b", "1,\"x,y\"", "# n"} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

func TestContextCaches(t *testing.T) {
	c := tinyCtx()
	if c.Dataset("cifar") != c.Dataset("cifar") {
		t.Error("dataset not cached")
	}
	cfg := c.BaseXbar()
	m1, err := c.GENIEx(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.GENIEx(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("GENIEx surrogate not cached for identical config")
	}
	other := cfg
	other.Ron *= 2
	m3, err := c.GENIEx(other)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("different design points share a surrogate")
	}
}

func TestScalesAreOrdered(t *testing.T) {
	tiny, quick, full := TinyScale(), QuickScale(), FullScale()
	if !(tiny.TileSize < quick.TileSize && quick.TileSize < full.TileSize) {
		t.Error("tile sizes not increasing across scales")
	}
	if !(tiny.GENIExSamples < quick.GENIExSamples && quick.GENIExSamples < full.GENIExSamples) {
		t.Error("sample counts not increasing across scales")
	}
	for _, s := range []Scale{tiny, quick, full} {
		if s.Name == "" || s.Seed == 0 {
			t.Errorf("scale %+v incomplete", s)
		}
	}
}
