package experiments

import (
	"fmt"

	"geniex/internal/funcsim"
	"geniex/internal/models"
)

func init() {
	register(Experiment{
		ID:    "ab5-energy",
		Title: "Extension: energy/latency vs stream and slice widths",
		Run:   ab5Energy,
	})
	register(Experiment{
		ID:    "ab6-compensation",
		Title: "Extension: per-column gain calibration recovers accuracy",
		Run:   ab6Compensation,
	})
}

// ab5Energy extends Fig. 9 with the hardware cost axis: wider streams
// and slices cost fewer crossbar activations and conversions (less
// energy, less latency) but degrade accuracy — the actual design
// trade-off the paper's conclusion discusses.
func ab5Energy(c *Context) (*Table, error) {
	t := &Table{
		Title:   "Extension — accuracy vs energy vs stream/slice width (SynthCIFAR, GENIEx mode)",
		Columns: []string{"stream bits", "slice bits", "accuracy %", "energy (µJ)", "latency (ms)", "xbar ops"},
	}
	gx, err := c.GENIEx(c.BaseXbar())
	if err != nil {
		return nil, err
	}
	set := c.Dataset("cifar")
	net := c.Network("cifar")
	em := funcsim.DefaultEnergyModel()
	for _, widths := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		simCfg := c.BaseSimConfig()
		simCfg.StreamBits, simCfg.SliceBits = widths[0], widths[1]
		eng, err := funcsim.NewEngine(simCfg, funcsim.GENIEx{Model: gx})
		if err != nil {
			return nil, err
		}
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			return nil, err
		}
		acc, err := models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
		if err != nil {
			return nil, err
		}
		stats := sim.Stats()
		report := em.Estimate(stats, simCfg)
		t.AddRow(widths[0], widths[1], 100*acc,
			report.Energy*1e6, report.Latency*1e3, stats.CrossbarOps)
		c.logf("  %d/%d-bit: acc=%.2f%% energy=%.3gJ", widths[0], widths[1], 100*acc, report.Energy)
	}
	t.Note("energy/latency per %d test images; representative ISAAC/PUMA-class constants", set.TestX.Rows)
	return t, nil
}

// ab6Compensation evaluates the mitigation path the paper motivates:
// the same harsh design point in GENIEx mode, with and without
// per-column gain calibration.
func ab6Compensation(c *Context) (*Table, error) {
	// A harsh design point where degradation is visible.
	xcfg := c.BaseXbar()
	xcfg.OnOffRatio = 2
	gx, err := c.GENIEx(xcfg)
	if err != nil {
		return nil, err
	}
	simCfg := c.BaseSimConfig()
	simCfg.Xbar = xcfg

	idealAcc, err := c.SimAccuracy("cifar", c.BaseSimConfig(), funcsim.Ideal{})
	if err != nil {
		return nil, err
	}
	rawAcc, err := c.SimAccuracy("cifar", simCfg, funcsim.GENIEx{Model: gx})
	if err != nil {
		return nil, err
	}
	calAcc, err := c.SimAccuracy("cifar", simCfg, funcsim.Calibrated{
		Inner: funcsim.GENIEx{Model: gx},
		Seed:  c.Scale.Seed + 500,
		Xbar:  xcfg,
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("Extension — gain calibration at ON/OFF = %g (SynthCIFAR)", xcfg.OnOffRatio),
		Columns: []string{"mode", "accuracy %", "degradation vs ideal FxP %"},
	}
	t.AddRow("ideal FxP", 100*idealAcc, 0.0)
	t.AddRow("GENIEx, uncompensated", 100*rawAcc, 100*(idealAcc-rawAcc))
	t.AddRow("GENIEx + column gain calibration", 100*calAcc, 100*(idealAcc-calAcc))
	t.Note("calibration removes the average column distortion; the data-dependent residue remains")
	return t, nil
}
