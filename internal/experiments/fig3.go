package experiments

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

func init() {
	register(Experiment{
		ID:    "3",
		Title: "Fig 3: impact of device non-linearity vs supply voltage",
		Run:   fig3,
	})
}

// fig3 reproduces both panels of Fig. 3: (a) the output current
// distribution with linear-only vs linear+non-linear non-idealities,
// and (b) the relative error between the two cases as the supply
// voltage rises — the data-dependence argument motivating GENIEx.
func fig3(c *Context) (*Table, error) {
	t := &Table{
		Title: "Fig 3 — linear-only vs linear+non-linear device models",
		Columns: []string{"Vsupply (V)", "median I linear (µA)", "median I non-linear (µA)",
			"mean |rel err| %", "max |rel err| %"},
	}
	for _, vs := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		cfg := c.BaseXbar()
		cfg.Vsupply = vs

		linCfg := cfg
		linCfg.NonLinear = false
		_, _, linCurr, _, err := sampleNF(linCfg, c.Scale.XbarSamples, c.Scale.Seed+100)
		if err != nil {
			return nil, err
		}
		_, _, nlCurr, _, err := sampleNF(cfg, c.Scale.XbarSamples, c.Scale.Seed+100)
		if err != nil {
			return nil, err
		}
		// Identical seeds give identical workloads, so the currents
		// pair up.
		var rel []float64
		floor := 1e-4 * float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
		for i := range linCurr {
			if linCurr[i] > floor {
				rel = append(rel, 100*math.Abs(nlCurr[i]-linCurr[i])/linCurr[i])
			}
		}
		rs := linalg.Summarize(rel)
		ls := linalg.Summarize(linCurr)
		ns := linalg.Summarize(nlCurr)
		t.AddRow(fmt.Sprintf("%.2f", vs), ls.Median*1e6, ns.Median*1e6, rs.Mean, rs.Max)
		c.logf("  Vsupply=%.2f done", vs)
	}
	t.Note("relative error between the two cases grows with supply voltage (paper Fig 3b)")
	return t, nil
}

// Fig3RelErrors exposes the per-voltage mean relative error for tests:
// the series must be increasing in Vsupply.
func Fig3RelErrors(c *Context, voltages []float64) ([]float64, error) {
	out := make([]float64, 0, len(voltages))
	for _, vs := range voltages {
		cfg := c.BaseXbar()
		cfg.Vsupply = vs
		linCfg := cfg
		linCfg.NonLinear = false
		_, _, linCurr, _, err := sampleNF(linCfg, c.Scale.XbarSamples, c.Scale.Seed+100)
		if err != nil {
			return nil, err
		}
		_, _, nlCurr, _, err := sampleNF(cfg, c.Scale.XbarSamples, c.Scale.Seed+100)
		if err != nil {
			return nil, err
		}
		var sum float64
		n := 0
		floor := 1e-4 * float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
		for i := range linCurr {
			if linCurr[i] > floor {
				sum += math.Abs(nlCurr[i]-linCurr[i]) / linCurr[i]
				n++
			}
		}
		out = append(out, sum/float64(n))
	}
	return out, nil
}
