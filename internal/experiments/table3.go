package experiments

import (
	"fmt"

	"geniex/internal/quant"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: functional simulator parameters",
		Run:   table3,
	})
}

// table3 prints the functional simulator's parameter inventory at the
// context's scale, mirroring Table 3 of the paper.
func table3(c *Context) (*Table, error) {
	cfg := c.BaseSimConfig()
	t := &Table{
		Title:   "Table 3 — functional simulator parameters",
		Columns: []string{"component", "parameter", "value"},
	}
	t.AddRow("Tiling", "crossbar size", fmt.Sprintf("%dx%d", cfg.Xbar.Rows, cfg.Xbar.Cols))
	t.AddRow("Bit-slicing", "weight bits", fmt.Sprintf("%d (%d fractional)", cfg.Weight.Bits, cfg.Weight.Frac))
	t.AddRow("Bit-slicing", "activation bits", fmt.Sprintf("%d (%d fractional)", cfg.Act.Bits, cfg.Act.Frac))
	t.AddRow("Bit-slicing", "stream width", cfg.StreamBits)
	t.AddRow("Bit-slicing", "slice width", cfg.SliceBits)
	t.AddRow("Bit-slicing", "streams per activation", quant.NumDigits(cfg.Act.Bits, cfg.StreamBits))
	t.AddRow("Bit-slicing", "slices per weight", quant.NumDigits(cfg.Weight.Bits, cfg.SliceBits))
	t.AddRow("Bit-slicing", "ADC bits", cfg.ADCBits)
	t.AddRow("Bit-slicing", "accumulator", fmt.Sprintf("%d-bit (%d fractional)", cfg.Acc.Bits, cfg.Acc.Frac))
	t.AddRow("GENIEx", "Ron", fmt.Sprintf("%.0f kΩ", cfg.Xbar.Ron/1e3))
	t.AddRow("GENIEx", "ON/OFF ratio", cfg.Xbar.OnOffRatio)
	t.AddRow("GENIEx", "Rsource", fmt.Sprintf("%g Ω", cfg.Xbar.Rsource))
	t.AddRow("GENIEx", "Rsink", fmt.Sprintf("%g Ω", cfg.Xbar.Rsink))
	t.AddRow("GENIEx", "Rwire", fmt.Sprintf("%g Ω/cell", cfg.Xbar.Rwire))
	t.AddRow("GENIEx", "Vsupply", fmt.Sprintf("%g V", cfg.Xbar.Vsupply))
	t.AddRow("GENIEx", "hidden units", c.Scale.GENIExHidden)
	return t, nil
}
