package calib

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/core"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Config wires a Calibrator to its engine.
type Config struct {
	// Model is the initial GENIEx surrogate — the weights live traffic
	// currently runs on. The calibrator clones it before every tuning
	// round and never mutates it (or any published model) in place.
	Model *core.Model
	// Swap publishes a fine-tuned model into live traffic and returns
	// the new model version. Wire it to the engine:
	//
	//	Swap: func(m *core.Model) (int64, error) {
	//	    return eng.SwapModel(funcsim.GENIEx{Model: m})
	//	}
	Swap func(*core.Model) (int64, error)
	// Probe, when non-nil, feeds the calibrator: its tap captures
	// shadow-solve pairs, and its EWMA/drift gauges decide when a
	// tuning round is warranted. With a nil Probe the caller feeds
	// samples through Observe and every sample-triggered check passes.
	Probe *funcsim.Probe

	// Reservoir sizes the sample store; its conductance window is
	// filled from Model.Cfg when zero.
	Reservoir ReservoirConfig

	// SLO is the fidelity objective: a tuning round triggers when the
	// probe's rRMSE EWMA exceeds it. 0 disables the EWMA trigger.
	SLO float64
	// DriftThreshold triggers a round when the probe's drift gauge
	// (EWMA − baseline) exceeds it, once a baseline is recorded. 0
	// disables the drift trigger. With both triggers disabled every
	// check passes and rounds are bounded only by MinSamples and the
	// duty cycle.
	DriftThreshold float64
	// Trigger, when non-nil, replaces the built-in gauge checks (SLO /
	// DriftThreshold) entirely: a tuning round is warranted exactly
	// when it returns true. geniex-serve wires an obs.SLO burn-rate
	// closure here, so recalibration keys off a windowed error budget
	// rather than a raw point gauge. Called on the calibrator's worker
	// goroutine; must be fast and non-blocking.
	Trigger func() bool
	// MinSamples is the fewest reservoir samples a round trains on.
	// Default 32.
	MinSamples int

	// LR is the Adam learning rate for fine-tuning. Default 1e-3.
	LR float64
	// BatchSize is the fine-tuning minibatch size. Default 16.
	BatchSize int
	// Steps bounds the Adam steps of one round. Default 200.
	Steps int
	// DutyFactor bounds the worker's CPU share the way the probe's
	// duty cycle does: after a round that took d, no new round starts
	// for DutyFactor×d. Default 8.
	DutyFactor int
	// MinImprovement is the relative in-sample rRMSE improvement a
	// tuned model must show before it is published (post ≤
	// pre·(1−MinImprovement)); rounds that fail it are counted and
	// discarded. Default 0.05.
	MinImprovement float64
	// Seed drives reservoir replacement and minibatch sampling; a
	// fixed seed, sample log and round schedule reproduce the tuned
	// weights bit-for-bit.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.DutyFactor == 0 {
		c.DutyFactor = 8
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.05
	}
	return c
}

// Round reports one tuning round's outcome.
type Round struct {
	// Samples and Steps are the snapshot size and Adam steps taken.
	Samples, Steps int
	// Pre and Post are the in-sample mean rRMSE of the model before
	// and after tuning.
	Pre, Post float64
	// Published reports whether the tuned model was hot-swapped in;
	// Version is the engine version it became (0 when unpublished).
	Published bool
	Version   int64
}

// Calibrator runs the probe-fed background fine-tuning loop. Create
// with New, stop with Close. All heavy work happens on the
// calibrator's own goroutine; the capture path (the probe tap) costs
// two row copies per solved probe and never blocks.
type Calibrator struct {
	cfg   Config
	res   *Reservoir
	floor float64 // dark-tile rRMSE floor of the design point

	// current is the latest published model (or the initial one);
	// rounds clone it, so published weights are immutable.
	curMu   sync.Mutex
	current *core.Model

	// cooldownUntil is the duty-cycle gate, nanoseconds since start.
	start         time.Time
	cooldownUntil atomic.Int64

	roundMu sync.Mutex // one tuning round at a time

	notify    chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	rounds, skipped, published, rejected atomic.Int64
	version                              atomic.Int64
}

// New builds a calibrator, installs its tap on cfg.Probe (when
// given), and starts the background worker. Close detaches the tap
// and stops the worker.
func New(cfg Config) (*Calibrator, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("calib: Config.Model is required")
	}
	if cfg.Swap == nil {
		return nil, fmt.Errorf("calib: Config.Swap is required")
	}
	cfg = cfg.withDefaults()
	if cfg.Reservoir.GLo == 0 && cfg.Reservoir.GHi == 0 {
		cfg.Reservoir.GLo = cfg.Model.Cfg.Goff()
		cfg.Reservoir.GHi = cfg.Model.Cfg.Gon()
	}
	res, err := NewReservoir(cfg.Reservoir)
	if err != nil {
		return nil, err
	}
	xcfg := cfg.Model.Cfg
	c := &Calibrator{
		cfg:     cfg,
		res:     res,
		floor:   xbar.CurrentFloor * float64(xcfg.Rows) * xcfg.Vsupply * xcfg.Gon(),
		current: cfg.Model,
		start:   time.Now(),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if cfg.Probe != nil {
		cfg.Probe.SetTap(c.Observe)
	}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Observe feeds one shadow-solve into the calibrator; it is the
// funcsim.ProbeTap New installs. Runs on the probe worker: it copies
// the sample into the reservoir (dropping, never blocking, when
// contended) and nudges the background worker.
func (c *Calibrator) Observe(v []float64, g *linalg.Dense, circuit []float64, rrmse float64) {
	kept := c.res.Add(v, g, circuit, rrmse)
	mSamplesCaptured.Inc()
	if !kept {
		return
	}
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// loop is the duty-cycle-bounded worker: woken by captured samples,
// it checks the gauges and runs at most one tuning round per wake.
func (c *Calibrator) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-c.notify:
			if !c.shouldRound() {
				continue
			}
			if _, err := c.RunRound(); err != nil {
				mRoundErrors.Inc()
			}
		}
	}
}

// shouldRound applies the non-timer triggers: enough samples, outside
// the duty-cycle cool-down, and the probe gauges (when wired) showing
// the live model out of spec.
func (c *Calibrator) shouldRound() bool {
	if time.Since(c.start).Nanoseconds() < c.cooldownUntil.Load() {
		c.skipped.Add(1)
		mRoundsSkipped.Inc()
		return false
	}
	if c.res.Len() < c.cfg.MinSamples {
		return false
	}
	if !c.triggered() {
		c.skipped.Add(1)
		mRoundsSkipped.Inc()
		return false
	}
	return true
}

// triggered consults the Trigger override when one is installed,
// otherwise the probe's EWMA/drift gauges. Recalibration is
// deliberately signal-driven, not timer-driven: a healthy model is
// never retrained, no matter how long it runs.
func (c *Calibrator) triggered() bool {
	if c.cfg.Trigger != nil {
		return c.cfg.Trigger()
	}
	if c.cfg.Probe == nil || (c.cfg.SLO == 0 && c.cfg.DriftThreshold == 0) {
		return true
	}
	st := c.cfg.Probe.Stats()
	if c.cfg.SLO > 0 && st.RRMSEEWMA > c.cfg.SLO {
		return true
	}
	if c.cfg.DriftThreshold > 0 && st.BaselineRecorded && st.Drift > c.cfg.DriftThreshold {
		return true
	}
	return false
}

// RunRound executes one fine-tuning round synchronously: snapshot the
// reservoir, clone the current model, run the bounded Adam schedule,
// evaluate pre/post in-sample rRMSE, and publish through the Swap
// hook when the improvement clears Config.MinImprovement. The
// background worker calls it when triggered; tests and smokes may
// call it directly (rounds are serialized either way, and the duty
// cycle applies to both).
func (c *Calibrator) RunRound() (Round, error) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	t0 := time.Now()
	defer func() {
		// Duty-cycle bound, mirroring the probe worker's discipline.
		busy := time.Since(t0).Nanoseconds()
		c.cooldownUntil.Store(time.Since(c.start).Nanoseconds() + int64(c.cfg.DutyFactor)*busy)
	}()

	samples := c.res.Snapshot()
	if len(samples) == 0 {
		return Round{}, fmt.Errorf("calib: tuning round with an empty reservoir")
	}
	roundIdx := c.rounds.Add(1)
	mRounds.Inc()

	c.curMu.Lock()
	base := c.current
	c.curMu.Unlock()

	pre := meanRRMSE(base, samples, c.floor)
	tuned := base.Clone()
	steps := c.tune(tuned, samples, roundIdx)
	post := meanRRMSE(tuned, samples, c.floor)
	mPreRRMSE.Set(int64(pre * 1e6))
	mPostRRMSE.Set(int64(post * 1e6))

	r := Round{Samples: len(samples), Steps: steps, Pre: pre, Post: post}
	if post > pre*(1-c.cfg.MinImprovement) {
		c.rejected.Add(1)
		mRoundsRejected.Inc()
		return r, nil
	}
	version, err := c.cfg.Swap(tuned)
	if err != nil {
		return r, fmt.Errorf("calib: publish tuned model: %w", err)
	}
	c.curMu.Lock()
	c.current = tuned
	c.curMu.Unlock()
	c.published.Add(1)
	c.version.Store(version)
	mSwaps.Inc()
	mVersion.Set(version)
	r.Published, r.Version = true, version
	return r, nil
}

// tune runs the bounded minibatch schedule on a cloned model.
// Minibatches are drawn with a round-keyed deterministic RNG, so a
// fixed sample log reproduces the weights exactly.
func (c *Calibrator) tune(m *core.Model, samples []Sample, roundIdx int64) int {
	n := len(samples)
	in := linalg.NewDense(n, m.InputDim())
	labels := linalg.NewDense(n, m.Cfg.Cols)
	for i, s := range samples {
		m.AssembleInput(in.Row(i), s.V, s.G)
		m.AssembleLabel(labels.Row(i), s.V, s.G, s.Circuit)
	}

	tuner := m.NewTuner(c.cfg.LR)
	rng := linalg.NewRNG(c.cfg.Seed + uint64(roundIdx)*0x9e3779b97f4a7c15)
	bs := c.cfg.BatchSize
	if bs > n {
		bs = n
	}
	bx := linalg.NewDense(bs, in.Cols)
	by := linalg.NewDense(bs, labels.Cols)
	steps := 0
	for steps < c.cfg.Steps {
		perm := rng.Perm(n)
		for lo := 0; lo+bs <= n && steps < c.cfg.Steps; lo += bs {
			for i, s := range perm[lo : lo+bs] {
				copy(bx.Row(i), in.Row(s))
				copy(by.Row(i), labels.Row(s))
			}
			tuner.Step(bx, by)
			steps++
			mSteps.Inc()
		}
	}
	return steps
}

// Current returns the latest published model (the initial one until a
// round publishes). The returned model is immutable.
func (c *Calibrator) Current() *core.Model {
	c.curMu.Lock()
	defer c.curMu.Unlock()
	return c.current
}

// Stats is a point-in-time view of the calibrator.
type Stats struct {
	// Reservoir is the capture side: samples captured/dropped/held.
	Reservoir ReservoirStats
	// Rounds counts tuning rounds started; Skipped the wake-ups
	// refused by the duty cycle or gauges; Rejected the rounds whose
	// tuned model failed the improvement bar; Published the hot-swaps.
	Rounds, Skipped, Rejected, Published int64
	// Version is the engine model version of the last publish (0
	// before the first).
	Version int64
}

// Stats returns a snapshot of the calibrator's counters.
func (c *Calibrator) Stats() Stats {
	return Stats{
		Reservoir: c.res.Stats(),
		Rounds:    c.rounds.Load(),
		Skipped:   c.skipped.Load(),
		Rejected:  c.rejected.Load(),
		Published: c.published.Load(),
		Version:   c.version.Load(),
	}
}

// String summarizes the calibrator state in one line.
func (s Stats) String() string {
	return fmt.Sprintf("calibrator: %d captured (%d dropped, %d held), %d rounds (%d skipped, %d rejected), %d published, version %d",
		s.Reservoir.Captured, s.Reservoir.Dropped, s.Reservoir.Held,
		s.Rounds, s.Skipped, s.Rejected, s.Published, s.Version)
}

// Close detaches the probe tap and stops the background worker. Safe
// to call more than once; a tuning round in flight completes first.
func (c *Calibrator) Close() {
	c.closeOnce.Do(func() {
		if c.cfg.Probe != nil {
			c.cfg.Probe.SetTap(nil)
		}
		close(c.done)
	})
	c.wg.Wait()
}
