package calib

import (
	"testing"

	"geniex/internal/core"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// harshXbar is an aggressively non-ideal 8×8 design point: distortion
// is large enough that surrogate quality is measurable and a weak
// surrogate has real headroom to improve.
func harshXbar() xbar.Config {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	cfg.Ron = 25e3
	cfg.OnOffRatio = 2
	cfg.Rwire = 25
	cfg.Vsupply = 0.5
	return cfg
}

// weakSurrogate trains a deliberately under-fit GENIEx model — the
// "drifted in production" stand-in the calibrator is meant to repair.
func weakSurrogate(t *testing.T, cfg xbar.Config) *core.Model {
	t.Helper()
	ds, err := core.Generate(cfg, core.GenOptions{
		Samples:    120,
		StreamBits: 2, SliceBits: 2,
		Sparsities: []float64{0, 0.5},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(cfg, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ds, core.TrainOptions{Epochs: 4, BatchSize: 32, LR: 1e-3, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	return m
}

// circuitSamples labels n random tile evaluations through the circuit
// solver — the same pairs the probe tap would deliver in production.
func circuitSamples(t *testing.T, cfg xbar.Config, n int, seed uint64) []Sample {
	t.Helper()
	xb, err := xbar.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := linalg.NewRNG(seed)
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		g := linalg.NewDense(cfg.Rows, cfg.Cols)
		for j := range g.Data {
			g.Data[j] = cfg.ConductanceFromLevel(rng.Float64())
		}
		v := make([]float64, cfg.Rows)
		for j := range v {
			v[j] = rng.Float64() * cfg.Vsupply
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{
			V: v, G: g,
			Circuit: append([]float64(nil), sol.Currents...),
		})
	}
	return samples
}

// feed loads samples into the calibrator's reservoir without waking
// the background worker, so tests drive RunRound deterministically.
func feed(c *Calibrator, samples []Sample) {
	for _, s := range samples {
		c.res.Add(s.V, s.G, s.Circuit, s.RRMSE)
	}
}

// A tuning round on circuit-labelled samples must measurably improve a
// weak surrogate's in-sample divergence and publish the result through
// the Swap hook; the published model must be a different object than
// the base (published weights are immutable).
func TestCalibratorRoundImprovesAndPublishes(t *testing.T) {
	cfg := harshXbar()
	base := weakSurrogate(t, cfg)

	var swapped *core.Model
	c, err := New(Config{
		Model: base,
		Swap: func(m *core.Model) (int64, error) {
			swapped = m
			return 2, nil
		},
		MinSamples: 16,
		Steps:      400,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	feed(c, circuitSamples(t, cfg, 48, 21))
	r, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 48 || r.Steps != 400 {
		t.Fatalf("round %+v, want 48 samples and 400 steps", r)
	}
	if r.Pre <= 0 {
		t.Fatalf("pre-tuning rrmse %g, want > 0 for a weak surrogate", r.Pre)
	}
	if r.Post >= r.Pre {
		t.Fatalf("tuning did not improve in-sample rrmse: pre %g, post %g", r.Pre, r.Post)
	}
	if !r.Published || r.Version != 2 {
		t.Fatalf("round %+v, want published at version 2", r)
	}
	if swapped == nil || swapped == base {
		t.Fatal("Swap hook did not receive a fresh model clone")
	}
	if c.Current() != swapped {
		t.Fatal("Current() is not the published model")
	}
	s := c.Stats()
	if s.Rounds != 1 || s.Published != 1 || s.Rejected != 0 || s.Version != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Stats summary")
	}

	// The duty cycle must refuse an immediate follow-up round.
	if c.shouldRound() {
		t.Error("shouldRound() true immediately after a round — duty cycle not applied")
	}
	if got := c.Stats().Skipped; got != 1 {
		t.Errorf("skipped = %d after duty-cycle refusal, want 1", got)
	}
}

// An unreachable improvement bar must reject the round: no publish, no
// model change, rejection counted.
func TestCalibratorRejectsInsufficientImprovement(t *testing.T) {
	cfg := harshXbar()
	base := weakSurrogate(t, cfg)
	c, err := New(Config{
		Model:          base,
		Swap:           func(*core.Model) (int64, error) { t.Fatal("rejected round published"); return 0, nil },
		MinSamples:     16,
		Steps:          50,
		MinImprovement: 0.999,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(c, circuitSamples(t, cfg, 32, 33))
	r, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if r.Published {
		t.Fatal("round published despite an unreachable improvement bar")
	}
	if c.Current() != base {
		t.Fatal("rejected round replaced the current model")
	}
	if s := c.Stats(); s.Rejected != 1 || s.Published != 0 || s.Version != 0 {
		t.Fatalf("stats %+v, want 1 rejected, 0 published", s)
	}
}

// Two calibrators over the same sample log, seed, and schedule must
// produce bit-identical tuned weights: predictions of the published
// models agree exactly on unseen inputs.
func TestCalibratorReproducible(t *testing.T) {
	cfg := harshXbar()
	samples := circuitSamples(t, cfg, 40, 55)

	tuneOnce := func() *core.Model {
		base := weakSurrogate(t, cfg)
		var out *core.Model
		c, err := New(Config{
			Model:      base,
			Swap:       func(m *core.Model) (int64, error) { out = m; return 2, nil },
			MinSamples: 16,
			Steps:      150,
			Seed:       77,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		feed(c, samples)
		if _, err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatal("round did not publish; cannot compare weights")
		}
		return out
	}
	a, b := tuneOnce(), tuneOnce()

	rng := linalg.NewRNG(99)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for j := range g.Data {
		g.Data[j] = cfg.ConductanceFromLevel(rng.Float64())
	}
	v := make([]float64, cfg.Rows)
	for j := range v {
		v[j] = rng.Float64() * cfg.Vsupply
	}
	pa := make([]float64, cfg.Cols)
	pb := make([]float64, cfg.Cols)
	a.NonIdealCurrentsInto(pa, v, g)
	b.NonIdealCurrentsInto(pb, v, g)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("tuned models diverge at output %d: %v vs %v — tuning is not reproducible", i, pa[i], pb[i])
		}
	}
}

// End to end against a real engine: a published round hot-swaps the
// lowered matrices, advances the engine version, and the matrix keeps
// answering MVMs.
func TestCalibratorPublishesIntoEngine(t *testing.T) {
	xcfg := harshXbar()
	base := weakSurrogate(t, xcfg)
	simCfg, err := funcsim.NewConfig(xcfg, funcsim.WithSwappable())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := funcsim.NewEngine(simCfg, funcsim.GENIEx{Model: base})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	w := linalg.NewDense(8, 8)
	rng := linalg.NewRNG(3)
	for i := range w.Data {
		w.Data[i] = 2*rng.Float64() - 1
	}
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(2, 8)
	for i := range x.Data {
		x.Data[i] = 2*rng.Float64() - 1
	}
	if _, err := mat.MVM(x); err != nil {
		t.Fatal(err)
	}

	c, err := New(Config{
		Model:      base,
		Swap:       func(m *core.Model) (int64, error) { return eng.SwapModel(funcsim.GENIEx{Model: m}) },
		MinSamples: 16,
		Steps:      300,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(c, circuitSamples(t, xcfg, 48, 21))
	r, err := c.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Published {
		t.Fatalf("round %+v did not publish", r)
	}
	if v := eng.ModelVersion(); v != 2 || r.Version != 2 {
		t.Fatalf("engine version %d, round version %d, want 2", v, r.Version)
	}
	if _, err := mat.MVM(x); err != nil {
		t.Fatalf("MVM after hot-swap: %v", err)
	}
}

// Config validation: a calibrator without a model or publish hook is a
// wiring bug, not a runtime condition.
func TestCalibratorConfigValidation(t *testing.T) {
	cfg := harshXbar()
	m, err := core.NewModel(cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Swap: func(*core.Model) (int64, error) { return 0, nil }}); err == nil {
		t.Error("New accepted a nil Model")
	}
	if _, err := New(Config{Model: m}); err == nil {
		t.Error("New accepted a nil Swap hook")
	}
}
