package calib

import (
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func testResConfig(perRegime int, seed uint64) ReservoirConfig {
	cfg := xbar.DefaultConfig()
	return ReservoirConfig{
		Regimes:   4,
		PerRegime: perRegime,
		Seed:      seed,
		GLo:       cfg.Goff(),
		GHi:       cfg.Gon(),
	}
}

// feedSamples offers n deterministic samples spanning the conductance
// window; returns the conductance matrices so tests can check
// referencing semantics.
func feedSamples(t *testing.T, r *Reservoir, n int, seed uint64) []*linalg.Dense {
	t.Helper()
	cfg := xbar.DefaultConfig()
	rng := linalg.NewRNG(seed)
	gs := make([]*linalg.Dense, n)
	for i := 0; i < n; i++ {
		g := linalg.NewDense(4, 4)
		level := rng.Float64()
		for j := range g.Data {
			g.Data[j] = cfg.ConductanceFromLevel(level)
		}
		gs[i] = g
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		c := []float64{rng.Norm(), rng.Norm(), rng.Norm(), rng.Norm()}
		r.Add(v, g, c, rng.Float64())
	}
	return gs
}

// The reservoir must stay within its per-regime quota no matter how
// many samples arrive, and keep counting arrivals.
func TestReservoirBounded(t *testing.T) {
	r, err := NewReservoir(testResConfig(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	feedSamples(t, r, 500, 11)
	if held := r.Len(); held > 4*8 {
		t.Fatalf("reservoir holds %d samples, cap is %d", held, 4*8)
	}
	s := r.Stats()
	if s.Captured != 500 || s.Dropped != 0 {
		t.Fatalf("stats %+v, want 500 captured, 0 dropped", s)
	}
	if s.Held != r.Len() {
		t.Fatalf("stats.Held %d != Len %d", s.Held, r.Len())
	}
}

// A fixed seed and sample sequence must reproduce the reservoir
// bit-for-bit — the foundation of reproducible tuning rounds.
func TestReservoirDeterministic(t *testing.T) {
	a, err := NewReservoir(testResConfig(6, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReservoir(testResConfig(6, 42))
	if err != nil {
		t.Fatal(err)
	}
	feedSamples(t, a, 300, 13)
	feedSamples(t, b, 300, 13)
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("snapshots %d vs %d samples", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].RRMSE != sb[i].RRMSE || len(sa[i].V) != len(sb[i].V) {
			t.Fatalf("sample %d differs between identical reservoirs", i)
		}
		for j := range sa[i].V {
			if sa[i].V[j] != sb[i].V[j] {
				t.Fatalf("sample %d voltage %d differs", i, j)
			}
		}
		for j := range sa[i].Circuit {
			if sa[i].Circuit[j] != sb[i].Circuit[j] {
				t.Fatalf("sample %d circuit current %d differs", i, j)
			}
		}
	}

	// A different seed must (with overwhelming probability over 300
	// arrivals into 24 slots) retain a different subset.
	c, err := NewReservoir(testResConfig(6, 43))
	if err != nil {
		t.Fatal(err)
	}
	feedSamples(t, c, 300, 13)
	sc := c.Snapshot()
	same := true
	for i := range sa {
		if i >= len(sc) || sa[i].RRMSE != sc[i].RRMSE {
			same = false
			break
		}
	}
	if same {
		t.Error("different replacement seeds retained identical subsets")
	}
}

// Kept samples must be immune to later replacement: a snapshot taken
// before more arrivals still holds the original data (fresh buffers
// per kept sample).
func TestReservoirSnapshotImmutable(t *testing.T) {
	r, err := NewReservoir(testResConfig(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	feedSamples(t, r, 20, 5)
	snap := r.Snapshot()
	saved := make([][]float64, len(snap))
	for i, s := range snap {
		saved[i] = append([]float64(nil), s.V...)
	}
	feedSamples(t, r, 500, 6) // force heavy replacement
	for i, s := range snap {
		for j := range s.V {
			if s.V[j] != saved[i][j] {
				t.Fatalf("snapshot sample %d mutated by later arrivals", i)
			}
		}
	}
}

// Add must never block: with the reservoir lock held (a snapshot in
// progress), samples are dropped and counted.
func TestReservoirDropsUnderContention(t *testing.T) {
	r, err := NewReservoir(testResConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(2, 2)
	r.mu.Lock()
	kept := r.Add([]float64{1}, g, []float64{1}, 0.1)
	r.mu.Unlock()
	if kept {
		t.Fatal("Add kept a sample while the reservoir was contended")
	}
	s := r.Stats()
	if s.Dropped != 1 || s.Captured != 0 {
		t.Fatalf("stats %+v, want 1 dropped, 0 captured", s)
	}
	// Uncontended, the same sample is kept.
	if !r.Add([]float64{1}, g, []float64{1}, 0.1) {
		t.Fatal("uncontended Add did not keep the sample")
	}
}

// Validation must reject degenerate configurations.
func TestReservoirConfigValidate(t *testing.T) {
	for name, cfg := range map[string]ReservoirConfig{
		"zero-regimes":   {Regimes: -1, PerRegime: 4, GLo: 0, GHi: 1},
		"zero-quota":     {Regimes: 2, PerRegime: -5, GLo: 0, GHi: 1},
		"empty-g-window": {Regimes: 2, PerRegime: 4, GLo: 1, GHi: 1},
	} {
		if _, err := NewReservoir(cfg); err == nil {
			t.Errorf("%s: NewReservoir accepted %+v", name, cfg)
		}
	}
}
