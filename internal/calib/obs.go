package calib

import "geniex/internal/obs"

// Metric handles for the online-calibration loop, registered once in
// the process-wide obs registry. Like the probe's counters these
// always record (no obs.Enabled gate): an operator diagnosing a
// misbehaving calibration loop needs them even with sampling off, and
// every one of them is off the MVM hot path.
var (
	// Capture side: samples offered by the probe tap; drops are
	// visible in the reservoir stats and funcsim.probe metrics.
	mSamplesCaptured = obs.NewCounter("calib.samples.captured")
	mSamplesDropped  = obs.NewCounter("calib.samples.dropped")

	// Tuning side.
	mRounds         = obs.NewCounter("calib.rounds")
	mRoundsSkipped  = obs.NewCounter("calib.rounds_skipped")
	mRoundsRejected = obs.NewCounter("calib.rounds_rejected")
	mRoundErrors    = obs.NewCounter("calib.round_errors")
	mSteps          = obs.NewCounter("calib.steps")

	// Publish side: hot-swaps performed, last published engine model
	// version, and the in-sample rRMSE before/after the last round
	// (micro units; divide by 1e6).
	mSwaps     = obs.NewCounter("calib.swaps")
	mVersion   = obs.NewGauge("calib.version")
	mPreRRMSE  = obs.NewGauge("calib.pre_rrmse_micro")
	mPostRRMSE = obs.NewGauge("calib.post_rrmse_micro")
)
