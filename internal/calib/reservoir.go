// Package calib closes the loop the fidelity probe opened: the probe
// already shadow-solves sampled tile MVMs through the circuit solver,
// which is exactly a live stream of GENIEx training pairs
// (V, G) → I_circuit. This package captures that stream into a
// bounded reservoir, fine-tunes a copy of the GENIEx MLP in the
// background when the probe's drift gauges say fidelity degraded, and
// publishes the result as an immutable versioned model through an
// atomic hot-swap hook (funcsim.Engine.SwapModel). Fidelity becomes a
// controlled quantity instead of a configuration choice — the
// adaptive counterpart of the paper's train-once surrogate.
//
// Discipline mirrors the probe's: nothing in the capture path blocks
// (contended samples are dropped and counted), the fine-tune worker
// is duty-cycle bounded, and recalibration is triggered by the
// existing EWMA/drift gauges rather than a timer. Given a fixed
// sample log and round schedule, reservoir contents and fine-tuned
// weights are bit-reproducible from the configured seed.
package calib

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"geniex/internal/linalg"
)

// Sample is one captured shadow-solve: the drive voltages, the tile's
// programmed conductances, and the circuit-solved output currents —
// one GENIEx training pair, labelled by the same solver that labels
// offline datasets. V and Circuit are owned by the sample; G is a
// reference to the engine's retained conductance matrix, immutable
// after lowering and stable across model hot-swaps.
type Sample struct {
	V       []float64
	G       *linalg.Dense
	Circuit []float64
	// RRMSE is the model-vs-circuit divergence the probe measured
	// when the sample was captured (against the model version live at
	// that moment).
	RRMSE float64
}

// ReservoirConfig sizes the sample reservoir.
type ReservoirConfig struct {
	// Regimes partitions samples by conductance regime: the mean
	// normalized conductance of a sample's tile selects one of
	// Regimes equal-width buckets in [0, 1]. Keeping per-regime
	// quotas stops a workload dominated by one conductance range
	// (e.g. mostly-dark tiles) from evicting the samples that cover
	// the rest of the surrogate's input space. Default 4.
	Regimes int
	// PerRegime bounds each regime's sample count. Default 48.
	PerRegime int
	// Seed drives the reservoir's replacement decisions; a fixed seed
	// and sample sequence reproduce the reservoir bit-for-bit.
	Seed uint64
	// GLo and GHi are the conductance window bounds used to normalize
	// regime positions (the model's Goff/Gon).
	GLo, GHi float64
}

func (c ReservoirConfig) withDefaults() ReservoirConfig {
	if c.Regimes == 0 {
		c.Regimes = 4
	}
	if c.PerRegime == 0 {
		c.PerRegime = 48
	}
	return c
}

// Validate reports whether the configuration is consistent.
func (c ReservoirConfig) Validate() error {
	if c.Regimes < 1 {
		return fmt.Errorf("calib: reservoir with %d regimes", c.Regimes)
	}
	if c.PerRegime < 1 {
		return fmt.Errorf("calib: reservoir with %d samples per regime", c.PerRegime)
	}
	if !(c.GHi > c.GLo) {
		return fmt.Errorf("calib: reservoir conductance window [%g, %g] is empty", c.GLo, c.GHi)
	}
	return nil
}

// regimeRes is one conductance regime's uniform reservoir
// (Algorithm R): after the quota fills, the i-th arrival replaces a
// random kept sample with probability quota/i, so the kept set stays
// a uniform sample of everything seen.
type regimeRes struct {
	rng     *linalg.RNG
	seen    int64
	samples []Sample
}

// Reservoir is a bounded, seedable sample store fed from the probe
// tap. Add never blocks: when another goroutine holds the reservoir
// (a training snapshot in progress), the sample is dropped and
// counted, mirroring the probe's drops-never-blocks queue discipline.
type Reservoir struct {
	cfg ReservoirConfig

	mu      sync.Mutex
	regimes []regimeRes

	captured, dropped atomic.Int64
}

// NewReservoir builds an empty reservoir.
func NewReservoir(cfg ReservoirConfig) (*Reservoir, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Reservoir{cfg: cfg, regimes: make([]regimeRes, cfg.Regimes)}
	for i := range r.regimes {
		// Independent per-regime streams keep replacement decisions
		// inside one regime unaffected by arrivals in the others.
		r.regimes[i].rng = linalg.NewRNG(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	return r, nil
}

// regimeOf buckets a sample by its tile's mean normalized
// conductance.
func (r *Reservoir) regimeOf(g *linalg.Dense) int {
	var sum float64
	for _, x := range g.Data {
		sum += x
	}
	mean := sum / float64(len(g.Data))
	pos := (mean - r.cfg.GLo) / (r.cfg.GHi - r.cfg.GLo)
	idx := int(pos * float64(r.cfg.Regimes))
	if idx < 0 {
		idx = 0
	}
	if idx >= r.cfg.Regimes {
		idx = r.cfg.Regimes - 1
	}
	return idx
}

// Add offers one shadow-solve to the reservoir, copying v and circuit
// (the caller's buffers are reused) and referencing g (immutable
// after lowering). It never blocks: a contended reservoir drops the
// sample and counts it. Reports whether the sample was kept (false
// for both drops and Algorithm-R rejections).
func (r *Reservoir) Add(v []float64, g *linalg.Dense, circuit []float64, rrmse float64) bool {
	if !r.mu.TryLock() {
		r.dropped.Add(1)
		mSamplesDropped.Inc()
		return false
	}
	defer r.mu.Unlock()
	r.captured.Add(1)

	reg := &r.regimes[r.regimeOf(g)]
	reg.seen++
	slot := -1
	if len(reg.samples) < r.cfg.PerRegime {
		reg.samples = append(reg.samples, Sample{})
		slot = len(reg.samples) - 1
	} else if j := reg.rng.Intn(int(reg.seen)); j < r.cfg.PerRegime {
		slot = j
	}
	if slot < 0 {
		return false
	}
	// Fresh buffers per kept sample: snapshots hand out the sample
	// structs by value, so a later replacement of this slot must not
	// mutate data a training round already holds.
	s := Sample{
		V:       append([]float64(nil), v...),
		G:       g,
		Circuit: append([]float64(nil), circuit...),
		RRMSE:   rrmse,
	}
	reg.samples[slot] = s
	return true
}

// Snapshot returns the kept samples of every regime, in deterministic
// regime-major order. The returned samples are immutable (replacement
// never mutates handed-out buffers), so a training round can hold a
// snapshot while capture continues.
func (r *Reservoir) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for i := range r.regimes {
		out = append(out, r.regimes[i].samples...)
	}
	return out
}

// Len reports how many samples the reservoir currently holds.
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.regimes {
		n += len(r.regimes[i].samples)
	}
	return n
}

// ReservoirStats is a point-in-time view of the capture counters.
type ReservoirStats struct {
	// Captured counts samples that reached the reservoir (kept or
	// rejected by Algorithm R); Dropped counts samples shed because
	// the reservoir was contended. Held is the current sample count.
	Captured, Dropped int64
	Held              int
}

// Stats returns a snapshot of the reservoir's counters.
func (r *Reservoir) Stats() ReservoirStats {
	return ReservoirStats{
		Captured: r.captured.Load(),
		Dropped:  r.dropped.Load(),
		Held:     r.Len(),
	}
}

// meanRRMSE averages a model's divergence against every snapshot
// sample: predicted non-ideal currents vs the circuit-solved ones,
// with the probe's relative-RMSE metric (including its dark-tile
// floor).
func meanRRMSE(m predictor, samples []Sample, floor float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	pred := make([]float64, len(samples[0].Circuit))
	for _, s := range samples {
		m.NonIdealCurrentsInto(pred, s.V, s.G)
		sum += relRMSE(pred, s.Circuit, floor)
	}
	return sum / float64(len(samples))
}

// predictor is the slice of core.Model the evaluator needs.
type predictor interface {
	NonIdealCurrentsInto(dst, v []float64, g *linalg.Dense)
}

// relRMSE mirrors the probe's divergence metric: RMSE between model
// and circuit currents normalized by the circuit RMS, floored so dark
// tiles cannot blow the ratio up.
func relRMSE(model, circuit []float64, floor float64) float64 {
	if len(model) == 0 {
		return 0
	}
	var num, den float64
	for i := range model {
		d := model[i] - circuit[i]
		num += d * d
		den += circuit[i] * circuit[i]
	}
	n := float64(len(model))
	rms := math.Sqrt(den / n)
	if rms < floor {
		rms = floor
	}
	return math.Sqrt(num/n) / rms
}
