// Package sweep is the declarative scenario-grid engine: it fans a
// grid of (array size × non-ideality stack × analog model × seed)
// cells across workers, checkpoints every completed cell atomically,
// and resumes after a crash by skipping the cells already on disk.
//
// Each cell is one fully deterministic measurement: lower a fixed
// weight matrix under the cell's nonideal.Scenario, run a fixed input
// batch through the chosen fidelity tier, and record the divergence
// from the clean ideal lowering. Determinism is load-bearing twice
// over — it makes a resumed sweep bit-identical to an uninterrupted
// one, and it lets cells run at any concurrency. Cell results contain
// no timestamps or durations for the same reason: result files from a
// killed-and-resumed sweep must byte-compare equal to a clean run's.
package sweep

import (
	"fmt"
	"regexp"
	"strings"

	"geniex/internal/funcsim"
	"geniex/internal/nonideal"
)

// Convenience aliases for the registered fidelity-tier names
// (funcsim.RegisterModel is the source of truth; a cell may select any
// registered tier, these are just the built-ins specs commonly list).
const (
	ModelIdeal       = "ideal"
	ModelAnalytical  = "analytical"
	ModelGENIEx      = "geniex"
	ModelCircuit     = "circuit"
	ModelFastCircuit = "fastcircuit"
)

// StackSpec is a named non-ideality composition; the name keys cell
// IDs and summary rows.
type StackSpec struct {
	Name  string         `json:"name"`
	Stack nonideal.Stack `json:"stack"`
}

// GENIExSpec bounds the surrogate training a sweep performs when its
// model list includes "geniex". One surrogate is trained per array
// size (the surrogate models the design point, not the faults) from a
// seed derived from the size alone, so retraining after a resume
// reproduces the same model.
type GENIExSpec struct {
	Samples int `json:"samples,omitempty"` // circuit-labelled samples (default 256)
	Epochs  int `json:"epochs,omitempty"`  // Adam epochs (default 30)
	Hidden  int `json:"hidden,omitempty"`  // hidden width (default 24)
}

func (g GENIExSpec) withDefaults() GENIExSpec {
	if g.Samples == 0 {
		g.Samples = 256
	}
	if g.Epochs == 0 {
		g.Epochs = 30
	}
	if g.Hidden == 0 {
		g.Hidden = 24
	}
	return g
}

// Spec declares a sweep grid. The cell list is the cross product
// Sizes × Stacks × Models × Seeds, enumerated in that nesting order.
type Spec struct {
	// Name labels the sweep in logs and the summary.
	Name string `json:"name"`
	// Sizes are the square array sizes (rows = cols) to sweep.
	Sizes []int `json:"sizes"`
	// Stacks are the named non-ideality compositions; use an empty
	// stack for the clean baseline.
	Stacks []StackSpec `json:"stacks"`
	// Models are the fidelity tiers to evaluate (Model* constants).
	Models []string `json:"models"`
	// Seeds drive the scenario draws; weights and inputs depend only on
	// the array size, so seeds isolate the fault realization.
	Seeds []uint64 `json:"seeds"`
	// Time is the scenario clock reading (seconds since programming)
	// shared by every cell; drift-bearing stacks age by it.
	Time float64 `json:"time,omitempty"`
	// Batch is the number of evaluation input rows (default 4).
	Batch int `json:"batch,omitempty"`
	// Jobs bounds how many cells run concurrently (default GOMAXPROCS).
	// Each cell's own MVM tiles additionally fan out across the shared
	// funcsim worker pool, which is bounded at GOMAXPROCS globally.
	Jobs int `json:"jobs,omitempty"`
	// GENIEx bounds the per-size surrogate training for "geniex" cells.
	GENIEx GENIExSpec `json:"geniex,omitempty"`
}

// Validate reports whether the spec describes a runnable grid.
func (s *Spec) Validate() error {
	if len(s.Sizes) == 0 || len(s.Stacks) == 0 || len(s.Models) == 0 || len(s.Seeds) == 0 {
		return fmt.Errorf("sweep: grid needs at least one size, stack, model and seed")
	}
	for _, n := range s.Sizes {
		if n < 2 || n > 256 {
			return fmt.Errorf("sweep: array size %d out of range [2, 256]", n)
		}
	}
	seen := map[string]bool{}
	for i, st := range s.Stacks {
		if st.Name == "" {
			return fmt.Errorf("sweep: stack %d has no name", i)
		}
		id := sanitize(st.Name)
		if seen[id] {
			return fmt.Errorf("sweep: stack name %q collides with an earlier stack (after sanitizing)", st.Name)
		}
		seen[id] = true
		if err := st.Stack.Validate(); err != nil {
			return fmt.Errorf("sweep: stack %q: %w", st.Name, err)
		}
	}
	for _, m := range s.Models {
		if _, err := funcsim.ModelByName(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	if s.Time < 0 {
		return fmt.Errorf("sweep: negative scenario time %g", s.Time)
	}
	if s.Batch < 0 || s.Jobs < 0 {
		return fmt.Errorf("sweep: negative batch or jobs")
	}
	return nil
}

// Cell is one grid point.
type Cell struct {
	Index int
	Size  int
	Stack StackSpec
	Model string
	Seed  uint64
}

// ID is the cell's stable identifier — the checkpoint file name stem.
// It is a pure function of the cell coordinates, never of enumeration
// order or timing.
func (c Cell) ID() string {
	return fmt.Sprintf("size%03d_%s_%s_seed%d", c.Size, sanitize(c.Stack.Name), c.Model, c.Seed)
}

// Cells enumerates the grid in deterministic order: sizes outermost,
// then stacks, models, seeds.
func (s *Spec) Cells() []Cell {
	var cells []Cell
	for _, size := range s.Sizes {
		for _, st := range s.Stacks {
			for _, m := range s.Models {
				for _, seed := range s.Seeds {
					cells = append(cells, Cell{
						Index: len(cells),
						Size:  size, Stack: st, Model: m, Seed: seed,
					})
				}
			}
		}
	}
	return cells
}

var sanitizeRe = regexp.MustCompile(`[^a-z0-9_+-]+`)

// sanitize maps a stack name onto the file-name-safe alphabet.
func sanitize(name string) string {
	out := sanitizeRe.ReplaceAllString(strings.ToLower(name), "-")
	if out == "" {
		out = "x"
	}
	return out
}

// Result is one completed cell's measurement. Every field is a pure
// function of the cell coordinates and the spec — nothing here may
// depend on wall-clock time, host, or concurrency, or kill-and-resume
// result files would stop byte-comparing equal to a clean run's.
type Result struct {
	ID    string `json:"id"`
	Size  int    `json:"size"`
	Stack string `json:"stack"`
	Model string `json:"model"`
	Seed  uint64 `json:"seed"`

	// RRMSE is the relative RMSE of the cell's MVM output against the
	// clean ideal lowering of the same weights and inputs.
	RRMSE float64 `json:"rrmse"`
	// MaxAbsErr is the worst absolute output deviation.
	MaxAbsErr float64 `json:"max_abs_err"`
	// DegradedFraction is the fraction of the cell's physical crossbars
	// carrying at least one stuck cell.
	DegradedFraction float64 `json:"degraded_fraction"`
	// StuckCells and TouchedCells summarize the scenario report.
	StuckCells   int `json:"stuck_cells"`
	TouchedCells int `json:"touched_cells"`
	// Crossbars is how many physical crossbars the lowering occupied.
	Crossbars int `json:"crossbars"`
}

// GroupKey identifies the (size, stack, model) summary group a result
// aggregates into across seeds.
func (r Result) GroupKey() string {
	return fmt.Sprintf("size%03d_%s_%s", r.Size, sanitize(r.Stack), r.Model)
}

// GroupStats aggregates one (size, stack, model) group over its seeds.
type GroupStats struct {
	Key   string `json:"key"`
	Size  int    `json:"size"`
	Stack string `json:"stack"`
	Model string `json:"model"`
	Seeds int    `json:"seeds"`

	MeanRRMSE        float64 `json:"mean_rrmse"`
	MinRRMSE         float64 `json:"min_rrmse"`
	MaxRRMSE         float64 `json:"max_rrmse"`
	MeanDegraded     float64 `json:"mean_degraded_fraction"`
	MeanStuckCells   float64 `json:"mean_stuck_cells"`
	MeanTouchedCells float64 `json:"mean_touched_cells"`
}

// Summary is the sweep-level aggregate written to summary.json.
type Summary struct {
	Name   string       `json:"name"`
	Cells  int          `json:"cells"`
	Failed int          `json:"failed"`
	Groups []GroupStats `json:"groups"`
}
