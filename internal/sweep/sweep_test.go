package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geniex/internal/nonideal"
)

// tinySpec is a fast grid: ideal and analytical tiers on one small
// array, a clean and a faulted stack, two seeds — 8 cells.
func tinySpec() Spec {
	return Spec{
		Name:  "test",
		Sizes: []int{8},
		Stacks: []StackSpec{
			{Name: "clean"},
			{Name: "faults", Stack: nonideal.Stack{
				&nonideal.StuckAt{POn: 0.05, POff: 0.05},
				&nonideal.D2DVariation{Sigma: 0.2},
			}},
		},
		Models: []string{ModelIdeal, ModelAnalytical},
		Seeds:  []uint64{1, 2},
		Jobs:   2,
	}
}

func TestSpecValidateAndCells(t *testing.T) {
	s := tinySpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := s.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID()] {
			t.Fatalf("duplicate cell ID %s", c.ID())
		}
		seen[c.ID()] = true
	}

	bad := []func(*Spec){
		func(s *Spec) { s.Sizes = nil },
		func(s *Spec) { s.Sizes = []int{1} },
		func(s *Spec) { s.Models = []string{"quantum"} },
		func(s *Spec) { s.Stacks[0].Name = "" },
		func(s *Spec) { s.Stacks[1].Name = "Clean" }, // collides after sanitizing
		func(s *Spec) { s.Time = -1 },
		func(s *Spec) {
			s.Stacks[1].Stack = nonideal.Stack{&nonideal.D2DVariation{Sigma: -1}}
		},
	}
	for i, mutate := range bad {
		s := tinySpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := tinySpec()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// Canonical comparison (re-marshal), the same equivalence the
	// resume-time spec check uses: an empty stack decodes as empty
	// rather than nil, which DeepEqual would over-reject.
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip changed spec:\n%s\n%s", b, b2)
	}
	if len(back.Stacks) != 2 || len(back.Stacks[1].Stack) != 2 {
		t.Fatalf("stacks lost in round trip: %+v", back.Stacks)
	}
}

func TestRunCompletesAndSummarizes(t *testing.T) {
	dir := t.TempDir()
	out, err := Run(context.Background(), tinySpec(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 8 || out.Skipped != 0 || len(out.Failures) != 0 {
		t.Fatalf("executed=%d skipped=%d failures=%d", out.Executed, out.Skipped, len(out.Failures))
	}
	if len(out.Results) != 8 {
		t.Fatalf("%d results", len(out.Results))
	}
	if got := len(out.Summary.Groups); got != 4 {
		t.Fatalf("%d summary groups, want 4", got)
	}
	for _, r := range out.Results {
		if r.Stack == "faults" && r.StuckCells == 0 {
			t.Errorf("%s: faulted cell reports no stuck cells", r.ID)
		}
		if r.Stack == "clean" && r.Model == ModelIdeal && r.RRMSE != 0 {
			t.Errorf("%s: clean ideal cell diverges from reference: %v", r.ID, r.RRMSE)
		}
		if r.Stack == "faults" && r.RRMSE == 0 {
			t.Errorf("%s: faulted cell reports zero divergence", r.ID)
		}
	}
	var sum Summary
	if err := readJSON(filepath.Join(dir, "summary.json"), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 8 {
		t.Fatalf("summary.json has %d cells", sum.Cells)
	}
}

// A resumed run executes exactly the missing cells — never a
// checkpointed one — and the combined results are identical to an
// uninterrupted run's.
func TestResumeSkipsCheckpointedCells(t *testing.T) {
	spec := tinySpec()
	cells := spec.Cells()

	// Uninterrupted reference run.
	refDir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{Dir: refDir}); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 3 cells have been dispatched.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	cellHook = func(Cell) {
		ran++
		if ran == 4 {
			cancel()
		}
	}
	defer func() { cellHook = nil }()
	_, err := Run(ctx, spec, Options{Dir: dir, Jobs: 1})
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	done, err := filepath.Glob(filepath.Join(dir, "cells", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) == 0 || len(done) == len(cells) {
		t.Fatalf("interrupted run checkpointed %d/%d cells", len(done), len(cells))
	}

	// Resume must run only the remainder, touching no existing file.
	cellHook = nil
	var executed []string
	cellHook = func(c Cell) { executed = append(executed, c.ID()) }
	out, err := Run(context.Background(), spec, Options{Dir: dir, Resume: true, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped != len(done) || out.Executed != len(cells)-len(done) {
		t.Fatalf("resume: skipped=%d executed=%d, checkpointed=%d of %d",
			out.Skipped, out.Executed, len(done), len(cells))
	}
	was := map[string]bool{}
	for _, p := range done {
		was[strings.TrimSuffix(filepath.Base(p), ".json")] = true
	}
	for _, id := range executed {
		if was[id] {
			t.Fatalf("resume re-ran checkpointed cell %s", id)
		}
	}

	// Byte-identical cell files vs the uninterrupted run.
	for _, c := range cells {
		a, err := os.ReadFile(filepath.Join(refDir, "cells", c.ID()+".json"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "cells", c.ID()+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("cell %s differs between resumed and uninterrupted runs", c.ID())
		}
	}
}

// Without Resume, existing checkpoints are an error, not silently
// adopted or overwritten.
func TestFreshRunRefusesExistingCheckpoints(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, Options{Dir: dir}); err == nil {
		t.Fatal("fresh run adopted existing checkpoints")
	}
}

// Resuming under a different grid is rejected: the results would not
// be comparable.
func TestResumeRejectsSpecMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), tinySpec(), Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := tinySpec()
	other.Seeds = []uint64{1, 2, 3}
	if _, err := Run(context.Background(), other, Options{Dir: dir, Resume: true}); err == nil {
		t.Fatal("resume accepted a different spec")
	}
}

// A panicking cell is isolated: it is recorded as failed, writes no
// checkpoint, and the rest of the grid completes. A resumed run
// retries exactly the failed cell.
func TestPanicIsolationAndRetry(t *testing.T) {
	spec := tinySpec()
	cells := spec.Cells()
	victim := cells[3].ID()

	dir := t.TempDir()
	cellHook = func(c Cell) {
		if c.ID() == victim {
			panic("injected cell panic")
		}
	}
	defer func() { cellHook = nil }()
	out, err := Run(context.Background(), spec, Options{Dir: dir, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != len(cells)-1 || len(out.Failures) != 1 {
		t.Fatalf("executed=%d failures=%d", out.Executed, len(out.Failures))
	}
	if out.Failures[0].ID != victim || !strings.Contains(out.Failures[0].Err, "injected cell panic") {
		t.Fatalf("failure record %+v", out.Failures[0])
	}
	if _, err := os.Stat(filepath.Join(dir, "cells", victim+".json")); !os.IsNotExist(err) {
		t.Fatal("failed cell left a checkpoint")
	}

	cellHook = nil
	out, err = Run(context.Background(), spec, Options{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 1 || out.Skipped != len(cells)-1 || len(out.Failures) != 0 {
		t.Fatalf("retry: executed=%d skipped=%d failures=%d", out.Executed, out.Skipped, len(out.Failures))
	}
}

// Cell results are independent of the cell-level concurrency.
func TestResultsIndependentOfJobs(t *testing.T) {
	spec := tinySpec()
	ref, err := Run(context.Background(), spec, Options{Dir: t.TempDir(), Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), spec, Options{Dir: t.TempDir(), Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Results, par.Results) {
		t.Fatal("results differ between Jobs=1 and Jobs=4")
	}
}

// The circuit tier runs through the same machinery (kept small; this
// is the full-physics path the scenario grid exists for).
func TestCircuitCellRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit cell in -short mode")
	}
	spec := Spec{
		Name:  "circuit",
		Sizes: []int{8},
		Stacks: []StackSpec{{Name: "stuck", Stack: nonideal.Stack{
			&nonideal.StuckAt{POn: 0.1},
		}}},
		Models: []string{ModelCircuit},
		Seeds:  []uint64{5},
	}
	out, err := Run(context.Background(), spec, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 1 || len(out.Failures) != 0 {
		t.Fatalf("executed=%d failures=%v", out.Executed, out.Failures)
	}
	r := out.Results[0]
	if r.RRMSE == 0 || r.StuckCells == 0 {
		t.Fatalf("circuit cell implausible: %+v", r)
	}
}
