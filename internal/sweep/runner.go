package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"geniex/internal/core"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/nonideal"
	"geniex/internal/obs"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

// Sweep progress counters in the process-wide obs registry.
var (
	mCellsExecuted = obs.NewCounter("sweep.cells.executed")
	mCellsSkipped  = obs.NewCounter("sweep.cells.skipped")
	mCellsFailed   = obs.NewCounter("sweep.cells.failed")
)

// Options configures one Run.
type Options struct {
	// Dir is the checkpoint directory: spec.json, cells/<id>.json per
	// completed cell, summary.json at the end.
	Dir string
	// Resume skips cells whose checkpoint files already exist. Without
	// it, existing checkpoints in Dir are an error — a fresh sweep must
	// not silently adopt (or overwrite) another run's results.
	Resume bool
	// Jobs overrides Spec.Jobs when positive.
	Jobs int
	// CellDelay inserts an artificial pause before each executed cell.
	// It exists for the kill-and-resume smoke test, which needs cells
	// slow enough to interrupt a run mid-grid deterministically.
	CellDelay time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Failure records a cell that errored or panicked. Failed cells write
// no checkpoint, so a resumed run retries them.
type Failure struct {
	ID  string `json:"id"`
	Err string `json:"err"`
}

// Outcome is what one Run did: freshly executed cells, cells skipped
// because a checkpoint already existed, failures, and the full result
// set (checkpointed + fresh) with its summary.
type Outcome struct {
	Executed int
	Skipped  int
	Failures []Failure
	Results  []Result
	Summary  Summary
}

// cellHook, when non-nil, runs just before each executed cell; tests
// use it to inject panics and to observe execution order.
var cellHook func(Cell)

// Run executes the sweep grid, checkpointing each completed cell
// atomically under opt.Dir. Cells run concurrently (Jobs-bounded) but
// every cell is individually deterministic, so the result set is
// independent of scheduling. On context cancellation Run stops
// dispatching, waits for in-flight cells, and returns the context
// error; completed checkpoints stay valid for a later -resume.
func Run(ctx context.Context, spec Spec, opt Options) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("sweep: no checkpoint directory")
	}
	cellsDir := filepath.Join(opt.Dir, "cells")
	if err := os.MkdirAll(cellsDir, 0o755); err != nil {
		return nil, err
	}
	if err := checkSpecFile(spec, opt.Dir); err != nil {
		return nil, err
	}

	cells := spec.Cells()
	out := &Outcome{}
	var pending []Cell
	for _, c := range cells {
		path := filepath.Join(cellsDir, c.ID()+".json")
		if _, err := os.Stat(path); err == nil {
			if !opt.Resume {
				return nil, fmt.Errorf("sweep: checkpoint %s already exists; pass resume or use a fresh directory", path)
			}
			var r Result
			if err := readJSON(path, &r); err != nil {
				return nil, fmt.Errorf("sweep: corrupt checkpoint %s: %w", path, err)
			}
			out.Skipped++
			mCellsSkipped.Inc()
			out.Results = append(out.Results, r)
			opt.logf("sweep: skip %s (checkpointed)", c.ID())
			continue
		}
		pending = append(pending, c)
	}
	opt.logf("sweep: %s — %d cells, %d checkpointed, %d to run",
		spec.Name, len(cells), out.Skipped, len(pending))

	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = spec.Jobs
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pending) && len(pending) > 0 {
		jobs = len(pending)
	}

	r := &runner{spec: spec, opt: opt, cellsDir: cellsDir, out: out}
	work := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				r.execute(ctx, c)
			}
		}()
	}
dispatch:
	for _, c := range pending {
		select {
		case <-ctx.Done():
			break dispatch
		case work <- c:
		}
	}
	close(work)
	wg.Wait()

	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].ID < out.Results[j].ID })
	sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].ID < out.Failures[j].ID })
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("sweep: interrupted with %d/%d cells checkpointed: %w",
			out.Skipped+out.Executed, len(cells), err)
	}
	out.Summary = summarize(spec.Name, out.Results, len(out.Failures))
	if err := writeAtomicJSON(filepath.Join(opt.Dir, "summary.json"), out.Summary); err != nil {
		return out, err
	}
	return out, nil
}

// runner is the shared state of one Run's workers.
type runner struct {
	spec     Spec
	opt      Options
	cellsDir string

	mu  sync.Mutex
	out *Outcome

	// surrogates memoizes one trained GENIEx model per array size.
	surMu      sync.Mutex
	surrogates map[int]*core.Model
}

// execute runs one cell with panic isolation: a panicking cell is
// recorded as failed and the sweep keeps going.
func (r *runner) execute(ctx context.Context, c Cell) {
	var res Result
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panicked: %v", p)
			}
		}()
		if cellHook != nil {
			cellHook(c)
		}
		if r.opt.CellDelay > 0 {
			select {
			case <-time.After(r.opt.CellDelay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		res, err = r.runCell(c)
		return err
	}()
	if err != nil {
		r.mu.Lock()
		r.out.Failures = append(r.out.Failures, Failure{ID: c.ID(), Err: err.Error()})
		r.mu.Unlock()
		mCellsFailed.Inc()
		r.opt.logf("sweep: FAIL %s: %v", c.ID(), err)
		return
	}
	if err := writeAtomicJSON(filepath.Join(r.cellsDir, c.ID()+".json"), res); err != nil {
		r.mu.Lock()
		r.out.Failures = append(r.out.Failures, Failure{ID: c.ID(), Err: err.Error()})
		r.mu.Unlock()
		mCellsFailed.Inc()
		r.opt.logf("sweep: FAIL %s: %v", c.ID(), err)
		return
	}
	r.mu.Lock()
	r.out.Executed++
	r.out.Results = append(r.out.Results, res)
	r.mu.Unlock()
	mCellsExecuted.Inc()
	r.opt.logf("sweep: done %s rrmse=%.4g degraded=%.3f", c.ID(), res.RRMSE, res.DegradedFraction)
}

// cellConfig builds the cell's functional-simulator architecture: the
// paper's digit widths on a cheap 8-bit numeric format, serial batch
// solving (grid-level concurrency is the parallelism axis; each MVM's
// tiles still fan out across the shared funcsim pool).
func (r *runner) cellConfig(size int, sc *nonideal.Scenario) (funcsim.Config, xbar.Config, error) {
	xcfg, err := xbar.NewConfig(size, size, xbar.WithBatchWorkers(1))
	if err != nil {
		return funcsim.Config{}, xbar.Config{}, err
	}
	fx := quant.FxP{Bits: 8, Frac: 5}
	cfg, err := funcsim.NewConfig(xcfg,
		funcsim.WithFormats(fx, fx),
		funcsim.WithStreamBits(4), funcsim.WithSliceBits(4),
		funcsim.WithScenario(sc))
	return cfg, xcfg, err
}

// workload returns the cell's weight matrix and input batch. Both are
// pure functions of the array size, so every (stack, model, seed) cell
// of one size measures the same computation under different faults.
func (r *runner) workload(size int) (w, x *linalg.Dense) {
	rng := linalg.NewRNG(nonideal.DeriveSeed(0x5eed0b5e, uint64(size)))
	w = linalg.NewDense(size, size)
	for i := range w.Data {
		w.Data[i] = rng.Norm() / 2
	}
	batch := r.spec.Batch
	if batch <= 0 {
		batch = 4
	}
	x = linalg.NewDense(batch, size)
	for i := range x.Data {
		x.Data[i] = rng.Norm() / 2
	}
	return w, x
}

// runCell performs one deterministic measurement.
func (r *runner) runCell(c Cell) (Result, error) {
	sc := &nonideal.Scenario{Stack: c.Stack.Stack, Seed: c.Seed, Time: r.spec.Time}
	cfg, xcfg, err := r.cellConfig(c.Size, sc)
	if err != nil {
		return Result{}, err
	}
	w, x := r.workload(c.Size)

	// Clean ideal reference: same weights, same inputs, no scenario.
	refCfg := cfg
	refCfg.Scenario = nil
	refEng, err := funcsim.NewEngine(refCfg, funcsim.Ideal{})
	if err != nil {
		return Result{}, err
	}
	refM, err := refEng.Lower(w)
	if err != nil {
		return Result{}, err
	}
	ref, err := refM.MVM(x)
	if err != nil {
		return Result{}, err
	}

	spec, err := funcsim.ModelByName(c.Model)
	if err != nil {
		return Result{}, err
	}
	// Degraded circuit handling: a fault-ridden cell that defeats even
	// solver recovery still completes with zeroed currents, so one
	// pathological cell cannot wedge the sweep.
	params := funcsim.ModelParams{Xbar: xcfg, Degraded: true}
	if spec.NeedsSurrogate {
		sur, err := r.surrogateFor(xcfg)
		if err != nil {
			return Result{}, err
		}
		params.Surrogate = sur
	}
	model, err := spec.New(params)
	if err != nil {
		return Result{}, err
	}
	eng, err := funcsim.NewEngine(cfg, model)
	if err != nil {
		return Result{}, err
	}
	lm, err := eng.Lower(w)
	if err != nil {
		return Result{}, err
	}
	got, err := lm.MVM(x)
	if err != nil {
		return Result{}, err
	}

	var sumSq, refSq, maxAbs float64
	for i := range got.Data {
		d := got.Data[i] - ref.Data[i]
		sumSq += d * d
		refSq += ref.Data[i] * ref.Data[i]
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	n := float64(len(got.Data))
	rrmse := math.Sqrt(sumSq/n) / (math.Sqrt(refSq/n) + 1e-30)

	rep := lm.NonIdeal()
	return Result{
		ID:    c.ID(),
		Size:  c.Size,
		Stack: c.Stack.Name,
		Model: c.Model,
		Seed:  c.Seed,

		RRMSE:            rrmse,
		MaxAbsErr:        maxAbs,
		DegradedFraction: rep.DegradedFraction(),
		StuckCells:       rep.Stuck,
		TouchedCells:     rep.Touched,
		Crossbars:        lm.Crossbars(),
	}, nil
}

// surrogateFor trains (once per size, memoized) the GENIEx surrogate
// of the cell's design point. The training seed derives from the size
// alone, and dataset generation and Adam are both deterministic, so a
// resumed sweep retrains bit-identical surrogates.
func (r *runner) surrogateFor(xcfg xbar.Config) (*core.Model, error) {
	r.surMu.Lock()
	defer r.surMu.Unlock()
	if m, ok := r.surrogates[xcfg.Rows]; ok {
		return m, nil
	}
	g := r.spec.GENIEx.withDefaults()
	seed := nonideal.DeriveSeed(0x9e11e, uint64(xcfg.Rows))
	ds, err := core.Generate(xcfg, core.GenOptions{
		Samples: g.Samples, StreamBits: 4, SliceBits: 4, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("surrogate dataset: %w", err)
	}
	m, err := core.NewModel(xcfg, g.Hidden, seed+1)
	if err != nil {
		return nil, err
	}
	if err := m.Train(ds, core.TrainOptions{Epochs: g.Epochs, Seed: seed + 2}); err != nil {
		return nil, fmt.Errorf("surrogate training: %w", err)
	}
	if r.surrogates == nil {
		r.surrogates = map[int]*core.Model{}
	}
	r.surrogates[xcfg.Rows] = m
	return m, nil
}

// summarize aggregates results into per-(size, stack, model) groups.
func summarize(name string, results []Result, failed int) Summary {
	byKey := map[string]*GroupStats{}
	var keys []string
	for _, r := range results {
		k := r.GroupKey()
		g, ok := byKey[k]
		if !ok {
			g = &GroupStats{Key: k, Size: r.Size, Stack: r.Stack, Model: r.Model, MinRRMSE: math.Inf(1)}
			byKey[k] = g
			keys = append(keys, k)
		}
		g.Seeds++
		g.MeanRRMSE += r.RRMSE
		g.MinRRMSE = math.Min(g.MinRRMSE, r.RRMSE)
		g.MaxRRMSE = math.Max(g.MaxRRMSE, r.RRMSE)
		g.MeanDegraded += r.DegradedFraction
		g.MeanStuckCells += float64(r.StuckCells)
		g.MeanTouchedCells += float64(r.TouchedCells)
	}
	sort.Strings(keys)
	sum := Summary{Name: name, Cells: len(results), Failed: failed}
	for _, k := range keys {
		g := byKey[k]
		n := float64(g.Seeds)
		g.MeanRRMSE /= n
		g.MeanDegraded /= n
		g.MeanStuckCells /= n
		g.MeanTouchedCells /= n
		sum.Groups = append(sum.Groups, *g)
	}
	return sum
}

// checkSpecFile writes spec.json on a fresh run or verifies the
// resumed spec matches it: resuming a directory under a different grid
// would mix incomparable results.
func checkSpecFile(spec Spec, dir string) error {
	path := filepath.Join(dir, "spec.json")
	want, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		return writeAtomic(path, append(want, '\n'))
	}
	var onDisk Spec
	if err := readJSON(path, &onDisk); err != nil {
		return fmt.Errorf("sweep: unreadable %s: %w", path, err)
	}
	have, err := json.MarshalIndent(onDisk, "", "  ")
	if err != nil {
		return err
	}
	if string(have) != string(want) {
		return fmt.Errorf("sweep: spec does not match %s — resume with the original spec or use a fresh directory", path)
	}
	return nil
}

// writeAtomicJSON marshals v and writes it atomically.
func writeAtomicJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(path, append(b, '\n'))
}

// writeAtomic writes data via a temp file in the target directory plus
// rename, so a checkpoint is either fully present or absent — a crash
// mid-write can never leave a truncated cell file for resume to trust.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readJSON loads one JSON file into v.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
