package nonideal

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"geniex/internal/linalg"
)

// Stack is an ordered list of components. Order is semantic: each
// component sees the conductances the previous ones produced, so
// [StuckAt, ReadNoise] jitters stuck cells off their rail while
// [ReadNoise, StuckAt] pins them exactly — scenarios choose.
type Stack []Component

// Validate checks every component.
func (s Stack) Validate() error {
	for i, c := range s {
		if c == nil {
			return fmt.Errorf("nonideal: stack component %d is nil", i)
		}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("nonideal: stack component %d (%s): %w", i, c.Kind(), err)
		}
	}
	return nil
}

// Label is the human-readable "+"-joined composition name, mirroring
// the joksas labeling convention ("stuck_at+read_noise"); "clean" for
// an empty stack.
func (s Stack) Label() string {
	if len(s) == 0 {
		return "clean"
	}
	out := ""
	for i, c := range s {
		if i > 0 {
			out += "+"
		}
		out += c.Kind()
	}
	return out
}

// Report aggregates what an application (or a whole lowering) did.
type Report struct {
	// Cells counts conductances the stack was applied to.
	Cells int `json:"cells"`
	// Touched counts cell modifications summed over components; a cell
	// perturbed by two components counts twice.
	Touched int `json:"touched"`
	// Stuck counts cells forced to a rail by stuck-at faults — the
	// hard-fault population behind the degraded-tile metrics.
	Stuck int `json:"stuck"`
	// Tiles and DegradedTiles count applications and applications that
	// injected at least one stuck cell. One application = one physical
	// crossbar's conductance matrix.
	Tiles         int `json:"tiles"`
	DegradedTiles int `json:"degraded_tiles"`
	// PerKind counts touched cells per component kind.
	PerKind map[string]int `json:"per_kind,omitempty"`
}

// Merge folds other into r.
func (r *Report) Merge(other Report) {
	r.Cells += other.Cells
	r.Touched += other.Touched
	r.Stuck += other.Stuck
	r.Tiles += other.Tiles
	r.DegradedTiles += other.DegradedTiles
	for k, v := range other.PerKind {
		if r.PerKind == nil {
			r.PerKind = map[string]int{}
		}
		r.PerKind[k] += v
	}
}

// DegradedFraction is the fraction of applications (physical
// crossbars) that carry at least one stuck cell; 0 when nothing was
// applied.
func (r Report) DegradedFraction() float64 {
	if r.Tiles == 0 {
		return 0
	}
	return float64(r.DegradedTiles) / float64(r.Tiles)
}

// String summarizes the report.
func (r Report) String() string {
	keys := make([]string, 0, len(r.PerKind))
	for k := range r.PerKind {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	per := ""
	for _, k := range keys {
		per += fmt.Sprintf(" %s=%d", k, r.PerKind[k])
	}
	return fmt.Sprintf("nonideal: %d/%d tiles degraded, %d stuck cells, %d/%d cells touched%s",
		r.DegradedTiles, r.Tiles, r.Stuck, r.Touched, r.Cells, per)
}

// Apply runs the stack in order on g, in place. Each component draws
// from a private stream derived from (seed, component index, kind) —
// and, for cycle-varying components, the clock reading t — so a
// component's draws depend only on its slot, never on how many values
// earlier components consumed, and replaying the same (stack, seed, t)
// is bit-identical.
func (s Stack) Apply(g *linalg.Dense, env Env, seed uint64, t float64) (Report, error) {
	rep := Report{Cells: g.Rows * g.Cols, Tiles: 1}
	if len(s) == 0 {
		return rep, nil
	}
	if err := env.Validate(); err != nil {
		return rep, err
	}
	for i, c := range s {
		h := DeriveSeed(seed, uint64(i), kindHash(c.Kind()))
		if _, ok := c.(cycleVarying); ok {
			h = mix(h, math.Float64bits(t))
		}
		rng := linalg.NewRNG(h)
		touched, err := c.Apply(g, env, rng, t)
		if err != nil {
			return rep, fmt.Errorf("nonideal: component %d (%s): %w", i, c.Kind(), err)
		}
		rep.Touched += touched
		if rep.PerKind == nil {
			rep.PerKind = map[string]int{}
		}
		rep.PerKind[c.Kind()] += touched
		if c.Kind() == KindStuckAt {
			rep.Stuck += touched
		}
		observeApplied(c.Kind(), touched)
	}
	if rep.Stuck > 0 {
		rep.DegradedTiles = 1
	}
	return rep, nil
}

// Scenario binds a stack to its seed and clock: everything needed to
// perturb a lowering reproducibly. The zero value (empty stack) is the
// clean scenario.
type Scenario struct {
	// Stack is the ordered component composition.
	Stack Stack `json:"stack"`
	// Seed drives every component stream. Sub-seeds are derived per
	// (tile, slice, sign, component), so distinct tiles get independent
	// faults from one scenario seed.
	Seed uint64 `json:"seed"`
	// Time is the fixed clock reading (seconds since programming) used
	// when Clock is nil — the common case for sweeps, which pin aging
	// per grid cell.
	Time float64 `json:"time,omitempty"`
	// Clock, when non-nil, overrides Time with a live reading at each
	// application; it is injectable and never serialized.
	Clock Clock `json:"-"`
}

// Validate checks the scenario's stack.
func (sc *Scenario) Validate() error {
	if sc == nil {
		return nil
	}
	if sc.Time < 0 {
		return fmt.Errorf("nonideal: negative scenario time %g", sc.Time)
	}
	return sc.Stack.Validate()
}

// Now returns the scenario clock reading.
func (sc *Scenario) Now() float64 {
	if sc.Clock != nil {
		return sc.Clock()
	}
	return sc.Time
}

// Enabled reports whether the scenario perturbs anything.
func (sc *Scenario) Enabled() bool { return sc != nil && len(sc.Stack) > 0 }

// ApplyTile perturbs one physical crossbar's conductance matrix in
// place, deriving the tile's sub-seed from its coordinates: tile row,
// tile column, weight-slice index, and sign (0 positive, 1 negative).
// The derivation is position-based — independent of lowering order and
// of worker count.
func (sc *Scenario) ApplyTile(g *linalg.Dense, env Env, tr, tc, slice, sign int) (Report, error) {
	if !sc.Enabled() {
		return Report{Cells: g.Rows * g.Cols, Tiles: 1}, nil
	}
	seed := DeriveSeed(sc.Seed, uint64(tr), uint64(tc), uint64(slice), uint64(sign))
	return sc.Stack.Apply(g, env, seed, sc.Now())
}

// --- JSON envelope ----------------------------------------------------

// componentJSON is the wire shape of one stack entry.
type componentJSON struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Component{}
)

// Register adds a component kind to the JSON registry. The factory
// returns a zero-parameter instance for UnmarshalJSON to fill.
// Re-registering a kind panics: two factories for one wire identifier
// is always a bug.
func Register(kind string, factory func() Component) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("nonideal: kind %q registered twice", kind))
	}
	registry[kind] = factory
}

func init() {
	Register(KindStuckAt, func() Component { return &StuckAt{} })
	Register(KindD2DVariation, func() Component { return &D2DVariation{} })
	Register(KindC2CVariation, func() Component { return &C2CVariation{} })
	Register(KindDrift, func() Component { return &Drift{} })
	Register(KindLineResistance, func() Component { return &LineResistance{} })
	Register(KindReadNoise, func() Component { return &ReadNoise{} })
}

// MarshalJSON encodes the stack as a list of {kind, params} envelopes.
func (s Stack) MarshalJSON() ([]byte, error) {
	out := make([]componentJSON, len(s))
	for i, c := range s {
		if c == nil {
			return nil, fmt.Errorf("nonideal: marshal of nil component %d", i)
		}
		params, err := json.Marshal(c)
		if err != nil {
			return nil, err
		}
		out[i] = componentJSON{Kind: c.Kind(), Params: params}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a list of {kind, params} envelopes through the
// registry. Unknown kinds are an error, not a silent skip: a scenario
// that drops a fault is a different scenario.
func (s *Stack) UnmarshalJSON(b []byte) error {
	var raw []componentJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	out := make(Stack, len(raw))
	for i, e := range raw {
		registryMu.RLock()
		factory, ok := registry[e.Kind]
		registryMu.RUnlock()
		if !ok {
			return fmt.Errorf("nonideal: unknown component kind %q", e.Kind)
		}
		c := factory()
		if len(e.Params) > 0 {
			if err := json.Unmarshal(e.Params, c); err != nil {
				return fmt.Errorf("nonideal: component %d (%s): %w", i, e.Kind, err)
			}
		}
		out[i] = c
	}
	*s = out
	return nil
}
