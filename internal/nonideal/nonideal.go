// Package nonideal is the composable non-ideality scenario library:
// first-class, seedable, JSON-serializable fault components that
// perturb a tile's programmed conductance matrix at lowering time, so
// every fidelity tier (ideal, analytical, GENIEx, circuit) sees the
// same degraded array.
//
// The design follows the `nonidealities: list[Nonideality]` shape of
// the joksas nonideality-aware-training line of work and TxSim's
// fault taxonomy: each physical effect is one small Component with a
// uniform Apply(conductances, env, rng, t) contract, and scenarios
// compose as ordered Stacks. A Stack round-trips through JSON via a
// kind registry and reproduces bit-identically from a seed, which is
// what makes sweep results checkpointable and resumable.
//
// Components never allocate result matrices: they perturb in place,
// clamped to the programming window [Goff, Gon], because downstream
// consumers (xbar.Crossbar.Program, the funcsim lowering) reject
// out-of-window conductances.
package nonideal

import (
	"fmt"
	"hash/fnv"
	"math"

	"geniex/internal/device"
	"geniex/internal/linalg"
)

// Env describes the design point a component perturbs within. It is a
// plain value (no xbar dependency) so the xbar package itself can
// adapt its legacy fault types over this package without an import
// cycle; xbar.EnvFromConfig builds one from an xbar.Config.
type Env struct {
	// Rows and Cols are the crossbar dimensions.
	Rows, Cols int
	// Goff and Gon bound the programmable conductance window
	// (siemens). Components clamp their output into it.
	Goff, Gon float64
	// Rsource, Rsink and Rwire are the parasitic resistances (ohms;
	// Rwire per cell segment) the LineResistance component scales.
	Rsource, Rsink, Rwire float64
	// Vsupply is the word-line drive voltage (volts).
	Vsupply float64
	// RRAM carries the filamentary compact-model parameters the Drift
	// component ages conductances through.
	RRAM device.RRAMParams
}

// Validate reports whether the environment is usable.
func (e Env) Validate() error {
	if e.Rows <= 0 || e.Cols <= 0 {
		return fmt.Errorf("nonideal: dimensions must be positive, got %dx%d", e.Rows, e.Cols)
	}
	if e.Goff <= 0 || e.Gon <= e.Goff {
		return fmt.Errorf("nonideal: conductance window [%g, %g] invalid", e.Goff, e.Gon)
	}
	return nil
}

// clamp forces g into the programming window.
func (e Env) clamp(g float64) float64 {
	if g < e.Goff {
		return e.Goff
	}
	if g > e.Gon {
		return e.Gon
	}
	return g
}

// Component is one composable non-ideality. Implementations must be
// pure given (g, env, rng, t): no hidden state, so the same seed
// reproduces the same perturbation bit-for-bit on any machine and at
// any worker count.
type Component interface {
	// Kind is the stable identifier used by the JSON envelope and the
	// nonideal.applied.* metric names. Lower_snake, unique.
	Kind() string
	// Validate reports whether the parameters are meaningful.
	Validate() error
	// Apply perturbs g in place. rng is the component's private
	// deterministic stream (derived by the Stack; deterministic
	// components may ignore it) and t is the scenario clock reading in
	// seconds since array programming. It returns how many cells it
	// changed.
	Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (touched int, err error)
}

// cycleVarying is implemented by components whose randomness re-draws
// every programming/read cycle: the Stack folds the clock reading into
// their rng seed, so the same scenario applied at two different times
// draws two different streams. Components without it (device-to-device
// variation, stuck-at) are fixed per-device fingerprints: their stream
// depends only on the seed, never on time.
type cycleVarying interface {
	cycleVarying()
}

// Clock supplies the scenario time in seconds since array programming.
// Injectable so tests and sweeps pin aging deterministically while a
// long-running server can wire a real elapsed-time source.
type Clock func() float64

// mix folds v into the running seed h with the SplitMix64 finalizer —
// the same generator family as linalg.RNG, used here purely as a
// deterministic hash so derived streams are independent of application
// order and of each other.
func mix(h, v uint64) uint64 {
	h ^= v
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// kindHash gives a stable 64-bit digest of a component kind.
func kindHash(kind string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(kind))
	return f.Sum64()
}

// DeriveSeed chains mix over the parts, starting from seed. Exported
// so integration layers (funcsim lowering, the sweep engine) derive
// per-tile and per-cell sub-seeds the same way.
func DeriveSeed(seed uint64, parts ...uint64) uint64 {
	h := mix(seed, 0x5ee9c0de)
	for _, p := range parts {
		h = mix(h, p)
	}
	return h
}

// poissonRound converts an expected count into an integer draw:
// floor(x) plus one with probability frac(x), so small rates still
// fire occasionally instead of truncating to zero.
func poissonRound(x float64, rng *linalg.RNG) int {
	if x <= 0 {
		return 0
	}
	n := int(x)
	if rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// lognormal draws exp(sigma·N(0,1)).
func lognormal(rng *linalg.RNG, sigma float64) float64 {
	return math.Exp(sigma * rng.Norm())
}
