package nonideal

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// Stable component kinds. These are wire-format identifiers: changing
// one breaks stored scenarios and checkpointed sweeps.
const (
	KindStuckAt        = "stuck_at"
	KindD2DVariation   = "d2d_variation"
	KindC2CVariation   = "c2c_variation"
	KindDrift          = "drift"
	KindLineResistance = "line_resistance"
	KindReadNoise      = "read_noise"
)

// StuckAt forces cells to the rails: POn to Gon (stuck-ON shorts),
// POff to Goff (stuck-OFF opens) — the hard faults of the paper's
// Table 2 and the defect-mapping literature. Faults are a fixed
// per-device fingerprint: the stream depends only on the seed, so the
// same array keeps the same defects across re-programming cycles.
//
// With Cluster ≤ 1 each cell faults independently. With Cluster = c >
// 1, faults arrive as c×c spatial patches (clamped at the array edge)
// around randomly placed centers — the correlated defect clusters real
// arrays show along damaged lines — with the expected total fault
// fraction preserved.
type StuckAt struct {
	// POn and POff are the per-cell probabilities of sticking at Gon
	// and Goff respectively. POn+POff must stay within [0, 1].
	POn  float64 `json:"p_on,omitempty"`
	POff float64 `json:"p_off,omitempty"`
	// Cluster is the side length of the square fault patches; 0 and 1
	// both mean independent single-cell faults.
	Cluster int `json:"cluster,omitempty"`
}

// Kind implements Component.
func (*StuckAt) Kind() string { return KindStuckAt }

// Validate implements Component.
func (s *StuckAt) Validate() error {
	if s.POn < 0 || s.POff < 0 || s.POn+s.POff > 1 {
		return fmt.Errorf("nonideal: stuck-at probabilities on=%g off=%g invalid", s.POn, s.POff)
	}
	if s.Cluster < 0 {
		return fmt.Errorf("nonideal: stuck-at cluster %d negative", s.Cluster)
	}
	return nil
}

// Apply implements Component.
func (s *StuckAt) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	touched := 0
	set := func(i, j int, v float64) {
		if old := g.At(i, j); old != v {
			g.Set(i, j, v)
			touched++
		}
	}
	if s.Cluster <= 1 {
		for i := 0; i < env.Rows; i++ {
			for j := 0; j < env.Cols; j++ {
				switch u := rng.Float64(); {
				case u < s.POn:
					set(i, j, env.Gon)
				case u < s.POn+s.POff:
					set(i, j, env.Goff)
				}
			}
		}
		return touched, nil
	}
	// Clustered: place enough c×c patches to keep the expected fault
	// fraction at POn/POff. Patches may overlap or clip at the edges,
	// exactly like physical defect clusters.
	cells := float64(env.Rows * env.Cols)
	area := float64(s.Cluster * s.Cluster)
	stamp := func(n int, v float64) {
		for k := 0; k < n; k++ {
			ci, cj := rng.Intn(env.Rows), rng.Intn(env.Cols)
			for di := 0; di < s.Cluster; di++ {
				for dj := 0; dj < s.Cluster; dj++ {
					if i, j := ci+di, cj+dj; i < env.Rows && j < env.Cols {
						set(i, j, v)
					}
				}
			}
		}
	}
	stamp(poissonRound(s.POn*cells/area, rng), env.Gon)
	stamp(poissonRound(s.POff*cells/area, rng), env.Goff)
	return touched, nil
}

// D2DVariation is device-to-device programming variation: every cell
// carries a fixed multiplicative log-normal factor exp(σ·N(0,1)) — the
// per-device fingerprint of an imperfect write-verify loop. Like
// StuckAt it is time-invariant: re-applying at any clock reading
// reproduces the same factors.
type D2DVariation struct {
	// Sigma is the log-normal standard deviation. Zero is the
	// identity.
	Sigma float64 `json:"sigma"`
}

// Kind implements Component.
func (*D2DVariation) Kind() string { return KindD2DVariation }

// Validate implements Component.
func (v *D2DVariation) Validate() error {
	if v.Sigma < 0 {
		return fmt.Errorf("nonideal: negative d2d sigma %g", v.Sigma)
	}
	return nil
}

// Apply implements Component.
func (v *D2DVariation) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	return applyLognormal(g, env, rng, v.Sigma), nil
}

// C2CVariation is cycle-to-cycle programming variation: the same
// log-normal perturbation as D2DVariation, but re-drawn on every
// programming cycle — the Stack folds the scenario clock into its
// stream, so two lowerings of the same scenario at different times see
// different draws while a replay at the same (seed, t) is bit-exact.
type C2CVariation struct {
	// Sigma is the log-normal standard deviation. Zero is the
	// identity.
	Sigma float64 `json:"sigma"`
}

// Kind implements Component.
func (*C2CVariation) Kind() string { return KindC2CVariation }

// Validate implements Component.
func (v *C2CVariation) Validate() error {
	if v.Sigma < 0 {
		return fmt.Errorf("nonideal: negative c2c sigma %g", v.Sigma)
	}
	return nil
}

func (*C2CVariation) cycleVarying() {}

// Apply implements Component.
func (v *C2CVariation) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	return applyLognormal(g, env, rng, v.Sigma), nil
}

func applyLognormal(g *linalg.Dense, env Env, rng *linalg.RNG, sigma float64) int {
	if sigma == 0 {
		return 0
	}
	touched := 0
	for i, old := range g.Data {
		next := env.clamp(old * lognormal(rng, sigma))
		if next != old {
			g.Data[i] = next
			touched++
		}
	}
	return touched
}

// Drift ages conductances with the scenario clock through the
// filamentary device model of package device: retention loss grows the
// filament gap logarithmically in time, Δd(t) = ν·d0·ln(1 + t/τ0),
// which in conductance terms is the familiar power-law decay
// g(t) = Goff + window·(g0 relaxed by (1+t/τ0)^(−ν)). Deterministic —
// no rng — so aging studies replay exactly.
type Drift struct {
	// Nu is the drift exponent ν (0 disables; RRAM retention
	// literature reports ~0.01–0.1 per decade scale).
	Nu float64 `json:"nu"`
	// Tau0 is the reference time τ0 in seconds; zero defaults to 1s.
	Tau0 float64 `json:"tau0,omitempty"`
}

// Kind implements Component.
func (*Drift) Kind() string { return KindDrift }

// Validate implements Component.
func (d *Drift) Validate() error {
	if d.Nu < 0 {
		return fmt.Errorf("nonideal: negative drift exponent %g", d.Nu)
	}
	if d.Tau0 < 0 {
		return fmt.Errorf("nonideal: negative drift tau0 %g", d.Tau0)
	}
	return nil
}

// Apply implements Component.
func (d *Drift) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	if d.Nu == 0 || t <= 0 {
		return 0, nil
	}
	tau := d.Tau0
	if tau == 0 {
		tau = 1
	}
	// Gap growth Δd = ν·d0·ln(1+t/τ0) through the compact model: map
	// conductance → gap, widen, map back. Algebraically equivalent to
	// multiplying by (1+t/τ0)^(−ν), but routed through the device
	// package so the aging law and the I-V law share one source of
	// truth.
	dgap := d.Nu * env.RRAM.D0 * math.Log(1+t/tau)
	touched := 0
	for i, old := range g.Data {
		gap := env.RRAM.GapForConductance(old) + dgap
		next := env.clamp(env.RRAM.ConductanceForGap(gap))
		if next != old {
			g.Data[i] = next
			touched++
		}
	}
	return touched, nil
}

// LineResistance folds first-order IR-drop into the conductances
// themselves: each cell's effective conductance is divided by
// 1 + Scale·g·Rpath, where Rpath is the series wire resistance of the
// cell's worst-case current path (source + word-line segments to the
// column + bit-line segments to the sink + sink). It lets the cheap
// tiers (ideal, GENIEx) carry parasitic-line scaling without a solve;
// circuit-tier scenarios use Scale to model line resistance beyond the
// nominal netlist values (the netlist already carries the nominal
// parasitics). Deterministic — no rng.
type LineResistance struct {
	// Scale multiplies the physical path resistance; 1 is the nominal
	// first-order estimate, 0 is invalid (use an empty stack instead).
	Scale float64 `json:"scale"`
}

// Kind implements Component.
func (*LineResistance) Kind() string { return KindLineResistance }

// Validate implements Component.
func (l *LineResistance) Validate() error {
	if l.Scale <= 0 {
		return fmt.Errorf("nonideal: line-resistance scale %g must be positive", l.Scale)
	}
	return nil
}

// Apply implements Component.
func (l *LineResistance) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	touched := 0
	for i := 0; i < env.Rows; i++ {
		// Word-line segments traversed to column j plus bit-line
		// segments from row i down to the sink.
		base := env.Rsource + env.Rsink + float64(env.Rows-i)*env.Rwire
		for j := 0; j < env.Cols; j++ {
			rpath := l.Scale * (base + float64(j+1)*env.Rwire)
			old := g.At(i, j)
			next := env.clamp(old / (1 + old*rpath))
			if next != old {
				g.Set(i, j, next)
				touched++
			}
		}
	}
	return touched, nil
}

// ReadNoise adds zero-mean Gaussian conductance noise with standard
// deviation Sigma × the programming window — the sensed-conductance
// jitter of thermal and shot noise. Cycle-varying: every application
// (every programming/read cycle of the scenario clock) draws fresh
// noise.
type ReadNoise struct {
	// Sigma is the noise standard deviation as a fraction of the
	// conductance window Gon−Goff. Zero is the identity.
	Sigma float64 `json:"sigma"`
}

// Kind implements Component.
func (*ReadNoise) Kind() string { return KindReadNoise }

// Validate implements Component.
func (n *ReadNoise) Validate() error {
	if n.Sigma < 0 {
		return fmt.Errorf("nonideal: negative read-noise sigma %g", n.Sigma)
	}
	return nil
}

func (*ReadNoise) cycleVarying() {}

// Apply implements Component.
func (n *ReadNoise) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	if n.Sigma == 0 {
		return 0, nil
	}
	std := n.Sigma * (env.Gon - env.Goff)
	touched := 0
	for i, old := range g.Data {
		next := env.clamp(old + rng.NormScaled(0, std))
		if next != old {
			g.Data[i] = next
			touched++
		}
	}
	return touched, nil
}
