package nonideal

import (
	"sync"

	"geniex/internal/obs"
)

// Per-kind applied-cell counters, created lazily because the kind set
// is open (Register accepts custom kinds). Builtin kinds therefore
// appear in snapshots only once a scenario actually touches cells —
// sweeps and the serving ladder read injected-fault pressure from
// nonideal.applied.<kind> plus nonideal.apply.{calls,errors}.
var (
	mApplyCalls = obs.NewCounter("nonideal.apply.calls")

	appliedMu sync.Mutex
	applied   = map[string]*obs.Counter{}
)

func observeApplied(kind string, touched int) {
	if !obs.Enabled() {
		return
	}
	mApplyCalls.Inc()
	appliedMu.Lock()
	c, ok := applied[kind]
	if !ok {
		c = obs.NewCounter("nonideal.applied." + kind)
		applied[kind] = c
	}
	appliedMu.Unlock()
	c.Add(int64(touched))
}
