package nonideal

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"geniex/internal/linalg"
)

// Every builtin component round-trips through the JSON envelope with
// its parameters intact.
func TestJSONRoundTripEveryComponent(t *testing.T) {
	cases := []Component{
		&StuckAt{POn: 0.01, POff: 0.02, Cluster: 3},
		&D2DVariation{Sigma: 0.25},
		&C2CVariation{Sigma: 0.1},
		&Drift{Nu: 0.05, Tau0: 10},
		&LineResistance{Scale: 1.5},
		&ReadNoise{Sigma: 0.02},
	}
	for _, c := range cases {
		in := Stack{c}
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.Kind(), err)
		}
		if !strings.Contains(string(b), `"kind":"`+c.Kind()+`"`) {
			t.Fatalf("%s: envelope missing kind: %s", c.Kind(), b)
		}
		var out Stack
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("%s: unmarshal: %v", c.Kind(), err)
		}
		if len(out) != 1 || !reflect.DeepEqual(out[0], c) {
			t.Fatalf("%s: round trip changed component: %#v -> %#v", c.Kind(), c, out[0])
		}
	}
}

// A decoded stack reproduces the original's perturbation bit-exactly.
func TestJSONRoundTripPreservesPerturbation(t *testing.T) {
	env := testEnv()
	orig := fullStack()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Stack
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	ga, gb := midMatrix(env), midMatrix(env)
	if _, err := orig.Apply(ga, env, 21, 1e5); err != nil {
		t.Fatal(err)
	}
	if _, err := decoded.Apply(gb, env, 21, 1e5); err != nil {
		t.Fatal(err)
	}
	for i := range ga.Data {
		if ga.Data[i] != gb.Data[i] {
			t.Fatalf("decoded stack diverged at cell %d", i)
		}
	}
}

func TestJSONEmptyStackAndScenario(t *testing.T) {
	var s Stack
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stack
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty stack decoded as %d components", len(back))
	}

	sc := &Scenario{Stack: Stack{&ReadNoise{Sigma: 0.1}}, Seed: 9, Time: 50}
	sb, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var sc2 Scenario
	if err := json.Unmarshal(sb, &sc2); err != nil {
		t.Fatal(err)
	}
	if sc2.Seed != 9 || sc2.Time != 50 || len(sc2.Stack) != 1 {
		t.Fatalf("scenario round trip lost fields: %+v", sc2)
	}
}

func TestJSONUnknownKindRejected(t *testing.T) {
	var s Stack
	err := json.Unmarshal([]byte(`[{"kind":"alien_rays"}]`), &s)
	if err == nil || !strings.Contains(err.Error(), "alien_rays") {
		t.Fatalf("unknown kind accepted: %v", err)
	}
}

func TestRegisterCustomKind(t *testing.T) {
	Register("test_zeroizer", func() Component { return &zeroizer{} })
	var s Stack
	if err := json.Unmarshal([]byte(`[{"kind":"test_zeroizer"}]`), &s); err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0].Kind() != "test_zeroizer" {
		t.Fatalf("custom kind not decoded: %#v", s)
	}
}

type zeroizer struct{}

func (*zeroizer) Kind() string    { return "test_zeroizer" }
func (*zeroizer) Validate() error { return nil }
func (*zeroizer) Apply(g *linalg.Dense, env Env, rng *linalg.RNG, t float64) (int, error) {
	for i := range g.Data {
		g.Data[i] = env.Goff
	}
	return len(g.Data), nil
}
