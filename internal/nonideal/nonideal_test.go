package nonideal

import (
	"math"
	"testing"

	"geniex/internal/device"
	"geniex/internal/linalg"
)

func testEnv() Env {
	return Env{
		Rows: 8, Cols: 8,
		Goff: 1.0 / 600e3, Gon: 1.0 / 100e3,
		Rsource: 500, Rsink: 100, Rwire: 2.5,
		Vsupply: 0.25,
		RRAM:    device.DefaultRRAMParams(),
	}
}

// midMatrix fills an Env-sized matrix with mid-window conductances.
func midMatrix(env Env) *linalg.Dense {
	g := linalg.NewDense(env.Rows, env.Cols)
	linalg.Fill(g.Data, 0.5*(env.Goff+env.Gon))
	return g
}

func fullStack() Stack {
	return Stack{
		&StuckAt{POn: 0.05, POff: 0.05},
		&D2DVariation{Sigma: 0.2},
		&C2CVariation{Sigma: 0.05},
		&Drift{Nu: 0.05, Tau0: 1},
		&LineResistance{Scale: 1},
		&ReadNoise{Sigma: 0.01},
	}
}

func TestComponentValidation(t *testing.T) {
	bad := []Component{
		&StuckAt{POn: -0.1},
		&StuckAt{POn: 0.7, POff: 0.7},
		&StuckAt{POn: 0.1, Cluster: -1},
		&D2DVariation{Sigma: -1},
		&C2CVariation{Sigma: -1},
		&Drift{Nu: -0.1},
		&Drift{Nu: 0.1, Tau0: -1},
		&LineResistance{},
		&LineResistance{Scale: -2},
		&ReadNoise{Sigma: -0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad component %d (%s) validated", i, c.Kind())
		}
	}
	if err := fullStack().Validate(); err != nil {
		t.Fatalf("good stack rejected: %v", err)
	}
}

// Same seed → bit-identical perturbed conductances, run after run.
func TestSeedReproducibility(t *testing.T) {
	env := testEnv()
	s := fullStack()
	a, b := midMatrix(env), midMatrix(env)
	repA, err := s.Apply(a, env, 42, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := s.Apply(b, env, 42, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("cell %d differs across replays: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	if repA.Touched != repB.Touched || repA.Stuck != repB.Stuck {
		t.Fatalf("reports differ: %+v vs %+v", repA, repB)
	}
	c := midMatrix(env)
	if _, err := s.Apply(c, env, 43, 1e6); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical perturbations")
	}
}

// Component streams are private: how many draws an earlier component
// consumes cannot shift a later component's stream (unlike a single
// shared RNG). StuckAt at p=0.3 burns far more draws than at p=0, yet
// the D2D factors behind it must be identical.
func TestStreamsArePrivate(t *testing.T) {
	env := testEnv()
	a, b := midMatrix(env), midMatrix(env)
	heavy := Stack{&StuckAt{POn: 0.15, POff: 0.15}, &D2DVariation{Sigma: 0.2}}
	light := Stack{&StuckAt{}, &D2DVariation{Sigma: 0.2}}
	if _, err := heavy.Apply(a, env, 7, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := light.Apply(b, env, 7, 0); err != nil {
		t.Fatal(err)
	}
	// Recover the heavy run's stuck mask by replaying its StuckAt
	// alone (same seed, index and kind → same stream). Cells it left
	// alone saw the same mid-window input in both runs, so identical
	// D2D factors mean identical outputs there.
	mid := 0.5 * (env.Goff + env.Gon)
	mask := midMatrix(env)
	if _, err := (Stack{&StuckAt{POn: 0.15, POff: 0.15}}).Apply(mask, env, 7, 0); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range a.Data {
		if mask.Data[i] != mid {
			continue // stuck in the heavy run
		}
		if a.Data[i] != b.Data[i] {
			t.Fatalf("cell %d: d2d stream shifted by stuck-at draw count: %v vs %v", i, a.Data[i], b.Data[i])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("every cell stuck; test degenerate")
	}
}

// Cycle-varying components re-draw when the clock moves; fingerprint
// components do not.
func TestCycleVsFingerprintTimeDependence(t *testing.T) {
	env := testEnv()
	t0, t1 := midMatrix(env), midMatrix(env)
	fp := Stack{&StuckAt{POn: 0.1, POff: 0.1}, &D2DVariation{Sigma: 0.3}}
	if _, err := fp.Apply(t0, env, 9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Apply(t1, env, 9, 3600); err != nil {
		t.Fatal(err)
	}
	for i := range t0.Data {
		if t0.Data[i] != t1.Data[i] {
			t.Fatal("fingerprint components moved with the clock")
		}
	}
	c0, c1 := midMatrix(env), midMatrix(env)
	cyc := Stack{&C2CVariation{Sigma: 0.3}}
	if _, err := cyc.Apply(c0, env, 9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cyc.Apply(c1, env, 9, 3600); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range c0.Data {
		if c0.Data[i] != c1.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("cycle-varying component ignored the clock")
	}
}

// Every component's output stays inside the programming window.
func TestOutputsStayInWindow(t *testing.T) {
	env := testEnv()
	for _, c := range fullStack() {
		g := midMatrix(env)
		// Extremes at the rails probe the clamps.
		g.Data[0], g.Data[1] = env.Goff, env.Gon
		if _, err := (Stack{c}).Apply(g, env, 3, 1e7); err != nil {
			t.Fatalf("%s: %v", c.Kind(), err)
		}
		for i, v := range g.Data {
			if v < env.Goff || v > env.Gon {
				t.Fatalf("%s: cell %d escaped window: %v", c.Kind(), i, v)
			}
		}
	}
}

func TestStuckAtClustered(t *testing.T) {
	env := Env{Rows: 32, Cols: 32, Goff: 1, Gon: 2, RRAM: device.DefaultRRAMParams()}
	g := linalg.NewDense(32, 32)
	linalg.Fill(g.Data, 1.5)
	c := &StuckAt{POff: 0.1, Cluster: 4}
	rng := linalg.NewRNG(5)
	touched, err := c.Apply(g, env, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if touched == 0 {
		t.Fatal("clustered stuck-at touched nothing")
	}
	// Every faulted cell must have a faulted 4-neighbour (clusters are
	// contiguous patches), except single clipped corners — demand it
	// for the overwhelming majority.
	lonely, faulted := 0, 0
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if g.At(i, j) != 1 {
				continue
			}
			faulted++
			adjacent := false
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				ni, nj := i+d[0], j+d[1]
				if ni >= 0 && ni < 32 && nj >= 0 && nj < 32 && g.At(ni, nj) == 1 {
					adjacent = true
					break
				}
			}
			if !adjacent {
				lonely++
			}
		}
	}
	if faulted == 0 || lonely > faulted/10 {
		t.Fatalf("faults not clustered: %d faulted, %d lonely", faulted, lonely)
	}
}

func TestDriftAgesDownward(t *testing.T) {
	env := testEnv()
	g := midMatrix(env)
	before := g.Clone()
	d := &Drift{Nu: 0.05, Tau0: 1}
	if _, err := (Stack{d}).Apply(g, env, 1, 1e6); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if g.Data[i] > before.Data[i] {
			t.Fatalf("drift raised conductance at %d: %v -> %v", i, before.Data[i], g.Data[i])
		}
		if g.Data[i] == before.Data[i] {
			t.Fatalf("drift left cell %d untouched at t=1e6", i)
		}
	}
	// Longer aging → lower conductance (monotone in t).
	g2 := midMatrix(env)
	if _, err := (Stack{d}).Apply(g2, env, 1, 1e9); err != nil {
		t.Fatal(err)
	}
	if g2.Data[0] >= g.Data[0] {
		t.Fatalf("aging not monotone: g(1e6)=%v g(1e9)=%v", g.Data[0], g2.Data[0])
	}
	// The device-model route must agree with the closed-form power
	// law g·(1+t/τ0)^(−ν) where the clamp is inactive.
	mid := 0.5 * (env.Goff + env.Gon)
	want := mid * math.Pow(1+1e6, -0.05)
	if math.Abs(g.Data[0]-want) > 1e-12*mid {
		t.Fatalf("drift disagrees with power law: got %v want %v", g.Data[0], want)
	}
}

func TestLineResistanceGradient(t *testing.T) {
	env := testEnv()
	g := midMatrix(env)
	if _, err := (Stack{&LineResistance{Scale: 1}}).Apply(g, env, 1, 0); err != nil {
		t.Fatal(err)
	}
	mid := 0.5 * (env.Goff + env.Gon)
	// Every cell attenuates, and the far column sees more wire than
	// the near column on the same row.
	for i := range g.Data {
		if g.Data[i] >= mid {
			t.Fatalf("cell %d not attenuated: %v", i, g.Data[i])
		}
	}
	if !(g.At(0, env.Cols-1) < g.At(0, 0)) {
		t.Fatalf("far column %v not weaker than near column %v", g.At(0, env.Cols-1), g.At(0, 0))
	}
}

func TestScenarioApplyTilePositionKeyed(t *testing.T) {
	env := testEnv()
	sc := &Scenario{Stack: Stack{&D2DVariation{Sigma: 0.3}}, Seed: 77}
	a, b, c := midMatrix(env), midMatrix(env), midMatrix(env)
	if _, err := sc.ApplyTile(a, env, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ApplyTile(b, env, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ApplyTile(c, env, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same tile coordinates diverged")
		}
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct tiles share one fault stream")
	}
}

func TestScenarioClockInjectable(t *testing.T) {
	env := testEnv()
	reading := 100.0
	sc := &Scenario{
		Stack: Stack{&Drift{Nu: 0.1}},
		Clock: func() float64 { return reading },
	}
	a := midMatrix(env)
	if _, err := sc.ApplyTile(a, env, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	reading = 1e8
	b := midMatrix(env)
	if _, err := sc.ApplyTile(b, env, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if a.Data[0] <= b.Data[0] {
		t.Fatalf("injected clock ignored: g(100)=%v g(1e8)=%v", a.Data[0], b.Data[0])
	}
}

func TestReportAggregation(t *testing.T) {
	env := testEnv()
	sc := &Scenario{Stack: Stack{&StuckAt{POff: 0.5}}, Seed: 1}
	var total Report
	for tr := 0; tr < 3; tr++ {
		g := midMatrix(env)
		rep, err := sc.ApplyTile(g, env, tr, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		total.Merge(rep)
	}
	if total.Tiles != 3 || total.Cells != 3*env.Rows*env.Cols {
		t.Fatalf("bad totals: %+v", total)
	}
	if total.Stuck == 0 || total.DegradedTiles != 3 {
		t.Fatalf("stuck-at at p=0.5 left tiles clean: %+v", total)
	}
	if f := total.DegradedFraction(); f != 1 {
		t.Fatalf("degraded fraction %v, want 1", f)
	}
	if total.PerKind[KindStuckAt] != total.Stuck {
		t.Fatalf("per-kind mismatch: %+v", total)
	}
}
