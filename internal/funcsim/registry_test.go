package funcsim

import (
	"strings"
	"testing"
)

// The built-in ladder must resolve by name, in decreasing-rank order,
// with the attributes the serving stack keys decisions on.
func TestModelRegistryBuiltins(t *testing.T) {
	want := []string{"circuit", "fastcircuit", "geniex-adaptive", "geniex", "analytical", "ideal"}
	got := ModelNames()
	if len(got) < len(want) {
		t.Fatalf("ModelNames() = %v, want at least the %d built-ins", got, len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("ModelNames()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
	}
	prev := int(^uint(0) >> 1)
	for _, name := range got {
		spec, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Rank > prev {
			t.Fatalf("ModelNames() not rank-descending at %q (%d after %d)", name, spec.Rank, prev)
		}
		prev = spec.Rank
	}

	for name, wantCircuit := range map[string]bool{"circuit": true, "fastcircuit": true, "geniex": false, "ideal": false} {
		spec, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Circuit != wantCircuit {
			t.Errorf("%q.Circuit = %v, want %v", name, spec.Circuit, wantCircuit)
		}
	}
	for name, wantAdaptive := range map[string]bool{"geniex-adaptive": true, "geniex": false} {
		spec, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !spec.NeedsSurrogate {
			t.Errorf("%q.NeedsSurrogate = false, want true", name)
		}
		if spec.Adaptive != wantAdaptive {
			t.Errorf("%q.Adaptive = %v, want %v", name, spec.Adaptive, wantAdaptive)
		}
	}
}

// Unknown names must fail with a self-documenting error listing the
// registered tiers.
func TestModelByNameUnknown(t *testing.T) {
	_, err := ModelByName("nope")
	if err == nil {
		t.Fatal("ModelByName(nope) did not error")
	}
	for _, name := range []string{"circuit", "geniex", "ideal"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered tier %q", err, name)
		}
	}
}

// Registration is init-time wiring: collisions and malformed specs are
// programming errors and must panic.
func TestRegisterModelPanics(t *testing.T) {
	mustPanic := func(name string, spec ModelSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterModel did not panic", name)
			}
		}()
		RegisterModel(spec)
	}
	mustPanic("empty name", ModelSpec{New: func(ModelParams) (Model, error) { return Ideal{}, nil }})
	mustPanic("nil factory", ModelSpec{Name: "test-nil-factory"})
	mustPanic("duplicate", ModelSpec{Name: "ideal", New: func(ModelParams) (Model, error) { return Ideal{}, nil }})
}

// Surrogate-backed factories must reject a missing or mismatched
// surrogate instead of building a model that fails at MVM time.
func TestModelFactorySurrogateValidation(t *testing.T) {
	cfg := exactConfig(8, 8)
	spec, err := ModelByName("geniex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.New(ModelParams{Xbar: cfg.Xbar}); err == nil {
		t.Fatal("geniex factory accepted a nil surrogate")
	}

	gx := trainTinyGENIEx(t, cfg.Xbar)
	wrong := exactConfig(4, 4)
	if _, err := spec.New(ModelParams{Xbar: wrong.Xbar, Surrogate: gx}); err == nil {
		t.Fatal("geniex factory accepted an 8x8 surrogate for a 4x4 design point")
	}

	model, err := spec.New(ModelParams{Xbar: cfg.Xbar, Surrogate: gx})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := model.(GENIEx); !ok {
		t.Fatalf("geniex factory built %T", model)
	}
}

// Factories must thread circuit-model options through: Degraded and
// Health reach the built model.
func TestModelFactoryCircuitParams(t *testing.T) {
	cfg := exactConfig(8, 8)
	spec, err := ModelByName("circuit")
	if err != nil {
		t.Fatal(err)
	}
	h := &SolverHealth{}
	model, err := spec.New(ModelParams{Xbar: cfg.Xbar, Degraded: true, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := model.(Circuit)
	if !ok {
		t.Fatalf("circuit factory built %T", model)
	}
	if !c.Degraded || c.Health != h {
		t.Fatalf("circuit factory dropped params: %+v", c)
	}
}
