package funcsim

import (
	"geniex/internal/nonideal"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

// Option adjusts a Config under construction by NewConfig.
type Option func(*Config)

// WithFormats sets the fixed-point formats of weights and activations.
func WithFormats(weight, act quant.FxP) Option {
	return func(c *Config) { c.Weight, c.Act = weight, act }
}

// WithStreamBits sets the input-stream digit width.
func WithStreamBits(n int) Option { return func(c *Config) { c.StreamBits = n } }

// WithSliceBits sets the weight-slice digit width.
func WithSliceBits(n int) Option { return func(c *Config) { c.SliceBits = n } }

// WithADCBits sets the converter resolution at each bit line.
func WithADCBits(n int) Option { return func(c *Config) { c.ADCBits = n } }

// WithAcc sets the saturating output accumulator format.
func WithAcc(acc quant.Acc) Option { return func(c *Config) { c.Acc = acc } }

// WithWorkers bounds how many tile tasks of one MVM run concurrently
// (0 = shared pool at full width, 1 = serial; see Config.Workers).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithProbeRate enables the online fidelity probe at a 1-in-n tile
// sampling rate (0 disables; see Config.ProbeRate and Probe).
func WithProbeRate(n int) Option { return func(c *Config) { c.ProbeRate = n } }

// WithScenario perturbs every lowered tile with the given non-ideality
// scenario (nil disables; see Config.Scenario).
func WithScenario(sc *nonideal.Scenario) Option { return func(c *Config) { c.Scenario = sc } }

// WithSwappable enables model hot-swap on the engine: lowered matrices
// retain their programmed conductances so Engine.SwapModel can rebuild
// and atomically publish a new analog model under live traffic (see
// Config.Swappable).
func WithSwappable() Option { return func(c *Config) { c.Swappable = true } }

// NewConfig builds a validated architecture: the paper's nominal
// parameters (DefaultConfig) on the given crossbar design point,
// adjusted by the options, checked once by Validate — including the
// crossbar's own validation. Construction sites should prefer it over
// mutating struct literals, so inconsistent digit widths and formats
// surface here instead of deep inside a lowering or MVM.
func NewConfig(x xbar.Config, opts ...Option) (Config, error) {
	c := DefaultConfig()
	c.Xbar = x
	for _, o := range opts {
		o(&c)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
