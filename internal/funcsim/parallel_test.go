package funcsim

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/obs"
	"geniex/internal/xbar"
)

// testWeights returns a deterministic multi-tile weight matrix with
// mixed signs and a deterministic input batch.
func testWorkload(seed uint64, in, out, batch int) (w, x *linalg.Dense) {
	r := linalg.NewRNG(seed)
	w = linalg.NewDense(in, out)
	for i := range w.Data {
		w.Data[i] = 2*r.Float64() - 1
	}
	x = linalg.NewDense(batch, in)
	for i := range x.Data {
		x.Data[i] = 2*r.Float64() - 1
	}
	return w, x
}

// mvmAt lowers w under the given model and executes one MVM at an
// explicit GOMAXPROCS and Config.Workers setting.
func mvmAt(t *testing.T, cfg Config, model Model, w, x *linalg.Dense, procs, workers int) (*linalg.Dense, Stats) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	cfg.Workers = workers
	eng, err := NewEngine(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	y, err := mat.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	return y, mat.Stats()
}

// checkDeterministic asserts the MVM result is bit-identical between a
// fully serial execution (Workers=1 at GOMAXPROCS=1) and parallel
// executions at full width and at a bounded in-flight count, and that
// the hardware-event counters agree exactly.
func checkDeterministic(t *testing.T, cfg Config, model Model, w, x *linalg.Dense) {
	t.Helper()
	serial, serialStats := mvmAt(t, cfg, model, w, x, 1, 1)
	n := runtime.NumCPU()
	for _, workers := range []int{0, 2} {
		par, parStats := mvmAt(t, cfg, model, w, x, n, workers)
		for i := range serial.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: output[%d] = %v, serial = %v — parallel merge is not bit-identical",
					workers, i, par.Data[i], serial.Data[i])
			}
		}
		if parStats != serialStats {
			t.Errorf("workers=%d: stats %+v != serial %+v", workers, parStats, serialStats)
		}
	}
}

// The parallel pipeline must be bit-identical to serial execution for
// every deterministic analog model (the saturating accumulator is not
// associative, so this holds only because the merge order is fixed).
func TestMVMDeterministicAcrossWorkersIdeal(t *testing.T) {
	cfg := exactConfig(8, 8)
	w, x := testWorkload(61, 20, 12, 5) // 3×2 tile grid
	checkDeterministic(t, cfg, Ideal{}, w, x)
}

func TestMVMDeterministicAcrossWorkersAnalytical(t *testing.T) {
	cfg := exactConfig(8, 8)
	w, x := testWorkload(62, 20, 12, 5)
	checkDeterministic(t, cfg, Analytical{Cfg: cfg.Xbar}, w, x)
}

func TestMVMDeterministicAcrossWorkersGENIEx(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar = harshXbar()
	gx := trainTinyGENIEx(t, cfg.Xbar)
	w, x := testWorkload(63, 20, 12, 4)
	checkDeterministic(t, cfg, GENIEx{Model: gx}, w, x)
}

func TestMVMDeterministicAcrossWorkersCircuit(t *testing.T) {
	if raceDetectorEnabled && testing.Short() {
		t.Skip("circuit solves under -race -short")
	}
	cfg := exactConfig(8, 8)
	// Tile tasks carry the parallelism; keep each batch solve serial.
	cfg.Xbar.BatchWorkers = 1
	w, x := testWorkload(64, 12, 10, 3) // 2×2 tile grid
	checkDeterministic(t, cfg, Circuit{Cfg: cfg.Xbar}, w, x)
}

// Intra-batch concurrency inside a circuit tile solve must be
// bit-identical at every BatchWorkers setting — serial, bounded, and
// all-cores — including nested under the tile-task fan-out. Each batch
// item is solved independently and merged by index, so the fan-out
// width can only change scheduling, never results. This is the
// invariant that lets funcsim-run's -batch-workers heuristic pick any
// value on correctness-neutral grounds (cost is the only criterion).
func TestMVMCircuitBatchWorkersBitIdentical(t *testing.T) {
	if raceDetectorEnabled && testing.Short() {
		t.Skip("circuit solves under -race -short")
	}
	cfg := exactConfig(8, 8)
	w, x := testWorkload(64, 12, 10, 3) // 2×2 tile grid
	cfg.Xbar.BatchWorkers = 1
	ref, refStats := mvmAt(t, cfg, Circuit{Cfg: cfg.Xbar}, w, x, 1, 1)
	for _, bw := range []int{0, 2} {
		for _, workers := range []int{1, 0} {
			cfg.Xbar.BatchWorkers = bw
			got, gotStats := mvmAt(t, cfg, Circuit{Cfg: cfg.Xbar}, w, x, runtime.NumCPU(), workers)
			for i := range ref.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("batch-workers=%d tile-workers=%d: output[%d] = %v, serial = %v — batch fan-out is not bit-identical",
						bw, workers, i, got.Data[i], ref.Data[i])
				}
			}
			if gotStats != refStats {
				t.Errorf("batch-workers=%d tile-workers=%d: stats %+v != serial %+v", bw, workers, gotStats, refStats)
			}
		}
	}
}

// The fastcircuit tier (warm-started pooled solves) must agree with
// the full circuit model to solver tolerance, and — with serial batch
// solves, where each tile's calls stay on its own task in a fixed
// order — remain bit-identical across tile worker counts.
func TestFastCircuitMatchesCircuit(t *testing.T) {
	if raceDetectorEnabled && testing.Short() {
		t.Skip("circuit solves under -race -short")
	}
	cfg := exactConfig(8, 8)
	cfg.Xbar.BatchWorkers = 1
	w, x := testWorkload(66, 12, 10, 3)
	ref, _ := mvmAt(t, cfg, Circuit{Cfg: cfg.Xbar}, w, x, 1, 1)
	fast, _ := mvmAt(t, cfg, FastCircuit{Cfg: cfg.Xbar}, w, x, 1, 1)
	for i := range ref.Data {
		if d := math.Abs(fast.Data[i] - ref.Data[i]); d > 1e-6*(math.Abs(ref.Data[i])+1) {
			t.Errorf("output[%d]: fastcircuit %v vs circuit %v (diff %v)", i, fast.Data[i], ref.Data[i], d)
		}
	}
	checkDeterministic(t, cfg, FastCircuit{Cfg: cfg.Xbar}, w, x)
}

// Degraded circuit mode (failed batch items zeroed instead of failing
// the MVM) must also be schedule-independent.
func TestMVMDeterministicDegradedCircuit(t *testing.T) {
	if raceDetectorEnabled && testing.Short() {
		t.Skip("circuit solves under -race -short")
	}
	cfg := exactConfig(8, 8)
	cfg.Xbar.BatchWorkers = 1
	cfg.Xbar = cfg.Xbar.WithFaults(&xbar.FaultPlan{FailAttempts: 3, Items: []int{1}})
	w, x := testWorkload(65, 12, 10, 3)
	health := &SolverHealth{}
	checkDeterministic(t, cfg, Circuit{Cfg: cfg.Xbar, Degraded: true, Health: health}, w, x)
	if c := health.Counts(); c.Failed == 0 {
		t.Errorf("fault plan injected no failures: %v", c)
	}
}

// Concurrent MVMs on one Matrix must be race-free (run under -race)
// and the atomic counters must add up exactly: each identical call
// contributes the same per-call stats, folded once per MVM.
func TestConcurrentMVMStats(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(66, 20, 12, 4)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mat.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	perCall := mat.Stats()
	mat.ResetStats()

	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				y, err := mat.MVM(x)
				if err != nil {
					errs <- err
					return
				}
				for j := range ref.Data {
					if y.Data[j] != ref.Data[j] {
						t.Errorf("concurrent MVM diverged at %d", j)
						return
					}
				}
				_ = mat.Stats() // concurrent snapshot reads must be safe
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got := mat.Stats()
	want := Stats{}
	for i := 0; i < goroutines*perG; i++ {
		want.Add(perCall)
	}
	if got != want {
		t.Errorf("stats after %d concurrent MVMs = %+v, want %+v", goroutines*perG, got, want)
	}
}

// The GENIEx fast path (per-block VContext + pooled workspaces) must
// reproduce the plain per-tile Currents path bit for bit.
func TestGENIExSharedVContextMatchesDirect(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar = harshXbar()
	gx := trainTinyGENIEx(t, cfg.Xbar)
	g := linalg.NewDense(8, 8)
	r := linalg.NewRNG(67)
	for i := range g.Data {
		g.Data[i] = cfg.Xbar.Goff() + r.Float64()*(cfg.Xbar.Gon()-cfg.Xbar.Goff())
	}
	tile, err := GENIEx{Model: gx}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDense(6, 8)
	for i := range v.Data {
		v.Data[i] = cfg.Xbar.Vsupply * r.Float64()
	}
	direct, err := tile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	st := tile.(surrogateTile)
	fast := linalg.NewDense(6, 8)
	if err := st.currentsVC(fast, v, gx.NewVContext(v)); err != nil {
		t.Fatal(err)
	}
	for i := range direct.Data {
		if fast.Data[i] != direct.Data[i] {
			t.Fatalf("fast path output[%d] = %v, direct = %v", i, fast.Data[i], direct.Data[i])
		}
	}
}

// Steady-state ideal-model MVMInto must allocate nothing once the
// matrix's run pool is warm — in serial mode and through the worker
// pool, with metrics enabled and disabled (the obs instrumentation's
// cost contract: no metric op allocates in either state).
func TestIdealMVMIntoSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates")
	}
	for _, enabled := range []bool{true, false} {
		prev := obs.SetEnabled(enabled)
		for _, workers := range []int{1, 0} {
			cfg := exactConfig(8, 8)
			cfg.Workers = workers
			eng, err := NewEngine(cfg, Ideal{})
			if err != nil {
				t.Fatal(err)
			}
			w, x := testWorkload(68, 20, 12, 4)
			mat, err := eng.Lower(w)
			if err != nil {
				t.Fatal(err)
			}
			dst := linalg.NewDense(x.Rows, mat.Out())
			for i := 0; i < 5; i++ { // warm the run pool and the worker pool
				if err := mat.MVMInto(dst, x); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if err := mat.MVMInto(dst, x); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("obs=%v workers=%d: steady-state MVMInto allocates %.1f objects per call, want 0",
					enabled, workers, allocs)
			}
		}
		obs.SetEnabled(prev)
	}
}
