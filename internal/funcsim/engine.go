package funcsim

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

// Config gathers the architecture parameters of the functional
// simulator (Table 3 of the paper).
type Config struct {
	// Xbar is the crossbar design point; its Rows×Cols is the tile
	// size.
	Xbar xbar.Config
	// Weight and Act are the fixed-point formats of weights and
	// activations.
	Weight, Act quant.FxP
	// StreamBits and SliceBits are the input-stream and weight-slice
	// digit widths.
	StreamBits, SliceBits int
	// ADCBits sets the converter resolution at each bit line.
	ADCBits int
	// Acc is the saturating output accumulator.
	Acc quant.Acc
}

// DefaultConfig returns the paper's nominal architecture: 16-bit
// (13 fractional) weights and activations, 4-bit streams and slices,
// 14-bit ADC, 32-bit accumulator with 24 fractional bits.
func DefaultConfig() Config {
	return Config{
		Xbar:       xbar.DefaultConfig(),
		Weight:     quant.FxP{Bits: 16, Frac: 13},
		Act:        quant.FxP{Bits: 16, Frac: 13},
		StreamBits: 4,
		SliceBits:  4,
		ADCBits:    14,
		Acc:        quant.Acc{Bits: 32, Frac: 24},
	}
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if err := c.Xbar.Validate(); err != nil {
		return err
	}
	if err := c.Weight.Validate(); err != nil {
		return err
	}
	if err := c.Act.Validate(); err != nil {
		return err
	}
	if c.StreamBits < 1 || c.StreamBits > c.Act.Bits {
		return fmt.Errorf("funcsim: stream width %d invalid for %d-bit activations", c.StreamBits, c.Act.Bits)
	}
	if c.SliceBits < 1 || c.SliceBits > c.Weight.Bits {
		return fmt.Errorf("funcsim: slice width %d invalid for %d-bit weights", c.SliceBits, c.Weight.Bits)
	}
	if c.ADCBits < 1 || c.ADCBits > 40 {
		return fmt.Errorf("funcsim: ADC bits %d out of range", c.ADCBits)
	}
	if c.Acc.Bits < 2 || c.Acc.Bits > 62 || c.Acc.Frac < 0 || c.Acc.Frac >= c.Acc.Bits {
		return fmt.Errorf("funcsim: accumulator %d.%d invalid", c.Acc.Bits, c.Acc.Frac)
	}
	return nil
}

// streamDigits returns how many input streams cover one activation
// magnitude (Bits−1 bits: the engine quantizes symmetrically and keeps
// the sign in the differential pass structure).
func (c Config) streamDigits() int { return quant.NumDigits(c.Act.Bits-1, c.StreamBits) }

// sliceDigits returns how many weight slices cover one weight
// magnitude.
func (c Config) sliceDigits() int { return quant.NumDigits(c.Weight.Bits-1, c.SliceBits) }

// Engine lowers real-valued weight matrices onto crossbar tiles and
// executes MVMs through a pluggable analog model.
//
// Signed arithmetic uses differential sign-magnitude encoding, the
// scheme real crossbar accelerators use: each weight block maps to a
// positive and (when needed) a negative crossbar holding the
// magnitudes of the corresponding weights, and the digital periphery
// subtracts the two column outputs. Inputs are likewise split into
// positive and negative magnitude passes. This preserves the high
// sparsity of bit-sliced DNN tensors (zero weight → Goff, zero
// activation → 0 V), which the paper's dataset generation explicitly
// models, and it keeps analog error proportional to the actual signal
// instead of a full-scale offset.
type Engine struct {
	cfg   Config
	model Model
}

// NewEngine creates an engine. The model's tile size must match
// cfg.Xbar.
func NewEngine(cfg Config, model Model) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, model: model}, nil
}

// Config returns the engine's architecture parameters.
func (e *Engine) Config() Config { return e.cfg }

// ModelName reports which analog model the engine uses.
func (e *Engine) ModelName() string { return e.model.Name() }

// loweredTile is one (tileRow, tileCol) block: the positive-magnitude
// crossbars (one per weight slice) and, if the block has any negative
// weights, the negative-magnitude crossbars.
type loweredTile struct {
	pos []Tile
	neg []Tile // nil when the block is all-non-negative
}

// Matrix is a weight matrix lowered onto crossbar tiles, ready to
// execute MVMs.
type Matrix struct {
	eng       *Engine
	in, out   int
	tileRows  int
	tileCols  int
	tiles     [][]loweredTile // [tileRow][tileCol]
	crossbars int
	stats     Stats
}

// Lower maps a real-valued in×out weight matrix onto crossbar tiles:
// symmetric quantization → sign-magnitude split → slice digits →
// conductances.
func (e *Engine) Lower(w *linalg.Dense) (*Matrix, error) {
	cfg := e.cfg
	n, mcols := cfg.Xbar.Rows, cfg.Xbar.Cols
	in, out := w.Rows, w.Cols
	kw := cfg.sliceDigits()
	wmax := float64(int64(1)<<cfg.SliceBits) - 1

	lm := &Matrix{
		eng: e, in: in, out: out,
		tileRows: (in + n - 1) / n,
		tileCols: (out + mcols - 1) / mcols,
	}
	lm.tiles = make([][]loweredTile, lm.tileRows)
	for tr := range lm.tiles {
		lm.tiles[tr] = make([]loweredTile, lm.tileCols)
		for tc := range lm.tiles[tr] {
			lt := &lm.tiles[tr][tc]
			posG := make([]*linalg.Dense, kw)
			negG := make([]*linalg.Dense, kw)
			for l := 0; l < kw; l++ {
				posG[l] = linalg.NewDense(n, mcols)
				negG[l] = linalg.NewDense(n, mcols)
				linalg.Fill(posG[l].Data, cfg.Xbar.Goff())
				linalg.Fill(negG[l].Data, cfg.Xbar.Goff())
			}
			hasNeg := false
			for i := 0; i < n; i++ {
				for j := 0; j < mcols; j++ {
					gi, gj := tr*n+i, tc*mcols+j
					var q int64 // padding encodes weight 0
					if gi < in && gj < out {
						q = cfg.Weight.QuantizeSymmetric(w.At(gi, gj))
					}
					mag := uint64(q)
					dst := posG
					if q < 0 {
						mag = uint64(-q)
						dst = negG
						hasNeg = true
					}
					for l, d := range quant.Digits(mag, cfg.SliceBits, kw) {
						dst[l].Set(i, j, cfg.Xbar.Goff()+float64(d)/wmax*(cfg.Xbar.Gon()-cfg.Xbar.Goff()))
					}
				}
			}
			var err error
			if lt.pos, err = e.buildTiles(posG); err != nil {
				return nil, fmt.Errorf("funcsim: lowering tile (%d,%d): %w", tr, tc, err)
			}
			lm.crossbars += kw
			if hasNeg {
				if lt.neg, err = e.buildTiles(negG); err != nil {
					return nil, fmt.Errorf("funcsim: lowering tile (%d,%d) neg: %w", tr, tc, err)
				}
				lm.crossbars += kw
			}
		}
	}
	return lm, nil
}

func (e *Engine) buildTiles(gs []*linalg.Dense) ([]Tile, error) {
	tiles := make([]Tile, len(gs))
	for l, g := range gs {
		t, err := e.model.NewTile(g)
		if err != nil {
			return nil, fmt.Errorf("slice %d: %w", l, err)
		}
		tiles[l] = t
	}
	return tiles, nil
}

// In returns the logical input dimension of the lowered matrix.
func (m *Matrix) In() int { return m.in }

// Out returns the logical output dimension.
func (m *Matrix) Out() int { return m.out }

// Tiles returns the (tileRows, tileCols, slices-per-sign) counts.
func (m *Matrix) Tiles() (tr, tc, slices int) {
	return m.tileRows, m.tileCols, m.eng.cfg.sliceDigits()
}

// Crossbars returns the number of physical crossbars the matrix
// occupies (positive + negative, all slices).
func (m *Matrix) Crossbars() int { return m.crossbars }

// inputBlock holds the digit-serial form of one tile row's activation
// block for a whole batch and one sign.
type inputBlock struct {
	vb       *linalg.Dense // batch·ka × n stream voltages
	digitSum []int64       // per (b, k): Σ_i digit
	any      bool          // any non-zero digit at all
}

// MVM executes y = x·W through the crossbar pipeline for a batch of
// real-valued inputs (batch×in). The result is batch×out in real
// units (already dequantized from the accumulator).
func (m *Matrix) MVM(x *linalg.Dense) (*linalg.Dense, error) {
	if x.Cols != m.in {
		return nil, fmt.Errorf("funcsim: MVM input has %d features, matrix expects %d", x.Cols, m.in)
	}
	cfg := m.eng.cfg
	n, mcols := cfg.Xbar.Rows, cfg.Xbar.Cols
	batch := x.Rows
	ka := cfg.streamDigits()
	amax := float64(int64(1)<<cfg.StreamBits) - 1
	wmax := float64(int64(1)<<cfg.SliceBits) - 1
	prodFrac := cfg.Act.Frac + cfg.Weight.Frac

	adc := quant.ADC{
		Bits:      cfg.ADCBits,
		FullScale: float64(n) * cfg.Xbar.Vsupply * cfg.Xbar.Gon(),
	}
	// Digital back-conversion constants: the ideal column current is
	//   I = (Vmax·ΔG)/(amax·wmax) · Σ dA·dW  +  Vmax·Goff/amax · Σ dA,
	// so p = I·scale − kg·Σ dA recovers the integer digit dot product.
	scale := amax * wmax / (cfg.Xbar.Vsupply * (cfg.Xbar.Gon() - cfg.Xbar.Goff()))
	kg := cfg.Xbar.Goff() * wmax / (cfg.Xbar.Gon() - cfg.Xbar.Goff())

	accOut := make([]int64, batch*m.out)
	m.stats.MVMRows += int64(batch)

	for tr := 0; tr < m.tileRows; tr++ {
		blocks, err := m.quantizeBlock(x, tr)
		if err != nil {
			return nil, err
		}
		for tc := 0; tc < m.tileCols; tc++ {
			lt := &m.tiles[tr][tc]
			// signedDot accumulates the shift-and-add merged digit
			// partial products with differential signs.
			signedDot := make([]int64, batch*mcols)
			runPass := func(tiles []Tile, blk *inputBlock, sign int64) error {
				if tiles == nil || !blk.any {
					m.stats.SkippedPasses++
					return nil
				}
				for l, tile := range tiles {
					curr, err := tile.Currents(blk.vb)
					if err != nil {
						return fmt.Errorf("funcsim: tile (%d,%d) slice %d: %w", tr, tc, l, err)
					}
					for b := 0; b < batch; b++ {
						for k := 0; k < ka; k++ {
							if blk.digitSum[b*ka+k] == 0 {
								continue // all-zero stream: nothing to add
							}
							m.stats.CrossbarOps++
							m.stats.ADCConversions += int64(mcols)
							m.stats.ShiftAdds += int64(mcols)
							crow := curr.Row(b*ka + k)
							shift := uint(k*cfg.StreamBits + l*cfg.SliceBits)
							off := kg * float64(blk.digitSum[b*ka+k])
							for j := 0; j < mcols; j++ {
								p := int64(math.Round(adc.Convert(crow[j])*scale - off))
								signedDot[b*mcols+j] += sign * (p << shift)
							}
						}
					}
				}
				return nil
			}
			if err := runPass(lt.pos, &blocks[0], 1); err != nil {
				return nil, err
			}
			if err := runPass(lt.neg, &blocks[0], -1); err != nil {
				return nil, err
			}
			if err := runPass(lt.pos, &blocks[1], -1); err != nil {
				return nil, err
			}
			if err := runPass(lt.neg, &blocks[1], 1); err != nil {
				return nil, err
			}
			for b := 0; b < batch; b++ {
				for j := 0; j < mcols; j++ {
					gj := tc*mcols + j
					if gj >= m.out {
						continue
					}
					part := cfg.Acc.Rescale(signedDot[b*mcols+j], prodFrac)
					idx := b*m.out + gj
					accOut[idx] = cfg.Acc.Add(accOut[idx], part)
					m.stats.AccOps++
				}
			}
		}
	}

	out := linalg.NewDense(batch, m.out)
	for i, v := range accOut {
		out.Data[i] = cfg.Acc.Dequantize(v)
	}
	return out, nil
}

// quantizeBlock converts one tile row's activation block into the
// positive and negative digit-serial input blocks.
func (m *Matrix) quantizeBlock(x *linalg.Dense, tr int) ([2]inputBlock, error) {
	cfg := m.eng.cfg
	n := cfg.Xbar.Rows
	batch := x.Rows
	ka := cfg.streamDigits()
	amax := float64(int64(1)<<cfg.StreamBits) - 1

	var blocks [2]inputBlock
	for s := range blocks {
		blocks[s].vb = linalg.NewDense(batch*ka, n)
		blocks[s].digitSum = make([]int64, batch*ka)
	}
	for b := 0; b < batch; b++ {
		row := x.Row(b)
		for i := 0; i < n; i++ {
			var q int64 // padding encodes activation 0
			if gi := tr*n + i; gi < m.in {
				q = cfg.Act.QuantizeSymmetric(row[gi])
			}
			if q == 0 {
				continue
			}
			s := 0
			mag := uint64(q)
			if q < 0 {
				s = 1
				mag = uint64(-q)
			}
			blk := &blocks[s]
			blk.any = true
			for k, d := range quant.Digits(mag, cfg.StreamBits, ka) {
				if d == 0 {
					continue
				}
				blk.vb.Set(b*ka+k, i, float64(d)/amax*cfg.Xbar.Vsupply)
				blk.digitSum[b*ka+k] += int64(d)
			}
		}
	}
	return blocks, nil
}
