package funcsim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/nonideal"
	"geniex/internal/obs"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

// Config gathers the architecture parameters of the functional
// simulator (Table 3 of the paper).
type Config struct {
	// Xbar is the crossbar design point; its Rows×Cols is the tile
	// size.
	Xbar xbar.Config
	// Weight and Act are the fixed-point formats of weights and
	// activations.
	Weight, Act quant.FxP
	// StreamBits and SliceBits are the input-stream and weight-slice
	// digit widths.
	StreamBits, SliceBits int
	// ADCBits sets the converter resolution at each bit line.
	ADCBits int
	// Acc is the saturating output accumulator.
	Acc quant.Acc
	// Workers bounds how many (tileRow, tileCol) tile tasks of one MVM
	// execute concurrently. 0 (the default) uses the shared worker pool
	// at full width (GOMAXPROCS); 1 runs the whole MVM serially on the
	// calling goroutine with no goroutines at all; n ≥ 2 keeps at most
	// n tasks in flight. The merge into the saturating accumulator is
	// always serial and in fixed tile order, so MVM results are
	// bit-identical at every setting.
	Workers int
	// ProbeRate enables the online fidelity probe: every ProbeRate-th
	// tile task samples its inputs and shadow-solves them through the
	// circuit solver on a background goroutine (see Probe). 0 (the
	// default) disables probing entirely — the hot path then pays one
	// nil check per tile task and keeps no conductance copies.
	ProbeRate int
	// Scenario, when non-nil and non-empty, perturbs every lowered
	// tile's conductances with its non-ideality stack (stuck-at faults,
	// programming variation, drift, ...). The perturbation happens once
	// at Lower time, on the per-slice conductance matrices every analog
	// model is built from, so all fidelity tiers — ideal, analytical,
	// GENIEx, circuit — and the fidelity probe see the same faulted
	// array. Sub-seeds are position-keyed per (tile, slice, sign), so a
	// lowering is bit-reproducible from Scenario.Seed at any worker
	// count.
	Scenario *nonideal.Scenario
	// Swappable enables Engine.SwapModel: lowered matrices retain their
	// programmed conductances (same retention the probe needs) so a new
	// analog model can be rebuilt over the identical faulted array and
	// hot-swapped under live MVM traffic. Off by default — retention
	// costs one conductance copy per physical crossbar.
	Swappable bool
}

// DefaultConfig returns the paper's nominal architecture: 16-bit
// (13 fractional) weights and activations, 4-bit streams and slices,
// 14-bit ADC, 32-bit accumulator with 24 fractional bits.
func DefaultConfig() Config {
	return Config{
		Xbar:       xbar.DefaultConfig(),
		Weight:     quant.FxP{Bits: 16, Frac: 13},
		Act:        quant.FxP{Bits: 16, Frac: 13},
		StreamBits: 4,
		SliceBits:  4,
		ADCBits:    14,
		Acc:        quant.Acc{Bits: 32, Frac: 24},
	}
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if err := c.Xbar.Validate(); err != nil {
		return err
	}
	if err := c.Weight.Validate(); err != nil {
		return err
	}
	if err := c.Act.Validate(); err != nil {
		return err
	}
	if c.StreamBits < 1 || c.StreamBits > c.Act.Bits {
		return fmt.Errorf("funcsim: stream width %d invalid for %d-bit activations", c.StreamBits, c.Act.Bits)
	}
	if c.SliceBits < 1 || c.SliceBits > c.Weight.Bits {
		return fmt.Errorf("funcsim: slice width %d invalid for %d-bit weights", c.SliceBits, c.Weight.Bits)
	}
	if c.ADCBits < 1 || c.ADCBits > 40 {
		return fmt.Errorf("funcsim: ADC bits %d out of range", c.ADCBits)
	}
	if c.Acc.Bits < 2 || c.Acc.Bits > 62 || c.Acc.Frac < 0 || c.Acc.Frac >= c.Acc.Bits {
		return fmt.Errorf("funcsim: accumulator %d.%d invalid", c.Acc.Bits, c.Acc.Frac)
	}
	if c.Workers < 0 {
		return fmt.Errorf("funcsim: Workers must be non-negative, got %d", c.Workers)
	}
	if c.ProbeRate < 0 {
		return fmt.Errorf("funcsim: ProbeRate must be non-negative, got %d", c.ProbeRate)
	}
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	return nil
}

// streamDigits returns how many input streams cover one activation
// magnitude (Bits−1 bits: the engine quantizes symmetrically and keeps
// the sign in the differential pass structure).
func (c Config) streamDigits() int { return quant.NumDigits(c.Act.Bits-1, c.StreamBits) }

// sliceDigits returns how many weight slices cover one weight
// magnitude.
func (c Config) sliceDigits() int { return quant.NumDigits(c.Weight.Bits-1, c.SliceBits) }

// Engine lowers real-valued weight matrices onto crossbar tiles and
// executes MVMs through a pluggable analog model.
//
// Signed arithmetic uses differential sign-magnitude encoding, the
// scheme real crossbar accelerators use: each weight block maps to a
// positive and (when needed) a negative crossbar holding the
// magnitudes of the corresponding weights, and the digital periphery
// subtracts the two column outputs. Inputs are likewise split into
// positive and negative magnitude passes. This preserves the high
// sparsity of bit-sliced DNN tensors (zero weight → Goff, zero
// activation → 0 V), which the paper's dataset generation explicitly
// models, and it keeps analog error proportional to the actual signal
// instead of a full-scale offset.
type Engine struct {
	cfg    Config
	retain bool // keep lowered conductances (probe and/or swap support)

	// probe is the online fidelity monitor, nil unless
	// Config.ProbeRate > 0.
	probe *Probe

	// mu guards the live-model identity and the lowered-matrix list.
	// The model and its surrogate are deliberately unexported and only
	// reachable through accessors: under Config.Swappable a background
	// calibrator may replace them at any moment, so direct struct reads
	// would race. version counts published models; the model the engine
	// was constructed with is version 1, and every successful SwapModel
	// increments it. matrixIDs numbers lowered matrices so the probe's
	// per-tile aggregates stay distinct across matrices.
	mu        sync.Mutex
	model     Model
	sur       *core.Model // GENIEx surrogate of the model chain, if any
	version   int64
	mats      []*Matrix // swap targets; tracked only when Swappable
	matrixIDs int
}

// NewEngine creates an engine. The model's tile size must match
// cfg.Xbar. With Config.ProbeRate > 0 the engine owns a fidelity
// Probe (and its background goroutine); call Close when done with
// such an engine.
func NewEngine(cfg Config, model Model) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		retain:  cfg.ProbeRate > 0 || cfg.Swappable,
		model:   model,
		sur:     surrogateOf(model),
		version: 1,
	}
	if cfg.ProbeRate > 0 {
		e.probe = newProbe(cfg.Xbar, cfg.ProbeRate, DefaultProbeQueue)
	}
	return e, nil
}

// Config returns the engine's architecture parameters.
func (e *Engine) Config() Config { return e.cfg }

// ModelName reports which analog model the engine uses. It is safe
// under concurrent SwapModel calls.
func (e *Engine) ModelName() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.model.Name()
}

// ModelVersion reports the engine's current model version: 1 for the
// model the engine was constructed with, incremented by every
// successful SwapModel. It is safe under concurrent SwapModel calls.
func (e *Engine) ModelVersion() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.version
}

// Swappable reports whether the engine was configured for model
// hot-swap (Config.Swappable).
func (e *Engine) Swappable() bool { return e.cfg.Swappable }

// Probe returns the engine's fidelity probe, or nil when probing is
// disabled.
func (e *Engine) Probe() *Probe { return e.probe }

// Close releases the engine's background resources (the probe's
// worker goroutine). Engines without a probe need no Close; calling
// it anyway is a no-op, and Close is idempotent.
func (e *Engine) Close() {
	if e.probe != nil {
		e.probe.Close()
	}
}

// loweredTile is one (tileRow, tileCol) block: the positive-magnitude
// crossbars (one per weight slice) and, if the block has any negative
// weights, the negative-magnitude crossbars.
type loweredTile struct {
	pos []Tile
	neg []Tile // nil when the block is all-non-negative
}

// tileConds retains the per-slice conductance matrices one block's
// tiles were programmed with — kept when the engine carries a fidelity
// probe (which shadow-solves them) or is Swappable (a new model is
// rebuilt from them). The matrices are immutable after lowering and
// independent of the model version, so probe jobs and calibrators
// reference them without copying and hot-swaps never invalidate them.
type tileConds struct {
	pos []*linalg.Dense
	neg []*linalg.Dense // nil when the block is all-non-negative
}

// tileSet is one published model version of a lowered matrix: the
// model tiles, the surrogate they share voltage contexts with, and an
// in-flight MVM count. Each MVM pins exactly one tileSet for its whole
// run (see Matrix.acquireTiles), so tiles and voltage contexts are
// always version-coherent; SwapModel retires a set only after its
// in-flight count drains to zero.
type tileSet struct {
	version int64
	model   Model
	sur     *core.Model
	tiles   [][]loweredTile // [tileRow][tileCol]

	inflight atomic.Int64
}

// Matrix is a weight matrix lowered onto crossbar tiles, ready to
// execute MVMs. A Matrix is safe for concurrent MVM calls; the
// hardware-event counters are atomic (see Stats).
type Matrix struct {
	eng      *Engine
	in, out  int
	tileRows int
	tileCols int

	// tset is the live model version; conds the retained per-block
	// conductances (nil unless the engine retains them), shared by
	// every version.
	tset  atomic.Pointer[tileSet]
	conds [][]tileConds

	crossbars int

	// Digital back-conversion constants, fixed per design point.
	adc       quant.ADC
	scale, kg float64

	// probe mirrors the engine's fidelity probe (nil when disabled);
	// id is the engine-assigned ordinal used in per-tile probe keys.
	probe *Probe
	id    int

	// nonideal aggregates what Config.Scenario did to this matrix's
	// crossbars at lowering; the zero report means a clean lowering.
	nonideal nonideal.Report

	stats matrixStats

	// runs is the freelist of pooled per-MVM scratch state; see mvmRun.
	runMu sync.Mutex
	runs  []*mvmRun
}

// Lower maps a real-valued in×out weight matrix onto crossbar tiles:
// symmetric quantization → sign-magnitude split → slice digits →
// conductances.
func (e *Engine) Lower(w *linalg.Dense) (*Matrix, error) {
	cfg := e.cfg
	n, mcols := cfg.Xbar.Rows, cfg.Xbar.Cols
	in, out := w.Rows, w.Cols
	kw := cfg.sliceDigits()
	wmax := float64(int64(1)<<cfg.SliceBits) - 1
	amax := float64(int64(1)<<cfg.StreamBits) - 1

	e.mu.Lock()
	model, version := e.model, e.version
	lm := &Matrix{
		eng: e, in: in, out: out,
		tileRows: (in + n - 1) / n,
		tileCols: (out + mcols - 1) / mcols,
		probe:    e.probe,
		id:       e.matrixIDs,
	}
	e.matrixIDs++
	e.mu.Unlock()
	lm.adc = quant.ADC{
		Bits:      cfg.ADCBits,
		FullScale: float64(n) * cfg.Xbar.Vsupply * cfg.Xbar.Gon(),
	}
	// Digital back-conversion constants: the ideal column current is
	//   I = (Vmax·ΔG)/(amax·wmax) · Σ dA·dW  +  Vmax·Goff/amax · Σ dA,
	// so p = I·scale − kg·Σ dA recovers the integer digit dot product.
	lm.scale = amax * wmax / (cfg.Xbar.Vsupply * (cfg.Xbar.Gon() - cfg.Xbar.Goff()))
	lm.kg = cfg.Xbar.Goff() * wmax / (cfg.Xbar.Gon() - cfg.Xbar.Goff())
	conds := make([][]tileConds, lm.tileRows)
	for tr := range conds {
		conds[tr] = make([]tileConds, lm.tileCols)
		for tc := range conds[tr] {
			posG := make([]*linalg.Dense, kw)
			negG := make([]*linalg.Dense, kw)
			for l := 0; l < kw; l++ {
				posG[l] = linalg.NewDense(n, mcols)
				negG[l] = linalg.NewDense(n, mcols)
				linalg.Fill(posG[l].Data, cfg.Xbar.Goff())
				linalg.Fill(negG[l].Data, cfg.Xbar.Goff())
			}
			hasNeg := false
			for i := 0; i < n; i++ {
				for j := 0; j < mcols; j++ {
					gi, gj := tr*n+i, tc*mcols+j
					var q int64 // padding encodes weight 0
					if gi < in && gj < out {
						q = cfg.Weight.QuantizeSymmetric(w.At(gi, gj))
					}
					mag := uint64(q)
					dst := posG
					if q < 0 {
						mag = uint64(-q)
						dst = negG
						hasNeg = true
					}
					for l, d := range quant.Digits(mag, cfg.SliceBits, kw) {
						dst[l].Set(i, j, cfg.Xbar.Goff()+float64(d)/wmax*(cfg.Xbar.Gon()-cfg.Xbar.Goff()))
					}
				}
			}
			// Non-ideality injection: perturb the programmed conductances
			// before any model tile is built, so every tier (and the
			// probe's shadow solves) runs on the same faulted array.
			// Sub-seeds are position-keyed, making the lowering
			// reproducible regardless of tile order or worker count.
			if sc := cfg.Scenario; sc.Enabled() {
				env := xbar.EnvFromConfig(cfg.Xbar)
				for l := 0; l < kw; l++ {
					rep, err := sc.ApplyTile(posG[l], env, tr, tc, l, 0)
					if err != nil {
						return nil, fmt.Errorf("funcsim: scenario on tile (%d,%d) slice %d: %w", tr, tc, l, err)
					}
					lm.nonideal.Merge(rep)
					if hasNeg {
						rep, err = sc.ApplyTile(negG[l], env, tr, tc, l, 1)
						if err != nil {
							return nil, fmt.Errorf("funcsim: scenario on tile (%d,%d) slice %d neg: %w", tr, tc, l, err)
						}
						lm.nonideal.Merge(rep)
					}
				}
			}
			cd := &conds[tr][tc]
			cd.pos = posG
			lm.crossbars += kw
			if hasNeg {
				cd.neg = negG
				lm.crossbars += kw
			}
		}
	}
	ts, err := buildTileSet(model, version, conds)
	if err != nil {
		return nil, err
	}
	lm.tset.Store(ts)
	if e.retain {
		lm.conds = conds
	}
	if e.cfg.Swappable {
		e.mu.Lock()
		e.mats = append(e.mats, lm)
		e.mu.Unlock()
	}
	if obs.Enabled() && cfg.Scenario.Enabled() {
		mDegradedFraction.Set(int64(lm.nonideal.DegradedFraction() * 1e6))
	}
	return lm, nil
}

// buildTileSet programs one model version over a matrix's retained
// conductances: every per-block, per-slice crossbar is rebuilt through
// model.NewTile. It is all-or-nothing — any tile error leaves no
// partially published state.
func buildTileSet(model Model, version int64, conds [][]tileConds) (*tileSet, error) {
	ts := &tileSet{version: version, model: model, sur: surrogateOf(model)}
	ts.tiles = make([][]loweredTile, len(conds))
	for tr := range conds {
		ts.tiles[tr] = make([]loweredTile, len(conds[tr]))
		for tc := range conds[tr] {
			cd := &conds[tr][tc]
			lt := &ts.tiles[tr][tc]
			var err error
			if lt.pos, err = buildTiles(model, cd.pos); err != nil {
				return nil, fmt.Errorf("funcsim: lowering tile (%d,%d): %w", tr, tc, err)
			}
			if cd.neg != nil {
				if lt.neg, err = buildTiles(model, cd.neg); err != nil {
					return nil, fmt.Errorf("funcsim: lowering tile (%d,%d) neg: %w", tr, tc, err)
				}
			}
		}
	}
	return ts, nil
}

// NonIdeal reports what the configured non-ideality scenario did to
// this matrix's crossbars at lowering time; the zero report means the
// lowering was clean (no scenario, or an empty stack).
func (m *Matrix) NonIdeal() nonideal.Report { return m.nonideal }

func buildTiles(model Model, gs []*linalg.Dense) ([]Tile, error) {
	tiles := make([]Tile, len(gs))
	for l, g := range gs {
		t, err := model.NewTile(g)
		if err != nil {
			return nil, fmt.Errorf("slice %d: %w", l, err)
		}
		tiles[l] = t
	}
	return tiles, nil
}

// acquireTiles pins the matrix's live tileSet for one MVM run. The
// recheck after the in-flight increment closes the race with a
// concurrent SwapModel: if the set was replaced between load and
// increment, the increment may have landed on an already-drained set,
// so release it and retry on the new one. SwapModel's drain therefore
// never misses an MVM that is about to start on a retired set.
func (m *Matrix) acquireTiles() *tileSet {
	for {
		ts := m.tset.Load()
		ts.inflight.Add(1)
		if m.tset.Load() == ts {
			return ts
		}
		ts.inflight.Add(-1)
	}
}

// SwapModel atomically replaces the analog model of every matrix
// lowered from this engine, publishing a new model version: each
// matrix's retained conductances are re-programmed through the new
// model (all matrices rebuilt before any is published, so a tile error
// leaves the engine fully on the old version), the new tile sets are
// swapped in atomically, and the old version is retired only after its
// in-flight MVMs drain. MVMs never block on a swap and never observe a
// mixed version within one call; a multi-layer forward pass that
// overlaps the swap may evaluate earlier layers on the old version and
// later ones on the new, each layer internally coherent.
//
// The engine must have been built with Config.Swappable. The new model
// must accept the same tile geometry (its NewTile sees the retained
// Rows×Cols conductance matrices). Returns the published version.
func (e *Engine) SwapModel(model Model) (int64, error) {
	if !e.cfg.Swappable {
		return 0, fmt.Errorf("funcsim: SwapModel on an engine without Config.Swappable")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	version := e.version + 1
	fresh := make([]*tileSet, len(e.mats))
	for i, m := range e.mats {
		ts, err := buildTileSet(model, version, m.conds)
		if err != nil {
			return 0, fmt.Errorf("funcsim: swap to %q: matrix %d: %w", model.Name(), m.id, err)
		}
		fresh[i] = ts
	}
	start := obs.Now()
	old := make([]*tileSet, len(e.mats))
	for i, m := range e.mats {
		old[i] = m.tset.Swap(fresh[i])
	}
	for _, ts := range old {
		for spins := 0; ts.inflight.Load() > 0; spins++ {
			if spins < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	e.model, e.sur, e.version = model, surrogateOf(model), version
	mModelSwaps.Inc()
	mModelVersion.Set(version)
	if obs.Enabled() {
		mSwapDrainLatency.ObserveSince(start)
	}
	return version, nil
}

// In returns the logical input dimension of the lowered matrix.
func (m *Matrix) In() int { return m.in }

// Out returns the logical output dimension.
func (m *Matrix) Out() int { return m.out }

// Tiles returns the (tileRows, tileCols, slices-per-sign) counts.
func (m *Matrix) Tiles() (tr, tc, slices int) {
	return m.tileRows, m.tileCols, m.eng.cfg.sliceDigits()
}

// Crossbars returns the number of physical crossbars the matrix
// occupies (positive + negative, all slices).
func (m *Matrix) Crossbars() int { return m.crossbars }

// inputBlock holds the digit-serial form of one tile row's activation
// block for a whole batch and one sign.
type inputBlock struct {
	vb       *linalg.Dense // batch·ka × n stream voltages
	digitSum []int64       // per (b, k): Σ_i digit
	any      bool          // any non-zero digit at all
	vctx     *core.VContext
}

// runBlock guards the lazily quantized input blocks of one tile row:
// the first task of the row quantizes, later tasks of the same row
// reuse the result.
type runBlock struct {
	mu     sync.Mutex
	done   bool
	blocks [2]inputBlock // positive / negative magnitude pass
}

// mvmTask is the unit of parallel work: all four differential passes
// of one (tileRow, tileCol) block, accumulated into an exact int64
// partial so the order tasks complete in cannot affect the result.
type mvmTask struct {
	tr, tc int
	dot    []int64       // batch×tileCols signed shift-and-add partials
	curr   *linalg.Dense // batch·ka × cols tile-current scratch
	stats  Stats         // task-local counters, folded after the run

	// probeArm marks this task as sampled by the fidelity probe; the
	// first slice evaluation with a live input block offers itself and
	// disarms.
	probeArm bool
}

// mvmRun is the pooled per-MVM scratch state. Matrices keep finished
// runs on a freelist so steady-state MVMs allocate nothing.
type mvmRun struct {
	m      *Matrix
	ts     *tileSet        // the model version pinned for this run
	ctx    context.Context // nil unless the MVM came in via MVMIntoContext
	x      *linalg.Dense
	batch  int
	accOut []int64
	blocks []runBlock
	tasks  []mvmTask
	sem    chan struct{} // in-flight bound when Config.Workers ≥ 2

	wg     sync.WaitGroup
	failMu sync.Mutex
	failed bool
	err    error
}

// mvmPool is the package-wide persistent worker pool. Spawning
// goroutines per MVM call would allocate closures and stacks on every
// invocation; a fixed pool keeps the steady state allocation-free and
// bounds total compute concurrency at GOMAXPROCS regardless of how
// many matrices execute at once.
var (
	mvmPoolOnce sync.Once
	mvmPoolCh   chan mvmTaskRef
)

type mvmTaskRef struct {
	run *mvmRun
	idx int
}

func mvmPool() chan<- mvmTaskRef {
	mvmPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		mvmPoolCh = make(chan mvmTaskRef, 8*n)
		for i := 0; i < n; i++ {
			go func() {
				for ref := range mvmPoolCh {
					ref.run.execTask(ref.idx)
				}
			}()
		}
	})
	return mvmPoolCh
}

func (r *mvmRun) setErr(err error) {
	r.failMu.Lock()
	if !r.failed {
		r.failed = true
		r.err = err
	}
	r.failMu.Unlock()
}

func (r *mvmRun) hasFailed() bool {
	r.failMu.Lock()
	f := r.failed
	r.failMu.Unlock()
	return f
}

// execTask is the pool-side wrapper: it releases the in-flight slot,
// converts panics into run errors (a dead pool worker would hang every
// later MVM), and signals completion. The active-worker gauge is
// updated unconditionally (not gated on obs.Enabled) so the paired
// increment/decrement cannot skew if the flag flips mid-task.
func (r *mvmRun) execTask(idx int) {
	mActiveWorkers.Add(1)
	defer func() {
		if p := recover(); p != nil {
			r.setErr(fmt.Errorf("funcsim: MVM tile task (%d,%d) panicked: %v",
				r.tasks[idx].tr, r.tasks[idx].tc, p))
		}
		mActiveWorkers.Add(-1)
		if r.sem != nil {
			<-r.sem
		}
		r.wg.Done()
	}()
	r.doTask(idx)
}

// doTask computes the exact int64 partial of one (tileRow, tileCol)
// block: quantize the row's input block if nobody has yet, then run
// the four differential passes.
func (r *mvmRun) doTask(idx int) {
	if r.hasFailed() {
		return
	}
	if r.ctx != nil {
		if cerr := r.ctx.Err(); cerr != nil {
			r.setErr(fmt.Errorf("funcsim: MVM cancelled: %w", cerr))
			return
		}
	}
	start := obs.Now()
	defer mTileLatency.ObserveSince(start)
	// Tile spans are traced-request-only: the TraceContext check keeps
	// the untraced steady state (benchmarks, training) free of the
	// context allocation StartSpan would add.
	ctx := r.ctx
	if obs.TraceFromContext(ctx).Valid() {
		var tspan obs.Span
		ctx, tspan = obs.StartSpan(ctx, "funcsim.tile")
		defer tspan.End()
	}
	t := &r.tasks[idx]
	rb := &r.blocks[t.tr]
	rb.mu.Lock()
	if !rb.done {
		r.m.quantizeBlockInto(rb, r.x, t.tr, r.ts.sur)
		rb.done = true
	}
	rb.mu.Unlock()

	for i := range t.dot {
		t.dot[i] = 0
	}
	t.stats = Stats{}
	t.probeArm = r.m.probe != nil && r.m.probe.tick()
	lt := &r.ts.tiles[t.tr][t.tc]
	var posG, negG []*linalg.Dense
	if r.m.conds != nil {
		cd := &r.m.conds[t.tr][t.tc]
		posG, negG = cd.pos, cd.neg
	}
	if err := r.pass(ctx, t, lt.pos, posG, &rb.blocks[0], 1); err != nil {
		r.setErr(err)
		return
	}
	if err := r.pass(ctx, t, lt.neg, negG, &rb.blocks[0], -1); err != nil {
		r.setErr(err)
		return
	}
	if err := r.pass(ctx, t, lt.pos, posG, &rb.blocks[1], -1); err != nil {
		r.setErr(err)
		return
	}
	if err := r.pass(ctx, t, lt.neg, negG, &rb.blocks[1], 1); err != nil {
		r.setErr(err)
		return
	}
}

// pass runs one differential pass (one sign of inputs against one sign
// of weights) of a tile task: evaluate every weight slice's crossbar,
// ADC-convert, and shift-and-add into the task's exact partial. gs
// holds the slices' retained conductance matrices when the engine
// retains them (nil otherwise); a probe-armed task offers its first
// live slice evaluation for shadow-solving.
func (r *mvmRun) pass(ctx context.Context, t *mvmTask, tiles []Tile, gs []*linalg.Dense, blk *inputBlock, sign int64) error {
	if tiles == nil || !blk.any {
		t.stats.SkippedPasses++
		return nil
	}
	m := r.m
	cfg := m.eng.cfg
	mcols := cfg.Xbar.Cols
	ka := cfg.streamDigits()
	for l, tile := range tiles {
		if err := currentsInto(ctx, tile, t.curr, blk.vb, blk.vctx); err != nil {
			return fmt.Errorf("funcsim: tile (%d,%d) slice %d: %w", t.tr, t.tc, l, err)
		}
		if t.probeArm && gs != nil {
			m.probe.offer(m.id, t.tr, t.tc, l, gs[l], blk, t.curr)
			t.probeArm = false
		}
		for b := 0; b < r.batch; b++ {
			for k := 0; k < ka; k++ {
				ds := blk.digitSum[b*ka+k]
				if ds == 0 {
					continue // all-zero stream: nothing to add
				}
				t.stats.CrossbarOps++
				t.stats.ADCConversions += int64(mcols)
				t.stats.ShiftAdds += int64(mcols)
				crow := t.curr.Row(b*ka + k)
				shift := uint(k*cfg.StreamBits + l*cfg.SliceBits)
				off := m.kg * float64(ds)
				for j := 0; j < mcols; j++ {
					p := int64(math.Round(m.adc.Convert(crow[j])*m.scale - off))
					t.dot[b*mcols+j] += sign * (p << shift)
				}
			}
		}
	}
	return nil
}

// MVM executes y = x·W through the crossbar pipeline for a batch of
// real-valued inputs (batch×in). The result is batch×out in real
// units (already dequantized from the accumulator). Use MVMInto with a
// caller-owned output to avoid the result allocation.
func (m *Matrix) MVM(x *linalg.Dense) (*linalg.Dense, error) {
	return m.MVMContext(nil, x)
}

// MVMContext is MVM with cooperative cancellation: once ctx is done,
// pending tile tasks are abandoned before they start and in-flight
// circuit solves abort at their next Newton update. A nil ctx is
// identical to MVM.
func (m *Matrix) MVMContext(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	out := linalg.NewDense(x.Rows, m.out)
	if err := m.MVMIntoContext(ctx, out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MVMInto executes y = x·W into dst (batch×out). Tile passes fan out
// across the shared worker pool (see Config.Workers); the saturating
// accumulator merge is serial in fixed (tileRow, tileCol) order, so
// the result is bit-identical to a fully serial execution at any
// worker count. Steady-state calls allocate nothing: all scratch comes
// from the matrix's run pool.
func (m *Matrix) MVMInto(dst, x *linalg.Dense) error {
	return m.MVMIntoContext(nil, dst, x)
}

// MVMIntoContext is MVMInto with cooperative cancellation (see
// MVMContext). On cancellation it returns an error wrapping ctx.Err()
// and dst holds unspecified contents.
func (m *Matrix) MVMIntoContext(ctx context.Context, dst, x *linalg.Dense) error {
	if x.Cols != m.in {
		return fmt.Errorf("funcsim: MVM input has %d features, matrix expects %d", x.Cols, m.in)
	}
	if dst.Rows != x.Rows || dst.Cols != m.out {
		return fmt.Errorf("funcsim: MVM output is %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, m.out)
	}
	mvmStart := obs.Now()
	region := obs.StartRegion("funcsim.mvm")
	defer region.End()
	// Traced requests get a "funcsim.mvm" span parenting the per-tile
	// spans; untraced callers (nil or plain contexts — the benchmarked
	// steady state) skip straight past, preserving 0 allocs/op.
	if obs.TraceFromContext(ctx).Valid() {
		var span obs.Span
		ctx, span = obs.StartSpan(ctx, "funcsim.mvm")
		defer span.End()
	}
	cfg := m.eng.cfg
	r := m.getRun(x)
	r.ctx = ctx
	r.ts = m.acquireTiles()
	defer func() {
		r.ts.inflight.Add(-1)
		m.putRun(r)
	}()

	if cfg.Workers == 1 || len(r.tasks) == 1 {
		for i := range r.tasks {
			r.doTask(i)
		}
	} else {
		pool := mvmPool()
		r.wg.Add(len(r.tasks))
		for i := range r.tasks {
			if r.sem != nil {
				r.sem <- struct{}{}
			}
			pool <- mvmTaskRef{run: r, idx: i}
			mQueueDepth.Set(int64(len(mvmPoolCh)))
		}
		r.wg.Wait()
	}
	if r.err != nil {
		return r.err
	}

	// Deterministic merge: tileRow-major, tileCol-minor — the exact
	// order of the serial pipeline — so the non-associative saturating
	// accumulator sees the same operand sequence at any worker count.
	prodFrac := cfg.Act.Frac + cfg.Weight.Frac
	mcols := cfg.Xbar.Cols
	var total Stats
	for i := range r.tasks {
		t := &r.tasks[i]
		for b := 0; b < r.batch; b++ {
			for j := 0; j < mcols; j++ {
				gj := t.tc*mcols + j
				if gj >= m.out {
					continue
				}
				part := cfg.Acc.Rescale(t.dot[b*mcols+j], prodFrac)
				idx := b*m.out + gj
				r.accOut[idx] = cfg.Acc.Add(r.accOut[idx], part)
				total.AccOps++
			}
		}
		total.Add(t.stats)
	}
	total.MVMRows = int64(r.batch)
	m.stats.add(total)
	if obs.Enabled() {
		mMVMCalls.Inc()
		mMVMLatency.ObserveSince(mvmStart)
		recordMVM(total)
	}

	for i, v := range r.accOut {
		dst.Data[i] = cfg.Acc.Dequantize(v)
	}
	return nil
}

// getRun pops a pooled run (or builds the first one) and sizes its
// scratch for the batch. Growth is monotonic: a run reused at the same
// or smaller batch size allocates nothing.
func (m *Matrix) getRun(x *linalg.Dense) *mvmRun {
	m.runMu.Lock()
	var r *mvmRun
	if n := len(m.runs); n > 0 {
		r = m.runs[n-1]
		m.runs = m.runs[:n-1]
	}
	m.runMu.Unlock()
	if obs.Enabled() {
		if r != nil {
			mFreelistHits.Inc()
		} else {
			mFreelistMisses.Inc()
		}
	}
	if r == nil {
		r = &mvmRun{m: m}
		r.blocks = make([]runBlock, m.tileRows)
		r.tasks = make([]mvmTask, m.tileRows*m.tileCols)
		for i := range r.tasks {
			r.tasks[i].tr = i / m.tileCols
			r.tasks[i].tc = i % m.tileCols
		}
	}

	cfg := m.eng.cfg
	batch := x.Rows
	ka := cfg.streamDigits()
	n, mcols := cfg.Xbar.Rows, cfg.Xbar.Cols
	r.x = x
	r.batch = batch
	r.failed = false
	r.err = nil
	r.accOut = growInt64(r.accOut, batch*m.out)
	for i := range r.accOut {
		r.accOut[i] = 0
	}
	for i := range r.blocks {
		rb := &r.blocks[i]
		rb.done = false
		for s := range rb.blocks {
			blk := &rb.blocks[s]
			blk.vb = growDense(blk.vb, batch*ka, n)
			blk.digitSum = growInt64(blk.digitSum, batch*ka)
			blk.any = false
			blk.vctx = nil
		}
	}
	for i := range r.tasks {
		t := &r.tasks[i]
		t.dot = growInt64(t.dot, batch*mcols)
		t.curr = growDense(t.curr, batch*ka, mcols)
	}
	if w := cfg.Workers; w >= 2 {
		if cap(r.sem) != w {
			r.sem = make(chan struct{}, w)
		}
	} else {
		r.sem = nil
	}
	return r
}

// putRun drops input references and returns the run to the freelist.
func (m *Matrix) putRun(r *mvmRun) {
	r.x = nil
	r.ctx = nil
	r.ts = nil
	for i := range r.blocks {
		for s := range r.blocks[i].blocks {
			r.blocks[i].blocks[s].vctx = nil
		}
	}
	m.runMu.Lock()
	m.runs = append(m.runs, r)
	m.runMu.Unlock()
}

// growInt64 returns s resized to n elements, reusing its backing array
// when capacity allows. Contents are unspecified.
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// growDense returns d resized to rows×cols, reusing its backing array
// when capacity allows. Contents are unspecified.
func growDense(d *linalg.Dense, rows, cols int) *linalg.Dense {
	need := rows * cols
	if d == nil || cap(d.Data) < need {
		return linalg.NewDense(rows, cols)
	}
	d.Rows, d.Cols, d.Data = rows, cols, d.Data[:need]
	return d
}

// quantizeBlockInto converts one tile row's activation block into the
// positive and negative digit-serial input blocks, reusing the run's
// buffers. When the model chain has a GENIEx surrogate, the per-block
// voltage context is built here, once, and shared read-only by every
// (slice, sign, tileCol) evaluation of the row. sur is the surrogate
// of the run's pinned tileSet, so contexts and tiles always belong to
// the same model version even while a SwapModel is in flight.
func (m *Matrix) quantizeBlockInto(rb *runBlock, x *linalg.Dense, tr int, sur *core.Model) {
	cfg := m.eng.cfg
	n := cfg.Xbar.Rows
	ka := cfg.streamDigits()
	amax := float64(int64(1)<<cfg.StreamBits) - 1
	batch := x.Rows

	for s := range rb.blocks {
		blk := &rb.blocks[s]
		linalg.Fill(blk.vb.Data, 0)
		for i := range blk.digitSum {
			blk.digitSum[i] = 0
		}
		blk.any = false
		blk.vctx = nil
	}
	for b := 0; b < batch; b++ {
		row := x.Row(b)
		for i := 0; i < n; i++ {
			var q int64 // padding encodes activation 0
			if gi := tr*n + i; gi < m.in {
				q = cfg.Act.QuantizeSymmetric(row[gi])
			}
			if q == 0 {
				continue
			}
			s := 0
			mag := uint64(q)
			if q < 0 {
				s = 1
				mag = uint64(-q)
			}
			blk := &rb.blocks[s]
			blk.any = true
			for k := 0; k < ka; k++ {
				d := quant.Digit(mag, cfg.StreamBits, k)
				if d == 0 {
					continue
				}
				blk.vb.Set(b*ka+k, i, float64(d)/amax*cfg.Xbar.Vsupply)
				blk.digitSum[b*ka+k] += int64(d)
			}
		}
	}
	if sur != nil {
		for s := range rb.blocks {
			if blk := &rb.blocks[s]; blk.any {
				blk.vctx = sur.NewVContext(blk.vb)
			}
		}
	}
}
