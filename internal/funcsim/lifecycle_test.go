package funcsim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// Engine.Close must be idempotent: double-Close on a probe-carrying
// engine, Close on a probe-less engine, and Close after the probe was
// already closed directly must all be no-ops.
func TestEngineCloseIdempotent(t *testing.T) {
	eng, err := NewEngine(exactConfig(8, 8), Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // no probe: both are no-ops

	cfg := exactConfig(8, 8)
	cfg.ProbeRate = 1
	eng, err = NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Probe() == nil {
		t.Fatal("ProbeRate=1 engine has no probe")
	}
	eng.Probe().Close() // direct probe Close first
	eng.Close()         // then the engine's
	eng.Close()         // and again
}

// Close racing in-flight MVMs must be safe: the probe's offer path
// never blocks and never touches freed state, so MVMs that straddle
// Close still complete successfully. Run under -race in check.sh.
func TestEngineCloseRacesInflightMVM(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.ProbeRate = 1 // sample every tile task: maximum offer traffic
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(77, 20, 18, 3) // 3×3 tile grid
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				if _, err := mat.MVM(x); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	close(start)
	eng.Close() // races the MVMs above
	eng.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("MVM racing Close failed: %v", err)
	}
}

// A cancelled context must stop the MVM before circuit work starts,
// and — the acceptance criterion — the xbar solve counters must not
// advance for work done on behalf of a dead caller.
func TestMVMContextCancelledStopsCircuitSolves(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar.BatchWorkers = 1
	eng, err := NewEngine(cfg, Circuit{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(81, 12, 10, 2)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}

	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	solves := obs.NewCounter("xbar.solver.solves")
	cancelled := obs.NewCounter("xbar.solver.cancelled")

	// Uncancelled baseline: circuit solves advance the counter.
	before := solves.Load()
	if _, err := mat.MVMContext(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	if solves.Load() == before {
		t.Fatal("circuit MVM advanced no solve counters; test is not exercising the solver")
	}

	// Dead caller: no solves, error wraps context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before = solves.Load()
	_, err = mat.MVMContext(ctx, x)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if d := solves.Load() - before; d != 0 {
		t.Errorf("solve counter advanced by %d after cancellation", d)
	}
	_ = cancelled // per-update cancellation is covered in internal/xbar

	// Matrix still works after a cancelled call (pooled run state must
	// not leak the dead context).
	if _, err := mat.MVM(x); err != nil {
		t.Fatalf("MVM after cancelled MVM failed: %v", err)
	}
}

// An expired deadline must surface as context.DeadlineExceeded through
// the whole funcsim stack.
func TestMVMContextDeadlineExceeded(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(82, 12, 10, 2)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := mat.MVMContext(ctx, x); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// ForwardContext must honor cancellation between layers and propagate
// the context error up from the MVM layers; a background context must
// match the context-free Forward bit for bit.
func TestForwardContextCancellation(t *testing.T) {
	r := linalg.NewRNG(11)
	net := buildTinyCNN(r)
	eng, err := NewEngine(exactConfig(8, 8), Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(2, 36)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}

	want, err := sim.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.ForwardContext(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("output %d: ForwardContext %g != Forward %g", i, got.Data[i], want.Data[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.ForwardContext(ctx, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
