package funcsim

import (
	"math"
	"testing"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

// exactConfig is a configuration under which the ideal-model pipeline
// must be bit-exact with the integer dot product: a huge ADC and an
// accumulator wide enough to never saturate, with the accumulator
// resolution equal to the product resolution.
func exactConfig(tileRows, tileCols int) Config {
	cfg := DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = tileRows, tileCols
	cfg.Weight = quant.FxP{Bits: 8, Frac: 4}
	cfg.Act = quant.FxP{Bits: 8, Frac: 4}
	cfg.StreamBits, cfg.SliceBits = 2, 2
	cfg.ADCBits = 30
	cfg.Acc = quant.Acc{Bits: 56, Frac: 8}
	return cfg
}

// quantizedRef computes the reference result: the plain matmul of
// FxP-quantized weights and activations at full accumulation
// precision.
func quantizedRef(cfg Config, x, w *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(x.Rows, w.Cols)
	for b := 0; b < x.Rows; b++ {
		for j := 0; j < w.Cols; j++ {
			var acc int64
			for i := 0; i < w.Rows; i++ {
				acc += cfg.Act.QuantizeSymmetric(x.At(b, i)) * cfg.Weight.QuantizeSymmetric(w.At(i, j))
			}
			out.Set(b, j, float64(acc)/(cfg.Act.Scale()*cfg.Weight.Scale()))
		}
	}
	return out
}

func randMatrix(r *linalg.RNG, rows, cols, scaleDen int) *linalg.Dense {
	m := linalg.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm() / float64(scaleDen)
	}
	return m
}

// The headline pipeline invariant: with the ideal analog model, enough
// ADC bits and a wide accumulator, the tiled bit-sliced MVM is exactly
// the quantized integer matmul — for every stream/slice width
// combination and for dimensions that don't divide the tile size
// (exercising padding).
func TestIdealPipelineBitExact(t *testing.T) {
	r := linalg.NewRNG(1)
	for _, widths := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {2, 4}, {3, 3}} {
		for _, dims := range [][2]int{{8, 8}, {11, 5}, {20, 9}} {
			cfg := exactConfig(8, 8)
			cfg.StreamBits, cfg.SliceBits = widths[0], widths[1]
			eng, err := NewEngine(cfg, Ideal{})
			if err != nil {
				t.Fatal(err)
			}
			w := randMatrix(r, dims[0], dims[1], 2)
			x := randMatrix(r, 3, dims[0], 2)
			lm, err := eng.Lower(w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := lm.MVM(x)
			if err != nil {
				t.Fatal(err)
			}
			want := quantizedRef(cfg, x, w)
			for i := range got.Data {
				if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
					t.Fatalf("widths %v dims %v: out[%d] = %v, want %v",
						widths, dims, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.StreamBits = 0 },
		func(c *Config) { c.SliceBits = 99 },
		func(c *Config) { c.ADCBits = 0 },
		func(c *Config) { c.Acc = quant.Acc{Bits: 1, Frac: 0} },
		func(c *Config) { c.Weight = quant.FxP{Bits: 1, Frac: 0} },
		func(c *Config) { c.Xbar.Ron = -5 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestMVMShapeError(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := eng.Lower(linalg.NewDense(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lm.MVM(linalg.NewDense(2, 9)); err == nil {
		t.Error("expected shape error")
	}
}

func TestTilingCounts(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Weight = quant.FxP{Bits: 8, Frac: 4}
	cfg.SliceBits = 2
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := eng.Lower(linalg.NewDense(17, 9))
	if err != nil {
		t.Fatal(err)
	}
	tr, tc, slices := lm.Tiles()
	if tr != 3 || tc != 2 || slices != 4 {
		t.Errorf("tiles = (%d,%d,%d), want (3,2,4)", tr, tc, slices)
	}
}

// The accumulator must saturate rather than wrap: drive it with a
// weight matrix of identical large values and verify the output is
// clipped at the accumulator maximum.
func TestAccumulatorSaturates(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Acc = quant.Acc{Bits: 10, Frac: 4} // tiny accumulator: max code 511
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w := linalg.NewDense(8, 1)
	linalg.Fill(w.Data, 7) // max-ish weight value (format 8.4 → max 7.9375)
	x := linalg.NewDense(1, 8)
	linalg.Fill(x.Data, 7)
	lm, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	maxOut := cfg.Acc.Dequantize(cfg.Acc.Max()) // 511/16 ≈ 31.9
	if got.At(0, 0) != maxOut {
		t.Errorf("saturated output = %v, want %v", got.At(0, 0), maxOut)
	}
}

// A coarse ADC must inject visible quantization error while a fine ADC
// must not.
func TestADCQuantizationEffect(t *testing.T) {
	r := linalg.NewRNG(2)
	w := randMatrix(r, 8, 8, 2)
	x := randMatrix(r, 4, 8, 2)
	errAt := func(adcBits int) float64 {
		cfg := exactConfig(8, 8)
		cfg.ADCBits = adcBits
		eng, err := NewEngine(cfg, Ideal{})
		if err != nil {
			t.Fatal(err)
		}
		lm, err := eng.Lower(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lm.MVM(x)
		if err != nil {
			t.Fatal(err)
		}
		want := quantizedRef(cfg, x, w)
		return linalg.RMSE(got.Data, want.Data)
	}
	coarse := errAt(4)
	fine := errAt(30)
	if fine > 1e-12 {
		t.Errorf("fine ADC error %v should vanish", fine)
	}
	if coarse <= fine {
		t.Errorf("coarse ADC error %v not above fine %v", coarse, fine)
	}
}

// The analytical model through the pipeline must show IR-drop induced
// underestimation: outputs for an all-positive workload fall below the
// ideal pipeline's.
func TestAnalyticalUnderestimates(t *testing.T) {
	cfg := exactConfig(8, 8)
	r := linalg.NewRNG(3)
	w := linalg.NewDense(8, 8)
	for i := range w.Data {
		w.Data[i] = r.Float64() * 4 // positive weights
	}
	x := linalg.NewDense(2, 8)
	for i := range x.Data {
		x.Data[i] = r.Float64() * 4 // positive activations
	}
	run := func(m Model) *linalg.Dense {
		eng, err := NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		lm, err := eng.Lower(w)
		if err != nil {
			t.Fatal(err)
		}
		out, err := lm.MVM(x)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ideal := run(Ideal{})
	ana := run(Analytical{Cfg: cfg.Xbar})
	var below, total int
	for i := range ideal.Data {
		if ideal.Data[i] > 0.5 { // only meaningful magnitudes
			total++
			if ana.Data[i] < ideal.Data[i] {
				below++
			}
		}
	}
	if total == 0 {
		t.Fatal("no meaningful outputs to compare")
	}
	if float64(below)/float64(total) < 0.9 {
		t.Errorf("analytical outputs below ideal in only %d/%d cases", below, total)
	}
}

// trainTinyGENIEx fits a quick surrogate for the 8×8 tile used in
// these tests. The training set mirrors the workloads the functional
// simulator generates: digit-grid-aligned values with heavy sparsity
// (the paper's stratification argument).
func trainTinyGENIEx(t *testing.T, cfg xbar.Config) *core.Model {
	t.Helper()
	ds, err := core.Generate(cfg, core.GenOptions{
		Samples:    1200,
		StreamBits: 2, SliceBits: 2,
		Sparsities: []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(cfg, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ds, core.TrainOptions{Epochs: 300, BatchSize: 32, LR: 2e-3, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	return m
}

// harshXbar is an aggressively non-ideal design point (low Ron, low
// ON/OFF ratio, long wires, high supply) where distortion is large
// enough for surrogate quality to be measurable.
func harshXbar() xbar.Config {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	cfg.Ron = 25e3
	cfg.OnOffRatio = 2
	cfg.Rwire = 25
	cfg.Vsupply = 0.5
	return cfg
}

// GENIEx through the pipeline must track the full circuit solver
// better than the ideal model does (i.e. it captures real distortion).
func TestGENIExTileTracksCircuit(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar = harshXbar()
	gx := trainTinyGENIEx(t, cfg.Xbar)
	r := linalg.NewRNG(4)

	g := linalg.NewDense(8, 8)
	for i := range g.Data {
		g.Data[i] = cfg.Xbar.ConductanceFromLevel(r.Float64())
	}
	v := linalg.NewDense(6, 8)
	for i := range v.Data {
		v.Data[i] = cfg.Xbar.Vsupply * r.Float64()
	}

	circTile, err := Circuit{Cfg: cfg.Xbar}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := circTile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	gxTile, err := GENIEx{Model: gx}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := gxTile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	idTile, err := Ideal{}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := idTile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	gxErr := linalg.RMSE(pred.Data, truth.Data)
	idealErr := linalg.RMSE(ideal.Data, truth.Data)
	t.Logf("tile current RMSE: geniex=%.3g ideal=%.3g", gxErr, idealErr)
	if gxErr >= idealErr {
		t.Errorf("GENIEx tile error %v not below ideal-model error %v", gxErr, idealErr)
	}
}

func TestGENIExTileSizeMismatch(t *testing.T) {
	cfg := exactConfig(8, 8)
	gx, err := core.NewModel(cfg.Xbar, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (GENIEx{Model: gx}).NewTile(linalg.NewDense(4, 4)); err == nil {
		t.Error("expected size mismatch error")
	}
}

// buildTinyCNN returns a small trained-ish (randomly initialized but
// structurally complete) CNN for lowering tests.
func buildTinyCNN(r *linalg.RNG) *nn.Sequential {
	geom := nn.ConvGeom{InC: 1, InH: 6, InW: 6, OutC: 2, Kernel: 3, Stride: 1, Pad: 1}
	return nn.NewSequential(
		nn.NewConv2D(geom, false, r),
		nn.NewBatchNorm(2, 36),
		nn.NewReLU(),
		nn.NewResidual(
			nn.NewConv2D(nn.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 2, Kernel: 3, Stride: 1, Pad: 1}, true, r),
			nn.NewReLU(),
		),
		nn.NewMaxPool2D(2, 6, 6, 2),
		nn.NewFlatten(),
		nn.NewLinear(2*3*3, 4, true, r),
	)
}

// Lowering a network with the ideal model and generous precision must
// reproduce the float network's outputs closely (the only differences
// are quantization).
func TestLoweredNetworkMatchesFloat(t *testing.T) {
	r := linalg.NewRNG(6)
	net := buildTinyCNN(r)
	// Feed a few training batches so BatchNorm has sane running stats.
	for i := 0; i < 10; i++ {
		x := linalg.NewDense(8, 36)
		for j := range x.Data {
			x.Data[j] = r.Norm()
		}
		net.Forward(x, true)
	}

	cfg := exactConfig(8, 8)
	cfg.Weight = quant.FxP{Bits: 16, Frac: 12}
	cfg.Act = quant.FxP{Bits: 16, Frac: 12}
	cfg.StreamBits, cfg.SliceBits = 4, 4
	cfg.Acc = quant.Acc{Bits: 56, Frac: 24}
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}

	x := linalg.NewDense(4, 36)
	for j := range x.Data {
		x.Data[j] = r.Norm()
	}
	want := net.Forward(x, false)
	got, err := sim.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d vs %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if rmse := linalg.RMSE(got.Data, want.Data); rmse > 0.02 {
		t.Errorf("lowered network deviates from float: RMSE %v", rmse)
	}
}

func TestLoweredNetworkAgreementDegradesWithPrecision(t *testing.T) {
	r := linalg.NewRNG(7)
	net := buildTinyCNN(r)
	for i := 0; i < 10; i++ {
		x := linalg.NewDense(8, 36)
		for j := range x.Data {
			x.Data[j] = r.Norm()
		}
		net.Forward(x, true)
	}
	x := linalg.NewDense(4, 36)
	for j := range x.Data {
		x.Data[j] = r.Norm()
	}
	want := net.Forward(x, false)

	rmseAt := func(bits, frac int) float64 {
		cfg := exactConfig(8, 8)
		cfg.Weight = quant.FxP{Bits: bits, Frac: frac}
		cfg.Act = quant.FxP{Bits: bits, Frac: frac}
		cfg.StreamBits, cfg.SliceBits = 2, 2
		cfg.Acc = quant.Acc{Bits: 56, Frac: 24}
		eng, err := NewEngine(cfg, Ideal{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return linalg.RMSE(got.Data, want.Data)
	}
	high := rmseAt(16, 12)
	low := rmseAt(6, 3)
	if low <= high {
		t.Errorf("lower precision should deviate more: 6-bit %v vs 16-bit %v", low, high)
	}
}

func TestDescribe(t *testing.T) {
	r := linalg.NewRNG(8)
	net := buildTinyCNN(r)
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	desc := sim.Describe()
	if len(desc) == 0 {
		t.Fatal("empty description")
	}
	if eng.ModelName() != "ideal" {
		t.Errorf("model name %q", eng.ModelName())
	}
}

// The scientific headline end to end: lowering a network with GENIEx
// must approximate the full circuit-in-the-loop execution better than
// assuming ideal crossbars. The tile is 16x16 with strong parasitics:
// at smaller tiles the physical distortion is below one LSB of the
// digit grid and integer rounding absorbs it, leaving nothing for a
// surrogate to model. This drives thousands of real Newton solves, so
// it is skipped in -short mode.
func TestGENIExApproximatesCircuitEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-in-the-loop run is slow")
	}
	if raceDetectorEnabled {
		t.Skip("circuit-in-the-loop run exceeds the test timeout under -race")
	}
	r := linalg.NewRNG(21)
	net := buildTinyCNN(r)
	for i := 0; i < 10; i++ {
		net.Forward(randMatrix(r, 8, 36, 1), true)
	}
	x := randMatrix(r, 1, 36, 1)

	cfg := exactConfig(16, 16)
	cfg.Xbar = harshXbar()
	cfg.Xbar.Rows, cfg.Xbar.Cols = 16, 16
	gx := trainTinyGENIEx(t, cfg.Xbar)

	run := func(m Model) *linalg.Dense {
		eng, err := NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	truth := run(Circuit{Cfg: cfg.Xbar})
	viaGENIEx := run(GENIEx{Model: gx})
	viaIdeal := run(Ideal{})
	viaAna := run(Analytical{Cfg: cfg.Xbar})

	gxErr := linalg.RMSE(viaGENIEx.Data, truth.Data)
	idealErr := linalg.RMSE(viaIdeal.Data, truth.Data)
	anaErr := linalg.RMSE(viaAna.Data, truth.Data)
	// GENIEx must clearly beat the ideal assumption. The analytical
	// model is logged for context: bit-sliced digit workloads run the
	// devices at low currents where the linear IR-drop term dominates,
	// so the analytical model is a strong baseline in this regime —
	// GENIEx's advantage over it shows on the dense (V, G)
	// distribution of Fig. 5 (see core's tests) and in accuracy
	// prediction (Fig. 7d), not necessarily in per-output RMSE here.
	t.Logf("end-to-end RMSE vs circuit-in-the-loop: geniex=%.4f ideal=%.4f analytical=%.4f", gxErr, idealErr, anaErr)
	if gxErr >= idealErr {
		t.Errorf("GENIEx end-to-end error %v not below ideal-model error %v", gxErr, idealErr)
	}
}

// Non-square tiles must preserve bit-exactness (tiling code paths for
// rows and columns differ).
func TestIdealPipelineNonSquareTile(t *testing.T) {
	r := linalg.NewRNG(31)
	cfg := exactConfig(8, 8)
	cfg.Xbar.Rows, cfg.Xbar.Cols = 6, 10
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w := randMatrix(r, 13, 17, 2)
	x := randMatrix(r, 2, 13, 2)
	lm, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	want := quantizedRef(cfg, x, w)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("non-square tile mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// All-negative weights must allocate only negative-magnitude crossbars
// plus the (empty) positive planes, and still compute exactly.
func TestAllNegativeWeights(t *testing.T) {
	r := linalg.NewRNG(37)
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w := linalg.NewDense(8, 4)
	for i := range w.Data {
		w.Data[i] = -r.Float64() * 3
	}
	x := randMatrix(r, 3, 8, 2)
	lm, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	want := quantizedRef(cfg, x, w)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("all-negative mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// fakeLayer is an unlowersable layer type for error-path testing.
type fakeLayer struct{}

func (fakeLayer) Forward(x *linalg.Dense, train bool) *linalg.Dense { return x }
func (fakeLayer) Backward(g *linalg.Dense) *linalg.Dense            { return g }
func (fakeLayer) Params() []*nn.Param                               { return nil }

func TestLowerRejectsUnknownLayer(t *testing.T) {
	eng, err := NewEngine(exactConfig(8, 8), Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(nn.NewSequential(fakeLayer{}), eng); err == nil {
		t.Error("expected error for unknown layer type")
	}
}

// A BatchNorm that does not follow an MVM layer must lower to a
// digital affine transform and match the float network exactly.
func TestStandaloneBatchNormLowersToAffine(t *testing.T) {
	r := linalg.NewRNG(41)
	bn := nn.NewBatchNorm(4, 1)
	for i := 0; i < 10; i++ {
		bn.Forward(randMatrix(r, 8, 4, 1), true)
	}
	net := nn.NewSequential(bn, nn.NewReLU())
	eng, err := NewEngine(exactConfig(8, 8), Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := randMatrix(r, 3, 4, 1)
	want := net.Forward(x, false)
	got, err := sim.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("affine path mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}
