package funcsim

import "geniex/internal/obs"

// Metric handles for the MVM tile pipeline, registered once in the
// process-wide obs registry. The full catalog is documented in
// DESIGN.md §7.
var (
	mMVMCalls       = obs.NewCounter("funcsim.mvm.calls")
	mMVMLatency     = obs.NewHistogram("funcsim.mvm.latency_seconds", obs.LatencyBuckets)
	mTileLatency    = obs.NewHistogram("funcsim.tile.latency_seconds", obs.LatencyBuckets)
	mQueueDepth     = obs.NewGauge("funcsim.pool.queue_depth")
	mActiveWorkers  = obs.NewGauge("funcsim.pool.active_workers")
	mFreelistHits   = obs.NewCounter("funcsim.run.freelist_hits")
	mFreelistMisses = obs.NewCounter("funcsim.run.freelist_misses")
	mDegradedItems  = obs.NewCounter("funcsim.circuit.degraded_items")
	// mDegradedFraction reports the fraction of physical crossbars that
	// carry at least one stuck cell after the last lowering, in parts
	// per million (the obs registry stores integers; divide by 1e6).
	mDegradedFraction = obs.NewGauge("funcsim.tile.degraded_fraction")
	// Model hot-swap metrics: swaps counts successful SwapModel calls
	// process-wide, version mirrors the last published model version,
	// and the drain histogram times publish-to-retire (how long old
	// versions' in-flight MVMs took to finish). The swap counter and
	// version gauge always record — operators diagnosing a calibration
	// loop need them even with obs sampling disabled.
	mModelSwaps       = obs.NewCounter("funcsim.model.swaps")
	mModelVersion     = obs.NewGauge("funcsim.model.version")
	mSwapDrainLatency = obs.NewHistogram("funcsim.model.swap_drain_seconds", obs.LatencyBuckets)
	mLayerLatency     = obs.NewHistogram("funcsim.forward.layer_seconds", obs.LatencyBuckets)
	mForwardLatency   = obs.NewHistogram("funcsim.forward.latency_seconds", obs.LatencyBuckets)

	// Fidelity metrics: the divergence probe (see Probe) and the
	// experiment harnesses publish emulator-vs-circuit comparisons
	// here, so "is the emulation still faithful" is answerable from
	// any metrics snapshot.
	mProbeSampled  = obs.NewCounter("funcsim.probe.sampled")
	mProbePaced    = obs.NewCounter("funcsim.probe.paced")
	mProbeDropped  = obs.NewCounter("funcsim.probe.dropped")
	mProbeSolved   = obs.NewCounter("funcsim.probe.solved")
	mProbeFailures = obs.NewCounter("funcsim.probe.solve_failures")
	mProbeLatency  = obs.NewHistogram("funcsim.probe.latency_seconds", obs.LatencyBuckets)
	mProbeRRMSE    = obs.NewHistogram("funcsim.probe.rrmse", obs.ExpBuckets(1e-4, 2, 18))
	mProbeNFPos    = obs.NewHistogram("funcsim.probe.nf_pos", obs.LinearBuckets(0.05, 0.05, 20))
	mProbeNFNeg    = obs.NewHistogram("funcsim.probe.nf_neg", obs.LinearBuckets(0.05, 0.05, 20))
	mProbeEWMA     = obs.NewGauge("funcsim.probe.rrmse_ewma_micro")
	mProbeBaseline = obs.NewGauge("funcsim.probe.baseline_micro")
	mProbeDrift    = obs.NewGauge("funcsim.probe.drift_micro")

	// Process-wide mirrors of the per-Matrix hardware-event counters:
	// every completed MVM folds its per-call Stats here as well as into
	// its matrix, so a metrics snapshot sees total architectural work
	// without walking matrices.
	gCrossbarOps    = obs.NewCounter("funcsim.mvm.crossbar_ops")
	gADCConversions = obs.NewCounter("funcsim.mvm.adc_conversions")
	gShiftAdds      = obs.NewCounter("funcsim.mvm.shift_adds")
	gAccOps         = obs.NewCounter("funcsim.mvm.acc_ops")
	gMVMRows        = obs.NewCounter("funcsim.mvm.rows")
	gSkippedPasses  = obs.NewCounter("funcsim.mvm.skipped_passes")
)

// ObserveDivergence publishes one emulator-vs-circuit relative-RMSE
// measurement into the fidelity pipeline (funcsim.probe.rrmse). The
// online probe uses it per shadow-solve; offline harnesses (the Fig. 5
// experiment) record their divergence numbers through the same metric
// so operators read one catalog entry either way.
func ObserveDivergence(rrmse float64) { mProbeRRMSE.Observe(rrmse) }

// ObserveNF publishes circuit-solved non-ideality factors (Fig. 2's
// NF = (Iideal−Inonideal)/Iideal, per column) into the fidelity
// pipeline: positive values land in funcsim.probe.nf_pos, negative
// values as magnitudes in funcsim.probe.nf_neg; exact zeros (dark
// columns) are skipped.
func ObserveNF(nf []float64) {
	for _, v := range nf {
		switch {
		case v > 0:
			mProbeNFPos.Observe(v)
		case v < 0:
			mProbeNFNeg.Observe(-v)
		}
	}
}

// recordMVM folds one completed MVM's event counts into the global
// registry. Callers gate on obs.Enabled.
func recordMVM(total Stats) {
	gCrossbarOps.Add(total.CrossbarOps)
	gADCConversions.Add(total.ADCConversions)
	gShiftAdds.Add(total.ShiftAdds)
	gAccOps.Add(total.AccOps)
	gMVMRows.Add(total.MVMRows)
	gSkippedPasses.Add(total.SkippedPasses)
}
