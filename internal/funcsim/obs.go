package funcsim

import "geniex/internal/obs"

// Metric handles for the MVM tile pipeline, registered once in the
// process-wide obs registry. The full catalog is documented in
// DESIGN.md §7.
var (
	mMVMCalls       = obs.NewCounter("funcsim.mvm.calls")
	mMVMLatency     = obs.NewHistogram("funcsim.mvm.latency_seconds", obs.LatencyBuckets)
	mTileLatency    = obs.NewHistogram("funcsim.tile.latency_seconds", obs.LatencyBuckets)
	mQueueDepth     = obs.NewGauge("funcsim.pool.queue_depth")
	mActiveWorkers  = obs.NewGauge("funcsim.pool.active_workers")
	mFreelistHits   = obs.NewCounter("funcsim.run.freelist_hits")
	mFreelistMisses = obs.NewCounter("funcsim.run.freelist_misses")
	mDegradedItems  = obs.NewCounter("funcsim.circuit.degraded_items")
	mLayerLatency   = obs.NewHistogram("funcsim.forward.layer_seconds", obs.LatencyBuckets)
	mForwardLatency = obs.NewHistogram("funcsim.forward.latency_seconds", obs.LatencyBuckets)

	// Process-wide mirrors of the per-Matrix hardware-event counters:
	// every completed MVM folds its per-call Stats here as well as into
	// its matrix, so a metrics snapshot sees total architectural work
	// without walking matrices.
	gCrossbarOps    = obs.NewCounter("funcsim.mvm.crossbar_ops")
	gADCConversions = obs.NewCounter("funcsim.mvm.adc_conversions")
	gShiftAdds      = obs.NewCounter("funcsim.mvm.shift_adds")
	gAccOps         = obs.NewCounter("funcsim.mvm.acc_ops")
	gMVMRows        = obs.NewCounter("funcsim.mvm.rows")
	gSkippedPasses  = obs.NewCounter("funcsim.mvm.skipped_passes")
)

// recordMVM folds one completed MVM's event counts into the global
// registry. Callers gate on obs.Enabled.
func recordMVM(total Stats) {
	gCrossbarOps.Add(total.CrossbarOps)
	gADCConversions.Add(total.ADCConversions)
	gShiftAdds.Add(total.ShiftAdds)
	gAccOps.Add(total.AccOps)
	gMVMRows.Add(total.MVMRows)
	gSkippedPasses.Add(total.SkippedPasses)
}
