package funcsim

import (
	"fmt"

	"geniex/internal/obs"
)

// Stats counts the hardware events a lowered network generates. The
// counters correspond to the architectural quantities an accelerator
// cost model needs: every crossbar activation (one input stream
// applied to one tile-slice crossbar), every ADC conversion, and every
// digital merge operation.
type Stats struct {
	// CrossbarOps is the number of crossbar activations: one stream
	// vector applied to one (tile, slice, sign) crossbar.
	CrossbarOps int64
	// ADCConversions is the number of analog-to-digital conversions
	// (one per active column per crossbar activation).
	ADCConversions int64
	// ShiftAdds is the number of digital shift-and-add merge
	// operations.
	ShiftAdds int64
	// AccOps is the number of saturating accumulator updates.
	AccOps int64
	// MVMRows is the number of logical MVM input vectors processed.
	MVMRows int64
	// SkippedPasses counts differential passes skipped because the
	// operand block was entirely zero — a direct measure of how much
	// work sparsity saves.
	SkippedPasses int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CrossbarOps += other.CrossbarOps
	s.ADCConversions += other.ADCConversions
	s.ShiftAdds += other.ShiftAdds
	s.AccOps += other.AccOps
	s.MVMRows += other.MVMRows
	s.SkippedPasses += other.SkippedPasses
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("xbar-ops=%d adc=%d shift-adds=%d acc-ops=%d mvm-rows=%d skipped=%d",
		s.CrossbarOps, s.ADCConversions, s.ShiftAdds, s.AccOps, s.MVMRows, s.SkippedPasses)
}

// matrixStats is the engine-internal form of Stats, built on the obs
// counter primitive: MVMs run tile tasks on many goroutines and may
// themselves execute concurrently, so the shared counters are atomic
// and read as a snapshot. The parallel pipeline folds each task's
// local Stats once per MVM, so the atomic traffic is per-call, not
// per-op. These counters are per-Matrix (unregistered); MVMInto also
// mirrors every fold into the process-wide registry (see obs.go).
type matrixStats struct {
	crossbarOps, adcConversions, shiftAdds, accOps, mvmRows, skippedPasses obs.Counter
}

func (s *matrixStats) add(d Stats) {
	s.crossbarOps.Add(d.CrossbarOps)
	s.adcConversions.Add(d.ADCConversions)
	s.shiftAdds.Add(d.ShiftAdds)
	s.accOps.Add(d.AccOps)
	s.mvmRows.Add(d.MVMRows)
	s.skippedPasses.Add(d.SkippedPasses)
}

func (s *matrixStats) snapshot() Stats {
	return Stats{
		CrossbarOps:    s.crossbarOps.Load(),
		ADCConversions: s.adcConversions.Load(),
		ShiftAdds:      s.shiftAdds.Load(),
		AccOps:         s.accOps.Load(),
		MVMRows:        s.mvmRows.Load(),
		SkippedPasses:  s.skippedPasses.Load(),
	}
}

func (s *matrixStats) swap() Stats {
	return Stats{
		CrossbarOps:    s.crossbarOps.Swap(),
		ADCConversions: s.adcConversions.Swap(),
		ShiftAdds:      s.shiftAdds.Swap(),
		AccOps:         s.accOps.Swap(),
		MVMRows:        s.mvmRows.Swap(),
		SkippedPasses:  s.skippedPasses.Swap(),
	}
}

// Stats returns a consistent snapshot of the counters accumulated by
// this matrix since creation (or the last ResetStats). It is
// read-only: reading never clears. Counters are folded once per
// completed MVM, so a snapshot taken while MVMs are in flight reflects
// only finished calls — it never shows a torn, partially merged
// update.
func (m *Matrix) Stats() Stats { return m.stats.snapshot() }

// ResetStats atomically clears the matrix's counters and returns the
// counts it cleared — the repo-wide reset convention (obs.Registry,
// SolverHealth): reads snapshot, Reset* swaps-and-returns. It does not
// touch the process-wide registry mirrors; those are cleared only by
// an explicit obs reset.
func (m *Matrix) ResetStats() Stats { return m.stats.swap() }

// Stats aggregates the counters of every lowered MVM layer in the
// network.
func (s *Sim) Stats() Stats {
	var total Stats
	for _, l := range s.layers {
		switch v := l.(type) {
		case *simConv:
			total.Add(v.mat.Stats())
		case *simLinear:
			total.Add(v.mat.Stats())
		case *simResidual:
			total.Add(v.body.Stats())
		}
	}
	return total
}

// ResetStats atomically clears every lowered layer's counters and
// returns the aggregate counts it cleared, matching the repo-wide
// snapshot-and-clear reset convention (see Matrix.ResetStats).
func (s *Sim) ResetStats() Stats {
	var total Stats
	for _, l := range s.layers {
		switch v := l.(type) {
		case *simConv:
			total.Add(v.mat.ResetStats())
		case *simLinear:
			total.Add(v.mat.ResetStats())
		case *simResidual:
			total.Add(v.body.ResetStats())
		}
	}
	return total
}

// EnergyModel holds per-event energy and latency constants for the
// crossbar substrate. The defaults are representative of ISAAC/PUMA
// class designs at 32nm (order-of-magnitude; the experiments only use
// ratios between configurations, which are insensitive to the absolute
// calibration).
type EnergyModel struct {
	// CellReadEnergy is the energy to read one cell during an
	// activation (J); a crossbar activation costs Rows·Cols of these.
	CellReadEnergy float64
	// DriverEnergy is the per-row input driver (DAC) energy per
	// activation (J).
	DriverEnergy float64
	// ADCEnergyPerBit is the energy of one conversion divided by the
	// resolution (J/bit); conversion cost grows with ADC bits.
	ADCEnergyPerBit float64
	// ShiftAddEnergy and AccEnergy are digital per-op energies (J).
	ShiftAddEnergy, AccEnergy float64

	// CrossbarLatency is the analog settle + sense time of one
	// activation (s); ADCLatency the conversion time (s). Streams are
	// serialized, tiles and slices operate in parallel.
	CrossbarLatency, ADCLatency float64
}

// DefaultEnergyModel returns the representative constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		CellReadEnergy:  0.5e-15, // 0.5 fJ/cell/read
		DriverEnergy:    1e-12,   // 1 pJ/row drive
		ADCEnergyPerBit: 0.2e-12, // 0.2 pJ/bit conversion
		ShiftAddEnergy:  50e-15,
		AccEnergy:       50e-15,
		CrossbarLatency: 100e-9,
		ADCLatency:      10e-9,
	}
}

// Report is the cost estimate of a workload.
type Report struct {
	Energy  float64 // joules
	Latency float64 // seconds, stream-serialized critical path
}

// Estimate converts event counters into energy and latency for a given
// simulator configuration.
func (em EnergyModel) Estimate(s Stats, cfg Config) Report {
	cells := float64(cfg.Xbar.Rows * cfg.Xbar.Cols)
	rows := float64(cfg.Xbar.Rows)
	var r Report
	r.Energy = float64(s.CrossbarOps)*(em.CellReadEnergy*cells+em.DriverEnergy*rows) +
		float64(s.ADCConversions)*em.ADCEnergyPerBit*float64(cfg.ADCBits) +
		float64(s.ShiftAdds)*em.ShiftAddEnergy +
		float64(s.AccOps)*em.AccEnergy
	// Latency: tiles/slices run in parallel, streams serialize. Each
	// MVM row therefore pays streamDigits sequential activation +
	// conversion steps per differential input pass (≤2 passes).
	stepsPerRow := float64(cfg.streamDigits()) * 2
	r.Latency = float64(s.MVMRows) * stepsPerRow * (em.CrossbarLatency + em.ADCLatency)
	return r
}
