package funcsim

import (
	"errors"
	"strings"
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// faultedWorkload builds a small circuit-tile workload with a fault
// plan that makes the chosen batch items unsolvable.
func faultedWorkload(t *testing.T, items []int) (xbar.Config, *linalg.Dense, *linalg.Dense) {
	t.Helper()
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	r := linalg.NewRNG(40)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	v := linalg.NewDense(4, cfg.Rows)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * r.Float64()
	}
	return cfg.WithFaults(&xbar.FaultPlan{FailAttempts: 3, Items: items}), g, v
}

// A strict (non-degraded) circuit tile must fail the whole MVM when a
// batch item cannot be solved, with an error callers can classify via
// the convergence sentinels.
func TestCircuitTileSurfacesSolverFailure(t *testing.T) {
	cfg, g, v := faultedWorkload(t, []int{1})
	tile, err := Circuit{Cfg: cfg}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tile.Currents(v)
	if err == nil {
		t.Fatal("expected the failed batch item to fail the MVM")
	}
	if !errors.Is(err, xbar.ErrNewtonDiverged) {
		t.Errorf("error %v does not match xbar.ErrNewtonDiverged", err)
	}
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("error %v does not match linalg.ErrNoConvergence", err)
	}
}

// In degraded mode the tile must keep going: failed items get zero
// currents, surviving items are untouched, and the shared health
// collector records the damage.
func TestCircuitTileDegradedModeContinues(t *testing.T) {
	cfg, g, v := faultedWorkload(t, []int{1})
	health := &SolverHealth{}
	tile, err := Circuit{Cfg: cfg, Degraded: true, Health: health}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tile.Currents(v)
	if err != nil {
		t.Fatalf("degraded tile failed: %v", err)
	}

	cleanTile, err := Circuit{Cfg: cfg.WithFaults(nil)}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cleanTile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < v.Rows; b++ {
		for j := 0; j < out.Cols; j++ {
			if b == 1 {
				if out.At(b, j) != 0 {
					t.Errorf("failed item row %d col %d: non-zero current %v", b, j, out.At(b, j))
				}
			} else if out.At(b, j) != clean.At(b, j) {
				t.Errorf("surviving item %d col %d: %v != clean %v", b, j, out.At(b, j), clean.At(b, j))
			}
		}
	}

	c := health.Counts()
	if c.Batches != 1 || c.Items != int64(v.Rows) {
		t.Errorf("health = %+v, want 1 batch of %d items", c, v.Rows)
	}
	if c.Failed != 1 {
		t.Errorf("health.Failed = %d, want 1", c.Failed)
	}
	if !strings.Contains(c.String(), "1 failed") {
		t.Errorf("health summary %q does not mention the failure", c.String())
	}
}

// A solver failure inside a lowered matrix must propagate through the
// full engine pipeline (tiling, bit slicing, differential passes) as
// an error — not as silently wrong activations.
func TestEngineSurfacesSolverFailure(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar = cfg.Xbar.WithFaults(&xbar.FaultPlan{FailAttempts: 3})
	eng, err := NewEngine(cfg, Circuit{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	r := linalg.NewRNG(41)
	m, err := eng.Lower(randMatrix(r, 8, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.MVM(randMatrix(r, 2, 8, 4))
	if err == nil {
		t.Fatal("expected the engine MVM to surface the solver failure")
	}
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("error %v does not match linalg.ErrNoConvergence", err)
	}
}

// The same pipeline in degraded mode must complete the MVM and account
// for every failed item in the health counters.
func TestEngineDegradedModeCompletes(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Xbar = cfg.Xbar.WithFaults(&xbar.FaultPlan{FailAttempts: 3})
	health := &SolverHealth{}
	eng, err := NewEngine(cfg, Circuit{Cfg: cfg.Xbar, Degraded: true, Health: health})
	if err != nil {
		t.Fatal(err)
	}
	r := linalg.NewRNG(42)
	m, err := eng.Lower(randMatrix(r, 8, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.MVM(randMatrix(r, 2, 8, 4))
	if err != nil {
		t.Fatalf("degraded engine MVM failed: %v", err)
	}
	if out.Rows != 2 || out.Cols != 8 {
		t.Fatalf("output is %dx%d, want 2x8", out.Rows, out.Cols)
	}
	c := health.Counts()
	if c.Batches == 0 || c.Items == 0 {
		t.Fatalf("health recorded nothing: %+v", c)
	}
	if c.Failed != c.Items {
		t.Errorf("health = %+v, want every item failed under the all-item fault plan", c)
	}
}
