package funcsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
	"geniex/internal/xbar"
)

// DefaultProbeQueue is the bounded depth of the probe's background
// queue: enough to ride out a burst of sampled tiles while one circuit
// solve is in flight, small enough that a stalled solver costs bounded
// memory and everything beyond it is dropped (and counted) instead of
// queued.
const DefaultProbeQueue = 64

// probeBaselineSolves is how many successful shadow-solves the probe
// averages into its recorded baseline before the drift gauge arms.
const probeBaselineSolves = 16

// probeDutyFactor bounds the shadow-solver's CPU share: after a solve
// that took d, the probe refuses new samples for probeDutyFactor×d, so
// the worker goroutine is busy at most 1/(1+probeDutyFactor) ≈ 3% of
// the time. Circuit solves cost orders of magnitude more than the tile
// MVMs they check, so without this bound a saturating workload would
// keep the worker at 100% of a core and dent MVM throughput on small
// machines; with it, probing costs the hot path one atomic add per
// tile task regardless of how expensive the solves are.
const probeDutyFactor = 32

// Probe is the online fidelity monitor of the functional simulator: at
// a configured 1-in-N rate it samples a live tile MVM — the tile's
// programmed conductances, one drive-voltage row, and the analog
// model's output currents — and shadow-solves the same inputs through
// the xbar circuit solver on a background goroutine. Each solve
// publishes, through the process-wide obs registry:
//
//   - funcsim.probe.rrmse — relative RMSE of the model's currents
//     against the circuit solver's (the online analogue of the paper's
//     Fig. 5 divergence metric),
//   - funcsim.probe.nf_{pos,neg} — the circuit-solved non-ideality
//     factor distribution, split by sign per Fig. 2's definition,
//   - funcsim.probe.{rrmse_ewma,baseline,drift}_micro — a smoothed
//     divergence level, the baseline recorded from the first solves,
//     and their difference: the drift gauge an operator alerts on.
//
// Cost contract: the MVM hot path pays one nil check per tile task,
// one atomic add per sampled decision, and — for the 1-in-N sampled
// tasks — two row copies into pooled buffers. Nothing on the hot path
// blocks: samples arriving inside the worker's duty-cycle cool-down
// are refused (funcsim.probe.paced; see probeDutyFactor), and when
// the bounded queue (or its job freelist) is exhausted the sample is
// dropped and funcsim.probe.dropped incremented. All solver work
// happens on the probe's own goroutine.
type Probe struct {
	cfg   xbar.Config
	rate  int64
	ticks atomic.Int64

	// start anchors the pacing clock; nextOK is the earliest offset (in
	// nanoseconds since start) at which the next sample is accepted,
	// advanced by the worker after every solve (see probeDutyFactor).
	start  time.Time
	nextOK atomic.Int64

	jobs    chan *probeJob
	pending atomic.Int64 // queued + in-flight jobs

	freeMu sync.Mutex
	free   []*probeJob

	closeOnce sync.Once
	done      chan struct{}

	// Per-probe outcome counters (the registry metrics aggregate all
	// probes in the process; these back Stats for one engine). paced
	// counts samples refused by the duty-cycle bound, dropped those
	// shed at a full queue or empty freelist.
	sampled, paced, dropped, solved, failures obs.Counter

	// mu guards the aggregate divergence state below; only the worker
	// writes, Stats and SetBaseline read/write under the same lock.
	mu           sync.Mutex
	ewma         float64
	haveEWMA     bool
	baseline     float64
	haveBaseline bool
	baselineSum  float64
	baselineN    int
	tiles        map[probeTileKey]*probeTileAgg

	// solveHook, when non-nil, replaces the circuit shadow-solve; the
	// tests use it to stall the worker deterministically. Stored
	// atomically so tests can install and remove it while the worker
	// runs (setSolveHook).
	solveHook atomic.Pointer[func(*probeJob)]

	// tap, when set, receives every successful shadow-solve (see
	// SetTap). Stored atomically so SetTap is safe while the worker
	// runs.
	tap atomic.Pointer[ProbeTap]

	// onSample, when set, receives every successful shadow-solve's
	// rRMSE (see OnSample). It is a separate, lighter hook than the
	// tap: the tap is the calibration feed (single consumer, claimed
	// by the calibrator), while onSample exists for fidelity SLO
	// accounting and can coexist with any tap.
	onSample atomic.Pointer[func(rrmse float64)]
}

// ProbeTap observes one successful shadow-solve: the sampled drive
// voltages, the tile's programmed conductances, the circuit-solved
// output currents, and the model-vs-circuit relative RMSE. The tap
// runs on the probe's worker goroutine between solves — it must be
// fast and must not block. v and circuit are reused buffers owned by
// the probe: a tap that retains them must copy. g is immutable after
// lowering and survives model hot-swaps, so referencing it is safe.
//
// This is the calibration feed: every tap invocation is exactly one
// GENIEx training pair (V, G) → I_circuit, labelled by the same
// solver that labels offline datasets.
type ProbeTap func(v []float64, g *linalg.Dense, circuit []float64, rrmse float64)

// SetTap installs (or, with nil, removes) the probe's shadow-solve
// tap. Safe to call concurrently with a running probe; the new tap
// takes effect at the next solve.
func (p *Probe) SetTap(t ProbeTap) {
	if t == nil {
		p.tap.Store(nil)
		return
	}
	p.tap.Store(&t)
}

// OnSample installs (or, with nil, removes) a per-sample rRMSE
// listener, called on the probe's worker goroutine after every
// successful shadow-solve — the feed for windowed fidelity SLO
// tracking (obs.SLO). Unlike the single calibration tap, OnSample is
// independent of SetTap, so an SLO tracker and a calibrator can
// observe the same probe. The listener must be fast and must not
// block.
func (p *Probe) OnSample(f func(rrmse float64)) {
	if f == nil {
		p.onSample.Store(nil)
		return
	}
	p.onSample.Store(&f)
}

// probeJob carries one sampled tile evaluation to the worker. The
// conductance matrix is referenced (tile conductances are immutable
// after lowering); voltages and model currents are copied into pooled
// buffers so the MVM scratch they came from can be reused immediately.
type probeJob struct {
	mat, tr, tc, slice int
	g                  *linalg.Dense
	v, model           []float64
}

// probeTileKey identifies a (matrix, tileRow, tileCol) block; matrix
// IDs are per-engine ordinals assigned at Lower time.
type probeTileKey struct{ mat, tr, tc int }

// probeTileAgg accumulates per-tile divergence: enough to answer
// "which tile drifted" without keeping raw samples.
type probeTileAgg struct {
	n        int
	sumRRMSE float64
	sumNF    float64
	posNF    int
	negNF    int
}

// ewmaAlpha smooths the rrmse level: ~0.1 weighs the last ~20 probes.
const ewmaAlpha = 0.1

func newProbe(cfg xbar.Config, rate, queue int) *Probe {
	if queue < 1 {
		queue = DefaultProbeQueue
	}
	p := &Probe{
		cfg:   cfg,
		rate:  int64(rate),
		start: time.Now(),
		jobs:  make(chan *probeJob, queue),
		done:  make(chan struct{}),
		tiles: map[probeTileKey]*probeTileAgg{},
	}
	// The freelist is the drop valve: queue-cap jobs plus one in
	// flight. An empty freelist means the pipeline is saturated, so
	// offer drops without allocating or blocking.
	p.free = make([]*probeJob, queue+1)
	for i := range p.free {
		p.free[i] = &probeJob{}
	}
	go p.loop()
	return p
}

// tick decides whether this tile task is sampled: one atomic add, true
// every rate-th call.
func (p *Probe) tick() bool {
	return p.ticks.Add(1)%p.rate == 0
}

// offer captures one sampled tile evaluation and enqueues it for
// shadow-solving. blk is the quantized input block the tile just
// consumed (offer picks its first active stream row); curr holds the
// model's output currents for the same rows. It never blocks: with no
// free job or no queue slot the sample is dropped and counted.
func (p *Probe) offer(mat, tr, tc, slice int, g *linalg.Dense, blk *inputBlock, curr *linalg.Dense) {
	row := -1
	for i, ds := range blk.digitSum {
		if ds != 0 {
			row = i
			break
		}
	}
	if row < 0 {
		return // all-zero block: nothing the circuit could disagree on
	}
	p.sampled.Inc()
	mProbeSampled.Inc()

	// Duty-cycle bound: refuse the sample while inside the cool-down
	// the worker set after its last solve (time.Since is monotonic and
	// allocation-free; this runs only on the 1-in-rate sampled tasks).
	if time.Since(p.start).Nanoseconds() < p.nextOK.Load() {
		p.paced.Inc()
		mProbePaced.Inc()
		return
	}

	p.freeMu.Lock()
	var j *probeJob
	if n := len(p.free); n > 0 {
		j = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.freeMu.Unlock()
	if j == nil {
		p.dropped.Inc()
		mProbeDropped.Inc()
		return
	}

	j.mat, j.tr, j.tc, j.slice = mat, tr, tc, slice
	j.g = g
	j.v = growFloats(j.v, g.Rows)
	copy(j.v, blk.vb.Row(row))
	j.model = growFloats(j.model, g.Cols)
	copy(j.model, curr.Row(row))

	select {
	case p.jobs <- j:
		p.pending.Add(1)
	default:
		p.putJob(j)
		p.dropped.Inc()
		mProbeDropped.Inc()
	}
}

func (p *Probe) putJob(j *probeJob) {
	j.g = nil
	p.freeMu.Lock()
	p.free = append(p.free, j)
	p.freeMu.Unlock()
}

// loop is the probe's worker: it owns one reusable Crossbar instance
// and drains the queue until Close.
func (p *Probe) loop() {
	var xb *xbar.Crossbar
	for {
		select {
		case <-p.done:
			return
		case j := <-p.jobs:
			t0 := time.Now()
			p.solveJob(&xb, j)
			// Cool down for probeDutyFactor× the time this solve took,
			// bounding the worker's CPU share (see probeDutyFactor).
			busy := time.Since(t0).Nanoseconds()
			p.nextOK.Store(time.Since(p.start).Nanoseconds() + probeDutyFactor*busy)
			p.putJob(j)
			p.pending.Add(-1)
		}
	}
}

// setSolveHook installs (or, with nil, removes) the test-only solve
// replacement; takes effect at the worker's next job.
func (p *Probe) setSolveHook(h func(*probeJob)) {
	if h == nil {
		p.solveHook.Store(nil)
		return
	}
	p.solveHook.Store(&h)
}

func (p *Probe) solveJob(xb **xbar.Crossbar, j *probeJob) {
	if h := p.solveHook.Load(); h != nil {
		(*h)(j)
		return
	}
	start := obs.Now()
	if *xb == nil {
		n, err := xbar.New(p.cfg)
		if err != nil {
			p.failures.Inc()
			mProbeFailures.Inc()
			return
		}
		*xb = n
	}
	if err := (*xb).Program(j.g); err != nil {
		p.failures.Inc()
		mProbeFailures.Inc()
		return
	}
	sol, err := (*xb).Solve(j.v)
	if err != nil {
		p.failures.Inc()
		mProbeFailures.Inc()
		return
	}

	ideal := xbar.IdealCurrents(j.v, j.g)
	nf := xbar.NF(ideal, sol.Currents, p.cfg)
	rr := relRMSE(j.model, sol.Currents, p.cfg)

	p.solved.Inc()
	mProbeSolved.Inc()
	mProbeLatency.ObserveSince(start)
	ObserveDivergence(rr)
	ObserveNF(nf)
	p.fold(j, rr, nf)
	if f := p.onSample.Load(); f != nil {
		(*f)(rr)
	}
	if t := p.tap.Load(); t != nil {
		(*t)(j.v, j.g, sol.Currents, rr)
	}
}

// fold merges one solved probe into the EWMA / baseline / drift state
// and the per-tile aggregates, then republishes the gauges.
func (p *Probe) fold(j *probeJob, rr float64, nf []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveEWMA {
		p.ewma += ewmaAlpha * (rr - p.ewma)
	} else {
		p.ewma, p.haveEWMA = rr, true
	}
	if !p.haveBaseline {
		p.baselineSum += rr
		p.baselineN++
		if p.baselineN >= probeBaselineSolves {
			p.baseline = p.baselineSum / float64(p.baselineN)
			p.haveBaseline = true
			mProbeBaseline.Set(int64(p.baseline * 1e6))
		}
	}
	mProbeEWMA.Set(int64(p.ewma * 1e6))
	if p.haveBaseline {
		mProbeDrift.Set(int64((p.ewma - p.baseline) * 1e6))
	}

	key := probeTileKey{j.mat, j.tr, j.tc}
	agg := p.tiles[key]
	if agg == nil {
		agg = &probeTileAgg{}
		p.tiles[key] = agg
	}
	agg.n++
	agg.sumRRMSE += rr
	for _, v := range nf {
		agg.sumNF += v
		switch {
		case v > 0:
			agg.posNF++
		case v < 0:
			agg.negNF++
		}
	}
}

// SetBaseline records an explicit divergence baseline (e.g. replayed
// from a previous healthy run), overriding the auto-recorded one; the
// drift gauge reports EWMA − baseline from the next solve on.
func (p *Probe) SetBaseline(rrmse float64) {
	p.mu.Lock()
	p.baseline, p.haveBaseline = rrmse, true
	p.mu.Unlock()
	mProbeBaseline.Set(int64(rrmse * 1e6))
}

// Drain blocks until every queued or in-flight probe has completed, or
// the timeout elapses; it reports whether the queue drained. Use it
// before reading final stats — the probe is asynchronous by design.
func (p *Probe) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for p.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Close stops the probe's worker goroutine. Safe to call more than
// once; queued jobs that have not been solved are discarded. Sampling
// calls arriving after Close drop (the queue is no longer drained).
func (p *Probe) Close() {
	p.closeOnce.Do(func() { close(p.done) })
}

// ProbeTileStats summarizes the solved probes of one tile block.
type ProbeTileStats struct {
	// Matrix is the engine-assigned ordinal of the lowered matrix the
	// tile belongs to (in lowering order); TileRow/TileCol locate the
	// block within it.
	Matrix, TileRow, TileCol int
	// Probes counts shadow-solves folded into this entry.
	Probes int
	// MeanRRMSE is the mean model-vs-circuit relative RMSE.
	MeanRRMSE float64
	// MeanNF is the mean circuit-solved non-ideality factor; PosNF and
	// NegNF count columns by NF sign (Fig. 2's distributions).
	MeanNF       float64
	PosNF, NegNF int
}

// ProbeStats is a point-in-time view of the probe.
type ProbeStats struct {
	// Sampled counts sampling decisions; Paced the samples refused by
	// the duty-cycle bound; Dropped the samples shed at a full queue;
	// Solved and Failures the shadow-solve outcomes.
	Sampled, Paced, Dropped, Solved, Failures int64
	// RRMSEEWMA is the smoothed divergence level; Baseline the
	// recorded reference (valid when BaselineRecorded); Drift their
	// difference.
	RRMSEEWMA, Baseline, Drift float64
	BaselineRecorded           bool
	// Tiles lists per-tile aggregates sorted by (Matrix, TileRow,
	// TileCol).
	Tiles []ProbeTileStats
}

// Stats returns a read-only snapshot of the probe's counters and
// divergence aggregates. Like every Stats accessor in the repo it
// never clears anything.
func (p *Probe) Stats() ProbeStats {
	s := ProbeStats{
		Sampled:  p.sampled.Load(),
		Paced:    p.paced.Load(),
		Dropped:  p.dropped.Load(),
		Solved:   p.solved.Load(),
		Failures: p.failures.Load(),
	}
	p.mu.Lock()
	s.RRMSEEWMA = p.ewma
	s.Baseline = p.baseline
	s.BaselineRecorded = p.haveBaseline
	if p.haveBaseline {
		s.Drift = p.ewma - p.baseline
	}
	for key, agg := range p.tiles {
		ts := ProbeTileStats{
			Matrix: key.mat, TileRow: key.tr, TileCol: key.tc,
			Probes: agg.n,
			PosNF:  agg.posNF, NegNF: agg.negNF,
		}
		if agg.n > 0 {
			ts.MeanRRMSE = agg.sumRRMSE / float64(agg.n)
			cols := float64(agg.n * p.cfg.Cols)
			ts.MeanNF = agg.sumNF / cols
		}
		s.Tiles = append(s.Tiles, ts)
	}
	p.mu.Unlock()
	sort.Slice(s.Tiles, func(i, j int) bool {
		a, b := s.Tiles[i], s.Tiles[j]
		if a.Matrix != b.Matrix {
			return a.Matrix < b.Matrix
		}
		if a.TileRow != b.TileRow {
			return a.TileRow < b.TileRow
		}
		return a.TileCol < b.TileCol
	})
	return s
}

// String summarizes the probe state in one line.
func (s ProbeStats) String() string {
	drift := "baseline pending"
	if s.BaselineRecorded {
		drift = fmt.Sprintf("baseline %.4g, drift %+.4g", s.Baseline, s.Drift)
	}
	return fmt.Sprintf("fidelity probe: %d sampled (%d paced, %d dropped), %d solved, %d failures, rrmse ewma %.4g (%s), %d tiles observed",
		s.Sampled, s.Paced, s.Dropped, s.Solved, s.Failures, s.RRMSEEWMA, drift, len(s.Tiles))
}

// relRMSE is the probe's divergence metric: the RMSE between the
// model's and the circuit's column currents, normalized by the RMS of
// the circuit currents (floored at a fraction of the design point's
// full-scale current so dark tiles cannot blow the ratio up).
func relRMSE(model, circuit []float64, cfg xbar.Config) float64 {
	if len(model) == 0 {
		return 0
	}
	var num, den float64
	for i := range model {
		d := model[i] - circuit[i]
		num += d * d
		den += circuit[i] * circuit[i]
	}
	n := float64(len(model))
	floor := xbar.CurrentFloor * float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
	rms := math.Sqrt(den / n)
	if rms < floor {
		rms = floor
	}
	return math.Sqrt(num/n) / rms
}

// growFloats returns s resized to n elements, reusing its backing
// array when capacity allows. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
