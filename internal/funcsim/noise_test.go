package funcsim

import (
	"math"
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func noiseFullScale(cfg xbar.Config) float64 {
	return float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
}

func TestNoisyZeroSigmaIsTransparent(t *testing.T) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	n := &Noisy{Inner: Ideal{}, Sigma: 0, FullScale: noiseFullScale(cfg), Seed: 1}
	r := linalg.NewRNG(2)
	g := linalg.NewDense(8, 8)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	tile, err := n.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDense(3, 8)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * r.Float64()
	}
	got, err := tile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.MatMul(v, g)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("zero-sigma noise changed currents")
		}
	}
}

func TestNoisyPerturbationStatistics(t *testing.T) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	full := noiseFullScale(cfg)
	n := &Noisy{Inner: Ideal{}, Sigma: 0.01, FullScale: full, Seed: 3}
	r := linalg.NewRNG(4)
	g := linalg.NewDense(8, 8)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(0.5 + 0.5*r.Float64())
	}
	tile, err := n.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDense(500, 8)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * (0.5 + 0.5*r.Float64())
	}
	got, err := tile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.MatMul(v, g)
	var sum, sq float64
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		sum += d
		sq += d * d
	}
	nSamples := float64(len(got.Data))
	mean := sum / nSamples
	std := math.Sqrt(sq/nSamples - mean*mean)
	if math.Abs(mean) > 0.002*full {
		t.Errorf("noise mean %v too large", mean/full)
	}
	if math.Abs(std-0.01*full)/(0.01*full) > 0.15 {
		t.Errorf("noise std %v, want ~%v", std, 0.01*full)
	}
}

func TestNoisyDeterministicAcrossRuns(t *testing.T) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	run := func() []float64 {
		n := &Noisy{Inner: Ideal{}, Sigma: 0.05, FullScale: noiseFullScale(cfg), Seed: 7}
		r := linalg.NewRNG(8)
		g := linalg.NewDense(8, 8)
		for i := range g.Data {
			g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
		}
		tile, err := n.NewTile(g)
		if err != nil {
			t.Fatal(err)
		}
		v := linalg.NewDense(4, 8)
		for i := range v.Data {
			v.Data[i] = cfg.Vsupply * r.Float64()
		}
		out, err := tile.Currents(v)
		if err != nil {
			t.Fatal(err)
		}
		return out.Data
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("noise not reproducible across identical runs")
		}
	}
}

func TestNoisyValidation(t *testing.T) {
	n := &Noisy{Inner: Ideal{}, Sigma: -1, FullScale: 1}
	if _, err := n.NewTile(linalg.NewDense(2, 2)); err == nil {
		t.Error("expected error for negative sigma")
	}
	n = &Noisy{Inner: Ideal{}, Sigma: 0.1}
	if _, err := n.NewTile(linalg.NewDense(2, 2)); err == nil {
		t.Error("expected error for missing full scale")
	}
}

// Accuracy through the pipeline must degrade monotonically-ish with
// read noise: heavy noise must hurt more than no noise.
func TestNoiseDegradesAccuracy(t *testing.T) {
	r := linalg.NewRNG(9)
	net := buildTinyCNN(r)
	for i := 0; i < 10; i++ {
		net.Forward(randMatrix(r, 8, 36, 1), true)
	}
	x := randMatrix(r, 4, 36, 1)
	want := net.Forward(x, false)
	cfg := exactConfig(8, 8)
	rmseAt := func(sigma float64) float64 {
		eng, err := NewEngine(cfg, &Noisy{
			Inner: Ideal{}, Sigma: sigma,
			FullScale: noiseFullScale(cfg.Xbar), Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return linalg.RMSE(got.Data, want.Data)
	}
	clean := rmseAt(0)
	noisy := rmseAt(0.05)
	if noisy <= clean {
		t.Errorf("read noise had no effect: %v vs %v", noisy, clean)
	}
}
