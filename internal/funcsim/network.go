package funcsim

import (
	"context"
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/obs"
)

// Sim is a trained network lowered onto the crossbar architecture:
// conv2d and linear layers execute as tiled bit-sliced MVMs
// (conv2d-mvm, linear-mvm in the paper's terms); pooling, activation
// and normalization run in the digital domain at full precision, as
// they would on an accelerator's vector units.
type Sim struct {
	eng    *Engine
	layers []simLayer

	// spanNames holds one precomputed trace-span name per layer, built
	// once at lowering time so Forward records spans without formatting
	// (and therefore without allocating) on the hot path.
	spanNames []string
}

type simLayer interface {
	forward(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error)
	describe() string
}

// Lower converts a trained network into its crossbar execution form.
// BatchNorm layers immediately following a Conv2D or Linear layer are
// folded into the preceding layer's weights before quantization, so
// their scale/shift costs nothing at inference — standard practice for
// fixed-point deployment.
func Lower(net *nn.Sequential, eng *Engine) (*Sim, error) {
	s := &Sim{eng: eng}
	if err := s.lowerInto(net); err != nil {
		return nil, err
	}
	s.initSpanNames()
	return s, nil
}

// initSpanNames precomputes per-layer trace-span names (recursing into
// residual bodies) after lowering has settled the layer list.
func (s *Sim) initSpanNames() {
	s.spanNames = make([]string, len(s.layers))
	for i, l := range s.layers {
		var kind string
		switch r := l.(type) {
		case *simConv:
			kind = "conv"
		case *simLinear:
			kind = "linear"
		case *simResidual:
			kind = "residual"
			r.body.initSpanNames()
		case *simAffine:
			kind = "affine"
		default:
			kind = "digital"
		}
		s.spanNames[i] = fmt.Sprintf("funcsim.layer.%02d.%s", i, kind)
	}
}

func (s *Sim) lowerInto(net *nn.Sequential) error {
	for i := 0; i < len(net.Layers); i++ {
		var followBN *nn.BatchNorm
		if i+1 < len(net.Layers) {
			if bn, ok := net.Layers[i+1].(*nn.BatchNorm); ok {
				switch net.Layers[i].(type) {
				case *nn.Conv2D, *nn.Linear:
					followBN = bn
				}
			}
		}
		switch l := net.Layers[i].(type) {
		case *nn.Conv2D:
			ml, err := s.lowerConv(l, followBN)
			if err != nil {
				return err
			}
			s.layers = append(s.layers, ml)
		case *nn.Linear:
			ml, err := s.lowerLinear(l, followBN)
			if err != nil {
				return err
			}
			s.layers = append(s.layers, ml)
		case *nn.Residual:
			body := &Sim{eng: s.eng}
			if err := body.lowerInto(l.Body); err != nil {
				return err
			}
			s.layers = append(s.layers, &simResidual{body: body})
		case *nn.Sequential:
			if err := s.lowerInto(l); err != nil {
				return err
			}
		case *nn.BatchNorm:
			// Reached only when the BatchNorm does not follow an MVM
			// layer (folded ones are skipped below): apply it as a
			// digital per-channel affine transform.
			scale, shift := l.FoldInto()
			s.layers = append(s.layers, &simAffine{c: l.C, spatial: l.Spatial, scale: scale, shift: shift})
		case *nn.ReLU, *nn.Flatten, *nn.MaxPool2D, *nn.GlobalAvgPool2D:
			s.layers = append(s.layers, &simDigital{layer: net.Layers[i]})
		default:
			return fmt.Errorf("funcsim: cannot lower layer of type %T", l)
		}
		if followBN != nil {
			i++ // consume the folded BatchNorm
		}
	}
	return nil
}

// lowerConv folds an optional BatchNorm into the conv weights and
// lowers the patch matrix.
func (s *Sim) lowerConv(c *nn.Conv2D, bn *nn.BatchNorm) (*simConv, error) {
	g := c.Geom
	w := c.Weight.W.Clone() // PatchSize×OutC
	bias := make([]float64, g.OutC)
	if c.UseBias {
		copy(bias, c.Bias.W.Data)
	}
	if bn != nil {
		if bn.C != g.OutC || bn.Spatial != g.OutH()*g.OutW() {
			return nil, fmt.Errorf("funcsim: BatchNorm (%d,%d) does not match conv output (%d,%d)",
				bn.C, bn.Spatial, g.OutC, g.OutH()*g.OutW())
		}
		scale, shift := bn.FoldInto()
		for oc := 0; oc < g.OutC; oc++ {
			for p := 0; p < w.Rows; p++ {
				w.Set(p, oc, w.At(p, oc)*scale[oc])
			}
			bias[oc] = bias[oc]*scale[oc] + shift[oc]
		}
	}
	lm, err := s.eng.Lower(w)
	if err != nil {
		return nil, err
	}
	return &simConv{geom: g, mat: lm, bias: bias}, nil
}

func (s *Sim) lowerLinear(l *nn.Linear, bn *nn.BatchNorm) (*simLinear, error) {
	w := l.Weight.W.Clone()
	bias := make([]float64, l.Out)
	if l.UseBias {
		copy(bias, l.Bias.W.Data)
	}
	if bn != nil {
		if bn.C != l.Out || bn.Spatial != 1 {
			return nil, fmt.Errorf("funcsim: BatchNorm (%d,%d) does not match linear output %d",
				bn.C, bn.Spatial, l.Out)
		}
		scale, shift := bn.FoldInto()
		for o := 0; o < l.Out; o++ {
			for i := 0; i < l.In; i++ {
				w.Set(i, o, w.At(i, o)*scale[o])
			}
			bias[o] = bias[o]*scale[o] + shift[o]
		}
	}
	lm, err := s.eng.Lower(w)
	if err != nil {
		return nil, err
	}
	return &simLinear{mat: lm, bias: bias}, nil
}

// Forward runs a batch through the lowered network. Per-layer and
// whole-pass timings land in the funcsim.forward.* histograms, and each
// layer emits a trace span named at lowering time (residual bodies are
// Sims themselves, so their layers and pass time are recorded too).
// Every call opens a "funcsim.forward" span (allocating a fresh trace
// ID, since no context carries one here) with the per-layer spans as
// its children, so a trace export (obs.WriteTrace) shows one inference
// as one parented tree.
func (s *Sim) Forward(x *linalg.Dense) (*linalg.Dense, error) {
	return s.forwardCtx(nil, x)
}

// ForwardContext is Forward with cooperative cancellation and trace
// propagation: the context is checked between layers and threaded down
// through MVMIntoContext into the circuit batch solver, so a revoked
// deadline stops analog work mid-solve rather than after the pass
// completes, and a TraceContext on ctx (injected by a request edge
// such as serve.Server) parents the whole pass under the caller's
// span. A nil ctx is identical to Forward.
func (s *Sim) ForwardContext(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	return s.forwardCtx(ctx, x)
}

// forwardCtx runs the pass under ctx's trace; residual bodies pass
// their layer's context, so their spans nest under the residual layer.
func (s *Sim) forwardCtx(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	start := obs.Now()
	ctx, span := obs.StartSpan(ctx, "funcsim.forward")
	// End via defer (and after the child below): spans must close on
	// error and cancellation paths too, or their already-recorded
	// children dangle parentless in trace exports.
	defer span.End()
	var err error
	for i, l := range s.layers {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("funcsim: forward cancelled at layer %d: %w", i, cerr)
		}
		layerStart := obs.Now()
		lctx := ctx
		var lspan obs.Span
		if i < len(s.spanNames) {
			lctx, lspan = obs.StartSpan(ctx, s.spanNames[i])
		}
		x, err = l.forward(lctx, x)
		lspan.End()
		if err != nil {
			return nil, err
		}
		mLayerLatency.ObserveSince(layerStart)
	}
	mForwardLatency.ObserveSince(start)
	return x, nil
}

// Describe returns a human-readable per-layer execution plan.
func (s *Sim) Describe() []string {
	var out []string
	for _, l := range s.layers {
		out = append(out, l.describe())
	}
	return out
}

// simConv executes conv2d-mvm: im2col (iterative-mvm), tiled bit-
// sliced MVM, digital bias, and layout restore.
type simConv struct {
	geom nn.ConvGeom
	mat  *Matrix
	bias []float64
}

func (c *simConv) forward(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	batch := x.Rows
	cols := nn.Im2Col(x, c.geom) // (b·oh·ow)×patch
	prod, err := c.mat.MVMContext(ctx, cols)
	if err != nil {
		return nil, err
	}
	g := c.geom
	spatial := g.OutH() * g.OutW()
	y := linalg.NewDense(batch, g.OutSize())
	for b := 0; b < batch; b++ {
		dst := y.Row(b)
		for sp := 0; sp < spatial; sp++ {
			src := prod.Row(b*spatial + sp)
			for oc := 0; oc < g.OutC; oc++ {
				dst[oc*spatial+sp] = src[oc] + c.bias[oc]
			}
		}
	}
	return y, nil
}

func (c *simConv) describe() string {
	tr, tc, sl := c.mat.Tiles()
	return fmt.Sprintf("conv2d-mvm %dx%dx%d k%d s%d p%d -> tiles %dx%d x %d slices",
		c.geom.InC, c.geom.InH, c.geom.InW, c.geom.Kernel, c.geom.Stride, c.geom.Pad, tr, tc, sl)
}

// simLinear executes linear-mvm.
type simLinear struct {
	mat  *Matrix
	bias []float64
}

func (l *simLinear) forward(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	y, err := l.mat.MVMContext(ctx, x)
	if err != nil {
		return nil, err
	}
	for b := 0; b < y.Rows; b++ {
		row := y.Row(b)
		for j := range row {
			row[j] += l.bias[j]
		}
	}
	return y, nil
}

func (l *simLinear) describe() string {
	tr, tc, sl := l.mat.Tiles()
	return fmt.Sprintf("linear-mvm %dx%d -> tiles %dx%d x %d slices", l.mat.In(), l.mat.Out(), tr, tc, sl)
}

// simDigital runs a stateless nn layer in the digital domain.
type simDigital struct {
	layer nn.Layer
}

func (d *simDigital) forward(_ context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	return d.layer.Forward(x, false), nil
}

func (d *simDigital) describe() string { return fmt.Sprintf("digital %T", d.layer) }

// simAffine applies a standalone (unfolded) BatchNorm as a per-channel
// affine transform.
type simAffine struct {
	c, spatial   int
	scale, shift []float64
}

func (a *simAffine) forward(_ context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	y := linalg.NewDense(x.Rows, x.Cols)
	for b := 0; b < x.Rows; b++ {
		in, out := x.Row(b), y.Row(b)
		for c := 0; c < a.c; c++ {
			for sp := 0; sp < a.spatial; sp++ {
				out[c*a.spatial+sp] = a.scale[c]*in[c*a.spatial+sp] + a.shift[c]
			}
		}
	}
	return y, nil
}

func (a *simAffine) describe() string { return fmt.Sprintf("affine %d channels", a.c) }

// simResidual replays a residual block: the body runs lowered, the
// skip is a digital add.
type simResidual struct {
	body *Sim
}

func (r *simResidual) forward(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	y, err := r.body.forwardCtx(ctx, x)
	if err != nil {
		return nil, err
	}
	if y.Rows != x.Rows || y.Cols != x.Cols {
		return nil, fmt.Errorf("funcsim: residual body changed shape")
	}
	out := y.Clone()
	linalg.Axpy(1, x.Data, out.Data)
	return out, nil
}

func (r *simResidual) describe() string {
	return fmt.Sprintf("residual { %d lowered layers }", len(r.body.layers))
}
