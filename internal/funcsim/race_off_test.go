//go:build !race

package funcsim

const raceDetectorEnabled = false
