//go:build race

package funcsim

// raceDetectorEnabled lets circuit-in-the-loop tests skip under the
// race detector, whose ~10× slowdown pushes them past the test
// timeout. The concurrency they exercise is covered by the faster
// batch-solver tests, which do run under -race.
const raceDetectorEnabled = true
