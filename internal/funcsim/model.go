// Package funcsim is the functional simulator of Section 5 of the
// paper: it executes DNN inference the way a crossbar accelerator
// would — convolutions unrolled into repeated MVMs (iterative-mvm),
// weight matrices partitioned onto fixed-size crossbars (tiling), and
// operands processed digit-serially (bit-slicing into input streams
// and weight slices) with ADC quantization and shift-and-add merging.
//
// The analog behaviour of each crossbar is pluggable through the Model
// interface; the package ships four implementations matching the
// paper's simulation modes:
//
//   - Ideal: exact analog MVM (the "Ideal FxP" baseline),
//   - Analytical: linear parasitic distortion via a precomputed
//     distortion matrix (the paper's baseline model),
//   - GENIEx: the trained neural surrogate from package core,
//   - Circuit: the full non-linear solver (HSPICE stand-in; slow,
//     used for validation).
package funcsim

import (
	"context"
	"fmt"
	"sync"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/obs"
	"geniex/internal/xbar"
)

// Model produces per-tile analog MVM evaluators. NewTile is called
// once per (tile, weight-slice) during lowering, so implementations
// can do expensive per-conductance-matrix work there.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// NewTile prepares an evaluator for a crossbar programmed with g
	// (Rows×Cols physical conductances).
	NewTile(g *linalg.Dense) (Tile, error)
}

// Tile computes analog output currents for batches of drive voltages.
// The MVM pipeline invokes tiles from multiple worker goroutines, so
// implementations must be safe for concurrent Currents calls.
type Tile interface {
	// Currents maps a batch of voltage vectors (batch×Rows, volts) to
	// output currents (batch×Cols, amperes).
	Currents(v *linalg.Dense) (*linalg.Dense, error)
}

// intoTile is the allocation-free fast path: tiles that implement it
// compute into a caller-owned buffer instead of allocating the result.
// Every in-package tile implements it; the MVM pipeline prefers it and
// falls back to Currents plus a copy for external implementations.
type intoTile interface {
	CurrentsInto(dst, v *linalg.Dense) error
}

// ctxTile is the cancellation-aware fast path: tiles whose evaluation
// is expensive enough to be worth stopping mid-flight (the circuit
// model's batch solves) implement it, and the MVM pipeline prefers it
// whenever the caller supplied a context. Cheap tiles (ideal,
// analytical, GENIEx) finish faster than a cancellation check is
// worth; they fall through to the uncancellable paths.
type ctxTile interface {
	CurrentsCtxInto(ctx context.Context, dst, v *linalg.Dense) error
}

// surrogateTile is implemented by tiles whose analog evaluation runs
// through the GENIEx neural surrogate. The engine hands them the
// per-input-block VContext so the dominant first-layer voltage matmul
// is computed once per block instead of once per (tile, slice, sign).
type surrogateTile interface {
	currentsVC(dst, v *linalg.Dense, vc *core.VContext) error
}

// surrogateModel exposes the core surrogate at the bottom of a model
// chain (wrappers forward to their inner model); nil when the chain
// has none. The engine uses it to decide whether building per-block
// voltage contexts is worthwhile.
type surrogateModel interface {
	surrogate() *core.Model
}

// surrogateOf walks a model chain for its core surrogate.
func surrogateOf(m Model) *core.Model {
	if sm, ok := m.(surrogateModel); ok {
		return sm.surrogate()
	}
	return nil
}

// currentsInto evaluates tile into dst through the fastest interface
// it implements: the shared-VContext surrogate path, the cancellable
// path (when ctx is non-nil), the caller-owned-buffer path, or plain
// Currents plus a copy.
func currentsInto(ctx context.Context, tile Tile, dst, v *linalg.Dense, vc *core.VContext) error {
	if vc != nil {
		if st, ok := tile.(surrogateTile); ok {
			return st.currentsVC(dst, v, vc)
		}
	}
	if ctx != nil {
		if ct, ok := tile.(ctxTile); ok {
			return ct.CurrentsCtxInto(ctx, dst, v)
		}
	}
	if it, ok := tile.(intoTile); ok {
		return it.CurrentsInto(dst, v)
	}
	out, err := tile.Currents(v)
	if err != nil {
		return err
	}
	if out.Rows != dst.Rows || out.Cols != dst.Cols {
		return fmt.Errorf("funcsim: tile returned %dx%d currents, expected %dx%d",
			out.Rows, out.Cols, dst.Rows, dst.Cols)
	}
	copy(dst.Data, out.Data)
	return nil
}

// Ideal is the error-free analog model.
type Ideal struct{}

// Name implements Model.
func (Ideal) Name() string { return "ideal" }

// NewTile implements Model.
func (Ideal) NewTile(g *linalg.Dense) (Tile, error) {
	return idealTile{g: g.Clone()}, nil
}

type idealTile struct{ g *linalg.Dense }

func (t idealTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.g), nil
}

// CurrentsInto stays on the calling goroutine: the pipeline already
// runs one tile task per worker, so nested fan-out would only add
// scheduling overhead and allocations.
func (t idealTile) CurrentsInto(dst, v *linalg.Dense) error {
	linalg.MatMulSerialInto(dst, v, t.g)
	return nil
}

// Analytical wraps the linear-parasitics distortion-matrix model.
type Analytical struct {
	Cfg xbar.Config
}

// Name implements Model.
func (Analytical) Name() string { return "analytical" }

// NewTile implements Model.
func (m Analytical) NewTile(g *linalg.Dense) (Tile, error) {
	a, err := xbar.NewAnalytical(m.Cfg, g)
	if err != nil {
		return nil, err
	}
	// Currents = V·Aᵀ for batches.
	return analyticalTile{at: a.Matrix().T()}, nil
}

type analyticalTile struct{ at *linalg.Dense }

func (t analyticalTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.at), nil
}

func (t analyticalTile) CurrentsInto(dst, v *linalg.Dense) error {
	linalg.MatMulSerialInto(dst, v, t.at)
	return nil
}

// GENIEx evaluates tiles through a trained core.Model surrogate.
type GENIEx struct {
	Model *core.Model
}

// Name implements Model.
func (GENIEx) Name() string { return "geniex" }

func (m GENIEx) surrogate() *core.Model { return m.Model }

// NewTile implements Model.
func (m GENIEx) NewTile(g *linalg.Dense) (Tile, error) {
	if g.Rows != m.Model.Cfg.Rows || g.Cols != m.Model.Cfg.Cols {
		return nil, fmt.Errorf("funcsim: GENIEx model is %dx%d, tile is %dx%d",
			m.Model.Cfg.Rows, m.Model.Cfg.Cols, g.Rows, g.Cols)
	}
	return &geniexTile{m: m.Model, g: g.Clone(), ctx: m.Model.NewGContext(g)}, nil
}

type geniexTile struct {
	m   *core.Model
	g   *linalg.Dense
	ctx *core.GContext

	// Prediction scratch is pooled per tile so concurrent workers
	// evaluating the same tile never share a workspace and steady-state
	// calls allocate nothing.
	mu   sync.Mutex
	free []*gxScratch
}

type gxScratch struct {
	ws core.PredictWorkspace
	fr *linalg.Dense
}

func (t *geniexTile) getScratch() *gxScratch {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		return s
	}
	return &gxScratch{}
}

func (t *geniexTile) putScratch(s *gxScratch) {
	t.mu.Lock()
	t.free = append(t.free, s)
	t.mu.Unlock()
}

func (t *geniexTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	out := linalg.NewDense(v.Rows, t.g.Cols)
	if err := t.currentsVC(out, v, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *geniexTile) CurrentsInto(dst, v *linalg.Dense) error {
	return t.currentsVC(dst, v, nil)
}

func (t *geniexTile) currentsVC(dst, v *linalg.Dense, vc *core.VContext) error {
	if vc == nil {
		vc = t.m.NewVContext(v)
	}
	linalg.MatMulSerialInto(dst, v, t.g) // ideal currents
	s := t.getScratch()
	s.fr = growDense(s.fr, v.Rows, t.g.Cols)
	t.m.PredictVGInto(s.fr, vc, t.ctx, &s.ws)
	for b := 0; b < dst.Rows; b++ {
		drow, frow := dst.Row(b), s.fr.Row(b)
		for j, r := range frow {
			if r <= 0 {
				r = 1
			}
			drow[j] /= r
		}
	}
	t.putScratch(s)
	return nil
}

// SolverHealth aggregates circuit-solver outcomes across every tile
// and batch a Circuit model executes. Share one collector between the
// model and the reporting layer to surface solver-health counters in
// experiment output. Safe for concurrent use: each field is an obs
// counter, so a snapshot taken while batches are in flight is
// per-field consistent (each count is exact) but not cross-field
// consistent — a concurrent record may be half folded. These counters
// always count, independent of obs.Enabled, because experiment reports
// depend on them.
type SolverHealth struct {
	batches, items                          obs.Counter
	recovered, retried, failed, unconverged obs.Counter
	luFallbacks, cgBreakdowns               obs.Counter
}

// SolverHealthCounts is a snapshot of the collector.
type SolverHealthCounts struct {
	// Batches and Items count BatchSolve calls and batch items.
	Batches, Items int64
	// Recovered, Retried, Failed, Unconverged count items by outcome.
	Recovered, Retried, Failed, Unconverged int64
	// LUFallbacks and CGBreakdowns aggregate inner-solver events.
	LUFallbacks, CGBreakdowns int64
}

func (h *SolverHealth) record(rep *xbar.BatchReport) {
	h.batches.Inc()
	h.items.Add(int64(len(rep.Outcomes)))
	h.recovered.Add(int64(rep.Recovered))
	h.retried.Add(int64(rep.Retried))
	h.failed.Add(int64(rep.Failed))
	h.unconverged.Add(int64(rep.Unconverged))
	h.luFallbacks.Add(int64(rep.LUFallbacks))
	h.cgBreakdowns.Add(int64(rep.CGBreakdowns))
}

// Counts returns a snapshot of the counters. It is read-only: reading
// never clears; use Reset to clear.
func (h *SolverHealth) Counts() SolverHealthCounts {
	return SolverHealthCounts{
		Batches:      h.batches.Load(),
		Items:        h.items.Load(),
		Recovered:    h.recovered.Load(),
		Retried:      h.retried.Load(),
		Failed:       h.failed.Load(),
		Unconverged:  h.unconverged.Load(),
		LUFallbacks:  h.luFallbacks.Load(),
		CGBreakdowns: h.cgBreakdowns.Load(),
	}
}

// Reset atomically clears the counters and returns the counts it
// cleared, matching the repo-wide snapshot-and-clear reset convention
// (see Matrix.ResetStats).
func (h *SolverHealth) Reset() SolverHealthCounts {
	return SolverHealthCounts{
		Batches:      h.batches.Swap(),
		Items:        h.items.Swap(),
		Recovered:    h.recovered.Swap(),
		Retried:      h.retried.Swap(),
		Failed:       h.failed.Swap(),
		Unconverged:  h.unconverged.Swap(),
		LUFallbacks:  h.luFallbacks.Swap(),
		CGBreakdowns: h.cgBreakdowns.Swap(),
	}
}

// String summarizes the counters.
func (c SolverHealthCounts) String() string {
	return fmt.Sprintf("solver health: %d batches, %d items (%d recovered, %d retried, %d failed, %d unconverged), %d LU fallbacks, %d CG breakdowns",
		c.Batches, c.Items, c.Recovered, c.Retried, c.Failed, c.Unconverged, c.LUFallbacks, c.CGBreakdowns)
}

// Circuit runs the full non-linear solver per tile — the ground-truth
// mode. It is orders of magnitude slower than the other models and
// exists for validation on small workloads.
//
// When the functional simulator parallelizes across tiles (the default
// MVM pipeline), set Cfg.BatchWorkers = 1 so each tile solve stays on
// its worker instead of fanning out a second time.
type Circuit struct {
	Cfg xbar.Config
	// Degraded selects failed-batch-item handling: false (the default)
	// fails the MVM when any item fails even after the solver's retry
	// ladder or is accepted without convergence; true zeroes the failed
	// items' currents, keeps best-effort ones, and continues, so one
	// bad input no longer kills a whole evaluation. Either way the
	// outcome is counted in Health.
	Degraded bool
	// Health, when non-nil, collects solver outcomes across all tiles
	// created from this model (value copies share the pointer).
	Health *SolverHealth
}

// Name implements Model.
func (Circuit) Name() string { return "circuit" }

// NewTile implements Model. The returned tile keeps a persistent pool
// of programmed Crossbar instances (an xbar.BatchSolver), so the
// netlist-assembly and conductance-programming cost is paid once per
// tile lifetime instead of once per worker per Currents call.
func (m Circuit) NewTile(g *linalg.Dense) (Tile, error) {
	solver, err := xbar.NewBatchSolver(m.Cfg, g)
	if err != nil {
		return nil, err
	}
	return circuitTile{solver: solver, cols: g.Cols, degraded: m.Degraded, health: m.Health}, nil
}

// FastCircuit is the circuit model with the solver's warm-start tier
// enabled: each pooled Crossbar instance seeds Newton from its previous
// converged node voltages (falling back to the cached factorization
// seed on the first solve after programming). Accuracy is identical to
// Circuit — every solve still runs full Newton to the same KCL
// tolerance — but steady-state latency drops because correlated input
// streams start near the solution.
//
// The trade: with Cfg.BatchWorkers > 1 the mapping of batch items to
// pooled instances depends on scheduling, so repeated runs are
// tolerance-reproducible, not bit-reproducible. Within the functional
// simulator's default pipeline (one tile task per worker,
// BatchWorkers = 1) item order is fixed and runs stay deterministic.
type FastCircuit struct {
	Cfg xbar.Config
	// Degraded and Health behave exactly as on Circuit.
	Degraded bool
	Health   *SolverHealth
}

// Name implements Model.
func (FastCircuit) Name() string { return "fastcircuit" }

// NewTile implements Model. It builds the same pooled-solver tile as
// Circuit with the start mode forced to warm.
func (m FastCircuit) NewTile(g *linalg.Dense) (Tile, error) {
	cfg := m.Cfg
	cfg.Start = xbar.StartWarm
	solver, err := xbar.NewBatchSolver(cfg, g)
	if err != nil {
		return nil, err
	}
	return circuitTile{solver: solver, cols: g.Cols, degraded: m.Degraded, health: m.Health}, nil
}

type circuitTile struct {
	solver   *xbar.BatchSolver
	cols     int
	degraded bool
	health   *SolverHealth
}

func (t circuitTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	out := linalg.NewDense(v.Rows, t.cols)
	if err := t.CurrentsInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

func (t circuitTile) CurrentsInto(dst, v *linalg.Dense) error {
	return t.CurrentsCtxInto(nil, dst, v)
}

// CurrentsCtxInto implements ctxTile: the batch solve aborts at the
// next Newton update once ctx is done, so a revoked serving deadline
// stops circuit work instead of letting it run to completion.
func (t circuitTile) CurrentsCtxInto(ctx context.Context, dst, v *linalg.Dense) error {
	rep, err := t.solver.SolveReportIntoContext(ctx, dst, v)
	if err != nil {
		return err
	}
	if t.health != nil {
		t.health.record(rep)
	}
	if t.degraded && rep.Failed > 0 && obs.Enabled() {
		mDegradedItems.Add(int64(rep.Failed))
	}
	if !t.degraded {
		if rep.Failed > 0 {
			return fmt.Errorf("funcsim: circuit tile: %d of %d batch items failed: %w",
				rep.Failed, len(rep.Outcomes), rep.FirstError())
		}
		if !rep.AllOK() {
			return fmt.Errorf("funcsim: circuit tile: %w", rep.Err())
		}
	}
	return nil
}
