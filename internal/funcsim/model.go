// Package funcsim is the functional simulator of Section 5 of the
// paper: it executes DNN inference the way a crossbar accelerator
// would — convolutions unrolled into repeated MVMs (iterative-mvm),
// weight matrices partitioned onto fixed-size crossbars (tiling), and
// operands processed digit-serially (bit-slicing into input streams
// and weight slices) with ADC quantization and shift-and-add merging.
//
// The analog behaviour of each crossbar is pluggable through the Model
// interface; the package ships four implementations matching the
// paper's simulation modes:
//
//   - Ideal: exact analog MVM (the "Ideal FxP" baseline),
//   - Analytical: linear parasitic distortion via a precomputed
//     distortion matrix (the paper's baseline model),
//   - GENIEx: the trained neural surrogate from package core,
//   - Circuit: the full non-linear solver (HSPICE stand-in; slow,
//     used for validation).
package funcsim

import (
	"fmt"
	"sync"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Model produces per-tile analog MVM evaluators. NewTile is called
// once per (tile, weight-slice) during lowering, so implementations
// can do expensive per-conductance-matrix work there.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// NewTile prepares an evaluator for a crossbar programmed with g
	// (Rows×Cols physical conductances).
	NewTile(g *linalg.Dense) (Tile, error)
}

// Tile computes analog output currents for batches of drive voltages.
type Tile interface {
	// Currents maps a batch of voltage vectors (batch×Rows, volts) to
	// output currents (batch×Cols, amperes).
	Currents(v *linalg.Dense) (*linalg.Dense, error)
}

// Ideal is the error-free analog model.
type Ideal struct{}

// Name implements Model.
func (Ideal) Name() string { return "ideal" }

// NewTile implements Model.
func (Ideal) NewTile(g *linalg.Dense) (Tile, error) {
	return idealTile{g: g.Clone()}, nil
}

type idealTile struct{ g *linalg.Dense }

func (t idealTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.g), nil
}

// Analytical wraps the linear-parasitics distortion-matrix model.
type Analytical struct {
	Cfg xbar.Config
}

// Name implements Model.
func (Analytical) Name() string { return "analytical" }

// NewTile implements Model.
func (m Analytical) NewTile(g *linalg.Dense) (Tile, error) {
	a, err := xbar.NewAnalytical(m.Cfg, g)
	if err != nil {
		return nil, err
	}
	// Currents = V·Aᵀ for batches.
	return analyticalTile{at: a.Matrix().T()}, nil
}

type analyticalTile struct{ at *linalg.Dense }

func (t analyticalTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.at), nil
}

// GENIEx evaluates tiles through a trained core.Model surrogate.
type GENIEx struct {
	Model *core.Model
}

// Name implements Model.
func (GENIEx) Name() string { return "geniex" }

// NewTile implements Model.
func (m GENIEx) NewTile(g *linalg.Dense) (Tile, error) {
	if g.Rows != m.Model.Cfg.Rows || g.Cols != m.Model.Cfg.Cols {
		return nil, fmt.Errorf("funcsim: GENIEx model is %dx%d, tile is %dx%d",
			m.Model.Cfg.Rows, m.Model.Cfg.Cols, g.Rows, g.Cols)
	}
	return &geniexTile{m: m.Model, g: g.Clone(), ctx: m.Model.NewGContext(g)}, nil
}

type geniexTile struct {
	m   *core.Model
	g   *linalg.Dense
	ctx *core.GContext
}

func (t *geniexTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	ideal := linalg.MatMul(v, t.g)
	fr := t.m.PredictWithContext(v, t.ctx)
	out := linalg.NewDense(ideal.Rows, ideal.Cols)
	for b := 0; b < ideal.Rows; b++ {
		copy(out.Row(b), xbar.ApplyRatio(ideal.Row(b), fr.Row(b)))
	}
	return out, nil
}

// SolverHealth aggregates circuit-solver outcomes across every tile
// and batch a Circuit model executes. Share one collector between the
// model and the reporting layer to surface solver-health counters in
// experiment output. Safe for concurrent use.
type SolverHealth struct {
	mu sync.Mutex
	c  SolverHealthCounts
}

// SolverHealthCounts is a snapshot of the collector.
type SolverHealthCounts struct {
	// Batches and Items count BatchSolve calls and batch items.
	Batches, Items int64
	// Recovered, Retried, Failed, Unconverged count items by outcome.
	Recovered, Retried, Failed, Unconverged int64
	// LUFallbacks and CGBreakdowns aggregate inner-solver events.
	LUFallbacks, CGBreakdowns int64
}

func (h *SolverHealth) record(rep *xbar.BatchReport) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.c.Batches++
	h.c.Items += int64(len(rep.Outcomes))
	h.c.Recovered += int64(rep.Recovered)
	h.c.Retried += int64(rep.Retried)
	h.c.Failed += int64(rep.Failed)
	h.c.Unconverged += int64(rep.Unconverged)
	h.c.LUFallbacks += int64(rep.LUFallbacks)
	h.c.CGBreakdowns += int64(rep.CGBreakdowns)
}

// Counts returns a snapshot of the counters.
func (h *SolverHealth) Counts() SolverHealthCounts {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.c
}

// String summarizes the counters.
func (c SolverHealthCounts) String() string {
	return fmt.Sprintf("solver health: %d batches, %d items (%d recovered, %d retried, %d failed, %d unconverged), %d LU fallbacks, %d CG breakdowns",
		c.Batches, c.Items, c.Recovered, c.Retried, c.Failed, c.Unconverged, c.LUFallbacks, c.CGBreakdowns)
}

// Circuit runs the full non-linear solver per tile — the ground-truth
// mode. It is orders of magnitude slower than the other models and
// exists for validation on small workloads.
type Circuit struct {
	Cfg xbar.Config
	// Degraded selects failed-batch-item handling: false (the default)
	// fails the MVM when any item fails even after the solver's retry
	// ladder; true zeroes the failed items' currents and continues, so
	// one bad input no longer kills a whole evaluation. Either way the
	// outcome is counted in Health.
	Degraded bool
	// Health, when non-nil, collects solver outcomes across all tiles
	// created from this model (value copies share the pointer).
	Health *SolverHealth
}

// Name implements Model.
func (Circuit) Name() string { return "circuit" }

// NewTile implements Model.
func (m Circuit) NewTile(g *linalg.Dense) (Tile, error) {
	if err := m.Cfg.Validate(); err != nil {
		return nil, err
	}
	return circuitTile{cfg: m.Cfg, g: g.Clone(), degraded: m.Degraded, health: m.Health}, nil
}

type circuitTile struct {
	cfg      xbar.Config
	g        *linalg.Dense
	degraded bool
	health   *SolverHealth
}

func (t circuitTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	out, rep, err := xbar.BatchSolveReport(t.cfg, t.g, v)
	if err != nil {
		return nil, err
	}
	if t.health != nil {
		t.health.record(rep)
	}
	if rep.Failed > 0 && !t.degraded {
		return nil, fmt.Errorf("funcsim: circuit tile: %d of %d batch items failed: %w",
			rep.Failed, len(rep.Outcomes), rep.FirstError())
	}
	return out, nil
}
