// Package funcsim is the functional simulator of Section 5 of the
// paper: it executes DNN inference the way a crossbar accelerator
// would — convolutions unrolled into repeated MVMs (iterative-mvm),
// weight matrices partitioned onto fixed-size crossbars (tiling), and
// operands processed digit-serially (bit-slicing into input streams
// and weight slices) with ADC quantization and shift-and-add merging.
//
// The analog behaviour of each crossbar is pluggable through the Model
// interface; the package ships four implementations matching the
// paper's simulation modes:
//
//   - Ideal: exact analog MVM (the "Ideal FxP" baseline),
//   - Analytical: linear parasitic distortion via a precomputed
//     distortion matrix (the paper's baseline model),
//   - GENIEx: the trained neural surrogate from package core,
//   - Circuit: the full non-linear solver (HSPICE stand-in; slow,
//     used for validation).
package funcsim

import (
	"fmt"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Model produces per-tile analog MVM evaluators. NewTile is called
// once per (tile, weight-slice) during lowering, so implementations
// can do expensive per-conductance-matrix work there.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// NewTile prepares an evaluator for a crossbar programmed with g
	// (Rows×Cols physical conductances).
	NewTile(g *linalg.Dense) (Tile, error)
}

// Tile computes analog output currents for batches of drive voltages.
type Tile interface {
	// Currents maps a batch of voltage vectors (batch×Rows, volts) to
	// output currents (batch×Cols, amperes).
	Currents(v *linalg.Dense) (*linalg.Dense, error)
}

// Ideal is the error-free analog model.
type Ideal struct{}

// Name implements Model.
func (Ideal) Name() string { return "ideal" }

// NewTile implements Model.
func (Ideal) NewTile(g *linalg.Dense) (Tile, error) {
	return idealTile{g: g.Clone()}, nil
}

type idealTile struct{ g *linalg.Dense }

func (t idealTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.g), nil
}

// Analytical wraps the linear-parasitics distortion-matrix model.
type Analytical struct {
	Cfg xbar.Config
}

// Name implements Model.
func (Analytical) Name() string { return "analytical" }

// NewTile implements Model.
func (m Analytical) NewTile(g *linalg.Dense) (Tile, error) {
	a, err := xbar.NewAnalytical(m.Cfg, g)
	if err != nil {
		return nil, err
	}
	// Currents = V·Aᵀ for batches.
	return analyticalTile{at: a.Matrix().T()}, nil
}

type analyticalTile struct{ at *linalg.Dense }

func (t analyticalTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return linalg.MatMul(v, t.at), nil
}

// GENIEx evaluates tiles through a trained core.Model surrogate.
type GENIEx struct {
	Model *core.Model
}

// Name implements Model.
func (GENIEx) Name() string { return "geniex" }

// NewTile implements Model.
func (m GENIEx) NewTile(g *linalg.Dense) (Tile, error) {
	if g.Rows != m.Model.Cfg.Rows || g.Cols != m.Model.Cfg.Cols {
		return nil, fmt.Errorf("funcsim: GENIEx model is %dx%d, tile is %dx%d",
			m.Model.Cfg.Rows, m.Model.Cfg.Cols, g.Rows, g.Cols)
	}
	return &geniexTile{m: m.Model, g: g.Clone(), ctx: m.Model.NewGContext(g)}, nil
}

type geniexTile struct {
	m   *core.Model
	g   *linalg.Dense
	ctx *core.GContext
}

func (t *geniexTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	ideal := linalg.MatMul(v, t.g)
	fr := t.m.PredictWithContext(v, t.ctx)
	out := linalg.NewDense(ideal.Rows, ideal.Cols)
	for b := 0; b < ideal.Rows; b++ {
		copy(out.Row(b), xbar.ApplyRatio(ideal.Row(b), fr.Row(b)))
	}
	return out, nil
}

// Circuit runs the full non-linear solver per tile — the ground-truth
// mode. It is orders of magnitude slower than the other models and
// exists for validation on small workloads.
type Circuit struct {
	Cfg xbar.Config
}

// Name implements Model.
func (Circuit) Name() string { return "circuit" }

// NewTile implements Model.
func (m Circuit) NewTile(g *linalg.Dense) (Tile, error) {
	if err := m.Cfg.Validate(); err != nil {
		return nil, err
	}
	return circuitTile{cfg: m.Cfg, g: g.Clone()}, nil
}

type circuitTile struct {
	cfg xbar.Config
	g   *linalg.Dense
}

func (t circuitTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return xbar.BatchSolve(t.cfg, t.g, v)
}
