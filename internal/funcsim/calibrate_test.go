package funcsim

import (
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func TestCalibratedName(t *testing.T) {
	c := Calibrated{Inner: Analytical{Cfg: xbar.DefaultConfig()}, Xbar: xbar.DefaultConfig()}
	if c.Name() != "analytical+cal" {
		t.Errorf("name = %q", c.Name())
	}
}

// Calibrating the ideal model must be a near-no-op (gains ≈ 1).
func TestCalibrationOfIdealIsIdentity(t *testing.T) {
	cfg := harshXbar()
	c := Calibrated{Inner: Ideal{}, Seed: 1, Xbar: cfg}
	r := linalg.NewRNG(2)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	tile, err := c.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDense(3, cfg.Rows)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * r.Float64()
	}
	got, err := tile.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.MatMul(v, g)
	if rmse := linalg.RMSE(got.Data, want.Data); rmse > 1e-12*want.Data[0] {
		// Allow tiny float noise relative to the current scale.
		rel := rmse / (linalg.NormInf(want.Data) + 1e-30)
		if rel > 1e-10 {
			t.Errorf("ideal calibration changed currents: relative %v", rel)
		}
	}
}

// Calibration must reduce the circuit model's distortion: the
// compensated analytical tile tracks the ideal MVM better than the raw
// one on fresh inputs.
func TestCalibrationReducesDistortion(t *testing.T) {
	cfg := harshXbar()
	r := linalg.NewRNG(3)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	raw, err := Analytical{Cfg: cfg}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrated{Inner: Analytical{Cfg: cfg}, Seed: 5, Xbar: cfg}.NewTile(g)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDense(8, cfg.Rows)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * r.Float64()
	}
	ideal := linalg.MatMul(v, g)
	rawOut, err := raw.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	calOut, err := cal.Currents(v)
	if err != nil {
		t.Fatal(err)
	}
	rawErr := linalg.RMSE(rawOut.Data, ideal.Data)
	calErr := linalg.RMSE(calOut.Data, ideal.Data)
	t.Logf("distortion RMSE: raw=%.3g calibrated=%.3g", rawErr, calErr)
	if calErr >= rawErr {
		t.Errorf("calibration did not reduce distortion: %v vs %v", calErr, rawErr)
	}
}

// End to end: a lowered network under the calibrated analytical model
// must match the float outputs at least as well as the uncalibrated
// one.
func TestCalibrationImprovesLoweredNetwork(t *testing.T) {
	r := linalg.NewRNG(6)
	net := buildTinyCNN(r)
	for i := 0; i < 10; i++ {
		x := randMatrix(r, 8, 36, 1)
		net.Forward(x, true)
	}
	x := randMatrix(r, 4, 36, 1)
	want := net.Forward(x, false)

	cfg := exactConfig(8, 8)
	cfg.Xbar = harshXbar()
	run := func(m Model) float64 {
		eng, err := NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		return linalg.RMSE(got.Data, want.Data)
	}
	raw := run(Analytical{Cfg: cfg.Xbar})
	cal := run(Calibrated{Inner: Analytical{Cfg: cfg.Xbar}, Seed: 7, Xbar: cfg.Xbar})
	t.Logf("network output RMSE vs float: raw=%.4f calibrated=%.4f", raw, cal)
	if cal > raw*1.05 {
		t.Errorf("calibration made things worse: %v vs %v", cal, raw)
	}
}

func TestCalibrationErrors(t *testing.T) {
	cfg := harshXbar()
	c := Calibrated{Inner: Ideal{}, Samples: -1, Xbar: cfg}
	if _, err := c.NewTile(linalg.NewDense(cfg.Rows, cfg.Cols)); err == nil {
		t.Error("expected error for negative samples")
	}
}
