package funcsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"geniex/internal/core"
	"geniex/internal/xbar"
)

// ModelParams carries everything a registered model factory may need
// to build a Model for one design point. Factories use the subset
// they care about and ignore the rest.
type ModelParams struct {
	// Xbar is the crossbar design point (tile geometry, voltages,
	// conductance window, solver policy).
	Xbar xbar.Config
	// Degraded selects failed-batch-item handling for circuit-solver
	// models (see Circuit.Degraded).
	Degraded bool
	// Health, when non-nil, collects circuit-solver outcomes (see
	// Circuit.Health). Ignored by non-circuit models.
	Health *SolverHealth
	// Surrogate is the trained GENIEx model for surrogate-backed
	// fidelity tiers. Factories with ModelSpec.NeedsSurrogate reject a
	// nil Surrogate.
	Surrogate *core.Model
}

// ModelSpec describes one registered fidelity tier: its canonical
// name, where it sits in the fidelity ladder, what it needs, and how
// to build it. This registry is the single source of truth for tier
// names — `-mode` flags, serve ladders, and sweep validation all
// resolve through it, so a new tier registers in exactly one place.
type ModelSpec struct {
	// Name is the canonical tier name ("ideal", "geniex", ...).
	Name string
	// Rank orders the fidelity ladder: higher rank means higher
	// fidelity (and cost). Serve ladders list tiers in decreasing
	// rank; ModelNames returns them in that order.
	Rank int
	// Circuit marks models that run the full non-linear circuit
	// solver per tile. The serve frontend excludes them from probe
	// attachment (the probe would shadow-solve a solver against
	// itself) and chaos fault injection targets them.
	Circuit bool
	// NeedsSurrogate marks models built around a trained core.Model;
	// their factories require ModelParams.Surrogate.
	NeedsSurrogate bool
	// Adaptive marks models whose surrogate is meant to be fine-tuned
	// and hot-swapped online; serving stacks give such tiers a
	// Swappable engine and may attach a background calibrator.
	Adaptive bool
	// New builds the model for a design point.
	New func(ModelParams) (Model, error)
}

var (
	modelMu sync.RWMutex
	models  = map[string]ModelSpec{}
)

// RegisterModel adds a fidelity tier to the registry. It panics on an
// empty name, a nil factory, or a duplicate registration — like
// nonideal.Register, registration happens in init functions where a
// collision is a programming error, not a runtime condition.
func RegisterModel(spec ModelSpec) {
	if spec.Name == "" {
		panic("funcsim: RegisterModel with empty name")
	}
	if spec.New == nil {
		panic(fmt.Sprintf("funcsim: RegisterModel(%q) with nil factory", spec.Name))
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if _, dup := models[spec.Name]; dup {
		panic(fmt.Sprintf("funcsim: RegisterModel(%q) called twice", spec.Name))
	}
	models[spec.Name] = spec
}

// ModelByName resolves a registered fidelity tier. Unknown names
// return an error listing every registered tier, so flag-parse errors
// are self-documenting.
func ModelByName(name string) (ModelSpec, error) {
	modelMu.RLock()
	spec, ok := models[name]
	modelMu.RUnlock()
	if !ok {
		return ModelSpec{}, fmt.Errorf("funcsim: unknown model %q (registered: %s)",
			name, strings.Join(ModelNames(), ", "))
	}
	return spec, nil
}

// ModelNames lists every registered tier in fidelity-ladder order:
// decreasing rank, ties broken by name. This is the order a serve
// degradation ladder lists tiers in.
func ModelNames() []string {
	modelMu.RLock()
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	modelMu.RUnlock()
	sort.Slice(names, func(i, j int) bool {
		modelMu.RLock()
		ri, rj := models[names[i]].Rank, models[names[j]].Rank
		modelMu.RUnlock()
		if ri != rj {
			return ri > rj
		}
		return names[i] < names[j]
	})
	return names
}

func needSurrogate(p ModelParams, name string) (*core.Model, error) {
	if p.Surrogate == nil {
		return nil, fmt.Errorf("funcsim: model %q needs a trained GENIEx surrogate (ModelParams.Surrogate)", name)
	}
	if p.Surrogate.Cfg.Rows != p.Xbar.Rows || p.Surrogate.Cfg.Cols != p.Xbar.Cols {
		return nil, fmt.Errorf("funcsim: model %q surrogate is %dx%d, design point is %dx%d",
			name, p.Surrogate.Cfg.Rows, p.Surrogate.Cfg.Cols, p.Xbar.Rows, p.Xbar.Cols)
	}
	return p.Surrogate, nil
}

// The built-in fidelity ladder, highest fidelity first: circuit (full
// non-linear solver), fastcircuit (same accuracy, warm-started),
// geniex-adaptive (neural surrogate with online calibration),
// geniex (frozen neural surrogate), analytical (linear parasitics),
// ideal (error-free).
func init() {
	RegisterModel(ModelSpec{
		Name: "circuit", Rank: 100, Circuit: true,
		New: func(p ModelParams) (Model, error) {
			return Circuit{Cfg: p.Xbar, Degraded: p.Degraded, Health: p.Health}, nil
		},
	})
	RegisterModel(ModelSpec{
		Name: "fastcircuit", Rank: 90, Circuit: true,
		New: func(p ModelParams) (Model, error) {
			return FastCircuit{Cfg: p.Xbar, Degraded: p.Degraded, Health: p.Health}, nil
		},
	})
	RegisterModel(ModelSpec{
		Name: "geniex-adaptive", Rank: 60, NeedsSurrogate: true, Adaptive: true,
		New: func(p ModelParams) (Model, error) {
			sur, err := needSurrogate(p, "geniex-adaptive")
			if err != nil {
				return nil, err
			}
			return GENIEx{Model: sur}, nil
		},
	})
	RegisterModel(ModelSpec{
		Name: "geniex", Rank: 50, NeedsSurrogate: true,
		New: func(p ModelParams) (Model, error) {
			sur, err := needSurrogate(p, "geniex")
			if err != nil {
				return nil, err
			}
			return GENIEx{Model: sur}, nil
		},
	})
	RegisterModel(ModelSpec{
		Name: "analytical", Rank: 20,
		New: func(p ModelParams) (Model, error) {
			return Analytical{Cfg: p.Xbar}, nil
		},
	})
	RegisterModel(ModelSpec{
		Name: "ideal", Rank: 10,
		New: func(p ModelParams) (Model, error) {
			return Ideal{}, nil
		},
	})
}
