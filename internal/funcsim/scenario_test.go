package funcsim

import (
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/nonideal"
	"geniex/internal/xbar"
)

// testScenario is a representative mixed stack: hard faults, programming
// variation, and aging.
func testScenario(seed uint64) *nonideal.Scenario {
	return &nonideal.Scenario{
		Stack: nonideal.Stack{
			&nonideal.StuckAt{POn: 0.02, POff: 0.03},
			&nonideal.D2DVariation{Sigma: 0.15},
			&nonideal.Drift{Nu: 0.02, Tau0: 10},
		},
		Seed: seed,
		Time: 1e4,
	}
}

// lowerWithScenario lowers w under the scenario with the probe enabled,
// so the per-slice conductance matrices are retained for inspection.
func lowerWithScenario(t *testing.T, sc *nonideal.Scenario, m Model, workers int, w *linalg.Dense) *Matrix {
	t.Helper()
	cfg := exactConfig(8, 8)
	cfg.Scenario = sc
	cfg.ProbeRate = 1 << 30 // retain posG/negG without sampling anything
	cfg.Workers = workers
	eng, err := NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	lm, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

// conductancesOf flattens every retained per-slice conductance matrix
// of the lowering, in deterministic tile order.
func conductancesOf(lm *Matrix) []float64 {
	var out []float64
	for tr := range lm.conds {
		for tc := range lm.conds[tr] {
			cd := &lm.conds[tr][tc]
			for _, g := range cd.pos {
				out = append(out, g.Data...)
			}
			for _, g := range cd.neg {
				out = append(out, g.Data...)
			}
		}
	}
	return out
}

// The same scenario seed must produce bit-identical perturbed
// conductances across independent lowerings and across worker counts.
func TestScenarioSeedReproducible(t *testing.T) {
	r := linalg.NewRNG(41)
	w := randMatrix(r, 20, 13, 2)
	ref := conductancesOf(lowerWithScenario(t, testScenario(7), Ideal{}, 1, w))
	if len(ref) == 0 {
		t.Fatal("no conductances retained")
	}
	for _, workers := range []int{0, 1, 3} {
		got := conductancesOf(lowerWithScenario(t, testScenario(7), Ideal{}, workers, w))
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d conductances, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: conductance %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
	other := conductancesOf(lowerWithScenario(t, testScenario(8), Ideal{}, 1, w))
	same := 0
	for i := range other {
		if other[i] == ref[i] {
			same++
		}
	}
	if same == len(ref) {
		t.Fatal("different seeds produced identical perturbations")
	}
}

// Every fidelity tier lowers the same weights onto the same perturbed
// conductances: the scenario acts on the matrices the model tiles are
// built from, not inside any one model.
func TestScenarioSameConductancesAcrossTiers(t *testing.T) {
	r := linalg.NewRNG(43)
	w := randMatrix(r, 16, 10, 2)
	sc := testScenario(11)
	cfg := exactConfig(8, 8)
	models := []Model{
		Ideal{},
		Analytical{Cfg: cfg.Xbar},
		Circuit{Cfg: cfg.Xbar},
	}
	var ref []float64
	for _, m := range models {
		got := conductancesOf(lowerWithScenario(t, sc, m, 1, w))
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d conductances, want %d", m.Name(), len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("%s: conductance %d = %v, want %v", m.Name(), i, got[i], ref[i])
			}
		}
	}
}

// MVM results under a scenario are deterministic across engines and
// worker counts, and actually differ from the clean lowering.
func TestScenarioMVMDeterministicAndPerturbing(t *testing.T) {
	r := linalg.NewRNG(47)
	w := randMatrix(r, 16, 9, 2)
	x := randMatrix(r, 3, 16, 2)

	run := func(sc *nonideal.Scenario, workers int) []float64 {
		cfg := exactConfig(8, 8)
		cfg.Scenario = sc
		cfg.Workers = workers
		eng, err := NewEngine(cfg, Ideal{})
		if err != nil {
			t.Fatal(err)
		}
		lm, err := eng.Lower(w)
		if err != nil {
			t.Fatal(err)
		}
		out, err := lm.MVM(x)
		if err != nil {
			t.Fatal(err)
		}
		return out.Data
	}

	ref := run(testScenario(3), 1)
	for _, workers := range []int{0, 2} {
		got := run(testScenario(3), workers)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
	clean := run(nil, 1)
	same := true
	for i := range clean {
		if clean[i] != ref[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scenario lowering produced identical MVM results to clean lowering")
	}
}

// The lowering report counts tiles and stuck cells, and the stuck-at
// fraction surfaces as a degraded-tile fraction.
func TestScenarioReportAndDegradedFraction(t *testing.T) {
	r := linalg.NewRNG(53)
	w := randMatrix(r, 24, 17, 2)
	lm := lowerWithScenario(t, testScenario(5), Ideal{}, 1, w)
	rep := lm.NonIdeal()
	if rep.Tiles == 0 || rep.Cells == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Stuck == 0 {
		t.Fatal("stuck-at scenario injected no stuck cells")
	}
	if df := rep.DegradedFraction(); df <= 0 || df > 1 {
		t.Fatalf("degraded fraction %v out of range", df)
	}
	if rep.PerKind[nonideal.KindStuckAt] == 0 || rep.PerKind[nonideal.KindDrift] == 0 {
		t.Fatalf("per-kind counts missing: %+v", rep.PerKind)
	}

	clean, err := func() (*Matrix, error) {
		eng, err := NewEngine(exactConfig(8, 8), Ideal{})
		if err != nil {
			return nil, err
		}
		return eng.Lower(w)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if rep := clean.NonIdeal(); rep.Stuck != 0 || rep.Touched != 0 {
		t.Fatalf("clean lowering reported perturbations: %+v", rep)
	}
}

// An invalid scenario is rejected at configuration time.
func TestScenarioValidation(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Scenario = &nonideal.Scenario{
		Stack: nonideal.Stack{&nonideal.D2DVariation{Sigma: -1}},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative-sigma scenario accepted")
	}
	if _, err := NewEngine(cfg, Ideal{}); err == nil {
		t.Fatal("NewEngine accepted invalid scenario")
	}
}

// A FaultPlan's stuck-at component perturbs the conductances a circuit
// tile actually solves on — the chaos path shares the same component
// the scenario path uses.
func TestFaultPlanStuckAtReachesCircuit(t *testing.T) {
	cfg, err := xbar.NewConfig(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(8, 8)
	mid := 0.5 * (cfg.Goff() + cfg.Gon())
	linalg.Fill(g.Data, mid)

	faulted := cfg.WithFaults(&xbar.FaultPlan{
		StuckAt:   &nonideal.StuckAt{POn: 0.2, POff: 0.2},
		StuckSeed: 77,
	})
	s, err := xbar.NewBatchSolver(faulted, g)
	if err != nil {
		t.Fatal(err)
	}
	pinned := 0
	for _, gv := range s.Conductances().Data {
		switch gv {
		case cfg.Gon(), cfg.Goff():
			pinned++
		case mid:
		default:
			t.Fatalf("unexpected conductance %v", gv)
		}
	}
	if pinned == 0 {
		t.Fatal("stuck-at plan left every cell untouched")
	}

	s2, err := xbar.NewBatchSolver(faulted, g)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Conductances().Data, s2.Conductances().Data
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stuck mask not reproducible at cell %d", i)
		}
	}
}
