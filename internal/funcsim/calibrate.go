package funcsim

import (
	"context"
	"fmt"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// Calibrated wraps an analog model with per-column digital gain
// calibration — the simplest of the compensation schemes the paper
// motivates (CxDNN [9] class). After programming, a set of random
// calibration vectors is driven through each tile; a per-column scalar
// gain α_j is fitted by least squares so that α_j·I_non-ideal tracks
// I_ideal, and the digital periphery multiplies every subsequent ADC
// reading by α_j.
//
// Gain calibration removes the *average* (data-independent) distortion
// of each column; the data-dependent residue — exactly what GENIEx
// models — remains, which is why compensation narrows but does not
// close the gap to ideal.
type Calibrated struct {
	// Inner is the analog model being compensated.
	Inner Model
	// Samples is the number of random calibration vectors per tile
	// (default 32).
	Samples int
	// Seed drives calibration vector generation.
	Seed uint64
	// Xbar must match the engine's crossbar design point (needed to
	// generate in-range calibration voltages).
	Xbar xbar.Config
}

// Name implements Model.
func (c Calibrated) Name() string { return c.Inner.Name() + "+cal" }

func (c Calibrated) surrogate() *core.Model { return surrogateOf(c.Inner) }

// NewTile implements Model: it builds the inner tile, fits the
// per-column gains, and returns the corrected tile.
func (c Calibrated) NewTile(g *linalg.Dense) (Tile, error) {
	inner, err := c.Inner.NewTile(g)
	if err != nil {
		return nil, err
	}
	samples := c.Samples
	if samples == 0 {
		samples = 32
	}
	if samples < 1 {
		return nil, fmt.Errorf("funcsim: calibration with %d samples", samples)
	}
	rng := linalg.NewRNG(c.Seed ^ 0xca11b7a7e)
	v := linalg.NewDense(samples, g.Rows)
	sparsities := []float64{0, 0.5, 0.9}
	for s := 0; s < samples; s++ {
		sp := sparsities[s%len(sparsities)]
		row := v.Row(s)
		for i := range row {
			if rng.Float64() >= sp {
				row[i] = c.Xbar.Vsupply * rng.Float64()
			}
		}
	}
	non, err := inner.Currents(v)
	if err != nil {
		return nil, fmt.Errorf("funcsim: calibration solve: %w", err)
	}
	ideal := linalg.MatMul(v, g)
	gain := make([]float64, g.Cols)
	for j := range gain {
		var num, den float64
		for s := 0; s < samples; s++ {
			num += ideal.At(s, j) * non.At(s, j)
			den += non.At(s, j) * non.At(s, j)
		}
		if den <= 0 {
			gain[j] = 1 // dark column: nothing to correct
			continue
		}
		gain[j] = num / den
	}
	return &calibratedTile{inner: inner, gain: gain}, nil
}

type calibratedTile struct {
	inner Tile
	gain  []float64
}

// Currents implements Tile: inner currents with per-column gains
// applied (the digital-domain correction, modeled in the current
// domain before the ADC back-conversion).
func (t *calibratedTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	curr, err := t.inner.Currents(v)
	if err != nil {
		return nil, err
	}
	t.apply(curr)
	return curr, nil
}

// CurrentsInto implements the allocation-free fast path when the inner
// tile supports it.
func (t *calibratedTile) CurrentsInto(dst, v *linalg.Dense) error {
	return t.currentsVC(dst, v, nil)
}

func (t *calibratedTile) currentsVC(dst, v *linalg.Dense, vc *core.VContext) error {
	if err := currentsInto(nil, t.inner, dst, v, vc); err != nil {
		return err
	}
	t.apply(dst)
	return nil
}

// CurrentsCtxInto implements ctxTile by forwarding the context to the
// wrapped tile, so a decorated circuit tile stays cancellable.
func (t *calibratedTile) CurrentsCtxInto(ctx context.Context, dst, v *linalg.Dense) error {
	if err := currentsInto(ctx, t.inner, dst, v, nil); err != nil {
		return err
	}
	t.apply(dst)
	return nil
}

// apply multiplies the fitted per-column gains in place; gains are
// read-only after calibration, so this is safe from concurrent tasks.
func (t *calibratedTile) apply(curr *linalg.Dense) {
	for b := 0; b < curr.Rows; b++ {
		row := curr.Row(b)
		for j := range row {
			row[j] *= t.gain[j]
		}
	}
}
