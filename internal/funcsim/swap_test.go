package funcsim

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"geniex/internal/linalg"
)

// swappableEngine lowers the test workload under a hot-swappable
// engine running the given model.
func swappableEngine(t *testing.T, model Model, workers int) (*Engine, *Matrix, *linalg.Dense) {
	t.Helper()
	cfg := exactConfig(8, 8)
	cfg.Workers = workers
	cfg.Swappable = true
	eng, err := NewEngine(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	w, x := testWorkload(77, 20, 12, 4) // 3×2 tile grid
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	return eng, mat, x
}

// refMVM computes the reference output of the workload under a fixed
// model on its own non-swappable engine.
func refMVM(t *testing.T, model Model) *linalg.Dense {
	t.Helper()
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	w, x := testWorkload(77, 20, 12, 4)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	y, err := mat.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

// SwapModel on an engine built without Config.Swappable must refuse:
// conductances were not retained, so there is nothing to re-program.
func TestSwapModelNotSwappable(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.SwapModel(Analytical{Cfg: cfg.Xbar}); err == nil {
		t.Fatal("SwapModel on a non-swappable engine did not error")
	}
	if got := eng.ModelVersion(); got != 1 {
		t.Fatalf("version after refused swap = %d, want 1", got)
	}
}

// A hot-swap must atomically change what the matrix computes: after
// SwapModel the output is bit-identical to a fresh engine running the
// new model, the version advances, and swapping back restores the old
// output exactly.
func TestSwapModelChangesOutput(t *testing.T) {
	cfg := exactConfig(8, 8)
	idealRef := refMVM(t, Ideal{})
	analRef := refMVM(t, Analytical{Cfg: cfg.Xbar})

	eng, mat, x := swappableEngine(t, Ideal{}, 0)
	y, err := mat.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	if !sameData(y, idealRef) {
		t.Fatal("pre-swap output does not match the ideal reference")
	}
	if v := eng.ModelVersion(); v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}

	v, err := eng.SwapModel(Analytical{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || eng.ModelVersion() != 2 {
		t.Fatalf("version after swap = %d / %d, want 2", v, eng.ModelVersion())
	}
	if eng.ModelName() != (Analytical{}).Name() {
		t.Fatalf("ModelName after swap = %q", eng.ModelName())
	}
	if y, err = mat.MVM(x); err != nil {
		t.Fatal(err)
	}
	if !sameData(y, analRef) {
		t.Fatal("post-swap output does not match the analytical reference")
	}

	if v, err = eng.SwapModel(Ideal{}); err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("version after second swap = %d, want 3", v)
	}
	if y, err = mat.MVM(x); err != nil {
		t.Fatal(err)
	}
	if !sameData(y, idealRef) {
		t.Fatal("swap back did not restore the ideal output bit-for-bit")
	}
}

func sameData(a, b *linalg.Dense) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// Concurrent MVMs racing SwapModel: every result must bit-match one of
// the two models' reference outputs — never a mix of versions — and no
// MVM may fail or block. Run under -race this is also the memory-model
// gate for the acquire/publish/drain protocol.
func TestSwapModelConcurrentMVMs(t *testing.T) {
	cfg := exactConfig(8, 8)
	idealRef := refMVM(t, Ideal{})
	analRef := refMVM(t, Analytical{Cfg: cfg.Xbar})

	eng, mat, x := swappableEngine(t, Ideal{}, 0)

	const clients = 4
	iters := 40
	swaps := 24
	if raceDetectorEnabled {
		iters, swaps = 20, 12
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	mixed := make(chan int, clients*iters)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := linalg.NewDense(x.Rows, mat.Out())
			for i := 0; i < iters; i++ {
				if err := mat.MVMInto(y, x); err != nil {
					errs <- fmt.Errorf("MVM %d under swaps: %w", i, err)
					return
				}
				if !sameData(y, idealRef) && !sameData(y, analRef) {
					mixed <- i
					return
				}
			}
		}()
	}
	models := []Model{Analytical{Cfg: cfg.Xbar}, Ideal{}}
	prev := eng.ModelVersion()
	for s := 0; s < swaps; s++ {
		v, err := eng.SwapModel(models[s%2])
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("swap %d: version %d did not advance past %d", s, v, prev)
		}
		prev = v
	}
	wg.Wait()
	close(errs)
	close(mixed)
	for err := range errs {
		t.Error(err)
	}
	if i, ok := <-mixed; ok {
		t.Fatalf("MVM %d produced an output matching neither model — mixed-version evaluation", i)
	}
}

// gatedModel wraps a model so every tile evaluation announces itself
// and then blocks until the gate opens — a handle on an MVM caught
// mid-flight.
type gatedModel struct {
	inner Model
	enter chan struct{} // one send per tile evaluation start
	gate  chan struct{} // closed to release them
}

func (g gatedModel) Name() string { return "gated-" + g.inner.Name() }

func (g gatedModel) NewTile(gm *linalg.Dense) (Tile, error) {
	t, err := g.inner.NewTile(gm)
	if err != nil {
		return nil, err
	}
	return gatedTile{inner: t, enter: g.enter, gate: g.gate}, nil
}

type gatedTile struct {
	inner Tile
	enter chan struct{}
	gate  chan struct{}
}

func (t gatedTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	select {
	case t.enter <- struct{}{}:
	default:
	}
	<-t.gate
	return t.inner.Currents(v)
}

// SwapModel must not return until the in-flight MVMs of the retired
// version drain: catch an MVM blocked inside a tile evaluation, start
// a swap, and verify it completes only after the MVM is released.
func TestSwapModelDrainsInflight(t *testing.T) {
	enter := make(chan struct{}, 64)
	gate := make(chan struct{})
	eng, mat, x := swappableEngine(t, gatedModel{inner: Ideal{}, enter: enter, gate: gate}, 1)

	mvmDone := make(chan error, 1)
	go func() {
		_, err := mat.MVM(x)
		mvmDone <- err
	}()
	<-enter // an MVM is now pinned inside the version-1 tile set

	swapDone := make(chan int64, 1)
	go func() {
		v, err := eng.SwapModel(Ideal{})
		if err != nil {
			t.Error(err)
		}
		swapDone <- v
	}()

	select {
	case <-swapDone:
		t.Fatal("SwapModel returned while an MVM was still in flight on the old version")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if err := <-mvmDone; err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-swapDone:
		if v != 2 {
			t.Fatalf("drained swap published version %d, want 2", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SwapModel did not complete after the in-flight MVM drained")
	}
}

// A probe shadow-solve in flight across a swap must complete against
// valid conductances: the engine retains them outside the versioned
// tile sets, so queued probe jobs survive any number of model swaps.
func TestSwapDuringInflightProbeShadowSolve(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.Workers = 1
	cfg.ProbeRate = 1
	cfg.Swappable = true
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	w, x := testWorkload(77, 20, 12, 4)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}

	// Stall the probe worker so sampled jobs queue up, then swap the
	// model out from under them before letting the solver run.
	p := eng.Probe()
	release := make(chan struct{})
	p.setSolveHook(func(*probeJob) { <-release })
	if _, err := mat.MVM(x); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SwapModel(Analytical{Cfg: cfg.Xbar}); err != nil {
		t.Fatal(err)
	}
	p.setSolveHook(nil)
	close(release)
	// The stalled job resumes under the hook; further samples solve for
	// real against the retained conductances.
	if _, err := mat.MVM(x); err != nil {
		t.Fatal(err)
	}
	if !p.Drain(30 * time.Second) {
		t.Fatal("probe did not drain after the swap")
	}
	s := p.Stats()
	if s.Failures != 0 {
		t.Fatalf("%d shadow-solves failed across the swap: %+v", s.Failures, s)
	}
	if s.Solved == 0 {
		t.Fatalf("no shadow-solves completed: %+v", s)
	}
}
