package funcsim

import (
	"testing"

	"geniex/internal/linalg"
)

func TestStatsCountersAccumulate(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	r := linalg.NewRNG(1)
	w := randMatrix(r, 8, 8, 2)
	lm, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	x := randMatrix(r, 4, 8, 2)
	if _, err := lm.MVM(x); err != nil {
		t.Fatal(err)
	}
	s := lm.Stats()
	if s.MVMRows != 4 {
		t.Errorf("MVMRows = %d, want 4", s.MVMRows)
	}
	if s.CrossbarOps == 0 || s.ADCConversions == 0 || s.AccOps == 0 {
		t.Errorf("counters not accumulating: %s", s)
	}
	if s.ADCConversions != s.CrossbarOps*int64(cfg.Xbar.Cols) {
		t.Errorf("ADC conversions %d inconsistent with crossbar ops %d", s.ADCConversions, s.CrossbarOps)
	}
	lm.ResetStats()
	if lm.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear counters")
	}
}

// Sparse inputs must cost fewer crossbar operations than dense inputs
// (the zero-skipping the differential encoding enables).
func TestStatsSparsitySavesWork(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	r := linalg.NewRNG(2)
	w := randMatrix(r, 8, 8, 2)

	dense, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	xDense := randMatrix(r, 4, 8, 2)
	if _, err := dense.MVM(xDense); err != nil {
		t.Fatal(err)
	}

	sparse, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	xSparse := linalg.NewDense(4, 8) // all zero
	if _, err := sparse.MVM(xSparse); err != nil {
		t.Fatal(err)
	}
	if sparse.Stats().CrossbarOps >= dense.Stats().CrossbarOps {
		t.Errorf("sparse ops %d not below dense ops %d",
			sparse.Stats().CrossbarOps, dense.Stats().CrossbarOps)
	}
	if sparse.Stats().SkippedPasses == 0 {
		t.Error("zero input should skip passes")
	}
}

func TestSimStatsAggregation(t *testing.T) {
	r := linalg.NewRNG(3)
	net := buildTinyCNN(r)
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := randMatrix(r, 2, 36, 1)
	if _, err := sim.Forward(x); err != nil {
		t.Fatal(err)
	}
	s := sim.Stats()
	if s.CrossbarOps == 0 || s.MVMRows == 0 {
		t.Errorf("aggregated stats empty: %s", s)
	}
	sim.ResetStats()
	if sim.Stats() != (Stats{}) {
		t.Error("Sim.ResetStats did not clear")
	}
}

func TestEnergyEstimate(t *testing.T) {
	em := DefaultEnergyModel()
	cfg := DefaultConfig()
	s := Stats{CrossbarOps: 1000, ADCConversions: 64000, ShiftAdds: 64000, AccOps: 4096, MVMRows: 64}
	r := em.Estimate(s, cfg)
	if r.Energy <= 0 || r.Latency <= 0 {
		t.Fatalf("non-positive estimate: %+v", r)
	}
	// Doubling the op counts must double the energy.
	s2 := s
	s2.CrossbarOps *= 2
	s2.ADCConversions *= 2
	s2.ShiftAdds *= 2
	s2.AccOps *= 2
	s2.MVMRows *= 2
	r2 := em.Estimate(s2, cfg)
	if r2.Energy <= r.Energy*1.99 || r2.Energy >= r.Energy*2.01 {
		t.Errorf("energy not linear in ops: %v vs %v", r2.Energy, r.Energy)
	}
}

// Wider streams mean fewer sequential steps: latency per MVM row must
// drop as StreamBits grows.
func TestEnergyLatencyVsStreamWidth(t *testing.T) {
	em := DefaultEnergyModel()
	s := Stats{MVMRows: 100}
	lat := func(streamBits int) float64 {
		cfg := DefaultConfig()
		cfg.StreamBits = streamBits
		return em.Estimate(s, cfg).Latency
	}
	if !(lat(1) > lat(2) && lat(2) > lat(4)) {
		t.Errorf("latency not decreasing with stream width: %v %v %v", lat(1), lat(2), lat(4))
	}
}

func TestCrossbarsCount(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	// All-positive weights: only positive crossbars are allocated.
	wPos := linalg.NewDense(8, 8)
	linalg.Fill(wPos.Data, 1)
	lmPos, err := eng.Lower(wPos)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed-sign weights: positive and negative crossbars.
	wMix := wPos.Clone()
	wMix.Data[0] = -1
	lmMix, err := eng.Lower(wMix)
	if err != nil {
		t.Fatal(err)
	}
	if lmMix.Crossbars() != 2*lmPos.Crossbars() {
		t.Errorf("mixed-sign crossbars = %d, want %d", lmMix.Crossbars(), 2*lmPos.Crossbars())
	}
}
