package funcsim

import (
	"context"
	"fmt"
	"sync"

	"geniex/internal/core"
	"geniex/internal/linalg"
)

// Noisy wraps an analog model with stochastic read noise: every sensed
// column current is perturbed by zero-mean Gaussian noise whose
// standard deviation is Sigma × the column's full-scale current. This
// models the thermal/shot-noise error sources analysed by the AMS
// framework the paper compares against (Table 1) and is independent of
// the deterministic distortions the wrapped model produces.
//
// Noise is deterministic given the Seed: each tile derives its own
// stream, and draws advance with every Currents call, so repeated runs
// of the same workload see identical noise.
type Noisy struct {
	// Inner is the analog model being perturbed.
	Inner Model
	// Sigma is the noise standard deviation as a fraction of the
	// crossbar full-scale current.
	Sigma float64
	// FullScale is the full-scale current (amperes); zero derives it
	// from nothing and is an error — callers pass
	// rows·Vsupply·Gon of their design point.
	FullScale float64
	// Seed drives the noise streams.
	Seed uint64

	mu    sync.Mutex
	tiles int
}

// Name implements Model.
func (n *Noisy) Name() string { return n.Inner.Name() + "+noise" }

func (n *Noisy) surrogate() *core.Model { return surrogateOf(n.Inner) }

// NewTile implements Model.
func (n *Noisy) NewTile(g *linalg.Dense) (Tile, error) {
	if n.Sigma < 0 {
		return nil, fmt.Errorf("funcsim: negative noise sigma %g", n.Sigma)
	}
	if n.FullScale <= 0 {
		return nil, fmt.Errorf("funcsim: noise wrapper needs a positive full-scale current")
	}
	inner, err := n.Inner.NewTile(g)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	id := n.tiles
	n.tiles++
	n.mu.Unlock()
	return &noisyTile{
		inner: inner,
		std:   n.Sigma * n.FullScale,
		rng:   linalg.NewRNG(n.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
	}, nil
}

type noisyTile struct {
	inner Tile
	std   float64

	// The RNG stream advances with every draw; parallel tile tasks may
	// evaluate the same tile concurrently, so draws are serialized.
	// Which task draws first is scheduling-dependent, so the engine's
	// bit-exact-at-any-worker-count guarantee covers the deterministic
	// models only, not the noise ordering (see DESIGN.md).
	mu  sync.Mutex
	rng *linalg.RNG
}

// Currents implements Tile.
func (t *noisyTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	curr, err := t.inner.Currents(v)
	if err != nil {
		return nil, err
	}
	t.perturb(curr)
	return curr, nil
}

// CurrentsInto implements the allocation-free fast path when the inner
// tile supports it.
func (t *noisyTile) CurrentsInto(dst, v *linalg.Dense) error {
	return t.currentsVC(dst, v, nil)
}

func (t *noisyTile) currentsVC(dst, v *linalg.Dense, vc *core.VContext) error {
	if err := currentsInto(nil, t.inner, dst, v, vc); err != nil {
		return err
	}
	t.perturb(dst)
	return nil
}

// CurrentsCtxInto implements ctxTile by forwarding the context to the
// wrapped tile, so a decorated circuit tile stays cancellable.
func (t *noisyTile) CurrentsCtxInto(ctx context.Context, dst, v *linalg.Dense) error {
	if err := currentsInto(ctx, t.inner, dst, v, nil); err != nil {
		return err
	}
	t.perturb(dst)
	return nil
}

func (t *noisyTile) perturb(curr *linalg.Dense) {
	if t.std == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range curr.Data {
		curr.Data[i] += t.rng.NormScaled(0, t.std)
		if curr.Data[i] < 0 {
			curr.Data[i] = 0 // a sense amplifier cannot report negative current
		}
	}
}
