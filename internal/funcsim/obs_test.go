package funcsim

import (
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/obs"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

func TestNewConfigValidatesOnce(t *testing.T) {
	xcfg := xbar.DefaultConfig()
	xcfg.Rows, xcfg.Cols = 16, 16
	cfg, err := NewConfig(xcfg,
		WithFormats(quant.FxP{Bits: 8, Frac: 4}, quant.FxP{Bits: 8, Frac: 4}),
		WithStreamBits(2), WithSliceBits(2), WithADCBits(12),
		WithAcc(quant.Acc{Bits: 32, Frac: 8}), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Xbar.Rows != 16 || cfg.Weight.Bits != 8 || cfg.StreamBits != 2 ||
		cfg.SliceBits != 2 || cfg.ADCBits != 12 || cfg.Acc.Bits != 32 || cfg.Workers != 2 {
		t.Errorf("options not applied: %+v", cfg)
	}
	if _, err := NewConfig(xbar.Config{}); err == nil {
		t.Error("invalid crossbar accepted")
	}
	if _, err := NewConfig(xcfg, WithStreamBits(99)); err == nil {
		t.Error("oversized stream width accepted")
	}
	if _, err := NewConfig(xcfg, WithWorkers(-1)); err == nil {
		t.Error("negative Workers accepted")
	}
}

// The reset convention: Stats reads without clearing, ResetStats
// atomically clears and returns what it cleared.
func TestMatrixResetStatsSwapSemantics(t *testing.T) {
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(31, 12, 10, 3)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.MVM(x); err != nil {
		t.Fatal(err)
	}
	before := mat.Stats()
	if before.MVMRows != int64(x.Rows) || before.CrossbarOps == 0 {
		t.Fatalf("unexpected stats after MVM: %+v", before)
	}
	if again := mat.Stats(); again != before {
		t.Errorf("Stats read cleared counters: %+v != %+v", again, before)
	}
	cleared := mat.ResetStats()
	if cleared != before {
		t.Errorf("ResetStats returned %+v, want the cleared counts %+v", cleared, before)
	}
	if after := mat.Stats(); after != (Stats{}) {
		t.Errorf("counters not cleared: %+v", after)
	}
}

func TestSolverHealthResetSwapSemantics(t *testing.T) {
	var h SolverHealth
	h.record(&xbar.BatchReport{
		Outcomes:     make([]xbar.ItemOutcome, 4),
		Recovered:    1,
		Unconverged:  2,
		LUFallbacks:  3,
		CGBreakdowns: 5,
	})
	before := h.Counts()
	if before.Batches != 1 || before.Items != 4 || before.Recovered != 1 ||
		before.Unconverged != 2 || before.LUFallbacks != 3 || before.CGBreakdowns != 5 {
		t.Fatalf("unexpected counts: %+v", before)
	}
	if again := h.Counts(); again != before {
		t.Errorf("Counts read cleared counters: %+v != %+v", again, before)
	}
	if cleared := h.Reset(); cleared != before {
		t.Errorf("Reset returned %+v, want %+v", cleared, before)
	}
	if after := h.Counts(); after != (SolverHealthCounts{}) {
		t.Errorf("counters not cleared: %+v", after)
	}
}

// An MVM must land in the process-wide registry: call count, latency
// and per-tile latency histograms, and the hardware-event mirrors.
func TestMVMRecordsObsMetrics(t *testing.T) {
	before := obs.Snapshot()

	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(47, 20, 12, 4)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := mat.MVM(x); err != nil {
			t.Fatal(err)
		}
	}

	after := obs.Snapshot()
	if d := after.Counters["funcsim.mvm.calls"] - before.Counters["funcsim.mvm.calls"]; d != 3 {
		t.Errorf("MVM call counter moved by %d, want 3", d)
	}
	if d := after.Histograms["funcsim.mvm.latency_seconds"].Count - before.Histograms["funcsim.mvm.latency_seconds"].Count; d != 3 {
		t.Errorf("MVM latency histogram moved by %d, want 3", d)
	}
	tr, tc, _ := mat.Tiles()
	wantTiles := int64(3 * tr * tc)
	if d := after.Histograms["funcsim.tile.latency_seconds"].Count - before.Histograms["funcsim.tile.latency_seconds"].Count; d != wantTiles {
		t.Errorf("tile latency histogram moved by %d, want %d", d, wantTiles)
	}
	if d := after.Counters["funcsim.mvm.crossbar_ops"] - before.Counters["funcsim.mvm.crossbar_ops"]; d <= 0 {
		t.Errorf("crossbar-op mirror moved by %d, want > 0", d)
	}
	if d := after.Counters["funcsim.mvm.rows"] - before.Counters["funcsim.mvm.rows"]; d != int64(3*x.Rows) {
		t.Errorf("MVM row mirror moved by %d, want %d", d, 3*x.Rows)
	}
	// The first MVM builds the run, later ones hit the freelist.
	hits := after.Counters["funcsim.run.freelist_hits"] - before.Counters["funcsim.run.freelist_hits"]
	misses := after.Counters["funcsim.run.freelist_misses"] - before.Counters["funcsim.run.freelist_misses"]
	if misses < 1 || hits < 2 {
		t.Errorf("freelist counters hits=%d misses=%d, want ≥2 hits and ≥1 miss", hits, misses)
	}
	// Registry mirrors and per-matrix counters must agree on the work.
	if got := mat.Stats().CrossbarOps; got != after.Counters["funcsim.mvm.crossbar_ops"]-before.Counters["funcsim.mvm.crossbar_ops"] {
		t.Errorf("matrix counters (%d crossbar ops) disagree with registry delta", got)
	}
}

// End-to-end: a small circuit-model funcsim run must leave nonzero
// solver metrics (Newton iterations from the crossbar solves) and tile
// metrics in one registry snapshot — the wiring the metrics endpoint
// exposes.
func TestEndToEndRunPopulatesSolverAndTileMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit solves are slow")
	}
	before := obs.Snapshot()

	cfg := exactConfig(4, 4)
	cfg.ADCBits = 12
	cfg.Xbar.BatchWorkers = 1
	eng, err := NewEngine(cfg, Circuit{Cfg: cfg.Xbar, Health: &SolverHealth{}})
	if err != nil {
		t.Fatal(err)
	}
	w, x := testWorkload(53, 4, 4, 2)
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.MVM(x); err != nil {
		t.Fatal(err)
	}

	after := obs.Snapshot()
	if d := after.Histograms["xbar.solver.newton_iters"].Count - before.Histograms["xbar.solver.newton_iters"].Count; d <= 0 {
		t.Errorf("Newton iteration histogram moved by %d, want > 0", d)
	}
	if d := after.Histograms["funcsim.tile.latency_seconds"].Count - before.Histograms["funcsim.tile.latency_seconds"].Count; d <= 0 {
		t.Errorf("tile latency histogram moved by %d, want > 0", d)
	}
	if d := after.Counters["xbar.solver.solves"] - before.Counters["xbar.solver.solves"]; d <= 0 {
		t.Errorf("solve counter moved by %d, want > 0", d)
	}
}

// Forward must time every layer and record the precomputed span names.
func TestForwardRecordsLayerMetrics(t *testing.T) {
	before := obs.Snapshot()

	r := linalg.NewRNG(17)
	net := buildTinyCNN(r)
	cfg := exactConfig(8, 8)
	cfg.Weight = quant.FxP{Bits: 16, Frac: 12}
	cfg.Act = quant.FxP{Bits: 16, Frac: 12}
	cfg.StreamBits, cfg.SliceBits = 4, 4
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(2, 36)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	if _, err := sim.Forward(x); err != nil {
		t.Fatal(err)
	}

	after := obs.Snapshot()
	// Residual bodies are Sims, so the forward histogram moves at least
	// twice (outer pass + body pass) and layers at least len(layers).
	if d := after.Histograms["funcsim.forward.latency_seconds"].Count - before.Histograms["funcsim.forward.latency_seconds"].Count; d < 2 {
		t.Errorf("forward latency histogram moved by %d, want ≥ 2", d)
	}
	if d := after.Histograms["funcsim.forward.layer_seconds"].Count - before.Histograms["funcsim.forward.layer_seconds"].Count; d < int64(len(sim.layers)) {
		t.Errorf("layer latency histogram moved by %d, want ≥ %d", d, len(sim.layers))
	}
	spans := obs.Default().Spans()
	found := false
	for _, ev := range spans {
		if ev.Name == sim.spanNames[0] {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no span named %q in trace ring (%d spans)", sim.spanNames[0], len(spans))
	}
}

// Layer spans must carry stable, descriptive names fixed at lowering.
func TestSpanNamesPrecomputed(t *testing.T) {
	r := linalg.NewRNG(23)
	net := nn.NewSequential(
		nn.NewLinear(8, 4, true, r),
		nn.NewReLU(),
	)
	cfg := exactConfig(8, 8)
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"funcsim.layer.00.linear", "funcsim.layer.01.digital"}
	if len(sim.spanNames) != len(want) {
		t.Fatalf("span names %v, want %v", sim.spanNames, want)
	}
	for i := range want {
		if sim.spanNames[i] != want[i] {
			t.Errorf("spanNames[%d] = %q, want %q", i, sim.spanNames[i], want[i])
		}
	}
}
