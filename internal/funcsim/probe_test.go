package funcsim

import (
	"testing"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// probedEngine lowers the test workload under an engine with the
// fidelity probe enabled at the given rate.
func probedEngine(t *testing.T, rate int) (*Engine, *Matrix, *linalg.Dense) {
	t.Helper()
	cfg := exactConfig(8, 8)
	cfg.Workers = 1
	cfg.ProbeRate = rate
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	w, x := testWorkload(77, 20, 12, 4) // 3×2 tile grid
	mat, err := eng.Lower(w)
	if err != nil {
		t.Fatal(err)
	}
	return eng, mat, x
}

// With probing enabled the engine must sample tile MVMs, shadow-solve
// them through the circuit solver, and report a nonzero divergence —
// the ideal model ignores every non-ideality, so rrmse > 0.
func TestProbeSamplesAndSolves(t *testing.T) {
	eng, mat, x := probedEngine(t, 1)
	for i := 0; i < 4; i++ {
		if _, err := mat.MVM(x); err != nil {
			t.Fatal(err)
		}
	}
	p := eng.Probe()
	if p == nil {
		t.Fatal("engine with ProbeRate=1 has no probe")
	}
	if !p.Drain(30 * time.Second) {
		t.Fatal("probe did not drain")
	}
	s := p.Stats()
	if s.Sampled == 0 {
		t.Fatal("no tile MVMs sampled")
	}
	if s.Solved == 0 {
		t.Fatalf("no shadow-solves completed: %+v", s)
	}
	if s.Failures != 0 {
		t.Errorf("%d shadow-solves failed", s.Failures)
	}
	if s.RRMSEEWMA <= 0 {
		t.Errorf("ideal-vs-circuit rrmse EWMA = %g, want > 0", s.RRMSEEWMA)
	}
	if len(s.Tiles) == 0 {
		t.Fatal("no per-tile aggregates recorded")
	}
	for i, ts := range s.Tiles {
		if ts.Probes <= 0 || ts.MeanRRMSE <= 0 {
			t.Errorf("tile %d: %+v, want positive probe count and rrmse", i, ts)
		}
		if i > 0 {
			prev := s.Tiles[i-1]
			if prev.Matrix > ts.Matrix ||
				(prev.Matrix == ts.Matrix && prev.TileRow > ts.TileRow) ||
				(prev.Matrix == ts.Matrix && prev.TileRow == ts.TileRow && prev.TileCol >= ts.TileCol) {
				t.Errorf("tiles not sorted at %d: %+v after %+v", i, ts, prev)
			}
		}
	}
	if got := s.String(); got == "" {
		t.Error("empty Stats summary")
	}
}

// A stalled solver must never block the MVM hot path: samples beyond
// the queue capacity drop and are counted, and the MVM itself keeps
// returning correct results.
func TestProbeDropsNeverBlocks(t *testing.T) {
	eng, mat, x := probedEngine(t, 1)
	p := eng.Probe()
	release := make(chan struct{})
	p.setSolveHook(func(*probeJob) { <-release })
	defer close(release)

	ref, err := mat.MVM(x)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the queue: each MVM samples 6 tile tasks at rate 1; run
	// enough to exhaust queue+freelist many times over.
	for i := 0; i < 30; i++ {
		y, err := mat.MVM(x)
		if err != nil {
			t.Fatalf("MVM %d under stalled probe: %v", i, err)
		}
		for j := range ref.Data {
			if y.Data[j] != ref.Data[j] {
				t.Fatalf("MVM %d output diverged under stalled probe", i)
			}
		}
	}
	s := p.Stats()
	if s.Dropped == 0 {
		t.Errorf("stalled probe dropped nothing (sampled %d): queue must be bounded", s.Sampled)
	}
	if s.Sampled < s.Dropped {
		t.Errorf("dropped %d > sampled %d", s.Dropped, s.Sampled)
	}
}

// The sampling decision plus the drop path must not allocate: with the
// worker stalled and the queue saturated, steady-state MVMInto keeps
// the 0 allocs/op contract of the unprobed pipeline.
func TestProbedMVMIntoSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates")
	}
	eng, mat, x := probedEngine(t, 1)
	p := eng.Probe()
	release := make(chan struct{})
	p.setSolveHook(func(*probeJob) { <-release })
	defer close(release)

	dst := linalg.NewDense(x.Rows, mat.Out())
	for i := 0; i < 12; i++ { // warm pools and exhaust the probe freelist
		if err := mat.MVMInto(dst, x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := mat.MVMInto(dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("probed steady-state MVMInto allocates %.1f objects per call, want 0", allocs)
	}
	if s := p.Stats(); s.Dropped == 0 {
		t.Errorf("expected saturated probe to drop (sampled %d)", s.Sampled)
	}
}

// SetBaseline arms the drift gauge immediately.
func TestProbeSetBaseline(t *testing.T) {
	eng, mat, x := probedEngine(t, 1)
	p := eng.Probe()
	p.SetBaseline(0.01)
	for i := 0; i < 2; i++ {
		if _, err := mat.MVM(x); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Drain(30 * time.Second) {
		t.Fatal("probe did not drain")
	}
	s := p.Stats()
	if !s.BaselineRecorded || s.Baseline != 0.01 {
		t.Errorf("baseline = %+v, want recorded 0.01", s)
	}
	if s.Drift != s.RRMSEEWMA-s.Baseline {
		t.Errorf("drift = %g, want %g", s.Drift, s.RRMSEEWMA-s.Baseline)
	}
}

// ProbeRate is validated, the probe is absent when disabled, and Close
// is idempotent.
func TestProbeConfigAndLifecycle(t *testing.T) {
	cfg := exactConfig(8, 8)
	cfg.ProbeRate = -1
	if _, err := NewEngine(cfg, Ideal{}); err == nil {
		t.Error("negative ProbeRate accepted")
	}
	cfg.ProbeRate = 0
	eng, err := NewEngine(cfg, Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Probe() != nil {
		t.Error("ProbeRate=0 engine has a probe")
	}
	eng.Close() // no probe: must be a no-op
	eng2, _, _ := probedEngine(t, 4)
	eng2.Close()
	eng2.Close() // idempotent
}

// The probe publishes into the process-wide fidelity metrics.
func TestProbePublishesMetrics(t *testing.T) {
	before := obs.Default().Snapshot()
	eng, mat, x := probedEngine(t, 1)
	for i := 0; i < 2; i++ {
		if _, err := mat.MVM(x); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.Probe().Drain(30 * time.Second) {
		t.Fatal("probe did not drain")
	}
	after := obs.Default().Snapshot()
	if d := after.Counters["funcsim.probe.solved"] - before.Counters["funcsim.probe.solved"]; d <= 0 {
		t.Errorf("funcsim.probe.solved advanced by %d, want > 0", d)
	}
	rr := after.Histograms["funcsim.probe.rrmse"]
	if rr.Count == 0 || rr.Sum <= 0 {
		t.Errorf("funcsim.probe.rrmse = %+v, want nonzero samples", rr)
	}
}
