package hwtrain

import "geniex/internal/obs"

// Metric handles for hardware-aware fine-tuning, registered once in
// the process-wide obs registry. The full catalog is documented in
// DESIGN.md §7.
var (
	mSteps         = obs.NewCounter("hwtrain.steps")
	mStepLatency   = obs.NewHistogram("hwtrain.step.latency_seconds", obs.LatencyBuckets)
	mEpochLatency  = obs.NewHistogram("hwtrain.epoch.latency_seconds", obs.LatencyBuckets)
	mRelowers      = obs.NewCounter("hwtrain.relowers")
	mPendingErrors = obs.NewCounter("hwtrain.pending_errors")
)
