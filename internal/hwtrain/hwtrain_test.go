package hwtrain

import (
	"testing"

	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/models"
	"geniex/internal/nn"
	"geniex/internal/quant"
)

// harshSim returns a simulator configuration with strong distortion so
// retraining has something to recover.
func harshSim() funcsim.Config {
	cfg := funcsim.DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = 8, 8
	cfg.Xbar.Ron = 25e3
	cfg.Xbar.OnOffRatio = 2
	cfg.Xbar.Rwire = 25
	cfg.Weight = quant.FxP{Bits: 8, Frac: 4}
	cfg.Act = quant.FxP{Bits: 8, Frac: 4}
	cfg.StreamBits, cfg.SliceBits = 2, 2
	return cfg
}

func TestWrapNetworkSharesParams(t *testing.T) {
	r := linalg.NewRNG(1)
	net := nn.NewSequential(
		nn.NewLinear(8, 8, true, r),
		nn.NewReLU(),
		nn.NewResidual(nn.NewLinear(8, 8, true, r)),
	)
	eng, err := funcsim.NewEngine(harshSim(), funcsim.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapNetwork(net, eng, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := net.Params()
	b := wrapped.Params()
	if len(a) != len(b) {
		t.Fatalf("param count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d not shared", i)
		}
	}
}

func TestWrappedForwardMatchesSimLowering(t *testing.T) {
	r := linalg.NewRNG(2)
	net := nn.NewSequential(nn.NewLinear(8, 8, true, r))
	cfg := harshSim()
	eng, err := funcsim.NewEngine(cfg, funcsim.Analytical{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapNetwork(net, eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(3, 8)
	for i := range x.Data {
		x.Data[i] = r.Norm() / 2
	}
	got := wrapped.Forward(x, false)

	sim, err := funcsim.Lower(net, eng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("wrapped forward differs from lowered network at %d: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
}

// The straight-through gradients must point downhill: a few fine-tune
// steps on the hardware forward must reduce the hardware-mode loss.
func TestFineTuneReducesHardwareLoss(t *testing.T) {
	r := linalg.NewRNG(3)
	set := dataset.SynthCIFAR(64, 32, 4)
	net := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewLinear(set.Features(), 16, true, r),
		nn.NewReLU(),
		nn.NewLinear(16, set.Classes, true, r),
	)
	cfg := harshSim()
	eng, err := funcsim.NewEngine(cfg, funcsim.Analytical{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	hwLoss := func() float64 {
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		logits, err := sim.Forward(set.TrainX)
		if err != nil {
			t.Fatal(err)
		}
		loss, _ := nn.SoftmaxCrossEntropy(logits, set.TrainY)
		return loss
	}
	before := hwLoss()
	if err := FineTune(net, eng, set, Options{Epochs: 3, BatchSize: 16, LR: 0.02, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	after := hwLoss()
	t.Logf("hardware-mode loss: before=%.4f after=%.4f", before, after)
	if after >= before {
		t.Errorf("fine-tuning did not reduce hardware loss: %v -> %v", before, after)
	}
}

// End to end mitigation: on a harsh design point, hardware-aware
// fine-tuning must recover accuracy relative to deploying the
// float-trained weights directly.
func TestFineTuneRecoversAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("hardware-in-the-loop training is slow")
	}
	set := dataset.SynthCIFAR(700, 100, 6)
	// BatchNorm-free CNN: funcsim.Lower folds BatchNorm into conv
	// weights at deployment, and those folded conductances distort
	// differently from the unfolded weights the fine-tune loop lowers.
	// Keeping the architecture BN-free makes the training-time and
	// deployment-time hardware views identical (see the package doc).
	r := linalg.NewRNG(7)
	g1 := nn.ConvGeom{InC: set.C, InH: set.H, InW: set.W, OutC: 8, Kernel: 3, Stride: 1, Pad: 1}
	g2 := nn.ConvGeom{InC: 8, InH: set.H / 2, InW: set.W / 2, OutC: 8, Kernel: 3, Stride: 1, Pad: 1}
	net := nn.NewSequential(
		nn.NewConv2D(g1, true, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(8, set.H, set.W, 2),
		nn.NewConv2D(g2, true, r),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(8, set.H/2, set.W/2),
		nn.NewLinear(8, set.Classes, true, r),
	)
	if err := models.Train(net, set, models.TrainConfig{Epochs: 12, BatchSize: 32, LR: 0.05, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	cfg := harshSim()
	eng, err := funcsim.NewEngine(cfg, funcsim.Analytical{Cfg: cfg.Xbar})
	if err != nil {
		t.Fatal(err)
	}
	hwAcc := func() float64 {
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	floatAcc := models.TestAccuracy(net, set, 64)
	before := hwAcc()
	if err := FineTune(net, eng, set, Options{Epochs: 3, BatchSize: 32, LR: 0.002, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	after := hwAcc()
	t.Logf("accuracy: float=%.1f%% hw-before=%.1f%% hw-after=%.1f%%",
		100*floatAcc, 100*before, 100*after)
	if after <= before {
		t.Errorf("fine-tuning did not recover accuracy: %.3f -> %.3f", before, after)
	}
}

func TestWrapRejectsUnknownMVMLayer(t *testing.T) {
	eng, err := funcsim.NewEngine(harshSim(), funcsim.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newHWLayer(nn.NewReLU(), eng, 1); err == nil {
		t.Error("expected error wrapping a non-MVM layer")
	}
}

func TestWrapRejectsUnfoldedBatchNorm(t *testing.T) {
	r := linalg.NewRNG(11)
	net := nn.NewSequential(
		nn.NewLinear(4, 4, true, r),
		nn.NewBatchNorm(4, 1),
	)
	eng, err := funcsim.NewEngine(harshSim(), funcsim.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WrapNetwork(net, eng, 1); err == nil {
		t.Error("expected rejection of conv/linear followed by BatchNorm")
	}
}
