package hwtrain

import (
	"errors"
	"fmt"
	"testing"

	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/nn"
)

// brokenTileModel lowers fine but fails every analog MVM, standing in
// for an unsolvable circuit tile.
type brokenTileModel struct{}

func (brokenTileModel) Name() string { return "broken-tile" }
func (brokenTileModel) NewTile(g *linalg.Dense) (funcsim.Tile, error) {
	return brokenTile{}, nil
}

type brokenTile struct{}

func (brokenTile) Currents(v *linalg.Dense) (*linalg.Dense, error) {
	return nil, fmt.Errorf("injected tile failure: %w", linalg.ErrNoConvergence)
}

// brokenLowerModel fails at lowering time (tile construction).
type brokenLowerModel struct{}

func (brokenLowerModel) Name() string { return "broken-lower" }
func (brokenLowerModel) NewTile(g *linalg.Dense) (funcsim.Tile, error) {
	return nil, errors.New("injected lowering failure")
}

func smallNet(r *linalg.RNG, features, classes int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewFlatten(),
		nn.NewLinear(features, 8, true, r),
		nn.NewReLU(),
		nn.NewLinear(8, classes, true, r),
	)
}

// A hardware-forward failure mid-training must abort FineTune with an
// error the caller can classify — never a panic, never a silent
// continuation on garbage activations.
func TestFineTuneSurfacesHardwareFailure(t *testing.T) {
	r := linalg.NewRNG(21)
	set := dataset.SynthCIFAR(32, 8, 22)
	net := smallNet(r, set.Features(), set.Classes)
	eng, err := funcsim.NewEngine(harshSim(), brokenTileModel{})
	if err != nil {
		t.Fatal(err)
	}
	err = FineTune(net, eng, set, Options{Epochs: 1, BatchSize: 16, LR: 0.01, Seed: 23})
	if err == nil {
		t.Fatal("FineTune completed despite every hardware MVM failing")
	}
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("error %v does not match linalg.ErrNoConvergence", err)
	}
}

// A lowering failure must surface the same way.
func TestFineTuneSurfacesLoweringFailure(t *testing.T) {
	r := linalg.NewRNG(24)
	set := dataset.SynthCIFAR(32, 8, 25)
	net := smallNet(r, set.Features(), set.Classes)
	eng, err := funcsim.NewEngine(harshSim(), brokenLowerModel{})
	if err != nil {
		t.Fatal(err)
	}
	err = FineTune(net, eng, set, Options{Epochs: 1, BatchSize: 16, LR: 0.01, Seed: 26})
	if err == nil {
		t.Fatal("FineTune completed despite lowering failing")
	}
}

// On failure the wrapped forward must fall back to the float result
// (keeping the network state consistent) while recording the error for
// PendingError.
func TestWrappedForwardFallsBackToFloat(t *testing.T) {
	r := linalg.NewRNG(27)
	net := nn.NewSequential(nn.NewLinear(8, 8, true, r))
	eng, err := funcsim.NewEngine(harshSim(), brokenTileModel{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapNetwork(net, eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(2, 8)
	for i := range x.Data {
		x.Data[i] = r.Norm() / 2
	}
	got := wrapped.Forward(x, false)
	want := net.Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fallback output differs from float forward at %d: %v vs %v",
				i, got.Data[i], want.Data[i])
		}
	}
	if err := PendingError(wrapped); err == nil {
		t.Error("PendingError is nil after a failed hardware forward")
	} else if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("pending error %v does not match linalg.ErrNoConvergence", err)
	}
}

// PendingError must find failures inside nested structures (Residual
// bodies and sub-Sequentials).
func TestPendingErrorRecursesNestedLayers(t *testing.T) {
	r := linalg.NewRNG(28)
	net := nn.NewSequential(
		nn.NewResidual(nn.NewLinear(8, 8, true, r)),
	)
	eng, err := funcsim.NewEngine(harshSim(), brokenTileModel{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapNetwork(net, eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewDense(1, 8)
	for i := range x.Data {
		x.Data[i] = r.Norm() / 2 // non-zero, so the analog path actually runs
	}
	wrapped.Forward(x, false)
	if PendingError(wrapped) == nil {
		t.Error("PendingError did not find the failure inside the residual body")
	}
}
