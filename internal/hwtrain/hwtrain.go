// Package hwtrain implements hardware-aware retraining: fine-tuning a
// network with the crossbar non-idealities inside the training loop so
// the weights absorb the distortion. This is the mitigation use-case
// the paper motivates (its references CxDNN [9] and technology-aware
// training [10]): an accurate model of the hardware — GENIEx — makes
// retraining effective, an inaccurate one makes it misguided.
//
// Mechanically each MVM layer's forward pass is replaced by the
// functional simulator's non-ideal execution of the *current* weights,
// while the backward pass flows through the ordinary float path — the
// straight-through estimator, standard for non-differentiable forward
// substitutions like quantization and analog execution.
package hwtrain

import (
	"fmt"

	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/nn"
	"geniex/internal/obs"
)

// Options controls hardware-aware fine-tuning.
type Options struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      uint64
	// RefreshEvery controls how often (in optimizer steps) the layer
	// weights are re-lowered onto crossbars. Lowering is expensive, so
	// the hardware view is allowed to lag a few steps behind the float
	// weights. Default 8.
	RefreshEvery int
}

func (o Options) withDefaults() Options {
	if o.Epochs == 0 {
		o.Epochs = 3
	}
	if o.BatchSize == 0 {
		o.BatchSize = 32
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.Momentum == 0 {
		o.Momentum = 0.9
	}
	if o.RefreshEvery == 0 {
		o.RefreshEvery = 8
	}
	return o
}

// hwLayer wraps one MVM layer (Conv2D or Linear) with a non-ideal
// forward.
type hwLayer struct {
	inner nn.Layer // *nn.Conv2D or *nn.Linear
	eng   *funcsim.Engine

	mat      *funcsim.Matrix // lowered view of the current weights
	staleFor int
	refresh  int

	// prod is the reusable im2col-product buffer for conv forwards:
	// the MVM result is transient (immediately re-laid-out into the
	// activation tensor), so it is computed with MVMInto instead of
	// allocating a fresh matrix every step. It survives re-lowering —
	// the lowered dimensions do not change.
	prod *linalg.Dense

	// err holds the first lowering or hardware-forward failure. The
	// nn.Layer interface cannot return errors, so Forward records the
	// failure here, falls back to the float result, and the training
	// loop surfaces it via PendingError — one bad tile aborts the run
	// with a real error instead of a panic.
	err error
}

// newHWLayer wraps inner; refresh sets the re-lowering cadence.
func newHWLayer(inner nn.Layer, eng *funcsim.Engine, refresh int) (*hwLayer, error) {
	switch inner.(type) {
	case *nn.Conv2D, *nn.Linear:
	default:
		return nil, fmt.Errorf("hwtrain: cannot wrap layer of type %T", inner)
	}
	return &hwLayer{inner: inner, eng: eng, refresh: refresh, staleFor: refresh}, nil
}

func (h *hwLayer) weights() *linalg.Dense {
	switch l := h.inner.(type) {
	case *nn.Conv2D:
		return l.Weight.W
	case *nn.Linear:
		return l.Weight.W
	}
	panic("hwtrain: unreachable")
}

func (h *hwLayer) ensureLowered() error {
	if h.mat != nil && h.staleFor < h.refresh {
		h.staleFor++
		return nil
	}
	mat, err := h.eng.Lower(h.weights())
	if err != nil {
		return err
	}
	if obs.Enabled() {
		mRelowers.Inc()
	}
	h.mat = mat
	h.staleFor = 1
	return nil
}

// Forward implements nn.Layer: the float forward runs first (in
// training mode, so backward caches populate), then the hardware
// result replaces the activation values. On a lowering or hardware
// failure the float result is returned unchanged and the error is
// recorded for PendingError — the interface has no error channel, and
// the float path keeps the network state consistent until the caller
// aborts.
func (h *hwLayer) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	float := h.inner.Forward(x, train)
	if h.err != nil {
		return float
	}
	if err := h.ensureLowered(); err != nil {
		h.err = fmt.Errorf("hwtrain: lowering: %w", err)
		return float
	}
	var hw *linalg.Dense
	var err error
	switch l := h.inner.(type) {
	case *nn.Conv2D:
		hw, err = h.forwardConv(l, x)
	case *nn.Linear:
		hw, err = h.forwardLinear(l, x)
	}
	if err != nil {
		h.err = fmt.Errorf("hwtrain: hardware forward: %w", err)
		return float
	}
	return hw
}

func (h *hwLayer) forwardConv(c *nn.Conv2D, x *linalg.Dense) (*linalg.Dense, error) {
	g := c.Geom
	cols := nn.Im2Col(x, g)
	if need := cols.Rows * h.mat.Out(); h.prod == nil || cap(h.prod.Data) < need {
		h.prod = linalg.NewDense(cols.Rows, h.mat.Out())
	} else {
		h.prod.Rows, h.prod.Cols = cols.Rows, h.mat.Out()
		h.prod.Data = h.prod.Data[:need]
	}
	prod := h.prod
	if err := h.mat.MVMInto(prod, cols); err != nil {
		return nil, err
	}
	spatial := g.OutH() * g.OutW()
	y := linalg.NewDense(x.Rows, g.OutSize())
	for b := 0; b < x.Rows; b++ {
		dst := y.Row(b)
		for sp := 0; sp < spatial; sp++ {
			src := prod.Row(b*spatial + sp)
			for oc := 0; oc < g.OutC; oc++ {
				v := src[oc]
				if c.UseBias {
					v += c.Bias.W.Data[oc]
				}
				dst[oc*spatial+sp] = v
			}
		}
	}
	return y, nil
}

func (h *hwLayer) forwardLinear(l *nn.Linear, x *linalg.Dense) (*linalg.Dense, error) {
	y, err := h.mat.MVM(x)
	if err != nil {
		return nil, err
	}
	if l.UseBias {
		for b := 0; b < y.Rows; b++ {
			row := y.Row(b)
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	return y, nil
}

// Backward implements nn.Layer: straight-through — gradients flow as
// if the float forward had produced the output.
func (h *hwLayer) Backward(grad *linalg.Dense) *linalg.Dense {
	return h.inner.Backward(grad)
}

// Params implements nn.Layer.
func (h *hwLayer) Params() []*nn.Param { return h.inner.Params() }

// WrapNetwork returns a copy of the network structure in which every
// Conv2D and Linear layer executes its forward pass through the
// functional simulator. The wrapped network SHARES the original's
// parameter tensors: optimizing one updates the other.
//
// Networks where a BatchNorm directly follows a Conv2D or Linear layer
// are rejected: funcsim.Lower folds such BatchNorms into the preceding
// weights at deployment, and the folded conductances distort
// differently from the unfolded weights this wrapper lowers — the
// fine-tuned weights would be adapted to the wrong hardware. Fold or
// remove BatchNorm before hardware-aware fine-tuning.
func WrapNetwork(net *nn.Sequential, eng *funcsim.Engine, refresh int) (*nn.Sequential, error) {
	for i := 0; i+1 < len(net.Layers); i++ {
		if _, ok := net.Layers[i+1].(*nn.BatchNorm); !ok {
			continue
		}
		switch net.Layers[i].(type) {
		case *nn.Conv2D, *nn.Linear:
			return nil, fmt.Errorf("hwtrain: layer %d is followed by BatchNorm, which funcsim folds at deployment; fold it before fine-tuning", i)
		}
	}
	out := &nn.Sequential{}
	for _, layer := range net.Layers {
		switch l := layer.(type) {
		case *nn.Conv2D, *nn.Linear:
			hw, err := newHWLayer(l, eng, refresh)
			if err != nil {
				return nil, err
			}
			out.Layers = append(out.Layers, hw)
		case *nn.Residual:
			body, err := WrapNetwork(l.Body, eng, refresh)
			if err != nil {
				return nil, err
			}
			out.Layers = append(out.Layers, &nn.Residual{Body: body})
		case *nn.Sequential:
			sub, err := WrapNetwork(l, eng, refresh)
			if err != nil {
				return nil, err
			}
			out.Layers = append(out.Layers, sub)
		default:
			out.Layers = append(out.Layers, layer)
		}
	}
	return out, nil
}

// PendingError returns the first hardware failure recorded by any
// wrapped layer in the network (nil when the hardware path is
// healthy). Callers driving a wrapped network directly should check it
// after each forward pass; FineTune does so automatically.
func PendingError(net *nn.Sequential) error {
	for _, layer := range net.Layers {
		switch l := layer.(type) {
		case *hwLayer:
			if l.err != nil {
				return l.err
			}
		case *nn.Residual:
			if err := PendingError(l.Body); err != nil {
				return err
			}
		case *nn.Sequential:
			if err := PendingError(l); err != nil {
				return err
			}
		}
	}
	return nil
}

// FineTune retrains the network with the hardware in the loop. The
// original network's weights are updated in place (the wrapper shares
// them). A lowering or hardware-forward failure aborts the run with an
// error after the offending batch; the weights keep whatever updates
// completed before it.
func FineTune(net *nn.Sequential, eng *funcsim.Engine, set *dataset.Set, opt Options) error {
	opt = opt.withDefaults()
	wrapped, err := WrapNetwork(net, eng, opt.RefreshEvery)
	if err != nil {
		return err
	}
	params := wrapped.Params()
	optim := nn.NewSGD(params, opt.LR, opt.Momentum, 0)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		epochStart := obs.Now()
		set.Batches(opt.BatchSize, opt.Seed+uint64(epoch)*7919, func(x *linalg.Dense, y []int) {
			if PendingError(wrapped) != nil {
				return // a tile already failed; stop updating weights
			}
			stepStart := obs.Now()
			nn.ZeroGrad(params)
			logits := wrapped.Forward(x, true)
			if PendingError(wrapped) != nil {
				mPendingErrors.Inc()
				return // this batch's forward failed: discard it
			}
			_, grad := nn.SoftmaxCrossEntropy(logits, y)
			wrapped.Backward(grad)
			nn.ClipGradNorm(params, 5)
			optim.Step()
			if obs.Enabled() {
				mSteps.Inc()
				mStepLatency.ObserveSince(stepStart)
			}
		})
		mEpochLatency.ObserveSince(epochStart)
		if err := PendingError(wrapped); err != nil {
			return err
		}
	}
	return nil
}
