package nn

import (
	"fmt"
	"math"
)

// Schedule maps an epoch index to a learning rate. Schedules compose
// with any Optimizer through SetLR.
type Schedule interface {
	// LR returns the learning rate for the given zero-based epoch.
	LR(epoch int) float64
}

// ConstantLR keeps the learning rate fixed.
type ConstantLR struct {
	Rate float64
}

// LR implements Schedule.
func (c ConstantLR) LR(int) float64 { return c.Rate }

// StepLR multiplies the base rate by Gamma at every milestone epoch.
type StepLR struct {
	Base       float64
	Gamma      float64
	Milestones []int
}

// LR implements Schedule.
func (s StepLR) LR(epoch int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if epoch >= m {
			lr *= s.Gamma
		}
	}
	return lr
}

// CosineLR anneals from Base to Min over Epochs with a half cosine.
type CosineLR struct {
	Base, Min float64
	Epochs    int
}

// LR implements Schedule.
func (c CosineLR) LR(epoch int) float64 {
	if c.Epochs <= 1 {
		return c.Min
	}
	t := float64(epoch) / float64(c.Epochs-1)
	if t > 1 {
		t = 1
	}
	return c.Min + (c.Base-c.Min)*(1+math.Cos(math.Pi*t))/2
}

// WarmupLR ramps linearly from 0 to the inner schedule's rate over
// Warmup epochs, then follows the inner schedule.
type WarmupLR struct {
	Inner  Schedule
	Warmup int
}

// LR implements Schedule.
func (w WarmupLR) LR(epoch int) float64 {
	lr := w.Inner.LR(epoch)
	if w.Warmup > 0 && epoch < w.Warmup {
		return lr * float64(epoch+1) / float64(w.Warmup)
	}
	return lr
}

// ClipGradNorm scales all gradients down so their global L2 norm does
// not exceed maxNorm, and returns the norm before clipping. It is a
// no-op (returning the norm) when the norm is already within bounds.
// maxNorm must be positive.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic(fmt.Sprintf("nn: ClipGradNorm with maxNorm %g", maxNorm))
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
