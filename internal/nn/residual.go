package nn

import (
	"fmt"

	"geniex/internal/linalg"
)

// Residual wraps a body network with an identity skip connection:
// y = x + body(x). The body must preserve the feature count. This is
// the building block that makes the repository's MiniResNet a faithful
// scaled-down ResNet.
type Residual struct {
	Body *Sequential
}

// NewResidual wraps layers in a residual connection.
func NewResidual(layers ...Layer) *Residual {
	return &Residual{Body: NewSequential(layers...)}
}

// Forward implements Layer.
func (r *Residual) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	y := r.Body.Forward(x, train)
	if y.Rows != x.Rows || y.Cols != x.Cols {
		panic(fmt.Sprintf("nn: residual body changed shape %dx%d -> %dx%d",
			x.Rows, x.Cols, y.Rows, y.Cols))
	}
	out := y.Clone()
	linalg.Axpy(1, x.Data, out.Data)
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad *linalg.Dense) *linalg.Dense {
	dBody := r.Body.Backward(grad)
	dx := dBody.Clone()
	linalg.Axpy(1, grad.Data, dx.Data)
	return dx
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }
