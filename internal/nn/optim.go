package nn

import (
	"math"

	"geniex/internal/linalg"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; call ZeroGrad
	// separately so gradient accumulation across micro-batches works.
	Step()
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with classical momentum and
// decoupled weight decay.
type SGD struct {
	params   []*Param
	lr       float64
	momentum float64
	decay    float64
	velocity []*linalg.Dense
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	s.velocity = make([]*linalg.Dense, len(params))
	for i, p := range params {
		s.velocity[i] = linalg.NewDense(p.W.Rows, p.W.Cols)
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.W.Data {
			g := p.Grad.Data[j] + s.decay*p.W.Data[j]
			v.Data[j] = s.momentum*v.Data[j] + g
			p.W.Data[j] -= s.lr * v.Data[j]
		}
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   []*linalg.Dense
}

// NewAdam creates an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*linalg.Dense, len(params))
	a.v = make([]*linalg.Dense, len(params))
	for i, p := range params {
		a.m[i] = linalg.NewDense(p.W.Rows, p.W.Cols)
		a.v[i] = linalg.NewDense(p.W.Rows, p.W.Cols)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.Grad.Data[j]
			m.Data[j] = a.beta1*m.Data[j] + (1-a.beta1)*g
			v.Data[j] = a.beta2*v.Data[j] + (1-a.beta2)*g*g
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.W.Data[j] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
		}
	}
}

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }
