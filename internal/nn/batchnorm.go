package nn

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// BatchNorm normalizes activations per channel over the batch and
// spatial dimensions. For fully-connected activations use Spatial = 1
// (per-feature normalization).
type BatchNorm struct {
	C       int // channels (features)
	Spatial int // spatial positions per channel (H·W, or 1 for FC)
	Eps     float64
	Mom     float64 // running-stat momentum

	Gamma, Beta *Param
	RunMean     []float64
	RunVar      []float64

	// caches for backward
	lastX  *linalg.Dense
	mean   []float64
	invStd []float64
	xhat   *linalg.Dense
}

// NewBatchNorm creates a batch normalization layer over c channels
// with the given spatial extent.
func NewBatchNorm(c, spatial int) *BatchNorm {
	if c <= 0 || spatial <= 0 {
		panic(fmt.Sprintf("nn: BatchNorm with c=%d spatial=%d", c, spatial))
	}
	bn := &BatchNorm{C: c, Spatial: spatial, Eps: 1e-5, Mom: 0.1}
	bn.Gamma = newParam("bn.gamma", 1, c)
	bn.Beta = newParam("bn.beta", 1, c)
	linalg.Fill(bn.Gamma.W.Data, 1)
	bn.RunMean = make([]float64, c)
	bn.RunVar = make([]float64, c)
	linalg.Fill(bn.RunVar, 1)
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("BatchNorm", x, bn.C*bn.Spatial)
	y := linalg.NewDense(x.Rows, x.Cols)
	if !train {
		for b := 0; b < x.Rows; b++ {
			in, out := x.Row(b), y.Row(b)
			for c := 0; c < bn.C; c++ {
				scale := bn.Gamma.W.Data[c] / math.Sqrt(bn.RunVar[c]+bn.Eps)
				shift := bn.Beta.W.Data[c] - scale*bn.RunMean[c]
				seg := in[c*bn.Spatial : (c+1)*bn.Spatial]
				dst := out[c*bn.Spatial : (c+1)*bn.Spatial]
				for i, v := range seg {
					dst[i] = scale*v + shift
				}
			}
		}
		return y
	}

	n := float64(x.Rows * bn.Spatial)
	bn.lastX = x
	bn.mean = make([]float64, bn.C)
	bn.invStd = make([]float64, bn.C)
	bn.xhat = linalg.NewDense(x.Rows, x.Cols)
	for c := 0; c < bn.C; c++ {
		var sum float64
		for b := 0; b < x.Rows; b++ {
			sum += linalg.Sum(x.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial])
		}
		mean := sum / n
		var varsum float64
		for b := 0; b < x.Rows; b++ {
			seg := x.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			for _, v := range seg {
				d := v - mean
				varsum += d * d
			}
		}
		variance := varsum / n
		bn.mean[c] = mean
		bn.invStd[c] = 1 / math.Sqrt(variance+bn.Eps)
		bn.RunMean[c] = (1-bn.Mom)*bn.RunMean[c] + bn.Mom*mean
		bn.RunVar[c] = (1-bn.Mom)*bn.RunVar[c] + bn.Mom*variance

		g, be := bn.Gamma.W.Data[c], bn.Beta.W.Data[c]
		for b := 0; b < x.Rows; b++ {
			seg := x.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			xh := bn.xhat.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			dst := y.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			for i, v := range seg {
				h := (v - mean) * bn.invStd[c]
				xh[i] = h
				dst[i] = g*h + be
			}
		}
	}
	return y
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(grad *linalg.Dense) *linalg.Dense {
	if bn.xhat == nil || grad.Rows != bn.xhat.Rows {
		panic("nn: BatchNorm.Backward without a matching training Forward")
	}
	checkCols("BatchNorm.Backward", grad, bn.C*bn.Spatial)
	n := float64(grad.Rows * bn.Spatial)
	dx := linalg.NewDense(grad.Rows, grad.Cols)
	for c := 0; c < bn.C; c++ {
		var sumG, sumGX float64
		for b := 0; b < grad.Rows; b++ {
			gseg := grad.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			xseg := bn.xhat.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			for i, g := range gseg {
				sumG += g
				sumGX += g * xseg[i]
			}
		}
		bn.Beta.Grad.Data[c] += sumG
		bn.Gamma.Grad.Data[c] += sumGX
		gamma := bn.Gamma.W.Data[c]
		k := gamma * bn.invStd[c]
		for b := 0; b < grad.Rows; b++ {
			gseg := grad.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			xseg := bn.xhat.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			dseg := dx.Row(b)[c*bn.Spatial : (c+1)*bn.Spatial]
			for i, g := range gseg {
				dseg[i] = k * (g - sumG/n - xseg[i]*sumGX/n)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// FoldInto returns the per-channel scale and shift that make
// y = scale[c]·x + shift[c] equivalent to this layer in inference
// mode. The functional simulator uses this to fold BatchNorm into the
// preceding convolution before lowering to crossbars.
func (bn *BatchNorm) FoldInto() (scale, shift []float64) {
	scale = make([]float64, bn.C)
	shift = make([]float64, bn.C)
	for c := 0; c < bn.C; c++ {
		scale[c] = bn.Gamma.W.Data[c] / math.Sqrt(bn.RunVar[c]+bn.Eps)
		shift[c] = bn.Beta.W.Data[c] - scale[c]*bn.RunMean[c]
	}
	return scale, shift
}
