package nn

import (
	"math"

	"geniex/internal/linalg"
)

// Linear is a fully-connected layer y = x·W + b with W of shape
// In×Out.
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	UseBias bool
	lastIn  *linalg.Dense
}

// NewLinear creates a fully-connected layer with Kaiming-uniform
// initialized weights (appropriate for the ReLU networks in this
// repository). rng must not be nil.
func NewLinear(in, out int, useBias bool, rng *linalg.RNG) *Linear {
	l := &Linear{In: in, Out: out, UseBias: useBias}
	l.Weight = newParam("linear.weight", in, out)
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.Weight.W.Data {
		l.Weight.W.Data[i] = (2*rng.Float64() - 1) * bound
	}
	if useBias {
		l.Bias = newParam("linear.bias", 1, out)
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("Linear", x, l.In)
	if train {
		l.lastIn = x
	}
	y := linalg.MatMul(x, l.Weight.W)
	if l.UseBias {
		for i := 0; i < y.Rows; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += l.Bias.W.Data[j]
			}
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *linalg.Dense) *linalg.Dense {
	if l.lastIn == nil {
		panic("nn: Linear.Backward without a training Forward")
	}
	// dW += xᵀ·grad
	dw := linalg.MatMulATB(l.lastIn, grad)
	linalg.Axpy(1, dw.Data, l.Weight.Grad.Data)
	if l.UseBias {
		for i := 0; i < grad.Rows; i++ {
			row := grad.Row(i)
			for j := range row {
				l.Bias.Grad.Data[j] += row[j]
			}
		}
	}
	// dx = grad·Wᵀ
	return linalg.MatMulABT(grad, l.Weight.W)
}

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.UseBias {
		return []*Param{l.Weight, l.Bias}
	}
	return []*Param{l.Weight}
}
