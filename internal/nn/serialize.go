package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Gob encodes the concrete layer types carried inside the Layer
// interface; they must be registered before encoding or decoding.
func init() {
	gob.Register(&Sequential{})
	gob.Register(&Linear{})
	gob.Register(&Conv2D{})
	gob.Register(&ReLU{})
	gob.Register(&Flatten{})
	gob.Register(&MaxPool2D{})
	gob.Register(&GlobalAvgPool2D{})
	gob.Register(&BatchNorm{})
	gob.Register(&Residual{})
	gob.Register(&AvgPool2D{})
	gob.Register(&LeakyReLU{})
	gob.Register(&Tanh{})
	gob.Register(&Dropout{})
}

// Save serializes a network to w. Only exported configuration and
// weights are stored; forward caches are rebuilt on first use.
func Save(w io.Writer, net *Sequential) error {
	if err := gob.NewEncoder(w).Encode(net); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load deserializes a network from r.
func Load(r io.Reader) (*Sequential, error) {
	var net *Sequential
	if err := gob.NewDecoder(r).Decode(&net); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	return net, nil
}

// SaveFile serializes a network to the named file.
func SaveFile(path string, net *Sequential) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save %s: %w", path, err)
	}
	defer f.Close()
	if err := Save(f, net); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile deserializes a network from the named file.
func LoadFile(path string) (*Sequential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
