package nn

import (
	"bytes"
	"math"
	"testing"

	"geniex/internal/linalg"
)

// lossOf runs a forward pass in training mode and reduces the output
// with a fixed quadratic loss L = Σ w_i·y_i² (w fixed pseudo-random),
// which exercises every output element with distinct weights.
func lossOf(net Layer, x *linalg.Dense) float64 {
	y := net.Forward(x, true)
	var loss float64
	for i, v := range y.Data {
		w := 0.5 + float64(i%7)/7.0
		loss += w * v * v
	}
	return loss
}

// backOf computes analytic gradients for lossOf: dL/dy_i = 2·w_i·y_i.
func backOf(net Layer, x *linalg.Dense) *linalg.Dense {
	y := net.Forward(x, true)
	grad := linalg.NewDense(y.Rows, y.Cols)
	for i, v := range y.Data {
		w := 0.5 + float64(i%7)/7.0
		grad.Data[i] = 2 * w * v
	}
	return net.Backward(grad)
}

// checkGradients verifies both parameter and input gradients of net
// against central finite differences.
func checkGradients(t *testing.T, name string, net Layer, x *linalg.Dense, tol float64) {
	t.Helper()
	ZeroGrad(net.Params())
	dx := backOf(net, x)

	const h = 1e-5
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := lossOf(net, x)
		x.Data[i] = orig - h
		lm := lossOf(net, x)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad[%d] = %v, numeric %v", name, i, dx.Data[i], num)
		}
	}
	// Parameter gradients.
	for _, p := range net.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := lossOf(net, x)
			p.W.Data[i] = orig - h
			lm := lossOf(net, x)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %s grad[%d] = %v, numeric %v", name, p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func randInput(r *linalg.RNG, rows, cols int) *linalg.Dense {
	x := linalg.NewDense(rows, cols)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	return x
}

func TestLinearGradients(t *testing.T) {
	r := linalg.NewRNG(1)
	net := NewLinear(5, 4, true, r)
	checkGradients(t, "linear", net, randInput(r, 3, 5), 1e-6)
}

func TestLinearNoBiasGradients(t *testing.T) {
	r := linalg.NewRNG(2)
	net := NewLinear(4, 3, false, r)
	if len(net.Params()) != 1 {
		t.Fatalf("no-bias linear has %d params", len(net.Params()))
	}
	checkGradients(t, "linear-nobias", net, randInput(r, 2, 4), 1e-6)
}

func TestConvGradients(t *testing.T) {
	r := linalg.NewRNG(3)
	geom := ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 3, Kernel: 3, Stride: 1, Pad: 1}
	net := NewConv2D(geom, true, r)
	checkGradients(t, "conv", net, randInput(r, 2, geom.InSize()), 1e-6)
}

func TestConvStride2Gradients(t *testing.T) {
	r := linalg.NewRNG(4)
	geom := ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 2, Kernel: 3, Stride: 2, Pad: 1}
	net := NewConv2D(geom, false, r)
	checkGradients(t, "conv-s2", net, randInput(r, 2, geom.InSize()), 1e-6)
}

func TestReLUGradients(t *testing.T) {
	r := linalg.NewRNG(5)
	net := NewSequential(NewLinear(4, 4, true, r), NewReLU())
	checkGradients(t, "relu", net, randInput(r, 3, 4), 1e-5)
}

func TestMaxPoolGradients(t *testing.T) {
	r := linalg.NewRNG(6)
	net := NewSequential(NewMaxPool2D(2, 4, 4, 2))
	checkGradients(t, "maxpool", net, randInput(r, 2, 2*4*4), 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := linalg.NewRNG(7)
	net := NewSequential(NewGlobalAvgPool2D(3, 4, 4))
	checkGradients(t, "gap", net, randInput(r, 2, 3*4*4), 1e-6)
}

func TestBatchNormGradients(t *testing.T) {
	r := linalg.NewRNG(8)
	net := NewSequential(NewBatchNorm(3, 4))
	checkGradients(t, "batchnorm", net, randInput(r, 4, 12), 1e-4)
}

func TestResidualGradients(t *testing.T) {
	r := linalg.NewRNG(9)
	net := NewResidual(NewLinear(6, 6, true, r), NewReLU(), NewLinear(6, 6, true, r))
	checkGradients(t, "residual", net, randInput(r, 3, 6), 1e-5)
}

func TestDeepCompositeGradients(t *testing.T) {
	r := linalg.NewRNG(10)
	geom := ConvGeom{InC: 1, InH: 6, InW: 6, OutC: 2, Kernel: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(geom, false, r),
		NewBatchNorm(2, 36),
		NewReLU(),
		NewMaxPool2D(2, 6, 6, 2),
		NewFlatten(),
		NewLinear(2*3*3, 5, true, r),
	)
	checkGradients(t, "composite", net, randInput(r, 3, 36), 1e-4)
}

func TestIm2ColKnown(t *testing.T) {
	// 1×3×3 input, 2×2 kernel, stride 1, no pad: 4 patches.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, OutC: 1, Kernel: 2, Stride: 1, Pad: 0}
	x := linalg.NewDenseFrom(1, 9, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	cols := Im2Col(x, g)
	want := [][]float64{{1, 2, 4, 5}, {2, 3, 5, 6}, {4, 5, 7, 8}, {5, 6, 8, 9}}
	for i, w := range want {
		for j, v := range w {
			if cols.At(i, j) != v {
				t.Errorf("cols(%d,%d) = %v, want %v", i, j, cols.At(i, j), v)
			}
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, OutC: 1, Kernel: 3, Stride: 1, Pad: 1}
	x := linalg.NewDenseFrom(1, 4, []float64{1, 2, 3, 4})
	cols := Im2Col(x, g)
	if cols.Rows != 4 || cols.Cols != 9 {
		t.Fatalf("cols shape %dx%d", cols.Rows, cols.Cols)
	}
	// Patch for output (0,0): padding everywhere except bottom-right 2x2.
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for j, v := range want {
		if cols.At(0, j) != v {
			t.Errorf("padded patch[%d] = %v, want %v", j, cols.At(0, j), v)
		}
	}
}

// Col2Im is the adjoint of Im2Col: ⟨Im2Col(x), y⟩ = ⟨x, Col2Im(y)⟩.
func TestCol2ImAdjoint(t *testing.T) {
	r := linalg.NewRNG(11)
	g := ConvGeom{InC: 2, InH: 5, InW: 4, OutC: 1, Kernel: 3, Stride: 2, Pad: 1}
	x := randInput(r, 3, g.InSize())
	cols := Im2Col(x, g)
	y := randInput(r, cols.Rows, cols.Cols)
	lhs := linalg.Dot(cols.Data, y.Data)
	back := Col2Im(y, g, 3)
	rhs := linalg.Dot(x.Data, back.Data)
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Errorf("adjoint identity broken: %v vs %v", lhs, rhs)
	}
}

func TestConvMatchesDirectConvolution(t *testing.T) {
	r := linalg.NewRNG(12)
	g := ConvGeom{InC: 2, InH: 4, InW: 4, OutC: 3, Kernel: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(g, true, r)
	x := randInput(r, 2, g.InSize())
	y := conv.Forward(x, false)
	// Direct nested-loop convolution.
	for b := 0; b < x.Rows; b++ {
		for oc := 0; oc < g.OutC; oc++ {
			for oy := 0; oy < g.OutH(); oy++ {
				for ox := 0; ox < g.OutW(); ox++ {
					sum := conv.Bias.W.Data[oc]
					for c := 0; c < g.InC; c++ {
						for ky := 0; ky < g.Kernel; ky++ {
							for kx := 0; kx < g.Kernel; kx++ {
								iy, ix := oy+ky-g.Pad, ox+kx-g.Pad
								if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
									continue
								}
								wIdx := (c*g.Kernel+ky)*g.Kernel + kx
								sum += x.At(b, c*g.InH*g.InW+iy*g.InW+ix) * conv.Weight.W.At(wIdx, oc)
							}
						}
					}
					got := y.At(b, oc*g.OutH()*g.OutW()+oy*g.OutW()+ox)
					if math.Abs(got-sum) > 1e-10 {
						t.Fatalf("conv(%d,%d,%d,%d) = %v, want %v", b, oc, oy, ox, got, sum)
					}
				}
			}
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	r := linalg.NewRNG(13)
	logits := randInput(r, 4, 5)
	labels := []int{0, 3, 2, 4}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("CE grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyValue(t *testing.T) {
	// Uniform logits over k classes: loss = ln k.
	logits := linalg.NewDense(1, 4)
	loss, _ := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("uniform CE = %v, want ln4 = %v", loss, math.Log(4))
	}
}

func TestMSEGradient(t *testing.T) {
	r := linalg.NewRNG(14)
	pred := randInput(r, 3, 4)
	target := randInput(r, 3, 4)
	loss, grad := MSE(pred, target)
	if loss < 0 {
		t.Fatal("negative MSE")
	}
	const h = 1e-6
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + h
		lp, _ := MSE(pred, target)
		pred.Data[i] = orig - h
		lm, _ := MSE(pred, target)
		pred.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-6*(1+math.Abs(num)) {
			t.Fatalf("MSE grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestAccuracyAndArgmax(t *testing.T) {
	logits := linalg.NewDenseFrom(3, 3, []float64{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	})
	if got := Argmax(logits); got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Errorf("argmax = %v", got)
	}
	if acc := Accuracy(logits, []int{1, 0, 0}); math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("accuracy = %v", acc)
	}
}

// Training an MLP on XOR must converge — an end-to-end sanity check of
// forward, backward and the optimizer together.
func TestXORConverges(t *testing.T) {
	r := linalg.NewRNG(15)
	net := NewSequential(
		NewLinear(2, 8, true, r),
		NewReLU(),
		NewLinear(8, 2, true, r),
	)
	x := linalg.NewDenseFrom(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	opt := NewAdam(net.Params(), 0.05)
	for epoch := 0; epoch < 300; epoch++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step()
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc != 1 {
		t.Errorf("XOR accuracy = %v after training", acc)
	}
}

// SGD with momentum must reduce a quadratic loss monotonically for a
// small enough learning rate.
func TestSGDReducesLoss(t *testing.T) {
	r := linalg.NewRNG(16)
	net := NewSequential(NewLinear(3, 3, true, r))
	x := randInput(r, 8, 3)
	// A realizable target (generated by a random affine map) so the
	// optimum loss is exactly zero.
	truth := NewLinear(3, 3, true, r)
	target := truth.Forward(x, false)
	opt := NewSGD(net.Params(), 0.02, 0.9, 0)
	var first, last float64
	for i := 0; i < 200; i++ {
		ZeroGrad(net.Params())
		y := net.Forward(x, true)
		loss, grad := MSE(y, target)
		net.Backward(grad)
		opt.Step()
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/100 || last > 0.01 {
		t.Errorf("SGD did not converge: first %v, last %v", first, last)
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	r := linalg.NewRNG(17)
	bn := NewBatchNorm(2, 3)
	x := randInput(r, 16, 6)
	// Shift the raw data so normalization has work to do.
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 5
	}
	y := bn.Forward(x, true)
	// Per-channel mean ≈ 0, variance ≈ 1 (gamma=1, beta=0 initially).
	for c := 0; c < 2; c++ {
		var sum, sq float64
		n := 0
		for b := 0; b < y.Rows; b++ {
			seg := y.Row(b)[c*3 : (c+1)*3]
			for _, v := range seg {
				sum += v
				sq += v * v
				n++
			}
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-10 || math.Abs(variance-1) > 1e-3 {
			t.Errorf("channel %d: mean=%v var=%v", c, mean, variance)
		}
	}
}

func TestBatchNormFoldMatchesEval(t *testing.T) {
	r := linalg.NewRNG(18)
	bn := NewBatchNorm(3, 2)
	// Accumulate running stats over a few training batches.
	for i := 0; i < 20; i++ {
		bn.Forward(randInput(r, 8, 6), true)
	}
	x := randInput(r, 4, 6)
	want := bn.Forward(x, false)
	scale, shift := bn.FoldInto()
	for b := 0; b < x.Rows; b++ {
		for c := 0; c < 3; c++ {
			for s := 0; s < 2; s++ {
				got := scale[c]*x.At(b, c*2+s) + shift[c]
				if math.Abs(got-want.At(b, c*2+s)) > 1e-12 {
					t.Fatalf("fold mismatch at (%d,%d,%d): %v vs %v", b, c, s, got, want.At(b, c*2+s))
				}
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := linalg.NewRNG(19)
	geom := ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 2, Kernel: 3, Stride: 1, Pad: 1}
	net := NewSequential(
		NewConv2D(geom, false, r),
		NewBatchNorm(2, 16),
		NewReLU(),
		NewResidual(NewLinear(32, 32, true, r)),
		NewLinear(32, 3, true, r),
	)
	x := randInput(r, 2, 16)
	want := net.Forward(x, false)

	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	y := got.Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != y.Data[i] {
			t.Fatalf("round-trip output differs at %d: %v vs %v", i, want.Data[i], y.Data[i])
		}
	}
}

func TestNumParams(t *testing.T) {
	r := linalg.NewRNG(20)
	net := NewSequential(NewLinear(3, 4, true, r))
	if got := NumParams(net.Params()); got != 3*4+4 {
		t.Errorf("NumParams = %d, want 16", got)
	}
}

func TestAvgPoolGradients(t *testing.T) {
	r := linalg.NewRNG(21)
	net := NewSequential(NewAvgPool2D(2, 4, 4, 2))
	checkGradients(t, "avgpool", net, randInput(r, 2, 2*4*4), 1e-6)
}

func TestAvgPoolValue(t *testing.T) {
	p := NewAvgPool2D(1, 2, 2, 2)
	x := linalg.NewDenseFrom(1, 4, []float64{1, 2, 3, 4})
	y := p.Forward(x, false)
	if y.Cols != 1 || y.At(0, 0) != 2.5 {
		t.Errorf("avg pool = %v, want 2.5", y.At(0, 0))
	}
}

func TestLeakyReLUGradients(t *testing.T) {
	r := linalg.NewRNG(22)
	net := NewSequential(NewLinear(4, 4, true, r), NewLeakyReLU(0.1))
	checkGradients(t, "leakyrelu", net, randInput(r, 3, 4), 1e-5)
}

func TestTanhGradients(t *testing.T) {
	r := linalg.NewRNG(23)
	net := NewSequential(NewLinear(4, 4, true, r), NewTanh())
	checkGradients(t, "tanh", net, randInput(r, 3, 4), 1e-5)
}

func TestDropoutTrainEval(t *testing.T) {
	r := linalg.NewRNG(24)
	d := NewDropout(0.5, 7)
	x := randInput(r, 4, 50)
	// Eval mode: identity.
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout not identity at inference")
		}
	}
	// Train mode: some units dropped, survivors scaled by 2.
	yt := d.Forward(x, true)
	dropped, scaled := 0, 0
	for i := range x.Data {
		switch yt.Data[i] {
		case 0:
			dropped++
		case 2 * x.Data[i]:
			scaled++
		default:
			if x.Data[i] != 0 {
				t.Fatalf("unexpected dropout output %v for input %v", yt.Data[i], x.Data[i])
			}
		}
	}
	if dropped == 0 || scaled == 0 {
		t.Errorf("dropout degenerate: %d dropped, %d scaled", dropped, scaled)
	}
	// Backward mirrors the mask.
	grad := randInput(r, 4, 50)
	dx := d.Backward(grad)
	for i := range grad.Data {
		if yt.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient flowed through a dropped unit")
		}
	}
}

func TestDropoutZeroProbIsIdentity(t *testing.T) {
	r := linalg.NewRNG(25)
	d := NewDropout(0, 1)
	x := randInput(r, 2, 5)
	if y := d.Forward(x, true); y != x {
		t.Error("p=0 dropout should pass through")
	}
}
