package nn

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss of
// logits against integer class labels and the gradient dL/dlogits.
func SoftmaxCrossEntropy(logits *linalg.Dense, labels []int) (loss float64, grad *linalg.Dense) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d logit rows", len(labels), logits.Rows))
	}
	grad = linalg.NewDense(logits.Rows, logits.Cols)
	inv := 1 / float64(logits.Rows)
	for b := 0; b < logits.Rows; b++ {
		row := logits.Row(b)
		label := labels[b]
		if label < 0 || label >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, logits.Cols))
		}
		// Numerically stable log-sum-exp.
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - max)
		}
		logZ := max + math.Log(sum)
		loss += (logZ - row[label]) * inv
		g := grad.Row(b)
		for j, v := range row {
			p := math.Exp(v - logZ)
			g[j] = p * inv
		}
		g[label] -= inv
	}
	return loss, grad
}

// MSE computes the mean squared error between predictions and targets
// (averaged over every element) and the gradient dL/dpred.
func MSE(pred, target *linalg.Dense) (loss float64, grad *linalg.Dense) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: MSE shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	grad = linalg.NewDense(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d / n
		grad.Data[i] = 2 * d / n
	}
	return loss, grad
}

// Argmax returns the per-row index of the maximum logit.
func Argmax(logits *linalg.Dense) []int {
	out := make([]int, logits.Rows)
	for b := 0; b < logits.Rows; b++ {
		row := logits.Row(b)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[b] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *linalg.Dense, labels []int) float64 {
	pred := Argmax(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
