package nn

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// AvgPool2D is non-overlapping average pooling (stride == window).
type AvgPool2D struct {
	C, H, W int
	Window  int

	lastBatch int
}

// NewAvgPool2D creates an average pooling layer; H and W must be
// divisible by the window.
func NewAvgPool2D(c, h, w, window int) *AvgPool2D {
	if window <= 0 || h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("nn: AvgPool2D window %d incompatible with %dx%d", window, h, w))
	}
	return &AvgPool2D{C: c, H: h, W: w, Window: window}
}

// OutSize returns the flattened output feature count.
func (p *AvgPool2D) OutSize() int {
	return p.C * (p.H / p.Window) * (p.W / p.Window)
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("AvgPool2D", x, p.C*p.H*p.W)
	if train {
		p.lastBatch = x.Rows
	}
	oh, ow := p.H/p.Window, p.W/p.Window
	inv := 1 / float64(p.Window*p.Window)
	y := linalg.NewDense(x.Rows, p.OutSize())
	for b := 0; b < x.Rows; b++ {
		in, out := x.Row(b), y.Row(b)
		for c := 0; c < p.C; c++ {
			base := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ky := 0; ky < p.Window; ky++ {
						for kx := 0; kx < p.Window; kx++ {
							s += in[base+(oy*p.Window+ky)*p.W+ox*p.Window+kx]
						}
					}
					out[c*oh*ow+oy*ow+ox] = s * inv
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *linalg.Dense) *linalg.Dense {
	if grad.Rows != p.lastBatch {
		panic("nn: AvgPool2D.Backward without a matching training Forward")
	}
	checkCols("AvgPool2D.Backward", grad, p.OutSize())
	oh, ow := p.H/p.Window, p.W/p.Window
	inv := 1 / float64(p.Window*p.Window)
	dx := linalg.NewDense(grad.Rows, p.C*p.H*p.W)
	for b := 0; b < grad.Rows; b++ {
		src, dst := grad.Row(b), dx.Row(b)
		for c := 0; c < p.C; c++ {
			base := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := src[c*oh*ow+oy*ow+ox] * inv
					for ky := 0; ky < p.Window; ky++ {
						for kx := 0; kx < p.Window; kx++ {
							dst[base+(oy*p.Window+ky)*p.W+ox*p.Window+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// LeakyReLU is max(x, α·x) with a small negative-side slope.
type LeakyReLU struct {
	Alpha  float64
	lastIn *linalg.Dense
}

// NewLeakyReLU creates a LeakyReLU with the given negative slope
// (0 ≤ α < 1).
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU alpha %g out of [0,1)", alpha))
	}
	return &LeakyReLU{Alpha: alpha}
}

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	if train {
		l.lastIn = x
	}
	y := linalg.NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = l.Alpha * v
		}
	}
	return y
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(grad *linalg.Dense) *linalg.Dense {
	if l.lastIn == nil || len(l.lastIn.Data) != len(grad.Data) {
		panic("nn: LeakyReLU.Backward without a matching training Forward")
	}
	dx := linalg.NewDense(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		if l.lastIn.Data[i] > 0 {
			dx.Data[i] = g
		} else {
			dx.Data[i] = l.Alpha * g
		}
	}
	return dx
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	lastOut *linalg.Dense
}

// NewTanh creates a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	y := linalg.NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	if train {
		t.lastOut = y
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *linalg.Dense) *linalg.Dense {
	if t.lastOut == nil || len(t.lastOut.Data) != len(grad.Data) {
		panic("nn: Tanh.Backward without a matching training Forward")
	}
	dx := linalg.NewDense(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		o := t.lastOut.Data[i]
		dx.Data[i] = g * (1 - o*o)
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// GobEncode implements gob.GobEncoder; Tanh is stateless.
func (t *Tanh) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (t *Tanh) GobDecode([]byte) error { return nil }

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1−P) (inverted dropout), so inference is an
// identity.
type Dropout struct {
	P    float64
	Seed uint64

	rng  *linalg.RNG
	mask []bool
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %g out of [0,1)", p))
	}
	return &Dropout{P: p, Seed: seed}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	if !train || d.P == 0 {
		return x
	}
	if d.rng == nil {
		d.rng = linalg.NewRNG(d.Seed)
	}
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.P)
	y := linalg.NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		keep := d.rng.Float64() >= d.P
		d.mask[i] = keep
		if keep {
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *linalg.Dense) *linalg.Dense {
	if d.P == 0 {
		return grad
	}
	if len(d.mask) != len(grad.Data) {
		panic("nn: Dropout.Backward without a matching training Forward")
	}
	scale := 1 / (1 - d.P)
	dx := linalg.NewDense(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		if d.mask[i] {
			dx.Data[i] = g * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
