package nn

import (
	"math"
	"testing"

	"geniex/internal/linalg"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR{Rate: 0.1}
	if s.LR(0) != 0.1 || s.LR(100) != 0.1 {
		t.Error("constant schedule not constant")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.1, Milestones: []int{10, 20}}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01, 100: 0.01}
	for epoch, want := range cases {
		if got := s.LR(epoch); math.Abs(got-want) > 1e-15 {
			t.Errorf("LR(%d) = %v, want %v", epoch, got, want)
		}
	}
}

func TestCosineLR(t *testing.T) {
	s := CosineLR{Base: 1, Min: 0.01, Epochs: 11}
	if got := s.LR(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine start = %v", got)
	}
	if got := s.LR(10); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("cosine end = %v", got)
	}
	// Monotone decreasing.
	prev := s.LR(0)
	for e := 1; e <= 10; e++ {
		cur := s.LR(e)
		if cur > prev {
			t.Fatalf("cosine not decreasing at %d", e)
		}
		prev = cur
	}
	// Past the end it stays at Min.
	if got := s.LR(50); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("cosine beyond end = %v", got)
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Inner: ConstantLR{Rate: 1}, Warmup: 4}
	want := []float64{0.25, 0.5, 0.75, 1, 1, 1}
	for e, w := range want {
		if got := s.LR(e); math.Abs(got-w) > 1e-12 {
			t.Errorf("warmup LR(%d) = %v, want %v", e, got, w)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	r := linalg.NewRNG(1)
	lin := NewLinear(4, 4, true, r)
	params := lin.Params()
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 3
		}
	}
	before := ClipGradNorm(params, 1)
	if before <= 1 {
		t.Fatalf("norm before = %v, expected > 1", before)
	}
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	if after := math.Sqrt(sq); math.Abs(after-1) > 1e-12 {
		t.Errorf("norm after clip = %v, want 1", after)
	}
	// No-op when already small.
	norm2 := ClipGradNorm(params, 10)
	if math.Abs(norm2-1) > 1e-12 {
		t.Errorf("second clip reported %v", norm2)
	}
}

func TestClipGradNormPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive maxNorm")
		}
	}()
	ClipGradNorm(nil, 0)
}
