package nn

import (
	"fmt"

	"geniex/internal/linalg"
)

// MaxPool2D is a non-overlapping max pooling layer (stride == window).
type MaxPool2D struct {
	C, H, W int // input geometry
	Window  int

	argmax    []int32 // flat input index of each output's maximum
	lastBatch int
}

// NewMaxPool2D creates a pooling layer; H and W must be divisible by
// the window.
func NewMaxPool2D(c, h, w, window int) *MaxPool2D {
	if window <= 0 || h%window != 0 || w%window != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D window %d incompatible with %dx%d", window, h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w, Window: window}
}

// OutSize returns the flattened output feature count.
func (p *MaxPool2D) OutSize() int {
	return p.C * (p.H / p.Window) * (p.W / p.Window)
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("MaxPool2D", x, p.C*p.H*p.W)
	oh, ow := p.H/p.Window, p.W/p.Window
	y := linalg.NewDense(x.Rows, p.OutSize())
	if train {
		p.argmax = make([]int32, x.Rows*p.OutSize())
		p.lastBatch = x.Rows
	}
	linalg.ParallelFor(x.Rows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			out := y.Row(b)
			for c := 0; c < p.C; c++ {
				base := c * p.H * p.W
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						bestIdx := base + (oy*p.Window)*p.W + ox*p.Window
						best := in[bestIdx]
						for ky := 0; ky < p.Window; ky++ {
							for kx := 0; kx < p.Window; kx++ {
								idx := base + (oy*p.Window+ky)*p.W + (ox*p.Window + kx)
								if in[idx] > best {
									best, bestIdx = in[idx], idx
								}
							}
						}
						o := c*oh*ow + oy*ow + ox
						out[o] = best
						if train {
							p.argmax[b*p.OutSize()+o] = int32(bestIdx)
						}
					}
				}
			}
		}
	})
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *linalg.Dense) *linalg.Dense {
	if p.argmax == nil || grad.Rows != p.lastBatch {
		panic("nn: MaxPool2D.Backward without a matching training Forward")
	}
	checkCols("MaxPool2D.Backward", grad, p.OutSize())
	dx := linalg.NewDense(grad.Rows, p.C*p.H*p.W)
	for b := 0; b < grad.Rows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for o, g := range src {
			dst[p.argmax[b*p.OutSize()+o]] += g
		}
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool2D averages each channel over all spatial positions,
// the standard head of ResNet-style networks.
type GlobalAvgPool2D struct {
	C, H, W int
}

// NewGlobalAvgPool2D creates a global average pooling layer.
func NewGlobalAvgPool2D(c, h, w int) *GlobalAvgPool2D {
	return &GlobalAvgPool2D{C: c, H: h, W: w}
}

// Forward implements Layer.
func (p *GlobalAvgPool2D) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("GlobalAvgPool2D", x, p.C*p.H*p.W)
	spatial := p.H * p.W
	y := linalg.NewDense(x.Rows, p.C)
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		out := y.Row(b)
		for c := 0; c < p.C; c++ {
			out[c] = linalg.Sum(in[c*spatial:(c+1)*spatial]) / float64(spatial)
		}
	}
	return y
}

// Backward implements Layer.
func (p *GlobalAvgPool2D) Backward(grad *linalg.Dense) *linalg.Dense {
	checkCols("GlobalAvgPool2D.Backward", grad, p.C)
	spatial := p.H * p.W
	dx := linalg.NewDense(grad.Rows, p.C*p.H*p.W)
	inv := 1 / float64(spatial)
	for b := 0; b < grad.Rows; b++ {
		src := grad.Row(b)
		dst := dx.Row(b)
		for c := 0; c < p.C; c++ {
			g := src[c] * inv
			seg := dst[c*spatial : (c+1)*spatial]
			for i := range seg {
				seg[i] = g
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool2D) Params() []*Param { return nil }
