package nn

import "geniex/internal/linalg"

// ReLU is the rectified linear activation, y = max(0, x).
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	y := linalg.NewDense(x.Rows, x.Cols)
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		pos := v > 0
		if pos {
			y.Data[i] = v
		}
		if train {
			r.mask[i] = pos
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *linalg.Dense) *linalg.Dense {
	if len(r.mask) != len(grad.Data) {
		panic("nn: ReLU.Backward without a matching training Forward")
	}
	dx := linalg.NewDense(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// GobEncode implements gob.GobEncoder; ReLU is stateless, so the
// payload is empty. (gob refuses structs with no exported fields.)
func (r *ReLU) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (r *ReLU) GobDecode([]byte) error { return nil }

// Flatten is an identity layer kept for architectural clarity: data is
// already stored flat, so it only documents the CNN→FC transition.
type Flatten struct{}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *linalg.Dense, train bool) *linalg.Dense { return x }

// Backward implements Layer.
func (f *Flatten) Backward(grad *linalg.Dense) *linalg.Dense { return grad }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// GobEncode implements gob.GobEncoder; Flatten is stateless.
func (f *Flatten) GobEncode() ([]byte, error) { return []byte{}, nil }

// GobDecode implements gob.GobDecoder.
func (f *Flatten) GobDecode([]byte) error { return nil }
