package nn

import "geniex/internal/linalg"

// Incremental is the online-training entry point: one network, one
// optimizer, stepped a minibatch at a time by a caller that owns the
// training loop (the background GENIEx calibrator streams probe
// samples through it). Unlike the epoch-driven training loops in this
// repo, Incremental holds no dataset — every Step is a complete
// zero-grad → forward → MSE → backward → update cycle on the batch it
// is handed, so optimizer state (Adam moments) persists across an
// unbounded stream of batches.
//
// Incremental is not safe for concurrent Step calls; the intended
// owner is a single background goroutine.
type Incremental struct {
	net    *Sequential
	params []*Param
	opt    Optimizer
}

// NewIncremental wraps a network and an optimizer over that network's
// parameters. The optimizer must have been constructed over
// net.Params() (or a superset including them).
func NewIncremental(net *Sequential, opt Optimizer) *Incremental {
	return &Incremental{net: net, params: net.Params(), opt: opt}
}

// Step runs one minibatch update — zero gradients, forward in
// training mode, MSE against y, backward, optimizer step — and
// returns the batch's pre-update MSE loss.
func (inc *Incremental) Step(x, y *linalg.Dense) float64 {
	ZeroGrad(inc.params)
	pred := inc.net.Forward(x, true)
	loss, grad := MSE(pred, y)
	inc.net.Backward(grad)
	inc.opt.Step()
	return loss
}

// SetLR forwards to the optimizer, for callers running a schedule
// over the stream.
func (inc *Incremental) SetLR(lr float64) { inc.opt.SetLR(lr) }
