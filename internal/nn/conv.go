package nn

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// ConvGeom captures the spatial geometry of a convolution.
type ConvGeom struct {
	InC, InH, InW int
	OutC, Kernel  int
	Stride, Pad   int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// InSize returns the flattened input feature count.
func (g ConvGeom) InSize() int { return g.InC * g.InH * g.InW }

// OutSize returns the flattened output feature count.
func (g ConvGeom) OutSize() int { return g.OutC * g.OutH() * g.OutW() }

// PatchSize returns the im2col patch length InC·K·K.
func (g ConvGeom) PatchSize() int { return g.InC * g.Kernel * g.Kernel }

// Validate reports whether the geometry is consistent.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.OutC <= 0 || g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("nn: invalid conv geometry %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("nn: conv geometry %+v yields empty output", g)
	}
	return nil
}

// Im2Col lowers a batch of C×H×W volumes (rows of x) to a patch
// matrix of shape (batch·outH·outW) × (C·K·K): row (b·outH+oy)·outW+ox
// holds the receptive field of output pixel (oy, ox) of example b.
// Out-of-bounds (padding) taps read as zero.
//
// This is the "Iterative-mvm" step of the paper's functional
// simulator: it is exported because package funcsim lowers
// convolutions onto crossbars with exactly the same transformation.
func Im2Col(x *linalg.Dense, g ConvGeom) *linalg.Dense {
	checkCols("Im2Col", x, g.InSize())
	outH, outW := g.OutH(), g.OutW()
	patch := g.PatchSize()
	cols := linalg.NewDense(x.Rows*outH*outW, patch)
	linalg.ParallelFor(x.Rows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			in := x.Row(b)
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					dst := cols.Row((b*outH+oy)*outW + ox)
					p := 0
					for c := 0; c < g.InC; c++ {
						base := c * g.InH * g.InW
						for ky := 0; ky < g.Kernel; ky++ {
							iy := oy*g.Stride + ky - g.Pad
							for kx := 0; kx < g.Kernel; kx++ {
								ix := ox*g.Stride + kx - g.Pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									dst[p] = in[base+iy*g.InW+ix]
								} else {
									dst[p] = 0
								}
								p++
							}
						}
					}
				}
			}
		}
	})
	return cols
}

// Col2Im scatters patch-matrix gradients back to input gradients,
// the exact adjoint of Im2Col.
func Col2Im(cols *linalg.Dense, g ConvGeom, batch int) *linalg.Dense {
	outH, outW := g.OutH(), g.OutW()
	if cols.Rows != batch*outH*outW || cols.Cols != g.PatchSize() {
		panic(fmt.Sprintf("nn: Col2Im shape %dx%d for geom %+v batch %d", cols.Rows, cols.Cols, g, batch))
	}
	x := linalg.NewDense(batch, g.InSize())
	linalg.ParallelFor(batch, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			out := x.Row(b)
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					src := cols.Row((b*outH+oy)*outW + ox)
					p := 0
					for c := 0; c < g.InC; c++ {
						base := c * g.InH * g.InW
						for ky := 0; ky < g.Kernel; ky++ {
							iy := oy*g.Stride + ky - g.Pad
							for kx := 0; kx < g.Kernel; kx++ {
								ix := ox*g.Stride + kx - g.Pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									out[base+iy*g.InW+ix] += src[p]
								}
								p++
							}
						}
					}
				}
			}
		}
	})
	return x
}

// Conv2D is a 2-D convolution layer implemented by im2col + matmul.
// Weights have shape PatchSize×OutC, so each crossbar-friendly matrix
// column is one output channel's flattened kernel.
type Conv2D struct {
	Geom    ConvGeom
	Weight  *Param
	Bias    *Param
	UseBias bool

	lastCols  *linalg.Dense
	lastBatch int
}

// NewConv2D creates a convolution layer with Kaiming-uniform
// initialization.
func NewConv2D(geom ConvGeom, useBias bool, rng *linalg.RNG) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	c := &Conv2D{Geom: geom, UseBias: useBias}
	c.Weight = newParam("conv.weight", geom.PatchSize(), geom.OutC)
	bound := math.Sqrt(6.0 / float64(geom.PatchSize()))
	for i := range c.Weight.W.Data {
		c.Weight.W.Data[i] = (2*rng.Float64() - 1) * bound
	}
	if useBias {
		c.Bias = newParam("conv.bias", 1, geom.OutC)
	}
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	checkCols("Conv2D", x, c.Geom.InSize())
	cols := Im2Col(x, c.Geom)
	if train {
		c.lastCols = cols
		c.lastBatch = x.Rows
	}
	prod := linalg.MatMul(cols, c.Weight.W) // (b·oh·ow)×outC
	return c.colsToOut(prod, x.Rows)
}

// colsToOut reorders the matmul result (rows = spatial positions,
// cols = channels) into the layer's channel-major activation layout.
func (c *Conv2D) colsToOut(prod *linalg.Dense, batch int) *linalg.Dense {
	g := c.Geom
	outH, outW := g.OutH(), g.OutW()
	spatial := outH * outW
	y := linalg.NewDense(batch, g.OutSize())
	linalg.ParallelFor(batch, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			dst := y.Row(b)
			for s := 0; s < spatial; s++ {
				src := prod.Row(b*spatial + s)
				for oc := 0; oc < g.OutC; oc++ {
					v := src[oc]
					if c.UseBias {
						v += c.Bias.W.Data[oc]
					}
					dst[oc*spatial+s] = v
				}
			}
		}
	})
	return y
}

// outToCols is the inverse reorder, used during Backward.
func (c *Conv2D) outToCols(grad *linalg.Dense) *linalg.Dense {
	g := c.Geom
	spatial := g.OutH() * g.OutW()
	prod := linalg.NewDense(grad.Rows*spatial, g.OutC)
	linalg.ParallelFor(grad.Rows, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			src := grad.Row(b)
			for s := 0; s < spatial; s++ {
				dst := prod.Row(b*spatial + s)
				for oc := 0; oc < g.OutC; oc++ {
					dst[oc] = src[oc*spatial+s]
				}
			}
		}
	})
	return prod
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *linalg.Dense) *linalg.Dense {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward without a training Forward")
	}
	checkCols("Conv2D.Backward", grad, c.Geom.OutSize())
	gcols := c.outToCols(grad) // (b·oh·ow)×outC
	dw := linalg.MatMulATB(c.lastCols, gcols)
	linalg.Axpy(1, dw.Data, c.Weight.Grad.Data)
	if c.UseBias {
		for i := 0; i < gcols.Rows; i++ {
			row := gcols.Row(i)
			for oc := range row {
				c.Bias.Grad.Data[oc] += row[oc]
			}
		}
	}
	dcols := linalg.MatMulABT(gcols, c.Weight.W)
	return Col2Im(dcols, c.Geom, c.lastBatch)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
