// Package nn is a from-scratch deep learning library built on the
// standard library only. It provides the pieces the GENIEx
// reproduction needs: fully-connected and convolutional layers with
// exact backpropagation, batch normalization, residual blocks, pooling,
// softmax cross-entropy and MSE losses, SGD and Adam optimizers, and
// gob-based model serialization.
//
// Data layout: activations flow between layers as *linalg.Dense with
// one example per row. Convolutional layers interpret each row as a
// C×H×W volume in channel-major order (index c·H·W + y·W + x); the
// spatial geometry is fixed at construction time.
//
// All gradients are verified against numerical differentiation in the
// package tests.
package nn

import (
	"fmt"

	"geniex/internal/linalg"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	Name string
	W    *linalg.Dense
	Grad *linalg.Dense
}

// newParam allocates a parameter and its gradient of the same shape.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: linalg.NewDense(rows, cols), Grad: linalg.NewDense(rows, cols)}
}

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch (rows = examples) and returns the layer
// output; when train is true the layer may cache whatever it needs for
// Backward and must use batch statistics (e.g. BatchNorm).
//
// Backward consumes dL/d(output) for the batch of the immediately
// preceding Forward call, accumulates dL/dparams into the layer's
// Param.Grad tensors, and returns dL/d(input).
type Layer interface {
	Forward(x *linalg.Dense, train bool) *linalg.Dense
	Backward(grad *linalg.Dense) *linalg.Dense
	Params() []*Param
}

// Sequential chains layers. It is itself a Layer, so blocks nest.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x *linalg.Dense, train bool) *linalg.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *linalg.Dense) *linalg.Dense {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all accumulated gradients of the given parameters.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		linalg.Fill(p.Grad.Data, 0)
	}
}

// NumParams returns the total number of scalar parameters.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W.Data)
	}
	return n
}

func checkCols(layer string, x *linalg.Dense, want int) {
	if x.Cols != want {
		panic(fmt.Sprintf("nn: %s expects %d features, got %d", layer, want, x.Cols))
	}
}
