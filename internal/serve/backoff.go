package serve

import (
	"time"

	"geniex/internal/linalg"
)

// Backoff is a capped exponential retry schedule with bounded
// subtractive jitter: attempt n (0-based) nominally waits
// Base·Factorⁿ, clamped to Cap, and the returned delay is drawn
// uniformly from [(1−Jitter)·nominal, nominal]. Jitter pulls delays
// earlier only — the nominal schedule is the worst case, so deadline
// budgeting against it is safe.
type Backoff struct {
	// Base is the nominal delay before the first retry.
	Base time.Duration
	// Cap bounds the nominal delay; 0 means uncapped.
	Cap time.Duration
	// Factor is the per-attempt multiplier; values below 1 are treated
	// as 1 (constant schedule).
	Factor float64
	// Jitter in [0,1] is the fraction of the nominal delay the draw
	// may subtract. 0 disables jitter; 1 allows any delay down to 0.
	Jitter float64
}

// DefaultBackoff is the serving default: 5ms, doubling, capped at
// 80ms, with half-width jitter. Four attempts fit inside a ~200ms
// deadline even with zero jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 5 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2, Jitter: 0.5}
}

// Delay returns the wait before retry attempt (0-based). The rng is
// caller-owned: the server uses one seeded source per request so
// schedules are reproducible in tests; a nil rng disables jitter.
func (b Backoff) Delay(attempt int, rng *linalg.RNG) time.Duration {
	nominal := float64(b.Base)
	factor := b.Factor
	if factor < 1 {
		factor = 1
	}
	for i := 0; i < attempt; i++ {
		nominal *= factor
		if b.Cap > 0 && nominal >= float64(b.Cap) {
			nominal = float64(b.Cap)
			break
		}
	}
	if b.Cap > 0 && nominal > float64(b.Cap) {
		nominal = float64(b.Cap)
	}
	if nominal < 0 {
		return 0
	}
	if b.Jitter > 0 && rng != nil {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		nominal *= 1 - j*rng.Float64()
	}
	return time.Duration(nominal)
}

// sleepCtx waits for d or until ctx is done, whichever is first, and
// reports whether the full wait completed. A nil ctx always waits.
func sleepCtx(ctx ctxDone, d time.Duration) bool {
	if d <= 0 {
		return ctx == nil || ctx.Err() == nil
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ctxDone is the subset of context.Context the wait helpers need;
// having a named subset keeps backoff free of the context import and
// makes the dependency explicit.
type ctxDone interface {
	Done() <-chan struct{}
	Err() error
}
