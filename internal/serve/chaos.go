package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// ErrChaos is the transient fault the chaos layer injects into tier
// execution. It is retryable: the retry/backoff schedule and the
// circuit breaker treat it exactly like a degraded circuit solve.
var ErrChaos = errors.New("serve: chaos-injected fault")

// ChaosPolicy is the fault-injection layer the robustness tests and
// `make serve-smoke` drive the server with. All injection happens
// inside the serving path — the analog models themselves are
// untouched (use Faults to corrupt the circuit solver itself).
//
// A zero policy injects nothing.
type ChaosPolicy struct {
	// Latency is added to every tier execution; LatencyJitter adds a
	// further uniform draw in [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration
	// ErrorRate in [0,1] is the probability a tier execution fails
	// with ErrChaos instead of running.
	ErrorRate float64
	// SpareFloor exempts the ladder's floor (last) tier from latency
	// and error injection. The smoke test relies on it: chaos makes
	// the faithful tiers slow and flaky while the floor stays fast and
	// reliable, so shedding genuinely relieves load and every request
	// still ends in a typed success.
	SpareFloor bool
	// StallEvery > 0 stalls every StallEvery-th admitted request for
	// Stall while it holds its queue slot, simulating a tenant whose
	// requests park in the queue and push the load factor up.
	StallEvery int
	Stall      time.Duration
	// Faults, when non-nil, is the fault plan the server's owner
	// should program into the circuit tier's solver (see
	// xbar.Config.WithFaults): forced solver failures and, via its
	// StuckAt field, real conductance faults from the shared
	// internal/nonideal stuck-at component. The serve package only
	// carries it; cmd/geniex-serve wires it when building the circuit
	// tier.
	Faults *xbar.FaultPlan
	// Seed makes the injection schedule reproducible; 0 seeds from 1.
	Seed uint64

	once  sync.Once
	mu    sync.Mutex
	rng   *linalg.RNG
	admit atomic.Int64
}

// enabled reports whether the policy injects anything on the tier
// execution path.
func (c *ChaosPolicy) enabled() bool {
	return c != nil && (c.Latency > 0 || c.LatencyJitter > 0 || c.ErrorRate > 0)
}

func (c *ChaosPolicy) init() {
	c.once.Do(func() {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = linalg.NewRNG(seed)
	})
}

// draw returns this execution's injected latency and whether it must
// fail with ErrChaos.
func (c *ChaosPolicy) draw() (time.Duration, bool) {
	c.init()
	c.mu.Lock()
	defer c.mu.Unlock()
	lat := c.Latency
	if c.LatencyJitter > 0 {
		lat += time.Duration(c.rng.Float64() * float64(c.LatencyJitter))
	}
	fail := c.ErrorRate > 0 && c.rng.Float64() < c.ErrorRate
	return lat, fail
}

// stall reports whether this admission is one of the injected queue
// stalls and, if so, for how long.
func (c *ChaosPolicy) stall() (time.Duration, bool) {
	if c == nil || c.StallEvery <= 0 || c.Stall <= 0 {
		return 0, false
	}
	if c.admit.Add(1)%int64(c.StallEvery) == 0 {
		return c.Stall, true
	}
	return 0, false
}
