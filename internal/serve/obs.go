// Package serve is the overload-resilient inference frontend of the
// functional simulator: an HTTP/JSON server that executes lowered
// models through a fidelity degradation ladder (circuit → GENIEx →
// analytical → ideal), with admission control, per-request deadlines
// threaded down into the circuit solver, retry-with-backoff for
// transient solver faults, and a per-tier circuit breaker.
//
// The design principle is that every overload outcome is typed: a
// request either succeeds (200, annotated with the tier that actually
// served it), is rejected at admission (429 + Retry-After), runs out
// of deadline (504), or exhausts every tier (503). The server never
// queues unboundedly and never crashes under burst; see DESIGN.md §9.
package serve

import "geniex/internal/obs"

// Metric handles for the serving frontend, registered once in the
// process-wide obs registry. Per-tier latency histograms are
// registered per Server in NewServer (their names depend on the
// configured tiers).
var (
	mRequests  = obs.NewCounter("serve.requests")
	mOK        = obs.NewCounter("serve.ok")
	mRejected  = obs.NewCounter("serve.rejected")  // 429 at admission
	mTimeout   = obs.NewCounter("serve.timeout")   // 504 deadline exceeded
	mExhausted = obs.NewCounter("serve.exhausted") // 503 every tier failed
	mBadInput  = obs.NewCounter("serve.bad_input") // 400 malformed request

	mShedOverload = obs.NewCounter("serve.shed.overload")
	mShedBreaker  = obs.NewCounter("serve.shed.breaker")
	mShedDrift    = obs.NewCounter("serve.shed.drift")
	mShedError    = obs.NewCounter("serve.shed.error")
	mShed         = obs.NewCounter("serve.shed")

	mRetry          = obs.NewCounter("serve.retry")
	mVersionRegress = obs.NewCounter("serve.tier.version_regressions")
	mBreakerTrips   = obs.NewCounter("serve.breaker.trips")
	mChaosFaults    = obs.NewCounter("serve.chaos.faults")
	mChaosStalls    = obs.NewCounter("serve.chaos.stalls")

	mQueueDepth = obs.NewGauge("serve.queue_depth")
	mInFlight   = obs.NewGauge("serve.inflight")

	mLatency = obs.NewHistogram("serve.latency_seconds", obs.LatencyBuckets)
)

// Dimensional (label-vec) handles. Children are resolved once per
// tenant (cached on the tenantQueue) and once per tier (arrays built
// in NewServer), so the request path touches only pre-resolved
// scalar handles — the same 0-allocation contract as the flat
// metrics. Tenant names are caller-controlled, so the vecs' built-in
// cardinality cap applies: past it, new tenants aggregate into the
// "_overflow" series and obs.labels.dropped counts the redirections.
var (
	// serve.tenant.requests{tenant,outcome}: terminal outcomes per
	// tenant. Outcomes: ok, rejected, timeout, exhausted. (bad_input
	// is not attributed: malformed JSON carries no trustworthy tenant.)
	vTenantRequests = obs.NewCounterVec("serve.tenant.requests", "tenant", "outcome")
	// serve.tenant.latency_seconds{tenant}: end-to-end request latency
	// of 200 responses per tenant.
	vTenantLatency = obs.NewHistogramVec("serve.tenant.latency_seconds", obs.LatencyBuckets, "tenant")
	// serve.tier.latency_seconds{tier}: per-attempt execution latency
	// by fidelity tier (replaces the former dynamic
	// serve.tier.<name>.latency_seconds names).
	vTierLatency = obs.NewHistogramVec("serve.tier.latency_seconds", obs.LatencyBuckets, "tier")
	// serve.tier.shed{tier,reason}: ladder shed decisions by tier and
	// reason (overload, drift, breaker, error), the dimensional
	// counterpart of the flat serve.shed.* counters.
	vTierShed = obs.NewCounterVec("serve.tier.shed", "tier", "reason")
)
