package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
	"geniex/internal/xbar"
)

// Runner executes one inference at some fidelity. *funcsim.Sim
// satisfies it directly; tests use RunnerFunc stubs.
type Runner interface {
	ForwardContext(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error)

// ForwardContext implements Runner.
func (f RunnerFunc) ForwardContext(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	return f(ctx, x)
}

// Tier is one rung of the fidelity degradation ladder, ordered most
// faithful first in Config.Tiers. The last tier is the floor: the
// ladder never sheds past it, so it should be the cheap, reliable
// model (analytical or ideal).
type Tier struct {
	// Name annotates responses and metric names; must be unique.
	Name string
	// Runner executes the tier.
	Runner Runner
	// ShedAt is the load factor (queued+in-flight over MaxInFlight)
	// at or above which the ladder skips this tier. 0 never sheds on
	// load. Ignored on the floor tier.
	ShedAt float64
	// Distrust, when non-nil, reports that this tier's fidelity is
	// currently not trusted (the PR 5 probe drift gauge is the
	// intended source); the ladder then sheds past it. Ignored on the
	// floor tier.
	Distrust func() bool
	// Version, when non-nil, reports the tier's current model version
	// (funcsim.Engine.ModelVersion is the intended source for tiers
	// whose model is hot-swapped by a background calibrator). Served
	// responses carry it as tier_version, and the ladder asserts
	// monotonicity: a version lower than one it already served from
	// this tier increments serve.tier.version_regressions — versions
	// are immutable and only ever replaced by newer ones, so a
	// regression means a swap published stale state.
	Version func() int64
}

// Config parameterizes the server. The zero value of each field gets
// a serving-grade default in NewServer.
type Config struct {
	// Tiers is the degradation ladder, most faithful first. Required.
	Tiers []Tier
	// In and Out, when non-zero, validate request/response widths.
	In, Out int
	// MaxInFlight caps concurrently executing requests. Default 4.
	MaxInFlight int
	// TenantQueue bounds each tenant's admission queue (requests
	// waiting for an in-flight slot). Default 16.
	TenantQueue int
	// Deadline is the default per-request deadline; MaxDeadline caps
	// client-requested ones. Defaults 1s and 10s.
	Deadline    time.Duration
	MaxDeadline time.Duration
	// RetryMax is how many times one tier retries a transient failure
	// before the ladder sheds past it. Default 2.
	RetryMax int
	// Backoff is the retry schedule; zero Base gets DefaultBackoff.
	Backoff Backoff
	// BreakerTrip consecutive failures open a tier's breaker;
	// BreakerCooldown later it half-opens. Defaults 5 and 1s.
	BreakerTrip     int
	BreakerCooldown time.Duration
	// Chaos, when non-nil, injects faults (tests and smoke only).
	Chaos *ChaosPolicy
	// Seed seeds the per-request backoff jitter streams. Default 1.
	Seed uint64
	// LatencyTarget and LatencyObjective, when both set, arm the
	// "serve.latency" SLO tracker: every terminal request outcome
	// (except 400s, which are client errors) counts as good when it
	// was a 200 served within LatencyTarget. LatencyObjective is the
	// target good fraction in (0,1) — e.g. 0.99 with a 250ms target
	// means "99% of requests answer correctly within 250ms"; the
	// tracker's burn rate is exposed via LatencySLO and the obs
	// snapshot/Prometheus exposition.
	LatencyTarget    time.Duration
	LatencyObjective float64
	// LatencySLOWindow overrides the SLO's sliding window (default
	// 60s).
	LatencySLOWindow time.Duration
}

func (c *Config) applyDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 16
	}
	if c.Deadline <= 0 {
		c.Deadline = time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Second
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.Backoff.Base <= 0 {
		c.Backoff = DefaultBackoff()
	}
	if c.BreakerTrip <= 0 {
		c.BreakerTrip = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Server is the overload-resilient serving frontend. It implements
// http.Handler (POST /v1/infer, GET /healthz); mount obs.Handler()
// alongside it for /metrics.
type Server struct {
	cfg      Config
	sem      chan struct{} // in-flight slots
	queued   atomic.Int64  // admitted but not yet executing, all tenants
	breakers []*Breaker
	tierLat  []*obs.Histogram
	tierShed []tierShedSet
	// slo, when armed (Config.LatencyTarget/LatencyObjective), tracks
	// the serve latency objective as a windowed burn rate.
	slo *obs.SLO
	// maxVersion tracks the highest model version each tier has
	// served, backing the ladder's version-monotonicity assertion.
	maxVersion []atomic.Int64

	tmu     sync.RWMutex
	tenants map[string]*tenantQueue

	rmu sync.Mutex
	rng *linalg.RNG

	mux *http.ServeMux
}

// tenantQueue tracks one tenant's share of the admission queue plus
// the tenant's pre-resolved dimensional metric handles, so the
// request path never resolves vec children.
type tenantQueue struct {
	queued atomic.Int64
	// track is the trace display row for this tenant's requests
	// ("tenant:<name>"), precomputed so the root span allocates no
	// strings.
	track string
	lat   *obs.Histogram
	// Terminal-outcome counters (children of serve.tenant.requests).
	okC, rejectedC, timeoutC, exhaustedC *obs.Counter
}

// tierShedSet holds one tier's pre-resolved shed-reason counters
// (children of serve.tier.shed).
type tierShedSet struct {
	overload, drift, breaker, err *obs.Counter
}

// NewServer validates cfg, applies defaults, and registers the
// per-tier latency histograms.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Tiers) == 0 {
		return nil, errors.New("serve: config needs at least one tier")
	}
	seen := map[string]bool{}
	for i, t := range cfg.Tiers {
		if t.Name == "" {
			return nil, fmt.Errorf("serve: tier %d has no name", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("serve: duplicate tier name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Runner == nil {
			return nil, fmt.Errorf("serve: tier %q has no runner", t.Name)
		}
	}
	cfg.applyDefaults()
	s := &Server{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		breakers:   make([]*Breaker, len(cfg.Tiers)),
		tierLat:    make([]*obs.Histogram, len(cfg.Tiers)),
		tierShed:   make([]tierShedSet, len(cfg.Tiers)),
		maxVersion: make([]atomic.Int64, len(cfg.Tiers)),
		tenants:    map[string]*tenantQueue{},
		rng:        linalg.NewRNG(cfg.Seed),
	}
	for i, t := range cfg.Tiers {
		s.breakers[i] = NewBreaker(cfg.BreakerTrip, cfg.BreakerCooldown)
		s.tierLat[i] = vTierLatency.With(t.Name)
		s.tierShed[i] = tierShedSet{
			overload: vTierShed.With(t.Name, "overload"),
			drift:    vTierShed.With(t.Name, "drift"),
			breaker:  vTierShed.With(t.Name, "breaker"),
			err:      vTierShed.With(t.Name, "error"),
		}
	}
	if cfg.LatencyTarget > 0 && cfg.LatencyObjective > 0 {
		s.slo = obs.NewSLO("serve.latency", obs.SLOConfig{
			Objective: cfg.LatencyObjective,
			Window:    cfg.LatencySLOWindow,
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Breaker returns tier i's circuit breaker (tests inspect and
// manipulate it).
func (s *Server) Breaker(i int) *Breaker { return s.breakers[i] }

// LatencySLO returns the "serve.latency" burn-rate tracker, or nil
// when Config did not arm one. Operators key alerting — and
// geniex-serve keys its own health reporting — off its BurnRate.
func (s *Server) LatencySLO() *obs.SLO { return s.slo }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	// Tenant keys the bounded admission queue; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Inputs is a batch of input rows, all the same width.
	Inputs [][]float64 `json:"inputs"`
	// DeadlineMS overrides the server's default deadline, capped at
	// Config.MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// InferResponse is the 200 body: outputs plus the resilience
// annotations — which tier actually served the request, how far down
// the ladder it shed, and how many retries it burned.
type InferResponse struct {
	Tier          string      `json:"tier"`
	RequestedTier string      `json:"requested_tier"`
	Shed          int         `json:"shed"`
	Retries       int         `json:"retries"`
	Outputs       [][]float64 `json:"outputs"`
	ElapsedMS     float64     `json:"elapsed_ms"`
	// TierVersion is the serving tier's model version at execution
	// time (present when the tier reports one — see Tier.Version).
	TierVersion int64 `json:"tier_version,omitempty"`
}

// ErrorResponse is the typed non-200 body (429, 504, 503, 400).
type ErrorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// errExhausted wraps the last tier error when every rung of the
// ladder failed.
type errExhausted struct{ last error }

func (e errExhausted) Error() string { return fmt.Sprintf("all tiers failed: %v", e.last) }
func (e errExhausted) Unwrap() error { return e.last }

// canceled reports whether err is a context cancellation outcome.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// transient reports whether err is worth retrying on the same tier: a
// chaos-injected fault or a degraded/diverged circuit solve (which
// also matches linalg.ErrNoConvergence through the xbar sentinel).
func transient(err error) bool {
	return errors.Is(err, ErrChaos) || errors.Is(err, xbar.ErrNewtonDiverged)
}

func (s *Server) tenant(name string) *tenantQueue {
	if name == "" {
		name = "default"
	}
	// Read-lock fast path: after a tenant's first request every later
	// one only shares the lock, so concurrent requests for distinct
	// tenants never serialize here.
	s.tmu.RLock()
	t, ok := s.tenants[name]
	s.tmu.RUnlock()
	if ok {
		return t
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t, ok = s.tenants[name]
	if !ok {
		t = &tenantQueue{
			track:      "tenant:" + name,
			lat:        vTenantLatency.With(name),
			okC:        vTenantRequests.With(name, "ok"),
			rejectedC:  vTenantRequests.With(name, "rejected"),
			timeoutC:   vTenantRequests.With(name, "timeout"),
			exhaustedC: vTenantRequests.With(name, "exhausted"),
		}
		s.tenants[name] = t
	}
	return t
}

// loadFactor is the admission pressure signal the shed ladder keys
// on: (queued + executing) / MaxInFlight. 1.0 means every slot busy
// and nobody waiting; 2.0 means a full slot's worth of queue behind
// every slot.
func (s *Server) loadFactor() float64 {
	return float64(int64(len(s.sem))+s.queued.Load()) / float64(cap(s.sem))
}

// splitRNG derives an independent per-request jitter stream.
func (s *Server) splitRNG() *linalg.RNG {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	return s.rng.Split()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterHint is the wait advertised on 503/504 outcomes: the
// retry schedule's cap, falling back to half the default deadline
// (the 429 heuristic) when the schedule is uncapped, so the hint is
// never zero.
func (s *Server) retryAfterHint() time.Duration {
	if s.cfg.Backoff.Cap > 0 {
		return s.cfg.Backoff.Cap
	}
	return s.cfg.Deadline / 2
}

// writeRetryable writes a retryable typed outcome (429, 503, 504).
// The Retry-After header and the JSON body's RetryAfterMS always
// advertise the same hint: the header is the body value rounded up to
// whole seconds, floored at 1 so clients honouring only the header
// never spin on a zero wait.
func writeRetryable(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	ms := retryAfter.Milliseconds()
	secs := (ms + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, ErrorResponse{Error: msg, RetryAfterMS: ms})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type tierHealth struct {
		Name    string `json:"name"`
		Breaker string `json:"breaker"`
	}
	tiers := make([]tierHealth, len(s.cfg.Tiers))
	for i, t := range s.cfg.Tiers {
		tiers[i] = tierHealth{Name: t.Name, Breaker: s.breakers[i].State().String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"in":     s.cfg.In,
		"out":    s.cfg.Out,
		"load":   s.loadFactor(),
		"tiers":  tiers,
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	start := time.Now()

	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		mBadInput.Inc()
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed JSON: " + err.Error()})
		return
	}
	x, err := denseOf(req.Inputs, s.cfg.In)
	if err != nil {
		mBadInput.Inc()
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	tq := s.tenant(req.Tenant)

	deadline := s.cfg.Deadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Root span of the request's trace: everything below — forward,
	// MVM, tile, batch solve — parents under it, and the trace lands
	// on the tenant's display track in the Chrome export.
	ctx, span := obs.StartRootSpan(ctx, "serve.request", tq.track)
	defer span.End()

	release, ok := s.admit(ctx, w, tq, start)
	if !ok {
		return // admit wrote the 429/504
	}
	defer release()

	y, tier, shed, retries, err := s.execute(ctx, x)
	elapsed := time.Since(start)
	if obs.Enabled() {
		// The exemplar ties the latency bucket — in particular the slow
		// tail — to this request's trace ID, so a scrape can jump from
		// a bad percentile straight to the span tree in /trace.
		mLatency.ObserveExemplar(elapsed.Seconds(), span.TraceID())
	}
	switch {
	case err == nil:
		mOK.Inc()
		tq.okC.Inc()
		if obs.Enabled() {
			tq.lat.ObserveExemplar(elapsed.Seconds(), span.TraceID())
		}
		s.sloObserve(start, true)
		writeJSON(w, http.StatusOK, InferResponse{
			Tier:          s.cfg.Tiers[tier].Name,
			RequestedTier: s.cfg.Tiers[0].Name,
			Shed:          shed,
			Retries:       retries,
			Outputs:       rowsOf(y),
			ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
			TierVersion:   s.tierVersion(tier),
		})
	case canceled(err):
		mTimeout.Inc()
		tq.timeoutC.Inc()
		s.sloObserve(start, false)
		writeRetryable(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error(), s.retryAfterHint())
	default:
		mExhausted.Inc()
		tq.exhaustedC.Inc()
		s.sloObserve(start, false)
		writeRetryable(w, http.StatusServiceUnavailable, err.Error(), s.retryAfterHint())
	}
}

// sloObserve feeds the latency SLO (when armed) with one terminal
// outcome: good means the request was served (200) within the
// configured latency target.
func (s *Server) sloObserve(start time.Time, served bool) {
	if s.slo == nil {
		return
	}
	s.slo.Observe(served && time.Since(start) <= s.cfg.LatencyTarget)
}

// tierVersion samples tier i's model version (0 when the tier does
// not report one) and enforces the ladder's monotonicity assertion:
// once a version has been observed from a tier, any lower reading is
// a regression (a hot-swap published stale state) and is counted. The
// reading may legitimately be one ahead of the version that actually
// served the request — a swap can land between execution and this
// sample — which only ever moves the observed maximum forward.
func (s *Server) tierVersion(i int) int64 {
	vf := s.cfg.Tiers[i].Version
	if vf == nil {
		return 0
	}
	v := vf()
	for {
		seen := s.maxVersion[i].Load()
		if v < seen {
			mVersionRegress.Inc()
			return v
		}
		if v == seen || s.maxVersion[i].CompareAndSwap(seen, v) {
			return v
		}
	}
}

// admit runs the bounded-queue + semaphore admission protocol. On
// rejection or timeout it writes the typed response and returns
// ok=false; on success the caller owns an in-flight slot and must
// call release.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, tq *tenantQueue, start time.Time) (release func(), ok bool) {
	if tq.queued.Add(1) > int64(s.cfg.TenantQueue) {
		tq.queued.Add(-1)
		mRejected.Inc()
		tq.rejectedC.Inc()
		s.sloObserve(start, false)
		writeRetryable(w, http.StatusTooManyRequests, "tenant queue full", s.cfg.Deadline/2)
		return nil, false
	}
	s.queued.Add(1)
	mQueueDepth.Set(s.queued.Load())
	dequeue := func() {
		tq.queued.Add(-1)
		s.queued.Add(-1)
		mQueueDepth.Set(s.queued.Load())
	}

	if d, stall := s.cfg.Chaos.stall(); stall {
		mChaosStalls.Inc()
		sleepCtx(ctx, d) // park in the queue; deadline still applies
	}

	select {
	case s.sem <- struct{}{}:
		dequeue()
		mInFlight.Set(int64(len(s.sem)))
		return func() {
			<-s.sem
			mInFlight.Set(int64(len(s.sem)))
		}, true
	case <-ctx.Done():
		dequeue()
		mTimeout.Inc()
		tq.timeoutC.Inc()
		s.sloObserve(start, false)
		writeRetryable(w, http.StatusGatewayTimeout, "deadline exceeded in admission queue", s.retryAfterHint())
		return nil, false
	}
}

// execute walks the degradation ladder: skip tiers whose breaker is
// open, whose fidelity is distrusted, or that the current load factor
// sheds; run the first eligible tier with retry/backoff; on
// non-transient or exhausted-retry failure fall to the next rung. The
// floor tier is never skipped — only a hard failure or cancellation
// ends the ladder without a result.
func (s *Server) execute(ctx context.Context, x *linalg.Dense) (y *linalg.Dense, tier, shed, retries int, err error) {
	rng := s.splitRNG()
	var lastErr error
	for i := range s.cfg.Tiers {
		floor := i == len(s.cfg.Tiers)-1
		if !floor {
			if t := &s.cfg.Tiers[i]; t.ShedAt > 0 && s.loadFactor() >= t.ShedAt {
				mShed.Inc()
				mShedOverload.Inc()
				s.tierShed[i].overload.Inc()
				shed++
				continue
			} else if t.Distrust != nil && t.Distrust() {
				mShed.Inc()
				mShedDrift.Inc()
				s.tierShed[i].drift.Inc()
				shed++
				continue
			} else if !s.breakers[i].Allow() {
				mShed.Inc()
				mShedBreaker.Inc()
				s.tierShed[i].breaker.Inc()
				shed++
				continue
			}
		}
		var r int
		y, r, err = s.runTier(ctx, i, x, rng)
		retries += r
		if err == nil {
			return y, i, shed, retries, nil
		}
		if canceled(err) {
			return nil, i, shed, retries, err
		}
		lastErr = err
		if !floor {
			mShed.Inc()
			mShedError.Inc()
			s.tierShed[i].err.Inc()
			shed++
		}
	}
	return nil, 0, shed, retries, errExhausted{lastErr}
}

// runTier executes one tier with the retry/backoff schedule, feeding
// the tier's breaker. Cancellation aborts immediately; a half-open
// probe that gets cancelled re-opens the breaker so it cannot wedge
// in the half-open state.
func (s *Server) runTier(ctx context.Context, i int, x *linalg.Dense, rng *linalg.RNG) (*linalg.Dense, int, error) {
	b := s.breakers[i]
	retries := 0
	for attempt := 0; ; attempt++ {
		start := obs.Now()
		y, err := s.attempt(ctx, i, x)
		s.tierLat[i].ObserveSince(start)
		if err == nil {
			b.Success()
			return y, retries, nil
		}
		if canceled(err) {
			if b.State() == BreakerHalfOpen {
				b.Failure()
			}
			return nil, retries, err
		}
		if b.Failure() {
			mBreakerTrips.Inc()
		}
		if !transient(err) || attempt >= s.cfg.RetryMax {
			return nil, retries, err
		}
		retries++
		mRetry.Inc()
		if !sleepCtx(ctx, s.cfg.Backoff.Delay(attempt, rng)) {
			return nil, retries, fmt.Errorf("serve: cancelled during backoff: %w", ctx.Err())
		}
	}
}

// attempt runs tier i once, applying the chaos layer first (unless
// the policy spares the floor).
func (s *Server) attempt(ctx context.Context, i int, x *linalg.Dense) (*linalg.Dense, error) {
	floor := i == len(s.cfg.Tiers)-1
	if c := s.cfg.Chaos; c.enabled() && !(c.SpareFloor && floor) {
		lat, fail := c.draw()
		if lat > 0 && !sleepCtx(ctx, lat) {
			return nil, fmt.Errorf("serve: cancelled during chaos latency: %w", ctx.Err())
		}
		if fail {
			mChaosFaults.Inc()
			return nil, ErrChaos
		}
	}
	return s.cfg.Tiers[i].Runner.ForwardContext(ctx, x)
}

// denseOf validates a JSON input batch (non-empty, rectangular, width
// in when in > 0) and packs it into a Dense.
func denseOf(rows [][]float64, in int) (*linalg.Dense, error) {
	if len(rows) == 0 {
		return nil, errors.New("inputs must contain at least one row")
	}
	width := len(rows[0])
	if width == 0 {
		return nil, errors.New("input rows must be non-empty")
	}
	if in > 0 && width != in {
		return nil, fmt.Errorf("input rows have %d features, model expects %d", width, in)
	}
	x := linalg.NewDense(len(rows), width)
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("input row %d has %d features, row 0 has %d", i, len(row), width)
		}
		copy(x.Row(i), row)
	}
	return x, nil
}

// rowsOf unpacks a Dense into JSON-ready rows.
func rowsOf(y *linalg.Dense) [][]float64 {
	rows := make([][]float64, y.Rows)
	for i := range rows {
		rows[i] = y.Row(i)
	}
	return rows
}
