package serve

import (
	"testing"
	"time"

	"geniex/internal/linalg"
)

// The nominal (jitter-free) schedule must be exponential in Factor
// and clamp at Cap.
func TestBackoffNominalSchedule(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		5 * time.Millisecond,  // attempt 0
		10 * time.Millisecond, // 1
		20 * time.Millisecond, // 2
		40 * time.Millisecond, // 3
		80 * time.Millisecond, // 4
		80 * time.Millisecond, // 5: capped
		80 * time.Millisecond, // 6: stays capped
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, nil); got != w {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
}

// Seeded-RNG table test: every jittered draw must land inside
// [(1−Jitter)·nominal, nominal], the cap must bound the nominal even
// under jitter, and the schedule must be reproducible per seed.
func TestBackoffJitterBounds(t *testing.T) {
	cases := []struct {
		name   string
		b      Backoff
		seed   uint64
		tries  int
		maxAtt int
	}{
		{"half-jitter", Backoff{Base: 4 * time.Millisecond, Cap: 64 * time.Millisecond, Factor: 2, Jitter: 0.5}, 11, 64, 8},
		{"full-jitter", Backoff{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Factor: 3, Jitter: 1}, 23, 64, 6},
		{"tiny-jitter", Backoff{Base: 1 * time.Millisecond, Cap: 0, Factor: 1.5, Jitter: 0.1}, 37, 64, 10},
		{"over-jitter", Backoff{Base: 2 * time.Millisecond, Cap: 16 * time.Millisecond, Factor: 2, Jitter: 1.5}, 41, 64, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := linalg.NewRNG(tc.seed)
			for i := 0; i < tc.tries; i++ {
				attempt := i % tc.maxAtt
				nominal := tc.b.Delay(attempt, nil)
				if tc.b.Cap > 0 && nominal > tc.b.Cap {
					t.Fatalf("attempt %d: nominal %v exceeds cap %v", attempt, nominal, tc.b.Cap)
				}
				got := tc.b.Delay(attempt, rng)
				j := tc.b.Jitter
				if j > 1 {
					j = 1
				}
				lo := time.Duration((1 - j) * float64(nominal))
				if got < lo || got > nominal {
					t.Errorf("attempt %d draw %d: delay %v outside [%v, %v]",
						attempt, i, got, lo, nominal)
				}
			}

			// Same seed → identical schedule (tests rely on this).
			a, b := linalg.NewRNG(tc.seed), linalg.NewRNG(tc.seed)
			for i := 0; i < 16; i++ {
				if da, db := tc.b.Delay(i, a), tc.b.Delay(i, b); da != db {
					t.Fatalf("attempt %d: same-seed draws differ: %v != %v", i, da, db)
				}
			}
		})
	}
}

// Jitter must actually vary the delay (it subtracts a uniform draw, so
// two consecutive draws being bit-identical over many tries would mean
// the rng is not consulted).
func TestBackoffJitterVaries(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}
	rng := linalg.NewRNG(5)
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[b.Delay(3, rng)] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 jittered draws produced %d distinct delays", len(seen))
	}
}
