package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"geniex/internal/linalg"
)

// passthrough is the cheapest possible tier: the benchmark measures
// the serving machinery (decode, admission, metrics, trace root,
// encode), not model execution.
func passthrough(_ context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	return x, nil
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := NewServer(Config{
		Tiers:       []Tier{{Name: "ideal", Runner: RunnerFunc(passthrough)}},
		In:          3,
		MaxInFlight: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchRequest(b *testing.B, s *Server, body []byte) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeFlat is the per-request baseline: the anonymous
// ("default" tenant) request path, whose per-request metric work is
// dominated by the flat counters and histograms the server has always
// kept.
func BenchmarkServeFlat(b *testing.B) {
	s := benchServer(b)
	// The pad field keeps the request bytes comparable with the
	// labeled benchmark's bodies, so the delta isolates the
	// dimensional machinery rather than JSON length.
	body := []byte(`{"pad":"tenant-0","inputs":[[1,2,3]]}`)
	benchRequest(b, s, body) // warm the tenant handle cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, s, body)
	}
}

// BenchmarkServeLabeled drives the same path with explicit rotating
// tenant names, exercising the dimensional layer in full: per-tenant
// handle-cache lookups plus the pre-resolved vec children observed on
// every outcome. The contract (held by review against
// BenchmarkServeFlat) is that the labeled path costs no more than ~5%
// over the flat baseline — label resolution happens once per tenant,
// not per request.
func BenchmarkServeLabeled(b *testing.B) {
	s := benchServer(b)
	bodies := make([][]byte, 8)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(`{"tenant":"tenant-%d","inputs":[[1,2,3]]}`, i))
		benchRequest(b, s, bodies[i]) // warm the tenant handle cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, s, bodies[i%len(bodies)])
	}
}
