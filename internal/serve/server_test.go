package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// doubler is the stub runner: y = 2x, same shape.
func doubler(_ context.Context, x *linalg.Dense) (*linalg.Dense, error) {
	y := linalg.NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 2 * v
	}
	return y, nil
}

// blockUntil returns a runner that blocks until gate closes (or the
// context dies), then doubles.
func blockUntil(gate <-chan struct{}) RunnerFunc {
	return func(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
		select {
		case <-gate:
			return doubler(ctx, x)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// assertRetryAfter checks the contract every retryable typed outcome
// (429, 503, 504) shares: a Retry-After header equal to the body's
// retry_after_ms rounded up to whole seconds, at least 1.
func assertRetryAfter(t *testing.T, w *httptest.ResponseRecorder, bad ErrorResponse) {
	t.Helper()
	if bad.RetryAfterMS <= 0 {
		t.Errorf("body lacks retry_after_ms: %+v", bad)
	}
	secs := (bad.RetryAfterMS + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	h := w.Header().Get("Retry-After")
	if want := strconv.FormatInt(secs, 10); h != want {
		t.Errorf("Retry-After header %q inconsistent with retry_after_ms %d (want %q)", h, bad.RetryAfterMS, want)
	}
}

func postInfer(t *testing.T, s *Server, req InferRequest) (*httptest.ResponseRecorder, InferResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader(body)))
	var ok InferResponse
	var bad ErrorResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &ok); err != nil {
			t.Fatalf("malformed 200 body %q: %v", w.Body.String(), err)
		}
	} else {
		if err := json.Unmarshal(w.Body.Bytes(), &bad); err != nil {
			t.Fatalf("malformed error body %q: %v", w.Body.String(), err)
		}
	}
	return w, ok, bad
}

func inferReq(rows int) InferRequest {
	req := InferRequest{Inputs: make([][]float64, rows)}
	for i := range req.Inputs {
		req.Inputs[i] = []float64{1, 2, 3}
	}
	return req
}

func TestInferHappyPath(t *testing.T) {
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "ideal", Runner: RunnerFunc(doubler)}},
		In:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, resp, _ := postInfer(t, s, inferReq(2))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	if resp.Tier != "ideal" || resp.RequestedTier != "ideal" || resp.Shed != 0 || resp.Retries != 0 {
		t.Errorf("unexpected annotations: %+v", resp)
	}
	if len(resp.Outputs) != 2 || resp.Outputs[0][0] != 2 || resp.Outputs[1][2] != 6 {
		t.Errorf("unexpected outputs: %v", resp.Outputs)
	}
}

func TestInferBadInput(t *testing.T) {
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "ideal", Runner: RunnerFunc(doubler)}},
		In:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]InferRequest{
		"empty":       {},
		"empty-row":   {Inputs: [][]float64{{}}},
		"ragged":      {Inputs: [][]float64{{1, 2, 3}, {1}}},
		"wrong-width": {Inputs: [][]float64{{1, 2}}},
	} {
		if w, _, _ := postInfer(t, s, req); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/infer", bytes.NewReader([]byte("{"))))
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", w.Code)
	}
}

// Backpressure: with one in-flight slot and a one-deep tenant queue,
// a third concurrent request must get a typed 429 with Retry-After,
// and the queued ones must still succeed.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := RunnerFunc(func(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
		started <- struct{}{}
		return blockUntil(gate)(ctx, x)
	})
	s, err := NewServer(Config{
		Tiers:       []Tier{{Name: "ideal", Runner: runner}},
		MaxInFlight: 1,
		TenantQueue: 1,
		Deadline:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	queueDepth := obs.NewGauge("serve.queue_depth")
	type result struct {
		code int
		bad  ErrorResponse
	}
	results := make(chan result, 2)
	run := func() {
		w, _, bad := postInfer(t, s, inferReq(1))
		results <- result{w.Code, bad}
	}

	go run()
	<-started // r1 holds the in-flight slot
	go run()
	deadline := time.Now().Add(5 * time.Second)
	for queueDepth.Load() < 1 { // r2 parked in the queue
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	w3, _, bad3 := postInfer(t, s, inferReq(1)) // tenant queue full
	if w3.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", w3.Code)
	}
	assertRetryAfter(t, w3, bad3)

	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Errorf("queued request %d: status %d (%+v)", i, r.code, r.bad)
		}
	}
}

// A deadline that expires while the tier runs must come back as a
// typed 504, and repeated deadline-exceeded requests must not leak
// goroutines.
func TestDeadline504AndNoGoroutineLeak(t *testing.T) {
	gate := make(chan struct{}) // never closed: the runner only exits via ctx
	defer close(gate)
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "ideal", Runner: blockUntil(gate)}},
	})
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		req := inferReq(1)
		req.DeadlineMS = 5
		w, _, bad := postInfer(t, s, req)
		if w.Code != http.StatusGatewayTimeout {
			t.Fatalf("request %d: status %d body %+v, want 504", i, w.Code, bad)
		}
		assertRetryAfter(t, w, bad)
	}
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Under load at/above a tier's ShedAt, the ladder must skip to the
// floor and annotate the response.
func TestShedOnLoad(t *testing.T) {
	s, err := NewServer(Config{
		Tiers: []Tier{
			{Name: "circuit", Runner: RunnerFunc(doubler), ShedAt: 0.5},
			{Name: "ideal", Runner: RunnerFunc(doubler)},
		},
		MaxInFlight: 1, // the request itself pushes load to 1.0 ≥ 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	shed := obs.NewCounter("serve.shed")
	overload := obs.NewCounter("serve.shed.overload")
	shed0, over0 := shed.Load(), overload.Load()
	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if resp.Tier != "ideal" || resp.RequestedTier != "circuit" || resp.Shed != 1 {
		t.Errorf("expected overload shed to floor, got %+v", resp)
	}
	if shed.Load() != shed0+1 || overload.Load() != over0+1 {
		t.Errorf("shed counters did not advance: shed %d→%d overload %d→%d",
			shed0, shed.Load(), over0, overload.Load())
	}
}

// Transient tier failures must be retried with backoff on the same
// tier and the retry count reported.
func TestRetryTransientThenSucceed(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	flaky := RunnerFunc(func(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			return nil, ErrChaos
		}
		return doubler(ctx, x)
	})
	s, err := NewServer(Config{
		Tiers:    []Tier{{Name: "circuit", Runner: flaky}, {Name: "ideal", Runner: RunnerFunc(doubler)}},
		RetryMax: 2,
		Backoff:  Backoff{Base: time.Microsecond, Cap: time.Millisecond, Factor: 2, Jitter: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	retry := obs.NewCounter("serve.retry")
	r0 := retry.Load()
	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if resp.Tier != "circuit" || resp.Retries != 2 || resp.Shed != 0 {
		t.Errorf("expected 2 retries on the circuit tier, got %+v", resp)
	}
	if d := retry.Load() - r0; d != 2 {
		t.Errorf("serve.retry advanced by %d, want 2", d)
	}
}

// Non-transient failures must not burn retries: the ladder sheds to
// the next tier immediately.
func TestNonTransientShedsWithoutRetry(t *testing.T) {
	boom := RunnerFunc(func(context.Context, *linalg.Dense) (*linalg.Dense, error) {
		return nil, errors.New("boom")
	})
	s, err := NewServer(Config{
		Tiers:    []Tier{{Name: "circuit", Runner: boom}, {Name: "ideal", Runner: RunnerFunc(doubler)}},
		RetryMax: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if resp.Tier != "ideal" || resp.Retries != 0 || resp.Shed != 1 {
		t.Errorf("expected retry-free shed, got %+v", resp)
	}
}

// After BreakerTrip consecutive failures the tier's breaker opens and
// later requests skip the tier without touching its runner.
func TestBreakerTripsAndSkips(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	failing := RunnerFunc(func(context.Context, *linalg.Dense) (*linalg.Dense, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, ErrChaos
	})
	s, err := NewServer(Config{
		Tiers:           []Tier{{Name: "circuit", Runner: failing}, {Name: "ideal", Runner: RunnerFunc(doubler)}},
		RetryMax:        1,
		Backoff:         Backoff{Base: time.Microsecond, Factor: 1},
		BreakerTrip:     2,
		BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	trips := obs.NewCounter("serve.breaker.trips")
	shedBreaker := obs.NewCounter("serve.shed.breaker")
	t0, sb0 := trips.Load(), shedBreaker.Load()

	// First request: 1 attempt + 1 retry = 2 consecutive failures →
	// breaker trips; the request still succeeds on the floor.
	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK || resp.Tier != "ideal" {
		t.Fatalf("first request: status %d tier %q", w.Code, resp.Tier)
	}
	if s.Breaker(0).State() != BreakerOpen {
		t.Fatalf("breaker state %v after trip threshold, want open", s.Breaker(0).State())
	}
	if d := trips.Load() - t0; d != 1 {
		t.Errorf("serve.breaker.trips advanced by %d, want 1", d)
	}

	mu.Lock()
	callsAfterTrip := calls
	mu.Unlock()

	// Second request: breaker open → tier skipped, runner untouched.
	w, resp, _ = postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK || resp.Tier != "ideal" || resp.Shed != 1 {
		t.Fatalf("second request: status %d resp %+v", w.Code, resp)
	}
	mu.Lock()
	if calls != callsAfterTrip {
		t.Errorf("open breaker still let %d calls through", calls-callsAfterTrip)
	}
	mu.Unlock()
	if d := shedBreaker.Load() - sb0; d != 1 {
		t.Errorf("serve.shed.breaker advanced by %d, want 1", d)
	}
}

// A distrusted tier (probe drift over threshold) must be skipped.
func TestDistrustSheds(t *testing.T) {
	distrusted := true
	s, err := NewServer(Config{
		Tiers: []Tier{
			{Name: "geniex", Runner: RunnerFunc(doubler), Distrust: func() bool { return distrusted }},
			{Name: "ideal", Runner: RunnerFunc(doubler)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	drift := obs.NewCounter("serve.shed.drift")
	d0 := drift.Load()
	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK || resp.Tier != "ideal" || resp.Shed != 1 {
		t.Fatalf("distrusted tier not shed: status %d resp %+v", w.Code, resp)
	}
	if d := drift.Load() - d0; d != 1 {
		t.Errorf("serve.shed.drift advanced by %d, want 1", d)
	}

	distrusted = false
	_, resp, _ = postInfer(t, s, inferReq(1))
	if resp.Tier != "geniex" || resp.Shed != 0 {
		t.Errorf("trusted tier still shed: %+v", resp)
	}
}

// When every rung fails, the outcome is a typed 503 — not a hang, not
// a panic.
func TestExhausted503(t *testing.T) {
	boom := RunnerFunc(func(context.Context, *linalg.Dense) (*linalg.Dense, error) {
		return nil, errors.New("boom")
	})
	s, err := NewServer(Config{Tiers: []Tier{{Name: "only", Runner: boom}}})
	if err != nil {
		t.Fatal(err)
	}
	exhausted := obs.NewCounter("serve.exhausted")
	e0 := exhausted.Load()
	w, _, bad := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if bad.Error == "" {
		t.Error("503 without an error message")
	}
	assertRetryAfter(t, w, bad)
	if d := exhausted.Load() - e0; d != 1 {
		t.Errorf("serve.exhausted advanced by %d, want 1", d)
	}
}

// Chaos error injection on the faithful tier with a spared floor:
// every request still ends in a typed 200, shed to the floor, with
// chaos faults and retries observable.
func TestChaosInjectionSparesFloor(t *testing.T) {
	s, err := NewServer(Config{
		Tiers:    []Tier{{Name: "circuit", Runner: RunnerFunc(doubler)}, {Name: "ideal", Runner: RunnerFunc(doubler)}},
		RetryMax: 1,
		Backoff:  Backoff{Base: time.Microsecond, Factor: 1},
		Chaos:    &ChaosPolicy{ErrorRate: 1, SpareFloor: true, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	faults := obs.NewCounter("serve.chaos.faults")
	f0 := faults.Load()
	for i := 0; i < 4; i++ {
		w, resp, bad := postInfer(t, s, inferReq(1))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d (%+v) — chaos leaked a 5xx", i, w.Code, bad)
		}
		if resp.Tier != "ideal" {
			t.Errorf("request %d: tier %q, want floor", i, resp.Tier)
		}
	}
	if faults.Load() == f0 {
		t.Error("chaos injected no faults at ErrorRate=1")
	}
}

// Queue-stall injection must park requests without breaking typed
// outcomes.
func TestChaosQueueStall(t *testing.T) {
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "ideal", Runner: RunnerFunc(doubler)}},
		Chaos: &ChaosPolicy{StallEvery: 2, Stall: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	stalls := obs.NewCounter("serve.chaos.stalls")
	s0 := stalls.Load()
	for i := 0; i < 4; i++ {
		if w, _, _ := postInfer(t, s, inferReq(1)); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, w.Code)
		}
	}
	if d := stalls.Load() - s0; d != 2 {
		t.Errorf("stall counter advanced by %d, want 2", d)
	}
}

func TestHealthz(t *testing.T) {
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "ideal", Runner: RunnerFunc(doubler)}},
		In:    3, Out: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["in"] != float64(3) {
		t.Errorf("unexpected healthz: %v", h)
	}
}

// NewServer must reject broken ladders.
func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewServer(Config{Tiers: []Tier{{Name: "", Runner: RunnerFunc(doubler)}}}); err == nil {
		t.Error("unnamed tier accepted")
	}
	if _, err := NewServer(Config{Tiers: []Tier{{Name: "a", Runner: RunnerFunc(doubler)}, {Name: "a", Runner: RunnerFunc(doubler)}}}); err == nil {
		t.Error("duplicate tier names accepted")
	}
	if _, err := NewServer(Config{Tiers: []Tier{{Name: "a"}}}); err == nil {
		t.Error("runnerless tier accepted")
	}
}

// Concurrent mixed traffic against a slow faithful tier must produce
// only typed outcomes (200/429/504) and leave no goroutines behind —
// the burst-safety acceptance criterion at the handler level.
func TestConcurrentBurstTypedOutcomes(t *testing.T) {
	slow := RunnerFunc(func(ctx context.Context, x *linalg.Dense) (*linalg.Dense, error) {
		if !sleepCtx(ctx, 2*time.Millisecond) {
			return nil, ctx.Err()
		}
		return doubler(ctx, x)
	})
	s, err := NewServer(Config{
		Tiers: []Tier{
			{Name: "circuit", Runner: slow, ShedAt: 1.5},
			{Name: "ideal", Runner: RunnerFunc(doubler)},
		},
		MaxInFlight: 2,
		TenantQueue: 4,
		Deadline:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	const n = 64
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := inferReq(1)
			req.Tenant = fmt.Sprintf("tenant-%d", i%3)
			w, _, _ := postInfer(t, s, req)
			codes <- w.Code
		}(i)
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Errorf("untyped outcome %d under burst: %v", code, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("no successes under burst: %v", counts)
	}
	runtime.GC()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after burst: %d vs baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Tier versions in responses must be monotonic per tier: the ladder
// reports each response's model version, and a reading below the
// tier's observed maximum — a hot-swap publishing stale state — is
// counted as a regression. Tiers without a Version hook report 0 and
// never count.
func TestTierVersionMonotonic(t *testing.T) {
	var version atomic.Int64
	version.Store(5)
	s, err := NewServer(Config{
		Tiers: []Tier{{Name: "adaptive", Runner: RunnerFunc(doubler), Version: version.Load}},
		In:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	regress := obs.NewCounter("serve.tier.version_regressions")
	r0 := regress.Load()

	w, resp, _ := postInfer(t, s, inferReq(1))
	if w.Code != http.StatusOK || resp.TierVersion != 5 {
		t.Fatalf("status %d tier_version %d, want 200/5", w.Code, resp.TierVersion)
	}
	version.Store(7)
	if _, resp, _ = postInfer(t, s, inferReq(1)); resp.TierVersion != 7 {
		t.Fatalf("tier_version %d after advance, want 7", resp.TierVersion)
	}
	if got := regress.Load(); got != r0 {
		t.Fatalf("monotonic versions counted %d regressions", got-r0)
	}

	// A reading below the observed maximum is a regression: served, but
	// counted.
	version.Store(6)
	if _, resp, _ = postInfer(t, s, inferReq(1)); resp.TierVersion != 6 {
		t.Fatalf("tier_version %d after regression, want 6", resp.TierVersion)
	}
	if got := regress.Load(); got != r0+1 {
		t.Fatalf("version regression counted %d times, want 1", got-r0)
	}

	// Versionless tiers omit the field entirely.
	s2, err := NewServer(Config{
		Tiers: []Tier{{Name: "plain", Runner: RunnerFunc(doubler)}},
		In:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, resp, _ = postInfer(t, s2, inferReq(1))
	if w.Code != http.StatusOK || resp.TierVersion != 0 {
		t.Fatalf("versionless tier: status %d tier_version %d", w.Code, resp.TierVersion)
	}
	if bytes.Contains(w.Body.Bytes(), []byte("tier_version")) {
		t.Errorf("versionless tier serialized tier_version: %s", w.Body.String())
	}
}
