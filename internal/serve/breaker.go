package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen has admitted one probe request and rejects the
	// rest until the probe reports back.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Breaker is a consecutive-failure circuit breaker guarding one
// fidelity tier. Trip consecutive failures open it; after Cooldown it
// half-opens and admits exactly one probe request, whose outcome
// either closes it again or re-opens it for another cooldown. While
// open, the degradation ladder skips the tier entirely, so a
// persistently failing circuit solver costs requests nothing.
type Breaker struct {
	trip     int
	cooldown time.Duration

	// now is injectable so the trip/half-open/re-open schedule is
	// testable without sleeping.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

// NewBreaker creates a closed breaker that opens after trip
// consecutive failures and half-opens cooldown later. trip < 1 is
// treated as 1.
func NewBreaker(trip int, cooldown time.Duration) *Breaker {
	if trip < 1 {
		trip = 1
	}
	return &Breaker{trip: trip, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may use the guarded tier. In the
// open state the call itself performs the half-open transition once
// the cooldown has elapsed; the single request that observes the
// transition is the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true // this caller is the probe
		}
		return false
	case BreakerHalfOpen:
		return false // a probe is already in flight
	}
	return false
}

// Success records a successful call: any state returns to closed with
// the failure streak cleared.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure records a failed call. A half-open probe failure re-opens
// immediately; in the closed state the trip threshold applies.
// Failure reports whether this call tripped the breaker open.
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		return true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.trip {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.fails = 0
			return true
		}
	}
	return false
}

// State returns the breaker's current state without advancing the
// open → half-open transition.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
