package serve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's injectable now func.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeBreaker(trip int, cd time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(trip, cd)
	c := &fakeClock{t: time.Unix(0, 0)}
	b.now = c.now
	return b, c
}

// The breaker must trip open after exactly N consecutive failures,
// and a success mid-streak must reset the count.
func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	const trip = 3
	b, _ := newFakeBreaker(trip, time.Second)

	// A success interrupts the streak: 2 failures + success + 2
	// failures never trips.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	if tripped := b.Failure(); tripped {
		t.Fatal("breaker tripped before the consecutive threshold")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after interrupted streak, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}

	// The trip-th consecutive failure opens it.
	if tripped := b.Failure(); !tripped {
		t.Fatal("breaker did not trip at the threshold")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after trip, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
}

// After the cooldown the breaker half-opens: exactly one probe is
// admitted; its success closes the breaker, its failure re-opens it
// for a fresh cooldown.
func TestBreakerHalfOpensAfterCooldown(t *testing.T) {
	const cd = 250 * time.Millisecond
	b, clk := newFakeBreaker(1, cd)

	b.Failure() // trip=1: open immediately
	if b.Allow() {
		t.Fatal("open breaker admitted traffic")
	}
	clk.advance(cd - time.Nanosecond)
	if b.Allow() {
		t.Fatal("breaker half-opened before the cooldown elapsed")
	}
	clk.advance(time.Nanosecond)
	if !b.Allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// Probe failure → open again, full cooldown restarts.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	clk.advance(cd / 2)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted traffic after half the cooldown")
	}
	clk.advance(cd)
	if !b.Allow() {
		t.Fatal("re-opened breaker did not half-open after a full cooldown")
	}

	// Probe success → closed, traffic flows.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", got)
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected traffic")
		}
	}
}
