package linalg

import (
	"errors"
	"math"
	"testing"
)

// randSPDTridiag builds a diagonally dominant (hence SPD) symmetric
// tridiagonal system.
func randSPDTridiag(r *RNG, n int) (diag, off []float64) {
	diag = make([]float64, n)
	off = make([]float64, n-1)
	for i := range off {
		off[i] = -r.Float64()
	}
	for i := range diag {
		diag[i] = 2.5 + r.Float64()
	}
	return diag, off
}

// tridiagDense expands a symmetric tridiagonal matrix to dense form.
func tridiagDense(diag, off []float64) *Dense {
	n := len(diag)
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, diag[i])
		if i+1 < n {
			a.Set(i, i+1, off[i])
			a.Set(i+1, i, off[i])
		}
	}
	return a
}

func TestTridiagSolveMatchesDense(t *testing.T) {
	r := NewRNG(41)
	for _, n := range []int{1, 2, 5, 33} {
		diag, off := randSPDTridiag(r, n)
		f, err := FactorTridiag(diag, off)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		want, err := SolveDense(tridiagDense(diag, off), b)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		f.SolveInto(got, b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		// In-place solve (x aliasing b) must give the same answer.
		f.SolveInto(b, b)
		for i := range b {
			if b[i] != got[i] {
				t.Fatalf("n=%d aliased solve differs at %d", n, i)
			}
		}
	}
}

func TestTridiagRejectsIndefinite(t *testing.T) {
	if _, err := FactorTridiag([]float64{1, -2}, []float64{0}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// randSPD builds a random SPD matrix A = MᵀM + n·I.
func randSPD(r *RNG, n int) *Dense {
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
	a := MatMul(m.T(), m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskySolveMatchesDense(t *testing.T) {
	r := NewRNG(42)
	for _, n := range []int{1, 3, 8, 20} {
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		want, err := SolveDense(a.Clone(), b)
		if err != nil {
			t.Fatal(err)
		}
		c, err := FactorCholesky(a.Clone())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := make([]float64, n)
		c.SolveInto(got, b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := FactorCholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// blockTridiagSystem builds a random SPD block tridiagonal system with
// dense diagonal blocks and diagonal off-blocks, returning both the
// block form and the assembled dense matrix.
func blockTridiagSystem(r *RNG, levels, bs int) (diag []*Dense, off [][]float64, a *Dense) {
	n := levels * bs
	a = NewDense(n, n)
	diag = make([]*Dense, levels)
	off = make([][]float64, levels-1)
	for i := 0; i < levels; i++ {
		diag[i] = randSPD(r, bs)
		// Strengthen the diagonal so the whole assembled matrix stays
		// SPD despite the off-blocks.
		for j := 0; j < bs; j++ {
			diag[i].Set(j, j, diag[i].At(j, j)+4)
		}
		for j := 0; j < bs; j++ {
			for k := 0; k < bs; k++ {
				a.Set(i*bs+j, i*bs+k, diag[i].At(j, k))
			}
		}
	}
	for i := 0; i < levels-1; i++ {
		off[i] = make([]float64, bs)
		for j := 0; j < bs; j++ {
			off[i][j] = 2*r.Float64() - 1
			a.Set(i*bs+j, (i+1)*bs+j, off[i][j])
			a.Set((i+1)*bs+j, i*bs+j, off[i][j])
		}
	}
	return diag, off, a
}

func TestBlockTridiagSolveMatchesDense(t *testing.T) {
	r := NewRNG(43)
	for _, dims := range [][2]int{{1, 4}, {3, 1}, {4, 5}, {6, 8}} {
		levels, bs := dims[0], dims[1]
		diag, off, a := blockTridiagSystem(r, levels, bs)
		n := levels * bs
		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		want, err := SolveDense(a, b)
		if err != nil {
			t.Fatal(err)
		}
		f, err := FactorBlockTridiag(diag, off)
		if err != nil {
			t.Fatalf("levels=%d bs=%d: %v", levels, bs, err)
		}
		if f.N() != n || f.BlockSize() != bs {
			t.Fatalf("dims: N=%d BlockSize=%d", f.N(), f.BlockSize())
		}
		got := make([]float64, n)
		tmp := make([]float64, bs)
		f.SolveInto(got, b, tmp)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("levels=%d bs=%d x[%d] = %v, want %v", levels, bs, i, got[i], want[i])
			}
		}
		// Aliased in-place solve.
		f.SolveInto(b, b, tmp)
		for i := range b {
			if b[i] != got[i] {
				t.Fatalf("levels=%d bs=%d aliased solve differs at %d", levels, bs, i)
			}
		}
	}
}

// cholPrecond adapts a Cholesky factor to the CG Preconditioner
// interface for the test below.
type cholPrecond struct{ c *Cholesky }

func (p cholPrecond) PrecondInto(z, r []float64) { p.c.SolveInto(z, r) }

// An exact factorization used as the CG preconditioner must converge
// in a couple of iterations and still satisfy the true-residual
// tolerance contract.
func TestSolveCGWithExactPreconditioner(t *testing.T) {
	r := NewRNG(44)
	const n = 24
	a := randSPD(r, n)
	var coords []Coord
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coords = append(coords, Coord{Row: i, Col: j, Val: a.At(i, j)})
		}
	}
	csr := NewCSR(n, coords)
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*r.Float64() - 1
	}
	c, err := FactorCholesky(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	stats, err := SolveCG(csr, b, x, nil, CGOptions{Tol: 1e-12, Precond: cholPrecond{c}})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.Iterations > 3 {
		t.Fatalf("preconditioned CG: %+v, want convergence in <= 3 iterations", stats)
	}
	// The solution must actually solve the system.
	res := make([]float64, n)
	csr.MulVec(x, res)
	for i := range res {
		res[i] -= b[i]
	}
	if rel := Norm2(res) / Norm2(b); rel > 1e-10 {
		t.Fatalf("relative residual %v after preconditioned CG", rel)
	}
}
