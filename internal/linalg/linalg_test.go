package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	y := Copy(b)
	Axpy(2, a, y)
	want := []float64{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestVectorOpsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestRMSE(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{2, 2, 2, 2}
	if got := RMSE(a, b); got != 2 {
		t.Errorf("RMSE = %v, want 2", got)
	}
	if got := RMSE(a, a); got != 0 {
		t.Errorf("RMSE self = %v, want 0", got)
	}
}

func TestDenseMatMulKnown(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data {
		if v != want[i] {
			t.Errorf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestDenseTranspose(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Property: MatMulATB(A, B) == MatMul(Aᵀ, B) and MatMulABT(A, B) ==
// MatMul(A, Bᵀ) on random matrices.
func TestMatMulVariantsAgree(t *testing.T) {
	r := NewRNG(17)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := NewDense(m, k)
		b := NewDense(m, n)
		c := NewDense(m, k)
		for i := range a.Data {
			a.Data[i] = r.Norm()
		}
		for i := range b.Data {
			b.Data[i] = r.Norm()
		}
		for i := range c.Data {
			c.Data[i] = r.Norm()
		}
		atb := MatMulATB(a, b)
		atbRef := MatMul(a.T(), b)
		for i := range atb.Data {
			if !almostEqual(atb.Data[i], atbRef.Data[i], 1e-12) {
				t.Fatalf("ATB mismatch at %d: %v vs %v", i, atb.Data[i], atbRef.Data[i])
			}
		}
		abt := MatMulABT(a, c)
		abtRef := MatMul(a, c.T())
		for i := range abt.Data {
			if !almostEqual(abt.Data[i], abtRef.Data[i], 1e-12) {
				t.Fatalf("ABT mismatch at %d: %v vs %v", i, abt.Data[i], abtRef.Data[i])
			}
		}
	}
}

// Property: MatMul distributes over the identity (A·I = A).
func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(15)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = r.Norm()
		}
		id := NewDense(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		c := MatMul(a, id)
		for i := range c.Data {
			if !almostEqual(c.Data[i], a.Data[i], 1e-14) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 1000} {
		hit := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestCSRAssembly(t *testing.T) {
	// 3x3 with a duplicate entry that must be summed.
	m := NewCSR(3, []Coord{
		{0, 0, 2}, {0, 1, -1}, {1, 0, -1}, {1, 1, 2}, {1, 2, -1},
		{2, 1, -1}, {2, 2, 2}, {0, 0, 1}, // duplicate (0,0) adds 1
	})
	d := m.Dense()
	want := [][]float64{{3, -1, 0}, {-1, 2, -1}, {0, -1, 2}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != want[i][j] {
				t.Errorf("CSR(%d,%d) = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
	if m.NNZ() != 7 {
		t.Errorf("NNZ = %d, want 7", m.NNZ())
	}
}

// Property: CSR MulVec agrees with dense MulVec for random sparse
// matrices.
func TestCSRMulVecMatchesDense(t *testing.T) {
	r := NewRNG(23)
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(30)
		var coords []Coord
		for k := 0; k < n*3; k++ {
			coords = append(coords, Coord{r.Intn(n), r.Intn(n), r.Norm()})
		}
		m := NewCSR(n, coords)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		y := make([]float64, n)
		m.MulVec(x, y)
		ref := m.Dense().MulVec(x)
		for i := range y {
			if !almostEqual(y[i], ref[i], 1e-12) {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, y[i], ref[i])
			}
		}
	}
}

func TestPatternUpdate(t *testing.T) {
	coords := []Coord{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {0, 0, 4}}
	p := NewPattern(2, coords)
	d := p.Matrix().Dense()
	if d.At(0, 0) != 5 || d.At(0, 1) != 2 || d.At(1, 1) != 3 {
		t.Fatalf("initial assembly wrong: %+v", d.Data)
	}
	coords2 := []Coord{{0, 0, 10}, {0, 1, 20}, {1, 1, 30}, {0, 0, 40}}
	p.Update(coords2)
	d = p.Matrix().Dense()
	if d.At(0, 0) != 50 || d.At(0, 1) != 20 || d.At(1, 1) != 30 {
		t.Fatalf("updated assembly wrong: %+v", d.Data)
	}
}

// buildSPD returns a random symmetric diagonally dominant (hence SPD)
// sparse matrix resembling a resistive network Laplacian.
func buildSPD(r *RNG, n int) *CSR {
	var coords []Coord
	diag := make([]float64, n)
	for i := 0; i < n-1; i++ {
		g := 0.1 + r.Float64()
		coords = append(coords, Coord{i, i + 1, -g}, Coord{i + 1, i, -g})
		diag[i] += g
		diag[i+1] += g
	}
	for i := 0; i < n; i++ {
		diag[i] += 0.05 + r.Float64() // ground leak makes it strictly PD
		coords = append(coords, Coord{i, i, diag[i]})
	}
	return NewCSR(n, coords)
}

// Property: the CG solution satisfies A·x = b to the requested
// tolerance.
func TestCGSolvesSPD(t *testing.T) {
	r := NewRNG(31)
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(100)
		a := buildSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Norm()
		}
		x := make([]float64, n)
		stats, err := SolveCG(a, b, x, nil, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.Converged || stats.RelResidual > 1e-12 {
			t.Errorf("trial %d: stats %+v, want converged under tolerance", trial, stats)
		}
		y := make([]float64, n)
		a.MulVec(x, y)
		if res := Norm2(Sub(b, y)) / Norm2(b); res > 1e-10 {
			t.Errorf("trial %d: residual %v", trial, res)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	r := NewRNG(37)
	a := buildSPD(r, 10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1 // nonzero initial guess must be reset
	}
	stats, err := SolveCG(a, make([]float64, 10), x, nil, CGOptions{})
	if err != nil || stats.Iterations != 0 || !stats.Converged {
		t.Fatalf("zero rhs: stats=%+v err=%v", stats, err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}

func TestCGWarmStart(t *testing.T) {
	r := NewRNG(41)
	a := buildSPD(r, 200)
	b := make([]float64, 200)
	for i := range b {
		b[i] = r.Norm()
	}
	cold := make([]float64, 200)
	coldStats, err := SolveCG(a, b, cold, nil, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: should converge immediately.
	warm := Copy(cold)
	warmStats, err := SolveCG(a, b, warm, nil, CGOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Iterations >= coldStats.Iterations {
		t.Errorf("warm start took %d iters, cold %d", warmStats.Iterations, coldStats.Iterations)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 3})
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: LU solve reproduces b for random well-conditioned systems.
func TestLURoundTrip(t *testing.T) {
	r := NewRNG(43)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(25)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = r.Norm()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Norm()
		}
		b := a.MulVec(xTrue)
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-9) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Min != 1 || s.Max != 4 || s.Median != 2.5 || s.Mean != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 5 {
		t.Error("quantile edge values wrong")
	}
	if Quantile(sorted, 0.5) != 3 {
		t.Errorf("median = %v", Quantile(sorted, 0.5))
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.5, 0.99, 1.0, -1}, 2, 0, 1)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("dims: %d edges, %d counts", len(edges), len(counts))
	}
	if counts[0] != 1 || counts[1] != 3 {
		t.Errorf("counts = %v, want [1 3]", counts)
	}
}

func TestCGBreaksDownOnIndefinite(t *testing.T) {
	// A matrix with a negative eigenvalue must trigger the SPD guard.
	m := NewCSR(2, []Coord{{0, 0, 1}, {1, 1, -1}})
	x := make([]float64, 2)
	stats, err := SolveCG(m, []float64{1, 1}, x, nil, CGOptions{MaxIter: 10})
	if err == nil {
		t.Fatal("expected breakdown error for indefinite matrix")
	}
	if !errors.Is(err, ErrBreakdown) {
		t.Errorf("err = %v, want ErrBreakdown identity", err)
	}
	var be *BreakdownError
	if !errors.As(err, &be) || be.PAP > 0 {
		t.Errorf("breakdown detail = %+v", be)
	}
	if stats.Breakdown == "" || stats.Converged {
		t.Errorf("stats = %+v, want breakdown reason recorded", stats)
	}
}

func TestPatternUpdateMismatchPanics(t *testing.T) {
	p := NewPattern(2, []Coord{{0, 0, 1}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong triplet count")
		}
	}()
	p.Update([]Coord{{0, 0, 1}, {1, 1, 1}})
}

func TestNormInf(t *testing.T) {
	if NormInf(nil) != 0 {
		t.Error("NormInf(nil) != 0")
	}
	if got := NormInf([]float64{-3, 2, 1}); got != 3 {
		t.Errorf("NormInf = %v, want 3", got)
	}
}

func TestDenseMulVecPanics(t *testing.T) {
	m := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dimension mismatch")
		}
	}()
	m.MulVec(make([]float64, 2))
}

func TestCSRFindMissingPanics(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 0, 1}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for absent entry")
		}
	}()
	m.find(0, 1)
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	r := NewRNG(51)
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = r.Norm()
	}
	s := Summarize(vals) // sorts internally; reuse for sanity
	if s.Q1 > s.Median || s.Median > s.Q3 {
		t.Errorf("quartiles out of order: %+v", s)
	}
}
