package linalg

import "fmt"

// MaxDirectN caps the dimension SolveDirect accepts. Densifying an
// n×n sparse system costs n² floats of memory and n³ flops to factor;
// beyond a few thousand nodes that stops being a sensible fallback
// (a 12k-node crossbar system would densify to over a gigabyte).
const MaxDirectN = 4096

// SolveDirect solves A·x = b by expanding the sparse matrix to dense
// form and running pivoted LU. It is the robust fallback for systems
// where CG breaks down: LU with partial pivoting does not require the
// matrix to be positive definite, only non-singular. The cost is
// O(n³), so it is reserved for recovery paths, never the hot loop;
// systems larger than MaxDirectN are refused rather than thrashing
// memory.
func SolveDirect(a *CSR, b []float64) ([]float64, error) {
	if a.N != len(b) {
		panic(fmt.Sprintf("linalg: SolveDirect dims n=%d len(b)=%d", a.N, len(b)))
	}
	if a.N > MaxDirectN {
		return nil, fmt.Errorf("linalg: SolveDirect refused for n=%d (> %d); system too large to densify", a.N, MaxDirectN)
	}
	return SolveDense(a.Dense(), b)
}
