package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by the dense LU factorization when a pivot
// underflows, meaning the matrix is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU is a dense LU factorization with partial pivoting, PA = LU.
// It is intended for the small dense systems that appear in tests and
// in the analytical crossbar model; the circuit solver itself uses
// sparse CG.
type LU struct {
	n    int
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the pivoted LU factorization of a square matrix.
// The input is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: FactorLU of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	f := &LU{n: n, lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	m := f.lu
	for k := 0; k < n; k++ {
		// Find pivot.
		p, best := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := m.Row(k), m.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := m.At(k, k)
		for i := k + 1; i < n; i++ {
			l := m.At(i, k) / pivot
			m.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := m.Row(i), m.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return f, nil
}

// Solve returns x such that A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("linalg: LU.Solve dim %d for n=%d", len(b), f.n))
	}
	x := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		row := f.lu.Row(i)
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveDense is a convenience wrapper: factorize a and solve for b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
