package linalg

import "fmt"

// Coord is a single (row, col, value) triplet used while assembling a
// sparse matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. Build one from triplets with
// NewCSR; duplicate triplets are summed, matching the usual finite
// element / nodal-analysis assembly convention.
type CSR struct {
	N       int // square dimension
	RowPtr  []int
	ColIdx  []int
	Val     []float64
	diagIdx []int // index into Val of the diagonal entry per row, -1 if absent
}

// NewCSR assembles an n×n sparse matrix from triplets, summing
// duplicates. It panics on out-of-range indices.
func NewCSR(n int, coords []Coord) *CSR {
	counts := make([]int, n+1)
	for _, c := range coords {
		if c.Row < 0 || c.Row >= n || c.Col < 0 || c.Col >= n {
			panic(fmt.Sprintf("linalg: CSR triplet (%d,%d) out of range for n=%d", c.Row, c.Col, n))
		}
		counts[c.Row+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	// Bucket triplets by row.
	colIdx := make([]int, len(coords))
	val := make([]float64, len(coords))
	next := make([]int, n)
	copy(next, counts[:n])
	for _, c := range coords {
		p := next[c.Row]
		colIdx[p] = c.Col
		val[p] = c.Val
		next[c.Row]++
	}
	// Sort within each row (insertion sort; rows are short) and merge
	// duplicates in place.
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	outCol := colIdx[:0]
	outVal := val[:0]
	written := 0
	for i := 0; i < n; i++ {
		lo, hi := counts[i], counts[i+1]
		seg := colIdx[lo:hi]
		sv := val[lo:hi]
		for a := 1; a < len(seg); a++ {
			c, v := seg[a], sv[a]
			b := a - 1
			for b >= 0 && seg[b] > c {
				seg[b+1], sv[b+1] = seg[b], sv[b]
				b--
			}
			seg[b+1], sv[b+1] = c, v
		}
		rowStart := written
		for a := 0; a < len(seg); a++ {
			if written > rowStart && outCol[written-1] == seg[a] {
				outVal[written-1] += sv[a]
				continue
			}
			outCol = append(outCol[:written], seg[a])
			outVal = append(outVal[:written], sv[a])
			written++
		}
		m.RowPtr[i+1] = written
	}
	m.ColIdx = outCol[:written]
	m.Val = outVal[:written]
	m.buildDiagIndex()
	return m
}

func (m *CSR) buildDiagIndex() {
	m.diagIdx = make([]int, m.N)
	for i := 0; i < m.N; i++ {
		m.diagIdx[i] = -1
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] == i {
				m.diagIdx[i] = p
				break
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = M·x into the provided y slice (overwritten). It
// panics on dimension mismatch.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("linalg: CSR MulVec dims n=%d len(x)=%d len(y)=%d", m.N, len(x), len(y)))
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
}

// Diag copies the diagonal of M into out (which must have length N).
// Missing diagonal entries are reported as 0.
func (m *CSR) Diag(out []float64) {
	if len(out) != m.N {
		panic("linalg: CSR Diag length mismatch")
	}
	for i := 0; i < m.N; i++ {
		if p := m.diagIdx[i]; p >= 0 {
			out[i] = m.Val[p]
		} else {
			out[i] = 0
		}
	}
}

// Dense expands M to a dense matrix, mainly for tests and debugging.
func (m *CSR) Dense() *Dense {
	out := NewDense(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Set(i, m.ColIdx[p], m.Val[p])
		}
	}
	return out
}

// Pattern captures the sparsity structure of a CSR matrix so matrices
// with identical structure can be re-assembled without re-sorting.
// Nodal analysis Jacobians have a fixed pattern across Newton
// iterations; reusing it removes assembly from the hot loop.
type Pattern struct {
	csr  *CSR  // matrix being updated in place
	slot []int // for each original triplet, index into csr.Val
}

// NewPattern assembles the matrix once from coords and remembers where
// each triplet landed. Update then refreshes values in place.
func NewPattern(n int, coords []Coord) *Pattern {
	// Assemble with unique slot tracking: tag each triplet with its
	// index via a parallel build.
	m := NewCSR(n, coords)
	p := &Pattern{csr: m, slot: make([]int, len(coords))}
	for k, c := range coords {
		p.slot[k] = m.find(c.Row, c.Col)
	}
	return p
}

// find returns the Val index of entry (i, j), or panics if absent
// (it cannot be absent for a triplet used during assembly).
func (m *CSR) find(i, j int) int {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.ColIdx[mid] < j:
			lo = mid + 1
		case m.ColIdx[mid] > j:
			hi = mid
		default:
			return mid
		}
	}
	panic(fmt.Sprintf("linalg: CSR entry (%d,%d) not found", i, j))
}

// Matrix returns the underlying CSR (shared, mutated by Update).
func (p *Pattern) Matrix() *CSR { return p.csr }

// Update overwrites the matrix values from a fresh triplet list that
// must have the same length and (row, col) structure as the one passed
// to NewPattern. Duplicates are summed as during assembly.
func (p *Pattern) Update(coords []Coord) {
	if len(coords) != len(p.slot) {
		panic("linalg: Pattern.Update triplet count mismatch")
	}
	for i := range p.csr.Val {
		p.csr.Val[i] = 0
	}
	for k, c := range coords {
		p.csr.Val[p.slot[k]] += c.Val
	}
}
