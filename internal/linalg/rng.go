// Package linalg provides the numerical substrate shared by the whole
// repository: dense and sparse matrices, iterative and direct linear
// solvers, descriptive statistics, and a deterministic random number
// generator.
//
// Everything in this package is deliberately dependency-free (standard
// library only) and deterministic: all randomness is derived from an
// explicit 64-bit seed, so every experiment in the repo is reproducible
// bit-for-bit.
package linalg

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64. It is small, fast, and has well-understood statistical
// quality, which is more than sufficient for dataset synthesis and
// weight initialization. It is not safe for concurrent use; derive
// per-goroutine generators with Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r.
// The derived stream is a function of r's current state, so the order
// of Split calls matters (and is deterministic).
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("linalg: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate using the Box-Muller
// transform.
func (r *RNG) Norm() float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormScaled(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n indices using the provided
// swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
