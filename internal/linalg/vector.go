package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths
// differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if the lengths
// differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute element of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sub returns a-b as a new slice. It panics if the lengths differ.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a new slice. It panics if the lengths differ.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// RMSE returns the root mean square error between a and b. It panics
// if the lengths differ or are zero.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: RMSE length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("linalg: RMSE of empty slices")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}
