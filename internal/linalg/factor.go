package linalg

import (
	"fmt"
	"math"
)

// This file provides the Factor-once / SolveInto-many direct solvers
// the crossbar's MNA structure calls for: a symmetric tridiagonal
// LDLᵀ (the word-line / bit-line wire chains), a dense Cholesky (the
// Schur-complement blocks those chains reduce to), and a symmetric
// block-tridiagonal solver composed of the two. All three separate
// factorization (done once per programmed operating point) from
// back-substitution (done once per right-hand side), and all their
// SolveInto methods are allocation-free and safe for concurrent use on
// a shared, already-factored receiver.

// Tridiag is the LDLᵀ factorization of a symmetric tridiagonal matrix.
// Factor once, then SolveInto for as many right-hand sides as needed.
type Tridiag struct {
	n int
	d []float64 // pivots of D
	l []float64 // subdiagonal multipliers of unit L, length n-1
}

// FactorTridiag factors the symmetric tridiagonal matrix with the
// given diagonal (length n) and symmetric off-diagonal (length n-1).
// The matrix must be positive definite; a non-positive (or NaN) pivot
// returns an error matching ErrSingular.
func FactorTridiag(diag, off []float64) (*Tridiag, error) {
	n := len(diag)
	if len(off) != n-1 && !(n == 0 && len(off) == 0) {
		panic(fmt.Sprintf("linalg: FactorTridiag n=%d len(off)=%d", n, len(off)))
	}
	t := &Tridiag{n: n, d: make([]float64, n), l: make([]float64, max(n-1, 0))}
	prev := 0.0
	for i := 0; i < n; i++ {
		piv := diag[i]
		if i > 0 {
			piv -= t.l[i-1] * prev
		}
		if !(piv > 0) {
			return nil, fmt.Errorf("linalg: tridiagonal pivot %g at row %d: %w", piv, i, ErrSingular)
		}
		t.d[i] = piv
		if i+1 < n {
			t.l[i] = off[i] / piv
			prev = off[i]
		}
	}
	return t, nil
}

// N returns the factored dimension.
func (t *Tridiag) N() int { return t.n }

// SolveInto solves the factored system into x (length n). x may alias
// b; the solve is in place and allocation-free.
func (t *Tridiag) SolveInto(x, b []float64) {
	if len(x) != t.n || len(b) != t.n {
		panic(fmt.Sprintf("linalg: Tridiag.SolveInto n=%d len(x)=%d len(b)=%d", t.n, len(x), len(b)))
	}
	// Forward: L y = b.
	if t.n > 0 {
		x[0] = b[0]
	}
	for i := 1; i < t.n; i++ {
		x[i] = b[i] - t.l[i-1]*x[i-1]
	}
	// Diagonal and backward: D z = y, Lᵀ x = z.
	for i := t.n - 1; i >= 0; i-- {
		x[i] /= t.d[i]
		if i+1 < t.n {
			x[i] -= t.l[i] * x[i+1]
		}
	}
}

// Cholesky is the lower-triangular factorization A = L·Lᵀ of a dense
// symmetric positive definite matrix.
type Cholesky struct {
	n int
	l *Dense // lower triangle, including the diagonal
}

// FactorCholesky factors the symmetric positive definite matrix a in
// place (a's storage becomes the factor; only its lower triangle is
// read) and returns the handle. A non-positive pivot returns an error
// matching ErrSingular.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: FactorCholesky on %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		rowJ := a.Row(j)
		s := rowJ[j]
		for k := 0; k < j; k++ {
			s -= rowJ[k] * rowJ[k]
		}
		if !(s > 0) {
			return nil, fmt.Errorf("linalg: Cholesky pivot %g at row %d: %w", s, j, ErrSingular)
		}
		piv := math.Sqrt(s)
		rowJ[j] = piv
		for i := j + 1; i < n; i++ {
			rowI := a.Row(i)
			s := rowI[j]
			for k := 0; k < j; k++ {
				s -= rowI[k] * rowJ[k]
			}
			rowI[j] = s / piv
		}
	}
	return &Cholesky{n: n, l: a}, nil
}

// N returns the factored dimension.
func (c *Cholesky) N() int { return c.n }

// SolveInto solves A·x = b using the factorization. x may alias b; the
// solve is in place and allocation-free.
func (c *Cholesky) SolveInto(x, b []float64) {
	if len(x) != c.n || len(b) != c.n {
		panic(fmt.Sprintf("linalg: Cholesky.SolveInto n=%d len(x)=%d len(b)=%d", c.n, len(x), len(b)))
	}
	// Forward: L y = b.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Backward: Lᵀ x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
}

// BlockTridiag is the block-LDLᵀ factorization of a symmetric block
// tridiagonal matrix whose off-diagonal blocks are diagonal — exactly
// the structure the crossbar's bit-line levels expose after the
// word-line chains are eliminated. Diagonal blocks are dense bs×bs;
// the block between levels i and i+1 is diag(off[i]).
type BlockTridiag struct {
	levels, bs int
	chol       []*Cholesky // factored Schur complements, one per level
	off        [][]float64 // diagonal off-blocks (copied), length levels-1
}

// FactorBlockTridiag factors the block tridiagonal matrix with the
// given dense diagonal blocks (each bs×bs) and diagonal off-blocks
// (each length bs, levels-1 of them). It takes ownership of the diag
// blocks — their storage is overwritten with factor data — and copies
// off. The matrix must be positive definite.
func FactorBlockTridiag(diag []*Dense, off [][]float64) (*BlockTridiag, error) {
	levels := len(diag)
	if levels == 0 {
		panic("linalg: FactorBlockTridiag with no blocks")
	}
	bs := diag[0].Rows
	if len(off) != levels-1 {
		panic(fmt.Sprintf("linalg: FactorBlockTridiag levels=%d len(off)=%d", levels, len(off)))
	}
	f := &BlockTridiag{
		levels: levels,
		bs:     bs,
		chol:   make([]*Cholesky, levels),
		off:    make([][]float64, levels-1),
	}
	col := make([]float64, bs) // one column of T_{i-1}⁻¹·diag(e)
	for i := 0; i < levels; i++ {
		t := diag[i]
		if t.Rows != bs || t.Cols != bs {
			panic(fmt.Sprintf("linalg: FactorBlockTridiag block %d is %dx%d, want %dx%d", i, t.Rows, t.Cols, bs, bs))
		}
		if i > 0 {
			// Schur update: T_i = D_i − E·T_{i-1}⁻¹·E with E = diag(e).
			e := off[i-1]
			if len(e) != bs {
				panic(fmt.Sprintf("linalg: FactorBlockTridiag off-block %d has length %d, want %d", i-1, len(e), bs))
			}
			f.off[i-1] = append([]float64(nil), e...)
			for k := 0; k < bs; k++ {
				Fill(col, 0)
				col[k] = e[k]
				f.chol[i-1].SolveInto(col, col)
				for j := 0; j < bs; j++ {
					t.Data[j*bs+k] -= e[j] * col[j]
				}
			}
		}
		c, err := FactorCholesky(t)
		if err != nil {
			return nil, fmt.Errorf("linalg: block tridiagonal level %d: %w", i, err)
		}
		f.chol[i] = c
	}
	return f, nil
}

// N returns the factored dimension levels·bs.
func (f *BlockTridiag) N() int { return f.levels * f.bs }

// BlockSize returns the per-level block dimension.
func (f *BlockTridiag) BlockSize() int { return f.bs }

// SolveInto solves the factored system into x (length levels·bs),
// using tmp (length ≥ bs) as scratch. x may alias b; the solve is in
// place and allocation-free, so a shared factor can serve concurrent
// callers that bring their own tmp.
func (f *BlockTridiag) SolveInto(x, b, tmp []float64) {
	n := f.N()
	if len(x) != n || len(b) != n {
		panic(fmt.Sprintf("linalg: BlockTridiag.SolveInto n=%d len(x)=%d len(b)=%d", n, len(x), len(b)))
	}
	if len(tmp) < f.bs {
		panic(fmt.Sprintf("linalg: BlockTridiag.SolveInto scratch %d < block size %d", len(tmp), f.bs))
	}
	tmp = tmp[:f.bs]
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward block elimination: u_i = b_i − E_{i-1}·T_{i-1}⁻¹·u_{i-1}.
	for i := 1; i < f.levels; i++ {
		prev := x[(i-1)*f.bs : i*f.bs]
		cur := x[i*f.bs : (i+1)*f.bs]
		f.chol[i-1].SolveInto(tmp, prev)
		e := f.off[i-1]
		for j := 0; j < f.bs; j++ {
			cur[j] -= e[j] * tmp[j]
		}
	}
	// Backward substitution: x_i = T_i⁻¹·(u_i − E_i·x_{i+1}).
	last := x[(f.levels-1)*f.bs:]
	f.chol[f.levels-1].SolveInto(last, last)
	for i := f.levels - 2; i >= 0; i-- {
		cur := x[i*f.bs : (i+1)*f.bs]
		next := x[(i+1)*f.bs : (i+2)*f.bs]
		e := f.off[i]
		for j := 0; j < f.bs; j++ {
			cur[j] -= e[j] * next[j]
		}
		f.chol[i].SolveInto(cur, cur)
	}
}
