package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Dense is a row-major dense matrix of float64. The zero value is an
// empty matrix; use NewDense to allocate.
type Dense struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols, row-major
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewDense with negative dims %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (without copying) as a rows×cols matrix. It
// panics if len(data) != rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: NewDenseFrom: %d elements for %dx%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// MulVec computes y = M·x. It panics on dimension mismatch.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec: %dx%d by vector of %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// matmulParallelThreshold is the flop count above which MatMul fans
// out across goroutines. Small products are cheaper single-threaded.
const matmulParallelThreshold = 1 << 16

// MatMul returns A·B. It panics on dimension mismatch. Large products
// are computed in parallel across row blocks.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = A·B into a preallocated matrix, avoiding
// an allocation on hot paths. out must be a.Rows×b.Cols and must not
// alias a or b.
func MatMulInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulInto %dx%d = %dx%d by %dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	flops := a.Rows * a.Cols * b.Cols
	if flops < matmulParallelThreshold {
		matMulRange(out, a, b, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, func(lo, hi int) { matMulRange(out, a, b, lo, hi) })
}

// MatMulSerialInto computes out = A·B into a preallocated matrix on
// the calling goroutine only — no fan-out regardless of size. Callers
// that are themselves worker tasks (the funcsim tile pipeline) use it
// to keep nested parallelism and per-call allocations at zero.
func MatMulSerialInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulSerialInto %dx%d = %dx%d by %dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	matMulRange(out, a, b, 0, a.Rows)
}

// matMulRange computes rows [lo,hi) of out = A·B using an ikj loop
// order, which streams through B rows and is cache-friendly without
// explicit blocking.
func matMulRange(out, a, b *Dense, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*n : (i+1)*n]
		for t := range orow {
			orow[t] = 0
		}
		arow := a.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns Aᵀ·B without materializing the transpose.
func MatMulATB(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulATB %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Cols, b.Cols)
	// out[k][j] = sum_i a[i][k] b[i][j]. Parallelize over k-ranges by
	// accumulating per-worker into disjoint output rows: iterate i
	// outer, k inner restricted to the worker's range.
	ParallelFor(a.Cols, func(lo, hi int) {
		n := b.Cols
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			brow := b.Data[i*n : (i+1)*n]
			for k := lo; k < hi; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				orow := out.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulABT returns A·Bᵀ without materializing the transpose.
func MatMulABT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulABT %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Rows)
	ParallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// ParallelFor splits [0, n) into contiguous chunks and runs body on
// each chunk from its own goroutine, returning when all complete. It
// uses at most GOMAXPROCS workers and degrades to a direct call for
// tiny n.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
