package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics used to render the paper's
// box plots (Figs. 2 and 3) in text form.
type Summary struct {
	N               int
	Mean, Std       float64
	Min, Q1, Median float64
	Q3, Max         float64
}

// Summarize computes descriptive statistics of x. It panics on an
// empty input.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		panic("linalg: Summarize of empty slice")
	}
	s := Summary{N: len(x)}
	sorted := Copy(x)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.Q3 = Quantile(sorted, 0.75)
	s.Mean = Sum(sorted) / float64(len(sorted))
	var v float64
	for _, e := range sorted {
		d := e - s.Mean
		v += d * d
	}
	s.Std = math.Sqrt(v / float64(len(sorted)))
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted
// slice using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("linalg: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary as a one-line box-plot description.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// Histogram bins x into nbins equal-width bins over [min, max] and
// returns the bin edges (nbins+1 values) and counts. Values exactly at
// max land in the last bin.
func Histogram(x []float64, nbins int, min, max float64) (edges []float64, counts []int) {
	if nbins <= 0 {
		panic("linalg: Histogram with nbins <= 0")
	}
	if max <= min {
		panic("linalg: Histogram with max <= min")
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = min + (max-min)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, v := range x {
		if v < min || v > max {
			continue
		}
		b := int((v - min) / w)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}
