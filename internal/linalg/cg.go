package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// ErrBreakdown is the sentinel matched by errors.Is when conjugate
// gradients hits a non-SPD direction (pᵀAp ≤ 0 or NaN) and cannot
// continue. The concrete error is a *BreakdownError carrying the
// offending iteration and curvature.
var ErrBreakdown = errors.New("linalg: CG breakdown")

// BreakdownError reports the exact point at which CG broke down.
type BreakdownError struct {
	// Iteration is the CG iteration (1-based) that failed.
	Iteration int
	// PAP is the offending curvature pᵀAp: non-positive or NaN means
	// the matrix is not symmetric positive definite (or has been
	// poisoned by NaN values).
	PAP float64
}

// Error implements error.
func (e *BreakdownError) Error() string {
	return fmt.Sprintf("linalg: CG breakdown at iteration %d (pᵀAp=%g); matrix not SPD?", e.Iteration, e.PAP)
}

// Is reports sentinel identity so errors.Is(err, ErrBreakdown) works.
func (e *BreakdownError) Is(target error) bool { return target == ErrBreakdown }

// Preconditioner applies an approximate inverse: PrecondInto computes
// z ≈ A⁻¹·r without modifying r. The operator must be symmetric
// positive definite for CG to remain valid. Implementations are
// typically Factor-once handles (Cholesky, BlockTridiag) wrapped with
// their own scratch space.
type Preconditioner interface {
	PrecondInto(z, r []float64)
}

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b−Ax‖/‖b‖. Defaults to
	// 1e-10 if zero.
	Tol float64
	// MaxIter caps the iteration count. Defaults to 4·n if zero.
	MaxIter int
	// Precond, when non-nil, replaces the built-in Jacobi (diagonal)
	// preconditioner. Convergence is still measured on the true
	// residual, so the tolerance contract is unchanged — a better
	// preconditioner only changes how fast it is met.
	Precond Preconditioner
}

// CGStats describes how a CG solve went, whether or not it succeeded.
// Callers building recovery ladders need more than a bare iteration
// count: the final residual tells them how far off a failed solve was,
// and Breakdown distinguishes "ran out of budget" from "cannot
// continue".
type CGStats struct {
	// Iterations is the number of CG iterations performed.
	Iterations int
	// RelResidual is the final relative residual ‖b−Ax‖/‖b‖ (0 when
	// b = 0).
	RelResidual float64
	// Converged reports whether the tolerance was met.
	Converged bool
	// Breakdown is a short reason string when the SPD guard tripped
	// ("" otherwise); the returned error carries the same information
	// as a *BreakdownError.
	Breakdown string
}

// CGWorkspace holds the scratch vectors for repeated CG solves of the
// same dimension, so the Newton loop allocates nothing per iteration.
type CGWorkspace struct {
	r, z, p, ap, diag []float64
}

// NewCGWorkspace allocates scratch space for n-dimensional solves.
func NewCGWorkspace(n int) *CGWorkspace {
	return &CGWorkspace{
		r:    make([]float64, n),
		z:    make([]float64, n),
		p:    make([]float64, n),
		ap:   make([]float64, n),
		diag: make([]float64, n),
	}
}

// SolveCG solves A·x = b for symmetric positive definite A using
// Jacobi-preconditioned conjugate gradients. x is used as the initial
// guess and overwritten with the solution. The returned CGStats is
// populated on every path, including failures; the error is
// ErrNoConvergence when the budget runs out and a *BreakdownError
// (matching ErrBreakdown) when a non-SPD direction is encountered.
func SolveCG(a *CSR, b, x []float64, ws *CGWorkspace, opt CGOptions) (CGStats, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveCG dims n=%d len(b)=%d len(x)=%d", n, len(b), len(x)))
	}
	if ws == nil {
		ws = NewCGWorkspace(n)
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 4 * n
	}

	// Preconditioner application: the caller-supplied operator when
	// set, Jacobi otherwise.
	var inv []float64
	if opt.Precond == nil {
		a.Diag(ws.diag)
		inv = ws.diag
		for i, d := range inv {
			if d == 0 {
				inv[i] = 1 // degenerate row: fall back to identity preconditioning
			} else {
				inv[i] = 1 / d
			}
		}
	}
	applyPrecond := func() {
		if opt.Precond != nil {
			opt.Precond.PrecondInto(ws.z, ws.r)
			return
		}
		for i := range ws.z {
			ws.z[i] = inv[i] * ws.r[i]
		}
	}

	// r = b − A·x
	a.MulVec(x, ws.r)
	for i := range ws.r {
		ws.r[i] = b[i] - ws.r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		// x = 0 is the exact solution.
		Fill(x, 0)
		return CGStats{Converged: true}, nil
	}
	rel := Norm2(ws.r) / bnorm
	if rel <= tol {
		return CGStats{RelResidual: rel, Converged: true}, nil
	}

	applyPrecond()
	copy(ws.p, ws.z)
	rz := Dot(ws.r, ws.z)

	for k := 1; k <= maxIter; k++ {
		a.MulVec(ws.p, ws.ap)
		pap := Dot(ws.p, ws.ap)
		if pap <= 0 || math.IsNaN(pap) {
			err := &BreakdownError{Iteration: k, PAP: pap}
			return CGStats{
				Iterations:  k,
				RelResidual: Norm2(ws.r) / bnorm,
				Breakdown:   fmt.Sprintf("pᵀAp=%g", pap),
			}, err
		}
		alpha := rz / pap
		Axpy(alpha, ws.p, x)
		Axpy(-alpha, ws.ap, ws.r)
		if rel = Norm2(ws.r) / bnorm; rel <= tol {
			return CGStats{Iterations: k, RelResidual: rel, Converged: true}, nil
		}
		applyPrecond()
		rzNew := Dot(ws.r, ws.z)
		beta := rzNew / rz
		rz = rzNew
		for i := range ws.p {
			ws.p[i] = ws.z[i] + beta*ws.p[i]
		}
	}
	return CGStats{Iterations: maxIter, RelResidual: rel}, ErrNoConvergence
}
