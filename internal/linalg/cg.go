package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖b−Ax‖/‖b‖. Defaults to
	// 1e-10 if zero.
	Tol float64
	// MaxIter caps the iteration count. Defaults to 4·n if zero.
	MaxIter int
}

// CGWorkspace holds the scratch vectors for repeated CG solves of the
// same dimension, so the Newton loop allocates nothing per iteration.
type CGWorkspace struct {
	r, z, p, ap, diag []float64
}

// NewCGWorkspace allocates scratch space for n-dimensional solves.
func NewCGWorkspace(n int) *CGWorkspace {
	return &CGWorkspace{
		r:    make([]float64, n),
		z:    make([]float64, n),
		p:    make([]float64, n),
		ap:   make([]float64, n),
		diag: make([]float64, n),
	}
}

// SolveCG solves A·x = b for symmetric positive definite A using
// Jacobi-preconditioned conjugate gradients. x is used as the initial
// guess and overwritten with the solution. Returns the iteration count
// used, and ErrNoConvergence if the budget is exhausted.
func SolveCG(a *CSR, b, x []float64, ws *CGWorkspace, opt CGOptions) (int, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveCG dims n=%d len(b)=%d len(x)=%d", n, len(b), len(x)))
	}
	if ws == nil {
		ws = NewCGWorkspace(n)
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 4 * n
	}

	a.Diag(ws.diag)
	inv := ws.diag
	for i, d := range inv {
		if d == 0 {
			inv[i] = 1 // degenerate row: fall back to identity preconditioning
		} else {
			inv[i] = 1 / d
		}
	}

	// r = b − A·x
	a.MulVec(x, ws.r)
	for i := range ws.r {
		ws.r[i] = b[i] - ws.r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		// x = 0 is the exact solution.
		Fill(x, 0)
		return 0, nil
	}
	if Norm2(ws.r)/bnorm <= tol {
		return 0, nil
	}

	for i := range ws.z {
		ws.z[i] = inv[i] * ws.r[i]
	}
	copy(ws.p, ws.z)
	rz := Dot(ws.r, ws.z)

	for k := 1; k <= maxIter; k++ {
		a.MulVec(ws.p, ws.ap)
		pap := Dot(ws.p, ws.ap)
		if pap <= 0 || math.IsNaN(pap) {
			return k, fmt.Errorf("linalg: CG breakdown (pᵀAp=%g); matrix not SPD?", pap)
		}
		alpha := rz / pap
		Axpy(alpha, ws.p, x)
		Axpy(-alpha, ws.ap, ws.r)
		if Norm2(ws.r)/bnorm <= tol {
			return k, nil
		}
		for i := range ws.z {
			ws.z[i] = inv[i] * ws.r[i]
		}
		rzNew := Dot(ws.r, ws.z)
		beta := rzNew / rz
		rz = rzNew
		for i := range ws.p {
			ws.p[i] = ws.z[i] + beta*ws.p[i]
		}
	}
	return maxIter, ErrNoConvergence
}
