package linalg

import (
	"math"
	"testing"
)

// SolveDirect must agree with CG on an SPD system and succeed on the
// indefinite systems that break CG — that is the whole point of the
// fallback.
func TestSolveDirectMatchesCG(t *testing.T) {
	r := NewRNG(61)
	a := buildSPD(r, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = r.Norm()
	}
	cg := make([]float64, 40)
	if _, err := SolveCG(a, b, cg, nil, CGOptions{Tol: 1e-13}); err != nil {
		t.Fatal(err)
	}
	direct, err := SolveDirect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if !almostEqual(direct[i], cg[i], 1e-8) {
			t.Fatalf("x[%d]: direct %v vs cg %v", i, direct[i], cg[i])
		}
	}
}

func TestSolveDirectHandlesIndefinite(t *testing.T) {
	// Indefinite but non-singular: CG breaks down, LU must not.
	m := NewCSR(2, []Coord{{0, 0, 1}, {1, 1, -1}})
	b := []float64{1, 1}
	if _, err := SolveCG(m, b, make([]float64, 2), nil, CGOptions{MaxIter: 10}); err == nil {
		t.Fatal("expected CG breakdown on indefinite system")
	}
	x, err := SolveDirect(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], -1, 1e-12) {
		t.Errorf("x = %v, want [1 -1]", x)
	}
}

func TestSolveDirectSingular(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 1, 4}})
	if _, err := SolveDirect(m, []float64{1, 1}); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestSolveDirectRefusesHugeSystems(t *testing.T) {
	n := MaxDirectN + 1
	coords := make([]Coord, n)
	for i := range coords {
		coords[i] = Coord{Row: i, Col: i, Val: 1}
	}
	m := NewCSR(n, coords)
	if _, err := SolveDirect(m, make([]float64, n)); err == nil {
		t.Error("expected size-cap refusal")
	}
}

func TestCGStatsResidualConsistent(t *testing.T) {
	r := NewRNG(67)
	a := buildSPD(r, 30)
	b := make([]float64, 30)
	for i := range b {
		b[i] = r.Norm()
	}
	x := make([]float64, 30)
	stats, err := SolveCG(a, b, x, nil, CGOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the residual independently; it must match the reported
	// value.
	y := make([]float64, 30)
	a.MulVec(x, y)
	got := Norm2(Sub(b, y)) / Norm2(b)
	if math.Abs(got-stats.RelResidual) > 1e-12 {
		t.Errorf("reported residual %v, recomputed %v", stats.RelResidual, got)
	}
}

// Exhausting the budget must report ErrNoConvergence with a meaningful
// residual in the stats rather than a breakdown.
func TestCGBudgetExhaustion(t *testing.T) {
	r := NewRNG(71)
	a := buildSPD(r, 200)
	b := make([]float64, 200)
	for i := range b {
		b[i] = r.Norm()
	}
	x := make([]float64, 200)
	stats, err := SolveCG(a, b, x, nil, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err != ErrNoConvergence {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if stats.Converged || stats.Breakdown != "" || stats.RelResidual <= 0 {
		t.Errorf("stats = %+v, want unconverged with positive residual", stats)
	}
}
