package arch

import (
	"strings"
	"testing"

	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/models"
	"geniex/internal/nn"
)

func testCfg(tile int) funcsim.Config {
	cfg := funcsim.DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = tile, tile
	return cfg
}

func TestTileArea(t *testing.T) {
	a := DefaultAreaModel()
	small := a.TileArea(testCfg(16))
	big := a.TileArea(testCfg(64))
	if small <= 0 || big <= small {
		t.Errorf("tile areas implausible: 16->%v 64->%v", small, big)
	}
}

func TestMapMatrixCounts(t *testing.T) {
	cfg := testCfg(16) // 16-bit weights, 4-bit slices → 4 slices per sign
	m := mapMatrix("m", 20, 10, 1, cfg)
	if m.TileRows != 2 || m.TileCols != 1 {
		t.Fatalf("tiles %dx%d, want 2x1", m.TileRows, m.TileCols)
	}
	if m.Slices != 4 {
		t.Fatalf("slices = %d, want 4", m.Slices)
	}
	if m.Crossbars != 2*1*4*2 {
		t.Fatalf("crossbars = %d, want 16", m.Crossbars)
	}
	wantUtil := float64(20*10) / float64(2*1*16*16)
	if m.Utilization != wantUtil {
		t.Fatalf("utilization = %v, want %v", m.Utilization, wantUtil)
	}
}

func TestMapNetwork(t *testing.T) {
	set := dataset.SynthCIFAR(4, 4, 1)
	net := models.MiniResNet(set, 8, 2)
	rep, err := MapNetwork(net, testCfg(16), DefaultAreaModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Layers) == 0 || rep.Crossbars == 0 || rep.Area <= 0 || rep.WeightBits <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	// The report must include the residual blocks' convolutions.
	convs := 0
	for _, l := range rep.Layers {
		if strings.HasPrefix(l.Name, "conv") {
			convs++
		}
	}
	if convs < 3 {
		t.Errorf("only %d convolutions mapped; residual bodies missed?", convs)
	}
	if s := rep.String(); !strings.Contains(s, "crossbars") {
		t.Error("report string malformed")
	}
}

// Mapping onto a larger tile must not increase the crossbar count.
func TestLargerTilesNeedFewerCrossbars(t *testing.T) {
	set := dataset.SynthCIFAR(4, 4, 1)
	net := models.MiniResNet(set, 8, 2)
	rep16, err := MapNetwork(net, testCfg(16), DefaultAreaModel())
	if err != nil {
		t.Fatal(err)
	}
	rep64, err := MapNetwork(net, testCfg(64), DefaultAreaModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep64.Crossbars >= rep16.Crossbars {
		t.Errorf("crossbars: 64-tile %d not below 16-tile %d", rep64.Crossbars, rep16.Crossbars)
	}
	// But utilization drops with big tiles on small layers.
	if rep64.Layers[0].Utilization >= rep16.Layers[0].Utilization {
		t.Errorf("utilization should drop with tile size: %v vs %v",
			rep64.Layers[0].Utilization, rep16.Layers[0].Utilization)
	}
}

// Mapping must agree with the lowering engine's physical crossbar
// count (mapping assumes both sign planes; lowering may drop an unused
// negative plane, so lowering's count is at most the mapped count).
func TestMappingConsistentWithLowering(t *testing.T) {
	r := linalg.NewRNG(3)
	net := nn.NewSequential(nn.NewLinear(20, 10, true, r))
	cfg := testCfg(16)
	rep, err := MapNetwork(net, cfg, DefaultAreaModel())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := funcsim.NewEngine(cfg, funcsim.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := eng.Lower(net.Layers[0].(*nn.Linear).Weight.W)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Crossbars() > rep.Crossbars {
		t.Errorf("lowered crossbars %d exceed mapped %d", lm.Crossbars(), rep.Crossbars)
	}
	if lm.Crossbars() != rep.Crossbars {
		// Random Kaiming weights always have both signs, so they
		// should actually be equal here.
		t.Errorf("lowered crossbars %d != mapped %d for mixed-sign weights", lm.Crossbars(), rep.Crossbars)
	}
}

func TestMapNetworkErrors(t *testing.T) {
	bad := testCfg(16)
	bad.ADCBits = 0
	set := dataset.SynthCIFAR(2, 2, 1)
	net := models.MiniConvNet(set, 4, 5)
	if _, err := MapNetwork(net, bad, DefaultAreaModel()); err == nil {
		t.Error("expected config error")
	}
}
