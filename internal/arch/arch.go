// Package arch models the accelerator architecture that hosts the
// crossbars: how a network's MVM workload maps onto physical tiles,
// and what the resulting chip costs in area and storage. Together with
// funcsim's event counters (energy, latency) this provides the
// "architecture model of MVM" axis the paper's Table 1 uses to
// position GENIEx against CxDNN, CrossSim and NeuroSim.
//
// The constants are representative of ISAAC/PUMA-class designs; the
// experiments consume ratios between configurations, which are robust
// to the absolute calibration.
package arch

import (
	"fmt"

	"geniex/internal/funcsim"
	"geniex/internal/nn"
	"geniex/internal/quant"
)

// AreaModel holds per-component silicon area constants (mm²).
type AreaModel struct {
	// CellArea is one crossbar cell including its access device (mm²).
	CellArea float64
	// DriverArea is one word-line driver / DAC (mm²).
	DriverArea float64
	// ADCArea is one converter (mm²); a converter is shared by
	// ADCShare columns through a mux.
	ADCArea  float64
	ADCShare int
	// ShiftAddArea and AccArea are the digital merge units per column
	// (mm²).
	ShiftAddArea, AccArea float64
}

// DefaultAreaModel returns representative 32nm-class constants.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		CellArea:     1e-7, // 0.1 µm²/cell (1T1R)
		DriverArea:   5e-6,
		ADCArea:      3e-4, // SAR ADC
		ADCShare:     8,
		ShiftAddArea: 6e-6,
		AccArea:      6e-6,
	}
}

// TileArea returns the area of one crossbar tile with its periphery
// for the given simulator configuration.
func (a AreaModel) TileArea(cfg funcsim.Config) float64 {
	rows, cols := cfg.Xbar.Rows, cfg.Xbar.Cols
	adcs := (cols + a.ADCShare - 1) / a.ADCShare
	return float64(rows*cols)*a.CellArea +
		float64(rows)*a.DriverArea +
		float64(adcs)*a.ADCArea +
		float64(cols)*(a.ShiftAddArea+a.AccArea)
}

// LayerMapping describes how one MVM layer occupies the chip.
type LayerMapping struct {
	Name string
	// In and Out are the logical matrix dimensions.
	In, Out int
	// TileRows and TileCols tile the matrix; Slices is per sign.
	TileRows, TileCols, Slices int
	// Crossbars is the physical crossbar count (positive + negative
	// magnitude planes, all slices).
	Crossbars int
	// Utilization is the fraction of programmed cells holding real
	// weights (vs padding).
	Utilization float64
	// MVMsPerInput is the number of logical MVM vectors one input
	// example generates (spatial positions for convolutions, 1 for
	// dense layers).
	MVMsPerInput int
}

// ChipReport aggregates a whole network's mapping.
type ChipReport struct {
	Layers []LayerMapping
	// Crossbars is the total physical crossbar count.
	Crossbars int
	// Area is the estimated silicon area (mm²) of all mapped tiles.
	Area float64
	// WeightBits is the total programmed weight storage (bits,
	// counting both magnitude planes).
	WeightBits int64
}

// MapNetwork computes the chip mapping of a trained network under a
// simulator configuration and area model. It mirrors funcsim.Lower's
// structural decisions (BatchNorm folding does not change shapes, so
// it is ignored here).
func MapNetwork(net *nn.Sequential, cfg funcsim.Config, area AreaModel) (*ChipReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rep := &ChipReport{}
	if err := mapInto(rep, net, cfg); err != nil {
		return nil, err
	}
	for _, l := range rep.Layers {
		rep.Crossbars += l.Crossbars
	}
	// Each crossbar stores SliceBits per cell.
	rep.WeightBits = int64(rep.Crossbars) * int64(cfg.Xbar.Rows*cfg.Xbar.Cols) * int64(cfg.SliceBits)
	rep.Area = float64(rep.Crossbars) * area.TileArea(cfg)
	return rep, nil
}

func mapInto(rep *ChipReport, net *nn.Sequential, cfg funcsim.Config) error {
	for _, layer := range net.Layers {
		switch l := layer.(type) {
		case *nn.Conv2D:
			rep.Layers = append(rep.Layers, mapMatrix(
				fmt.Sprintf("conv %dx%dx%d k%d", l.Geom.InC, l.Geom.InH, l.Geom.InW, l.Geom.Kernel),
				l.Geom.PatchSize(), l.Geom.OutC, l.Geom.OutH()*l.Geom.OutW(), cfg))
		case *nn.Linear:
			rep.Layers = append(rep.Layers, mapMatrix(
				fmt.Sprintf("linear %dx%d", l.In, l.Out), l.In, l.Out, 1, cfg))
		case *nn.Residual:
			if err := mapInto(rep, l.Body, cfg); err != nil {
				return err
			}
		case *nn.Sequential:
			if err := mapInto(rep, l, cfg); err != nil {
				return err
			}
		case *nn.ReLU, *nn.Flatten, *nn.MaxPool2D, *nn.GlobalAvgPool2D, *nn.BatchNorm:
			// Digital layers occupy no crossbars.
		default:
			return fmt.Errorf("arch: cannot map layer of type %T", l)
		}
	}
	return nil
}

// mapMatrix computes the mapping of one in×out matrix. The crossbar
// count conservatively assumes both magnitude planes are allocated
// (trained weights are almost never single-signed).
func mapMatrix(name string, in, out, mvms int, cfg funcsim.Config) LayerMapping {
	n, m := cfg.Xbar.Rows, cfg.Xbar.Cols
	tr := (in + n - 1) / n
	tc := (out + m - 1) / m
	slices := quant.NumDigits(cfg.Weight.Bits-1, cfg.SliceBits)
	return LayerMapping{
		Name: name, In: in, Out: out,
		TileRows: tr, TileCols: tc, Slices: slices,
		Crossbars:    tr * tc * slices * 2,
		Utilization:  float64(in*out) / float64(tr*tc*n*m),
		MVMsPerInput: mvms,
	}
}

// String renders the report.
func (r *ChipReport) String() string {
	s := fmt.Sprintf("chip: %d crossbars, %.3f mm², %.1f Mb weight storage\n",
		r.Crossbars, r.Area, float64(r.WeightBits)/1e6)
	for _, l := range r.Layers {
		s += fmt.Sprintf("  %-24s %4dx%-4d tiles %dx%d x%d slices x2 signs  util %.0f%%  %d MVM/input\n",
			l.Name, l.In, l.Out, l.TileRows, l.TileCols, l.Slices, 100*l.Utilization, l.MVMsPerInput)
	}
	return s
}
