// Package quant implements the digital arithmetic substrate of the
// functional simulator: signed fixed-point (FxP) quantization,
// offset-binary encoding, bit-slicing of operands into streams (input
// digits) and slices (weight digits), ADC quantization, and saturating
// accumulation.
//
// Signed semantics over unsigned crossbars. A crossbar computes only
// non-negative quantities (voltages × conductances), so signed FxP
// operands are mapped to offset binary: u = q + 2^(B−1). The signed
// dot product is recovered exactly from the unsigned one with digital
// correction terms:
//
//	Σ q_w·q_a = Σ u_w·u_a − c_a·Σ u_w − c_w·Σ u_a + n·c_w·c_a
//
// where c = 2^(B−1) for each operand. All three corrections are
// integers computable in the digital periphery, which is how real
// crossbar accelerators (ISAAC, PUMA) handle signed weights. With
// enough ADC bits the whole pipeline is bit-exact with the integer dot
// product — a property the package tests verify.
package quant

import (
	"fmt"
	"math"
)

// FxP describes a signed two's-complement fixed-point format with Bits
// total bits, of which Frac are fractional. The representable range is
// [−2^(Bits−1), 2^(Bits−1)−1] · 2^−Frac.
type FxP struct {
	Bits, Frac int
}

// Validate reports whether the format is usable.
func (f FxP) Validate() error {
	if f.Bits < 2 || f.Bits > 62 || f.Frac < 0 || f.Frac >= f.Bits {
		return fmt.Errorf("quant: invalid FxP format %d.%d", f.Bits, f.Frac)
	}
	return nil
}

// MaxInt returns the largest representable integer code.
func (f FxP) MaxInt() int64 { return (1 << (f.Bits - 1)) - 1 }

// MinInt returns the smallest representable integer code.
func (f FxP) MinInt() int64 { return -(1 << (f.Bits - 1)) }

// Offset returns the offset-binary bias 2^(Bits−1).
func (f FxP) Offset() int64 { return 1 << (f.Bits - 1) }

// Scale returns 2^Frac, the codes-per-unit scale factor.
func (f FxP) Scale() float64 { return float64(uint64(1) << f.Frac) }

// Quantize rounds x to the nearest representable code, saturating at
// the format limits.
func (f FxP) Quantize(x float64) int64 {
	q := math.Round(x * f.Scale())
	if q > float64(f.MaxInt()) {
		return f.MaxInt()
	}
	if q < float64(f.MinInt()) {
		return f.MinInt()
	}
	return int64(q)
}

// QuantizeSymmetric rounds x to the nearest code, saturating at
// ±MaxInt (the symmetric range). This is the quantizer the MVM engine
// uses: symmetric saturation keeps every magnitude within Bits−1 bits,
// so sign-magnitude digit slicing needs no extra digit for −2^(B−1).
func (f FxP) QuantizeSymmetric(x float64) int64 {
	q := f.Quantize(x)
	if q < -f.MaxInt() {
		return -f.MaxInt()
	}
	return q
}

// Dequantize converts a code back to a real value.
func (f FxP) Dequantize(q int64) float64 { return float64(q) / f.Scale() }

// QuantizeValue is the round trip Dequantize(Quantize(x)): the nearest
// representable real value.
func (f FxP) QuantizeValue(x float64) float64 { return f.Dequantize(f.Quantize(x)) }

// ToOffset converts a signed code to offset binary (always in
// [0, 2^Bits−1] for in-range codes).
func (f FxP) ToOffset(q int64) uint64 { return uint64(q + f.Offset()) }

// FromOffset converts an offset-binary value back to a signed code.
func (f FxP) FromOffset(u uint64) int64 { return int64(u) - f.Offset() }

// NumDigits returns how many width-bit digits cover bits bits
// (⌈bits/width⌉).
func NumDigits(bits, width int) int {
	if width <= 0 || bits <= 0 {
		panic(fmt.Sprintf("quant: NumDigits(%d, %d)", bits, width))
	}
	return (bits + width - 1) / width
}

// Digit returns the k-th width-bit digit of u, least significant
// first — the allocation-free form of Digits for hot loops that
// already know the digit count.
func Digit(u uint64, width, k int) uint64 {
	return (u >> (uint(k) * uint(width))) & ((uint64(1) << width) - 1)
}

// Digits decomposes u into count width-bit digits, least significant
// first. It panics if u does not fit in count digits.
func Digits(u uint64, width, count int) []uint64 {
	mask := (uint64(1) << width) - 1
	out := make([]uint64, count)
	for k := 0; k < count; k++ {
		out[k] = u & mask
		u >>= width
	}
	if u != 0 {
		panic(fmt.Sprintf("quant: value does not fit in %d digits of %d bits", count, width))
	}
	return out
}

// FromDigits recomposes a value from width-bit digits (LSB first).
func FromDigits(digits []uint64, width int) uint64 {
	var u uint64
	for k := len(digits) - 1; k >= 0; k-- {
		u = u<<width | digits[k]
	}
	return u
}

// ADC is a uniform analog-to-digital converter over [0, FullScale]
// with 2^Bits levels. Inputs outside the range saturate, which is how
// a real converter clips.
type ADC struct {
	Bits      int
	FullScale float64
}

// Levels returns the number of quantization levels minus one (the
// maximum code).
func (a ADC) Levels() int64 { return (1 << a.Bits) - 1 }

// Code converts an analog value to its digital code.
func (a ADC) Code(x float64) int64 {
	if a.FullScale <= 0 {
		panic("quant: ADC with non-positive full scale")
	}
	c := math.Round(x / a.FullScale * float64(a.Levels()))
	if c < 0 {
		return 0
	}
	if c > float64(a.Levels()) {
		return a.Levels()
	}
	return int64(c)
}

// Convert quantizes an analog value: the value the digital side
// believes it saw.
func (a ADC) Convert(x float64) float64 {
	return float64(a.Code(x)) / float64(a.Levels()) * a.FullScale
}

// Acc is a signed saturating accumulator with Bits total width (Frac
// of them fractional, matching the paper's "32-bit accumulator,
// 24 fractional"). Values are integer codes at 2^−Frac resolution.
type Acc struct {
	Bits, Frac int
}

// Max returns the accumulator's largest code.
func (a Acc) Max() int64 { return (1 << (a.Bits - 1)) - 1 }

// Min returns the accumulator's smallest code.
func (a Acc) Min() int64 { return -(1 << (a.Bits - 1)) }

// Saturate clamps a code into the accumulator range.
func (a Acc) Saturate(v int64) int64 {
	if v > a.Max() {
		return a.Max()
	}
	if v < a.Min() {
		return a.Min()
	}
	return v
}

// Add returns the saturating sum of two accumulator codes.
func (a Acc) Add(x, y int64) int64 { return a.Saturate(x + y) }

// Rescale converts a code with fromFrac fractional bits into the
// accumulator's Frac resolution (arithmetic shift with rounding toward
// nearest), then saturates.
func (a Acc) Rescale(v int64, fromFrac int) int64 {
	switch {
	case fromFrac == a.Frac:
	case fromFrac > a.Frac:
		shift := uint(fromFrac - a.Frac)
		half := int64(1) << (shift - 1)
		if v >= 0 {
			v = (v + half) >> shift
		} else {
			v = -((-v + half) >> shift)
		}
	default:
		v <<= uint(a.Frac - fromFrac)
	}
	return a.Saturate(v)
}

// Dequantize converts an accumulator code to a real value.
func (a Acc) Dequantize(v int64) float64 { return float64(v) / float64(uint64(1)<<a.Frac) }
