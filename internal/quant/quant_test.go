package quant

import (
	"math"
	"testing"
	"testing/quick"

	"geniex/internal/linalg"
)

func TestFxPValidate(t *testing.T) {
	good := []FxP{{16, 13}, {8, 5}, {4, 2}, {2, 0}}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("%v invalid: %v", f, err)
		}
	}
	bad := []FxP{{1, 0}, {63, 10}, {8, 8}, {8, -1}}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("%v should be invalid", f)
		}
	}
}

func TestFxPQuantizeKnown(t *testing.T) {
	f := FxP{Bits: 8, Frac: 4} // range [−8, 7.9375], lsb 1/16
	cases := []struct {
		in   float64
		code int64
	}{
		{0, 0},
		{1, 16},
		{-1, -16},
		{0.03125, 1}, // rounds 0.5 lsb up
		{100, 127},   // saturates high
		{-100, -128}, // saturates low
	}
	for _, c := range cases {
		if got := f.Quantize(c.in); got != c.code {
			t.Errorf("Quantize(%v) = %d, want %d", c.in, got, c.code)
		}
	}
}

// Property: quantization error is at most half an LSB for in-range
// values.
func TestFxPQuantizeError(t *testing.T) {
	f := FxP{Bits: 16, Frac: 13}
	check := func(x float64) bool {
		if math.Abs(x) > 3.9 { // stay inside the representable range
			return true
		}
		err := math.Abs(f.QuantizeValue(x) - x)
		return err <= 0.5/f.Scale()+1e-15
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: offset-binary round trip is the identity on the code
// range.
func TestOffsetRoundTrip(t *testing.T) {
	f := FxP{Bits: 8, Frac: 4}
	for q := f.MinInt(); q <= f.MaxInt(); q++ {
		u := f.ToOffset(q)
		if u > 255 {
			t.Fatalf("offset code %d out of 8-bit range", u)
		}
		if back := f.FromOffset(u); back != q {
			t.Fatalf("round trip %d -> %d -> %d", q, u, back)
		}
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	r := linalg.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		bits := 2 + r.Intn(14)
		width := 1 + r.Intn(4)
		count := NumDigits(bits, width)
		u := r.Uint64() & ((1 << bits) - 1)
		ds := Digits(u, width, count)
		for _, d := range ds {
			if d >= 1<<width {
				t.Fatalf("digit %d exceeds width %d", d, width)
			}
		}
		if back := FromDigits(ds, width); back != u {
			t.Fatalf("digits round trip %d -> %v -> %d (width %d)", u, ds, back, width)
		}
	}
}

func TestDigitsOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for value too large")
		}
	}()
	Digits(16, 2, 2) // 16 needs 3 two-bit digits
}

func TestNumDigits(t *testing.T) {
	cases := []struct{ bits, width, want int }{
		{16, 4, 4}, {16, 2, 8}, {16, 1, 16}, {15, 4, 4}, {8, 3, 3},
	}
	for _, c := range cases {
		if got := NumDigits(c.bits, c.width); got != c.want {
			t.Errorf("NumDigits(%d,%d) = %d, want %d", c.bits, c.width, got, c.want)
		}
	}
}

// Property: the signed dot product equals the unsigned offset-binary
// dot product plus digital corrections — the identity the whole MVM
// pipeline rests on.
func TestSignedDotCorrectionIdentity(t *testing.T) {
	r := linalg.NewRNG(2)
	fa := FxP{Bits: 6, Frac: 3}
	fw := FxP{Bits: 5, Frac: 2}
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(20)
		qa := make([]int64, n)
		qw := make([]int64, n)
		for i := 0; i < n; i++ {
			qa[i] = fa.MinInt() + int64(r.Intn(int(fa.MaxInt()-fa.MinInt()+1)))
			qw[i] = fw.MinInt() + int64(r.Intn(int(fw.MaxInt()-fw.MinInt()+1)))
		}
		var signed, unsigned, sumUa, sumUw int64
		for i := 0; i < n; i++ {
			signed += qa[i] * qw[i]
			ua := int64(fa.ToOffset(qa[i]))
			uw := int64(fw.ToOffset(qw[i]))
			unsigned += ua * uw
			sumUa += ua
			sumUw += uw
		}
		recovered := unsigned - fa.Offset()*sumUw - fw.Offset()*sumUa + int64(n)*fa.Offset()*fw.Offset()
		if recovered != signed {
			t.Fatalf("trial %d: corrected %d, want %d", trial, recovered, signed)
		}
	}
}

// The same identity must hold when the unsigned dot is reassembled
// from stream/slice digit partial products — the full bit-serial path.
func TestBitSerialDotExact(t *testing.T) {
	r := linalg.NewRNG(3)
	fa := FxP{Bits: 8, Frac: 4}
	fw := FxP{Bits: 8, Frac: 4}
	for _, widths := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {2, 4}, {3, 2}} {
		sa, sw := widths[0], widths[1]
		ka := NumDigits(fa.Bits, sa)
		kw := NumDigits(fw.Bits, sw)
		n := 16
		qa := make([]int64, n)
		qw := make([]int64, n)
		for i := range qa {
			qa[i] = fa.MinInt() + int64(r.Intn(int(fa.MaxInt()-fa.MinInt()+1)))
			qw[i] = fw.MinInt() + int64(r.Intn(int(fw.MaxInt()-fw.MinInt()+1)))
		}
		var want int64
		for i := range qa {
			want += qa[i] * qw[i]
		}
		// Bit-serial unsigned dot.
		streams := make([][]uint64, ka) // streams[k][i]
		for k := range streams {
			streams[k] = make([]uint64, n)
		}
		slices := make([][]uint64, kw)
		for l := range slices {
			slices[l] = make([]uint64, n)
		}
		var sumUa, sumUw int64
		for i := range qa {
			da := Digits(fa.ToOffset(qa[i]), sa, ka)
			dw := Digits(fw.ToOffset(qw[i]), sw, kw)
			for k, d := range da {
				streams[k][i] = d
			}
			for l, d := range dw {
				slices[l][i] = d
			}
			sumUa += int64(fa.ToOffset(qa[i]))
			sumUw += int64(fw.ToOffset(qw[i]))
		}
		var unsigned int64
		for k := 0; k < ka; k++ {
			for l := 0; l < kw; l++ {
				var p int64
				for i := 0; i < n; i++ {
					p += int64(streams[k][i] * slices[l][i])
				}
				unsigned += p << uint(k*sa+l*sw)
			}
		}
		got := unsigned - fa.Offset()*sumUw - fw.Offset()*sumUa + int64(n)*fa.Offset()*fw.Offset()
		if got != want {
			t.Fatalf("widths %v: bit-serial dot %d, want %d", widths, got, want)
		}
	}
}

func TestADC(t *testing.T) {
	a := ADC{Bits: 3, FullScale: 7} // codes 0..7, lsb 1
	if a.Levels() != 7 {
		t.Fatalf("levels = %d", a.Levels())
	}
	cases := []struct {
		in   float64
		code int64
	}{
		{0, 0}, {1, 1}, {3.4, 3}, {3.6, 4}, {7, 7}, {9, 7}, {-1, 0},
	}
	for _, c := range cases {
		if got := a.Code(c.in); got != c.code {
			t.Errorf("Code(%v) = %d, want %d", c.in, got, c.code)
		}
	}
	if got := a.Convert(3.6); got != 4 {
		t.Errorf("Convert(3.6) = %v", got)
	}
}

// Property: ADC error is at most half an LSB inside the full scale.
func TestADCErrorBound(t *testing.T) {
	a := ADC{Bits: 10, FullScale: 1.5}
	lsb := a.FullScale / float64(a.Levels())
	r := linalg.NewRNG(4)
	for i := 0; i < 1000; i++ {
		x := r.Float64() * a.FullScale
		if err := math.Abs(a.Convert(x) - x); err > lsb/2+1e-15 {
			t.Fatalf("ADC error %v exceeds half lsb %v at %v", err, lsb/2, x)
		}
	}
}

func TestAccSaturate(t *testing.T) {
	a := Acc{Bits: 8, Frac: 4} // range [−128, 127]
	if a.Saturate(200) != 127 || a.Saturate(-200) != -128 || a.Saturate(5) != 5 {
		t.Error("saturation wrong")
	}
	if a.Add(100, 100) != 127 {
		t.Error("saturating add wrong")
	}
	if a.Add(-100, -100) != -128 {
		t.Error("saturating add (negative) wrong")
	}
}

func TestAccRescale(t *testing.T) {
	a := Acc{Bits: 16, Frac: 4}
	// From 8 fractional bits down to 4: shift right 4 with rounding.
	if got := a.Rescale(0x10, 8); got != 1 {
		t.Errorf("Rescale(16, 8) = %d, want 1", got)
	}
	if got := a.Rescale(0x18, 8); got != 2 { // 1.5 rounds away from zero
		t.Errorf("Rescale(24, 8) = %d, want 2", got)
	}
	if got := a.Rescale(-0x18, 8); got != -2 {
		t.Errorf("Rescale(-24, 8) = %d, want -2", got)
	}
	// Up-shifting.
	if got := a.Rescale(3, 2); got != 12 {
		t.Errorf("Rescale(3, 2) = %d, want 12", got)
	}
	// Saturation after rescale.
	if got := a.Rescale(1<<40, 20); got != a.Max() {
		t.Errorf("Rescale overflow = %d, want %d", got, a.Max())
	}
}

func TestAccDequantize(t *testing.T) {
	a := Acc{Bits: 32, Frac: 24}
	if got := a.Dequantize(1 << 24); got != 1 {
		t.Errorf("Dequantize(2^24) = %v", got)
	}
}

// Property: QuantizeSymmetric never returns MinInt, so the magnitude
// always fits in Bits−1 bits (the invariant sign-magnitude slicing
// relies on).
func TestQuantizeSymmetricRange(t *testing.T) {
	f := FxP{Bits: 6, Frac: 2}
	check := func(x float64) bool {
		q := f.QuantizeSymmetric(x)
		return q >= -f.MaxInt() && q <= f.MaxInt()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if f.QuantizeSymmetric(-1e12) != -f.MaxInt() {
		t.Error("deep negative did not clamp to -MaxInt")
	}
}
