// Package device implements the non-linear element models that populate
// the crossbar netlist: the filamentary RRAM compact model from the
// paper (I(d,V) = I0·exp(−d/d0)·sinh(V/V0), Guan et al. [21]) and a
// two-terminal access-device (selector) model standing in for the TSMC
// 65nm access transistor used in the paper's HSPICE decks.
//
// Both models expose current and small-signal conductance as functions
// of the branch voltage, which is all the modified-nodal-analysis
// Newton solver in package xbar needs. Keeping every element
// two-terminal keeps the Jacobian symmetric positive definite, so the
// solver can use conjugate gradients.
package device

import (
	"fmt"
	"math"
)

// Element is a two-terminal non-linear circuit element characterised
// by its branch current I(V) and differential conductance dI/dV.
// Implementations must be odd symmetric (I(-V) = -I(V)) and strictly
// monotonic so the assembled network has a unique solution.
type Element interface {
	// Current returns the branch current at branch voltage v.
	Current(v float64) float64
	// Conductance returns dI/dV at branch voltage v. It must be
	// strictly positive for all finite v.
	Conductance(v float64) float64
}

// RRAMParams are the fitting parameters of the filamentary RRAM
// compact model. The paper's experimental methodology (Section 6)
// lists d0 = 0.25nm, V0 = 0.25V, I0 = 0.1mA.
type RRAMParams struct {
	I0 float64 // current prefactor, amperes
	D0 float64 // gap decay length, metres
	V0 float64 // voltage scale of the sinh non-linearity, volts
}

// DefaultRRAMParams returns the repository's calibrated device
// parameters. I0 and d0 follow the paper; V0 is calibrated to 0.4V
// instead of the paper's 0.25V: with this repository's two-terminal
// selector substitution (which drops far less voltage than the
// paper's 65nm access transistor), V0 = 0.25V makes the sinh boost
// dominate IR drop at the nominal 0.25V supply for arrays up to
// 32×32, flipping the sign of the NF distributions — whereas the
// paper's Fig. 2 shows positive-NF dominance at the nominal design
// point, with NF < 0 only in its very sparse Fig. 9 corner. V0 = 0.4V
// restores the paper's boost/IR-drop balance while keeping the strong
// data-dependent non-linearity at 0.5V that motivates GENIEx. See
// DESIGN.md for the full substitution note.
func DefaultRRAMParams() RRAMParams {
	return RRAMParams{I0: 1e-4, D0: 0.25e-9, V0: 0.4}
}

// GapForConductance inverts the low-bias conductance relation of the
// compact model: given g = I0·exp(−d/d0)/V0, it returns the filament
// gap d in metres. It is the bridge the non-ideality library uses to
// express conductance aging as physical gap growth. g must be
// strictly positive.
func (p RRAMParams) GapForConductance(g float64) float64 {
	return -p.D0 * math.Log(g*p.V0/p.I0)
}

// ConductanceForGap is the forward relation: the low-bias conductance
// of a cell with filament gap d (metres).
func (p RRAMParams) ConductanceForGap(d float64) float64 {
	return p.I0 * math.Exp(-d/p.D0) / p.V0
}

// RRAM is a filamentary RRAM cell in a fixed resistance state. The
// state is captured by the filament gap d; the constructor maps a
// target low-bias conductance to the equivalent gap, so callers think
// in terms of conductance while the I-V retains the sinh shape.
//
//	I(V)     = I0 · exp(−d/d0) · sinh(V/V0)
//	G(V→0)   = I0 · exp(−d/d0) / V0
type RRAM struct {
	params RRAMParams
	gap    float64 // filament gap, metres
	scale  float64 // I0·exp(−d/d0), precomputed
}

// NewRRAM creates an RRAM device whose low-bias conductance equals g
// (siemens). It panics if g is not strictly positive: a programmed
// cell always conducts at least Goff.
func NewRRAM(g float64, p RRAMParams) *RRAM {
	if g <= 0 {
		panic(fmt.Sprintf("device: RRAM conductance must be positive, got %g", g))
	}
	// g = I0·exp(−d/d0)/V0  ⇒  d = −d0·ln(g·V0/I0).
	gap := p.GapForConductance(g)
	return &RRAM{params: p, gap: gap, scale: g * p.V0}
}

// Gap returns the filament gap in metres implied by the programmed
// conductance. Larger gaps mean lower conductance.
func (d *RRAM) Gap() float64 { return d.gap }

// LowBiasConductance returns the conductance at V → 0.
func (d *RRAM) LowBiasConductance() float64 { return d.scale / d.params.V0 }

// Current implements Element.
func (d *RRAM) Current(v float64) float64 {
	return d.scale * math.Sinh(v/d.params.V0)
}

// Conductance implements Element.
func (d *RRAM) Conductance(v float64) float64 {
	return d.scale / d.params.V0 * math.Cosh(v/d.params.V0)
}

// Selector is the two-terminal access-device model: a saturating
// resistor I(V) = Gon·Vsat·tanh(V/Vsat). At low bias it behaves as the
// on-resistance of the fully driven access transistor; at higher bias
// the current compresses, reproducing the triode→saturation transition
// that makes the crossbar transfer characteristic data dependent.
type Selector struct {
	gon  float64 // low-bias conductance, siemens
	vsat float64 // saturation voltage scale, volts
}

// NewSelector creates a selector with low-bias conductance gon and
// saturation scale vsat. It panics on non-positive parameters.
func NewSelector(gon, vsat float64) *Selector {
	if gon <= 0 || vsat <= 0 {
		panic(fmt.Sprintf("device: selector parameters must be positive, got gon=%g vsat=%g", gon, vsat))
	}
	return &Selector{gon: gon, vsat: vsat}
}

// Current implements Element.
func (s *Selector) Current(v float64) float64 {
	return s.gon * s.vsat * math.Tanh(v/s.vsat)
}

// Conductance implements Element.
func (s *Selector) Conductance(v float64) float64 {
	c := math.Cosh(v / s.vsat)
	return s.gon / (c * c)
}

// Linear is an ideal resistor with fixed conductance. It is the device
// law used by the paper's baseline "analytical" model, which captures
// only the linear (parasitic resistance) non-idealities.
type Linear struct {
	G float64 // conductance, siemens
}

// NewLinear creates a linear resistor with conductance g. It panics if
// g is not strictly positive.
func NewLinear(g float64) Linear {
	if g <= 0 {
		panic(fmt.Sprintf("device: linear conductance must be positive, got %g", g))
	}
	return Linear{G: g}
}

// Current implements Element.
func (l Linear) Current(v float64) float64 { return l.G * v }

// Conductance implements Element.
func (l Linear) Conductance(v float64) float64 { return l.G }
