package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRRAMLowBiasConductance(t *testing.T) {
	p := DefaultRRAMParams()
	for _, g := range []float64{1e-6, 1e-5, 2e-5, 1e-4} {
		d := NewRRAM(g, p)
		if got := d.LowBiasConductance(); math.Abs(got-g)/g > 1e-12 {
			t.Errorf("low-bias conductance = %v, want %v", got, g)
		}
		// Numerical small-signal conductance must match too.
		const h = 1e-7
		num := (d.Current(h) - d.Current(-h)) / (2 * h)
		if math.Abs(num-g)/g > 1e-6 {
			t.Errorf("numerical G(0) = %v, want %v", num, g)
		}
	}
}

func TestRRAMGapMonotone(t *testing.T) {
	p := DefaultRRAMParams()
	lo := NewRRAM(1e-6, p)
	hi := NewRRAM(1e-4, p)
	if lo.Gap() <= hi.Gap() {
		t.Errorf("lower conductance should mean larger gap: %v vs %v", lo.Gap(), hi.Gap())
	}
}

func TestRRAMSuperLinear(t *testing.T) {
	d := NewRRAM(1e-5, DefaultRRAMParams())
	// sinh non-linearity: current at 2V' must exceed twice the current
	// at V' for V' comparable to V0.
	v := 0.25
	if d.Current(2*v) <= 2*d.Current(v) {
		t.Errorf("RRAM should be super-linear: I(2v)=%v vs 2I(v)=%v", d.Current(2*v), 2*d.Current(v))
	}
}

func TestSelectorSubLinear(t *testing.T) {
	s := NewSelector(1e-4, 0.3)
	v := 0.3
	if s.Current(2*v) >= 2*s.Current(v) {
		t.Errorf("selector should be sub-linear: I(2v)=%v vs 2I(v)=%v", s.Current(2*v), 2*s.Current(v))
	}
}

// Property: all element models are odd symmetric and their analytic
// conductance matches a centered difference of the current.
func TestElementConsistency(t *testing.T) {
	elems := []Element{
		NewRRAM(1e-5, DefaultRRAMParams()),
		NewSelector(2e-5, 0.3),
		NewLinear(1e-5),
	}
	f := func(raw float64) bool {
		v := math.Mod(raw, 0.6) // keep within a realistic operating range
		if math.IsNaN(v) {
			return true
		}
		for _, e := range elems {
			if math.Abs(e.Current(v)+e.Current(-v)) > 1e-18 {
				return false
			}
			const h = 1e-6
			num := (e.Current(v+h) - e.Current(v-h)) / (2 * h)
			ana := e.Conductance(v)
			if math.Abs(num-ana) > 1e-6*(1+math.Abs(ana)) {
				return false
			}
			if ana <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElementMonotonic(t *testing.T) {
	elems := []Element{
		NewRRAM(1e-5, DefaultRRAMParams()),
		NewSelector(2e-5, 0.3),
		NewLinear(1e-5),
	}
	for _, e := range elems {
		prev := e.Current(-0.5)
		for v := -0.49; v <= 0.5; v += 0.01 {
			cur := e.Current(v)
			if cur <= prev {
				t.Fatalf("%T not strictly increasing at v=%v", e, v)
			}
			prev = cur
		}
	}
}

func TestConstructorsPanicOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewRRAM(0, DefaultRRAMParams()) },
		func() { NewRRAM(-1, DefaultRRAMParams()) },
		func() { NewSelector(0, 1) },
		func() { NewSelector(1, 0) },
		func() { NewLinear(0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}

func TestLinearIsExactlyLinear(t *testing.T) {
	l := NewLinear(3e-5)
	for _, v := range []float64{-0.5, -0.1, 0, 0.2, 0.5} {
		if got := l.Current(v); got != 3e-5*v {
			t.Errorf("Current(%v) = %v", v, got)
		}
		if got := l.Conductance(v); got != 3e-5 {
			t.Errorf("Conductance(%v) = %v", v, got)
		}
	}
}
