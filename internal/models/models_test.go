package models

import (
	"testing"

	"geniex/internal/dataset"
	"geniex/internal/linalg"
	"geniex/internal/nn"
)

func TestMiniResNetShapes(t *testing.T) {
	set := dataset.SynthCIFAR(10, 10, 1)
	net := MiniResNet(set, 8, 2)
	out := net.Forward(set.TestX, false)
	if out.Rows != 10 || out.Cols != set.Classes {
		t.Fatalf("output %dx%d, want 10x%d", out.Rows, out.Cols, set.Classes)
	}
}

func TestMiniResNetDeeperFor32(t *testing.T) {
	set16 := dataset.SynthCIFAR(4, 4, 1)
	set32 := dataset.SynthImageNet(4, 4, 1)
	n16 := len(MiniResNet(set16, 8, 2).Layers)
	n32 := len(MiniResNet(set32, 8, 2).Layers)
	if n32 <= n16 {
		t.Errorf("32x32 network (%d layers) not deeper than 16x16 (%d)", n32, n16)
	}
	out := MiniResNet(set32, 8, 2).Forward(set32.TestX, false)
	if out.Cols != 20 {
		t.Fatalf("imagenet head has %d outputs", out.Cols)
	}
}

func TestMiniConvNetShapes(t *testing.T) {
	set := dataset.SynthCIFAR(6, 6, 3)
	net := MiniConvNet(set, 8, 4)
	out := net.Forward(set.TestX, false)
	if out.Rows != 6 || out.Cols != 10 {
		t.Fatalf("output %dx%d", out.Rows, out.Cols)
	}
}

// Training must lift accuracy far above chance on a small subset —
// the end-to-end sanity check for the whole training stack.
func TestTrainingBeatsChance(t *testing.T) {
	set := dataset.SynthCIFAR(400, 100, 5)
	net := MiniResNet(set, 8, 6)
	err := Train(net, set, TrainConfig{Epochs: 6, BatchSize: 32, LR: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	acc := TestAccuracy(net, set, 50)
	t.Logf("test accuracy after 6 epochs: %.1f%%", 100*acc)
	if acc < 0.3 { // chance is 10%; short training on 400 hard images
		t.Errorf("accuracy %.2f too close to chance", acc)
	}
}

func TestAccuracyBatchesConsistent(t *testing.T) {
	set := dataset.SynthCIFAR(20, 30, 9)
	net := MiniConvNet(set, 4, 10)
	fwd := func(x *linalg.Dense) (*linalg.Dense, error) { return net.Forward(x, false), nil }
	a1, err := Accuracy(fwd, set.TestX, set.TestY, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Accuracy(fwd, set.TestX, set.TestY, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("batch size changed accuracy: %v vs %v", a1, a2)
	}
}

func TestTrainedModelSerializes(t *testing.T) {
	set := dataset.SynthCIFAR(40, 10, 11)
	net := MiniConvNet(set, 4, 12)
	if err := Train(net, set, TrainConfig{Epochs: 1, BatchSize: 16, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := nn.SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Forward(set.TestX, false)
	got := loaded.Forward(set.TestX, false)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("loaded model differs")
		}
	}
}

func TestConfusionMatrix(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	c.Observe(0, 1)
	c.Observe(1, 1)
	c.Observe(2, 2)
	if got := c.Accuracy(); got != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", got)
	}
	rec := c.PerClassRecall()
	if rec[0] != 0.5 || rec[1] != 1 || rec[2] != 1 {
		t.Errorf("recall = %v", rec)
	}
	if s := c.String(); len(s) == 0 {
		t.Error("empty string rendering")
	}
}

func TestEvaluateMatchesAccuracy(t *testing.T) {
	set := dataset.SynthCIFAR(20, 30, 15)
	net := MiniConvNet(set, 4, 16)
	fwd := func(x *linalg.Dense) (*linalg.Dense, error) { return net.Forward(x, false), nil }
	acc, err := Accuracy(fwd, set.TestX, set.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := Evaluate(fwd, set.TestX, set.TestY, set.Classes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() != acc {
		t.Errorf("confusion accuracy %v != plain accuracy %v", conf.Accuracy(), acc)
	}
	var total int
	for _, row := range conf.Counts {
		for _, n := range row {
			total += n
		}
	}
	if total != set.TestX.Rows {
		t.Errorf("confusion total %d != %d examples", total, set.TestX.Rows)
	}
}

func TestTrainWithAugmentation(t *testing.T) {
	set := dataset.SynthCIFAR(80, 20, 21)
	net := MiniConvNet(set, 4, 22)
	aug := dataset.DefaultAugment()
	if err := Train(net, set, TrainConfig{
		Epochs: 2, BatchSize: 16, Seed: 23, Augment: &aug,
	}); err != nil {
		t.Fatal(err)
	}
	// Smoke: the trained network still produces valid logits.
	out := net.Forward(set.TestX, false)
	if out.Rows != 20 || out.Cols != set.Classes {
		t.Fatalf("output shape %dx%d", out.Rows, out.Cols)
	}
}

func TestMiniVGGShapesAndTraining(t *testing.T) {
	set := dataset.SynthCIFAR(120, 30, 25)
	net := MiniVGG(set, 4, 26)
	out := net.Forward(set.TestX, false)
	if out.Rows != 30 || out.Cols != set.Classes {
		t.Fatalf("output %dx%d", out.Rows, out.Cols)
	}
	if err := Train(net, set, TrainConfig{Epochs: 2, BatchSize: 16, Seed: 27}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainWithCosineSchedule(t *testing.T) {
	set := dataset.SynthCIFAR(60, 20, 31)
	net := MiniConvNet(set, 4, 32)
	err := Train(net, set, TrainConfig{
		Epochs: 3, BatchSize: 16, Seed: 33,
		Schedule: nn.CosineLR{Base: 0.05, Min: 0.001, Epochs: 3},
		ClipNorm: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
}
