package models

import (
	"fmt"
	"strings"

	"geniex/internal/linalg"
	"geniex/internal/nn"
)

// Confusion is a square confusion matrix: Counts[true][predicted].
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion allocates an empty matrix for the given class count.
func NewConfusion(classes int) *Confusion {
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Observe records one (true, predicted) pair.
func (c *Confusion) Observe(truth, pred int) {
	c.Counts[truth][pred]++
}

// Accuracy returns overall top-1 accuracy.
func (c *Confusion) Accuracy() float64 {
	var correct, total int
	for i := range c.Counts {
		for j, n := range c.Counts[i] {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns the recall of each class (NaN-free: classes
// with no examples report 0).
func (c *Confusion) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i, row := range c.Counts {
		var total int
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// String renders the matrix compactly.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.2f%%):\n", c.Classes, 100*c.Accuracy())
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "  %2d |", i)
		for _, n := range row {
			fmt.Fprintf(&b, " %4d", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Evaluate runs an inference function over a labelled set and returns
// the full confusion matrix (batched like Accuracy).
func Evaluate(fwd Forward, x *linalg.Dense, y []int, classes, batchSize int) (*Confusion, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	conf := NewConfusion(classes)
	for lo := 0; lo < x.Rows; lo += batchSize {
		hi := lo + batchSize
		if hi > x.Rows {
			hi = x.Rows
		}
		bx := linalg.NewDenseFrom(hi-lo, x.Cols, x.Data[lo*x.Cols:hi*x.Cols])
		logits, err := fwd(bx)
		if err != nil {
			return nil, err
		}
		for i, p := range nn.Argmax(logits) {
			conf.Observe(y[lo+i], p)
		}
	}
	return conf, nil
}
