// Package models provides the CNN architectures and training harness
// used by the accuracy experiments. MiniResNet is the scaled-down
// stand-in for the paper's ResNet-20 (SynthCIFAR) and ResNet-18
// (SynthImageNet): stacked 3×3 convolutions with BatchNorm, identity
// residual blocks, global average pooling and a linear classifier —
// every feature the functional simulator has to lower.
package models

import (
	"fmt"
	"io"

	"geniex/internal/dataset"
	"geniex/internal/linalg"
	"geniex/internal/nn"
)

// MiniConvNet builds a small plain CNN (no residuals) for ablations:
// conv-BN-ReLU ×2 with pooling, then a linear head.
func MiniConvNet(set *dataset.Set, channels int, seed uint64) *nn.Sequential {
	r := linalg.NewRNG(seed)
	h, w := set.H, set.W
	g1 := nn.ConvGeom{InC: set.C, InH: h, InW: w, OutC: channels, Kernel: 3, Stride: 1, Pad: 1}
	g2 := nn.ConvGeom{InC: channels, InH: h / 2, InW: w / 2, OutC: channels, Kernel: 3, Stride: 1, Pad: 1}
	return nn.NewSequential(
		nn.NewConv2D(g1, false, r),
		nn.NewBatchNorm(channels, h*w),
		nn.NewReLU(),
		nn.NewMaxPool2D(channels, h, w, 2),
		nn.NewConv2D(g2, false, r),
		nn.NewBatchNorm(channels, (h/2)*(w/2)),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(channels, h/2, w/2),
		nn.NewLinear(channels, set.Classes, true, r),
	)
}

// residualBlock builds an identity block: conv-BN-ReLU-conv-BN inside
// the skip, ReLU applied by the caller after the add.
func residualBlock(c, h, w int, r *linalg.RNG) *nn.Residual {
	g := nn.ConvGeom{InC: c, InH: h, InW: w, OutC: c, Kernel: 3, Stride: 1, Pad: 1}
	return nn.NewResidual(
		nn.NewConv2D(g, false, r),
		nn.NewBatchNorm(c, h*w),
		nn.NewReLU(),
		nn.NewConv2D(g, false, r),
		nn.NewBatchNorm(c, h*w),
	)
}

// MiniResNet builds the residual CNN used in the paper-reproduction
// experiments: a stem convolution followed by residual stages with
// pooling between them, global average pooling and a linear head. The
// number of stages adapts to the input resolution (two for 16×16,
// three for 32×32).
func MiniResNet(set *dataset.Set, channels int, seed uint64) *nn.Sequential {
	r := linalg.NewRNG(seed)
	h, w := set.H, set.W
	layers := []nn.Layer{
		nn.NewConv2D(nn.ConvGeom{InC: set.C, InH: h, InW: w, OutC: channels, Kernel: 3, Stride: 1, Pad: 1}, false, r),
		nn.NewBatchNorm(channels, h*w),
		nn.NewReLU(),
	}
	for h > 8 {
		layers = append(layers,
			residualBlock(channels, h, w, r),
			nn.NewReLU(),
			nn.NewMaxPool2D(channels, h, w, 2),
		)
		h, w = h/2, w/2
	}
	layers = append(layers,
		residualBlock(channels, h, w, r),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(channels, h, w),
		nn.NewLinear(channels, set.Classes, true, r),
	)
	return nn.NewSequential(layers...)
}

// MiniVGG builds a VGG-style plain CNN: two conv-conv-pool stages with
// increasing width, then a small classifier head. It exists alongside
// MiniResNet so experiments can check that the non-ideality trends are
// not an artifact of one architecture family.
func MiniVGG(set *dataset.Set, channels int, seed uint64) *nn.Sequential {
	r := linalg.NewRNG(seed)
	h, w := set.H, set.W
	c2 := channels * 2
	stage := func(inC, outC, h, w int) []nn.Layer {
		g1 := nn.ConvGeom{InC: inC, InH: h, InW: w, OutC: outC, Kernel: 3, Stride: 1, Pad: 1}
		g2 := nn.ConvGeom{InC: outC, InH: h, InW: w, OutC: outC, Kernel: 3, Stride: 1, Pad: 1}
		return []nn.Layer{
			nn.NewConv2D(g1, false, r),
			nn.NewBatchNorm(outC, h*w),
			nn.NewReLU(),
			nn.NewConv2D(g2, false, r),
			nn.NewBatchNorm(outC, h*w),
			nn.NewReLU(),
			nn.NewMaxPool2D(outC, h, w, 2),
		}
	}
	var layers []nn.Layer
	layers = append(layers, stage(set.C, channels, h, w)...)
	layers = append(layers, stage(channels, c2, h/2, w/2)...)
	layers = append(layers,
		nn.NewGlobalAvgPool2D(c2, h/4, w/4),
		nn.NewLinear(c2, set.Classes, true, r),
	)
	return nn.NewSequential(layers...)
}

// TrainConfig controls CNN training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Decay     float64
	Seed      uint64
	// Schedule overrides the learning-rate schedule; nil uses a 10×
	// step drop at two-thirds of the epochs.
	Schedule nn.Schedule
	// ClipNorm, when positive, clips the global gradient norm each
	// step.
	ClipNorm float64
	// Augment, when non-nil, applies random flips/shifts to every
	// training batch.
	Augment *dataset.Augment
	// Verbose, when non-nil, receives one line per epoch.
	Verbose io.Writer
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// Train fits a network to a dataset with SGD + momentum under the
// configured learning-rate schedule (default: a single 10× step drop
// at two-thirds of the epochs).
func Train(net *nn.Sequential, set *dataset.Set, cfg TrainConfig) error {
	cfg = cfg.withDefaults()
	params := net.Params()
	opt := nn.NewSGD(params, cfg.LR, cfg.Momentum, cfg.Decay)
	sched := cfg.Schedule
	if sched == nil {
		sched = nn.StepLR{Base: cfg.LR, Gamma: 0.1, Milestones: []int{cfg.Epochs * 2 / 3}}
	}
	augRNG := linalg.NewRNG(cfg.Seed ^ 0xa06)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		opt.SetLR(sched.LR(epoch))
		var loss float64
		batches := 0
		set.Batches(cfg.BatchSize, cfg.Seed+uint64(epoch), func(x *linalg.Dense, y []int) {
			if cfg.Augment != nil {
				cfg.Augment.Apply(set, x, augRNG)
			}
			nn.ZeroGrad(params)
			logits := net.Forward(x, true)
			l, grad := nn.SoftmaxCrossEntropy(logits, y)
			net.Backward(grad)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step()
			loss += l
			batches++
		})
		if cfg.Verbose != nil {
			acc := TestAccuracy(net, set, cfg.BatchSize)
			fmt.Fprintf(cfg.Verbose, "epoch %2d/%d  loss=%.4f  test-acc=%.2f%%\n",
				epoch+1, cfg.Epochs, loss/float64(batches), 100*acc)
		}
	}
	return nil
}

// Forward is any batched inference function: the float network, or a
// lowered funcsim network.
type Forward func(x *linalg.Dense) (*linalg.Dense, error)

// Accuracy evaluates top-1 accuracy of an inference function over a
// labelled set, in batches.
func Accuracy(fwd Forward, x *linalg.Dense, y []int, batchSize int) (float64, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for lo := 0; lo < x.Rows; lo += batchSize {
		hi := lo + batchSize
		if hi > x.Rows {
			hi = x.Rows
		}
		bx := linalg.NewDenseFrom(hi-lo, x.Cols, x.Data[lo*x.Cols:hi*x.Cols])
		logits, err := fwd(bx)
		if err != nil {
			return 0, err
		}
		for i, p := range nn.Argmax(logits) {
			if p == y[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(x.Rows), nil
}

// TestAccuracy is Accuracy of the float network on the test split.
func TestAccuracy(net *nn.Sequential, set *dataset.Set, batchSize int) float64 {
	acc, err := Accuracy(func(x *linalg.Dense) (*linalg.Dense, error) {
		return net.Forward(x, false), nil
	}, set.TestX, set.TestY, batchSize)
	if err != nil {
		panic(err) // the float path cannot fail
	}
	return acc
}
