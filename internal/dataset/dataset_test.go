package dataset

import (
	"testing"

	"geniex/internal/linalg"
)

func TestSynthCIFARShapes(t *testing.T) {
	s := SynthCIFAR(100, 40, 1)
	if s.Classes != 10 || s.C != 3 || s.H != 16 || s.W != 16 {
		t.Fatalf("metadata wrong: %+v", s)
	}
	if s.TrainX.Rows != 100 || s.TestX.Rows != 40 {
		t.Fatalf("sizes wrong: %d/%d", s.TrainX.Rows, s.TestX.Rows)
	}
	if s.Features() != 3*16*16 {
		t.Fatalf("features = %d", s.Features())
	}
}

func TestSynthImageNetShapes(t *testing.T) {
	s := SynthImageNet(60, 20, 2)
	if s.Classes != 20 || s.H != 32 || s.W != 32 {
		t.Fatalf("metadata wrong: %+v", s)
	}
}

func TestLabelsBalancedAndInRange(t *testing.T) {
	s := SynthCIFAR(200, 100, 3)
	counts := make([]int, s.Classes)
	for _, y := range s.TrainY {
		if y < 0 || y >= s.Classes {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d has %d train examples, want 20", c, n)
		}
	}
}

func TestPixelRange(t *testing.T) {
	s := SynthCIFAR(30, 10, 4)
	for _, v := range s.TrainX.Data {
		if v < -1.5 || v > 1.5 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SynthCIFAR(20, 10, 7)
	b := SynthCIFAR(20, 10, 7)
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != b.TrainX.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := SynthCIFAR(20, 10, 8)
	same := true
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != c.TrainX.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestImagesVaryWithinClass(t *testing.T) {
	s := SynthCIFAR(40, 10, 9)
	// Find two examples of class 0 and verify they differ (random
	// shape position / phase / noise).
	var first []float64
	for i, y := range s.TrainY {
		if y != 0 {
			continue
		}
		if first == nil {
			first = s.TrainX.Row(i)
			continue
		}
		row := s.TrainX.Row(i)
		for j := range row {
			if row[j] != first[j] {
				return // differ somewhere: good
			}
		}
		t.Fatal("two class-0 images are identical")
	}
	t.Fatal("did not find two class-0 images")
}

func TestBatchesCoverAll(t *testing.T) {
	s := SynthCIFAR(50, 10, 11)
	seen := 0
	sizes := []int{}
	s.Batches(16, 5, func(x *linalg.Dense, y []int) {
		if x.Rows != len(y) {
			t.Fatalf("batch rows %d != labels %d", x.Rows, len(y))
		}
		seen += len(y)
		sizes = append(sizes, len(y))
	})
	if seen != 50 {
		t.Errorf("batches covered %d examples, want 50", seen)
	}
	if sizes[len(sizes)-1] != 2 {
		t.Errorf("last batch size %d, want 2", sizes[len(sizes)-1])
	}
}

func TestSubset(t *testing.T) {
	s := SynthCIFAR(50, 20, 13)
	sub := s.Subset(10, 5)
	if sub.TrainX.Rows != 10 || sub.TestX.Rows != 5 {
		t.Fatalf("subset sizes %d/%d", sub.TrainX.Rows, sub.TestX.Rows)
	}
	for i := 0; i < 10; i++ {
		if sub.TrainY[i] != s.TrainY[i] {
			t.Fatal("subset labels diverge")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized subset did not panic")
		}
	}()
	s.Subset(1000, 1)
}

func TestFlipHInvolution(t *testing.T) {
	s := SynthCIFAR(4, 2, 17)
	orig := make([]float64, s.Features())
	copy(orig, s.TrainX.Row(0))
	img := s.TrainX.Row(0)
	flipH(img, s.C, s.H, s.W)
	changed := false
	for i := range img {
		if img[i] != orig[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("flip changed nothing")
	}
	flipH(img, s.C, s.H, s.W)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatal("double flip is not the identity")
		}
	}
}

func TestShiftMovesPixels(t *testing.T) {
	c, h, w := 1, 4, 4
	img := make([]float64, h*w)
	img[1*w+1] = 7 // pixel at (1,1)
	tmp := make([]float64, h*w)
	shift(img, tmp, c, h, w, 1, 2)
	if img[3*w+2] != 7 {
		t.Errorf("pixel did not move to (3,2): %v", img)
	}
	var sum float64
	for _, v := range img {
		sum += v
	}
	if sum != 7 {
		t.Errorf("shift duplicated or lost mass: %v", sum)
	}
	// Shifting off the edge zeroes everything.
	shift(img, tmp, c, h, w, 10, 0)
	for _, v := range img {
		if v != 0 {
			t.Fatal("off-edge shift left residue")
		}
	}
}

func TestAugmentApplyDeterministic(t *testing.T) {
	s := SynthCIFAR(8, 2, 19)
	a := DefaultAugment()
	x1 := s.TrainX.Clone()
	x2 := s.TrainX.Clone()
	a.Apply(s, x1, linalg.NewRNG(5))
	a.Apply(s, x2, linalg.NewRNG(5))
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("augmentation not deterministic under the same seed")
		}
	}
	// And it must actually change something.
	diff := false
	for i := range x1.Data {
		if x1.Data[i] != s.TrainX.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("augmentation was a no-op")
	}
}
