// Package dataset provides procedural image-classification datasets.
// They replace CIFAR-100 and ImageNet in the paper's accuracy
// experiments (the repository must stay offline and deterministic);
// what the experiments need is a task hard enough that classification
// accuracy degrades smoothly as arithmetic error grows, which these
// sets provide.
//
// Each image composes three class-dependent cues — an oriented
// sinusoidal grating, a geometric shape at a random position, and a
// channel color bias — on top of Gaussian noise, so no single trivial
// feature solves the task.
package dataset

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// Set is an image classification dataset with a fixed train/test
// split. Images are stored one per row in channel-major C×H×W order,
// values roughly in [−1, 1].
type Set struct {
	Name    string
	Classes int
	C, H, W int
	TrainX  *linalg.Dense
	TrainY  []int
	TestX   *linalg.Dense
	TestY   []int
}

// Features returns the flattened image size.
func (s *Set) Features() int { return s.C * s.H * s.W }

// SynthCIFAR generates the 10-class, 3×16×16 dataset standing in for
// CIFAR-100 (classes = shape × orientation combinations).
func SynthCIFAR(nTrain, nTest int, seed uint64) *Set {
	return generate("synth-cifar", 10, 3, 16, 16, nTrain, nTest, seed)
}

// SynthImageNet generates the harder 20-class, 3×32×32 dataset
// standing in for the paper's ImageNet subset.
func SynthImageNet(nTrain, nTest int, seed uint64) *Set {
	return generate("synth-imagenet", 20, 3, 32, 32, nTrain, nTest, seed)
}

// generate builds a balanced dataset: class k = (shape s, orientation
// o) with s = k mod 4 and o = k div 4.
func generate(name string, classes, c, h, w, nTrain, nTest int, seed uint64) *Set {
	if nTrain <= 0 || nTest <= 0 {
		panic(fmt.Sprintf("dataset: need positive sizes, got %d/%d", nTrain, nTest))
	}
	rng := linalg.NewRNG(seed)
	set := &Set{
		Name: name, Classes: classes, C: c, H: h, W: w,
		TrainX: linalg.NewDense(nTrain, c*h*w),
		TrainY: make([]int, nTrain),
		TestX:  linalg.NewDense(nTest, c*h*w),
		TestY:  make([]int, nTest),
	}
	fill := func(x *linalg.Dense, y []int, r *linalg.RNG) {
		for i := range y {
			label := i % classes // balanced
			y[i] = label
			renderImage(x.Row(i), label, classes, c, h, w, r)
		}
		// Shuffle so batches are not class-ordered.
		r.Shuffle(len(y), func(a, b int) {
			y[a], y[b] = y[b], y[a]
			ra, rb := x.Row(a), x.Row(b)
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
		})
	}
	fill(set.TrainX, set.TrainY, rng.Split())
	fill(set.TestX, set.TestY, rng.Split())
	return set
}

// renderImage paints one example of the given class.
func renderImage(dst []float64, label, classes, c, h, w int, r *linalg.RNG) {
	nOrient := (classes + 3) / 4
	shape := label % 4
	orient := label / 4
	theta := math.Pi * float64(orient) / float64(nOrient)
	freq := 2*math.Pi*(1.5+0.5*float64(orient))/float64(w) + 0
	phase := 2 * math.Pi * r.Float64()
	colorCh := label % c

	// Shape placement. Sizes, amplitudes and the noise floor are tuned
	// so a small CNN lands in the 80–90% accuracy band: high enough to
	// be meaningful, low enough that arithmetic error degrades it
	// smoothly (a saturated task would hide the paper's trends).
	size := 2 + r.Intn(2) + h/8
	cx := size + r.Intn(w-2*size)
	cy := size + r.Intn(h-2*size)
	amp := 0.45 + 0.25*r.Float64()

	cosT, sinT := math.Cos(theta), math.Sin(theta)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := 0.45 * r.Norm() // background noise
				// Oriented grating, strongest in channel 0.
				proj := float64(x)*cosT + float64(y)*sinT
				gAmp := 0.3
				if ch != 0 {
					gAmp = 0.12
				}
				v += gAmp * math.Sin(freq*proj+phase)
				// Class color bias.
				if ch == colorCh {
					v += 0.12
				}
				if inShape(shape, x, y, cx, cy, size) {
					v += amp
				}
				dst[ch*h*w+y*w+x] = clamp(v, -1.5, 1.5)
			}
		}
	}
}

// inShape tests membership of pixel (x, y) in the class shape centered
// at (cx, cy).
func inShape(shape, x, y, cx, cy, size int) bool {
	dx, dy := x-cx, y-cy
	switch shape {
	case 0: // filled circle
		return dx*dx+dy*dy <= size*size
	case 1: // filled square
		return abs(dx) <= size && abs(dy) <= size
	case 2: // cross
		return (abs(dx) <= 1 && abs(dy) <= size) || (abs(dy) <= 1 && abs(dx) <= size)
	default: // diamond
		return abs(dx)+abs(dy) <= size
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Batches iterates the training set in shuffled minibatches, calling
// fn with each batch. The last batch may be smaller.
func (s *Set) Batches(batchSize int, seed uint64, fn func(x *linalg.Dense, y []int)) {
	n := s.TrainX.Rows
	perm := linalg.NewRNG(seed).Perm(n)
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		x := linalg.NewDense(hi-lo, s.TrainX.Cols)
		y := make([]int, hi-lo)
		for i, p := range perm[lo:hi] {
			copy(x.Row(i), s.TrainX.Row(p))
			y[i] = s.TrainY[p]
		}
		fn(x, y)
	}
}

// Subset returns a dataset view with the first nTrain/nTest examples
// (useful for quick experiment modes). It panics if the requested
// sizes exceed the available data.
func (s *Set) Subset(nTrain, nTest int) *Set {
	if nTrain > s.TrainX.Rows || nTest > s.TestX.Rows {
		panic(fmt.Sprintf("dataset: subset %d/%d exceeds %d/%d", nTrain, nTest, s.TrainX.Rows, s.TestX.Rows))
	}
	out := *s
	out.TrainX = linalg.NewDenseFrom(nTrain, s.TrainX.Cols, s.TrainX.Data[:nTrain*s.TrainX.Cols])
	out.TrainY = s.TrainY[:nTrain]
	out.TestX = linalg.NewDenseFrom(nTest, s.TestX.Cols, s.TestX.Data[:nTest*s.TestX.Cols])
	out.TestY = s.TestY[:nTest]
	return &out
}
