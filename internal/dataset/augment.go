package dataset

import "geniex/internal/linalg"

// Augment describes the random training-time transformations applied
// to image batches: horizontal flips and integer pixel shifts with
// zero padding — the standard light augmentation for small image
// classification tasks.
type Augment struct {
	// FlipProb is the probability of a horizontal mirror.
	FlipProb float64
	// MaxShift is the maximum absolute shift (pixels) in each axis.
	MaxShift int
}

// DefaultAugment returns flip-half-the-time plus ±2 pixel shifts.
func DefaultAugment() Augment {
	return Augment{FlipProb: 0.5, MaxShift: 2}
}

// Apply transforms a batch in place. The batch layout must match the
// set's geometry (one C×H×W image per row).
func (a Augment) Apply(s *Set, x *linalg.Dense, rng *linalg.RNG) {
	if x.Cols != s.Features() {
		panic("dataset: Augment.Apply on a batch with wrong feature count")
	}
	tmp := make([]float64, s.Features())
	for b := 0; b < x.Rows; b++ {
		row := x.Row(b)
		if a.FlipProb > 0 && rng.Float64() < a.FlipProb {
			flipH(row, s.C, s.H, s.W)
		}
		if a.MaxShift > 0 {
			dx := rng.Intn(2*a.MaxShift+1) - a.MaxShift
			dy := rng.Intn(2*a.MaxShift+1) - a.MaxShift
			if dx != 0 || dy != 0 {
				shift(row, tmp, s.C, s.H, s.W, dx, dy)
			}
		}
	}
}

// flipH mirrors each channel left-right in place.
func flipH(img []float64, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			rowStart := base + y*w
			for x := 0; x < w/2; x++ {
				img[rowStart+x], img[rowStart+w-1-x] = img[rowStart+w-1-x], img[rowStart+x]
			}
		}
	}
}

// shift translates each channel by (dx, dy) with zero fill, using tmp
// as scratch.
func shift(img, tmp []float64, c, h, w, dx, dy int) {
	copy(tmp, img)
	for i := range img {
		img[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				img[base+y*w+x] = tmp[base+sy*w+sx]
			}
		}
	}
}
