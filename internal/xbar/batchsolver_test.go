package xbar

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"geniex/internal/linalg"
)

func randomBatch(cfg Config, r *linalg.RNG, batch int) *linalg.Dense {
	vs := linalg.NewDense(batch, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	return vs
}

// A reusable BatchSolver must reproduce the one-shot BatchSolveReport
// result bit for bit across repeated calls, and keep its pool of
// programmed instances bounded instead of re-programming per call.
func TestBatchSolverReusesProgrammedInstances(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(50)
	g := randomLevels(cfg, r)
	vs := randomBatch(cfg, r, 6)

	want, wantRep, err := BatchSolveReport(cfg, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if !wantRep.AllOK() {
		t.Fatalf("reference batch not clean: %v", wantRep)
	}

	s, err := NewBatchSolver(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, rep, err := s.SolveReport(vs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !rep.AllOK() {
			t.Fatalf("round %d: %v", round, rep)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("round %d: output[%d] = %v, want %v", round, i, got.Data[i], want.Data[i])
			}
		}
		for b, o := range rep.Outcomes {
			w := wantRep.Outcomes[b]
			if o.Status != w.Status || o.NewtonIters != w.NewtonIters || o.Residual != w.Residual {
				t.Errorf("round %d item %d: outcome %+v, want %+v", round, b, o, w)
			}
		}
	}
	s.mu.Lock()
	idle := len(s.free)
	s.mu.Unlock()
	if idle < 1 {
		t.Error("solver pooled no programmed instances after use")
	}
	if max := runtime.GOMAXPROCS(0); idle > max {
		t.Errorf("solver pooled %d idle instances, want at most %d", idle, max)
	}
}

// BatchWorkers=1 must run fully serial and still match the parallel
// result bit for bit; into-style solving must not allocate a result.
func TestBatchSolverSerialWorkersMatch(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(51)
	g := randomLevels(cfg, r)
	vs := randomBatch(cfg, r, 5)

	parallel, _, err := BatchSolveReport(cfg, g, vs)
	if err != nil {
		t.Fatal(err)
	}

	cfg.BatchWorkers = 1
	s, err := NewBatchSolver(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	out := linalg.NewDense(vs.Rows, cfg.Cols)
	rep, err := s.SolveReportInto(out, vs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllOK() {
		t.Fatalf("serial batch not clean: %v", rep)
	}
	for i := range parallel.Data {
		if out.Data[i] != parallel.Data[i] {
			t.Fatalf("output[%d]: serial %v != parallel %v", i, out.Data[i], parallel.Data[i])
		}
	}

	cfg.BatchWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative BatchWorkers passed validation")
	}
}

// Best-effort items accepted without convergence must not pass
// silently: the report's strict gate and the BatchSolve convenience
// wrapper both surface them as ErrNewtonDiverged.
func TestBatchSolveSurfacesUnconvergedItems(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = PolicyBestEffort
	r := linalg.NewRNG(52)
	g := randomLevels(cfg, r)
	vs := randomBatch(cfg, r, 4)
	// The whole ladder is forced to fail on item 2, so best-effort
	// accepts its lowest-residual iterate with Converged=false.
	faulted := cfg.WithFaults(&FaultPlan{FailAttempts: 3, Items: []int{2}})

	out, rep, err := BatchSolveReport(faulted, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unconverged != 1 || rep.Failed != 0 {
		t.Fatalf("unconverged=%d failed=%d, want 1/0", rep.Unconverged, rep.Failed)
	}
	if rep.AllOK() {
		t.Error("AllOK true with an unconverged item")
	}
	gateErr := rep.Err()
	if gateErr == nil {
		t.Fatal("Err() = nil with an unconverged item")
	}
	if !errors.Is(gateErr, ErrNewtonDiverged) {
		t.Errorf("Err() = %v, want ErrNewtonDiverged", gateErr)
	}
	for i, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("output[%d] non-finite: %v", i, v)
		}
	}

	// The error-only wrapper must refuse the degraded batch outright.
	if _, err := BatchSolve(faulted, g, vs); !errors.Is(err, ErrNewtonDiverged) {
		t.Errorf("BatchSolve error = %v, want ErrNewtonDiverged", err)
	}

	// A clean batch keeps the nil-error contract.
	if _, err := BatchSolve(cfg, g, vs); err != nil {
		t.Errorf("clean BatchSolve errored: %v", err)
	}
}

// Solution.MaxStep must report the length of the *applied* Newton
// update. When the damped rung backtracks, the accepted step is the
// shortened one — the solver once kept reporting the full-length
// Newton direction, over-stating MaxStep and feeding the wrong length
// to the stall test.
func TestMaxStepReportsAppliedStep(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(53)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)

	// Fail the plain rung so the damped rung runs, and force it to
	// backtrack after every update so convergence is always detected on
	// a shortened step. Half-length steps converge linearly instead of
	// quadratically, so give the rung a bigger Newton budget.
	xb, err := New(cfg.WithFaults(&FaultPlan{FailAttempts: 1, BacktrackEvery: true, MaxNewton: 500}))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Recovery != "damped" {
		t.Fatalf("Recovery = %q, want damped", sol.Recovery)
	}
	if !sol.Converged {
		t.Fatal("damped rung did not converge")
	}
	if sol.DampedSteps == 0 {
		t.Fatal("forced backtracking never engaged")
	}

	// The solver's final iterate is volt = prev + scale·step: the
	// applied update. MaxStep must equal its length, not the length of
	// the full Newton direction held in step.
	var applied, full float64
	for n := range xb.volt {
		if d := math.Abs(xb.volt[n] - xb.prev[n]); d > applied {
			applied = d
		}
		if d := math.Abs(xb.step[n]); d > full {
			full = d
		}
	}
	if applied == 0 || full == 0 {
		t.Fatalf("degenerate final iterate: applied=%v full=%v", applied, full)
	}
	if applied >= full {
		t.Fatalf("backtrack did not shorten the step: applied %v, full %v", applied, full)
	}
	// Convergence is always detected right after a forced backtrack, so
	// the accepted scale is at most 1/2: the stale-tracking bug reported
	// the full length here.
	if sol.MaxStep > 0.5*full {
		t.Errorf("MaxStep = %v exceeds half the full Newton step %v: full length reported", sol.MaxStep, full)
	}
	// And it must match the measured applied update up to the rounding
	// of prev + scale·step − prev.
	if rel := math.Abs(sol.MaxStep-applied) / applied; rel > 1e-6 {
		t.Errorf("MaxStep = %v, want applied step %v (rel err %v, full step %v)", sol.MaxStep, applied, rel, full)
	}
}
