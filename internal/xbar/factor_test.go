package xbar

import (
	"math"
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// relDiff is the largest relative per-column difference between two
// current vectors.
func relDiff(a, b []float64) float64 {
	worst := 0.0
	for j := range a {
		d := math.Abs(a[j]-b[j]) / (math.Abs(b[j]) + 1e-15)
		if d > worst {
			worst = d
		}
	}
	return worst
}

// The structured factorization must solve the exact linearized MNA
// system: J₀·x = b for arbitrary right-hand sides, to direct-solver
// accuracy, across degenerate and non-square shapes.
func TestFactorSolvesLinearizedSystem(t *testing.T) {
	r := linalg.NewRNG(50)
	for _, dims := range [][2]int{{1, 1}, {1, 6}, {6, 1}, {4, 7}, {8, 8}, {5, 3}} {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = dims[0], dims[1]
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(randomLevels(cfg, r)); err != nil {
			t.Fatal(err)
		}
		f, err := xb.buildFactor()
		if err != nil {
			t.Fatalf("%dx%d: buildFactor: %v", dims[0], dims[1], err)
		}
		// Assemble J₀ at the zero state (companion sources vanish, so
		// the stamp is exactly the linearized conductance matrix).
		n := xb.numNodes()
		xb.buildCoords(make([]float64, n))
		j0 := linalg.NewCSR(n, xb.coords)

		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		x := make([]float64, n)
		f.solveInto(x, b, newFactorScratch(cfg))

		res := make([]float64, n)
		j0.MulVec(x, res)
		for i := range res {
			res[i] -= b[i]
		}
		if rel := linalg.Norm2(res) / linalg.Norm2(b); rel > 1e-9 {
			t.Errorf("%dx%d: factorized solve residual %v", dims[0], dims[1], rel)
		}
	}
}

// The seeded default must agree with the legacy cold start to solver
// tolerance while spending no more Newton updates.
func TestSeededSolveMatchesCold(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(51)
	g := randomLevels(cfg, r)
	for trial := 0; trial < 4; trial++ {
		v := randomDrive(cfg, r)

		cold := cfg
		cold.Start = StartCold
		want := cleanSolve(t, cold, g, v)
		if want.Seeded || want.WarmStarted {
			t.Fatal("cold solve reported a seeded/warm start")
		}

		got := cleanSolve(t, cfg, g, v)
		if !got.Seeded {
			t.Fatal("default solve did not use the factorization seed")
		}
		if !got.Converged || got.Residual > kclOK {
			t.Fatalf("seeded solve: converged=%v residual=%v", got.Converged, got.Residual)
		}
		if d := relDiff(got.Currents, want.Currents); d > 1e-6 {
			t.Errorf("trial %d: seeded vs cold currents differ by %v", trial, d)
		}
		if got.NewtonIters > want.NewtonIters {
			t.Errorf("trial %d: seeded used %d Newton updates, cold used %d",
				trial, got.NewtonIters, want.NewtonIters)
		}
	}
}

// Satellite regression: warm-started and cold-started solves of the
// same inputs agree within kclOK.
func TestWarmStartAgreesWithCold(t *testing.T) {
	cfg := smallConfig()
	warm := cfg
	warm.Start = StartWarm
	r := linalg.NewRNG(52)
	g := randomLevels(cfg, r)

	wx, err := New(warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := wx.Program(g); err != nil {
		t.Fatal(err)
	}
	cold := cfg
	cold.Start = StartCold
	for trial := 0; trial < 6; trial++ {
		v := randomDrive(cfg, r)
		want := cleanSolve(t, cold, g, v)
		got, err := wx.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 && !got.Seeded {
			t.Error("first warm-mode solve should fall back to the factorization seed")
		}
		if trial > 0 && !got.WarmStarted {
			t.Errorf("trial %d: warm-mode solve did not warm-start", trial)
		}
		if !got.Converged {
			t.Fatalf("trial %d: warm solve did not converge", trial)
		}
		if d := relDiff(got.Currents, want.Currents); d > kclOK {
			t.Errorf("trial %d: warm vs cold currents differ by %v (> kclOK)", trial, d)
		}
	}
}

// A warm start whose previous state sits in the wrong basin must fall
// back to the factorization seed (counted as a reseed), converge on
// rung 0 without touching the recovery ladder, and leave the instance
// warm-startable again. Driving all rows at Vsupply and then all at
// zero triggers this deterministically: the high-voltage state is a
// stall point for the zero-drive system.
func TestWarmStartReseedsInsteadOfRecovering(t *testing.T) {
	cfg := smallConfig()
	cfg.Start = StartWarm
	r := linalg.NewRNG(55)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(randomLevels(cfg, r)); err != nil {
		t.Fatal(err)
	}
	full := make([]float64, cfg.Rows)
	for i := range full {
		full[i] = cfg.Vsupply
	}
	zero := make([]float64, cfg.Rows)
	if _, err := xb.Solve(full); err != nil {
		t.Fatal(err)
	}

	before := obs.Snapshot()
	sol, err := xb.Solve(zero)
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Snapshot()
	if d := after.Counters["xbar.solver.factor.reseeds"] - before.Counters["xbar.solver.factor.reseeds"]; d != 1 {
		t.Errorf("reseeds moved by %d, want 1", d)
	}
	if !sol.Seeded || sol.WarmStarted {
		t.Errorf("reseeded solve flags: Seeded=%v WarmStarted=%v, want seeded only", sol.Seeded, sol.WarmStarted)
	}
	if sol.Recovery != "" {
		t.Errorf("reseeded solve escalated to recovery rung %q", sol.Recovery)
	}
	if !sol.Converged {
		t.Error("reseeded solve did not converge")
	}

	// The reseeded converged state is a valid warm start for the next
	// solve.
	sol, err = xb.Solve(full)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.WarmStarted {
		t.Error("instance did not warm-start after a reseeded solve")
	}
}

// Reprogramming must invalidate the cached factorization: the next
// solve rebuilds it against the new conductances and matches a fresh
// instance exactly.
func TestFactorInvalidatedOnProgram(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(53)
	g1 := randomLevels(cfg, r)
	g2 := randomLevels(cfg, r)
	v := randomDrive(cfg, r)

	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g1); err != nil {
		t.Fatal(err)
	}
	before := obs.Snapshot()
	if _, err := xb.Solve(v); err != nil {
		t.Fatal(err)
	}
	mid := obs.Snapshot()
	if d := mid.Counters["xbar.solver.factor.builds"] - before.Counters["xbar.solver.factor.builds"]; d != 1 {
		t.Errorf("factor builds moved by %d after first solve, want 1", d)
	}
	if d := mid.Counters["xbar.solver.factor.reuses"] - before.Counters["xbar.solver.factor.reuses"]; d != 1 {
		t.Errorf("factor reuses moved by %d, want 1", d)
	}

	if err := xb.Program(g2); err != nil {
		t.Fatal(err)
	}
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Snapshot()
	if d := after.Counters["xbar.solver.factor.invalidations"] - mid.Counters["xbar.solver.factor.invalidations"]; d != 1 {
		t.Errorf("factor invalidations moved by %d after reprogram, want 1", d)
	}
	if d := after.Counters["xbar.solver.factor.builds"] - mid.Counters["xbar.solver.factor.builds"]; d != 1 {
		t.Errorf("factor builds moved by %d after reprogram, want 1", d)
	}

	want := cleanSolve(t, cfg, g2, v)
	for j := range want.Currents {
		if sol.Currents[j] != want.Currents[j] {
			t.Errorf("col %d: reprogrammed solve %v != fresh instance %v", j, sol.Currents[j], want.Currents[j])
		}
	}
}

// Satellite regression: the default (warm-start-off) batch path stays
// bit-identical across worker counts with the factorization cache
// active, and the pooled instances share one factorization.
func TestSeededBatchDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(54)
	g := randomLevels(cfg, r)
	const batch = 12
	vs := linalg.NewDense(batch, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}

	solveAt := func(workers int) (*linalg.Dense, *BatchReport, int64, int64) {
		c := cfg
		c.BatchWorkers = workers
		before := obs.Snapshot()
		out, rep, err := BatchSolveReport(c, g, vs)
		if err != nil {
			t.Fatal(err)
		}
		after := obs.Snapshot()
		builds := after.Counters["xbar.solver.factor.builds"] - before.Counters["xbar.solver.factor.builds"]
		reuses := after.Counters["xbar.solver.factor.reuses"] - before.Counters["xbar.solver.factor.reuses"]
		return out, rep, builds, reuses
	}

	serial, serialRep, serialBuilds, serialReuses := solveAt(1)
	parallel, parallelRep, parallelBuilds, parallelReuses := solveAt(4)
	if serialBuilds != 1 || parallelBuilds != 1 {
		t.Errorf("factor builds = %d serial / %d parallel, want 1 each (pool shares the factor)",
			serialBuilds, parallelBuilds)
	}
	if serialReuses != batch || parallelReuses != batch {
		t.Errorf("factor reuses = %d serial / %d parallel, want %d each (cache active on every item)",
			serialReuses, parallelReuses, batch)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("output[%d]: serial %v != parallel %v", i, serial.Data[i], parallel.Data[i])
		}
	}
	for b := 0; b < batch; b++ {
		s, p := serialRep.Outcomes[b], parallelRep.Outcomes[b]
		if s.NewtonIters != p.NewtonIters || s.CGIters != p.CGIters || s.Residual != p.Residual {
			t.Errorf("item %d: solver work differs across worker counts: %+v vs %+v", b, s, p)
		}
	}
}

// ParseStart round-trips every start mode, rejects junk, and Validate
// rejects out-of-range values.
func TestParseStart(t *testing.T) {
	for _, s := range []SolverStart{StartSeeded, StartCold, StartWarm} {
		got, err := ParseStart(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStart(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStart("lukewarm"); err == nil {
		t.Error("expected error for unknown start mode")
	}
	cfg := smallConfig()
	cfg.Start = SolverStart(17)
	if err := cfg.Validate(); err == nil {
		t.Error("expected validation error for out-of-range start")
	}
}
