package xbar

import "geniex/internal/linalg"

// CurrentFloor is the fraction of the full-scale ideal current below
// which a column is considered "dark": ratios against near-zero ideal
// currents are numerically meaningless, so NF and fR fall back to
// their ideal values (0 and 1) there. The same floor is used when
// GENIEx training labels are generated, keeping model and metric
// consistent.
const CurrentFloor = 1e-4

// fullScale returns the maximum ideal column current for a design
// point: every input at Vsupply through every cell at Gon.
func fullScale(cfg Config) float64 {
	return float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
}

// NF computes the paper's non-ideality factor per column,
//
//	NF_j = (Iideal_j − Inonideal_j) / Iideal_j,
//
// with dark columns (|Iideal| below the floor) reported as 0.
func NF(ideal, nonideal []float64, cfg Config) []float64 {
	floor := CurrentFloor * fullScale(cfg)
	out := make([]float64, len(ideal))
	for j := range ideal {
		if ideal[j] <= floor {
			out[j] = 0
			continue
		}
		out[j] = (ideal[j] - nonideal[j]) / ideal[j]
	}
	return out
}

// Ratio computes the paper's fR per column,
//
//	fR_j = Iideal_j / Inonideal_j,
//
// with dark columns reported as 1 (no distortion). fR is the quantity
// GENIEx learns to predict.
func Ratio(ideal, nonideal []float64, cfg Config) []float64 {
	floor := CurrentFloor * fullScale(cfg)
	out := make([]float64, len(ideal))
	for j := range ideal {
		if ideal[j] <= floor || nonideal[j] <= floor*1e-3 {
			out[j] = 1
			continue
		}
		out[j] = ideal[j] / nonideal[j]
	}
	return out
}

// ApplyRatio reconstructs non-ideal currents from ideal currents and a
// predicted fR vector: Inonideal = Iideal/fR. Ratios at or below zero
// (which a badly trained predictor could emit) are treated as 1. It
// allocates its result and delegates to ApplyRatioInto.
func ApplyRatio(ideal, fr []float64) []float64 {
	out := make([]float64, len(ideal))
	ApplyRatioInto(out, ideal, fr)
	return out
}

// ApplyRatioInto reconstructs non-ideal currents into dst. dst may
// alias fr (the update is element-wise), which lets callers reuse the
// ratio buffer for the result.
func ApplyRatioInto(dst, ideal, fr []float64) {
	for j := range ideal {
		r := fr[j]
		if r <= 0 {
			r = 1
		}
		dst[j] = ideal[j] / r
	}
}

// NFStats summarizes per-column NF values pooled over a set of solves;
// this is the quantity box-plotted in Fig. 2(b,c,d).
func NFStats(nfs [][]float64) linalg.Summary {
	var pool []float64
	for _, nf := range nfs {
		pool = append(pool, nf...)
	}
	return linalg.Summarize(pool)
}
