// Package xbar simulates non-ideal memristive crossbars at the circuit
// level. It is the repository's substitute for the paper's HSPICE
// decks: the same netlist topology (word lines and bit lines with
// source, sink and wire parasitics; an access device and an RRAM cell
// at every junction) solved by modified nodal analysis with a
// Newton–Raphson outer loop and a Jacobi-preconditioned conjugate
// gradient inner solve.
//
// Three models of the same crossbar are exposed:
//
//   - Ideal: I = Gᵀ·V, the error-free MVM.
//   - Analytical: the netlist with all devices replaced by linear
//     resistors — exactly the class of model the paper uses as its
//     baseline (captures parasitic IR drop, misses data-dependent
//     device non-linearity). Because that network is linear, it also
//     collapses to a precomputable distortion matrix A(G) with
//     I = A·V (the matrix-inversion formulation of CxDNN).
//   - Circuit: the full non-linear netlist (sinh RRAM + saturating
//     selector), the stand-in for HSPICE ground truth.
package xbar

import (
	"fmt"
	"strings"

	"geniex/internal/device"
)

// SolverPolicy selects how strictly the circuit solver treats
// non-convergence. The zero value is PolicyRecover, so existing
// configurations get the recovery ladder without opting in.
type SolverPolicy int

const (
	// PolicyRecover runs the recovery ladder (damped Newton → source
	// stepping, with direct-LU rescue of broken CG solves) and returns
	// ErrNewtonDiverged only if every rung fails.
	PolicyRecover SolverPolicy = iota
	// PolicyFailFast returns ErrNewtonDiverged (or the linear-solver
	// error) at the first sign of trouble, with no recovery attempts.
	PolicyFailFast
	// PolicyBestEffort runs the full ladder and, if nothing converges,
	// returns the lowest-residual solution with Converged=false instead
	// of an error. Callers must check Solution.Converged.
	PolicyBestEffort
)

// String implements fmt.Stringer.
func (p SolverPolicy) String() string {
	switch p {
	case PolicyRecover:
		return "recover"
	case PolicyFailFast:
		return "failfast"
	case PolicyBestEffort:
		return "besteffort"
	}
	return fmt.Sprintf("SolverPolicy(%d)", int(p))
}

// ParsePolicy converts a CLI-style name into a SolverPolicy.
func ParsePolicy(s string) (SolverPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "recover":
		return PolicyRecover, nil
	case "failfast", "fail-fast":
		return PolicyFailFast, nil
	case "besteffort", "best-effort":
		return PolicyBestEffort, nil
	}
	return 0, fmt.Errorf("xbar: unknown solver policy %q (want recover, failfast or besteffort)", s)
}

// SolverStart selects the starting point of the circuit solver's
// Newton iteration. The zero value is StartSeeded: the per-programming
// MNA factorization solves the linearized network at the programmed
// operating point and Newton starts there instead of from flat zero.
// The seed is a pure function of the programmed conductances and the
// drive vector — it is exactly the first cold Newton iterate, computed
// directly instead of by CG — so the default path stays bit-reproducible
// at any worker count.
type SolverStart int

const (
	// StartSeeded (the default) starts Newton from the factorized
	// linear solve at the programmed operating point. Deterministic:
	// results depend only on (conductances, drive), never on solve
	// history or scheduling.
	StartSeeded SolverStart = iota
	// StartCold starts Newton from the flat zero state, the
	// pre-factorization behaviour. No factorization is built or used;
	// kept for benchmarks and bit-compatibility with historical runs.
	StartCold
	// StartWarm starts Newton from the previous converged solution of
	// the same crossbar instance when one exists (falling back to the
	// factorized seed otherwise). Fastest steady-state option, but
	// results may differ in the last bits depending on solve order, so
	// batch outputs are no longer bit-identical across worker counts —
	// an explicit opt-in, surfaced as the funcsim "fastcircuit" tier.
	StartWarm
)

// String implements fmt.Stringer.
func (s SolverStart) String() string {
	switch s {
	case StartSeeded:
		return "seeded"
	case StartCold:
		return "cold"
	case StartWarm:
		return "warm"
	}
	return fmt.Sprintf("SolverStart(%d)", int(s))
}

// ParseStart converts a CLI-style name into a SolverStart.
func ParseStart(s string) (SolverStart, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "seeded", "seed":
		return StartSeeded, nil
	case "cold":
		return StartCold, nil
	case "warm":
		return StartWarm, nil
	}
	return 0, fmt.Errorf("xbar: unknown solver start %q (want seeded, cold or warm)", s)
}

// Config describes a crossbar design point. The defaults follow the
// paper's experimental methodology (Section 6).
type Config struct {
	// Rows and Cols give the crossbar dimensions (rows = word lines =
	// inputs, cols = bit lines = outputs).
	Rows, Cols int

	// Ron is the device resistance in the fully-ON state (ohms).
	Ron float64
	// OnOffRatio is Roff/Ron; conductances are mapped into
	// [1/Roff, 1/Ron].
	OnOffRatio float64

	// Parasitics (ohms). Rwire is per cell segment of metal line.
	Rsource, Rsink, Rwire float64

	// Vsupply is the maximum input (word line) voltage in volts.
	Vsupply float64

	// RRAM holds the compact-model fitting parameters.
	RRAM device.RRAMParams

	// SelectorGonFactor sets the access-device low-bias conductance to
	// SelectorGonFactor/Ron; the access device must be much more
	// conductive than the memory cell or it dominates the state.
	SelectorGonFactor float64
	// SelectorVsat is the saturation voltage scale of the access
	// device (volts).
	SelectorVsat float64

	// NonLinear selects the device law: true for the full sinh RRAM +
	// tanh selector (HSPICE stand-in), false for linear resistors
	// (the analytical baseline).
	NonLinear bool

	// Policy selects the solver's non-convergence behaviour; the zero
	// value (PolicyRecover) runs the recovery ladder.
	Policy SolverPolicy

	// Start selects the Newton starting point; the zero value
	// (StartSeeded) uses the per-programming factorization seed. See
	// SolverStart for the reproducibility trade-offs.
	Start SolverStart

	// BatchWorkers bounds the goroutines a batch solve fans out across.
	// Zero (the default) means GOMAXPROCS; 1 forces a fully serial
	// solve with no goroutines — callers that already parallelize at a
	// coarser grain (the functional simulator's tile pipeline) use it
	// to avoid oversubscription, and benchmarks use it as the serial
	// baseline. Negative values are invalid.
	BatchWorkers int

	// faults carries a test-only fault-injection plan; see WithFaults.
	faults *FaultPlan
}

// DefaultConfig returns the paper's nominal 64×64 design point:
// Ron = 100kΩ, ON/OFF = 6, Rsource = 500Ω, Rsink = 100Ω,
// Rwire = 2.5Ω/cell, Vsupply = 0.25V, non-linear devices enabled.
func DefaultConfig() Config {
	return Config{
		Rows:              64,
		Cols:              64,
		Ron:               100e3,
		OnOffRatio:        6,
		Rsource:           500,
		Rsink:             100,
		Rwire:             2.5,
		Vsupply:           0.25,
		RRAM:              device.DefaultRRAMParams(),
		SelectorGonFactor: 20,
		SelectorVsat:      0.35,
		NonLinear:         true,
	}
}

// Option adjusts a Config under construction by NewConfig.
type Option func(*Config)

// WithRon sets the ON resistance (ohms).
func WithRon(ron float64) Option { return func(c *Config) { c.Ron = ron } }

// WithOnOffRatio sets Roff/Ron.
func WithOnOffRatio(r float64) Option { return func(c *Config) { c.OnOffRatio = r } }

// WithVsupply sets the maximum word-line voltage (volts).
func WithVsupply(v float64) Option { return func(c *Config) { c.Vsupply = v } }

// WithParasitics sets the source, sink and per-cell wire resistances
// (ohms).
func WithParasitics(rsource, rsink, rwire float64) Option {
	return func(c *Config) { c.Rsource, c.Rsink, c.Rwire = rsource, rsink, rwire }
}

// WithLinearDevices replaces the non-linear device laws with linear
// resistors (the analytical-baseline netlist).
func WithLinearDevices() Option { return func(c *Config) { c.NonLinear = false } }

// WithPolicy sets the solver's non-convergence policy.
func WithPolicy(p SolverPolicy) Option { return func(c *Config) { c.Policy = p } }

// WithStart sets the solver's Newton starting point (seeded, cold or
// warm).
func WithStart(s SolverStart) Option { return func(c *Config) { c.Start = s } }

// WithBatchWorkers bounds the goroutines a batch solve fans out
// across (0 = GOMAXPROCS, 1 = serial).
func WithBatchWorkers(n int) Option { return func(c *Config) { c.BatchWorkers = n } }

// NewConfig builds a validated design point: the paper's nominal
// parameters (DefaultConfig) at the given dimensions, adjusted by the
// options, checked once by Validate. Construction sites should prefer
// it over mutating struct literals — nonsensical sizes, negative
// worker counts and zero-value footguns surface here, at the one
// place the configuration is assembled, instead of deep inside a
// solve.
func NewConfig(rows, cols int, opts ...Option) (Config, error) {
	c := DefaultConfig()
	c.Rows, c.Cols = rows, cols
	for _, o := range opts {
		o(&c)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("xbar: dimensions must be positive, got %dx%d", c.Rows, c.Cols)
	case c.Ron <= 0:
		return fmt.Errorf("xbar: Ron must be positive, got %g", c.Ron)
	case c.OnOffRatio <= 1:
		return fmt.Errorf("xbar: OnOffRatio must exceed 1, got %g", c.OnOffRatio)
	case c.Rsource <= 0 || c.Rsink <= 0 || c.Rwire <= 0:
		return fmt.Errorf("xbar: parasitic resistances must be positive, got Rsource=%g Rsink=%g Rwire=%g",
			c.Rsource, c.Rsink, c.Rwire)
	case c.Vsupply <= 0:
		return fmt.Errorf("xbar: Vsupply must be positive, got %g", c.Vsupply)
	case c.SelectorGonFactor <= 0 || c.SelectorVsat <= 0:
		return fmt.Errorf("xbar: selector parameters must be positive, got factor=%g vsat=%g",
			c.SelectorGonFactor, c.SelectorVsat)
	case c.RRAM.I0 <= 0 || c.RRAM.D0 <= 0 || c.RRAM.V0 <= 0:
		return fmt.Errorf("xbar: RRAM parameters must be positive, got %+v", c.RRAM)
	case c.Policy < PolicyRecover || c.Policy > PolicyBestEffort:
		return fmt.Errorf("xbar: invalid solver policy %d", int(c.Policy))
	case c.Start < StartSeeded || c.Start > StartWarm:
		return fmt.Errorf("xbar: invalid solver start %d", int(c.Start))
	case c.BatchWorkers < 0:
		return fmt.Errorf("xbar: BatchWorkers must be non-negative, got %d", c.BatchWorkers)
	}
	return nil
}

// Gon returns the ON-state conductance 1/Ron.
func (c Config) Gon() float64 { return 1 / c.Ron }

// Goff returns the OFF-state conductance 1/(Ron·OnOffRatio).
func (c Config) Goff() float64 { return 1 / (c.Ron * c.OnOffRatio) }

// ConductanceFromLevel maps a normalized level in [0, 1] linearly into
// the programmable window [Goff, Gon]. Levels outside the range are
// clamped; this mirrors how a write driver would saturate.
func (c Config) ConductanceFromLevel(level float64) float64 {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return c.Goff() + level*(c.Gon()-c.Goff())
}

// LevelFromConductance inverts ConductanceFromLevel.
func (c Config) LevelFromConductance(g float64) float64 {
	return (g - c.Goff()) / (c.Gon() - c.Goff())
}

// String gives a compact, human-readable design-point description.
func (c Config) String() string {
	dev := "linear"
	if c.NonLinear {
		dev = "nonlinear"
	}
	return fmt.Sprintf("%dx%d Ron=%.0fkΩ on/off=%g Rs=%gΩ Rk=%gΩ Rw=%gΩ V=%gV %s",
		c.Rows, c.Cols, c.Ron/1e3, c.OnOffRatio, c.Rsource, c.Rsink, c.Rwire, c.Vsupply, dev)
}
