package xbar

import (
	"fmt"
	"math"

	"geniex/internal/linalg"
)

// Variation describes programming-time conductance disturbances:
// log-normal device-to-device variation plus stuck-at faults. These
// are the non-idealities the paper's related work (Vortex, defect
// mapping) models by distribution; here they perturb the programmed
// conductance matrix so both the circuit solver and GENIEx (which is
// data-based and can therefore be trained on measured, noisy arrays)
// see them.
type Variation struct {
	// Sigma is the standard deviation of the log-normal conductance
	// perturbation: g ← g·exp(σ·N(0,1)), clamped to the programming
	// window. Zero disables variation.
	Sigma float64
	// StuckOn and StuckOff are the probabilities that a cell is stuck
	// at Gon and Goff respectively (stuck-at faults [14]).
	StuckOn, StuckOff float64
	// Seed drives the perturbation deterministically.
	Seed uint64
}

// Validate reports whether the variation parameters are meaningful.
func (v Variation) Validate() error {
	if v.Sigma < 0 {
		return fmt.Errorf("xbar: negative variation sigma %g", v.Sigma)
	}
	if v.StuckOn < 0 || v.StuckOff < 0 || v.StuckOn+v.StuckOff > 1 {
		return fmt.Errorf("xbar: invalid stuck-at probabilities on=%g off=%g", v.StuckOn, v.StuckOff)
	}
	return nil
}

// Apply returns a perturbed copy of the target conductance matrix:
// what the array actually holds after an imperfect programming pass.
// The intended matrix is untouched, so callers can compute ideal
// currents against the intent and non-ideal currents against reality.
func (v Variation) Apply(g *linalg.Dense, cfg Config) (*linalg.Dense, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	rng := linalg.NewRNG(v.Seed)
	out := g.Clone()
	lo, hi := cfg.Goff(), cfg.Gon()
	for i := range out.Data {
		switch {
		case rng.Float64() < v.StuckOn:
			out.Data[i] = hi
		case rng.Float64() < v.StuckOff:
			out.Data[i] = lo
		default:
			if v.Sigma > 0 {
				out.Data[i] *= lognormal(rng, v.Sigma)
			}
		}
		if out.Data[i] < lo {
			out.Data[i] = lo
		}
		if out.Data[i] > hi {
			out.Data[i] = hi
		}
	}
	return out, nil
}

func lognormal(rng *linalg.RNG, sigma float64) float64 {
	return math.Exp(sigma * rng.Norm())
}
