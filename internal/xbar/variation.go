package xbar

import (
	"fmt"

	"geniex/internal/linalg"
	"geniex/internal/nonideal"
)

// EnvFromConfig projects a crossbar design point onto the environment
// the non-ideality component library perturbs within. Every layer that
// applies nonideal stacks to conductances programmed for this design
// point (funcsim lowering, the fault plan, Variation) builds its Env
// here so the window and parasitics stay consistent.
func EnvFromConfig(c Config) nonideal.Env {
	return nonideal.Env{
		Rows: c.Rows, Cols: c.Cols,
		Goff: c.Goff(), Gon: c.Gon(),
		Rsource: c.Rsource, Rsink: c.Rsink, Rwire: c.Rwire,
		Vsupply: c.Vsupply,
		RRAM:    c.RRAM,
	}
}

// Variation describes programming-time conductance disturbances:
// log-normal device-to-device variation plus stuck-at faults. It
// predates the internal/nonideal scenario library and is kept as a
// thin adapter over it: Apply composes the shared StuckAt and
// D2DVariation components, so the legacy call sites (ablations, the
// measured-array GENIEx training path) and new scenario-driven code
// exercise one implementation. New code should build nonideal.Stack
// values directly.
type Variation struct {
	// Sigma is the standard deviation of the log-normal conductance
	// perturbation: g ← g·exp(σ·N(0,1)), clamped to the programming
	// window. Zero disables variation.
	Sigma float64 `json:"sigma,omitempty"`
	// StuckOn and StuckOff are the probabilities that a cell is stuck
	// at Gon and Goff respectively (stuck-at faults [14]).
	StuckOn  float64 `json:"stuck_on,omitempty"`
	StuckOff float64 `json:"stuck_off,omitempty"`
	// Seed drives the perturbation deterministically.
	Seed uint64 `json:"seed,omitempty"`
}

// Stack is the nonideal composition Variation adapts over: stuck-at
// faults first (a stuck cell is stuck regardless of programming
// noise), then device-to-device variation.
func (v Variation) Stack() nonideal.Stack {
	var s nonideal.Stack
	if v.StuckOn > 0 || v.StuckOff > 0 {
		s = append(s, &nonideal.StuckAt{POn: v.StuckOn, POff: v.StuckOff})
	}
	if v.Sigma > 0 {
		s = append(s, &nonideal.D2DVariation{Sigma: v.Sigma})
	}
	return s
}

// Validate reports whether the variation parameters are meaningful.
func (v Variation) Validate() error {
	if v.Sigma < 0 {
		return fmt.Errorf("xbar: negative variation sigma %g", v.Sigma)
	}
	if v.StuckOn < 0 || v.StuckOff < 0 || v.StuckOn+v.StuckOff > 1 {
		return fmt.Errorf("xbar: invalid stuck-at probabilities on=%g off=%g", v.StuckOn, v.StuckOff)
	}
	return nil
}

// Apply returns a perturbed copy of the target conductance matrix:
// what the array actually holds after an imperfect programming pass.
// The intended matrix is untouched, so callers can compute ideal
// currents against the intent and non-ideal currents against reality.
func (v Variation) Apply(g *linalg.Dense, cfg Config) (*linalg.Dense, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	out := g.Clone()
	if _, err := v.Stack().Apply(out, EnvFromConfig(cfg), v.Seed, 0); err != nil {
		return nil, err
	}
	return out, nil
}
