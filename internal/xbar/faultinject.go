package xbar

import (
	"geniex/internal/linalg"
	"geniex/internal/nonideal"
)

// Fault injection: deterministic hooks that force the circuit solver
// into its failure paths so tests can prove every rung of the recovery
// ladder is exercised, plus conductance-level stuck-at faults shared
// with the internal/nonideal component library. The hooks live behind
// Config.WithFaults; a nil plan costs a single pointer check per
// solve. Plans are JSON-serializable so chaos experiments and sweep
// scenarios can declare them in config files.

// FaultPlan describes which failures to force. The zero value injects
// nothing.
type FaultPlan struct {
	// FailAttempts forces the first N ladder attempts (0 = plain
	// Newton, 1 = damped Newton, 2 = source stepping) to report
	// divergence even if they actually converged. FailAttempts=1
	// proves the damped rung rescues the solve, 2 proves source
	// stepping does, 3 makes the whole ladder fail.
	FailAttempts int `json:"fail_attempts,omitempty"`
	// CGBreakdownAt forces the inner linear solve of the given
	// (1-based) Newton update to report a CG breakdown, exercising the
	// direct-LU fallback. It applies to every ladder attempt of every
	// solve the plan covers.
	CGBreakdownAt int `json:"cg_breakdown_at,omitempty"`
	// BacktrackEvery forces the damped rung to backtrack every Newton
	// update once (halving the step) even when the KCL residual did not
	// increase, so tests can deterministically exercise the
	// damped-step accounting (Solution.MaxStep must report the applied
	// half-length step, and the stall test must compare it).
	BacktrackEvery bool `json:"backtrack_every,omitempty"`
	// NaNConductance poisons one assembled Jacobian stamp with NaN,
	// simulating a corrupted conductance. No rung can rescue this; the
	// solver must detect it and fail loudly instead of returning NaN
	// currents.
	NaNConductance bool `json:"nan_conductance,omitempty"`
	// MaxNewton overrides the Newton iteration budget when positive,
	// letting tests force genuine iteration-exhaustion stalls cheaply.
	MaxNewton int `json:"max_newton,omitempty"`
	// Items restricts the plan to these batch item indices during
	// BatchSolve; nil applies it to every item (and to direct Solve
	// calls).
	Items []int `json:"items,omitempty"`

	// StuckAt, when non-nil, pins random cells to a conductance rail at
	// every Program call — real conductance faults rather than forced
	// solver failures. It is the shared nonideal.StuckAt component, so
	// the chaos layer and scenario sweeps inject identical fault
	// populations through one implementation.
	StuckAt *nonideal.StuckAt `json:"stuck_at,omitempty"`
	// StuckSeed drives the stuck-at mask deterministically. The mask is
	// a function of the seed alone, so reprogramming an array re-applies
	// the same faults — stuck cells stay stuck across weight updates,
	// as they do in hardware.
	StuckSeed uint64 `json:"stuck_seed,omitempty"`
}

// covers reports whether the plan applies to batch item b.
func (p *FaultPlan) covers(b int) bool {
	if p == nil {
		return false
	}
	if p.Items == nil {
		return true
	}
	for _, i := range p.Items {
		if i == b {
			return true
		}
	}
	return false
}

// applyStuck perturbs a conductance matrix about to be programmed,
// returning the number of pinned cells. g is the crossbar's private
// clone; mutation never reaches the caller's matrix.
func (p *FaultPlan) applyStuck(g *linalg.Dense, cfg Config) (int, error) {
	if p == nil || p.StuckAt == nil {
		return 0, nil
	}
	rep, err := nonideal.Stack{p.StuckAt}.Apply(g, EnvFromConfig(cfg), p.StuckSeed, 0)
	return rep.Stuck, err
}

// WithFaults returns a copy of the configuration carrying a
// fault-injection plan. Pass nil to clear.
func (c Config) WithFaults(p *FaultPlan) Config {
	c.faults = p
	return c
}

// Faults exposes the configured plan (nil when none); used by
// BatchSolve to scope the plan per item.
func (c Config) Faults() *FaultPlan { return c.faults }

// setFaults swaps the active plan on an existing crossbar, adjusting
// the Newton budget override. BatchSolve uses this to arm the plan only
// for the batch items it covers.
func (x *Crossbar) setFaults(p *FaultPlan) {
	x.faults = p
	x.maxNewton = defaultMaxNewton
	if p != nil && p.MaxNewton > 0 {
		x.maxNewton = p.MaxNewton
	}
}
