package xbar

import (
	"fmt"

	"geniex/internal/linalg"
)

// Analytical is the paper's baseline model: the crossbar netlist with
// every device replaced by its low-bias linear conductance. The
// resulting network is linear in the drive voltages, so for a fixed
// conductance matrix the whole crossbar collapses to a distortion
// matrix A with
//
//	I_non-ideal = A · V
//
// (this is the matrix-inversion formulation used by CxDNN [9]). A is
// built column-by-column by solving the linear netlist for unit
// drives; afterwards every MVM is a single dense matrix-vector
// product, which is what makes the analytical model usable inside the
// functional simulator.
type Analytical struct {
	cfg Config
	a   *linalg.Dense // Cols×Rows distortion matrix
}

// NewAnalytical builds the analytical model of a crossbar programmed
// with conductances g. The cfg.NonLinear flag is ignored: the model is
// linear by definition.
func NewAnalytical(cfg Config, g *linalg.Dense) (*Analytical, error) {
	cfg.NonLinear = false
	xb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := xb.Program(g); err != nil {
		return nil, err
	}
	a := linalg.NewDense(cfg.Cols, cfg.Rows)
	drive := make([]float64, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		linalg.Fill(drive, 0)
		// Unit drive scaled to the supply keeps the solver in its
		// validated input range; linearity lets us rescale after.
		drive[i] = cfg.Vsupply
		sol, err := xb.Solve(drive)
		if err != nil {
			return nil, fmt.Errorf("xbar: analytical column %d: %w", i, err)
		}
		for j := 0; j < cfg.Cols; j++ {
			a.Set(j, i, sol.Currents[j]/cfg.Vsupply)
		}
	}
	return &Analytical{cfg: cfg, a: a}, nil
}

// Currents returns the model's output currents for drive voltages v.
func (m *Analytical) Currents(v []float64) []float64 {
	if len(v) != m.cfg.Rows {
		panic(fmt.Sprintf("xbar: analytical Currents with %d inputs for %d rows", len(v), m.cfg.Rows))
	}
	return m.a.MulVec(v)
}

// Matrix returns the Cols×Rows distortion matrix A (a copy).
func (m *Analytical) Matrix() *linalg.Dense { return m.a.Clone() }

// Config returns the design point the model was built for.
func (m *Analytical) Config() Config { return m.cfg }
