package xbar

import (
	"strings"
	"testing"

	"geniex/internal/linalg"
)

func TestWriteSPICEStructure(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(1)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	var b strings.Builder
	if err := WriteSPICE(&b, cfg, g, v); err != nil {
		t.Fatal(err)
	}
	deck := b.String()

	counts := map[string]int{
		"Vin":   cfg.Rows,
		"Rsrc":  cfg.Rows,
		"Rsnk":  cfg.Cols,
		"Gsel_": cfg.Rows * cfg.Cols,
		"Gmem_": cfg.Rows * cfg.Cols,
		"Rwr_":  cfg.Rows * (cfg.Cols - 1),
		"Rwc_":  (cfg.Rows - 1) * cfg.Cols,
	}
	for prefix, want := range counts {
		got := 0
		for _, line := range strings.Split(deck, "\n") {
			if strings.HasPrefix(line, prefix) {
				got++
			}
		}
		if got != want {
			t.Errorf("%s elements: %d, want %d", prefix, got, want)
		}
	}
	for _, want := range []string{".param v0=", ".op", ".end", ".print dc I(Rsnk0)"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q", want)
		}
	}
}

func TestWriteSPICELinearMode(t *testing.T) {
	cfg := smallConfig()
	cfg.NonLinear = false
	r := linalg.NewRNG(2)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	var b strings.Builder
	if err := WriteSPICE(&b, cfg, g, v); err != nil {
		t.Fatal(err)
	}
	deck := b.String()
	if strings.Contains(deck, "Gmem_") || !strings.Contains(deck, "Rmem_") {
		t.Error("linear deck should use resistors, not behavioural sources")
	}
}

func TestWriteSPICEDeterministic(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(3)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	var a, b strings.Builder
	if err := WriteSPICE(&a, cfg, g, v); err != nil {
		t.Fatal(err)
	}
	if err := WriteSPICE(&b, cfg, g, v); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("netlist not deterministic")
	}
}

func TestWriteSPICEErrors(t *testing.T) {
	cfg := smallConfig()
	var b strings.Builder
	if err := WriteSPICE(&b, cfg, linalg.NewDense(2, 2), make([]float64, cfg.Rows)); err == nil {
		t.Error("expected shape error")
	}
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	if err := WriteSPICE(&b, cfg, g, make([]float64, 1)); err == nil {
		t.Error("expected drive length error")
	}
	bad := cfg
	bad.Ron = -1
	if err := WriteSPICE(&b, bad, g, make([]float64, cfg.Rows)); err == nil {
		t.Error("expected config error")
	}
}
