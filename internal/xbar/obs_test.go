package xbar

import (
	"testing"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

func TestNewConfigValidatesOnce(t *testing.T) {
	cfg, err := NewConfig(16, 8,
		WithRon(50e3), WithOnOffRatio(10), WithVsupply(0.2),
		WithParasitics(400, 80, 2), WithPolicy(PolicyBestEffort), WithBatchWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rows != 16 || cfg.Cols != 8 || cfg.Ron != 50e3 || cfg.OnOffRatio != 10 ||
		cfg.Vsupply != 0.2 || cfg.Rsource != 400 || cfg.Policy != PolicyBestEffort ||
		cfg.BatchWorkers != 2 {
		t.Errorf("options not applied: %+v", cfg)
	}
	if _, err := NewConfig(0, 8); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewConfig(8, 8, WithBatchWorkers(-1)); err == nil {
		t.Error("negative BatchWorkers accepted")
	}
	if _, err := NewConfig(8, 8, WithOnOffRatio(0.5)); err == nil {
		t.Error("on/off ratio below 1 accepted")
	}
	if cfg2, err := NewConfig(8, 8, WithLinearDevices()); err != nil || cfg2.NonLinear {
		t.Errorf("WithLinearDevices: cfg=%+v err=%v", cfg2, err)
	}
}

// A circuit solve must land in the obs registry: solve count, latency
// and Newton-iteration histograms, and the accepting rescue rung.
func TestSolveRecordsObsMetrics(t *testing.T) {
	before := obs.Snapshot()

	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(8, 8)
	r := linalg.NewRNG(9)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 8)
	for i := range v {
		v[i] = cfg.Vsupply * r.Float64()
	}
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}

	after := obs.Snapshot()
	if d := after.Counters["xbar.solver.solves"] - before.Counters["xbar.solver.solves"]; d != 1 {
		t.Errorf("solve counter moved by %d, want 1", d)
	}
	if d := after.Histograms["xbar.solver.latency_seconds"].Count - before.Histograms["xbar.solver.latency_seconds"].Count; d != 1 {
		t.Errorf("latency histogram moved by %d, want 1", d)
	}
	ni := after.Histograms["xbar.solver.newton_iters"]
	if d := ni.Count - before.Histograms["xbar.solver.newton_iters"].Count; d != 1 {
		t.Errorf("newton histogram moved by %d, want 1", d)
	}
	if sol.NewtonIters > 0 && ni.Sum <= before.Histograms["xbar.solver.newton_iters"].Sum {
		t.Errorf("newton histogram sum did not grow (iters=%d)", sol.NewtonIters)
	}
	if d := after.Counters["xbar.solver.rung.newton"] - before.Counters["xbar.solver.rung.newton"]; d != 1 {
		t.Errorf("plain-newton rung counter moved by %d, want 1", d)
	}
}

// Disabling obs must stop the registry from moving without touching
// solver behaviour.
func TestSolveObsDisabled(t *testing.T) {
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	before := obs.Snapshot()

	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(4, 4)
	linalg.Fill(g.Data, cfg.Gon())
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := []float64{0.1, 0.1, 0.1, 0.1}
	if _, err := xb.Solve(v); err != nil {
		t.Fatal(err)
	}
	after := obs.Snapshot()
	if d := after.Counters["xbar.solver.solves"] - before.Counters["xbar.solver.solves"]; d != 0 {
		t.Errorf("disabled obs still counted %d solves", d)
	}
}

// Batch solves must record item outcomes in the registry.
func TestBatchRecordsObsMetrics(t *testing.T) {
	before := obs.Snapshot()

	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 6, 6
	g := linalg.NewDense(6, 6)
	r := linalg.NewRNG(11)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	vs := linalg.NewDense(3, 6)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	if _, _, err := BatchSolveReport(cfg, g, vs); err != nil {
		t.Fatal(err)
	}

	after := obs.Snapshot()
	if d := after.Counters["xbar.batch.calls"] - before.Counters["xbar.batch.calls"]; d != 1 {
		t.Errorf("batch call counter moved by %d, want 1", d)
	}
	if d := after.Counters["xbar.batch.items"] - before.Counters["xbar.batch.items"]; d != 3 {
		t.Errorf("batch item counter moved by %d, want 3", d)
	}
}
