package xbar

import (
	"math"
	"testing"

	"geniex/internal/linalg"
)

// smallConfig returns a fast 8×8 design point for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	return cfg
}

// randomLevels fills a conductance matrix with uniform random levels.
func randomLevels(cfg Config, r *linalg.RNG) *linalg.Dense {
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(r.Float64())
	}
	return g
}

func randomDrive(cfg Config, r *linalg.RNG) []float64 {
	v := make([]float64, cfg.Rows)
	for i := range v {
		v[i] = cfg.Vsupply * r.Float64()
	}
	return v
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.Ron = -1 },
		func(c *Config) { c.OnOffRatio = 1 },
		func(c *Config) { c.Rwire = 0 },
		func(c *Config) { c.Vsupply = 0 },
		func(c *Config) { c.SelectorVsat = 0 },
		func(c *Config) { c.RRAM.V0 = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestConductanceLevelRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for _, lv := range []float64{0, 0.25, 0.5, 0.75, 1} {
		g := cfg.ConductanceFromLevel(lv)
		if g < cfg.Goff() || g > cfg.Gon() {
			t.Errorf("level %v mapped outside window: %v", lv, g)
		}
		if back := cfg.LevelFromConductance(g); math.Abs(back-lv) > 1e-12 {
			t.Errorf("round trip %v -> %v", lv, back)
		}
	}
	// Clamping.
	if cfg.ConductanceFromLevel(-1) != cfg.Goff() || cfg.ConductanceFromLevel(2) != cfg.Gon() {
		t.Error("out-of-range levels not clamped")
	}
}

// With negligible parasitics and linear devices, the circuit must
// reproduce the ideal MVM almost exactly. This validates the whole MNA
// assembly against first principles.
func TestNearIdealMatchesIdealMVM(t *testing.T) {
	cfg := smallConfig()
	cfg.NonLinear = false
	cfg.Rsource, cfg.Rsink, cfg.Rwire = 1e-3, 1e-3, 1e-3
	r := linalg.NewRNG(1)
	g := randomLevels(cfg, r)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := randomDrive(cfg, r)
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	ideal := IdealCurrents(v, g)
	for j := range ideal {
		if rel := math.Abs(sol.Currents[j]-ideal[j]) / (ideal[j] + 1e-15); rel > 1e-4 {
			t.Errorf("col %d: circuit %v vs ideal %v (rel %v)", j, sol.Currents[j], ideal[j], rel)
		}
	}
}

// Parasitics can only lose current: each non-ideal column current must
// be below its ideal value for a linear network.
func TestParasiticsReduceCurrent(t *testing.T) {
	cfg := smallConfig()
	cfg.NonLinear = false
	r := linalg.NewRNG(2)
	g := randomLevels(cfg, r)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, cfg.Rows)
	linalg.Fill(v, cfg.Vsupply)
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	ideal := IdealCurrents(v, g)
	for j := range ideal {
		if sol.Currents[j] >= ideal[j] {
			t.Errorf("col %d: non-ideal %v not below ideal %v", j, sol.Currents[j], ideal[j])
		}
		if sol.Currents[j] <= 0 {
			t.Errorf("col %d: non-positive current %v", j, sol.Currents[j])
		}
	}
}

// The linear netlist must obey superposition: solving for v1+v2 equals
// the sum of individual solutions.
func TestLinearSuperposition(t *testing.T) {
	cfg := smallConfig()
	cfg.NonLinear = false
	r := linalg.NewRNG(3)
	g := randomLevels(cfg, r)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v1 := randomDrive(cfg, r)
	v2 := randomDrive(cfg, r)
	// Scale so the sum stays within the validated input range.
	for i := range v1 {
		v1[i] *= 0.5
		v2[i] *= 0.5
	}
	s1, err := xb.Solve(v1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := xb.Solve(v2)
	if err != nil {
		t.Fatal(err)
	}
	s12, err := xb.Solve(linalg.Add(v1, v2))
	if err != nil {
		t.Fatal(err)
	}
	for j := range s12.Currents {
		want := s1.Currents[j] + s2.Currents[j]
		if math.Abs(s12.Currents[j]-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("col %d: superposition broken: %v vs %v", j, s12.Currents[j], want)
		}
	}
}

// The Newton solver on the non-linear netlist must satisfy KCL: the
// current delivered by the sources equals the current absorbed by the
// sinks (no other path to ground exists).
func TestNonLinearKCL(t *testing.T) {
	cfg := smallConfig()
	cfg.Vsupply = 0.5 // stress the non-linearity
	r := linalg.NewRNG(4)
	g := randomLevels(cfg, r)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := randomDrive(cfg, r)
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	var inTotal float64
	for i := 0; i < cfg.Rows; i++ {
		inTotal += (v[i] - xb.NodeVoltage("row", i, 0)) / cfg.Rsource
	}
	outTotal := linalg.Sum(sol.Currents)
	if math.Abs(inTotal-outTotal) > 1e-9*(1+math.Abs(inTotal)) {
		t.Errorf("KCL violated: in %v, out %v", inTotal, outTotal)
	}
}

// Zero drive must produce zero currents through the non-linear solver.
func TestZeroDrive(t *testing.T) {
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := xb.Solve(make([]float64, cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range sol.Currents {
		if math.Abs(c) > 1e-15 {
			t.Errorf("col %d: current %v for zero drive", j, c)
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xb.Solve(make([]float64, cfg.Rows+1)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]float64, cfg.Rows)
	bad[0] = cfg.Vsupply * 2
	if _, err := xb.Solve(bad); err == nil {
		t.Error("expected over-voltage error")
	}
}

func TestProgramValidation(t *testing.T) {
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	linalg.Fill(g.Data, cfg.Gon()*2) // outside the window
	if err := xb.Program(g); err == nil {
		t.Error("expected window error")
	}
	if err := xb.Program(linalg.NewDense(2, 2)); err == nil {
		t.Error("expected shape error")
	}
}

// The analytical model must agree with the full circuit solver when
// the circuit is configured with linear devices (it is the same
// network, evaluated through the distortion matrix).
func TestAnalyticalMatchesLinearCircuit(t *testing.T) {
	cfg := smallConfig()
	cfg.NonLinear = false
	r := linalg.NewRNG(5)
	g := randomLevels(cfg, r)
	ana, err := NewAnalytical(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		v := randomDrive(cfg, r)
		want, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		got := ana.Currents(v)
		for j := range got {
			if math.Abs(got[j]-want.Currents[j]) > 1e-9*(1+math.Abs(want.Currents[j])) {
				t.Errorf("trial %d col %d: analytical %v vs circuit %v", trial, j, got[j], want.Currents[j])
			}
		}
	}
}

// Non-linear devices at elevated supply must deviate from the linear
// (analytical) prediction — this is the data-dependence the paper
// builds GENIEx to capture (Fig. 3).
func TestNonLinearityMatters(t *testing.T) {
	cfg := smallConfig()
	cfg.Vsupply = 0.5
	r := linalg.NewRNG(6)
	g := randomLevels(cfg, r)
	ana, err := NewAnalytical(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := make([]float64, cfg.Rows)
	linalg.Fill(v, cfg.Vsupply)
	nonlinear, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	linear := ana.Currents(v)
	var rel float64
	for j := range linear {
		rel += math.Abs(nonlinear.Currents[j]-linear[j]) / linear[j]
	}
	rel /= float64(len(linear))
	if rel < 0.005 {
		t.Errorf("non-linearity invisible: mean relative difference %v", rel)
	}
}

func TestNFAndRatio(t *testing.T) {
	cfg := smallConfig()
	full := float64(cfg.Rows) * cfg.Vsupply * cfg.Gon()
	ideal := []float64{full, full / 2, 0}
	non := []float64{full * 0.8, full / 2 * 0.9, 0}
	nf := NF(ideal, non, cfg)
	if math.Abs(nf[0]-0.2) > 1e-12 || math.Abs(nf[1]-0.1) > 1e-12 || nf[2] != 0 {
		t.Errorf("NF = %v", nf)
	}
	fr := Ratio(ideal, non, cfg)
	if math.Abs(fr[0]-1.25) > 1e-12 || nf[2] != 0 || fr[2] != 1 {
		t.Errorf("fR = %v", fr)
	}
	rec := ApplyRatio(ideal, fr)
	for j := range rec {
		if math.Abs(rec[j]-non[j]) > 1e-12 {
			t.Errorf("ApplyRatio[%d] = %v, want %v", j, rec[j], non[j])
		}
	}
}

func TestApplyRatioGuardsNonPositive(t *testing.T) {
	rec := ApplyRatio([]float64{1, 2}, []float64{-1, 0})
	if rec[0] != 1 || rec[1] != 2 {
		t.Errorf("ApplyRatio with bad ratios = %v", rec)
	}
}

// NF grows with crossbar size (paper Fig. 2b): bigger arrays mean
// longer lines and lower effective resistance.
func TestNFGrowsWithSize(t *testing.T) {
	var means []float64
	for _, n := range []int{4, 8, 16} {
		cfg := DefaultConfig()
		cfg.Rows, cfg.Cols = n, n
		cfg.NonLinear = false
		r := linalg.NewRNG(7)
		g := randomLevels(cfg, r)
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		v := make([]float64, cfg.Rows)
		linalg.Fill(v, cfg.Vsupply)
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		nf := NF(IdealCurrents(v, g), sol.Currents, cfg)
		means = append(means, linalg.Sum(nf)/float64(len(nf)))
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Errorf("NF means not increasing with size: %v", means)
	}
}

// NF shrinks with higher ON resistance (paper Fig. 2c).
func TestNFShrinksWithRon(t *testing.T) {
	var means []float64
	for _, ron := range []float64{50e3, 100e3, 300e3} {
		cfg := smallConfig()
		cfg.Ron = ron
		cfg.NonLinear = false
		r := linalg.NewRNG(8)
		g := randomLevels(cfg, r)
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		v := make([]float64, cfg.Rows)
		linalg.Fill(v, cfg.Vsupply)
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		nf := NF(IdealCurrents(v, g), sol.Currents, cfg)
		means = append(means, linalg.Sum(nf)/float64(len(nf)))
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Errorf("NF means not decreasing with Ron: %v", means)
	}
}

// NF shrinks as the ON/OFF ratio grows (paper Fig. 2d): a larger ratio
// raises the average cell resistance for the same Ron.
func TestNFShrinksWithOnOff(t *testing.T) {
	var means []float64
	for _, ratio := range []float64{2, 6, 10} {
		cfg := smallConfig()
		cfg.OnOffRatio = ratio
		cfg.NonLinear = false
		r := linalg.NewRNG(9)
		g := randomLevels(cfg, r)
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		v := make([]float64, cfg.Rows)
		linalg.Fill(v, cfg.Vsupply)
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		nf := NF(IdealCurrents(v, g), sol.Currents, cfg)
		means = append(means, linalg.Sum(nf)/float64(len(nf)))
	}
	if !(means[0] > means[1] && means[1] > means[2]) {
		t.Errorf("NF means not decreasing with ON/OFF ratio: %v", means)
	}
}

func TestBatchSolveMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(10)
	g := randomLevels(cfg, r)
	const batch = 6
	vs := linalg.NewDense(batch, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	got, err := BatchSolve(cfg, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < batch; b++ {
		sol, err := xb.Solve(vs.Row(b))
		if err != nil {
			t.Fatal(err)
		}
		for j := range sol.Currents {
			if math.Abs(got.At(b, j)-sol.Currents[j]) > 1e-12*(1+math.Abs(sol.Currents[j])) {
				t.Errorf("batch (%d,%d): %v vs %v", b, j, got.At(b, j), sol.Currents[j])
			}
		}
	}
}

func TestBatchSolveShapeError(t *testing.T) {
	cfg := smallConfig()
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	linalg.Fill(g.Data, cfg.Goff())
	if _, err := BatchSolve(cfg, g, linalg.NewDense(2, cfg.Rows+1)); err == nil {
		t.Error("expected shape error")
	}
}

func TestNFStatsPools(t *testing.T) {
	s := NFStats([][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if s.N != 4 {
		t.Errorf("pooled N = %d", s.N)
	}
	if math.Abs(s.Mean-0.25) > 1e-12 {
		t.Errorf("pooled mean = %v", s.Mean)
	}
}

// Determinism: the same config, conductances and drive produce
// identical currents across solver instances.
func TestSolverDeterminism(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(11)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	var ref []float64
	for trial := 0; trial < 2; trial++ {
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = sol.Currents
			continue
		}
		for j := range ref {
			if sol.Currents[j] != ref[j] {
				t.Errorf("col %d: %v vs %v", j, sol.Currents[j], ref[j])
			}
		}
	}
}

// meanNFNonLinear samples mean NF with the full non-linear device
// models (the regime of the paper's Fig. 2 sweeps).
func meanNFNonLinear(t *testing.T, mutate func(*Config)) float64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	mutate(&cfg)
	r := linalg.NewRNG(99)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for s := 0; s < 6; s++ {
		g := randomLevels(cfg, r)
		v := randomDrive(cfg, r)
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range NF(IdealCurrents(v, g), sol.Currents, cfg) {
			sum += f
			n++
		}
	}
	return sum / float64(n)
}

// With the calibrated device parameters the paper's Fig. 2 trends must
// hold for the full non-linear netlist, not just the linear one.
func TestNonLinearNFTrendWithSize(t *testing.T) {
	small := meanNFNonLinear(t, func(c *Config) { c.Rows, c.Cols = 8, 8 })
	large := meanNFNonLinear(t, func(c *Config) { c.Rows, c.Cols = 32, 32 })
	if !(small < large) {
		t.Errorf("non-linear NF not increasing with size: %v vs %v", small, large)
	}
}

func TestNonLinearNFTrendWithRon(t *testing.T) {
	low := meanNFNonLinear(t, func(c *Config) { c.Ron = 50e3 })
	high := meanNFNonLinear(t, func(c *Config) { c.Ron = 300e3 })
	if !(low > high) {
		t.Errorf("non-linear NF not decreasing with Ron: %v vs %v", low, high)
	}
}

func TestNonLinearNFTrendWithOnOff(t *testing.T) {
	low := meanNFNonLinear(t, func(c *Config) { c.OnOffRatio = 2 })
	high := meanNFNonLinear(t, func(c *Config) { c.OnOffRatio = 10 })
	if !(low > high) {
		t.Errorf("non-linear NF not decreasing with ON/OFF: %v vs %v", low, high)
	}
}

// Non-square crossbars must work end to end: the netlist, solver and
// metrics are all Rows×Cols generic.
func TestNonSquareCrossbar(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 6, 10
	cfg.NonLinear = false
	cfg.Rsource, cfg.Rsink, cfg.Rwire = 1e-3, 1e-3, 1e-3
	r := linalg.NewRNG(61)
	g := randomLevels(cfg, r)
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	v := randomDrive(cfg, r)
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Currents) != 10 {
		t.Fatalf("got %d output currents, want 10", len(sol.Currents))
	}
	ideal := IdealCurrents(v, g)
	for j := range ideal {
		if rel := math.Abs(sol.Currents[j]-ideal[j]) / (ideal[j] + 1e-15); rel > 1e-4 {
			t.Errorf("col %d: rel error %v", j, rel)
		}
	}
}

func TestNonSquareAnalytical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 5, 3
	r := linalg.NewRNG(67)
	g := randomLevels(cfg, r)
	ana, err := NewAnalytical(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	got := ana.Currents(randomDrive(cfg, r))
	if len(got) != 3 {
		t.Fatalf("analytical returned %d currents, want 3", len(got))
	}
	if m := ana.Matrix(); m.Rows != 3 || m.Cols != 5 {
		t.Fatalf("distortion matrix is %dx%d, want 3x5", m.Rows, m.Cols)
	}
}

// Driver power must be positive for any non-zero drive and scale with
// supply voltage roughly quadratically (resistive network).
func TestSolutionPower(t *testing.T) {
	powerAt := func(vs float64) float64 {
		cfg := smallConfig()
		cfg.NonLinear = false
		cfg.Vsupply = vs
		r := linalg.NewRNG(71)
		g := randomLevels(cfg, r)
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(g); err != nil {
			t.Fatal(err)
		}
		v := make([]float64, cfg.Rows)
		linalg.Fill(v, cfg.Vsupply)
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		return sol.Power
	}
	p1 := powerAt(0.25)
	p2 := powerAt(0.5)
	if p1 <= 0 {
		t.Fatalf("non-positive power %v", p1)
	}
	if ratio := p2 / p1; math.Abs(ratio-4) > 0.2 {
		t.Errorf("power ratio at 2x voltage = %v, want ~4 (linear network)", ratio)
	}
	// Zero drive → zero power.
	cfg := smallConfig()
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := xb.Solve(make([]float64, cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Power != 0 {
		t.Errorf("zero drive dissipates %v", sol.Power)
	}
}
