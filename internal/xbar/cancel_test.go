package xbar

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// countdownCtx is a deterministic cancellation source: Err returns nil
// for the first n calls and context.Canceled afterwards. It lets the
// tests cancel mid-Newton without sleeping on wall-clock timers.
type countdownCtx struct {
	n atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{}
	c.n.Store(n)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func cancelTestCrossbar(t *testing.T) *Crossbar {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := linalg.NewDense(8, 8)
	r := linalg.NewRNG(7)
	for i := range g.Data {
		g.Data[i] = cfg.Goff() + r.Float64()*(cfg.Gon()-cfg.Goff())
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	return xb
}

func cancelTestInput(xb *Crossbar) []float64 {
	v := make([]float64, xb.cfg.Rows)
	for i := range v {
		v[i] = xb.cfg.Vsupply
	}
	return v
}

// A background context must behave exactly like the context-free path.
func TestSolveContextBackground(t *testing.T) {
	xb := cancelTestCrossbar(t)
	v := cancelTestInput(xb)
	want, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xb.SolveContext(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Currents {
		if got.Currents[i] != want.Currents[i] {
			t.Fatalf("column %d: SolveContext %g != Solve %g", i, got.Currents[i], want.Currents[i])
		}
	}
}

// Cancellation mid-Newton must abort the solve with an error wrapping
// the context error and must not fall through to the recovery ladder —
// a dead caller gets no rescue rungs.
func TestSolveContextCancelledMidNewton(t *testing.T) {
	xb := cancelTestCrossbar(t)
	v := cancelTestInput(xb)
	for _, checks := range []int64{0, 1, 2} {
		sol, err := xb.SolveContext(newCountdownCtx(checks), v)
		if err == nil {
			t.Fatalf("checks=%d: cancelled solve succeeded", checks)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("checks=%d: error %v does not wrap context.Canceled", checks, err)
		}
		if sol != nil {
			t.Fatalf("checks=%d: cancelled solve returned a solution", checks)
		}
	}
}

// A deadline that has already passed must be honored before any Newton
// work, and the failure must surface as context.DeadlineExceeded.
func TestSolveContextDeadlineExceeded(t *testing.T) {
	xb := cancelTestCrossbar(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := xb.SolveContext(ctx, cancelTestInput(xb))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// Cancelled solves must be observable: the dedicated cancelled counter
// advances while the solve/failure counters stay flat — cancellation
// is a caller outcome, not a solver health event.
func TestSolveCancellationCounters(t *testing.T) {
	xb := cancelTestCrossbar(t)
	v := cancelTestInput(xb)
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	solves0 := mSolves.Load()
	fail0 := mSolveFailures.Load()
	cancel0 := mSolveCancelled.Load()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := xb.SolveContext(ctx, v); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if d := mSolves.Load() - solves0; d != 0 {
		t.Errorf("solve counter advanced by %d during a cancelled solve", d)
	}
	if d := mSolveFailures.Load() - fail0; d != 0 {
		t.Errorf("failure counter advanced by %d during a cancelled solve", d)
	}
	if d := mSolveCancelled.Load() - cancel0; d != 1 {
		t.Errorf("cancelled counter advanced by %d, want 1", d)
	}
}

// Batch solving with a cancelled context must fail the whole call;
// remaining items are never attempted and never retried.
func TestBatchSolveContextCancelled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g := linalg.NewDense(8, 8)
	r := linalg.NewRNG(9)
	for i := range g.Data {
		g.Data[i] = cfg.Goff() + r.Float64()*(cfg.Gon()-cfg.Goff())
	}
	bs, err := NewBatchSolver(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	vs := linalg.NewDense(4, 8)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply
	}
	out := linalg.NewDense(4, 8)

	if _, err := bs.SolveReportIntoContext(context.Background(), out, vs); err != nil {
		t.Fatalf("background-context batch failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bs.SolveReportIntoContext(ctx, out, vs); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
