package xbar

import (
	"geniex/internal/linalg"
)

// opFactor is the direct factorization of the MNA system linearized at
// the programmed zero-bias operating point. Tile conductances are
// frozen between Program calls — only the drive voltages change — so
// the linear part of every solve on this programming is the same
// system, and it factors exactly along the netlist's structure:
//
//  1. Every mid node sits between exactly two elements (selector and
//     cell), so it eliminates in closed form, leaving the series
//     conductance gs = gsel·gcell/(gsel+gcell) between its row and
//     column node.
//  2. Each word line is then a tridiagonal chain over its row nodes,
//     coupled to the column nodes only through diag(gs) — eliminating
//     it is one LDLᵀ per row.
//  3. What remains is a symmetric block tridiagonal system over the
//     bit-line levels: dense Cols×Cols Schur-complement blocks per
//     word-line level, −gw·I between adjacent levels.
//
// Factoring costs O(Rows·Cols³) once per Program; each subsequent
// solve is O(Rows·Cols²) of pure back-substitution. The factor is
// immutable after construction and safe to share across a BatchSolver
// pool — per-instance scratch lives in factorScratch.
//
// It serves two roles: solving the linearized system at the programmed
// operating point to seed Newton (replacing the flat-zero cold start —
// the seed equals the first cold Newton iterate, computed directly),
// and preconditioning the inner CG solves of the remaining Newton
// updates.
type opFactor struct {
	rows, cols int
	gsrc       float64
	gsel       float64   // selector zero-bias conductance (shared element)
	gcell      []float64 // per-cell RRAM zero-bias conductance, row-major
	gs         []float64 // per-cell series conductance, row-major

	rowTri []*linalg.Tridiag    // word-line chain factors, one per row
	col    *linalg.BlockTridiag // bit-line level system factor
}

// factorScratch is the per-Crossbar workspace for opFactor solves. The
// factor itself is shared and read-only; every instance brings its
// own scratch.
type factorScratch struct {
	b   []float64 // full 3·R·C right-hand side for seed solves
	y   []float64 // per-row tridiagonal solve buffer (Cols)
	tmp []float64 // block-tridiagonal solve scratch (Cols)
}

func newFactorScratch(cfg Config) *factorScratch {
	return &factorScratch{
		b:   make([]float64, 3*cfg.Rows*cfg.Cols),
		y:   make([]float64, cfg.Cols),
		tmp: make([]float64, cfg.Cols),
	}
}

// buildFactor factors the linearized MNA system for the current
// programming. It fails only on a non-positive-definite reduction,
// which a physical conductance matrix cannot produce; callers treat
// failure as "fall back to cold starts".
func (x *Crossbar) buildFactor() (*opFactor, error) {
	cfg := x.cfg
	R, C := cfg.Rows, cfg.Cols
	gw := 1 / cfg.Rwire
	f := &opFactor{
		rows:  R,
		cols:  C,
		gsrc:  1 / cfg.Rsource,
		gsel:  x.sel.Conductance(0),
		gcell: make([]float64, R*C),
		gs:    make([]float64, R*C),
	}
	for k, cell := range x.cell {
		gc := cell.Conductance(0)
		f.gcell[k] = gc
		f.gs[k] = f.gsel * gc / (f.gsel + gc)
	}

	// Word-line chains: tridiagonal over the row nodes of each row.
	diag := make([]float64, C)
	off := make([]float64, max(C-1, 0))
	for i := range off {
		off[i] = -gw
	}
	f.rowTri = make([]*linalg.Tridiag, R)
	for i := 0; i < R; i++ {
		for j := 0; j < C; j++ {
			deg := 0
			if j > 0 {
				deg++
			}
			if j+1 < C {
				deg++
			}
			diag[j] = gw*float64(deg) + f.gs[i*C+j]
			if j == 0 {
				diag[j] += f.gsrc
			}
		}
		t, err := linalg.FactorTridiag(diag, off)
		if err != nil {
			return nil, err
		}
		f.rowTri[i] = t
	}

	// Bit-line levels: dense Schur-complement blocks
	// D_i = diag(cdiag_i) − diag(gs_i)·A_i⁻¹·diag(gs_i), with −gw·I
	// between adjacent levels.
	gsnk := 1 / cfg.Rsink
	blocks := make([]*linalg.Dense, R)
	offBlocks := make([][]float64, max(R-1, 0))
	col := make([]float64, C)
	for i := 0; i < R; i++ {
		d := linalg.NewDense(C, C)
		for j := 0; j < C; j++ {
			deg := 0
			if i > 0 {
				deg++
			}
			if i+1 < R {
				deg++
			}
			cd := gw*float64(deg) + f.gs[i*C+j]
			if i == R-1 {
				cd += gsnk
			}
			d.Set(j, j, cd)
		}
		for k := 0; k < C; k++ {
			linalg.Fill(col, 0)
			col[k] = f.gs[i*C+k]
			f.rowTri[i].SolveInto(col, col)
			for j := 0; j < C; j++ {
				d.Data[j*C+k] -= f.gs[i*C+j] * col[j]
			}
		}
		blocks[i] = d
		if i+1 < R {
			e := make([]float64, C)
			linalg.Fill(e, -gw)
			offBlocks[i] = e
		}
	}
	bt, err := linalg.FactorBlockTridiag(blocks, offBlocks)
	if err != nil {
		return nil, err
	}
	f.col = bt
	return f, nil
}

// solveInto solves J₀·out = b for the full 3·R·C node vector, where J₀
// is the MNA Jacobian at the programmed zero-bias operating point. out
// may alias b. Allocation-free; safe for concurrent use with distinct
// scratch.
func (f *opFactor) solveInto(out, b []float64, ws *factorScratch) {
	R, C := f.rows, f.cols
	RC := R * C
	// Mid-node reduction: vm = (b_m + gsel·vr + gcell·vc)/(gsel+gcell)
	// folds b_m into the row and column right-hand sides.
	for k := 0; k < RC; k++ {
		gt := f.gsel + f.gcell[k]
		bm := b[RC+k]
		out[k] = b[k] + f.gsel/gt*bm
		out[2*RC+k] = b[2*RC+k] + f.gcell[k]/gt*bm
		out[RC+k] = bm
	}
	// Row elimination: fold A_i⁻¹·br_i into the column rhs.
	for i := 0; i < R; i++ {
		f.rowTri[i].SolveInto(ws.y, out[i*C:(i+1)*C])
		bc := out[2*RC+i*C : 2*RC+(i+1)*C]
		for j := 0; j < C; j++ {
			bc[j] += f.gs[i*C+j] * ws.y[j]
		}
	}
	// Bit-line block solve, in place.
	vc := out[2*RC : 3*RC]
	f.col.SolveInto(vc, vc, ws.tmp)
	// Back-substitute the row nodes: vr_i = A_i⁻¹(br_i + gs_i∘vc_i).
	for i := 0; i < R; i++ {
		vr := out[i*C : (i+1)*C]
		for j := 0; j < C; j++ {
			ws.y[j] = vr[j] + f.gs[i*C+j]*vc[i*C+j]
		}
		f.rowTri[i].SolveInto(vr, ws.y)
	}
	// Recover the mid nodes.
	for k := 0; k < RC; k++ {
		gt := f.gsel + f.gcell[k]
		out[RC+k] = (out[RC+k] + f.gsel*out[k] + f.gcell[k]*out[2*RC+k]) / gt
	}
}

// seedInto writes the Newton seed for drive vector v into volt: the
// solution of the linearized network, whose only source injections are
// the Norton drive currents gsrc·v_i at each row head. Because every
// device law has I(0) = 0, the companion sources vanish at the zero
// state, making this exactly the system the first cold Newton update
// solves — the seed replaces that update (and its CG solve) with
// direct back-substitution.
func (f *opFactor) seedInto(volt, v []float64, ws *factorScratch) {
	linalg.Fill(ws.b, 0)
	for i := 0; i < f.rows; i++ {
		ws.b[i*f.cols] = f.gsrc * v[i]
	}
	f.solveInto(volt, ws.b, ws)
}

// factorPrecond adapts an opFactor to linalg.Preconditioner: M = J₀,
// the exact Jacobian at the operating point. J₀ is SPD (it is the
// conductance Laplacian plus positive source/sink terms), and stays
// close to the Jacobian at nearby iterates, so the inner CG solves of
// the seeded Newton rung converge in a handful of iterations instead
// of O(√cond) Jacobi-preconditioned ones.
type factorPrecond struct {
	f  *opFactor
	ws *factorScratch
}

func (p *factorPrecond) PrecondInto(z, r []float64) { p.f.solveInto(z, r, p.ws) }
