package xbar

import (
	"math"
	"testing"

	"geniex/internal/linalg"
)

func midLevels(cfg Config) *linalg.Dense {
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	linalg.Fill(g.Data, cfg.ConductanceFromLevel(0.5))
	return g
}

func TestVariationValidate(t *testing.T) {
	good := []Variation{{}, {Sigma: 0.1}, {StuckOn: 0.1, StuckOff: 0.2}}
	for _, v := range good {
		if err := v.Validate(); err != nil {
			t.Errorf("%+v invalid: %v", v, err)
		}
	}
	bad := []Variation{{Sigma: -1}, {StuckOn: -0.1}, {StuckOn: 0.6, StuckOff: 0.6}}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("%+v should be invalid", v)
		}
	}
}

func TestVariationZeroIsIdentity(t *testing.T) {
	cfg := smallConfig()
	g := midLevels(cfg)
	out, err := Variation{Seed: 1}.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if out.Data[i] != g.Data[i] {
			t.Fatalf("zero variation changed cell %d", i)
		}
	}
}

func TestVariationStaysInWindow(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(2)
	g := randomLevels(cfg, r)
	out, err := Variation{Sigma: 0.5, StuckOn: 0.05, StuckOff: 0.05, Seed: 3}.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v < cfg.Goff() || v > cfg.Gon() {
			t.Fatalf("cell %d conductance %v outside window", i, v)
		}
	}
}

func TestVariationDeterministic(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(4)
	g := randomLevels(cfg, r)
	v := Variation{Sigma: 0.2, Seed: 5}
	a, err := v.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different perturbations")
		}
	}
}

func TestVariationPerturbs(t *testing.T) {
	cfg := smallConfig()
	g := midLevels(cfg)
	out, err := Variation{Sigma: 0.3, Seed: 7}.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range g.Data {
		if out.Data[i] != g.Data[i] {
			changed++
		}
	}
	if changed < len(g.Data)/2 {
		t.Errorf("only %d/%d cells perturbed", changed, len(g.Data))
	}
}

func TestStuckAtRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 64, 64 // enough cells for rate statistics
	g := midLevels(cfg)
	out, err := Variation{StuckOn: 0.1, StuckOff: 0.2, Seed: 11}.Apply(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var on, off int
	for _, v := range out.Data {
		switch v {
		case cfg.Gon():
			on++
		case cfg.Goff():
			off++
		}
	}
	n := float64(len(out.Data))
	if r := float64(on) / n; math.Abs(r-0.1) > 0.03 {
		t.Errorf("stuck-on rate %.3f, want ~0.10", r)
	}
	// Stuck-off draws happen only on the cells not already stuck on,
	// so the expected rate is 0.2·(1−0.1) = 0.18.
	if r := float64(off) / n; math.Abs(r-0.18) > 0.03 {
		t.Errorf("stuck-off rate %.3f, want ~0.18", r)
	}
}

// Variation must worsen MVM fidelity: NF spread (|NF|) grows with
// sigma because the realized conductances differ from the intent.
func TestVariationIncreasesNFSpread(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(13)
	g := randomLevels(cfg, r)
	v := make([]float64, cfg.Rows)
	linalg.Fill(v, cfg.Vsupply)

	spread := func(sigma float64) float64 {
		pert, err := Variation{Sigma: sigma, Seed: 17}.Apply(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := xb.Program(pert); err != nil {
			t.Fatal(err)
		}
		sol, err := xb.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		// NF against the intended matrix.
		nf := NF(IdealCurrents(v, g), sol.Currents, cfg)
		var sum float64
		for _, f := range nf {
			sum += math.Abs(f)
		}
		return sum / float64(len(nf))
	}
	clean := spread(0)
	noisy := spread(0.4)
	if noisy <= clean {
		t.Errorf("variation did not increase NF spread: %v vs %v", noisy, clean)
	}
}
