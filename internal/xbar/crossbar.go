package xbar

import (
	"fmt"

	"geniex/internal/device"
	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// Crossbar is a programmed crossbar instance ready to solve MVMs at
// circuit level. It is not safe for concurrent use; use BatchSolve for
// parallel workloads (it clones per worker).
type Crossbar struct {
	cfg Config
	g   *linalg.Dense // programmed low-bias conductances, Rows×Cols

	sel  device.Element   // access device, shared by all cells
	cell []device.Element // RRAM per cell, row-major

	pattern *linalg.Pattern
	coords  []linalg.Coord
	ws      *linalg.CGWorkspace
	volt    []float64 // node voltages; reused as Newton/warm start
	rhs     []float64
	delta   []float64
	prev    []float64 // iterate before the last Newton update
	step    []float64 // last full Newton step (for damped backtracking)
	res     []float64 // KCL residual scratch
	best    []float64 // lowest-residual iterate (best-effort reporting)

	// newton iteration controls
	maxNewton int
	tolV      float64

	// Per-programming factorization cache (see factor.go). fact is
	// built lazily on the first non-cold solve after a Program and
	// invalidated by the next one; factScr is this instance's scratch;
	// precond wraps both for the inner CG solves. activePrecond is
	// non-nil only during the seeded rung-0 attempt — recovery rungs
	// keep the legacy Jacobi path.
	fact          *opFactor
	factScr       *factorScratch
	factErr       bool // factor build failed; cold-start until reprogrammed
	precond       *factorPrecond
	activePrecond *factorPrecond
	// warmOK marks x.volt as a converged solution of the current
	// programming, usable as a StartWarm starting point.
	warmOK bool

	// faults is the active test-only fault-injection plan (usually nil).
	faults *FaultPlan
}

// Node numbering: for cell (i, j) in a Rows×Cols array,
//
//	row node  r(i,j) = i·Cols + j        (word-line segment)
//	mid node  m(i,j) = NM + i·Cols + j   (between selector and RRAM)
//	col node  c(i,j) = 2NM + i·Cols + j  (bit-line segment)
//
// The word-line driver connects through Rsource to r(i,0); bit lines
// are sensed at virtual ground through Rsink below c(Rows-1,j).
func (x *Crossbar) rNode(i, j int) int { return i*x.cfg.Cols + j }
func (x *Crossbar) mNode(i, j int) int {
	return x.cfg.Rows*x.cfg.Cols + i*x.cfg.Cols + j
}
func (x *Crossbar) cNode(i, j int) int {
	return 2*x.cfg.Rows*x.cfg.Cols + i*x.cfg.Cols + j
}
func (x *Crossbar) numNodes() int { return 3 * x.cfg.Rows * x.cfg.Cols }

// New creates a crossbar for the given design point with every cell
// programmed to Goff. Call Program to load a conductance matrix.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	x := &Crossbar{
		cfg:       cfg,
		sel:       newSelector(cfg),
		maxNewton: defaultMaxNewton,
		tolV:      1e-10,
	}
	x.setFaults(cfg.faults)
	n := x.numNodes()
	x.ws = linalg.NewCGWorkspace(n)
	x.volt = make([]float64, n)
	x.rhs = make([]float64, n)
	x.delta = make([]float64, n)
	x.prev = make([]float64, n)
	x.step = make([]float64, n)
	x.res = make([]float64, n)
	x.best = make([]float64, n)

	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	linalg.Fill(g.Data, cfg.Goff())
	if err := x.Program(g); err != nil {
		return nil, err
	}
	// Assemble once to freeze the sparsity pattern; subsequent Newton
	// iterations only update values.
	x.buildCoords(make([]float64, n))
	x.pattern = linalg.NewPattern(n, x.coords)
	return x, nil
}

func newSelector(cfg Config) device.Element {
	gon := cfg.SelectorGonFactor / cfg.Ron
	if cfg.NonLinear {
		return device.NewSelector(gon, cfg.SelectorVsat)
	}
	return device.NewLinear(gon)
}

// Config returns the design point of this crossbar.
func (x *Crossbar) Config() Config { return x.cfg }

// Program loads a conductance matrix (siemens). Values must lie within
// [Goff, Gon] up to a small tolerance; out-of-window values are an
// error rather than silently clamped, since they indicate a bug in the
// caller's weight mapping.
//
// Programming is calibrated the way closed-loop write-verify hardware
// does it: the stored RRAM state is chosen so that the series
// combination of access device and RRAM has the target low-bias
// conductance. Without this, the access device's on-resistance would
// shift every weight systematically, which a real programming loop
// compensates for.
func (x *Crossbar) Program(g *linalg.Dense) error {
	if g.Rows != x.cfg.Rows || g.Cols != x.cfg.Cols {
		return fmt.Errorf("xbar: Program with %dx%d matrix on %dx%d crossbar",
			g.Rows, g.Cols, x.cfg.Rows, x.cfg.Cols)
	}
	prog := g.Clone()
	// Conductance-level faults (stuck cells) apply to the programmed
	// copy: the caller's intended matrix is untouched, but the array —
	// and everything solved on it — sees the faulted values.
	if _, err := x.faults.applyStuck(prog, x.cfg); err != nil {
		return err
	}
	lo, hi := x.cfg.Goff(), x.cfg.Gon()
	slack := 1e-9 * hi
	gsel := x.cfg.SelectorGonFactor / x.cfg.Ron
	cells := make([]device.Element, len(prog.Data))
	for idx, gv := range prog.Data {
		if gv < lo-slack || gv > hi+slack {
			return fmt.Errorf("xbar: conductance %g outside window [%g, %g] at cell %d", gv, lo, hi, idx)
		}
		// Series calibration: 1/gCell = 1/gv − 1/gsel. The selector is
		// SelectorGonFactor× more conductive than Gon, so gCell stays
		// positive by construction.
		gCell := 1 / (1/gv - 1/gsel)
		if x.cfg.NonLinear {
			cells[idx] = device.NewRRAM(gCell, x.cfg.RRAM)
		} else {
			cells[idx] = device.NewLinear(gCell)
		}
	}
	x.g = prog
	x.cell = cells
	// Reprogramming (including FaultPlan stuck-at application and
	// nonideal re-lowering, which both arrive through Program)
	// invalidates the operating-point factorization and any warm state.
	if x.fact != nil {
		x.fact = nil
		x.precond = nil
		if obs.Enabled() {
			mFactorInvalidations.Inc()
		}
	}
	x.activePrecond = nil
	x.factErr = false
	x.warmOK = false
	return nil
}

// ensureFactor returns the cached operating-point factorization,
// building it on first use after a Program. It returns nil when the
// configuration forbids it (StartCold) or when a build failed — the
// caller then falls back to the legacy cold start.
func (x *Crossbar) ensureFactor() *opFactor {
	if x.cfg.Start == StartCold || x.factErr {
		return nil
	}
	if x.fact == nil {
		f, err := x.buildFactor()
		if err != nil {
			x.factErr = true
			if obs.Enabled() {
				mFactorBuildFailures.Inc()
			}
			return nil
		}
		x.adoptFactor(f)
		if obs.Enabled() {
			mFactorBuilds.Inc()
		}
	}
	return x.fact
}

// adoptFactor installs a factorization — built here or shared by a
// BatchSolver pool — with this instance's own scratch.
func (x *Crossbar) adoptFactor(f *opFactor) {
	x.fact = f
	if x.factScr == nil {
		x.factScr = newFactorScratch(x.cfg)
	}
	x.precond = &factorPrecond{f: f, ws: x.factScr}
}

// Conductances returns a copy of the programmed conductance matrix.
func (x *Crossbar) Conductances() *linalg.Dense { return x.g.Clone() }

// buildCoords assembles the Newton-linearized conductance stamp for
// the current node voltage estimate volt, filling x.coords and x.rhs.
// The triplet order is deterministic so a Pattern can reuse it.
func (x *Crossbar) buildCoords(volt []float64) {
	cfg := x.cfg
	x.coords = x.coords[:0]
	linalg.Fill(x.rhs, 0)
	gw := 1 / cfg.Rwire
	gsrc := 1 / cfg.Rsource
	gsnk := 1 / cfg.Rsink

	stamp2 := func(g float64, an, bn int) {
		x.coords = append(x.coords,
			linalg.Coord{Row: an, Col: an, Val: g},
			linalg.Coord{Row: bn, Col: bn, Val: g},
			linalg.Coord{Row: an, Col: bn, Val: -g},
			linalg.Coord{Row: bn, Col: an, Val: -g},
		)
	}

	// Word-line wire segments.
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j+1 < cfg.Cols; j++ {
			stamp2(gw, x.rNode(i, j), x.rNode(i, j+1))
		}
	}
	// Bit-line wire segments.
	for j := 0; j < cfg.Cols; j++ {
		for i := 0; i+1 < cfg.Rows; i++ {
			stamp2(gw, x.cNode(i, j), x.cNode(i+1, j))
		}
	}
	// Source resistances: Norton equivalent of the word-line driver.
	// The drive voltage enters through the RHS during Solve.
	for i := 0; i < cfg.Rows; i++ {
		n := x.rNode(i, 0)
		x.coords = append(x.coords, linalg.Coord{Row: n, Col: n, Val: gsrc})
	}
	// Sink resistances to virtual ground at the bottom of each column.
	for j := 0; j < cfg.Cols; j++ {
		n := x.cNode(cfg.Rows-1, j)
		x.coords = append(x.coords, linalg.Coord{Row: n, Col: n, Val: gsnk})
	}
	// Devices: selector between row and mid node, RRAM between mid and
	// column node. Newton companion model: the element behaves as a
	// conductance g = dI/dV at the present branch voltage plus a
	// current source Ieq = I(v0) − g·v0.
	for i := 0; i < cfg.Rows; i++ {
		for j := 0; j < cfg.Cols; j++ {
			rn, mn, cn := x.rNode(i, j), x.mNode(i, j), x.cNode(i, j)
			x.stampElement(x.sel, rn, mn, volt)
			x.stampElement(x.cell[i*cfg.Cols+j], mn, cn, volt)
		}
	}
}

func (x *Crossbar) stampElement(e device.Element, an, bn int, volt []float64) {
	v0 := volt[an] - volt[bn]
	g := e.Conductance(v0)
	ieq := e.Current(v0) - g*v0
	x.coords = append(x.coords,
		linalg.Coord{Row: an, Col: an, Val: g},
		linalg.Coord{Row: bn, Col: bn, Val: g},
		linalg.Coord{Row: an, Col: bn, Val: -g},
		linalg.Coord{Row: bn, Col: an, Val: -g},
	)
	x.rhs[an] -= ieq
	x.rhs[bn] += ieq
}

// NodeVoltage reports the solved voltage of an internal node; kind is
// "row", "mid" or "col". Intended for tests and debugging.
func (x *Crossbar) NodeVoltage(kind string, i, j int) float64 {
	switch kind {
	case "row":
		return x.volt[x.rNode(i, j)]
	case "mid":
		return x.volt[x.mNode(i, j)]
	case "col":
		return x.volt[x.cNode(i, j)]
	}
	panic("xbar: unknown node kind " + kind)
}

// IdealCurrents returns the error-free MVM I_j = Σ_i V_i·G_ij. It
// allocates its result and delegates to IdealCurrentsInto.
func IdealCurrents(v []float64, g *linalg.Dense) []float64 {
	out := make([]float64, g.Cols)
	IdealCurrentsInto(out, v, g)
	return out
}

// IdealCurrentsInto computes the error-free MVM into dst (length
// Cols), overwriting its contents.
func IdealCurrentsInto(dst []float64, v []float64, g *linalg.Dense) {
	if len(v) != g.Rows {
		panic(fmt.Sprintf("xbar: IdealCurrents with %d inputs for %d rows", len(v), g.Rows))
	}
	if len(dst) != g.Cols {
		panic(fmt.Sprintf("xbar: IdealCurrents into %d outputs for %d cols", len(dst), g.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := g.Row(i)
		for j, gij := range row {
			dst[j] += vi * gij
		}
	}
}
