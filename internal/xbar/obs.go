package xbar

import (
	"errors"
	"time"

	"geniex/internal/obs"
)

// Metric handles for the circuit solver, registered once in the
// process-wide obs registry. The full catalog is documented in
// DESIGN.md §7.
var (
	mSolves         = obs.NewCounter("xbar.solver.solves")
	mSolveFailures  = obs.NewCounter("xbar.solver.failures")
	mSolveCancelled = obs.NewCounter("xbar.solver.cancelled")
	mSolveLatency   = obs.NewHistogram("xbar.solver.latency_seconds", obs.LatencyBuckets)
	mNewtonIters    = obs.NewHistogram("xbar.solver.newton_iters", obs.IterBuckets)
	mCGIters        = obs.NewHistogram("xbar.solver.cg_iters", obs.IterBuckets)
	mDampedSteps    = obs.NewCounter("xbar.solver.damped_steps")
	mCGBreakdowns   = obs.NewCounter("xbar.solver.cg_breakdowns")
	mLUFallbacks    = obs.NewCounter("xbar.solver.lu_fallbacks")
	mUnconverged    = obs.NewCounter("xbar.solver.unconverged")

	// Rescue-rung counters: a categorical histogram over which ladder
	// rung produced each accepted solution.
	mRungNewton     = obs.NewCounter("xbar.solver.rung.newton")
	mRungDamped     = obs.NewCounter("xbar.solver.rung.damped")
	mRungSourceStep = obs.NewCounter("xbar.solver.rung.source_step")
	mRungBestEffort = obs.NewCounter("xbar.solver.rung.best_effort")

	// Factorization-cache counters: builds/invalidations follow the
	// Program lifecycle, reuses counts solves that consumed a cached
	// factor (as seed, warm-start precondition, or both), newton_saved
	// counts Newton updates replaced by direct factorized solves (one
	// per seeded start — the first cold update computes the same linear
	// solve iteratively), warm_starts counts StartWarm solves that
	// reused the previous converged state, and reseeds counts warm
	// starts that failed rung 0 and fell back to the factorization
	// seed before any recovery rung ran.
	mFactorBuilds        = obs.NewCounter("xbar.solver.factor.builds")
	mFactorInvalidations = obs.NewCounter("xbar.solver.factor.invalidations")
	mFactorBuildFailures = obs.NewCounter("xbar.solver.factor.build_failures")
	mFactorReuses        = obs.NewCounter("xbar.solver.factor.reuses")
	mFactorNewtonSaved   = obs.NewCounter("xbar.solver.factor.newton_saved")
	mFactorWarmStarts    = obs.NewCounter("xbar.solver.factor.warm_starts")
	mFactorReseeds       = obs.NewCounter("xbar.solver.factor.reseeds")

	mBatchCalls   = obs.NewCounter("xbar.batch.calls")
	mBatchItems   = obs.NewCounter("xbar.batch.items")
	mBatchRetried = obs.NewCounter("xbar.batch.retried")
	mBatchFailed  = obs.NewCounter("xbar.batch.failed")
	mBatchLatency = obs.NewHistogram("xbar.batch.latency_seconds", obs.LatencyBuckets)
)

// recordSolve folds one completed (or failed) circuit solve into the
// registry. The caller gates on obs.Enabled so a disabled registry
// costs one branch per solve.
func recordSolve(sol *Solution, err error, start time.Time) {
	mSolves.Inc()
	mSolveLatency.ObserveSince(start)
	if err != nil {
		mSolveFailures.Inc()
		var nde *NewtonDivergedError
		if errors.As(err, &nde) {
			mNewtonIters.Observe(float64(nde.Iters))
		}
		return
	}
	if sol.Seeded || sol.WarmStarted {
		mFactorReuses.Inc()
	}
	if sol.Seeded {
		mFactorNewtonSaved.Inc()
	}
	if sol.WarmStarted {
		mFactorWarmStarts.Inc()
	}
	mNewtonIters.Observe(float64(sol.NewtonIters))
	mCGIters.Observe(float64(sol.CGIters))
	mDampedSteps.Add(int64(sol.DampedSteps))
	mCGBreakdowns.Add(int64(sol.CGBreakdowns))
	mLUFallbacks.Add(int64(sol.LUFallbacks))
	if !sol.Converged {
		mUnconverged.Inc()
	}
	switch sol.Recovery {
	case "":
		mRungNewton.Inc()
	case "damped":
		mRungDamped.Inc()
	case "source-step":
		mRungSourceStep.Inc()
	case "best-effort":
		mRungBestEffort.Inc()
	}
}

// recordBatch folds one BatchSolver call into the registry.
func recordBatch(rep *BatchReport, start time.Time) {
	mBatchCalls.Inc()
	mBatchItems.Add(int64(len(rep.Outcomes)))
	mBatchRetried.Add(int64(rep.Retried))
	mBatchFailed.Add(int64(rep.Failed))
	mBatchLatency.ObserveSince(start)
}
