package xbar

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"geniex/internal/linalg"
)

// cleanSolve solves one workload without faults and returns the
// solution as the reference for the recovery tests.
func cleanSolve(t *testing.T, cfg Config, g *linalg.Dense, v []float64) *Solution {
	t.Helper()
	xb, err := New(cfg.WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	sol, err := xb.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func faultedSolve(t *testing.T, cfg Config, g *linalg.Dense, v []float64, p *FaultPlan) (*Solution, error) {
	t.Helper()
	xb, err := New(cfg.WithFaults(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		t.Fatal(err)
	}
	return xb.Solve(v)
}

// A clean solve at the nominal design point must converge on the
// ladder's first rung with a physically meaningful KCL residual.
func TestSolveReportsConvergence(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(20)
	sol := cleanSolve(t, cfg, randomLevels(cfg, r), randomDrive(cfg, r))
	if !sol.Converged {
		t.Fatal("clean solve reported Converged=false")
	}
	if sol.Recovery != "" {
		t.Errorf("clean solve used recovery rung %q", sol.Recovery)
	}
	if !(sol.Residual >= 0) || sol.Residual > 1e-6 {
		t.Errorf("KCL residual %v not in [0, 1e-6]", sol.Residual)
	}
	if sol.NewtonIters <= 0 || sol.CGIters <= 0 {
		t.Errorf("missing iteration counts: newton=%d cg=%d", sol.NewtonIters, sol.CGIters)
	}
	if sol.LUFallbacks != 0 || sol.CGBreakdowns != 0 {
		t.Errorf("clean solve reported fallbacks: lu=%d breakdowns=%d", sol.LUFallbacks, sol.CGBreakdowns)
	}
}

// Rung 1: with plain Newton forced to fail, the damped rung must
// rescue the solve and — since damping never triggers on a convergent
// iteration — reproduce the clean solution bit for bit. The damped
// rung always runs from a cold start, so the clean reference is pinned
// to StartCold; seeded-vs-cold agreement (to solver tolerance, not bit
// equality) is covered separately in factor_test.go.
func TestDampedRungRescues(t *testing.T) {
	cfg := smallConfig()
	cfg.Start = StartCold
	r := linalg.NewRNG(21)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	want := cleanSolve(t, cfg, g, v)

	sol, err := faultedSolve(t, cfg, g, v, &FaultPlan{FailAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Recovery != "damped" {
		t.Fatalf("Recovery = %q, want damped", sol.Recovery)
	}
	if !sol.Converged {
		t.Fatal("damped rung did not report convergence")
	}
	for j := range want.Currents {
		if sol.Currents[j] != want.Currents[j] {
			t.Errorf("col %d: damped %v != clean %v", j, sol.Currents[j], want.Currents[j])
		}
	}
}

// Rung 2: with both Newton rungs forced to fail, source-stepping
// continuation must still reach the same solution (within solver
// tolerance — the continuation path takes different iterates).
func TestSourceStepRungRescues(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(22)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	want := cleanSolve(t, cfg, g, v)

	sol, err := faultedSolve(t, cfg, g, v, &FaultPlan{FailAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Recovery != "source-step" {
		t.Fatalf("Recovery = %q, want source-step", sol.Recovery)
	}
	if !sol.Converged {
		t.Fatal("source stepping did not report convergence")
	}
	for j := range want.Currents {
		if rel := math.Abs(sol.Currents[j]-want.Currents[j]) / (math.Abs(want.Currents[j]) + 1e-15); rel > 1e-6 {
			t.Errorf("col %d: source-step %v vs clean %v (rel %v)", j, sol.Currents[j], want.Currents[j], rel)
		}
	}
}

// Rung 3 (orthogonal to the ladder): a CG breakdown inside a Newton
// update must be rescued by the direct-LU fallback without failing the
// attempt.
func TestLUFallbackRescuesCGBreakdown(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(23)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	want := cleanSolve(t, cfg, g, v)

	sol, err := faultedSolve(t, cfg, g, v, &FaultPlan{CGBreakdownAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("solve with injected CG breakdown did not converge")
	}
	if sol.CGBreakdowns < 1 {
		t.Errorf("CGBreakdowns = %d, want >= 1", sol.CGBreakdowns)
	}
	if sol.LUFallbacks < 1 {
		t.Errorf("LUFallbacks = %d, want >= 1", sol.LUFallbacks)
	}
	for j := range want.Currents {
		if rel := math.Abs(sol.Currents[j]-want.Currents[j]) / (math.Abs(want.Currents[j]) + 1e-15); rel > 1e-6 {
			t.Errorf("col %d: LU-rescued %v vs clean %v (rel %v)", j, sol.Currents[j], want.Currents[j], rel)
		}
	}
}

// PolicyFailFast must surface the CG breakdown as an error instead of
// silently falling back.
func TestFailFastSurfacesCGBreakdown(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = PolicyFailFast
	r := linalg.NewRNG(24)
	_, err := faultedSolve(t, cfg, randomLevels(cfg, r), randomDrive(cfg, r), &FaultPlan{CGBreakdownAt: 1})
	if err == nil {
		t.Fatal("expected an error under PolicyFailFast")
	}
	if !errors.Is(err, linalg.ErrBreakdown) {
		t.Errorf("error %v does not match linalg.ErrBreakdown", err)
	}
}

// PolicyFailFast with a forced rung-0 divergence must return a typed
// error matching both sentinels, with diagnostics attached.
func TestFailFastReturnsTypedDivergence(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = PolicyFailFast
	r := linalg.NewRNG(25)
	_, err := faultedSolve(t, cfg, randomLevels(cfg, r), randomDrive(cfg, r), &FaultPlan{FailAttempts: 1})
	if err == nil {
		t.Fatal("expected divergence error")
	}
	if !errors.Is(err, ErrNewtonDiverged) {
		t.Errorf("error %v does not match ErrNewtonDiverged", err)
	}
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("error %v does not match linalg.ErrNoConvergence", err)
	}
	var nde *NewtonDivergedError
	if !errors.As(err, &nde) {
		t.Fatalf("error %T is not *NewtonDivergedError", err)
	}
	if nde.Iters <= 0 {
		t.Errorf("diagnostics missing iteration count: %+v", nde)
	}
	if len(nde.Attempts) != 1 || nde.Attempts[0] != "newton" {
		t.Errorf("fail-fast attempted %v, want [newton]", nde.Attempts)
	}
}

// With the whole ladder forced to fail, PolicyRecover must error (with
// all three rungs on record) while PolicyBestEffort must return the
// lowest-residual iterate flagged Converged=false.
func TestLadderExhaustion(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(26)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)
	plan := &FaultPlan{FailAttempts: 3}

	_, err := faultedSolve(t, cfg, g, v, plan)
	if !errors.Is(err, ErrNewtonDiverged) {
		t.Fatalf("PolicyRecover error = %v, want ErrNewtonDiverged", err)
	}
	var nde *NewtonDivergedError
	if !errors.As(err, &nde) {
		t.Fatalf("error %T is not *NewtonDivergedError", err)
	}
	if len(nde.Attempts) != 3 {
		t.Errorf("attempts = %v, want all three rungs", nde.Attempts)
	}

	cfg.Policy = PolicyBestEffort
	sol, err := faultedSolve(t, cfg, g, v, plan)
	if err != nil {
		t.Fatalf("PolicyBestEffort errored: %v", err)
	}
	if sol.Converged {
		t.Error("best-effort solution claims convergence")
	}
	if sol.Recovery != "best-effort" {
		t.Errorf("Recovery = %q, want best-effort", sol.Recovery)
	}
	// The forced-failed rungs actually converged, so the best iterate is
	// a genuine solution: its currents must be finite and physical.
	for j, c := range sol.Currents {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("col %d: non-finite best-effort current %v", j, c)
		}
	}
	if sol.Residual > 1e-6 {
		t.Errorf("best-effort residual %v unexpectedly high for a converged iterate", sol.Residual)
	}
}

// A NaN conductance stamp must be detected and reported as an error —
// under every policy — never returned as NaN currents.
func TestNaNConductanceDetected(t *testing.T) {
	r := linalg.NewRNG(27)
	for _, policy := range []SolverPolicy{PolicyRecover, PolicyFailFast, PolicyBestEffort} {
		cfg := smallConfig()
		cfg.Policy = policy
		sol, err := faultedSolve(t, cfg, randomLevels(cfg, r), randomDrive(cfg, r), &FaultPlan{NaNConductance: true})
		if err == nil {
			t.Errorf("%v: NaN conductance produced a solution (converged=%v)", policy, sol.Converged)
			continue
		}
		// Fail-fast surfaces the NaN as the CG breakdown it causes; the
		// recovering policies exhaust the ladder and report divergence.
		if !errors.Is(err, ErrNewtonDiverged) && !errors.Is(err, linalg.ErrBreakdown) {
			t.Errorf("%v: error %v matches neither ErrNewtonDiverged nor ErrBreakdown", policy, err)
		}
	}
}

// A genuine Newton stall — iteration budget exhausted on a strongly
// non-linear netlist (near-saturated selectors at elevated supply) —
// must be detected, not returned as a silently wrong answer: either
// the solve errors, or it reports a converged solution whose KCL
// residual actually is small.
func TestNewtonStallDetected(t *testing.T) {
	cfg := smallConfig()
	cfg.Vsupply = 0.5
	cfg.SelectorVsat = 0.05 // deep selector saturation: hard Newton problem
	r := linalg.NewRNG(28)
	g := randomLevels(cfg, r)
	v := randomDrive(cfg, r)

	// With a one-update budget no rung can converge from a cold start;
	// the solver must report the stall instead of the stale iterate.
	_, err := faultedSolve(t, cfg, g, v, &FaultPlan{MaxNewton: 1})
	if !errors.Is(err, ErrNewtonDiverged) {
		t.Fatalf("starved solver returned %v, want ErrNewtonDiverged", err)
	}

	// With the full budget the ladder must solve the same hard problem
	// and stand behind the result.
	sol, err := faultedSolve(t, cfg, g, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged || sol.Residual > 1e-6 {
		t.Errorf("hard problem: converged=%v residual=%v", sol.Converged, sol.Residual)
	}
}

// BatchSolveReport with faults injected into a subset of items must
// fail exactly those items, zero their rows, and leave every surviving
// item bit-identical to a fault-free run.
func TestBatchSolveReportDegradedItems(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(29)
	g := randomLevels(cfg, r)
	const batch = 6
	vs := linalg.NewDense(batch, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	clean, cleanRep, err := BatchSolveReport(cfg, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRep.AllOK() || cleanRep.Solved != batch {
		t.Fatalf("clean batch unhealthy: %v", cleanRep)
	}

	bad := []int{1, 3}
	faulted := cfg.WithFaults(&FaultPlan{FailAttempts: 3, Items: bad})
	out, rep, err := BatchSolveReport(faulted, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != len(bad) || rep.Solved != batch-len(bad) {
		t.Fatalf("report = %v, want %d failed", rep, len(bad))
	}
	gotBad := rep.FailedItems()
	if len(gotBad) != len(bad) || gotBad[0] != bad[0] || gotBad[1] != bad[1] {
		t.Fatalf("FailedItems = %v, want %v", gotBad, bad)
	}
	mask := rep.FailedMask()
	for b := 0; b < batch; b++ {
		failed := b == 1 || b == 3
		if mask[b] != failed {
			t.Errorf("mask[%d] = %v, want %v", b, mask[b], failed)
		}
		for j := 0; j < cfg.Cols; j++ {
			if failed {
				if out.At(b, j) != 0 {
					t.Errorf("failed item %d col %d: non-zero current %v", b, j, out.At(b, j))
				}
			} else if out.At(b, j) != clean.At(b, j) {
				t.Errorf("surviving item %d col %d: %v != clean %v", b, j, out.At(b, j), clean.At(b, j))
			}
		}
	}
	for _, b := range bad {
		o := rep.Outcomes[b]
		if o.Status != ItemFailed || o.Retries != 1 {
			t.Errorf("item %d outcome = %+v, want failed after one retry", b, o)
		}
		if !errors.Is(o.Err, ErrNewtonDiverged) {
			t.Errorf("item %d error %v does not match ErrNewtonDiverged", b, o.Err)
		}
	}
	if err := rep.FirstError(); !errors.Is(err, linalg.ErrNoConvergence) {
		t.Errorf("FirstError %v does not match linalg.ErrNoConvergence", err)
	}

	// The strict wrapper must refuse the same batch.
	if _, err := BatchSolve(faulted, g, vs); !errors.Is(err, ErrNewtonDiverged) {
		t.Errorf("BatchSolve error = %v, want ErrNewtonDiverged", err)
	}
}

// The single-retry path: items that fail under PolicyFailFast must be
// retried under the recovery ladder and succeed, marked ItemRetried.
func TestBatchSolveRetriesFailFastItems(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = PolicyFailFast
	r := linalg.NewRNG(30)
	g := randomLevels(cfg, r)
	vs := linalg.NewDense(4, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	faulted := cfg.WithFaults(&FaultPlan{FailAttempts: 1, Items: []int{2}})
	_, rep, err := BatchSolveReport(faulted, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("report = %v, want no failures", rep)
	}
	if rep.Retried != 1 {
		t.Fatalf("Retried = %d, want 1", rep.Retried)
	}
	o := rep.Outcomes[2]
	if o.Status != ItemRetried || o.Retries != 1 || o.Recovery != "damped" || !o.Converged {
		t.Errorf("outcome = %+v, want retried+damped+converged", o)
	}
}

// An item rescued by a ladder rung (without a failed first attempt)
// must be marked ItemRecovered and counted in the aggregate.
func TestBatchSolveCountsRecoveredItems(t *testing.T) {
	cfg := smallConfig()
	r := linalg.NewRNG(31)
	g := randomLevels(cfg, r)
	vs := linalg.NewDense(3, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	faulted := cfg.WithFaults(&FaultPlan{FailAttempts: 1, Items: []int{0}})
	_, rep, err := BatchSolveReport(faulted, g, vs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 1 || rep.Failed != 0 {
		t.Fatalf("report = %v, want exactly one recovered item", rep)
	}
	if o := rep.Outcomes[0]; o.Status != ItemRecovered || o.Recovery != "damped" {
		t.Errorf("outcome = %+v, want recovered via damped rung", o)
	}
}

// Determinism guard: batch output — including items that went through
// the retry path — must be byte-identical whether the batch runs on
// one worker or many.
func TestBatchSolveDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = PolicyFailFast // force item 2 through the retry path
	r := linalg.NewRNG(32)
	g := randomLevels(cfg, r)
	const batch = 8
	vs := linalg.NewDense(batch, cfg.Rows)
	for i := range vs.Data {
		vs.Data[i] = cfg.Vsupply * r.Float64()
	}
	faulted := cfg.WithFaults(&FaultPlan{FailAttempts: 1, Items: []int{2, 5}})

	solveAt := func(procs int) (*linalg.Dense, *BatchReport) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		out, rep, err := BatchSolveReport(faulted, g, vs)
		if err != nil {
			t.Fatal(err)
		}
		return out, rep
	}

	serial, serialRep := solveAt(1)
	parallel, parallelRep := solveAt(runtime.NumCPU())
	if serialRep.Retried != 2 || parallelRep.Retried != 2 {
		t.Fatalf("retries = %d/%d, want 2 in both runs", serialRep.Retried, parallelRep.Retried)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("output[%d]: serial %v != parallel %v", i, serial.Data[i], parallel.Data[i])
		}
	}
	for b := 0; b < batch; b++ {
		s, p := serialRep.Outcomes[b], parallelRep.Outcomes[b]
		if s.Status != p.Status || s.NewtonIters != p.NewtonIters || s.Residual != p.Residual {
			t.Errorf("item %d: outcomes differ: %+v vs %+v", b, s, p)
		}
	}
}

// ParsePolicy round-trips every policy and rejects junk.
func TestParsePolicy(t *testing.T) {
	for _, p := range []SolverPolicy{PolicyRecover, PolicyFailFast, PolicyBestEffort} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("expected error for unknown policy")
	}
	cfg := smallConfig()
	cfg.Policy = SolverPolicy(99)
	if err := cfg.Validate(); err == nil {
		t.Error("expected validation error for out-of-range policy")
	}
}
