package xbar

import (
	"fmt"
	"runtime"
	"sync"

	"geniex/internal/linalg"
)

// BatchSolve runs the full non-linear circuit solver for a batch of
// input vectors against a single programmed conductance matrix,
// fanning out across CPUs. vs is batch×Rows; the result is batch×Cols
// of non-ideal output currents.
func BatchSolve(cfg Config, g *linalg.Dense, vs *linalg.Dense) (*linalg.Dense, error) {
	if vs.Cols != cfg.Rows {
		return nil, fmt.Errorf("xbar: BatchSolve inputs have %d columns for %d rows", vs.Cols, cfg.Rows)
	}
	out := linalg.NewDense(vs.Rows, cfg.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > vs.Rows {
		workers = vs.Rows
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int, vs.Rows)
	for b := 0; b < vs.Rows; b++ {
		next <- b
	}
	close(next)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			xb, err := New(cfg)
			if err == nil {
				err = xb.Program(g)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for b := range next {
				mu.Lock()
				done := firstErr != nil
				mu.Unlock()
				if done {
					return
				}
				sol, err := xb.Solve(vs.Row(b))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("xbar: batch item %d: %w", b, err)
					}
					mu.Unlock()
					return
				}
				copy(out.Row(b), sol.Currents)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
