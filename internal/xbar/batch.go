package xbar

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

// ItemStatus classifies the outcome of one batch item.
type ItemStatus uint8

const (
	// ItemOK means the item solved cleanly on the first attempt.
	ItemOK ItemStatus = iota
	// ItemRecovered means the first attempt succeeded but needed the
	// recovery ladder (a damped/source-step rung or an LU fallback).
	ItemRecovered
	// ItemRetried means the first attempt failed and the retry under
	// the recovery ladder succeeded.
	ItemRetried
	// ItemFailed means the item failed even after the retry; its output
	// row is zero and its error is recorded.
	ItemFailed
)

// String implements fmt.Stringer.
func (s ItemStatus) String() string {
	switch s {
	case ItemOK:
		return "ok"
	case ItemRecovered:
		return "recovered"
	case ItemRetried:
		return "retried"
	case ItemFailed:
		return "failed"
	}
	return fmt.Sprintf("ItemStatus(%d)", int(s))
}

// ItemOutcome is the per-item record in a BatchReport.
type ItemOutcome struct {
	Status  ItemStatus
	Err     error // non-nil only when Status == ItemFailed
	Retries int
	// Recovery names the ladder rung that produced the accepted
	// solution ("" for a plain Newton solve).
	Recovery                                                     string
	Converged                                                    bool
	Residual                                                     float64
	NewtonIters, CGIters, LUFallbacks, CGBreakdowns, DampedSteps int
}

// BatchReport aggregates per-item outcomes and solver-health counters
// for one BatchSolve call. Callers decide whether to continue with a
// degraded-item mask or fail the whole batch.
type BatchReport struct {
	// Outcomes has one entry per batch item, in item order.
	Outcomes []ItemOutcome
	// Solved, Recovered, Retried, Failed count items by final status.
	Solved, Recovered, Retried, Failed int
	// Unconverged counts items accepted with Converged=false (possible
	// only under PolicyBestEffort).
	Unconverged int
	// NewtonIters, CGIters, LUFallbacks, CGBreakdowns, DampedSteps
	// aggregate solver work across all items, retries included.
	NewtonIters, CGIters, LUFallbacks, CGBreakdowns, DampedSteps int
}

// AllOK reports whether every item produced a converged solution.
func (r *BatchReport) AllOK() bool { return r.Failed == 0 && r.Unconverged == 0 }

// FailedItems returns the indices of failed items, in order.
func (r *BatchReport) FailedItems() []int {
	var out []int
	for i, o := range r.Outcomes {
		if o.Status == ItemFailed {
			out = append(out, i)
		}
	}
	return out
}

// FailedMask returns a per-item mask, true where the item failed.
func (r *BatchReport) FailedMask() []bool {
	mask := make([]bool, len(r.Outcomes))
	for i, o := range r.Outcomes {
		mask[i] = o.Status == ItemFailed
	}
	return mask
}

// FirstError returns the first failed item's error, nil when none.
func (r *BatchReport) FirstError() error {
	for i, o := range r.Outcomes {
		if o.Err != nil {
			return fmt.Errorf("xbar: batch item %d: %w", i, o.Err)
		}
	}
	return nil
}

// String summarizes the report in one line.
func (r *BatchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch %d items: %d ok, %d recovered, %d retried, %d failed",
		len(r.Outcomes), r.Solved, r.Recovered, r.Retried, r.Failed)
	if r.Unconverged > 0 {
		fmt.Fprintf(&b, ", %d unconverged", r.Unconverged)
	}
	fmt.Fprintf(&b, " (newton=%d cg=%d lu-fallbacks=%d cg-breakdowns=%d damped=%d)",
		r.NewtonIters, r.CGIters, r.LUFallbacks, r.CGBreakdowns, r.DampedSteps)
	return b.String()
}

// record folds one item outcome into the aggregate counters (Outcomes
// is filled separately, per item, to stay deterministic).
func (r *BatchReport) tally(o ItemOutcome) {
	switch o.Status {
	case ItemOK:
		r.Solved++
	case ItemRecovered:
		r.Recovered++
	case ItemRetried:
		r.Retried++
	case ItemFailed:
		r.Failed++
	}
	if o.Status != ItemFailed && !o.Converged {
		r.Unconverged++
	}
	r.NewtonIters += o.NewtonIters
	r.CGIters += o.CGIters
	r.LUFallbacks += o.LUFallbacks
	r.CGBreakdowns += o.CGBreakdowns
	r.DampedSteps += o.DampedSteps
}

// Err returns nil when every item produced a converged solution, the
// first failed item's error when any item failed, and an error
// matching ErrNewtonDiverged when the batch contains best-effort items
// accepted with Converged=false. It is the strict form of the AllOK
// contract: callers that cannot tolerate silently degraded outputs
// check Err; callers that can, inspect the per-item Outcomes instead.
func (r *BatchReport) Err() error {
	if r.Failed > 0 {
		return r.FirstError()
	}
	if r.Unconverged > 0 {
		return fmt.Errorf("xbar: %d of %d batch items accepted without convergence (best-effort): %w",
			r.Unconverged, len(r.Outcomes), ErrNewtonDiverged)
	}
	return nil
}

// BatchSolve runs the full non-linear circuit solver for a batch of
// input vectors against a single programmed conductance matrix,
// fanning out across CPUs. vs is batch×Rows; the result is batch×Cols
// of non-ideal output currents. Any item that fails — or is accepted
// without convergence under PolicyBestEffort — makes the whole call
// fail; use BatchSolveReport for per-item outcomes.
func BatchSolve(cfg Config, g *linalg.Dense, vs *linalg.Dense) (*linalg.Dense, error) {
	out, rep, err := BatchSolveReport(cfg, g, vs)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchSolveReport is the resilient one-shot batch entry point: every
// item is attempted, failed items are retried once under the recovery
// ladder, and the report records per-item status so callers can
// continue with a degraded-item mask instead of losing the whole
// batch. Failed items' output rows are zero. Note the report may
// contain unconverged best-effort items even when the returned error
// is nil; gate on BatchReport.AllOK (or Err) when degraded outputs are
// unacceptable.
//
// The returned error covers setup problems only (bad shapes, an
// unprogrammable conductance matrix); solver failures never abort the
// batch. Results are deterministic under the default StartSeeded (and
// StartCold) configurations: each item's starting point is a pure
// function of the programmed conductances and its drive vector, so the
// output is independent of worker count and scheduling. StartWarm
// trades that guarantee for speed — items inherit whatever state their
// pooled instance solved last.
//
// Callers that evaluate many batches against the same conductance
// matrix should hold a NewBatchSolver instead: this function builds
// and programs fresh crossbar instances on every call.
func BatchSolveReport(cfg Config, g *linalg.Dense, vs *linalg.Dense) (*linalg.Dense, *BatchReport, error) {
	s, err := NewBatchSolver(cfg, g)
	if err != nil {
		return nil, nil, err
	}
	out := linalg.NewDense(vs.Rows, cfg.Cols)
	rep, err := s.SolveReportInto(out, vs)
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// BatchSolver is a reusable batch-solving handle bound to one
// programmed conductance matrix. It keeps a pool of programmed
// Crossbar instances, so a caller that evaluates many voltage batches
// against the same weights — the functional simulator's circuit tiles
// are the motivating case — pays netlist construction and programming
// once per pooled instance for the solver's lifetime, not once per
// worker per call.
//
// A BatchSolver is safe for concurrent use; concurrent calls draw
// distinct instances from the pool.
type BatchSolver struct {
	cfg     Config     // worker configuration, fault plan stripped
	faults  *FaultPlan // per-item plan carried by the original config
	g       *linalg.Dense
	workers int

	// The operating-point factorization is built once per array and
	// shared read-only by every pooled instance (each brings its own
	// scratch), so pool growth costs no refactorization.
	factOnce sync.Once
	fact     *opFactor

	mu   sync.Mutex
	free []*Crossbar // programmed instances ready to solve
}

// NewBatchSolver validates the design point, programs one crossbar
// instance eagerly (so conductance-window errors surface here, not
// mid-batch), and returns the reusable handle. The fault-injection
// plan and BatchWorkers carried by cfg apply to every subsequent call.
func NewBatchSolver(cfg Config, g *linalg.Dense) (*BatchSolver, error) {
	s := &BatchSolver{
		cfg:     cfg.WithFaults(nil), // plans are scoped per item in solve
		faults:  cfg.faults,
		g:       g.Clone(),
		workers: cfg.BatchWorkers,
	}
	// Stuck cells are a property of the one shared array, not of a batch
	// item, so they perturb the pooled conductances here — every pooled
	// instance (and every item, regardless of Items) sees the same
	// faulted matrix, exactly as a single physical crossbar would.
	if _, err := cfg.faults.applyStuck(s.g, cfg); err != nil {
		return nil, err
	}
	xb, err := s.newInstance()
	if err != nil {
		return nil, err
	}
	s.free = []*Crossbar{xb}
	return s, nil
}

// Conductances returns a copy of the programmed conductance matrix.
func (s *BatchSolver) Conductances() *linalg.Dense { return s.g.Clone() }

func (s *BatchSolver) newInstance() (*Crossbar, error) {
	xb, err := New(s.cfg)
	if err != nil {
		return nil, err
	}
	if err := xb.Program(s.g); err != nil {
		return nil, err
	}
	if s.cfg.Start != StartCold {
		// Factor once per array; later instances adopt the shared
		// factor instead of rebuilding it. A nil result (build failure)
		// simply leaves every instance on the cold-start fallback.
		s.factOnce.Do(func() { s.fact = xb.ensureFactor() })
		if s.fact != nil && xb.fact == nil {
			xb.adoptFactor(s.fact)
		}
	}
	return xb, nil
}

// acquire pops a programmed instance from the pool or builds one.
func (s *BatchSolver) acquire() (*Crossbar, error) {
	s.mu.Lock()
	if n := len(s.free); n > 0 {
		xb := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return xb, nil
	}
	s.mu.Unlock()
	return s.newInstance()
}

// release returns an instance to the pool. The pool retains at most
// GOMAXPROCS idle instances; surplus ones are dropped for the GC.
func (s *BatchSolver) release(xb *Crossbar) {
	xb.setFaults(nil)
	s.mu.Lock()
	if len(s.free) < runtime.GOMAXPROCS(0) {
		s.free = append(s.free, xb)
	}
	s.mu.Unlock()
}

// SolveReport is the allocating form of SolveReportInto: it allocates
// the batch×Cols output matrix and delegates. This follows the
// repo-wide result-buffer idiom — a method X allocates its result and
// delegates to XInto, which writes into a caller-owned buffer and is
// the one to use in steady-state loops.
func (s *BatchSolver) SolveReport(vs *linalg.Dense) (*linalg.Dense, *BatchReport, error) {
	out := linalg.NewDense(vs.Rows, s.cfg.Cols)
	rep, err := s.SolveReportInto(out, vs)
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// SolveReportInto solves every item of vs (batch×Rows) into out
// (batch×Cols), fanning out across the configured worker count
// (Config.BatchWorkers; 0 means GOMAXPROCS). Failed items are retried
// once under the recovery ladder and zeroed if they still fail; the
// report carries per-item outcomes. The error covers setup problems
// only. Under StartSeeded (the default) and StartCold, results are
// deterministic and independent of worker count: every item's starting
// point depends only on the array and its own drive vector, and each
// item is written by index. StartWarm gives up that bit-level
// guarantee (converged results still agree to solver tolerance).
func (s *BatchSolver) SolveReportInto(out *linalg.Dense, vs *linalg.Dense) (*BatchReport, error) {
	return s.SolveReportIntoContext(nil, out, vs)
}

// SolveReportIntoContext is SolveReportInto under cooperative
// cancellation: workers stop drawing new items once ctx is done, the
// in-flight solves abort at their next Newton update, and the call
// returns an error matching ctx.Err(). On cancellation the output and
// report are incomplete and must be discarded — cancellation is a
// whole-call outcome, not a per-item one. A nil ctx behaves exactly
// like SolveReportInto.
func (s *BatchSolver) SolveReportIntoContext(ctx context.Context, out *linalg.Dense, vs *linalg.Dense) (*BatchReport, error) {
	cfg := s.cfg
	if vs.Cols != cfg.Rows {
		return nil, fmt.Errorf("xbar: BatchSolve inputs have %d columns for %d rows", vs.Cols, cfg.Rows)
	}
	if out.Rows != vs.Rows || out.Cols != cfg.Cols {
		return nil, fmt.Errorf("xbar: BatchSolve output is %dx%d, want %dx%d", out.Rows, out.Cols, vs.Rows, cfg.Cols)
	}
	start := obs.Now()
	region := obs.StartRegion("xbar.batch")
	defer region.End()
	// One parented span per batch call (not per item): a traced request
	// sees every slice evaluation as one "xbar.batch.solve" child under
	// its tile span without flooding the span ring with per-item events.
	if obs.TraceFromContext(ctx).Valid() {
		var span obs.Span
		ctx, span = obs.StartSpan(ctx, "xbar.batch.solve")
		defer span.End()
	}
	rep := &BatchReport{Outcomes: make([]ItemOutcome, vs.Rows)}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > vs.Rows {
		workers = vs.Rows
	}
	if workers < 1 {
		workers = 1
	}

	if workers == 1 {
		// Serial fast path: no goroutines, one pooled instance.
		xb, err := s.acquire()
		if err != nil {
			return nil, err
		}
		for b := 0; b < vs.Rows; b++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			s.armFaults(xb, b)
			rep.Outcomes[b] = solveItem(ctx, xb, vs.Row(b), out.Row(b))
		}
		s.release(xb)
	} else {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			setupErr error
		)
		next := make(chan int, vs.Rows)
		for b := 0; b < vs.Rows; b++ {
			next <- b
		}
		close(next)

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				xb, err := s.acquire()
				if err != nil {
					mu.Lock()
					if setupErr == nil {
						setupErr = err
					}
					mu.Unlock()
					return
				}
				defer s.release(xb)
				for b := range next {
					if ctx != nil && ctx.Err() != nil {
						return
					}
					mu.Lock()
					dead := setupErr != nil
					mu.Unlock()
					if dead {
						return
					}
					s.armFaults(xb, b)
					rep.Outcomes[b] = solveItem(ctx, xb, vs.Row(b), out.Row(b))
				}
			}()
		}
		wg.Wait()
		if setupErr != nil {
			return nil, setupErr
		}
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("xbar: batch solve cancelled: %w", cerr)
		}
	}
	for _, o := range rep.Outcomes {
		rep.tally(o)
	}
	if obs.Enabled() {
		recordBatch(rep, start)
	}
	return rep, nil
}

// armFaults scopes the per-item fault-injection plan onto an instance.
func (s *BatchSolver) armFaults(xb *Crossbar, b int) {
	if s.faults.covers(b) {
		xb.setFaults(s.faults)
	} else {
		xb.setFaults(nil)
	}
}

// solveItem solves one batch item, retrying once under the recovery
// ladder on failure, and writes the currents into dst (zeroed on
// failure). A cancelled item is recorded as failed without retrying —
// its caller discards the whole report anyway.
func solveItem(ctx context.Context, xb *Crossbar, v, dst []float64) ItemOutcome {
	sol, err := xb.solve(ctx, v, xb.cfg.Policy)
	if err != nil {
		if canceled(err) {
			linalg.Fill(dst, 0)
			return ItemOutcome{Status: ItemFailed, Err: err}
		}
		// Retry once with the ladder forced on — rescues items that
		// failed under PolicyFailFast or hit a transient solver corner.
		retrySol, retryErr := xb.solve(ctx, v, PolicyRecover)
		if retryErr != nil {
			linalg.Fill(dst, 0)
			return ItemOutcome{Status: ItemFailed, Err: retryErr, Retries: 1}
		}
		copy(dst, retrySol.Currents)
		return outcomeFor(retrySol, ItemRetried, 1)
	}
	copy(dst, sol.Currents)
	status := ItemOK
	if sol.Recovery != "" || sol.LUFallbacks > 0 {
		status = ItemRecovered
	}
	return outcomeFor(sol, status, 0)
}

func outcomeFor(sol *Solution, status ItemStatus, retries int) ItemOutcome {
	return ItemOutcome{
		Status:       status,
		Retries:      retries,
		Recovery:     sol.Recovery,
		Converged:    sol.Converged,
		Residual:     sol.Residual,
		NewtonIters:  sol.NewtonIters,
		CGIters:      sol.CGIters,
		LUFallbacks:  sol.LUFallbacks,
		CGBreakdowns: sol.CGBreakdowns,
		DampedSteps:  sol.DampedSteps,
	}
}
