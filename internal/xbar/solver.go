package xbar

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"geniex/internal/linalg"
	"geniex/internal/obs"
)

const (
	// defaultMaxNewton is the Newton iteration budget per ladder
	// attempt.
	defaultMaxNewton = 60
	// kclTol is the relative KCL residual below which an iterate is
	// accepted as converged regardless of step size.
	kclTol = 1e-9
	// kclOK is the looser residual bound a step-converged solution must
	// still satisfy to be reported Converged — it is what turns a
	// silent stall (tiny steps, large nodal current imbalance) into a
	// detected failure.
	kclOK = 1e-6
	// sourceSteps is the number of continuation stages in the
	// source-stepping recovery rung.
	sourceSteps = 8
	// minDamping bounds how far the damped rung may shorten a Newton
	// step before accepting it anyway.
	minDamping = 1.0 / 64
)

// ErrNewtonDiverged is the sentinel matched by errors.Is when the
// circuit solver cannot converge. The concrete error is a
// *NewtonDivergedError carrying diagnostics. It also matches
// linalg.ErrNoConvergence so callers at the funcsim/experiments layer
// can test for non-convergence without importing solver internals.
var ErrNewtonDiverged = errors.New("xbar: Newton solver did not converge")

// NewtonDivergedError reports a failed circuit solve with the
// diagnostics needed to understand and reproduce it.
type NewtonDivergedError struct {
	// Iters is the total number of Newton updates spent across all
	// recovery attempts.
	Iters int
	// MaxStep is the max |Δv| (volts) of the last applied Newton
	// update (the accepted, possibly damped, step).
	MaxStep float64
	// Residual is the final relative KCL residual.
	Residual float64
	// Attempts lists the ladder rungs tried, in order.
	Attempts []string
	// Cause is the underlying linear-solver failure, if one aborted the
	// ladder (CG breakdown the direct fallback could not rescue, a
	// singular Jacobian, ...).
	Cause error
}

// Error implements error.
func (e *NewtonDivergedError) Error() string {
	msg := fmt.Sprintf("xbar: Newton solver did not converge after %d iterations (max step %.3g V, KCL residual %.3g; attempted %s)",
		e.Iters, e.MaxStep, e.Residual, strings.Join(e.Attempts, ", "))
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying linear-solver failure.
func (e *NewtonDivergedError) Unwrap() error { return e.Cause }

// Is reports sentinel identity for both ErrNewtonDiverged and
// linalg.ErrNoConvergence.
func (e *NewtonDivergedError) Is(target error) bool {
	return target == ErrNewtonDiverged || target == linalg.ErrNoConvergence
}

// Solution is the result of one circuit solve.
type Solution struct {
	// Currents are the sensed bit-line output currents (amperes),
	// positive flowing into the virtual ground; length Cols.
	Currents []float64
	// Power is the total power delivered by the word-line drivers
	// (watts) — by conservation, also the total dissipated in the
	// array, since the bit lines terminate at ground.
	Power float64
	// NewtonIters is the number of Newton updates used, summed across
	// recovery attempts.
	NewtonIters int
	// CGIters is the total number of inner CG iterations.
	CGIters int

	// Converged reports whether the solver met its tolerances. It is
	// false only under PolicyBestEffort — the other policies return an
	// error instead of an unconverged solution.
	Converged bool
	// Residual is the final relative KCL residual ‖J·v − rhs‖/‖rhs‖ —
	// the physical nodal current imbalance of the reported solution.
	Residual float64
	// MaxStep is the max |Δv| (volts) of the last *applied* Newton
	// update: when the damped rung backtracks, this is the accepted
	// shortened step, not the full-length Newton direction.
	MaxStep float64
	// Recovery names the ladder rung that produced the solution: ""
	// (plain Newton), "damped", "source-step", or "best-effort" when
	// nothing converged under PolicyBestEffort.
	Recovery string
	// Seeded reports that Newton started from the factorized linear
	// solve at the programmed operating point instead of flat zero.
	// Each seeded start replaces exactly one Newton update (the first
	// cold one computes the same linear solve, by CG) plus its inner
	// iterations.
	Seeded bool
	// WarmStarted reports that Newton started from the previous
	// converged solution of this instance (StartWarm only).
	WarmStarted bool
	// DampedSteps counts backtracked Newton steps.
	DampedSteps int
	// LUFallbacks counts linear solves rescued by the direct-LU path
	// after CG failed.
	LUFallbacks int
	// CGBreakdowns counts CG SPD-guard trips.
	CGBreakdowns int
}

// Solve computes the non-ideal output currents for the given word-line
// drive voltages (length Rows, volts). Voltages may be any value in
// [0, Vsupply]; values outside are an error.
//
// Non-convergence handling follows the configured SolverPolicy: under
// PolicyFailFast the first failed attempt returns an error matching
// ErrNewtonDiverged; under PolicyRecover (the default) a ladder of
// damped Newton and source-stepping continuation is tried first; under
// PolicyBestEffort a failed ladder returns the lowest-residual iterate
// with Converged=false instead of an error.
func (x *Crossbar) Solve(v []float64) (*Solution, error) {
	return x.solve(nil, v, x.cfg.Policy)
}

// SolveContext is Solve under cooperative cancellation: the Newton
// iteration checks ctx between updates and aborts — mid-ladder, before
// the next linear solve — as soon as the context is done, returning an
// error that matches ctx.Err() under errors.Is. A nil ctx behaves like
// Solve. Cancellation is how serving deadlines actually stop circuit
// work instead of letting an abandoned request keep burning CG
// iterations.
func (x *Crossbar) SolveContext(ctx context.Context, v []float64) (*Solution, error) {
	return x.solve(ctx, v, x.cfg.Policy)
}

// canceled reports whether err stems from context cancellation or
// deadline expiry (as opposed to a genuine solver failure).
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// solve validates the drive vector, runs the recovery ladder under an
// explicit policy (BatchSolve retries override the configured one) and
// records the solve in the obs registry. ctx may be nil (no
// cancellation).
func (x *Crossbar) solve(ctx context.Context, v []float64, policy SolverPolicy) (*Solution, error) {
	cfg := x.cfg
	if len(v) != cfg.Rows {
		return nil, fmt.Errorf("xbar: Solve with %d inputs on %d rows", len(v), cfg.Rows)
	}
	for i, vi := range v {
		if vi < -1e-12 || vi > cfg.Vsupply*(1+1e-9) {
			return nil, fmt.Errorf("xbar: input %d voltage %g outside [0, %g]", i, vi, cfg.Vsupply)
		}
	}
	start := obs.Now()
	region := obs.StartRegion("xbar.solve")
	sol, err := x.runLadder(ctx, v, policy)
	region.End()
	// x.volt is a valid StartWarm starting point only after a converged
	// solve of this programming; failures and best-effort iterates
	// would seed the next solve from a bad basin.
	x.warmOK = err == nil && sol.Converged
	if err != nil && canceled(err) {
		if obs.Enabled() {
			mSolveCancelled.Inc()
		}
		return nil, err // cancellation is not a solver failure; skip recordSolve
	}
	if obs.Enabled() {
		recordSolve(sol, err, start)
	}
	return sol, err
}

// runLadder is the uninstrumented recovery ladder: plain Newton →
// damped Newton → source stepping, with best-effort reporting under
// PolicyBestEffort. A cancelled ctx aborts the ladder immediately —
// recovery rungs are never attempted for a caller that has gone away.
func (x *Crossbar) runLadder(ctx context.Context, v []float64, policy SolverPolicy) (*Solution, error) {
	sol := &Solution{}
	var attempts []string
	var cause error
	bestResid := math.Inf(1)
	haveBest := false

	// record applies the fault-injection attempt gate and tracks the
	// lowest-residual iterate for best-effort reporting.
	record := func(ok bool, attempt int, name string) bool {
		if ok && x.faults != nil && attempt < x.faults.FailAttempts {
			ok = false // injected divergence: discard the result
			sol.Converged = false
		}
		attempts = append(attempts, name)
		if !ok && !math.IsNaN(sol.Residual) && sol.Residual < bestResid {
			bestResid = sol.Residual
			copy(x.best, x.volt)
			haveBest = true
		}
		return ok
	}

	// Rung 0: plain Newton. The starting point follows Config.Start —
	// the factorized operating-point seed by default, the previous
	// converged solution under StartWarm, flat zero under StartCold —
	// and the cached factorization preconditions the inner CG solves
	// whenever it is available.
	x.startRung0(v, sol)
	ok, err := x.newtonIterate(ctx, v, false, policy, sol)
	// Recovery rungs keep the legacy cold-start Jacobi-CG path: their
	// value is being a *different* strategy from the one that just
	// failed, and the Jacobian far from the operating point (saturated
	// selectors, source-stepping continuation) is no longer close to J₀.
	x.activePrecond = nil
	if err != nil && canceled(err) {
		return nil, err
	}
	if record(ok, 0, "newton") {
		return x.finish(v, sol, ""), nil
	}
	cause = err

	// A failed warm start is a bad initial guess, not a hard circuit:
	// the previous converged state can sit in the wrong basin when
	// consecutive inputs are uncorrelated. Retry rung 0 from the
	// deterministic factorization seed — the same start a non-warm
	// solve would have used — before escalating to the far more
	// expensive damped/continuation rungs.
	if sol.WarmStarted {
		if f := x.ensureFactor(); f != nil {
			sol.WarmStarted = false
			sol.Seeded = true
			if obs.Enabled() {
				mFactorReseeds.Inc()
			}
			x.activePrecond = x.precond
			f.seedInto(x.volt, v, x.factScr)
			ok, err = x.newtonIterate(ctx, v, false, policy, sol)
			x.activePrecond = nil
			if err != nil && canceled(err) {
				return nil, err
			}
			if err != nil && cause == nil {
				cause = err
			}
			if record(ok, 0, "newton-reseed") {
				return x.finish(v, sol, ""), nil
			}
		}
	}
	if policy == PolicyFailFast {
		if err != nil {
			return nil, err
		}
		return nil, x.diverged(sol, attempts, cause)
	}

	// Rung 1: damped Newton — same cold start, but steps that increase
	// the KCL residual are backtracked along the Newton direction.
	linalg.Fill(x.volt, 0)
	ok, err = x.newtonIterate(ctx, v, true, policy, sol)
	if err != nil && canceled(err) {
		return nil, err
	}
	if err != nil && cause == nil {
		cause = err
	}
	if record(ok, 1, "damped") {
		return x.finish(v, sol, "damped"), nil
	}

	// Rung 2: source stepping — ramp the drive to its target in stages,
	// warm-starting each stage from the previous one. Continuation
	// keeps every stage inside Newton's convergence basin.
	ok, err = x.sourceStep(ctx, v, policy, sol)
	if err != nil && canceled(err) {
		return nil, err
	}
	if err != nil && cause == nil {
		cause = err
	}
	if record(ok, 2, "source-step") {
		return x.finish(v, sol, "source-step"), nil
	}

	if policy == PolicyBestEffort && haveBest {
		copy(x.volt, x.best)
		sol.Converged = false
		sol.Residual = bestResid
		return x.finish(v, sol, "best-effort"), nil
	}
	return nil, x.diverged(sol, attempts, cause)
}

// startRung0 loads the rung-0 Newton starting point into x.volt per
// Config.Start and arms the factorization preconditioner for the
// attempt. With no factorization available (StartCold, or a build
// failure) it falls back to the legacy flat-zero start.
func (x *Crossbar) startRung0(v []float64, sol *Solution) {
	x.activePrecond = nil
	f := x.ensureFactor()
	if f == nil {
		linalg.Fill(x.volt, 0)
		return
	}
	x.activePrecond = x.precond
	if x.cfg.Start == StartWarm && x.warmOK {
		// x.volt already holds the previous converged solution.
		sol.WarmStarted = true
		return
	}
	f.seedInto(x.volt, v, x.factScr)
	sol.Seeded = true
}

func (x *Crossbar) diverged(sol *Solution, attempts []string, cause error) error {
	return &NewtonDivergedError{
		Iters:    sol.NewtonIters,
		MaxStep:  sol.MaxStep,
		Residual: sol.Residual,
		Attempts: attempts,
		Cause:    cause,
	}
}

// finish extracts currents and power from the solved node voltages.
func (x *Crossbar) finish(v []float64, sol *Solution, recovery string) *Solution {
	cfg := x.cfg
	sol.Recovery = recovery
	gsnk := 1 / cfg.Rsink
	gsrc := 1 / cfg.Rsource
	sol.Currents = make([]float64, cfg.Cols)
	for j := 0; j < cfg.Cols; j++ {
		sol.Currents[j] = gsnk * x.volt[x.cNode(cfg.Rows-1, j)]
	}
	sol.Power = 0
	for i := 0; i < cfg.Rows; i++ {
		sol.Power += v[i] * (v[i] - x.volt[x.rNode(i, 0)]) * gsrc
	}
	return sol
}

// assemble linearizes the network at the current x.volt and loads the
// source injections, leaving the Jacobian in x.pattern and the RHS in
// x.rhs.
func (x *Crossbar) assemble(v []float64) {
	x.buildCoords(x.volt)
	gsrc := 1 / x.cfg.Rsource
	for i := 0; i < x.cfg.Rows; i++ {
		x.rhs[x.rNode(i, 0)] += gsrc * v[i]
	}
	if x.faults != nil && x.faults.NaNConductance && len(x.coords) > 0 {
		x.coords[0].Val = math.NaN()
	}
	x.pattern.Update(x.coords)
}

// kclResidual measures the nodal current imbalance of the current
// iterate against the freshly assembled system: ‖J·v − rhs‖ relative
// to ‖rhs‖. With the Newton companion model this is exactly the KCL
// violation of the non-linear network at x.volt.
func (x *Crossbar) kclResidual() float64 {
	x.pattern.Matrix().MulVec(x.volt, x.res)
	for i := range x.res {
		x.res[i] -= x.rhs[i]
	}
	rnorm := linalg.Norm2(x.res)
	bnorm := linalg.Norm2(x.rhs)
	if bnorm == 0 {
		return rnorm
	}
	return rnorm / bnorm
}

// newtonIterate runs (optionally damped) Newton from the current
// contents of x.volt — callers choose cold or warm starts — toward the
// drive vector v. It reports convergence; a non-nil error means the
// attempt aborted on a linear-solver failure that the LU fallback
// could not rescue.
func (x *Crossbar) newtonIterate(ctx context.Context, v []float64, damped bool, policy SolverPolicy, sol *Solution) (bool, error) {
	prevResid := math.Inf(1)
	// lastStep is the max |Δv| of the last *applied* update — after a
	// damped backtrack this is the shortened step, not the full Newton
	// step. Both the convergence/stall tests and the reported
	// Solution.MaxStep use the applied length; tracking the full length
	// here once over-reported MaxStep and made the stall test compare
	// the wrong step.
	lastStep := math.Inf(1)
	fullStep := math.Inf(1) // length of the undamped Newton step
	scale := 1.0
	update := 0
	for iter := 0; iter < x.maxNewton; iter++ {
		// Cooperative cancellation: one cheap Err check per Newton
		// update, so a revoked deadline stops the solve before its next
		// linear system instead of after the whole ladder.
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return false, fmt.Errorf("xbar: solve cancelled at Newton update %d: %w", update, cerr)
			}
		}
		x.assemble(v)
		resid := x.kclResidual()
		forced := x.faults != nil && x.faults.BacktrackEvery && scale == 1 && !math.IsInf(fullStep, 1)
		if damped && (resid > prevResid || forced) && scale > minDamping {
			// The last step increased the KCL residual: retreat to a
			// shorter step along the same Newton direction and
			// re-linearize there.
			scale *= 0.5
			for n := range x.volt {
				x.volt[n] = x.prev[n] + scale*x.step[n]
			}
			lastStep = scale * fullStep
			sol.DampedSteps++
			continue
		}
		sol.Residual = resid
		if math.IsInf(lastStep, 1) {
			sol.MaxStep = 0 // converged before any update (e.g. zero drive)
		} else {
			sol.MaxStep = lastStep
		}
		if resid <= kclTol || (lastStep < x.tolV && resid <= kclOK) {
			sol.Converged = true
			return true, nil
		}
		if lastStep < x.tolV {
			// Steps vanished while KCL is still violated: a stall the
			// pre-diagnostics solver would have returned silently.
			return false, nil
		}

		// Solve J·vNew = rhs for the Newton update: CG with the current
		// iterate as warm start, direct LU when CG cannot.
		update++
		copy(x.delta, x.volt)
		var stats linalg.CGStats
		var err error
		if x.faults != nil && x.faults.CGBreakdownAt == update {
			err = &linalg.BreakdownError{Iteration: 1, PAP: -1} // injected
		} else {
			opt := linalg.CGOptions{Tol: 1e-12}
			if x.activePrecond != nil {
				opt.Precond = x.activePrecond
			}
			stats, err = linalg.SolveCG(x.pattern.Matrix(), x.rhs, x.delta, x.ws, opt)
		}
		sol.CGIters += stats.Iterations
		sol.NewtonIters++
		if err != nil {
			if errors.Is(err, linalg.ErrBreakdown) {
				sol.CGBreakdowns++
			}
			if policy == PolicyFailFast {
				return false, fmt.Errorf("xbar: Newton update %d: %w", update, err)
			}
			direct, derr := linalg.SolveDirect(x.pattern.Matrix(), x.rhs)
			if derr != nil {
				return false, fmt.Errorf("xbar: Newton update %d: CG failed (%v); direct fallback: %w", update, err, derr)
			}
			copy(x.delta, direct)
			sol.LUFallbacks++
		}

		copy(x.prev, x.volt)
		var maxStep float64
		for n := range x.volt {
			d := x.delta[n] - x.volt[n]
			x.step[n] = d
			if d = math.Abs(d); d > maxStep {
				maxStep = d
			}
		}
		lastStep = maxStep
		fullStep = maxStep
		prevResid = resid
		scale = 1
		copy(x.volt, x.delta)
	}
	return false, nil
}

// sourceStep is the continuation rung: it ramps the drive voltages to
// their targets in sourceSteps stages, solving each with damped Newton
// warm-started from the previous stage's solution.
func (x *Crossbar) sourceStep(ctx context.Context, v []float64, policy SolverPolicy, sol *Solution) (bool, error) {
	scaled := make([]float64, len(v)) // rare recovery path; allocation is fine
	linalg.Fill(x.volt, 0)
	ok := false
	for k := 1; k <= sourceSteps; k++ {
		f := float64(k) / sourceSteps
		for i := range v {
			scaled[i] = f * v[i]
		}
		var err error
		ok, err = x.newtonIterate(ctx, scaled, true, policy, sol)
		if err != nil {
			return false, err
		}
		// An intermediate stage that fails still leaves a usable warm
		// start; only the final stage's convergence matters.
	}
	return ok, nil
}
