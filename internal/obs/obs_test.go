package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Concurrent counter/gauge/histogram updates must be exact (run under
// -race as part of the race gate).
func TestConcurrentUpdatesExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	g := r.Gauge("test.gauge")
	h := r.Histogram("test.hist", []float64{1, 2, 4})

	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j % 5))
			}
		}(i)
	}
	wg.Wait()

	if got, want := c.Load(), int64(2*goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Each goroutine observes 0,1,2,3,4 repeating: sum per goroutine is
	// perG/5 * 10.
	if got, want := h.Sum(), float64(goroutines*(perG/5)*10); got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// Observations must land in the bucket whose bound is the smallest
// upper bound >= x, with values above the last bound in the overflow
// bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0, 0.5, 1} { // <= 1
		h.Observe(x)
	}
	for _, x := range []float64{1.01, 2} { // (1, 2]
		h.Observe(x)
	}
	h.Observe(3.999)                                        // (2, 4]
	for _, x := range []float64{4.0001, 100, math.Inf(1)} { // > 4
		h.Observe(x)
	}
	s := h.snapshot(false)
	want := []int64{3, 2, 1, 3}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	for _, bad := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bad)
				}
			}()
			newHistogram(bad)
		}()
	}
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	r.Histogram("h", []float64{1, 2}) // same bounds: fine
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registration with different bounds: expected panic")
			}
		}()
		r.Histogram("h", []float64{1, 3})
	}()
}

// Two snapshots of an unchanged registry must be identical, and so
// must their JSON serializations.
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(7)
	r.Counter("a.counter").Add(3)
	r.Gauge("z.gauge").Set(-2)
	h := r.Histogram("m.hist", []float64{1, 10, 100})
	for _, x := range []float64{0.5, 5, 50, 500} {
		h.Observe(x)
	}

	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	var j1, j2 bytes.Buffer
	if err := r.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Errorf("JSON serializations differ:\n%s\n%s", j1.String(), j2.String())
	}
	var decoded SnapshotData
	if err := json.Unmarshal(j1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["a.counter"] != 3 || decoded.Counters["b.counter"] != 7 {
		t.Errorf("decoded counters = %v", decoded.Counters)
	}
	if hs := decoded.Histograms["m.hist"]; hs.Count != 4 || hs.Counts[3] != 1 {
		t.Errorf("decoded histogram = %+v", hs)
	}
}

// Reset must return exactly what it cleared and leave the registry at
// zero; Snapshot must never clear.
func TestResetSwapSemantics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Histogram("h", []float64{1}).Observe(0.5)

	if got := r.Snapshot().Counters["c"]; got != 5 {
		t.Fatalf("snapshot = %d, want 5", got)
	}
	if got := r.Snapshot().Counters["c"]; got != 5 {
		t.Fatalf("snapshot cleared the counter: %d", got)
	}
	cleared := r.Reset()
	if cleared.Counters["c"] != 5 || cleared.Histograms["h"].Count != 1 {
		t.Errorf("Reset returned %+v, want the pre-reset values", cleared)
	}
	after := r.Snapshot()
	if after.Counters["c"] != 0 || after.Histograms["h"].Count != 0 {
		t.Errorf("registry not cleared: %+v", after)
	}
}

func TestEnabledGatesTimers(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if !Now().IsZero() {
		t.Error("Now() while disabled should be the zero Time")
	}
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBuckets)
	h.ObserveSince(Now())
	h.ObserveSince(time.Now().Add(-time.Second)) // non-zero start, but disabled
	if h.Count() != 0 {
		t.Errorf("disabled ObserveSince recorded %d observations", h.Count())
	}
	r.RecordSpan("op", time.Now().Add(-time.Millisecond))
	if spans := r.Spans(); len(spans) != 0 {
		t.Errorf("disabled RecordSpan recorded %d spans", len(spans))
	}

	SetEnabled(true)
	start := Now()
	if start.IsZero() {
		t.Fatal("Now() while enabled returned zero")
	}
	h.ObserveSince(start)
	if h.Count() != 1 {
		t.Errorf("enabled ObserveSince recorded %d observations, want 1", h.Count())
	}
}

func TestSpanRing(t *testing.T) {
	r := NewRegistry()
	base := time.Now().Add(-time.Minute)
	for i := 0; i < traceRingSize+10; i++ {
		r.RecordSpan("op", base)
	}
	spans, dropped := r.trace.snapshot(false)
	if len(spans) != traceRingSize {
		t.Errorf("ring holds %d spans, want %d", len(spans), traceRingSize)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
	for _, s := range spans {
		if s.Name != "op" || s.Duration <= 0 {
			t.Fatalf("bad span %+v", s)
		}
	}
}

func TestHTTPHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.hits").Add(42)
	addr, err := r.Serve("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s SnapshotData
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("endpoint did not serve valid JSON: %v", err)
	}
	if s.Counters["http.hits"] != 42 {
		t.Errorf("served counters = %v", s.Counters)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(0, 2, 3); !reflect.DeepEqual(got, []float64{0, 2, 4}) {
		t.Errorf("LinearBuckets = %v", got)
	}
	if got := ExpBuckets(1, 2, 4); !reflect.DeepEqual(got, []float64{1, 2, 4, 8}) {
		t.Errorf("ExpBuckets = %v", got)
	}
}

// Steady-state metric operations must not allocate — they sit inside
// the MVM loop whose 0 allocs/op contract is enforced by the funcsim
// tests.
func TestMetricOpsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.c")
	g := r.Gauge("alloc.g")
	h := r.Histogram("alloc.h", LatencyBuckets)
	r.RecordSpan("warm", time.Now().Add(-time.Microsecond)) // preallocate the ring
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		start := Now()
		h.Observe(1e-5)
		h.ObserveSince(start)
		r.RecordSpan("op", start)
	})
	if allocs != 0 {
		t.Errorf("metric ops allocate %.1f objects per run, want 0", allocs)
	}
}
