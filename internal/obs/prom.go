package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promSanitize maps a dotted metric name onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune (dots,
// dashes) becomes an underscore, and a leading digit gains one.
func promSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitSeries splits a flattened snapshot key (name or name{labels})
// into its base name and the inner label text (without braces).
func splitSeries(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// withLabels renders name{labels} (or bare name when labels is empty).
func withLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// addLabel appends one k="v" pair to an inner label text.
func addLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family: every series of one sanitized name
// under one TYPE declaration.
type promFamily struct {
	name string
	kind string // counter | gauge | histogram
	rows []promRow
}

// promRow is one series of a family, pre-rendered except for the
// family name prefix. For histograms the row fans out into
// _bucket/_sum/_count lines.
type promRow struct {
	labels string
	value  string            // counter/gauge
	hist   HistogramSnapshot // histogram (when kind == "histogram")
}

// WriteProm writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` line per family,
// dotted names sanitized to underscores, vec label sets preserved,
// histograms expanded into cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`, and SLO trackers exported as
// obs_slo_{error_rate,burn_rate,...}{slo="name"} series. Output is
// deterministically ordered (families by name, series by label text),
// so identical registry state yields identical bytes.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	fams := map[string]*promFamily{}
	add := func(key, kind, value string, hist HistogramSnapshot) {
		base, labels := splitSeries(key)
		name := promSanitize(base)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		f.rows = append(f.rows, promRow{labels: labels, value: value, hist: hist})
	}
	for key, v := range s.Counters {
		add(key, "counter", strconv.FormatInt(v, 10), HistogramSnapshot{})
	}
	for key, v := range s.Gauges {
		add(key, "gauge", strconv.FormatInt(v, 10), HistogramSnapshot{})
	}
	for key, h := range s.Histograms {
		add(key, "histogram", "", h)
	}
	for name, o := range s.SLOs {
		labels := addLabel("", "slo", name)
		slo := func(metric, value string) {
			add(withLabels("obs.slo."+metric, labels), "gauge", value, HistogramSnapshot{})
		}
		slo("objective", promFloat(o.Objective))
		slo("error_rate", promFloat(o.ErrorRate))
		slo("burn_rate", promFloat(o.BurnRate))
		slo("window_good", strconv.FormatInt(o.WindowGood, 10))
		slo("window_bad", strconv.FormatInt(o.WindowBad, 10))
		add(withLabels("obs.slo.good_total", labels), "counter", strconv.FormatInt(o.TotalGood, 10), HistogramSnapshot{})
		add(withLabels("obs.slo.bad_total", labels), "counter", strconv.FormatInt(o.TotalBad, 10), HistogramSnapshot{})
	}
	add("obs.spans_dropped_total", "counter", strconv.FormatInt(s.SpansDropped, 10), HistogramSnapshot{})

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].labels < f.rows[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, row := range f.rows {
			if f.kind != "histogram" {
				if _, err := fmt.Fprintf(w, "%s %s\n", withLabels(f.name, row.labels), row.value); err != nil {
					return err
				}
				continue
			}
			var cum int64
			for i, bound := range row.hist.Bounds {
				cum += row.hist.Counts[i]
				line := withLabels(f.name+"_bucket", addLabel(row.labels, "le", promFloat(bound)))
				if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
					return err
				}
			}
			cum = row.hist.Count
			line := withLabels(f.name+"_bucket", addLabel(row.labels, "le", "+Inf"))
			if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", withLabels(f.name+"_sum", row.labels), promFloat(row.hist.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabels(f.name+"_count", row.labels), row.hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
