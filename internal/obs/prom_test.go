package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// promGoldenRegistry builds a registry whose WriteProm output is fully
// deterministic: fixed values, a fixed SLO clock, and no spans.
func promGoldenRegistry() *Registry {
	clock := func() time.Time { return time.Unix(1_700_000_000, 0) }
	r := NewRegistry()
	r.Counter("demo.requests").Add(5)
	r.Gauge("demo.inflight").Set(2)
	h := r.Histogram("demo.latency.seconds", []float64{0.1, 1})
	for _, x := range []float64{0.05, 0.5, 5} {
		h.Observe(x)
	}
	cv := r.CounterVec("demo.tenant.requests", "tenant", "outcome")
	cv.v.maxSeries = 2
	cv.With("acme", "ok").Add(3)
	cv.With(`quo"ted`, "error").Inc()
	cv.With("overflowing", "ok").Inc() // past the cap → _overflow series
	hv := r.HistogramVec("demo.tenant.latency.seconds", []float64{0.1, 1}, "tenant")
	hv.With("acme").Observe(0.25)
	slo := r.SLO("demo.latency", SLOConfig{Objective: 0.9, Window: time.Minute, Buckets: 6, Clock: clock})
	for i := 0; i < 9; i++ {
		slo.Observe(true)
	}
	slo.Observe(false)
	return r
}

// WriteProm output is contractually deterministic (families sorted by
// name, series by label text), so the full exposition is pinned as a
// golden file. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promGoldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteProm output drifted from golden file %s.\ngot:\n%s\nwant:\n%s",
			golden, buf.String(), string(want))
	}
	// Determinism double-check: a second write of the same registry
	// yields identical bytes.
	var again bytes.Buffer
	if err := promGoldenRegistry().WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two WriteProm calls on identical registries differ")
	}
}

// Every non-comment exposition line must match the version 0.0.4 text
// format grammar, and histogram families must carry the cumulative
// _bucket/_sum/_count series with an +Inf bucket equal to the count.
func TestWritePromFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := promGoldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	typeLine := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !typeLine.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
			seen[line] = true
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("bad sample line: %q", line)
		}
		seen[line] = true
	}
	for _, want := range []string{
		"# TYPE demo_latency_seconds histogram",
		`demo_latency_seconds_bucket{le="0.1"} 1`,
		`demo_latency_seconds_bucket{le="1"} 2`,
		`demo_latency_seconds_bucket{le="+Inf"} 3`,
		"demo_latency_seconds_count 3",
		`demo_tenant_requests{tenant="acme",outcome="ok"} 3`,
		`demo_tenant_requests{tenant="_overflow",outcome="_overflow"} 1`,
		`obs_slo_error_rate{slo="demo.latency"} 0.1`,
		`obs_slo_objective{slo="demo.latency"} 0.9`,
		`obs_slo_window_good{slo="demo.latency"} 9`,
		"obs_labels_dropped 1",
		"obs_spans_dropped_total 0",
	} {
		if !seen[want] {
			t.Errorf("exposition lacks line %q", want)
		}
	}
}

// Dotted (and otherwise invalid) metric names must sanitize onto the
// Prometheus name charset without collapsing distinct characters'
// positions.
func TestPromSanitize(t *testing.T) {
	cases := map[string]string{
		"serve.tenant.latency": "serve_tenant_latency",
		"a-b.c":                "a_b_c",
		"9lives":               "_9lives",
		"ok_name:sub":          "ok_name:sub",
	}
	for in, want := range cases {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
