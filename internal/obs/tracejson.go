package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one event in the Chrome trace-event JSON format, the
// form chrome://tracing and Perfetto load directly. Complete spans use
// "ph":"X" with ts and dur in microseconds per the format spec;
// metadata records (thread names) use "ph":"M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
// spansDropped is an extension field (ignored by viewers) surfacing
// how many span events fell off the ring before this export.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	SpansDropped    int64         `json:"spansDropped"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteTrace exports the registry's span ring as Chrome trace-event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev. Each
// span becomes one complete event; its timestamp is the span's offset
// from the registry epoch (Epoch), so the trace timeline starts near
// zero regardless of wall-clock values. Spans recorded with a trace ID
// (RecordSpanTID, StartSpan) land on that ID's track ("tid"), grouping
// the spans of one logical operation — e.g. one inference request —
// into one row of the viewer; ungrouped spans share track 0. Spans
// from StartSpan additionally carry span_id/parent_id args encoding
// the parent/child tree, and a root span's Track (StartRootSpan)
// becomes the row's thread_name metadata, so per-tenant requests are
// labeled rows. Complete events are sorted by timestamp and metadata
// precedes them, so identical ring contents serialize identically.
//
// It returns the number of events written (metadata included). The
// ring holds the most recent traceRingSize spans; earlier spans of a
// long run have been overwritten (counted by the envelope's
// spansDropped and SnapshotData.SpansDropped).
func (r *Registry) WriteTrace(w io.Writer) (int, error) {
	spans, dropped := r.trace.snapshot(false)
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		SpansDropped:    dropped,
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
	}
	// Track names by trace ID: last writer wins, which is fine — a
	// trace has one root and therefore one track name in practice.
	tracks := map[int64]string{}
	for _, e := range spans {
		ts := float64(e.Start-r.epochNano) / 1e3
		if ts < 0 {
			ts = 0
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  "span",
			Ph:   "X",
			Pid:  1,
			Tid:  e.Trace,
			Ts:   ts,
			Dur:  float64(e.Duration) / 1e3,
		}
		if e.Span != 0 {
			ce.Args = map[string]any{"span_id": e.Span, "parent_id": e.Parent}
		}
		if e.Track != "" {
			tracks[e.Trace] = e.Track
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		return tr.TraceEvents[i].Ts < tr.TraceEvents[j].Ts
	})
	if len(tracks) > 0 {
		tids := make([]int64, 0, len(tracks))
		for tid := range tracks {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		meta := make([]chromeEvent, 0, len(tids))
		for _, tid := range tids {
			meta = append(meta, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"name": tracks[tid]},
			})
		}
		tr.TraceEvents = append(meta, tr.TraceEvents...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		return 0, err
	}
	return len(tr.TraceEvents), nil
}
