package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome
// trace-event JSON format, the form chrome://tracing and Perfetto
// load directly. ts and dur are in microseconds per the format spec.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int64   `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// chromeTrace is the JSON-object envelope of the trace-event format.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteTrace exports the registry's span ring as Chrome trace-event
// JSON, loadable in chrome://tracing or https://ui.perfetto.dev. Each
// span becomes one complete event; its timestamp is the span's offset
// from the registry epoch (Epoch), so the trace timeline starts near
// zero regardless of wall-clock values. Spans recorded with a trace ID
// (RecordSpanTID) land on that ID's track ("tid"), grouping the spans
// of one logical operation — e.g. one funcsim forward pass — into one
// row of the viewer; ungrouped spans share track 0. Events are sorted
// by timestamp, so identical ring contents serialize identically.
//
// It returns the number of events written. The ring holds the most
// recent traceRingSize spans; earlier spans of a long run have been
// overwritten (count them via SnapshotData.SpansDropped).
func (r *Registry) WriteTrace(w io.Writer) (int, error) {
	spans := r.Spans()
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
	}
	for _, e := range spans {
		ts := float64(e.Start-r.epochNano) / 1e3
		if ts < 0 {
			ts = 0
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: e.Name,
			Cat:  "span",
			Ph:   "X",
			Pid:  1,
			Tid:  e.Trace,
			Ts:   ts,
			Dur:  float64(e.Duration) / 1e3,
		})
	}
	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		return tr.TraceEvents[i].Ts < tr.TraceEvents[j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		return 0, err
	}
	return len(tr.TraceEvents), nil
}
