package obs

import (
	"sync"
	"time"
)

// traceRingSize is the number of span events a registry retains. Spans
// instrument coarse operations (layer forwards, batch solves, training
// epochs), so a small ring keeps the recent execution history without
// growing with run length.
const traceRingSize = 256

// Event is one completed span in the trace ring.
//
// Timestamp contract: Start is in Unix nanoseconds, derived as the
// registry's epoch wall time plus the span start's *monotonic* offset
// from that epoch (see Registry.Epoch). Within one registry, Start
// values are therefore totally ordered and immune to wall-clock jumps;
// across registries (or processes) they are only as comparable as the
// wall clocks that anchored the epochs. Exporters that need a relative
// timeline (WriteTrace) subtract the snapshot's EpochUnixNano.
type Event struct {
	// Name identifies the operation (static strings at call sites).
	Name string `json:"name"`
	// Start is the span start in Unix nanoseconds (epoch-anchored
	// monotonic; see the type comment).
	Start int64 `json:"start_unix_nano"`
	// Duration is the span length in nanoseconds.
	Duration int64 `json:"duration_nano"`
	// Trace groups spans that belong to one logical operation (e.g.
	// one inference forward pass). 0 means ungrouped. IDs come from
	// NextTraceID.
	Trace int64 `json:"trace_id,omitempty"`
	// Span is this span's own ID and Parent the enclosing span's (0
	// for roots), forming the parented span tree StartSpan builds.
	// Spans recorded through RecordSpan/RecordSpanTID carry 0 for
	// both — flat, as before.
	Span   int64 `json:"span_id,omitempty"`
	Parent int64 `json:"parent_id,omitempty"`
	// Track optionally names the trace's display row (e.g.
	// "tenant:acme"); set on root spans via StartRootSpan and emitted
	// as Chrome thread_name metadata by WriteTrace.
	Track string `json:"track,omitempty"`
}

// eventRing is a fixed-capacity overwrite-oldest span buffer. Slots
// are preallocated on first use; recording into a warm ring does not
// allocate (span names are static strings, so storing one copies a
// two-word header).
type eventRing struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // slot the next event lands in
	total   int64 // events ever recorded
	dropped int64 // events overwritten
}

func (r *eventRing) record(e Event) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]Event, traceRingSize)
	}
	if r.total >= int64(len(r.buf)) {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained events oldest-first plus the dropped
// count; clear empties the ring.
func (r *eventRing) snapshot(clear bool) ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > int64(len(r.buf)) {
		n = int64(len(r.buf))
	}
	var out []Event
	if n > 0 {
		out = make([]Event, 0, n)
		start := (r.next - int(n) + len(r.buf)) % len(r.buf)
		for i := 0; i < int(n); i++ {
			out = append(out, r.buf[(start+i)%len(r.buf)])
		}
	}
	dropped := r.dropped
	if clear {
		r.next, r.total, r.dropped = 0, 0, 0
	}
	return out, dropped
}

// RecordSpan records a completed span (started at start, ending now)
// into the registry's trace ring. A zero start — what Now returns when
// instrumentation is disabled — is skipped, as is recording while
// disabled.
func (r *Registry) RecordSpan(name string, start time.Time) {
	r.RecordSpanTID(name, start, 0)
}

// RecordSpanTID is RecordSpan with an explicit trace ID, so spans of
// one logical operation (an inference pass, a training step) group
// together in exports. Obtain IDs from NextTraceID; 0 means ungrouped.
func (r *Registry) RecordSpanTID(name string, start time.Time, trace int64) {
	if start.IsZero() || !enabled.Load() {
		return
	}
	// Anchor the wall-clock Start at the registry epoch through the
	// monotonic delta, so ring timestamps stay ordered even if the
	// wall clock steps mid-run (see Event).
	r.trace.record(Event{
		Name:     name,
		Start:    r.epochNano + start.Sub(r.epoch).Nanoseconds(),
		Duration: time.Since(start).Nanoseconds(),
		Trace:    trace,
	})
}

// Spans returns the retained span events, oldest first.
func (r *Registry) Spans() []Event {
	out, _ := r.trace.snapshot(false)
	return out
}
