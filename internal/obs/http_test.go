package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, mux http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	resp := rec.Result()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, body
}

// Each endpoint must declare the right content type and serve its
// documented payload.
func TestMuxContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux.hits").Add(3)
	r.RecordSpan("mux.op", time.Now().Add(-time.Millisecond))
	mux := r.Mux(false)

	for _, tc := range []struct {
		path string
		ct   string
	}{
		{"/metrics", "application/json"},
		{"/metrics?format=text", "text/plain; charset=utf-8"},
		{"/trace", "application/json"},
		{"/", "application/json"},
	} {
		resp, body := get(t, mux, tc.path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.ct {
			t.Errorf("%s: content type %q, want %q", tc.path, got, tc.ct)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", tc.path)
		}
	}

	_, body := get(t, mux, "/trace")
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1 {
		t.Errorf("/trace has %d events, want 1", len(tr.TraceEvents))
	}
}

// The JSON snapshot endpoint must serialize deterministically —
// byte-identical responses for identical registry state.
func TestMetricsJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.c").Add(1)
	r.Counter("a.c").Add(2)
	r.Gauge("m.g").Set(-5)
	r.Histogram("h.h", []float64{1, 10}).Observe(3)
	mux := r.Mux(false)

	_, b1 := get(t, mux, "/metrics")
	_, b2 := get(t, mux, "/metrics")
	if string(b1) != string(b2) {
		t.Errorf("identical state served different bytes:\n%s\n%s", b1, b2)
	}
}

// pprof must be mounted only when asked for.
func TestMuxPprofOptIn(t *testing.T) {
	r := NewRegistry()
	resp, _ := get(t, r.Mux(true), "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof-enabled mux: /debug/pprof/cmdline status %d", resp.StatusCode)
	}
	// Without pprof the path falls through to "/" (the snapshot), which
	// serves JSON — not a pprof payload.
	resp, body := get(t, r.Mux(false), "/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof-disabled mux: status %d", resp.StatusCode)
	}
	var s SnapshotData
	if err := json.Unmarshal(body, &s); err != nil {
		t.Errorf("pprof-disabled mux should fall through to the JSON snapshot: %v", err)
	}
}

// Scraping while metrics are being recorded must be safe (run under
// -race as part of the race gate) and always serve a parseable
// snapshot.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("busy.c")
	h := r.Histogram("busy.h", []float64{1, 2, 4})
	mux := r.Mux(false)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(1.5)
					r.RecordSpan("busy.op", time.Now().Add(-time.Microsecond))
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		path := "/metrics"
		if i%3 == 1 {
			path = "/trace"
		} else if i%3 == 2 {
			path = "/metrics?format=text"
		}
		resp, body := get(t, mux, path)
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("scrape %d (%s): status %d, %d bytes", i, path, resp.StatusCode, len(body))
		}
		if path == "/metrics" {
			var s SnapshotData
			if err := json.Unmarshal(body, &s); err != nil {
				t.Fatalf("scrape %d: bad JSON under load: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
