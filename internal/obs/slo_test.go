package obs

import (
	"errors"
	"math"
	"testing"
	"time"
)

// fakeClock is a settable time source for SLOConfig.Clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) time() time.Time         { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func sloCfg(obj float64, c *fakeClock) SLOConfig {
	return SLOConfig{Objective: obj, Window: time.Minute, Buckets: 6, Clock: c.time}
}

// Burn rate is the window error rate divided by the error budget:
// with a 0.9 objective (10% budget), a 10% error rate burns at
// exactly 1.0 and a 50% error rate at 5.0.
func TestSLOBurnRateMath(t *testing.T) {
	clock := newFakeClock()
	s := newSLO("lat", sloCfg(0.9, clock))
	for i := 0; i < 9; i++ {
		s.Observe(true)
	}
	s.Observe(false)
	if got := s.ErrorRate(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("error rate = %g, want 0.1", got)
	}
	if got := s.BurnRate(); math.Abs(got-1) > 1e-12 {
		t.Errorf("burn rate = %g, want 1.0 (budget consumed exactly at rate)", got)
	}
	for i := 0; i < 8; i++ {
		s.Observe(false)
	}
	// 9 good / 9 bad → error 0.5 → burn 5.
	if got := s.BurnRate(); math.Abs(got-5) > 1e-12 {
		t.Errorf("burn rate = %g, want 5", got)
	}
	snap := s.Snapshot()
	if snap.WindowGood != 9 || snap.WindowBad != 9 || snap.TotalBad != 9 {
		t.Errorf("snapshot = %+v", snap)
	}
	if math.Abs(snap.BurnRate-5) > 1e-12 {
		t.Errorf("snapshot burn rate = %g, want 5", snap.BurnRate)
	}
}

// An empty window reports burn 0 — no evidence of burn — rather than
// NaN or a stale rate.
func TestSLOEmptyWindow(t *testing.T) {
	s := newSLO("empty", sloCfg(0.99, newFakeClock()))
	if got := s.BurnRate(); got != 0 {
		t.Errorf("empty burn rate = %g, want 0", got)
	}
	snap := s.Snapshot()
	if snap.ErrorRate != 0 || snap.BurnRate != 0 {
		t.Errorf("empty snapshot rates = %g/%g, want 0/0", snap.ErrorRate, snap.BurnRate)
	}
}

// Observations age out as the window slides: a burst of failures must
// stop contributing once the clock moves a full window past it.
func TestSLOWindowSlides(t *testing.T) {
	clock := newFakeClock()
	s := newSLO("slide", sloCfg(0.9, clock))
	for i := 0; i < 5; i++ {
		s.Observe(false)
	}
	if got := s.ErrorRate(); got != 1 {
		t.Fatalf("error rate = %g, want 1", got)
	}
	// Half a window later the burst is still in view.
	clock.advance(30 * time.Second)
	if got := s.ErrorRate(); got != 1 {
		t.Errorf("error rate after half window = %g, want 1", got)
	}
	// A full window past the burst, it has aged out.
	clock.advance(45 * time.Second)
	if got := s.ErrorRate(); got != 0 {
		t.Errorf("error rate after window slid past burst = %g, want 0", got)
	}
	// New observations land in reused slots without resurrecting the
	// expired burst.
	s.Observe(true)
	snap := s.Snapshot()
	if snap.WindowGood != 1 || snap.WindowBad != 0 {
		t.Errorf("window after slide = good %d bad %d, want 1/0", snap.WindowGood, snap.WindowBad)
	}
	// Lifetime totals keep the whole history.
	if snap.TotalGood != 1 || snap.TotalBad != 5 {
		t.Errorf("totals = good %d bad %d, want 1/5", snap.TotalGood, snap.TotalBad)
	}
}

// TrySLO is idempotent for a matching objective and refuses a
// conflicting one with ErrDuplicateName.
func TestTrySLODuplicate(t *testing.T) {
	r := NewRegistry()
	a, err := r.TrySLO("dup", SLOConfig{Objective: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.TrySLO("dup", SLOConfig{Objective: 0.95, Window: time.Hour})
	if err != nil || b != a {
		t.Errorf("matching re-registration: got %p err %v, want %p", b, err, a)
	}
	if _, err := r.TrySLO("dup", SLOConfig{Objective: 0.9}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("objective mismatch: err = %v, want ErrDuplicateName", err)
	}
}

func TestSLOObjectiveValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 0, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("objective %g: expected panic", bad)
				}
			}()
			newSLO("bad", SLOConfig{Objective: bad})
		}()
	}
}

// SLO trackers ride the registry snapshot and are cleared by Reset
// like every other metric.
func TestSLORegistrySnapshotAndReset(t *testing.T) {
	clock := newFakeClock()
	r := NewRegistry()
	s := r.SLO("reg.slo", sloCfg(0.9, clock))
	s.Observe(true)
	s.Observe(false)

	snap := r.Snapshot().SLOs["reg.slo"]
	if snap.WindowGood != 1 || snap.WindowBad != 1 {
		t.Errorf("registry snapshot SLO = %+v", snap)
	}
	if math.Abs(snap.BurnRate-5) > 1e-12 { // error 0.5 / budget 0.1
		t.Errorf("snapshot burn rate = %g, want 5", snap.BurnRate)
	}
	cleared := r.Reset().SLOs["reg.slo"]
	if cleared.WindowBad != 1 || cleared.TotalBad != 1 {
		t.Errorf("Reset returned %+v, want pre-reset window", cleared)
	}
	after := r.Snapshot().SLOs["reg.slo"]
	if after.WindowGood != 0 || after.WindowBad != 0 || after.TotalGood != 0 {
		t.Errorf("SLO not cleared by Reset: %+v", after)
	}
	if after.Objective != 0.9 {
		t.Errorf("Reset lost the objective: %g", after.Objective)
	}
}
