package obs

import (
	"fmt"
	"strings"
	"sync"
)

// OverflowLabel is the label value every key takes on the shared
// overflow child of a vec that has hit its cardinality cap. Series
// rendered with this value aggregate everything past the cap; the
// obs.labels.dropped counter records how many observations were
// redirected there.
const OverflowLabel = "_overflow"

// DefaultMaxSeries caps the number of distinct label-value
// combinations one vec will intern. The cap exists because label
// values are caller-controlled strings (tenant names arrive on the
// wire): without a bound, a hostile or misconfigured client could
// grow the registry without limit. 64 comfortably covers the in-repo
// dimensions (tenants in a load test, fidelity tiers, outcomes) while
// keeping worst-case snapshot cost trivial.
const DefaultMaxSeries = 64

// labelsDroppedName is the per-registry counter of vec resolutions
// redirected to an overflow child (one increment per redirected With
// call, not per unique label set — so it keeps growing while the
// overflow is being hit, which is the signal that matters).
const labelsDroppedName = "obs.labels.dropped"

// labelKeySep joins label values into an interning key. 0x1f (unit
// separator) cannot collide with printable label values in practice;
// values containing it still round-trip correctly through the
// rendered series name, they merely risk interning collisions, which
// only affects which child two pathological value sets share.
const labelKeySep = "\x1f"

// vecChild is one interned label-value combination and its metric.
type vecChild[M any] struct {
	values []string
	metric *M
}

// vec is the shared core of CounterVec/GaugeVec/HistogramVec: a name,
// a fixed ordered label-key list, and a map of interned children.
// With is the only hot-ish path: a read-locked map hit returning the
// pre-existing child. Callers that care about the 0 allocs/op
// contract resolve handles once (per tenant, per tier) and keep them,
// exactly like scalar metric handles; With itself does not allocate
// on the hit path.
type vec[M any] struct {
	name      string
	keys      []string
	mk        func() *M
	maxSeries int
	dropped   *Counter

	mu       sync.RWMutex
	children map[string]*vecChild[M]
	overflow *vecChild[M]
}

func newVec[M any](name string, keys []string, dropped *Counter, mk func() *M) *vec[M] {
	ks := make([]string, len(keys))
	copy(ks, keys)
	return &vec[M]{
		name:      name,
		keys:      ks,
		mk:        mk,
		maxSeries: DefaultMaxSeries,
		dropped:   dropped,
		children:  map[string]*vecChild[M]{},
	}
}

// with resolves the child metric for the given label values, interning
// a new child on first use. Once maxSeries distinct children exist,
// further novel combinations share a single overflow child (all label
// values OverflowLabel) and each such resolution increments the
// registry's obs.labels.dropped counter.
func (v *vec[M]) with(values []string) *M {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vec %q got %d label values, want %d (%v)",
			v.name, len(values), len(v.keys), v.keys))
	}
	key := strings.Join(values, labelKeySep)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[key]; c != nil {
		return c.metric
	}
	if len(v.children) >= v.maxSeries {
		v.dropped.Inc()
		if v.overflow == nil {
			ov := make([]string, len(v.keys))
			for i := range ov {
				ov[i] = OverflowLabel
			}
			v.overflow = &vecChild[M]{values: ov, metric: v.mk()}
		}
		return v.overflow.metric
	}
	vals := make([]string, len(values))
	copy(vals, values)
	c = &vecChild[M]{values: vals, metric: v.mk()}
	v.children[key] = c
	return c.metric
}

// each calls f for every interned child, overflow child last. The
// read lock is held for the duration; f must not call back into the
// vec or the registry.
func (v *vec[M]) each(f func(values []string, m *M)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, c := range v.children {
		f(c.values, c.metric)
	}
	if v.overflow != nil {
		f(v.overflow.values, v.overflow.metric)
	}
}

// seriesName renders a flattened series identifier in Prometheus
// style — name{k1="v1",k2="v2"} — used as the key when vec children
// are merged into the flat snapshot maps. Values are escaped like
// Prometheus label values (backslash, quote, newline), so the
// rendered name is also directly usable in the text exposition.
func seriesName(name string, keys, values []string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// CounterVec is a family of Counters keyed by a fixed set of label
// keys. Resolve children with With and keep the handles; the children
// are ordinary Counters with the full allocation-free contract.
type CounterVec struct {
	v *vec[Counter]
}

// With returns the child counter for the given label values (one per
// key, in registration order), interning it on first use.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values) }

// Name returns the vec's metric name.
func (cv *CounterVec) Name() string { return cv.v.name }

// Keys returns a copy of the vec's label keys in registration order.
func (cv *CounterVec) Keys() []string { return append([]string(nil), cv.v.keys...) }

func (cv *CounterVec) capture(dst map[string]int64, clear bool) {
	cv.v.each(func(values []string, c *Counter) {
		name := seriesName(cv.v.name, cv.v.keys, values)
		if clear {
			dst[name] = c.Swap()
		} else {
			dst[name] = c.Load()
		}
	})
}

// GaugeVec is a family of Gauges keyed by a fixed set of label keys.
type GaugeVec struct {
	v *vec[Gauge]
}

// With returns the child gauge for the given label values, interning
// it on first use.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values) }

// Name returns the vec's metric name.
func (gv *GaugeVec) Name() string { return gv.v.name }

// Keys returns a copy of the vec's label keys in registration order.
func (gv *GaugeVec) Keys() []string { return append([]string(nil), gv.v.keys...) }

func (gv *GaugeVec) capture(dst map[string]int64, clear bool) {
	gv.v.each(func(values []string, g *Gauge) {
		name := seriesName(gv.v.name, gv.v.keys, values)
		if clear {
			dst[name] = g.v.Swap(0)
		} else {
			dst[name] = g.Load()
		}
	})
}

// HistogramVec is a family of Histograms (sharing one bucket layout)
// keyed by a fixed set of label keys.
type HistogramVec struct {
	v      *vec[Histogram]
	bounds []float64
}

// With returns the child histogram for the given label values,
// interning it on first use.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values) }

// Name returns the vec's metric name.
func (hv *HistogramVec) Name() string { return hv.v.name }

// Keys returns a copy of the vec's label keys in registration order.
func (hv *HistogramVec) Keys() []string { return append([]string(nil), hv.v.keys...) }

// Bounds returns a copy of the shared bucket upper bounds.
func (hv *HistogramVec) Bounds() []float64 { return append([]float64(nil), hv.bounds...) }

func (hv *HistogramVec) capture(dst map[string]HistogramSnapshot, clear bool) {
	hv.v.each(func(values []string, h *Histogram) {
		dst[seriesName(hv.v.name, hv.v.keys, values)] = h.snapshot(clear)
	})
}
