package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if tc := TraceFromContext(nil); tc.Valid() {
		t.Error("nil context yielded a valid trace")
	}
	if tc := TraceFromContext(context.Background()); tc.Valid() {
		t.Error("bare context yielded a valid trace")
	}
	ctx := ContextWithTrace(nil, TraceContext{Trace: 7, Span: 3})
	tc := TraceFromContext(ctx)
	if !tc.Valid() || tc.Trace != 7 || tc.Span != 3 {
		t.Errorf("round-tripped trace context = %+v", tc)
	}
}

// The interior-layer gating pattern — extract, check Valid, bail — is
// on 0 allocs/op hot paths (MVM, tile, solve), so it must not
// allocate on untraced contexts.
func TestTraceFromContextDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if TraceFromContext(ctx).Valid() {
			t.Fatal("background context traced")
		}
		if TraceFromContext(nil).Valid() {
			t.Fatal("nil context traced")
		}
	})
	if allocs != 0 {
		t.Errorf("untraced gate allocates %.1f objects per run, want 0", allocs)
	}
}

// StartSpan under a traced context must parent the new span on the
// innermost open span, and End must record the completed tree into
// the ring with consistent trace/span/parent IDs.
func TestStartSpanParenting(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()

	ctx, root := r.StartRootSpan(context.Background(), "serve.request", "tenant:acme")
	if root.TraceID() == 0 || root.SpanID() == 0 {
		t.Fatalf("root span ids = trace %d span %d, want non-zero", root.TraceID(), root.SpanID())
	}
	if tc := TraceFromContext(ctx); tc.Trace != root.TraceID() || tc.Span != root.SpanID() {
		t.Errorf("derived context carries %+v, want root's ids", tc)
	}

	cctx, child := r.StartSpan(ctx, "funcsim.forward")
	_, grand := r.StartSpan(cctx, "funcsim.mvm")
	grand.End()
	child.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	// Ring order is end order: grandchild, child, root.
	g, c, rt := spans[0], spans[1], spans[2]
	for _, e := range spans {
		if e.Trace != root.TraceID() {
			t.Errorf("span %q trace = %d, want %d", e.Name, e.Trace, root.TraceID())
		}
	}
	if rt.Name != "serve.request" || rt.Parent != 0 {
		t.Errorf("root event = %+v, want serve.request with parent 0", rt)
	}
	if rt.Track != "tenant:acme" {
		t.Errorf("root track = %q, want tenant:acme", rt.Track)
	}
	if c.Parent != rt.Span {
		t.Errorf("child parent = %d, want root span %d", c.Parent, rt.Span)
	}
	if g.Parent != c.Span {
		t.Errorf("grandchild parent = %d, want child span %d", g.Parent, c.Span)
	}
	if c.Track != "" || g.Track != "" {
		t.Error("non-root spans must not carry a track name")
	}
}

// A span started without an enclosing trace allocates a fresh trace
// ID, so standalone operations still group their own subtrees.
func TestStartSpanAllocatesTrace(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	ctx, sp := r.StartSpan(context.Background(), "op")
	if sp.TraceID() == 0 {
		t.Error("span without enclosing trace got trace ID 0")
	}
	if tc := TraceFromContext(ctx); tc.Trace != sp.TraceID() {
		t.Errorf("context trace = %d, want %d", tc.Trace, sp.TraceID())
	}
	sp.End()
}

// Disabled instrumentation must short-circuit: same context back, an
// inert span whose End records nothing, and zero-value Spans are
// always safe to End.
func TestStartSpanDisabled(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	ctx := context.Background()
	got, sp := r.StartSpan(ctx, "op")
	if got != ctx {
		t.Error("disabled StartSpan derived a new context")
	}
	if sp.TraceID() != 0 || sp.SpanID() != 0 {
		t.Errorf("disabled span ids = %d/%d, want 0/0", sp.TraceID(), sp.SpanID())
	}
	sp.End()
	(Span{}).End() // zero Span: inert by contract
	if spans := r.Spans(); len(spans) != 0 {
		t.Errorf("disabled span recorded %d events", len(spans))
	}
}

// The Chrome export must encode the parent/child tree in span_id/
// parent_id args and emit the root's track as thread_name metadata on
// the trace's row.
func TestWriteTraceParentedTree(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	ctx, root := r.StartRootSpan(context.Background(), "serve.request", "tenant:acme")
	_, child := r.StartSpan(ctx, "funcsim.forward")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if _, err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		SpansDropped *int64 `json:"spansDropped"`
		TraceEvents  []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.SpansDropped == nil || *tr.SpansDropped != 0 {
		t.Errorf("envelope spansDropped = %v, want present and 0", tr.SpansDropped)
	}
	byName := map[string]map[string]any{}
	var meta *struct {
		tid  int64
		name string
	}
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			byName[e.Name] = e.Args
		case "M":
			if e.Name == "thread_name" {
				meta = &struct {
					tid  int64
					name string
				}{e.Tid, e.Args["name"].(string)}
			}
		}
	}
	if meta == nil {
		t.Fatal("no thread_name metadata event")
	}
	if meta.name != "tenant:acme" || meta.tid != root.TraceID() {
		t.Errorf("thread_name = %q on tid %d, want tenant:acme on %d", meta.name, meta.tid, root.TraceID())
	}
	rootArgs, childArgs := byName["serve.request"], byName["funcsim.forward"]
	if rootArgs == nil || childArgs == nil {
		t.Fatalf("span events missing: %v", byName)
	}
	rootID, _ := rootArgs["span_id"].(float64)
	childParent, _ := childArgs["parent_id"].(float64)
	if rootID == 0 || int64(rootID) != root.SpanID() {
		t.Errorf("root span_id arg = %g, want %d", rootID, root.SpanID())
	}
	if int64(childParent) != root.SpanID() {
		t.Errorf("child parent_id arg = %g, want %d", childParent, root.SpanID())
	}
}

// Ring overflow must be surfaced everywhere spans are: the snapshot's
// SpansDropped field, WriteText's obs.spans_dropped line, and the
// Chrome envelope's spansDropped extension.
func TestSpansDroppedSurfaced(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := NewRegistry()
	base := time.Now().Add(-time.Second)
	for i := 0; i < traceRingSize+10; i++ {
		r.RecordSpan("op", base)
	}
	if got := r.Snapshot().SpansDropped; got != 10 {
		t.Errorf("Snapshot().SpansDropped = %d, want 10", got)
	}
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "obs.spans_dropped 10") {
		t.Errorf("WriteText lacks obs.spans_dropped line:\n%s", txt.String())
	}
	var buf bytes.Buffer
	if _, err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		SpansDropped int64 `json:"spansDropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.SpansDropped != 10 {
		t.Errorf("envelope spansDropped = %d, want 10", tr.SpansDropped)
	}
}
