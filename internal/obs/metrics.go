package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter. The zero value
// is ready to use; standalone Counters (not registered in any
// Registry) back per-object statistics such as funcsim's per-Matrix
// hardware-event counts. All methods are safe for concurrent use and
// never allocate.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value without modifying it.
func (c *Counter) Load() int64 { return c.v.Load() }

// Swap atomically resets the counter to zero and returns the value it
// held — the primitive behind every snapshot-and-clear Reset in the
// repo.
func (c *Counter) Swap() int64 { return c.v.Swap(0) }

// Gauge records the latest value of a level (queue depth, in-flight
// workers). The zero value is ready to use. All methods are safe for
// concurrent use and never allocate.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (use +1/-1 around a critical section to
// track occupancy).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram accumulates a distribution of float64 observations into
// fixed buckets. Bucket i counts observations x with x <= Bounds[i]
// (and x > Bounds[i-1]); one extra overflow bucket counts x above the
// last bound. Count and Sum are tracked exactly. Observations are a
// bucket search plus three atomic updates — no locks, no allocations —
// so histograms can sit inside the per-tile MVM loop.
type Histogram struct {
	bounds []float64 // immutable after construction, strictly increasing
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	// exemplars holds, per bucket, the trace ID of the most recent
	// observation recorded with ObserveExemplar — linking e.g. a
	// slow-request latency bucket to the request's span tree in the
	// trace export. 0 means no exemplar.
	exemplars []atomic.Int64
}

// newHistogram builds a histogram with the given upper bounds. bounds
// must be strictly increasing and non-empty.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Int64, len(b)+1),
	}
}

// bucketOf returns the index of the bucket x lands in. Linear scan:
// bucket lists are short (≤ ~16) and typical observations land in the
// first few buckets, where a scan beats a binary search.
func (h *Histogram) bucketOf(x float64) int {
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	i := h.bucketOf(x)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(x)
}

// ObserveExemplar is Observe plus an exemplar: the trace ID (from a
// request's TraceContext) is stored as the bucket's most recent
// exemplar, so exported snapshots can link a latency bucket — in
// particular the slow tail — to a concrete request's span tree. A
// zero trace records no exemplar. Same cost contract as Observe: a
// few atomics, no allocation.
func (h *Histogram) ObserveExemplar(x float64, trace int64) {
	i := h.bucketOf(x)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(x)
	if trace != 0 {
		h.exemplars[i].Store(trace)
	}
}

// ObserveSince records the seconds elapsed since start (from Now). A
// zero start means instrumentation was disabled when the measurement
// began; it is skipped.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() || !enabled.Load() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// snapshot captures the histogram state; when clear is set the state
// is atomically swapped out (per bucket) instead of read.
func (h *Histogram) snapshot(clear bool) HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: make([]int64, len(h.counts)),
	}
	if clear {
		for i := range h.counts {
			s.Counts[i] = h.counts[i].Swap(0)
		}
		s.Count = h.count.Swap(0)
		s.Sum = h.sum.swap(0)
	} else {
		for i := range h.counts {
			s.Counts[i] = h.counts[i].Load()
		}
		s.Count = h.count.Load()
		s.Sum = h.sum.load()
	}
	var any bool
	ex := make([]int64, len(h.exemplars))
	for i := range h.exemplars {
		if clear {
			ex[i] = h.exemplars[i].Swap(0)
		} else {
			ex[i] = h.exemplars[i].Load()
		}
		any = any || ex[i] != 0
	}
	if any {
		s.Exemplars = ex
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(x float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) swap(x float64) float64 {
	return math.Float64frombits(f.bits.Swap(math.Float64bits(x)))
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("obs: LinearBuckets needs n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared latency bucket layout: 1µs to ~67s in
// ×4 steps. All *_seconds histograms in the metric catalog use it, so
// latencies compare across subsystems.
var LatencyBuckets = ExpBuckets(1e-6, 4, 14)

// IterBuckets is the shared bucket layout for iteration counts
// (Newton, CG): 1 to 512 in powers of two.
var IterBuckets = ExpBuckets(1, 2, 10)
