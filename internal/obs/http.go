package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler that serves the registry snapshot.
// Every path returns the JSON form ("?format=text" switches to the
// sorted text lines, "?format=prom" to the Prometheus text exposition
// — see WriteProm), so it works both as a standalone endpoint and
// mounted under a path like /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WriteProm(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
		}
	})
}

// TraceHandler returns an http.Handler serving the span ring as Chrome
// trace-event JSON (see WriteTrace) — curl it to a file and load that
// in chrome://tracing or Perfetto.
func (r *Registry) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = r.WriteTrace(w)
	})
}

// Mux assembles the registry's HTTP surface:
//
//	/metrics   snapshot (JSON; ?format=text for text lines)
//	/trace     span ring as Chrome trace-event JSON
//	/          snapshot (back-compat with the pre-mux endpoint)
//
// With withPprof set it additionally mounts the net/http/pprof
// handlers under /debug/pprof/, so a live run can be CPU- or
// alloc-profiled (`go tool pprof http://addr/debug/pprof/profile`).
// pprof stays opt-in because it exposes goroutine dumps and symbol
// information; enable it only on loopback or trusted networks.
func (r *Registry) Mux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/trace", r.TraceHandler())
	mux.Handle("/", r.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts an HTTP server exposing the registry mux (see Mux) on
// addr and returns the bound address (useful with ":0"). The listener
// runs on a background goroutine until the process exits; Serve is
// meant for the opt-in -metrics-addr flag of the CLIs, not for managed
// servers.
func (r *Registry) Serve(addr string, withPprof bool) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Mux(withPprof)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
