package obs

import (
	"net"
	"net/http"
)

// Handler returns an http.Handler that serves the registry snapshot.
// Every path returns the JSON form ("?format=text" switches to the
// sorted text lines), so it works both as a standalone endpoint and
// mounted under a path like /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = r.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Serve starts an HTTP server exposing the registry on addr and
// returns the bound address (useful with ":0"). The listener runs on a
// background goroutine until the process exits; Serve is meant for the
// opt-in -metrics-addr flag of the CLIs, not for managed servers.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
