package obs

import (
	"errors"
	"testing"
	"time"
)

// Every Try* registration must refuse a name held by a different
// metric kind with an error wrapping ErrDuplicateName.
func TestTryRegistrationCrossKindErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.TryCounter("taken"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind string
		try  func() error
	}{
		{"gauge", func() error { _, err := r.TryGauge("taken"); return err }},
		{"histogram", func() error { _, err := r.TryHistogram("taken", []float64{1}); return err }},
		{"counter_vec", func() error { _, err := r.TryCounterVec("taken", "k"); return err }},
		{"gauge_vec", func() error { _, err := r.TryGaugeVec("taken", "k"); return err }},
		{"histogram_vec", func() error { _, err := r.TryHistogramVec("taken", []float64{1}, "k"); return err }},
		{"slo", func() error { _, err := r.TrySLO("taken", SLOConfig{Objective: 0.9}); return err }},
	}
	for _, c := range cases {
		err := c.try()
		if err == nil {
			t.Errorf("%s registration of a counter name: want error", c.kind)
			continue
		}
		if !errors.Is(err, ErrDuplicateName) {
			t.Errorf("%s registration error %v does not wrap ErrDuplicateName", c.kind, err)
		}
	}
	// The failed claims must not have poisoned the name: the counter is
	// still resolvable.
	if _, err := r.TryCounter("taken"); err != nil {
		t.Errorf("counter no longer resolvable after failed cross-kind claims: %v", err)
	}
}

// The panicking registration wrappers must panic exactly where the
// Try* forms return an error.
func TestRegistrationPanicsOnConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("taken")
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Gauge", func() { r.Gauge("taken") })
	mustPanic("Histogram", func() { r.Histogram("taken", []float64{1}) })
	mustPanic("CounterVec", func() { r.CounterVec("taken", "k") })
	mustPanic("GaugeVec", func() { r.GaugeVec("taken", "k") })
	mustPanic("HistogramVec", func() { r.HistogramVec("taken", []float64{1}, "k") })
	mustPanic("SLO", func() { r.SLO("taken", SLOConfig{Objective: 0.9}) })
}

// Re-registering a name with the same kind and shape is idempotent:
// the existing instance comes back, so hot-swapped components and
// tests can re-register safely.
func TestRegistrationIdempotentSameShape(t *testing.T) {
	r := NewRegistry()
	c1, _ := r.TryCounter("idem.c")
	c2, err := r.TryCounter("idem.c")
	if err != nil || c2 != c1 {
		t.Errorf("counter re-registration: got %p err %v, want %p", c2, err, c1)
	}
	cv1, _ := r.TryCounterVec("idem.cv", "tenant", "outcome")
	cv2, err := r.TryCounterVec("idem.cv", "tenant", "outcome")
	if err != nil || cv2 != cv1 {
		t.Errorf("counter vec re-registration: got %p err %v, want %p", cv2, err, cv1)
	}
	hv1, _ := r.TryHistogramVec("idem.hv", []float64{1, 2}, "tier")
	hv2, err := r.TryHistogramVec("idem.hv", []float64{1, 2}, "tier")
	if err != nil || hv2 != hv1 {
		t.Errorf("histogram vec re-registration: got %p err %v, want %p", hv2, err, hv1)
	}
	s1, _ := r.TrySLO("idem.slo", SLOConfig{Objective: 0.99, Window: time.Minute})
	s2, err := r.TrySLO("idem.slo", SLOConfig{Objective: 0.99})
	if err != nil || s2 != s1 {
		t.Errorf("SLO re-registration: got %p err %v, want %p", s2, err, s1)
	}
}

// Same kind, different shape (vec label keys, histogram bounds) is a
// conflict: silently feeding two shapes into one series would corrupt
// the data, so it must surface ErrDuplicateName.
func TestRegistrationShapeMismatchErrors(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("shape.cv", "tenant", "outcome")
	if _, err := r.TryCounterVec("shape.cv", "tenant"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("key-count mismatch: err = %v, want ErrDuplicateName", err)
	}
	if _, err := r.TryCounterVec("shape.cv", "tenant", "tier"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("key-name mismatch: err = %v, want ErrDuplicateName", err)
	}
	r.HistogramVec("shape.hv", []float64{1, 2}, "tier")
	if _, err := r.TryHistogramVec("shape.hv", []float64{1, 3}, "tier"); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("vec bounds mismatch: err = %v, want ErrDuplicateName", err)
	}
	r.Histogram("shape.h", []float64{1, 2})
	if _, err := r.TryHistogram("shape.h", []float64{1}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("histogram bounds mismatch: err = %v, want ErrDuplicateName", err)
	}
}
