package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// TraceContext is the request-scoped trace state carried on a
// context.Context: the trace (request) ID grouping all spans of one
// logical operation, plus the ID of the innermost open span, which
// becomes the parent of any span started under this context.
//
// Contract: a TraceContext is injected once at the request edge
// (serve.Server opens the root span) and flows by value through
// serve.Runner → Sim.ForwardContext → Matrix.MVMContext →
// BatchSolver.SolveReportIntoContext. Layers below the edge never
// invent a trace: they check Valid() and only open child spans when a
// trace is present, so untraced hot paths (benchmarks, training
// loops) pay nothing beyond a context Value lookup.
type TraceContext struct {
	// Trace groups the spans of one logical operation; 0 means
	// untraced.
	Trace int64
	// Span is the innermost open span's ID — the parent for children
	// started under this context. 0 means "root level".
	Span int64
}

// Valid reports whether the context carries a live trace.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// traceCtxKey keys TraceContext values on a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc. A nil ctx is
// treated as context.Background().
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the TraceContext from ctx. A nil ctx or a
// context without a trace yields the zero (invalid) TraceContext; the
// nil check means hot paths can pass nil contexts without allocating
// a Background.
func TraceFromContext(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// spanIDs issues process-wide span IDs; span IDs share one sequence
// across registries so a parent recorded in one export never collides
// with a child's ID.
var spanIDs atomic.Int64

// Span is an open span started by StartSpan. The zero Span is inert:
// End on it is a no-op, so call sites can unconditionally defer End
// even when tracing is disabled or the request is untraced.
type Span struct {
	reg    *Registry
	name   string
	track  string
	start  time.Time
	trace  int64
	id     int64
	parent int64
}

// TraceID returns the span's trace ID (0 on the inert zero Span).
func (s Span) TraceID() int64 { return s.trace }

// SpanID returns the span's own ID (0 on the inert zero Span).
func (s Span) SpanID() int64 { return s.id }

// End records the completed span into its registry's trace ring.
// Safe on the zero Span; skipped when instrumentation was disabled
// between start and end.
func (s Span) End() {
	if s.reg == nil || s.start.IsZero() || !enabled.Load() {
		return
	}
	s.reg.trace.record(Event{
		Name:     s.name,
		Start:    s.reg.epochNano + s.start.Sub(s.reg.epoch).Nanoseconds(),
		Duration: time.Since(s.start).Nanoseconds(),
		Trace:    s.trace,
		Span:     s.id,
		Parent:   s.parent,
		Track:    s.track,
	})
}

// StartSpan opens a child span named name under ctx's trace,
// allocating a fresh trace when ctx carries none. It returns a
// derived context carrying the new span as the parent for further
// children, plus the open Span; record it with End. When
// instrumentation is disabled the original context and an inert Span
// come back and nothing is allocated.
//
// Cost note: the traced path allocates one context value per span.
// Interior layers that sit on 0 allocs/op hot paths therefore gate on
// TraceFromContext(ctx).Valid() before calling StartSpan — untraced
// work never reaches the allocation.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, Span) {
	return r.startSpan(ctx, name, "")
}

// StartRootSpan is StartSpan for request edges: it additionally names
// the trace's display track (e.g. "tenant:acme"), which the Chrome
// trace export emits as the thread name of the trace's row so
// per-tenant requests group visibly in the viewer.
func (r *Registry) StartRootSpan(ctx context.Context, name, track string) (context.Context, Span) {
	return r.startSpan(ctx, name, track)
}

func (r *Registry) startSpan(ctx context.Context, name, track string) (context.Context, Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !enabled.Load() {
		return ctx, Span{}
	}
	parent := TraceFromContext(ctx)
	trace := parent.Trace
	if trace == 0 {
		trace = NextTraceID()
	}
	sp := Span{
		reg:    r,
		name:   name,
		track:  track,
		start:  time.Now(),
		trace:  trace,
		id:     spanIDs.Add(1),
		parent: parent.Span,
	}
	return ContextWithTrace(ctx, TraceContext{Trace: trace, Span: sp.id}), sp
}

// StartSpan opens a child span on the Default registry; see
// Registry.StartSpan.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	return std.StartSpan(ctx, name)
}

// StartRootSpan opens a root span with a display track name on the
// Default registry; see Registry.StartRootSpan.
func StartRootSpan(ctx context.Context, name, track string) (context.Context, Span) {
	return std.StartRootSpan(ctx, name, track)
}
