package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// With must intern one child per label-value combination and return
// the identical handle on every resolution, and the snapshot must
// flatten children under rendered name{k="v"} series keys.
func TestVecWithInternsChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec.requests", "tenant", "outcome")
	a := cv.With("acme", "ok")
	if b := cv.With("acme", "ok"); b != a {
		t.Error("same label values resolved to different children")
	}
	if b := cv.With("acme", "error"); b == a {
		t.Error("distinct label values resolved to the same child")
	}
	a.Add(3)
	cv.With("acme", "error").Inc()

	s := r.Snapshot()
	if got := s.Counters[`vec.requests{tenant="acme",outcome="ok"}`]; got != 3 {
		t.Errorf("ok series = %d, want 3", got)
	}
	if got := s.Counters[`vec.requests{tenant="acme",outcome="error"}`]; got != 1 {
		t.Errorf("error series = %d, want 1", got)
	}
	if got, want := cv.Name(), "vec.requests"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	if got := cv.Keys(); len(got) != 2 || got[0] != "tenant" || got[1] != "outcome" {
		t.Errorf("Keys() = %v", got)
	}
}

// Label values are caller-controlled strings; the flattened series
// name must escape them like Prometheus label values so the snapshot
// key (and the text exposition) stays parseable.
func TestVecLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("vec.esc", "who")
	gv.With(`a"b\c` + "\n").Set(7)
	s := r.Snapshot()
	want := `vec.esc{who="a\"b\\c\n"}`
	if got := s.Gauges[want]; got != 7 {
		t.Errorf("escaped series missing: snapshot gauges = %v", s.Gauges)
	}
}

func TestVecWithArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec.arity", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label-value count: expected panic")
		}
	}()
	cv.With("only-one")
}

// Past maxSeries distinct combinations, every novel resolution must
// share one overflow child (all values OverflowLabel) and bump the
// registry's obs.labels.dropped counter once per redirected With.
func TestVecCardinalityOverflow(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec.capped", "tenant")
	cv.v.maxSeries = 2
	cv.With("a").Inc()
	cv.With("b").Inc()

	ov := cv.With("c")
	if ov2 := cv.With("d"); ov2 != ov {
		t.Error("overflow resolutions returned different children")
	}
	// Overflow combinations are never interned, so re-resolving "c"
	// counts as dropped again.
	if ov3 := cv.With("c"); ov3 != ov {
		t.Error("repeat overflow resolution returned a different child")
	}
	ov.Add(3)

	s := r.Snapshot()
	if got := s.Counters[`vec.capped{tenant="_overflow"}`]; got != 3 {
		t.Errorf("overflow series = %d, want 3", got)
	}
	if got := s.Counters[labelsDroppedName]; got != 3 {
		t.Errorf("%s = %d, want 3 (one per redirected With)", labelsDroppedName, got)
	}
	// Interned children resolve without touching the dropped counter.
	cv.With("a").Inc()
	if got := r.Snapshot().Counters[labelsDroppedName]; got != 3 {
		t.Errorf("interned resolution bumped dropped counter to %d", got)
	}
}

// Concurrent With and observe — including resolutions past the
// cardinality cap — must lose no observations (run under -race as
// part of the race gate).
func TestVecConcurrentWithAndObserve(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("vec.conc", "tenant")
	cv.v.maxSeries = 4
	hv := r.HistogramVec("vec.conc.lat", []float64{1, 2, 4}, "tenant")
	hv.v.maxSeries = 4

	const goroutines, perG, tenants = 16, 1000, 8
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				tenant := fmt.Sprintf("t%d", (id+j)%tenants)
				cv.With(tenant).Inc()
				hv.With(tenant).Observe(float64(j % 5))
			}
		}(i)
	}
	wg.Wait()

	s := r.Snapshot()
	var counted int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "vec.conc{") {
			counted += v
		}
	}
	if want := int64(goroutines * perG); counted != want {
		t.Errorf("counter observations across children = %d, want %d", counted, want)
	}
	var observed int64
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, "vec.conc.lat{") {
			observed += h.Count
		}
	}
	if want := int64(goroutines * perG); observed != want {
		t.Errorf("histogram observations across children = %d, want %d", observed, want)
	}
	// Half the tenants exceeded the cap, so the dropped counter must
	// have registered redirections; the exact count depends on race
	// order of interning, but the overflow series must exist.
	if s.Counters[labelsDroppedName] == 0 {
		t.Error("no drops recorded despite tenants exceeding the cap")
	}
	if _, ok := s.Counters[`vec.conc{tenant="_overflow"}`]; !ok {
		t.Error("overflow counter series missing from snapshot")
	}
}

// Pre-resolved vec children are ordinary metrics: observing through a
// kept handle must not allocate, preserving the hot-path contract.
func TestVecChildOpsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("vec.alloc.c", "tenant").With("acme")
	g := r.GaugeVec("vec.alloc.g", "tenant").With("acme")
	h := r.HistogramVec("vec.alloc.h", LatencyBuckets, "tenant").With("acme")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(2)
		h.Observe(1e-4)
	})
	if allocs != 0 {
		t.Errorf("child metric ops allocate %.1f objects per run, want 0", allocs)
	}
}

// Every child of a HistogramVec shares the registered bucket layout.
func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.5, 1, 2}
	hv := r.HistogramVec("vec.bounds", bounds, "tier")
	hv.With("ideal").Observe(0.7)
	hv.With("circuit").Observe(3)
	if got := hv.Bounds(); len(got) != 3 || got[0] != 0.5 || got[2] != 2 {
		t.Errorf("Bounds() = %v, want %v", got, bounds)
	}
	s := r.Snapshot()
	for _, name := range []string{`vec.bounds{tier="ideal"}`, `vec.bounds{tier="circuit"}`} {
		hs, ok := s.Histograms[name]
		if !ok {
			t.Fatalf("series %s missing", name)
		}
		if len(hs.Bounds) != 3 || hs.Bounds[1] != 1 {
			t.Errorf("%s bounds = %v, want %v", name, hs.Bounds, bounds)
		}
	}
}
