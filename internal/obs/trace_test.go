package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// WriteTrace must emit valid Chrome trace-event JSON: epoch-relative
// microsecond timestamps, one track (tid) per trace ID, sorted by ts.
func TestWriteTraceChromeFormat(t *testing.T) {
	r := NewRegistry()
	// Span starts sit after the epoch (negative offsets clamp to 0 and
	// would collapse the ordering this test asserts).
	base := r.Epoch()
	time.Sleep(5 * time.Millisecond)
	r.RecordSpanTID("second", base.Add(3*time.Millisecond), 7)
	r.RecordSpanTID("first", base.Add(1*time.Millisecond), 7)
	r.RecordSpan("ungrouped", base.Add(2*time.Millisecond))

	var buf bytes.Buffer
	n, err := r.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("WriteTrace reported %d events, want 3", n)
	}
	var tr struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int64   `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3", len(tr.TraceEvents))
	}
	// Sorted by ts: first (-30ms), ungrouped (-20ms), second (-10ms).
	wantOrder := []string{"first", "ungrouped", "second"}
	wantTid := []int64{7, 0, 7}
	prev := math.Inf(-1)
	for i, e := range tr.TraceEvents {
		if e.Name != wantOrder[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, wantOrder[i])
		}
		if e.Tid != wantTid[i] {
			t.Errorf("event %d tid = %d, want %d", i, e.Tid, wantTid[i])
		}
		if e.Ph != "X" {
			t.Errorf("event %d ph = %q, want X", i, e.Ph)
		}
		if e.Ts < prev {
			t.Errorf("events not sorted: ts[%d]=%g after %g", i, e.Ts, prev)
		}
		prev = e.Ts
		if e.Ts < 0 || e.Dur <= 0 {
			t.Errorf("event %d has ts=%g dur=%g, want non-negative ts and positive dur", i, e.Ts, e.Dur)
		}
		// Durations were ~10–30ms; timestamps fit inside the run so far.
		if e.Dur > 5e6 {
			t.Errorf("event %d dur = %gµs, implausibly long", i, e.Dur)
		}
	}
}

// Span Start values must be anchored at the registry epoch: a span
// started right after registry creation has a small positive offset.
func TestSpanTimestampsEpochAnchored(t *testing.T) {
	r := NewRegistry()
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	r.RecordSpanTID("op", start, 3)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	e := spans[0]
	off := e.Start - r.epochNano
	if off < 0 || off > int64(time.Second) {
		t.Errorf("span offset from epoch = %dns, want small and non-negative", off)
	}
	if e.Trace != 3 {
		t.Errorf("span trace id = %d, want 3", e.Trace)
	}
	s := r.Snapshot()
	if s.EpochUnixNano != r.epochNano {
		t.Errorf("snapshot epoch = %d, registry = %d", s.EpochUnixNano, r.epochNano)
	}
	// Reset clears spans but never re-anchors time.
	r.Reset()
	if got := r.Snapshot().EpochUnixNano; got != s.EpochUnixNano {
		t.Errorf("Reset moved the epoch: %d -> %d", s.EpochUnixNano, got)
	}
}

func TestNextTraceIDUnique(t *testing.T) {
	a, b := NextTraceID(), NextTraceID()
	if a == b || a == 0 || b == 0 {
		t.Errorf("NextTraceID returned %d then %d, want distinct non-zero", a, b)
	}
}

// Quantile estimates must interpolate inside the right bucket and hit
// the documented edge cases (empty, first bucket, overflow).
func TestHistogramQuantile(t *testing.T) {
	h := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{2, 2, 0, 0}, // 2 in (0,1], 2 in (1,2]
		Count:  4,
	}
	// p50 rank = 2 → exactly fills bucket 0 → interpolates to its top.
	if got := h.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("p50 = %g, want 1", got)
	}
	// p75 rank = 3 → halfway through bucket (1,2] → 1.5.
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p75 = %g, want 1.5", got)
	}
	// Overflow bucket reports the last bound.
	over := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 5}, Count: 5}
	if got := over.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %g, want 2", got)
	}
	// Empty histogram reports 0.
	if got := (HistogramSnapshot{Bounds: []float64{1}}).Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %g, want 0", got)
	}
}

// When every observation landed in the overflow bucket the estimator
// has no upper edge to interpolate toward: every quantile — including
// clamped out-of-range q — must report the last bound, never a value
// beyond it or a division artifact.
func TestHistogramQuantileAllMassInOverflow(t *testing.T) {
	h := HistogramSnapshot{
		Bounds: []float64{0.5, 1, 2},
		Counts: []int64{0, 0, 0, 7}, // all mass past Bounds[2]
		Count:  7,
	}
	for _, q := range []float64{-1, 0, 1e-9, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%g) = %g, want clamp to last bound 2", q, got)
		}
	}
	// Snapshot-time percentiles go through the same clamp.
	h.P50, h.P95, h.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if h.P50 != 2 || h.P95 != 2 || h.P99 != 2 {
		t.Errorf("precomputed quantiles not clamped: p50=%g p95=%g p99=%g", h.P50, h.P95, h.P99)
	}
}

// Snapshots must carry precomputed p50/p95/p99, and WriteText must
// include them.
func TestSnapshotQuantilesPopulated(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.hist", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%8) + 0.5)
	}
	s := r.Snapshot().Histograms["q.hist"]
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("quantiles not ordered: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
	if got := s.Quantile(0.5); got != s.P50 {
		t.Errorf("P50 = %g, Quantile(0.5) = %g", s.P50, got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("p95=")) {
		t.Errorf("WriteText output lacks quantiles:\n%s", buf.String())
	}
}
