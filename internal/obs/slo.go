package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOConfig configures a windowed error-budget tracker.
type SLOConfig struct {
	// Objective is the target good fraction in (0, 1) — e.g. 0.99 means
	// "99% of observations must be good", leaving a 1% error budget.
	Objective float64
	// Window is the sliding window the burn rate is computed over.
	// Defaults to 60s.
	Window time.Duration
	// Buckets is the number of time buckets the window is divided into;
	// more buckets means a smoother slide. Defaults to 30.
	Buckets int
	// Clock overrides the time source (tests). Defaults to time.Now.
	Clock func() time.Time
}

// SLOSnapshot is the exported state of one SLO tracker.
type SLOSnapshot struct {
	Objective     float64 `json:"objective"`
	WindowSeconds float64 `json:"window_seconds"`
	// WindowGood/WindowBad count observations inside the current
	// sliding window.
	WindowGood int64 `json:"window_good"`
	WindowBad  int64 `json:"window_bad"`
	// ErrorRate is WindowBad / (WindowGood + WindowBad); 0 when the
	// window is empty.
	ErrorRate float64 `json:"error_rate"`
	// BurnRate is ErrorRate divided by the error budget (1 −
	// Objective): 1.0 means the budget is being consumed exactly at the
	// sustainable rate, >1 means the objective will be violated if the
	// rate holds. 0 when the window is empty.
	BurnRate float64 `json:"burn_rate"`
	// TotalGood/TotalBad count observations over the tracker's
	// lifetime (cleared only by Reset).
	TotalGood int64 `json:"total_good"`
	TotalBad  int64 `json:"total_bad"`
}

// SLO tracks a service-level objective as a windowed error-budget
// burn rate. Feed it one boolean per unit of work — true when the
// observation met the objective (request under the latency target,
// probe rRMSE under the fidelity target) — and read BurnRate: the
// window's error rate divided by the error budget (1 − objective).
// A burn rate sustained at or above 1.0 means the objective is being
// violated; control loops (the serve degradation ladder's Distrust,
// the calibrator trigger) key off that threshold instead of raw point
// gauges, so a single outlier sample cannot flap them.
//
// The window is a ring of time buckets summed on read; Observe is a
// mutex-guarded few-word update, far off any per-MVM hot path (it is
// meant for per-request / per-probe-sample cadence).
type SLO struct {
	name      string
	objective float64
	width     time.Duration // per-bucket width (Window / Buckets)
	buckets   int
	clock     func() time.Time

	mu        sync.Mutex
	slots     []sloSlot
	totalGood int64
	totalBad  int64
}

// sloSlot is one time bucket: unit is the absolute bucket index
// (UnixNano / width); a slot is live only while its unit is within
// the current window.
type sloSlot struct {
	unit      int64
	good, bad int64
}

func newSLO(name string, cfg SLOConfig) *SLO {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		panic(fmt.Sprintf("obs: SLO %q objective %g outside (0,1)", name, cfg.Objective))
	}
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 30
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	width := cfg.Window / time.Duration(cfg.Buckets)
	if width <= 0 {
		width = time.Nanosecond
	}
	return &SLO{
		name:      name,
		objective: cfg.Objective,
		width:     width,
		buckets:   cfg.Buckets,
		clock:     clock,
		slots:     make([]sloSlot, cfg.Buckets),
	}
}

// TrySLO returns the named SLO tracker, creating it on first use.
// Re-registering the same name returns the existing tracker when the
// objective matches (the window shape of the original wins);
// otherwise an error wrapping ErrDuplicateName.
func (r *Registry) TrySLO(name string, cfg SLOConfig) (*SLO, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "slo"); err != nil {
		return nil, err
	}
	if s, ok := r.slos[name]; ok {
		if s.objective != cfg.Objective {
			return nil, fmt.Errorf("%w: SLO %q re-registered with objective %g, have %g",
				ErrDuplicateName, name, cfg.Objective, s.objective)
		}
		return s, nil
	}
	s := newSLO(name, cfg)
	r.slos[name] = s
	return s, nil
}

// SLO returns the named SLO tracker, creating it on first use; it
// panics where TrySLO returns an error (and on an objective outside
// (0,1)).
func (r *Registry) SLO(name string, cfg SLOConfig) *SLO {
	s, err := r.TrySLO(name, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSLO returns (creating if needed) the named SLO tracker of the
// Default registry.
func NewSLO(name string, cfg SLOConfig) *SLO { return std.SLO(name, cfg) }

// Name returns the tracker's registered name.
func (s *SLO) Name() string { return s.name }

// Objective returns the target good fraction.
func (s *SLO) Objective() float64 { return s.objective }

// Observe records one observation: good when it met the objective.
func (s *SLO) Observe(good bool) {
	unit := s.clock().UnixNano() / int64(s.width)
	i := int(unit % int64(s.buckets))
	if i < 0 {
		i += s.buckets
	}
	s.mu.Lock()
	sl := &s.slots[i]
	if sl.unit != unit {
		sl.unit, sl.good, sl.bad = unit, 0, 0
	}
	if good {
		sl.good++
		s.totalGood++
	} else {
		sl.bad++
		s.totalBad++
	}
	s.mu.Unlock()
}

// windowLocked sums the live slots. Callers hold s.mu.
func (s *SLO) windowLocked(unit int64) (good, bad int64) {
	min := unit - int64(s.buckets) + 1
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.unit >= min && sl.unit <= unit {
			good += sl.good
			bad += sl.bad
		}
	}
	return good, bad
}

// ErrorRate returns the window's bad fraction (0 when empty).
func (s *SLO) ErrorRate() float64 {
	unit := s.clock().UnixNano() / int64(s.width)
	s.mu.Lock()
	good, bad := s.windowLocked(unit)
	s.mu.Unlock()
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// BurnRate returns the window's error rate divided by the error
// budget (1 − objective). 1.0 means the budget is being consumed
// exactly at the sustainable rate; an empty window reports 0 (no
// evidence of burn).
func (s *SLO) BurnRate() float64 {
	return s.ErrorRate() / (1 - s.objective)
}

// Snapshot returns the tracker's current state without clearing it.
func (s *SLO) Snapshot() SLOSnapshot { return s.capture(false) }

func (s *SLO) capture(clear bool) SLOSnapshot {
	unit := s.clock().UnixNano() / int64(s.width)
	s.mu.Lock()
	good, bad := s.windowLocked(unit)
	snap := SLOSnapshot{
		Objective:     s.objective,
		WindowSeconds: (s.width * time.Duration(s.buckets)).Seconds(),
		WindowGood:    good,
		WindowBad:     bad,
		TotalGood:     s.totalGood,
		TotalBad:      s.totalBad,
	}
	if clear {
		for i := range s.slots {
			s.slots[i] = sloSlot{}
		}
		s.totalGood, s.totalBad = 0, 0
	}
	s.mu.Unlock()
	if good+bad > 0 {
		snap.ErrorRate = float64(bad) / float64(good+bad)
		snap.BurnRate = snap.ErrorRate / (1 - s.objective)
	}
	return snap
}
