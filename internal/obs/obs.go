// Package obs is the repository's unified observability layer: a
// dependency-free metrics-and-tracing registry shared by the circuit
// solver (package xbar), the functional simulator (package funcsim)
// and hardware-aware retraining (package hwtrain).
//
// # Model
//
// Three metric kinds cover every instrumentation site in the repo:
//
//   - Counter: a monotonically increasing atomic int64 (events).
//   - Gauge: an atomic int64 holding the latest value of a level
//     (queue depth, in-flight workers).
//   - Histogram: fixed upper-bound buckets of atomic counts plus an
//     exact count and sum, for value distributions (Newton iterations)
//     and, through ObserveSince, monotonic-clock latencies.
//
// Metrics live in a Registry under stable dotted names (the catalog is
// documented in DESIGN.md §7). The package-level functions operate on
// the Default registry, which is what all in-repo instrumentation
// uses; tests that need isolation construct their own Registry.
//
// In addition to metrics, a Registry keeps a fixed-size ring buffer of
// span events (name, start, duration) — a lightweight trace of coarse
// operations (per-layer forwards, batch solves) that the snapshot
// exposes without the overhead of full tracing. StartRegion bridges
// the same call sites into runtime/trace regions when an execution
// trace is being captured.
//
// # Cost contract
//
// Instrumentation is built to sit inside the steady-state MVM loop:
//
//   - No metric operation allocates, enabled or disabled. Counters,
//     gauges and histogram observations are a handful of atomic ops;
//     span events write into preallocated ring slots.
//   - The global Enabled flag gates the operations that are not free —
//     reading the monotonic clock (Now returns the zero Time when
//     disabled, and ObserveSince/RecordSpan treat a zero start as
//     "skip"), span recording, and runtime/trace regions.
//   - Handles are resolved once, at package init (registration takes a
//     lock; the hot path never does).
//
// # Reset semantics
//
// Reads and resets are distinct everywhere: Snapshot (and every Load)
// is read-only and never clears, while Reset atomically swaps counters
// to zero and returns the snapshot of what it cleared. The same
// convention is mirrored by the per-object stats accessors built on
// this package (funcsim.Matrix.Stats/ResetStats, SolverHealth
// Counts/Reset).
//
// # Export
//
// Snapshot returns a deterministic point-in-time view; WriteJSON and
// WriteText serialize it. Handler/Serve expose the JSON form over
// HTTP, opted into by the -metrics-addr flag of cmd/funcsim-run and
// cmd/experiments.
package obs

import (
	"context"
	"io"
	"net/http"
	rtrace "runtime/trace"
	"sync/atomic"
	"time"
)

// enabled is the global instrumentation switch. It defaults to on:
// metric updates are allocation-free atomics, so the steady-state cost
// of leaving them enabled is a few nanoseconds per event. Disabling
// additionally skips clock reads and span recording.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether instrumentation is globally enabled. The
// check is a single atomic load, cheap enough for any hot path.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the global instrumentation switch and returns the
// previous state. Metric values are retained across disable/enable.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Now returns the current time when instrumentation is enabled and the
// zero Time when it is disabled. Pair it with Histogram.ObserveSince
// or RecordSpan, both of which treat a zero start as "disabled, skip":
//
//	start := obs.Now()
//	... work ...
//	latencyHist.ObserveSince(start)
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Default is the process-wide registry every in-repo instrumentation
// site registers into.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// NewCounter returns (creating if needed) the named counter of the
// Default registry. Call it once at package init and keep the handle;
// registration takes a lock.
func NewCounter(name string) *Counter { return std.Counter(name) }

// NewGauge returns (creating if needed) the named gauge of the
// Default registry.
func NewGauge(name string) *Gauge { return std.Gauge(name) }

// NewHistogram returns (creating if needed) the named histogram of the
// Default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	return std.Histogram(name, bounds)
}

// NewCounterVec returns (creating if needed) the named counter vec of
// the Default registry, keyed by the given label keys. Resolve
// children once with With and keep the handles, exactly like scalar
// metrics.
func NewCounterVec(name string, keys ...string) *CounterVec {
	return std.CounterVec(name, keys...)
}

// NewGaugeVec returns (creating if needed) the named gauge vec of the
// Default registry.
func NewGaugeVec(name string, keys ...string) *GaugeVec {
	return std.GaugeVec(name, keys...)
}

// NewHistogramVec returns (creating if needed) the named histogram
// vec of the Default registry; every child shares the bucket bounds.
func NewHistogramVec(name string, bounds []float64, keys ...string) *HistogramVec {
	return std.HistogramVec(name, bounds, keys...)
}

// RecordSpan records a completed span into the Default registry's
// trace ring. start should come from Now; a zero start (instrumentation
// disabled at span start) is skipped.
func RecordSpan(name string, start time.Time) { std.RecordSpan(name, start) }

// RecordSpanTID records a completed span with a trace ID (from
// NextTraceID) into the Default registry, grouping it with the other
// spans of the same logical operation in trace exports.
func RecordSpanTID(name string, start time.Time, trace int64) {
	std.RecordSpanTID(name, start, trace)
}

// traceIDs issues process-wide span-grouping IDs; see NextTraceID.
var traceIDs atomic.Int64

// NextTraceID returns a fresh nonzero trace ID. Allocate one per
// logical operation (an inference forward pass, a training step) and
// record its spans with RecordSpanTID so exports group them on one
// track. The call is a single atomic add — safe on hot paths.
func NextTraceID() int64 { return traceIDs.Add(1) }

// Snapshot returns a read-only, deterministic view of the Default
// registry. It never clears anything; use Reset to clear.
func Snapshot() SnapshotData { return std.Snapshot() }

// Reset atomically clears every metric and the trace ring of the
// Default registry and returns the snapshot of the cleared state.
func Reset() SnapshotData { return std.Reset() }

// WriteJSON writes the Default registry's snapshot as JSON.
func WriteJSON(w io.Writer) error { return std.WriteJSON(w) }

// WriteText writes the Default registry's snapshot as sorted
// name-value text lines.
func WriteText(w io.Writer) error { return std.WriteText(w) }

// WriteProm writes the Default registry's snapshot in the Prometheus
// text exposition format.
func WriteProm(w io.Writer) error { return std.WriteProm(w) }

// WriteTrace exports the Default registry's span ring as Chrome
// trace-event JSON and returns the number of events written.
func WriteTrace(w io.Writer) (int, error) { return std.WriteTrace(w) }

// Handler returns an http.Handler serving the Default registry's JSON
// snapshot.
func Handler() http.Handler { return std.Handler() }

// Serve exposes the Default registry on addr (e.g. "127.0.0.1:9090";
// port 0 picks a free port) and returns the bound address. The server
// runs until the process exits. withPprof additionally mounts the
// net/http/pprof handlers under /debug/pprof/ (opt-in: profiling
// endpoints on a metrics port are a debugging tool, not a default).
func Serve(addr string, withPprof bool) (string, error) { return std.Serve(addr, withPprof) }

// Region is a started runtime/trace region (possibly inert). The zero
// Region is inert; End on it is a no-op.
type Region struct{ r *rtrace.Region }

// StartRegion opens a runtime/trace region named name when both obs
// instrumentation and runtime tracing are enabled; otherwise it
// returns an inert Region. The disabled path is two atomic loads and
// no allocations, so the hook can sit inside the steady-state MVM
// loop.
func StartRegion(name string) Region {
	if !enabled.Load() || !rtrace.IsEnabled() {
		return Region{}
	}
	return Region{r: rtrace.StartRegion(context.Background(), name)}
}

// End closes the region. Safe on the zero Region.
func (r Region) End() {
	if r.r != nil {
		r.r.End()
	}
}
